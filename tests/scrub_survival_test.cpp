// Does the scrub survive the optimizer? This binary is built at -O3 (see
// tests/CMakeLists.txt) and checks the property secure_zero exists for:
// a memset whose buffer is dead afterwards is a candidate for dead-store
// elimination, while core::secure_zero's volatile stores must survive.
//
// Methodology: each worker writes a distinctive 8-byte pattern into a
// stack-local buffer, scrubs it (or not — the positive control), and
// returns. A separate noinline probe then scans its own fresh,
// deliberately-uninitialized stack frame — which overlaps the worker's
// retired frame — for the pattern. If the positive control leaves no
// residue, stack layout on this platform/compiler makes the probe blind
// and the test SKIPs rather than asserting on luck. When the control does
// show residue, secure_zero must show none; the memset variant's result is
// reported for the record (GCC and clang differ on whether they elide it).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "core/secure_zero.hpp"

namespace {

constexpr std::size_t kBufWords = 64;  // 512 B of patterned stack
constexpr std::uint64_t kPattern = 0xfeedc0dedeadbeafULL;

enum class Scrub { kNone, kMemset, kSecureZero };

// The worker: patterned secret on the stack, optionally scrubbed. noinline
// keeps the frame layout of all three variants identical; the asm barrier
// forces the pattern stores to actually happen before the scrub.
__attribute__((noinline)) void worker(Scrub how) {
  std::uint64_t secret[kBufWords];
  for (std::size_t i = 0; i < kBufWords; ++i) secret[i] = kPattern;
  asm volatile("" : : "r"(secret) : "memory");
  switch (how) {
    case Scrub::kNone:
      break;
    case Scrub::kMemset:
      // Plain memset of a buffer that is dead after this point — exactly
      // the store -O3 is entitled to eliminate.
      std::memset(secret, 0, sizeof(secret));
      break;
    case Scrub::kSecureZero:
      keyguard::secure::secure_zero(secret, sizeof(secret));
      break;
  }
}

// The probe: counts occurrences of the pattern in its own uninitialized
// frame. The pointer is laundered through an asm so the compiler cannot
// assume anything about the array's (indeterminate) contents or warn about
// the deliberate uninitialized read.
__attribute__((noinline)) int probe() {
  std::uint64_t residue[kBufWords * 2];
  std::uint64_t* p = residue;
  asm volatile("" : "+r"(p));
  int hits = 0;
  for (std::size_t i = 0; i < kBufWords * 2; ++i) {
    std::uint64_t v;
    std::memcpy(&v, p + i, sizeof(v));
    if (v == kPattern) ++hits;
  }
  return hits;
}

__attribute__((noinline)) int residue_after(Scrub how) {
  worker(how);
  return probe();
}

}  // namespace

TEST(ScrubSurvival, SecureZeroSurvivesDeadStoreElimination) {
  const int control = residue_after(Scrub::kNone);
  if (control == 0) {
    GTEST_SKIP() << "stack probe is blind on this platform/compiler "
                    "(positive control shows no residue)";
  }

  const int after_secure = residue_after(Scrub::kSecureZero);
  EXPECT_EQ(after_secure, 0)
      << "core::secure_zero left " << after_secure
      << " patterned words on the retired stack frame at -O3";

  const int after_memset = residue_after(Scrub::kMemset);
  // Informational: whether this compiler elided the plain memset. Both
  // outcomes are legal; the point is that secure_zero may not rely on luck.
  RecordProperty("memset_residue_words", after_memset);
  RecordProperty("control_residue_words", control);
  SUCCEED() << "control residue " << control << ", after memset "
            << after_memset << ", after secure_zero " << after_secure;
}
