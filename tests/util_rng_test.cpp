#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace keyguard::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroBoundReturnsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianRoughMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, FillBytesCoversAllPositions) {
  Rng rng(17);
  std::vector<std::byte> buf(37);
  rng.fill_bytes(buf);
  // A second fill should change (almost surely) every run of bytes.
  const std::vector<std::byte> first = buf;
  rng.fill_bytes(buf);
  EXPECT_NE(first, buf);
}

TEST(Rng, FillBytesNonMultipleOf8) {
  Rng rng(19);
  std::vector<std::byte> buf(3);
  rng.fill_bytes(buf);  // must not write out of bounds (ASan would catch)
  SUCCEED();
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.split();
  // Child and parent should not track each other.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BernoulliProbabilityRoughlyRespected) {
  Rng rng(29);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.03);
}

TEST(Rng, UniformityChiSquaredSmoke) {
  // 16 buckets over next_below(16): chi-squared should be unsuspicious.
  Rng rng(31);
  std::vector<int> buckets(16, 0);
  const int n = 16000;
  for (int i = 0; i < n; ++i) ++buckets[rng.next_below(16)];
  double chi2 = 0;
  const double expected = n / 16.0;
  for (int c : buckets) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 50.0);  // df=15, p ~ 1e-5 cutoff
}

}  // namespace
}  // namespace keyguard::util
