#include "util/encoding.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace keyguard::util {
namespace {

TEST(Hex, RoundTrip) {
  const auto data = to_bytes("hello\x00world\xff");
  const std::string hex = to_hex(data);
  const auto back = from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Hex, KnownVector) {
  const auto data = to_bytes("abc");
  EXPECT_EQ(to_hex(data), "616263");
}

TEST(Hex, RejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(Hex, RejectsNonHex) { EXPECT_FALSE(from_hex("zz").has_value()); }

TEST(Hex, AcceptsUpperCase) {
  const auto v = from_hex("DEADBEEF");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_hex(*v), "deadbeef");
}

TEST(Base64, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(to_bytes("")), "");
  EXPECT_EQ(base64_encode(to_bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(to_bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(to_bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(to_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(to_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(to_bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64, DecodeVectors) {
  const auto v = base64_decode("Zm9vYmFy");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, to_bytes("foobar"));
}

TEST(Base64, DecodeSkipsWhitespace) {
  const auto v = base64_decode("Zm9v\nYmFy\n");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, to_bytes("foobar"));
}

TEST(Base64, RejectsInvalidChar) {
  EXPECT_FALSE(base64_decode("Zm9v!").has_value());
}

TEST(Base64, RejectsDataAfterPadding) {
  EXPECT_FALSE(base64_decode("Zg==Zg").has_value());
}

TEST(Base64, RandomRoundTrips) {
  Rng rng(101);
  for (std::size_t len = 0; len < 64; ++len) {
    std::vector<std::byte> data(len);
    rng.fill_bytes(data);
    const auto back = base64_decode(base64_encode(data));
    ASSERT_TRUE(back.has_value()) << "len=" << len;
    EXPECT_EQ(*back, data) << "len=" << len;
  }
}

TEST(WrapLines, WrapsAt64) {
  const std::string text(130, 'a');
  const std::string wrapped = wrap_lines(text, 64);
  EXPECT_EQ(wrapped.size(), 130 + 3);  // two full lines + remainder newline
  EXPECT_EQ(wrapped[64], '\n');
  EXPECT_EQ(wrapped[129], '\n');
  EXPECT_EQ(wrapped.back(), '\n');
}

TEST(WrapLines, ExactMultipleGetsSingleTrailingNewline) {
  const std::string wrapped = wrap_lines(std::string(64, 'x'), 64);
  EXPECT_EQ(wrapped.size(), 65u);
  EXPECT_EQ(wrapped.back(), '\n');
}

}  // namespace
}  // namespace keyguard::util
