#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "bignum/prime.hpp"

namespace keyguard::crypto {
namespace {

using bn::Bignum;

// Key generation dominates the suite's runtime, so keys are shared.
class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng(20070323);  // the paper's date
    key512_ = new RsaPrivateKey(generate_rsa_key(rng, 512));
    key1024_ = new RsaPrivateKey(generate_rsa_key(rng, 1024));
  }
  static void TearDownTestSuite() {
    delete key512_;
    delete key1024_;
    key512_ = nullptr;
    key1024_ = nullptr;
  }
  static RsaPrivateKey* key512_;
  static RsaPrivateKey* key1024_;
};

RsaPrivateKey* RsaTest::key512_ = nullptr;
RsaPrivateKey* RsaTest::key1024_ = nullptr;

TEST_F(RsaTest, GeneratedKeyValidates) {
  EXPECT_TRUE(key512_->validate());
  EXPECT_TRUE(key1024_->validate());
}

TEST_F(RsaTest, ModulusHasRequestedBits) {
  EXPECT_EQ(key512_->n.bit_length(), 512u);
  EXPECT_EQ(key1024_->n.bit_length(), 1024u);
}

TEST_F(RsaTest, PrimesHaveHalfModulusBits) {
  EXPECT_EQ(key1024_->p.bit_length(), 512u);
  EXPECT_EQ(key1024_->q.bit_length(), 512u);
  EXPECT_GT(key1024_->p, key1024_->q);  // conventional ordering
}

TEST_F(RsaTest, EncryptDecryptRoundTripCrt) {
  util::Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const Bignum m = bn::random_below(rng, key1024_->n);
    const Bignum c = key1024_->public_key().encrypt_raw(m);
    EXPECT_EQ(key1024_->decrypt_crt(c), m);
  }
}

TEST_F(RsaTest, CrtMatchesPlainDecryption) {
  util::Rng rng(2);
  for (int i = 0; i < 5; ++i) {
    const Bignum c = bn::random_below(rng, key512_->n);
    EXPECT_EQ(key512_->decrypt_crt(c), key512_->decrypt_plain(c));
  }
}

TEST_F(RsaTest, SignVerifyViaRawOps) {
  // Signature = decrypt(m); verify = encrypt(sig) == m.
  util::Rng rng(3);
  const Bignum m = bn::random_below(rng, key1024_->n);
  const Bignum sig = key1024_->decrypt_crt(m);
  EXPECT_EQ(key1024_->public_key().encrypt_raw(sig), m);
}

TEST_F(RsaTest, PaddedEncryptDecryptRoundTrip) {
  util::Rng rng(4);
  const auto msg = util::to_bytes("attack at dawn");
  const auto c = pad_encrypt(rng, key1024_->public_key(), msg);
  ASSERT_TRUE(c.has_value());
  const auto back = unpad_decrypt(*key1024_, *c);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, msg);
}

TEST_F(RsaTest, PaddingRejectsOversizeMessage) {
  util::Rng rng(5);
  std::vector<std::byte> big(key512_->public_key().modulus_bytes() - 10);
  EXPECT_FALSE(pad_encrypt(rng, key512_->public_key(), big).has_value());
}

TEST_F(RsaTest, MaxLengthMessageFits) {
  util::Rng rng(6);
  std::vector<std::byte> msg(key512_->public_key().modulus_bytes() - 11, std::byte{0x5a});
  const auto c = pad_encrypt(rng, key512_->public_key(), msg);
  ASSERT_TRUE(c.has_value());
  const auto back = unpad_decrypt(*key512_, *c);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, msg);
}

TEST_F(RsaTest, UnpadRejectsGarbageCiphertext) {
  util::Rng rng(7);
  const Bignum junk = bn::random_below(rng, key512_->n);
  // A random ciphertext decrypts to a block that almost surely lacks the
  // 00 02 prefix.
  EXPECT_FALSE(unpad_decrypt(*key512_, junk).has_value());
}

TEST_F(RsaTest, EmptyMessageRoundTrips) {
  util::Rng rng(8);
  const auto c = pad_encrypt(rng, key512_->public_key(), {});
  ASSERT_TRUE(c.has_value());
  const auto back = unpad_decrypt(*key512_, *c);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST_F(RsaTest, ValidateDetectsTamperedKey) {
  RsaPrivateKey bad = *key512_;
  bad.d = bad.d + Bignum(2);
  EXPECT_FALSE(bad.validate());
  bad = *key512_;
  bad.p = bad.p + Bignum(2);
  EXPECT_FALSE(bad.validate());
  bad = *key512_;
  bad.iqmp = bad.iqmp + Bignum(1);
  EXPECT_FALSE(bad.validate());
}

TEST_F(RsaTest, FingerprintStableAndShort) {
  const auto fp = key_fingerprint(key1024_->public_key());
  EXPECT_EQ(fp.size(), 16u);
  EXPECT_EQ(fp, key_fingerprint(key1024_->public_key()));
  EXPECT_NE(fp, key_fingerprint(key512_->public_key()));
}

TEST_F(RsaTest, DeterministicGeneration) {
  util::Rng a(77), b(77);
  const auto k1 = generate_rsa_key(a, 256);
  const auto k2 = generate_rsa_key(b, 256);
  EXPECT_EQ(k1.n, k2.n);
  EXPECT_EQ(k1.d, k2.d);
}

TEST_F(RsaTest, PublicExponentIsConfigurable) {
  util::Rng rng(88);
  const auto key = generate_rsa_key(rng, 256, 17);
  EXPECT_EQ(key.e, Bignum(17));
  EXPECT_TRUE(key.validate());
  const Bignum m(12345);
  EXPECT_EQ(key.decrypt_crt(key.public_key().encrypt_raw(m)), m);
}

}  // namespace
}  // namespace keyguard::crypto
