#include "bignum/montgomery.hpp"

#include <gtest/gtest.h>

#include "bignum/prime.hpp"
#include "util/rng.hpp"

namespace keyguard::bn {
namespace {

TEST(Montgomery, ToFromMontRoundTrip) {
  util::Rng rng(5);
  const Bignum n = random_bits(rng, 256).add_limb(1);  // odd? force below
  const Bignum modulus = n.is_odd() ? n : n.add_limb(1);
  const MontgomeryContext ctx(modulus);
  for (int i = 0; i < 50; ++i) {
    const Bignum a = random_below(rng, modulus);
    EXPECT_EQ(ctx.from_mont(ctx.to_mont(a)), a);
  }
}

TEST(Montgomery, MulMatchesPlainModularProduct) {
  util::Rng rng(6);
  Bignum modulus = random_bits(rng, 384);
  if (modulus.is_even()) modulus = modulus.add_limb(1);
  const MontgomeryContext ctx(modulus);
  for (int i = 0; i < 50; ++i) {
    const Bignum a = random_below(rng, modulus);
    const Bignum b = random_below(rng, modulus);
    const Bignum got = ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
    EXPECT_EQ(got, (a * b) % modulus);
  }
}

TEST(Montgomery, ExpMatchesGenericModExp) {
  util::Rng rng(7);
  for (const std::size_t bits : {65u, 128u, 255u, 512u}) {
    Bignum modulus = random_bits(rng, bits);
    if (modulus.is_even()) modulus = modulus.add_limb(1);
    const MontgomeryContext ctx(modulus);
    for (int i = 0; i < 10; ++i) {
      const Bignum base = random_below(rng, modulus);
      const Bignum e = random_bits(rng, 48);
      // Reference: square-and-multiply with divmod reduction.
      Bignum ref(1);
      for (std::size_t bit = e.bit_length(); bit-- > 0;) {
        ref = (ref * ref) % modulus;
        if (e.bit(bit)) ref = (ref * base) % modulus;
      }
      EXPECT_EQ(ctx.exp(base, e), ref) << "bits=" << bits;
    }
  }
}

TEST(Montgomery, ExpZeroExponentIsOne) {
  const MontgomeryContext ctx(Bignum(101));
  EXPECT_TRUE(ctx.exp(Bignum(7), Bignum{}).is_one());
}

TEST(Montgomery, ExpHandlesBaseLargerThanModulus) {
  const MontgomeryContext ctx(Bignum(101));
  EXPECT_EQ(ctx.exp(Bignum(1000), Bignum(3)), Bignum(1000 % 101 * (1000 % 101) % 101 * (1000 % 101) % 101));
}

TEST(Montgomery, SingleLimbModulus) {
  const MontgomeryContext ctx(Bignum(0xfffffffbULL));  // prime near 2^32
  util::Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const Bignum a = Bignum(rng.next_below(0xfffffffbULL));
    const Bignum b = Bignum(rng.next_below(0xfffffffbULL));
    const Bignum got = ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
    EXPECT_EQ(got, (a * b) % Bignum(0xfffffffbULL));
  }
}

TEST(Montgomery, RrIsRSquaredModN) {
  const Bignum n(1000003);
  const MontgomeryContext ctx(n);
  const Bignum r = Bignum(1) << 64;
  EXPECT_EQ(ctx.rr(), (r * r) % n);
}

TEST(Montgomery, ModulusAccessor) {
  const Bignum n(999983);
  EXPECT_EQ(MontgomeryContext(n).modulus(), n);
}

}  // namespace
}  // namespace keyguard::bn
