#include "core/secure_rsa.hpp"

#include <gtest/gtest.h>

#include "bignum/prime.hpp"
#include "util/bytes.hpp"

namespace keyguard::secure {
namespace {

using bn::Bignum;

const crypto::RsaPrivateKey& test_key() {
  static const crypto::RsaPrivateKey k = [] {
    util::Rng rng(909);
    return crypto::generate_rsa_key(rng, 512);
  }();
  return k;
}

TEST(BignumScrub, DestroysValue) {
  Bignum v = *Bignum::from_hex("deadbeefcafebabe1234567890abcdef");
  v.scrub();
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v.limb_count(), 0u);
}

TEST(BignumScrub, ZeroIsSafe) {
  Bignum v;
  v.scrub();
  EXPECT_TRUE(v.is_zero());
}

TEST(KeyScrub, PrivatePartsGonePublicRemains) {
  crypto::RsaPrivateKey key = test_key();
  key.scrub_private_parts();
  EXPECT_TRUE(key.d.is_zero());
  EXPECT_TRUE(key.p.is_zero());
  EXPECT_TRUE(key.q.is_zero());
  EXPECT_TRUE(key.iqmp.is_zero());
  EXPECT_EQ(key.n, test_key().n);
  EXPECT_EQ(key.e, test_key().e);
  EXPECT_FALSE(key.validate());
}

TEST(SecureRsaKey, DecryptMatchesPlainKey) {
  const auto secure = SecureRsaKey::from_key(test_key());
  util::Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    const Bignum c = bn::random_below(rng, test_key().n);
    EXPECT_EQ(secure.decrypt(c), test_key().decrypt_crt(c));
  }
}

TEST(SecureRsaKey, SignVerifyRoundTrip) {
  const auto secure = SecureRsaKey::from_key(test_key());
  const Bignum m(123456789);
  const Bignum sig = secure.sign(m);
  EXPECT_EQ(secure.public_key().encrypt_raw(sig), m);
}

TEST(SecureRsaKey, PublicKeyMatches) {
  const auto secure = SecureRsaKey::from_key(test_key());
  EXPECT_EQ(secure.public_key().n, test_key().n);
  EXPECT_EQ(secure.public_key().e, test_key().e);
}

TEST(SecureRsaKey, ScrubbingConstructionDestroysSource) {
  crypto::RsaPrivateKey plain = test_key();
  const auto secure = SecureRsaKey::from_key_scrubbing(plain);
  EXPECT_TRUE(plain.d.is_zero());
  EXPECT_TRUE(plain.p.is_zero());
  // The secure copy still works.
  const Bignum m(42);
  EXPECT_EQ(secure.public_key().encrypt_raw(secure.sign(m)), m);
}

TEST(SecureRsaKey, FootprintIsOnePageForTypicalKeys) {
  const auto secure = SecureRsaKey::from_key(test_key());
  // 512-bit key: 8 parts, each <= 64 bytes -> well under a page, so the
  // whole key sits on ONE physical page like the paper's aligned region.
  EXPECT_LE(secure.footprint_bytes(), 4096u);
  EXPECT_TRUE(secure.canary_intact());
}

TEST(SecureRsaKey, MoveKeepsWorking) {
  auto a = SecureRsaKey::from_key(test_key());
  const auto b = std::move(a);
  const Bignum m(7);
  EXPECT_EQ(b.public_key().encrypt_raw(b.sign(m)), m);
}

TEST(SecureRsaKey, LockedQueryDoesNotCrash) {
  const auto secure = SecureRsaKey::from_key(test_key());
  (void)secure.locked();  // may be false under RLIMIT_MEMLOCK
  SUCCEED();
}

}  // namespace
}  // namespace keyguard::secure
