// Edge cases not covered by the algebraic property sweeps.
#include <gtest/gtest.h>

#include "bignum/montgomery.hpp"
#include "bignum/prime.hpp"

namespace keyguard::bn {
namespace {

TEST(BignumEdge, ModExpBaseZero) {
  EXPECT_TRUE(Bignum::mod_exp(Bignum{}, Bignum(5), Bignum(7)).is_zero());
  // 0^0 == 1 by the usual convention.
  EXPECT_TRUE(Bignum::mod_exp(Bignum{}, Bignum{}, Bignum(7)).is_one());
}

TEST(BignumEdge, ModExpExponentLargerThanModulus) {
  // 3^(2^130) mod 1000003 via Fermat: order divides 1000002.
  const Bignum m(1000003);  // prime
  const Bignum e = Bignum(1) << 130;
  const Bignum direct = Bignum::mod_exp(Bignum(3), e, m);
  // Reference: reduce the exponent mod (m-1).
  const Bignum e_red = e % (m - Bignum(1));
  EXPECT_EQ(direct, Bignum::mod_exp(Bignum(3), e_red, m));
}

TEST(BignumEdge, ModExpModulusTwo) {
  // Even modulus path, smallest legal modulus.
  EXPECT_TRUE(Bignum::mod_exp(Bignum(5), Bignum(3), Bignum(2)).is_one());
  EXPECT_TRUE(Bignum::mod_exp(Bignum(4), Bignum(3), Bignum(2)).is_zero());
}

TEST(BignumEdge, MontgomeryExpEverythingSmall) {
  const MontgomeryContext ctx(Bignum(3));
  EXPECT_EQ(ctx.exp(Bignum(2), Bignum(2)), Bignum(1));  // 4 mod 3
  EXPECT_EQ(ctx.exp(Bignum(2), Bignum(1)), Bignum(2));
}

TEST(BignumEdge, SubtractToZeroNormalizes) {
  const Bignum a = *Bignum::from_hex("ffffffffffffffffffffffffffffffff");
  const Bignum z = a - a;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.limb_count(), 0u);
  EXPECT_EQ(z + a, a);
}

TEST(BignumEdge, MulLimbMaxValues) {
  const Bignum max64 = *Bignum::from_hex("ffffffffffffffff");
  const Bignum r = max64.mul_limb(~0ULL);
  // (2^64-1)^2 = 2^128 - 2^65 + 1
  const Bignum expect = (Bignum(1) << 128) - (Bignum(1) << 65) + Bignum(1);
  EXPECT_EQ(r, expect);
}

TEST(BignumEdge, DivmodQuotientOneBoundary) {
  // a slightly above b: quotient exactly 1.
  util::Rng rng(5);
  const Bignum b = random_bits(rng, 200);
  const Bignum a = b + Bignum(17);
  const auto [q, r] = Bignum::divmod(a, b);
  EXPECT_TRUE(q.is_one());
  EXPECT_EQ(r, Bignum(17));
}

TEST(BignumEdge, FromBytesAllZeros) {
  std::vector<std::byte> zeros(40, std::byte{0});
  EXPECT_TRUE(Bignum::from_bytes_be(zeros).is_zero());
  EXPECT_TRUE(Bignum::from_bytes_le(zeros).is_zero());
}

TEST(BignumEdge, ShiftLeftOfZeroStaysZero) {
  EXPECT_TRUE((Bignum{} << 1000).is_zero());
}

TEST(BignumEdge, ScrubThenReuse) {
  Bignum v = *Bignum::from_decimal("123456789012345678901234567890");
  v.scrub();
  EXPECT_TRUE(v.is_zero());
  // The object is still a perfectly good zero: arithmetic works.
  v = v + Bignum(5);
  EXPECT_EQ(v.to_decimal(), "5");
}

TEST(BignumEdge, GcdOfEqualValues) {
  const Bignum a = *Bignum::from_hex("abcdef123456789");
  EXPECT_EQ(Bignum::gcd(a, a), a);
}

TEST(BignumEdge, ModInverseOfOne) {
  const auto inv = Bignum::mod_inverse(Bignum(1), Bignum(97));
  ASSERT_TRUE(inv.has_value());
  EXPECT_TRUE(inv->is_one());
}

TEST(BignumEdge, ModInverseModuloZeroRejected) {
  EXPECT_FALSE(Bignum::mod_inverse(Bignum(3), Bignum{}).has_value());
}

}  // namespace
}  // namespace keyguard::bn
