// Golden regression pins: exact, deterministic outcomes for fixed seeds.
//
// The whole reproduction is seeded, so these numbers are stable across
// runs and platforms (the simulator uses no wall-clock, no ASLR-visible
// addresses, no host allocator state). If a refactor changes them, that
// is a BEHAVIOUR change to the simulated machine — intended changes must
// update the pins consciously; unintended ones get caught here instead of
// as silent drift in every calibrated benchmark.
#include <gtest/gtest.h>

#include "attack/leaks.hpp"
#include "core/scenario.hpp"
#include "servers/ssh_server.hpp"
#include "util/bytes.hpp"

namespace keyguard {
namespace {

core::ScenarioConfig golden_config(core::ProtectionLevel level) {
  core::ScenarioConfig cfg;
  cfg.level = level;
  cfg.mem_bytes = 16ull << 20;
  cfg.key_bits = 512;
  cfg.seed = 777777;
  return cfg;
}

TEST(Golden, KeyGenerationPinned) {
  core::Scenario s(golden_config(core::ProtectionLevel::kNone));
  // The key itself is a function of the seed alone.
  EXPECT_EQ(s.key().n.bit_length(), 512u);
  EXPECT_EQ(s.key().n.mod_limb(1000003), 331420u);
  EXPECT_EQ(s.key().d.mod_limb(1000003), 788327u);
}

TEST(Golden, BaselineWorkloadCensusPinned) {
  core::Scenario s(golden_config(core::ProtectionLevel::kNone));
  servers::SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 15; ++i) server.handle_connection(8 << 10);
  const auto census = scan::KeyScanner::census(s.scanner().scan_kernel(s.kernel()));
  EXPECT_EQ(census.allocated, 5u);
  EXPECT_EQ(census.unallocated, 25u);
}

TEST(Golden, IntegratedWorkloadCensusPinned) {
  core::Scenario s(golden_config(core::ProtectionLevel::kIntegrated));
  servers::SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 15; ++i) server.handle_connection(8 << 10);
  const auto census = scan::KeyScanner::census(s.scanner().scan_kernel(s.kernel()));
  EXPECT_EQ(census.allocated, 3u);
  EXPECT_EQ(census.unallocated, 0u);
}

TEST(Golden, Ext2CaptureCopiesPinned) {
  core::Scenario s(golden_config(core::ProtectionLevel::kNone));
  servers::SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 15; ++i) server.handle_connection(8 << 10);
  attack::Ext2DirectoryLeak leak(s.kernel());
  leak.create_directories(500);
  EXPECT_EQ(s.scanner().count_copies(leak.capture()), 4u);
}

TEST(Golden, ScanOrderInvariantAcrossShardCounts) {
  // The parallel merge contract as a golden pin: for a fixed workload, the
  // full match list (offsets, parts, frames, provenance) is identical at
  // every shard count and arrives in ascending phys_offset order.
  core::Scenario s(golden_config(core::ProtectionLevel::kNone));
  servers::SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 15; ++i) server.handle_connection(8 << 10);
  auto& scanner = s.scanner();
  scanner.set_shards(1);
  const auto serial = scanner.scan_kernel(s.kernel());
  ASSERT_FALSE(serial.empty());
  for (std::size_t i = 1; i < serial.size(); ++i) {
    ASSERT_LE(serial[i - 1].phys_offset, serial[i].phys_offset);
  }
  for (const std::size_t shards : {2u, 4u, 8u}) {
    scanner.set_shards(shards);
    const auto parallel = scanner.scan_kernel(s.kernel());
    ASSERT_EQ(parallel.size(), serial.size()) << shards << " shards";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(parallel[i].phys_offset, serial[i].phys_offset) << shards;
      ASSERT_EQ(parallel[i].part, serial[i].part) << shards;
      ASSERT_EQ(parallel[i].provenance, serial[i].provenance) << shards;
    }
  }
  scanner.set_shards(0);  // restore auto for any later use of the scenario
}

TEST(Golden, MemoryImageHashPinned) {
  // The strongest pin: a full workload's final physical memory, hashed.
  core::Scenario s(golden_config(core::ProtectionLevel::kNone));
  servers::SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 10; ++i) server.handle_connection(4 << 10);
  server.stop();
  const auto h = util::fnv1a(s.kernel().memory().all());
  // Compare against a second identical run rather than a constant, so the
  // pin is platform-independent while still catching nondeterminism.
  core::Scenario s2(golden_config(core::ProtectionLevel::kNone));
  servers::SshServer server2(s2.kernel(), s2.ssh_config(), s2.make_rng());
  ASSERT_TRUE(server2.start());
  for (int i = 0; i < 10; ++i) server2.handle_connection(4 << 10);
  server2.stop();
  EXPECT_EQ(h, util::fnv1a(s2.kernel().memory().all()));
}

}  // namespace
}  // namespace keyguard
