// Sim-side keystore: the measurable lifecycle. Pool pages are scrubbed on
// eviction (bytes AND taint), residue with the defenses off lands exactly
// where the paper says it does, and at-rest blobs are ciphertext the
// auditor classifies as non-secret.
#include "keystore/sim_keystore.hpp"

#include <gtest/gtest.h>

#include "analysis/taint_auditor.hpp"
#include "analysis/taint_map.hpp"
#include "crypto/pem.hpp"
#include "keystore/sealed_blob.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace keyguard::keystore {
namespace {

using analysis::ShadowTaintMap;
using analysis::TaintAuditor;
using sim::TaintTag;

struct Rig {
  sim::Kernel kernel;
  ShadowTaintMap map;
  sim::Process* proc;

  // O_NOCACHE support is on so the integrated-style configs keep key-file
  // text out of the page cache; the kernel stays stock otherwise (no
  // zero-on-free), so scrub failures are visible as residue.
  explicit Rig(std::size_t mem = 16ull << 20)
      : kernel(sim::KernelConfig{.mem_bytes = mem, .o_nocache_supported = true}),
        map(kernel) {
    kernel.attach_taint(&map);
    proc = &kernel.spawn("keystore_proc");
  }
};

std::vector<crypto::RsaPrivateKey> make_keys(std::size_t n, std::uint64_t seed = 11) {
  util::Rng rng(seed);
  std::vector<crypto::RsaPrivateKey> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(crypto::generate_rsa_key(rng, 512));
  return out;
}

std::vector<KeyId> ingest_all(Rig& rig, SimKeystore& ks,
                              const std::vector<crypto::RsaPrivateKey>& keys) {
  std::vector<KeyId> ids;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::string path = "/keys/k" + std::to_string(i) + ".pem";
    rig.kernel.vfs().write_file(path, util::to_bytes(crypto::pem_encode_private_key(keys[i])),
                                TaintTag::kPem);
    const auto id = ks.ingest_pem(path);
    EXPECT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  return ids;
}

/// One padded encrypt/decrypt round against key `idx`, verified.
void roundtrip(Rig& rig, SimKeystore& ks, const std::vector<KeyId>& ids,
               std::size_t idx, util::Rng& rng) {
  std::vector<std::byte> secret(24);
  rng.fill_bytes(secret);
  const auto& pub = ks.public_key(ids[idx]);
  const auto c = crypto::pad_encrypt(rng, pub, secret);
  ASSERT_TRUE(c.has_value());
  const auto m = ks.private_op(ids[idx], *c);
  const auto block = m.to_bytes_be(pub.modulus_bytes());
  const std::vector<std::byte> tail(
      block.end() - static_cast<std::ptrdiff_t>(secret.size()), block.end());
  EXPECT_EQ(tail, secret);
}

TEST(SimKeystore, IngestAndPrivateOpRoundTrip) {
  Rig rig;
  SimKeystore ks(rig.kernel, *rig.proc, {.pool_pages = 2});
  const auto keys = make_keys(3);
  const auto ids = ingest_all(rig, ks, keys);
  util::Rng rng(5);
  for (std::size_t i = 0; i < ids.size(); ++i) roundtrip(rig, ks, ids, i, rng);
  EXPECT_EQ(ks.stats().ingested, 3u);
  EXPECT_EQ(ks.stats().ops, 3u);
}

TEST(SimKeystore, IngestRejectsMissingAndMalformedFiles) {
  Rig rig;
  SimKeystore ks(rig.kernel, *rig.proc, {});
  EXPECT_FALSE(ks.ingest_pem("/no/such/file").has_value());
  rig.kernel.vfs().write_file("/keys/garbage.pem", util::to_bytes("not a key"));
  EXPECT_FALSE(ks.ingest_pem("/keys/garbage.pem").has_value());
}

TEST(SimKeystore, PoolBoundHoldsUnderChurnAndLruEvicts) {
  Rig rig;
  SimKeystore ks(rig.kernel, *rig.proc, {.pool_pages = 2});
  const auto keys = make_keys(5);
  const auto ids = ingest_all(rig, ks, keys);
  util::Rng rng(6);
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      roundtrip(rig, ks, ids, i, rng);
      EXPECT_LE(ks.pooled_count(), 2u);
    }
  }
  EXPECT_GT(ks.stats().evictions, 0u);
  // LRU: after touching ids[4] last, ids[4] must be pooled.
  EXPECT_TRUE(ks.pooled(ids[4]));
}

TEST(SimKeystore, PoolHitDoesNotUnseal) {
  Rig rig;
  SimKeystore ks(rig.kernel, *rig.proc, {.pool_pages = 2});
  const auto keys = make_keys(1);
  const auto ids = ingest_all(rig, ks, keys);
  util::Rng rng(7);
  for (int i = 0; i < 5; ++i) roundtrip(rig, ks, ids, 0, rng);
  EXPECT_EQ(ks.stats().unseals, 1u);
  EXPECT_EQ(ks.stats().pool_hits, 4u);
  EXPECT_EQ(ks.stats().pool_misses, 1u);
}

TEST(SimKeystore, EvictedSlotIsScrubbedBytesAndTaint) {
  Rig rig;
  SimKeystore ks(rig.kernel, *rig.proc, {.pool_pages = 1});
  const auto keys = make_keys(2);
  const auto ids = ingest_all(rig, ks, keys);
  util::Rng rng(8);
  roundtrip(rig, ks, ids, 0, rng);
  ASSERT_TRUE(ks.pooled(ids[0]));
  ks.evict(ids[0]);
  EXPECT_FALSE(ks.pooled(ids[0]));

  // Bytes: the slot page reads back all-zero before any reuse.
  std::vector<std::byte> page(sim::kPageSize);
  rig.kernel.mem_read(*rig.proc, ks.slot_page(0), page);
  EXPECT_TRUE(std::all_of(page.begin(), page.end(),
                          [](std::byte b) { return b == std::byte{0}; }));

  // Taint: no kPoolKey bytes survive anywhere in the machine.
  TaintAuditor auditor(rig.map);
  const auto report = auditor.audit(rig.kernel);
  EXPECT_EQ(report.bytes_by_tag[static_cast<std::size_t>(TaintTag::kPoolKey)], 0u);

  // And the slot is immediately reusable for the other key.
  roundtrip(rig, ks, ids, 1, rng);
  EXPECT_TRUE(ks.pooled(ids[1]));
}

TEST(SimKeystore, NoScrubConfigLeavesResidueAfterShutdown) {
  Rig rig;
  auto* proc = rig.proc;
  {
    SimKeystore ks(rig.kernel, *proc,
                   {.pool_pages = 1,
                    .seal_at_rest = true,
                    .scrub_on_evict = false,
                    .clear_temporaries = false});
    const auto keys = make_keys(1);
    const auto ids = ingest_all(rig, ks, keys);
    util::Rng rng(9);
    roundtrip(rig, ks, ids, 0, rng);
    ks.shutdown();  // munmaps WITHOUT scrubbing
  }
  TaintAuditor auditor(rig.map);
  const auto report = auditor.audit(rig.kernel);
  // Pool limbs and master key are now unallocated plaintext residue —
  // exactly what scrub_on_evict exists to prevent.
  EXPECT_GT(report.secret.unallocated, 0u);
  EXPECT_GT(report.bytes_by_tag[static_cast<std::size_t>(TaintTag::kPoolKey)], 0u);
  EXPECT_GT(report.bytes_by_tag[static_cast<std::size_t>(TaintTag::kMasterKey)], 0u);
}

TEST(SimKeystore, ScrubbingShutdownLeavesNoSecretBytes) {
  Rig rig;
  {
    SimKeystore ks(rig.kernel, *rig.proc, {.pool_pages = 2});
    const auto keys = make_keys(2);
    const auto ids = ingest_all(rig, ks, keys);
    util::Rng rng(10);
    roundtrip(rig, ks, ids, 0, rng);
    roundtrip(rig, ks, ids, 1, rng);
    ks.shutdown();
  }
  TaintAuditor auditor(rig.map);
  const auto report = auditor.audit(rig.kernel);
  EXPECT_EQ(report.secret.total(), 0u)
      << TaintAuditor::format(report);
}

TEST(SimKeystore, SealedBlobsAreCiphertextNotSecret) {
  Rig rig;
  SimKeystore ks(rig.kernel, *rig.proc, {.pool_pages = 2});
  const auto keys = make_keys(4);
  ingest_all(rig, ks, keys);

  // No ops yet: the only plaintext secret in the machine is the master
  // key on its single mlocked page; blobs are sealed heap bytes.
  TaintAuditor auditor(rig.map);
  const auto report = auditor.audit(rig.kernel);
  EXPECT_GT(report.sealed.allocated, 0u);
  EXPECT_EQ(report.secret_tainted_frames, 1u);
  EXPECT_EQ(report.master_key_frames, 1u);
  EXPECT_TRUE(report.bounded_locked_pages_only(2)) << TaintAuditor::format(report);
}

TEST(SimKeystore, UnsealedAtRestViolatesTheBound) {
  Rig rig;
  SimKeystore ks(rig.kernel, *rig.proc,
                 {.pool_pages = 2,
                  .seal_at_rest = false,
                  .scrub_on_evict = true,
                  .clear_temporaries = true});
  const auto keys = make_keys(4);
  const auto ids = ingest_all(rig, ks, keys);
  util::Rng rng(12);
  roundtrip(rig, ks, ids, 0, rng);

  TaintAuditor auditor(rig.map);
  const auto report = auditor.audit(rig.kernel);
  // Plaintext DER blobs sit in swappable heap: secret bytes off the
  // locked set, so no bound can hold.
  EXPECT_GT(report.bytes_by_tag[static_cast<std::size_t>(TaintTag::kDer)], 0u);
  EXPECT_FALSE(report.bounded_locked_pages_only(2));
  EXPECT_FALSE(report.bounded_locked_pages_only(1000));
}

}  // namespace
}  // namespace keyguard::keystore
