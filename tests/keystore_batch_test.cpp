// Batched CTR unseal: the oracle battery.
//
// private_op_batch() queues every cold unseal's keystream need into ONE
// CoprocessorDomain round trip. Correctness claim: for ANY batch size and
// ANY interleaving of ids, the batched store is bit-identical — results,
// pool membership, slot page bytes — to a twin store driven one op at a
// time, while making strictly fewer domain crossings. Two rigs with
// same-seeded domains make that claim mechanically checkable.
#include "keystore/encrypted_keystore.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/taint_map.hpp"
#include "crypto/pem.hpp"
#include "keystore/sealed_blob.hpp"
#include "sim/coprocessor.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace keyguard::keystore {
namespace {

using sim::CoprocessorDomain;
using sim::TaintTag;

TEST(CoprocessorBatch, KeystreamBatchMatchesSequentialBitForBit) {
  CoprocessorDomain a(0xb0);
  CoprocessorDomain b(0xb0);  // same seed: an independent oracle
  util::Rng rng(31);
  for (int round = 0; round < 8; ++round) {
    const std::size_t n = 1 + rng.next_below(6);
    std::vector<std::vector<std::byte>> batch_out(n);
    std::vector<std::uint64_t> nonces(n), firsts(n);
    std::vector<CoprocessorDomain::KeystreamRequest> reqs;
    for (std::size_t i = 0; i < n; ++i) {
      nonces[i] = rng.next_below(1u << 20);
      firsts[i] = rng.next_below(4);
      batch_out[i].resize(1 + rng.next_below(200));
      reqs.push_back({nonces[i], firsts[i], batch_out[i]});
    }
    const auto trips_before = a.keystream_round_trips();
    ASSERT_TRUE(a.keystream_batch(reqs));
    EXPECT_EQ(a.keystream_round_trips(), trips_before + 1);  // ONE crossing
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::byte> single(batch_out[i].size());
      ASSERT_TRUE(b.keystream(nonces[i], single, firsts[i]));
      EXPECT_EQ(batch_out[i], single) << "round " << round << " req " << i;
    }
  }
  // Batch on a powered-off domain refuses whole.
  a.power_off();
  std::vector<std::byte> out(16);
  CoprocessorDomain::KeystreamRequest req{1, 0, out};
  EXPECT_FALSE(a.keystream_batch({&req, 1}));
}

TEST(CoprocessorBatch, MacIsDeterministicAndDomainSeparated) {
  CoprocessorDomain a(0xb1);
  CoprocessorDomain b(0xb1);
  CoprocessorDomain other(0xb2);
  std::vector<std::byte> msg(40);
  util::Rng rng(32);
  rng.fill_bytes(msg);
  const auto t1 = a.mac(7, msg);
  const auto t2 = b.mac(7, msg);
  ASSERT_TRUE(t1 && t2);
  EXPECT_EQ(*t1, *t2);
  // Different nonce, different seed, different data: all distinct tags.
  EXPECT_NE(*a.mac(8, msg), *t1);
  EXPECT_NE(*other.mac(7, msg), *t1);
  auto msg2 = msg;
  msg2[0] ^= std::byte{1};
  EXPECT_NE(*a.mac(7, msg2), *t1);
  // MAC bytes are not CTR keystream bytes for the same nonce (the 'M'/'C'
  // tag in the domain's derivation separates them).
  std::vector<std::byte> ks(CoprocessorDomain::kTagBytes);
  ASSERT_TRUE(a.keystream(7, ks));
  EXPECT_FALSE(std::equal(ks.begin(), ks.end(), t1->begin()));
}

// ---- twin-store oracle ----------------------------------------------------

struct Twin {
  sim::Kernel kernel;
  analysis::ShadowTaintMap map;
  sim::Process* proc;
  CoprocessorDomain domain;
  EncryptedPoolKeystore ks;

  Twin(std::uint64_t domain_seed, EncryptedKeystoreConfig cfg)
      : kernel(sim::KernelConfig{.mem_bytes = 8ull << 20,
                                 .o_nocache_supported = true}),
        map(kernel),
        proc(&kernel.spawn("twin")),
        domain(domain_seed),
        ks(kernel, *proc, domain, cfg) {
    kernel.attach_taint(&map);
  }
};

std::vector<KeyId> ingest_keys(Twin& t,
                               const std::vector<crypto::RsaPrivateKey>& keys) {
  std::vector<KeyId> ids;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::string path = "/keys/k" + std::to_string(i) + ".pem";
    t.kernel.vfs().write_file(path,
                              util::to_bytes(crypto::pem_encode_private_key(keys[i])),
                              TaintTag::kPem);
    const auto id = t.ks.ingest_pem(path);
    EXPECT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  return ids;
}

/// The two stores must be indistinguishable: same membership, same
/// plaintext set, and byte-identical slot pages (ciphertext AND plaintext).
void expect_same_state(Twin& a, Twin& b, const std::vector<KeyId>& ids) {
  ASSERT_EQ(a.ks.pool_pages(), b.ks.pool_pages());
  EXPECT_EQ(a.ks.plaintext_count(), b.ks.plaintext_count());
  for (const auto id : ids) {
    EXPECT_EQ(a.ks.pooled(id), b.ks.pooled(id)) << "key " << id;
    EXPECT_EQ(a.ks.plaintext(id), b.ks.plaintext(id)) << "key " << id;
  }
  for (std::size_t i = 0; i < a.ks.pool_pages(); ++i) {
    EXPECT_EQ(a.ks.slot_occupant(i), b.ks.slot_occupant(i)) << "slot " << i;
    std::vector<std::byte> pa(256), pb(256);
    a.kernel.mem_read(*a.proc, a.ks.slot_page(i), pa);
    b.kernel.mem_read(*b.proc, b.ks.slot_page(i), pb);
    EXPECT_EQ(pa, pb) << "slot " << i;
  }
}

TEST(EncryptedKeystoreBatch, BatchedOpsMatchSequentialOracle) {
  const EncryptedKeystoreConfig cfg{.pool_pages = 4, .working_set = 2};
  Twin batched(0xc0, cfg);
  Twin oracle(0xc0, cfg);
  const auto keys = [] {
    util::Rng rng(41);
    std::vector<crypto::RsaPrivateKey> ks;
    for (int i = 0; i < 6; ++i) ks.push_back(crypto::generate_rsa_key(rng, 512));
    return ks;
  }();
  const auto ids = ingest_keys(batched, keys);
  ASSERT_EQ(ingest_keys(oracle, keys), ids);
  expect_same_state(batched, oracle, ids);

  util::Rng rng(42);
  for (int round = 0; round < 12; ++round) {
    const std::size_t n = 1 + rng.next_below(5);
    std::vector<KeyId> req_ids;
    std::vector<bn::Bignum> cs;
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = ids[rng.next_below(ids.size())];
      std::vector<std::byte> secret(16);
      rng.fill_bytes(secret);
      const auto c =
          crypto::pad_encrypt(rng, batched.ks.public_key(id), secret);
      ASSERT_TRUE(c.has_value());
      req_ids.push_back(id);
      cs.push_back(*c);
    }
    const auto got = batched.ks.private_op_batch(req_ids, cs);
    ASSERT_EQ(got.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto want = oracle.ks.try_private_op(req_ids[i], cs[i]);
      ASSERT_TRUE(want.has_value()) << "round " << round << " op " << i;
      ASSERT_TRUE(got[i].has_value()) << "round " << round << " op " << i;
      EXPECT_EQ(*got[i], *want) << "round " << round << " op " << i;
    }
    expect_same_state(batched, oracle, ids);
    // Every key also re-encrypts identically sometimes, so ciphertext
    // pages (epoch'd nonces) are compared too, not just plaintext.
    if (round % 4 == 3) {
      batched.ks.reencrypt_all();
      oracle.ks.reencrypt_all();
      expect_same_state(batched, oracle, ids);
    }
  }
  EXPECT_GT(batched.ks.stats().batches, 0u);
  // The whole point: strictly fewer bus crossings than one-at-a-time.
  EXPECT_LT(batched.domain.keystream_round_trips(),
            oracle.domain.keystream_round_trips());
}

TEST(EncryptedKeystoreBatch, ColdBatchIsOneKeystreamRoundTrip) {
  const EncryptedKeystoreConfig cfg{.pool_pages = 8, .working_set = 4};
  Twin t(0xc1, cfg);
  util::Rng keygen(43);
  std::vector<crypto::RsaPrivateKey> keys;
  for (int i = 0; i < 4; ++i) keys.push_back(crypto::generate_rsa_key(keygen, 512));
  const auto ids = ingest_keys(t, keys);

  util::Rng rng(44);
  std::vector<bn::Bignum> cs;
  std::vector<std::vector<std::byte>> secrets;
  for (const auto id : ids) {
    secrets.emplace_back(16);
    rng.fill_bytes(secrets.back());
    const auto c = crypto::pad_encrypt(rng, t.ks.public_key(id), secrets.back());
    ASSERT_TRUE(c.has_value());
    cs.push_back(*c);
  }

  // 4 cold keys, working set 4: one batch, ONE CTR crossing for all four
  // blob keystreams (tag checks are mac() crossings, counted separately).
  const auto ctr_before = t.domain.keystream_round_trips();
  const auto got = t.ks.private_op_batch(ids, cs);
  EXPECT_EQ(t.domain.keystream_round_trips(), ctr_before + 1);
  EXPECT_EQ(t.ks.stats().prefetch_hits, ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(got[i].has_value());
    const auto block =
        got[i]->to_bytes_be(t.ks.public_key(ids[i]).modulus_bytes());
    const std::vector<std::byte> tail(
        block.end() - static_cast<std::ptrdiff_t>(secrets[i].size()),
        block.end());
    EXPECT_EQ(tail, secrets[i]);
  }
}

TEST(EncryptedKeystoreBatch, FuzzInterleavingsWithFaultsMatchOracle) {
  const EncryptedKeystoreConfig cfg{.pool_pages = 3, .working_set = 2};
  Twin batched(0xc2, cfg);
  Twin oracle(0xc2, cfg);
  const auto keys = [] {
    util::Rng rng(51);
    std::vector<crypto::RsaPrivateKey> ks;
    for (int i = 0; i < 5; ++i) ks.push_back(crypto::generate_rsa_key(rng, 512));
    return ks;
  }();
  const auto ids = ingest_keys(batched, keys);
  ASSERT_EQ(ingest_keys(oracle, keys), ids);

  // Corrupt ONE key's blob (same byte in both stores): its every unseal
  // must refuse in both, without disturbing neighbours in the same batch.
  const KeyId bad = ids[2];
  for (Twin* t : {&batched, &oracle}) {
    t->ks.evict(bad);
    std::byte b[1];
    t->kernel.mem_read(*t->proc, t->ks.blob_address(bad) + 20, b);
    b[0] ^= std::byte{0x40};
    t->kernel.mem_write(*t->proc, t->ks.blob_address(bad) + 20, b,
                        TaintTag::kSealed);
  }

  util::Rng rng(52);
  std::size_t refused = 0, served = 0;
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.next_below(6);
    std::vector<KeyId> req_ids;
    std::vector<bn::Bignum> cs;
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = ids[rng.next_below(ids.size())];
      req_ids.push_back(id);
      std::vector<std::byte> secret(12);
      rng.fill_bytes(secret);
      const auto c =
          crypto::pad_encrypt(rng, batched.ks.public_key(id), secret);
      ASSERT_TRUE(c.has_value());
      cs.push_back(*c);
    }
    const auto got = batched.ks.private_op_batch(req_ids, cs);
    for (std::size_t i = 0; i < n; ++i) {
      const auto want = oracle.ks.try_private_op(req_ids[i], cs[i]);
      ASSERT_EQ(got[i].has_value(), want.has_value())
          << "round " << round << " op " << i << " key " << req_ids[i];
      if (req_ids[i] == bad) {
        EXPECT_FALSE(got[i].has_value()) << "tampered key served!";
        ++refused;
      } else {
        ASSERT_TRUE(got[i].has_value());
        EXPECT_EQ(*got[i], *want);
        ++served;
      }
    }
    expect_same_state(batched, oracle, ids);
  }
  EXPECT_GT(refused, 0u);
  EXPECT_GT(served, 0u);
  EXPECT_FALSE(batched.ks.pooled(bad));
}

}  // namespace
}  // namespace keyguard::keystore
