// Page-cache pressure: the eviction residue channel. A stock kernel
// reclaims cache pages UNCLEARED, so cached secrets (the PEM key file
// included) reach unallocated memory without any process exiting.
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "servers/ssh_server.hpp"
#include "sim/kernel.hpp"
#include "util/bytes.hpp"

namespace keyguard::sim {
namespace {

TEST(PageCacheLru, EvictOldestFollowsPopulationOrder) {
  PhysicalMemory mem(kPageSize * 16);
  PageAllocator alloc(mem, {}, util::Rng(1));
  PageCache cache(mem, alloc);
  cache.populate("/a", util::to_bytes("a"));
  cache.populate("/b", util::to_bytes("b"));
  cache.populate("/c", util::to_bytes("c"));
  EXPECT_EQ(cache.cached_pages(), 3u);
  EXPECT_EQ(cache.evict_oldest(false), "/a");
  EXPECT_EQ(cache.evict_oldest(false), "/b");
  EXPECT_EQ(cache.cached_files(), 1u);
  EXPECT_TRUE(cache.cached("/c"));
}

TEST(PageCacheLru, EvictOldestOnEmptyIsNullopt) {
  PhysicalMemory mem(kPageSize * 4);
  PageAllocator alloc(mem, {}, util::Rng(1));
  PageCache cache(mem, alloc);
  EXPECT_FALSE(cache.evict_oldest(false).has_value());
}

TEST(PageCacheLru, BudgetEnforcedOnReads) {
  KernelConfig cfg;
  cfg.mem_bytes = 4ull << 20;
  cfg.page_cache_limit_pages = 4;
  Kernel k(cfg);
  auto& p = k.spawn("reader");
  for (int i = 0; i < 10; ++i) {
    const std::string path = "/f" + std::to_string(i);
    k.vfs().write_file(path, util::to_bytes("file-" + std::to_string(i)));
    k.read_file(p, path);
  }
  EXPECT_LE(k.page_cache().cached_pages(), 4u);
  // The most recent files survive.
  EXPECT_TRUE(k.page_cache().cached("/f9"));
  EXPECT_FALSE(k.page_cache().cached("/f0"));
}

TEST(PageCacheLru, EvictedKeyFileBecomesUnallocatedResidue) {
  // Read the key file, then flood the cache with other files: the PEM's
  // frames are reclaimed uncleared and show up as free-memory residue.
  core::ScenarioConfig scfg;
  scfg.mem_bytes = 8ull << 20;
  scfg.key_bits = 512;
  scfg.seed = 321;
  core::Scenario s(scfg);

  KernelConfig cfg;
  cfg.mem_bytes = 8ull << 20;
  cfg.page_cache_limit_pages = 3;
  Kernel k(cfg, 321);
  k.vfs().write_file("/key.pem", util::to_bytes(s.pem()));
  auto& p = k.spawn("reader");
  k.read_file(p, "/key.pem");
  // Three one-page files push the cache (limit 3) past budget; the PEM is
  // the oldest entry and gets reclaimed. Scan immediately — before any
  // further allocation recycles (and overwrites) the hot-freed frame.
  for (int i = 0; i < 3; ++i) {
    const std::string path = "/big" + std::to_string(i);
    k.vfs().write_file(path, std::vector<std::byte>(kPageSize, std::byte{0x11}));
    k.read_file(p, path);
  }
  EXPECT_FALSE(k.page_cache().cached("/key.pem"));
  const auto matches = s.scanner().scan_kernel(k);
  ASSERT_FALSE(matches.empty());
  bool found_free_pem = false;
  for (const auto& m : matches) {
    if (m.part == "PEM" && m.state == FrameState::kFree) found_free_pem = true;
  }
  EXPECT_TRUE(found_free_pem);
}

TEST(PageCacheLru, ZeroOnFreeKernelScrubsEvictions) {
  core::ScenarioConfig scfg;
  scfg.mem_bytes = 8ull << 20;
  scfg.key_bits = 512;
  scfg.seed = 654;
  core::Scenario s(scfg);

  KernelConfig cfg;
  cfg.mem_bytes = 8ull << 20;
  cfg.page_cache_limit_pages = 3;
  cfg.zero_on_free = true;
  Kernel k(cfg, 654);
  k.vfs().write_file("/key.pem", util::to_bytes(s.pem()));
  auto& p = k.spawn("reader");
  k.read_file(p, "/key.pem");
  for (int i = 0; i < 6; ++i) {
    const std::string path = "/big" + std::to_string(i);
    k.vfs().write_file(path, std::vector<std::byte>(kPageSize, std::byte{0x11}));
    k.read_file(p, path);
  }
  EXPECT_FALSE(k.page_cache().cached("/key.pem"));
  const auto census = scan::KeyScanner::census(s.scanner().scan_kernel(k));
  EXPECT_EQ(census.unallocated, 0u);
}

TEST(CacheBackedTransfers, ServedFilesChurnTheCache) {
  core::ScenarioConfig scfg;
  scfg.mem_bytes = 16ull << 20;
  scfg.key_bits = 512;
  scfg.seed = 987;
  core::Scenario s(scfg);
  auto cfg = s.ssh_config();
  cfg.transfer_files_via_cache = true;
  servers::SshServer server(s.kernel(), cfg, s.make_rng());
  ASSERT_TRUE(server.start());
  const auto before = s.kernel().page_cache().cached_pages();
  for (int i = 0; i < 5; ++i) server.handle_connection(32 << 10);
  EXPECT_GT(s.kernel().page_cache().cached_pages(), before);
  // The served files are cached under /srv/files/.
  EXPECT_TRUE(s.kernel().page_cache().cached("/srv/files/f0"));
}

}  // namespace
}  // namespace keyguard::sim
