#include "sim/swap.hpp"

#include <gtest/gtest.h>

#include "attack/leaks.hpp"
#include "core/scenario.hpp"
#include "servers/ssh_server.hpp"
#include "sim/kernel.hpp"
#include "sslsim/ssl_library.hpp"
#include "util/bytes.hpp"

namespace keyguard::sim {
namespace {

KernelConfig swap_config(bool encrypt = false) {
  KernelConfig cfg;
  cfg.mem_bytes = 4ull << 20;
  cfg.swap_pages = 64;
  cfg.encrypt_swap = encrypt;
  return cfg;
}

TEST(SwapDevice, SlotAllocationAndExhaustion) {
  SwapDevice dev(3);
  EXPECT_EQ(dev.capacity(), 3u);
  EXPECT_EQ(dev.used(), 0u);
  const auto a = dev.alloc_slot();
  const auto b = dev.alloc_slot();
  const auto c = dev.alloc_slot();
  ASSERT_TRUE(a && b && c);
  EXPECT_TRUE(dev.full());
  EXPECT_FALSE(dev.alloc_slot().has_value());
  dev.free_slot(*b, false);
  EXPECT_EQ(dev.used(), 2u);
  EXPECT_EQ(dev.alloc_slot(), b);  // lowest free slot reused
}

TEST(SwapDevice, FreeWithoutScrubKeepsBytes) {
  SwapDevice dev(2);
  const auto slot = dev.alloc_slot();
  ASSERT_TRUE(slot);
  dev.slot(*slot)[100] = std::byte{0xAA};
  dev.free_slot(*slot, /*scrub=*/false);
  EXPECT_EQ(dev.raw()[static_cast<std::size_t>(*slot) * kPageSize + 100], std::byte{0xAA});
}

TEST(SwapDevice, FreeWithScrubClears) {
  SwapDevice dev(2);
  const auto slot = dev.alloc_slot();
  ASSERT_TRUE(slot);
  dev.slot(*slot)[100] = std::byte{0xAA};
  dev.free_slot(*slot, /*scrub=*/true);
  EXPECT_TRUE(util::all_zero(dev.slot(*slot)));
}

TEST(KernelSwap, RoundTripPreservesContent) {
  Kernel k(swap_config());
  auto& p = k.spawn("p");
  const VirtAddr a = k.mmap_anon(p, 2 * kPageSize, false);
  const auto msg = util::to_bytes("swapped and back");
  k.mem_write(p, a, msg);
  EXPECT_EQ(k.swap_out_pages(p, 2), 2u);
  EXPECT_EQ(k.swap_used(), 2u);
  EXPECT_FALSE(k.translate(p, a).has_value());  // not resident
  std::vector<std::byte> back(msg.size());
  k.mem_read(p, a, back);  // major fault: swap-in
  EXPECT_EQ(back, msg);
  // The touched page's slot was released; the untouched second page stays out.
  EXPECT_EQ(k.swap_used(), 1u);
  EXPECT_TRUE(k.translate(p, a).has_value());
}

TEST(KernelSwap, WriteFaultsSwappedPageBackIn) {
  Kernel k(swap_config());
  auto& p = k.spawn("p");
  const VirtAddr a = k.mmap_anon(p, kPageSize, false);
  k.mem_write(p, a, util::to_bytes("before"));
  k.swap_out_pages(p, 1);
  k.mem_write(p, a, util::to_bytes("after!"));
  std::vector<std::byte> back(6);
  k.mem_read(p, a, back);
  EXPECT_EQ(back, util::to_bytes("after!"));
}

TEST(KernelSwap, SwapOutDuplicatesNotMoves) {
  // Stock kernel: the vacated RAM frame keeps the plaintext.
  Kernel k(swap_config());
  auto& p = k.spawn("p");
  const VirtAddr a = k.mmap_anon(p, kPageSize, false);
  const auto secret = util::to_bytes("SWAP-DUPLICATED!");
  k.mem_write(p, a, secret);
  k.swap_out_pages(p, 1);
  // One copy in free RAM, one on the swap device.
  EXPECT_FALSE(util::find_all(k.memory().all(), secret).empty());
  EXPECT_FALSE(util::find_all(k.swap()->raw(), secret).empty());
}

TEST(KernelSwap, MlockedPagesAreNeverEvicted) {
  Kernel k(swap_config());
  auto& p = k.spawn("p");
  const VirtAddr locked = k.mmap_anon(p, kPageSize, true, "keypage");
  const VirtAddr plain = k.mmap_anon(p, kPageSize, false);
  k.mem_write(p, locked, util::to_bytes("LOCKED"));
  k.mem_write(p, plain, util::to_bytes("PLAIN"));
  EXPECT_EQ(k.swap_out_pages(p, 10), 1u);  // only the unlocked page went
  EXPECT_TRUE(k.translate(p, locked).has_value());
  EXPECT_FALSE(k.translate(p, plain).has_value());
  EXPECT_TRUE(util::find_all(k.swap()->raw(), util::to_bytes("LOCKED")).empty());
}

TEST(KernelSwap, SharedCowFramesAreSkipped) {
  Kernel k(swap_config());
  auto& parent = k.spawn("parent");
  k.mmap_anon(parent, kPageSize, false);
  k.fork(parent, "child");
  EXPECT_EQ(k.swap_out_pages(parent, 10), 0u);
}

TEST(KernelSwap, ForkFaultsSwappedPagesIn) {
  Kernel k(swap_config());
  auto& parent = k.spawn("parent");
  const VirtAddr a = k.mmap_anon(parent, kPageSize, false);
  k.mem_write(parent, a, util::to_bytes("inherit"));
  k.swap_out_pages(parent, 1);
  auto& child = k.fork(parent, "child");
  std::vector<std::byte> back(7);
  k.mem_read(child, a, back);
  EXPECT_EQ(back, util::to_bytes("inherit"));
}

TEST(KernelSwap, ExitReleasesSlotsWithoutScrubbing) {
  Kernel k(swap_config());
  auto& p = k.spawn("p");
  const VirtAddr a = k.mmap_anon(p, kPageSize, false);
  const auto secret = util::to_bytes("DEAD-PROC-SWAP");
  k.mem_write(p, a, secret);
  k.swap_out_pages(p, 1);
  k.exit_process(p);
  EXPECT_EQ(k.swap_used(), 0u);
  // ...but the bytes are still on the device.
  EXPECT_FALSE(util::find_all(k.swap()->raw(), secret).empty());
}

TEST(KernelSwap, GlobalPressureSweepsProcesses) {
  Kernel k(swap_config());
  auto& a = k.spawn("a");
  auto& b = k.spawn("b");
  k.mmap_anon(a, 2 * kPageSize, false);
  k.mmap_anon(b, 2 * kPageSize, false);
  EXPECT_EQ(k.swap_out_global(3), 3u);
  EXPECT_EQ(k.swap_used(), 3u);
}

TEST(KernelSwap, NoSwapDeviceMeansNoEviction) {
  KernelConfig cfg;
  cfg.mem_bytes = 1ull << 20;
  Kernel k(cfg);
  auto& p = k.spawn("p");
  k.mmap_anon(p, kPageSize, false);
  EXPECT_EQ(k.swap_out_pages(p, 10), 0u);
  EXPECT_EQ(k.swap(), nullptr);
}

TEST(KernelSwap, EncryptedSwapHidesPlaintext) {
  Kernel k(swap_config(/*encrypt=*/true));
  auto& p = k.spawn("p");
  const VirtAddr a = k.mmap_anon(p, kPageSize, false);
  const auto secret = util::to_bytes("PROVOS-ENCRYPTED-SWAP");
  k.mem_write(p, a, secret);
  k.swap_out_pages(p, 1);
  EXPECT_TRUE(util::find_all(k.swap()->raw(), secret).empty());
  // Round trip still works.
  std::vector<std::byte> back(secret.size());
  k.mem_read(p, a, back);
  EXPECT_EQ(back, secret);
}

TEST(SwapAttack, RecoversKeySwappedFromUnprotectedServer) {
  // End to end: an sshd whose key pages are NOT mlocked gets its heap
  // evicted under pressure; the disk image then contains the key.
  core::ScenarioConfig cfg;
  cfg.mem_bytes = 16ull << 20;
  cfg.key_bits = 512;
  cfg.seed = 404;
  core::Scenario s(cfg);
  sim::KernelConfig kcfg;
  kcfg.mem_bytes = 16ull << 20;
  kcfg.swap_pages = 256;
  sim::Kernel kernel(kcfg, 404);
  kernel.vfs().write_file(core::Scenario::kSshKeyPath, util::to_bytes(s.pem()));
  servers::SshConfig ssh;
  ssh.key_path = core::Scenario::kSshKeyPath;
  util::Rng rng(1);
  servers::SshServer server(kernel, ssh, rng);
  ASSERT_TRUE(server.start());
  kernel.swap_out_global(1000);
  attack::SwapDiskLeak leak(kernel);
  EXPECT_GT(s.scanner().count_copies(leak.image()), 0u);
}

TEST(SwapAttack, MlockedAlignedKeyNeverReachesSwap) {
  core::ScenarioConfig cfg;
  cfg.level = core::ProtectionLevel::kApplication;
  cfg.mem_bytes = 16ull << 20;
  cfg.key_bits = 512;
  cfg.seed = 405;
  core::Scenario s(cfg);
  sim::KernelConfig kcfg = s.profile().kernel;
  kcfg.swap_pages = 256;
  sim::Kernel kernel(kcfg, 405);
  kernel.vfs().write_file(core::Scenario::kSshKeyPath, util::to_bytes(s.pem()));
  util::Rng rng(1);
  servers::SshServer server(kernel, core::ssh_config(s.profile()), rng);
  ASSERT_TRUE(server.start());
  kernel.swap_out_global(1000);
  attack::SwapDiskLeak leak(kernel);
  EXPECT_EQ(s.scanner().count_copies(leak.image()), 0u);
}

}  // namespace
}  // namespace keyguard::sim
