// Provenance reporting: every scan match explains what the copy IS —
// the reproduction of the paper's §3 analysis ("why are the attacks so
// powerful?").
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "servers/apache_server.hpp"
#include "servers/ssh_server.hpp"
#include "sslsim/ssl_library.hpp"
#include "util/bytes.hpp"

namespace keyguard::scan {
namespace {

using core::ProtectionLevel;
using core::Scenario;
using core::ScenarioConfig;

ScenarioConfig cfg(ProtectionLevel level = ProtectionLevel::kNone) {
  ScenarioConfig c;
  c.level = level;
  c.mem_bytes = 16ull << 20;
  c.key_bits = 512;
  c.seed = 606;
  return c;
}

std::size_t count_with(const std::vector<MemoryMatch>& matches,
                       const std::string& needle) {
  std::size_t n = 0;
  for (const auto& m : matches) {
    if (m.provenance.find(needle) != std::string::npos) ++n;
  }
  return n;
}

TEST(Provenance, PemInPageCacheLabelled) {
  Scenario s(cfg());
  s.precache_key_file(Scenario::kSshKeyPath);
  const auto matches = s.scanner().scan_kernel(s.kernel());
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].provenance, "page cache");
}

TEST(Provenance, ParsedKeyBignumsLabelled) {
  Scenario s(cfg());
  sslsim::SslLibrary ssl(s.kernel(), {});
  auto& p = s.kernel().spawn("sshd");
  auto key = ssl.load_private_key(p, Scenario::kSshKeyPath);
  ASSERT_TRUE(key);
  const auto matches = s.scanner().scan_kernel(s.kernel());
  EXPECT_GE(count_with(matches, "RSA bignum d (live)"), 1u);
  EXPECT_GE(count_with(matches, "RSA bignum p (live)"), 1u);
  EXPECT_GE(count_with(matches, "RSA bignum q (live)"), 1u);
  // The PEM parse buffer was freed but not cleared.
  EXPECT_GE(count_with(matches, "PEM read buffer (freed)"), 1u);
}

TEST(Provenance, MontgomeryCacheLabelled) {
  Scenario s(cfg());
  sslsim::SslLibrary ssl(s.kernel(), {});
  auto& p = s.kernel().spawn("sshd");
  auto key = ssl.load_private_key(p, Scenario::kSshKeyPath);
  ASSERT_TRUE(key);
  ssl.rsa_private_op(p, *key, bn::Bignum(7));
  const auto matches = s.scanner().scan_kernel(s.kernel());
  EXPECT_GE(count_with(matches, "BN_MONT_CTX modulus copy (live)"), 2u);  // P and Q
}

TEST(Provenance, AlignedPageLabelledAndMlocked) {
  Scenario s(cfg(ProtectionLevel::kIntegrated));
  servers::SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  const auto matches = s.scanner().scan_kernel(s.kernel());
  ASSERT_EQ(matches.size(), 3u);  // d, P, Q on the aligned page
  for (const auto& m : matches) {
    EXPECT_EQ(m.provenance, "rsa_aligned mapping [mlocked]") << m.part;
  }
}

TEST(Provenance, ResidueOfExitedProcessLabelled) {
  Scenario s(cfg());
  servers::SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 8; ++i) server.handle_connection(8 << 10);
  const auto matches = s.scanner().scan_kernel(s.kernel());
  EXPECT_GE(count_with(matches, "unallocated residue"), 1u);
  // Pin the documented phys_offset order (the parallel merge contract):
  // provenance rows must arrive in the LKM's linear-walk order.
  for (std::size_t i = 1; i < matches.size(); ++i) {
    EXPECT_LE(matches[i - 1].phys_offset, matches[i].phys_offset);
  }
}

TEST(Provenance, ApacheWorkerCachesAttributedToWorkers) {
  Scenario s(cfg());
  auto config = s.apache_config();
  config.start_servers = 3;
  servers::ApacheServer server(s.kernel(), config, s.make_rng());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 6; ++i) server.handle_request();
  const auto matches = s.scanner().scan_kernel(s.kernel());
  // Each worker's cache copy resolves to a mont-ctx chunk owned by exactly
  // that worker.
  std::size_t worker_cache_copies = 0;
  for (const auto& m : matches) {
    if (m.provenance.find("BN_MONT_CTX modulus copy") == std::string::npos) continue;
    ASSERT_EQ(m.owners.size(), 1u);
    ++worker_cache_copies;
  }
  EXPECT_GE(worker_cache_copies, 3u);
}

}  // namespace
}  // namespace keyguard::scan
