// Boundary placement battery: needles planted straddling every shard
// seam, every frame boundary, and the last bytes of memory must be found
// exactly once, with full and partial matches intact — the classic
// parallel-scan off-by-one class.
#include "scan/key_scanner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "crypto/pem.hpp"
#include "sslsim/ssl_library.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace keyguard::scan {
namespace {

using sslsim::SslLibrary;

const crypto::RsaPrivateKey& test_key() {
  static const crypto::RsaPrivateKey k = [] {
    util::Rng rng(31337);
    return crypto::generate_rsa_key(rng, 512);
  }();
  return k;
}

const std::size_t kShardCounts[] = {1, 2, 4, 8};

/// Scans a fresh capture holding one needle at `offset`; the match must be
/// found exactly once at exactly that offset, for every shard count.
void expect_found_once(std::size_t capture_size, std::size_t offset,
                       const KeyPatterns::Pattern& pattern) {
  std::vector<std::byte> capture(capture_size, std::byte{0});
  ASSERT_LE(offset + pattern.bytes.size(), capture_size);
  std::copy(pattern.bytes.begin(), pattern.bytes.end(),
            capture.begin() + offset);
  KeyPatterns pats;
  pats.patterns.push_back(pattern);
  KeyScanner scanner(pats);
  for (const std::size_t shards : kShardCounts) {
    scanner.set_shards(shards);
    const auto matches = scanner.scan_capture(capture);
    ASSERT_EQ(matches.size(), 1u)
        << pattern.name << " planted at " << offset << ", " << shards
        << " shards";
    EXPECT_EQ(matches[0].offset, offset) << shards << " shards";
    EXPECT_EQ(matches[0].part, pattern.name) << shards << " shards";
  }
}

// Every placement of a needle relative to every seam a 2/4/8-way split of
// the capture produces: first byte just before the seam, last byte just
// after, and the needle centred on it.
TEST(ScanBoundary, RealNeedlesStraddlingEveryShardSeam) {
  const std::size_t capture_size = sim::kPageSize * 16;
  const auto pats = KeyPatterns::from_key(test_key());
  for (const auto& pattern : pats.patterns) {
    const std::size_t len = pattern.bytes.size();
    const std::size_t max_len =
        std::max_element(pats.patterns.begin(), pats.patterns.end(),
                         [](const auto& a, const auto& b) {
                           return a.bytes.size() < b.bytes.size();
                         })
            ->bytes.size();
    for (const std::size_t shards : {2u, 4u, 8u}) {
      const auto plan = plan_shards(capture_size, max_len, shards);
      for (std::size_t i = 1; i < plan.shard_count; ++i) {
        const std::size_t seam = plan.shard_begin(i);
        // Straddle: one byte in the left shard, the rest in the right.
        expect_found_once(capture_size, seam - 1, pattern);
        // Straddle: all but the last byte left, last byte right.
        expect_found_once(capture_size, seam - len + 1, pattern);
        // Centred on the seam.
        expect_found_once(capture_size, seam - len / 2, pattern);
        // Exactly at the seam (first byte owned by the right shard).
        expect_found_once(capture_size, seam, pattern);
      }
    }
  }
}

TEST(ScanBoundary, NeedleStraddlingEveryFrameBoundary) {
  const std::size_t pages = 8;
  const std::size_t capture_size = sim::kPageSize * pages;
  KeyPatterns::Pattern p{"P", SslLibrary::limb_image(test_key().p)};
  for (std::size_t frame = 1; frame < pages; ++frame) {
    const std::size_t boundary = frame * sim::kPageSize;
    expect_found_once(capture_size, boundary - 1, p);
    expect_found_once(capture_size, boundary - p.bytes.size() + 1, p);
    expect_found_once(capture_size, boundary - p.bytes.size() / 2, p);
  }
}

TEST(ScanBoundary, NeedleInLastBytesOfMemory) {
  const std::size_t capture_size = sim::kPageSize * 4 + 123;  // ragged end
  const auto pats = KeyPatterns::from_key(test_key());
  for (const auto& pattern : pats.patterns) {
    // Needle's last byte is the last byte of memory.
    expect_found_once(capture_size, capture_size - pattern.bytes.size(),
                      pattern);
  }
}

// A needle cut off by the end of memory: the full scan must NOT report it;
// the prefix scan must report it exactly once, partial, with exactly the
// surviving byte count.
TEST(ScanBoundary, TruncatedNeedleAtEndOfMemoryIsPartialOnly) {
  const auto d_img = SslLibrary::limb_image(test_key().d);
  ASSERT_GT(d_img.size(), 30u);
  const std::size_t keep = 30;  // >= the 20-byte minimum
  const std::size_t capture_size = sim::kPageSize * 3;
  std::vector<std::byte> capture(capture_size, std::byte{0});
  std::copy(d_img.begin(), d_img.begin() + keep,
            capture.begin() + (capture_size - keep));
  KeyScanner scanner(test_key());
  for (const std::size_t shards : kShardCounts) {
    scanner.set_shards(shards);
    EXPECT_TRUE(scanner.scan_capture(capture).empty()) << shards << " shards";
    const auto partial = scanner.scan_capture_prefix(capture);
    ASSERT_EQ(partial.size(), 1u) << shards << " shards";
    EXPECT_EQ(partial[0].offset, capture_size - keep);
    EXPECT_EQ(partial[0].part, "d");
    EXPECT_EQ(partial[0].matched_bytes, keep);
    EXPECT_FALSE(partial[0].full);
  }
}

// A partial needle straddling a seam: the prefix hit starts left of the
// seam and its extension crosses into the next shard's territory.
TEST(ScanBoundary, PartialMatchExtensionCrossesShardSeam) {
  const auto d_img = SslLibrary::limb_image(test_key().d);
  const std::size_t keep = d_img.size() - 8;  // truncated copy
  const std::size_t capture_size = sim::kPageSize * 8;
  const auto plan = plan_shards(capture_size, d_img.size(), 4);
  ASSERT_GT(plan.shard_count, 1u);
  const std::size_t seam = plan.shard_begin(1);
  std::vector<std::byte> capture(capture_size, std::byte{0});
  // First 10 bytes in shard 0, the rest (including the truncation point)
  // in shard 1.
  const std::size_t offset = seam - 10;
  std::copy(d_img.begin(), d_img.begin() + keep, capture.begin() + offset);
  KeyScanner scanner(test_key());
  scanner.set_shards(1);
  const auto serial = scanner.scan_capture_prefix(capture);
  ASSERT_EQ(serial.size(), 1u);
  EXPECT_EQ(serial[0].matched_bytes, keep);
  EXPECT_FALSE(serial[0].full);
  for (const std::size_t shards : kShardCounts) {
    scanner.set_shards(shards);
    const auto partial = scanner.scan_capture_prefix(capture);
    ASSERT_EQ(partial.size(), 1u) << shards << " shards";
    EXPECT_EQ(partial[0].offset, offset) << shards << " shards";
    EXPECT_EQ(partial[0].matched_bytes, keep) << shards << " shards";
    EXPECT_FALSE(partial[0].full) << shards << " shards";
  }
}

// scan_kernel: a needle written straight across a physical frame boundary
// (adjacent frames) is one match, attributed to the frame holding its
// first byte, at every shard count.
TEST(ScanBoundary, KernelScanNeedleAcrossFrameBoundary) {
  sim::KernelConfig cfg;
  cfg.mem_bytes = 4ull << 20;
  sim::Kernel k(cfg);
  const auto p_img = SslLibrary::limb_image(test_key().p);
  const std::size_t half = p_img.size() / 2;
  const sim::FrameNumber left = 5;
  auto left_page = k.memory().page(left);
  auto right_page = k.memory().page(left + 1);
  std::copy(p_img.begin(), p_img.begin() + half, left_page.end() - half);
  std::copy(p_img.begin() + half, p_img.end(), right_page.begin());

  KeyScanner scanner(test_key());
  for (const std::size_t shards : kShardCounts) {
    scanner.set_shards(shards);
    const auto matches = scanner.scan_kernel(k);
    ASSERT_EQ(matches.size(), 1u) << shards << " shards";
    EXPECT_EQ(matches[0].part, "P");
    EXPECT_EQ(matches[0].frame, left);
    EXPECT_EQ(matches[0].phys_offset,
              static_cast<std::size_t>(left + 1) * sim::kPageSize - half);
    EXPECT_EQ(matches[0].state, sim::FrameState::kFree);
  }
}

// The PEM needle is longer than a whole page, so it can cover an entire
// shard-interior frame and cross TWO seams when shards are one page.
TEST(ScanBoundary, NeedleLongerThanOneFrame) {
  const auto pem = util::to_bytes(crypto::pem_encode_private_key(test_key()));
  ASSERT_GT(pem.size(), 400u);
  KeyPatterns::Pattern pattern{"PEM", pem};
  const std::size_t capture_size = sim::kPageSize * 9;
  // Force one-page shards by asking for 9 of them; plant the PEM so it
  // spans three consecutive pages.
  const std::size_t offset = sim::kPageSize * 4 - pem.size() / 2;
  std::vector<std::byte> capture(capture_size, std::byte{0});
  std::copy(pem.begin(), pem.end(), capture.begin() + offset);
  KeyPatterns pats;
  pats.patterns.push_back(pattern);
  KeyScanner scanner(pats);
  for (const std::size_t shards : {1u, 2u, 4u, 8u, 9u}) {
    scanner.set_shards(shards);
    const auto matches = scanner.scan_capture(capture);
    ASSERT_EQ(matches.size(), 1u) << shards << " shards";
    EXPECT_EQ(matches[0].offset, offset) << shards << " shards";
  }
}

}  // namespace
}  // namespace keyguard::scan
