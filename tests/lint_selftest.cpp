// keylint2 selftest: unit tests over the lexer/parser/CFG/annotation
// binding, the fixture battery (every known-bad fixture yields exactly its
// expected finding, every known-good fixture is clean), output-format
// sanity, and the differential case keylint v1 cannot catch.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/report.hpp"

namespace fs = std::filesystem;
using namespace keyguard::lint;

namespace {

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// `// expect: KLxxx` markers: (check, line) pairs a fixture promises.
std::set<std::pair<std::string, int>> expected_findings(
    const std::string& source) {
  std::set<std::pair<std::string, int>> out;
  std::istringstream in(source);
  std::string line;
  int ln = 0;
  while (std::getline(in, line)) {
    ++ln;
    const auto pos = line.find("expect: KL");
    if (pos != std::string::npos) {
      out.insert({line.substr(pos + 8, 5), ln});
    }
  }
  return out;
}

std::set<std::pair<std::string, int>> actual_findings(
    const FileCheckResult& res) {
  std::set<std::pair<std::string, int>> out;
  for (const Finding& f : res.findings) out.insert({f.check, f.line});
  return out;
}

fs::path fixture_dir() { return fs::path(LINT_FIXTURE_DIR); }

}  // namespace

// ---------------------------------------------------------------------------
// Lexer.

TEST(Tokenize, CommentsAndStrings) {
  const TokenStream ts = tokenize(
      "int a = 1;  // trailing note\n"
      "// keylint: allow(raw-free) — own line\n"
      "const char* s = \"PEM read buffer\";\n");
  ASSERT_EQ(ts.comments.size(), 2u);
  EXPECT_FALSE(ts.comments[0].own_line);
  EXPECT_TRUE(ts.comments[1].own_line);
  EXPECT_EQ(ts.comments[1].line, 2);
  bool saw_label = false;
  for (const Token& t : ts.tokens) {
    if (t.kind == TokKind::kString && t.text == "PEM read buffer") {
      saw_label = true;
      EXPECT_EQ(t.line, 3);
    }
  }
  EXPECT_TRUE(saw_label);
}

TEST(Tokenize, BlockCommentArgLabelIsDropped) {
  // `/*mlocked=*/false` must lex to a bare `false` so KL104 can read the
  // literal lock flag.
  const TokenStream ts = tokenize("f(p, n, /*mlocked=*/false, \"key vault\");");
  bool saw_false = false;
  for (const Token& t : ts.tokens) {
    if (t.ident("false")) saw_false = true;
  }
  EXPECT_TRUE(saw_false);
  EXPECT_TRUE(ts.comments.empty());  // block comments are not annotations
}

TEST(Tokenize, PreprocessorSkipped) {
  const TokenStream ts = tokenize("#include <x>\n#define A 1\nint b;\n");
  for (const Token& t : ts.tokens) {
    EXPECT_NE(t.text, "include");
    EXPECT_NE(t.text, "define");
  }
}

// ---------------------------------------------------------------------------
// Parser.

TEST(Parse, FindsMemberFunctionInsideNamespaceAndClass) {
  const TokenStream ts = tokenize(
      "namespace a {\n"
      "class B {\n"
      " public:\n"
      "  int get() { return 1; }\n"
      "};\n"
      "int B_helper(int x) {\n"
      "  if (x) { return 2; }\n"
      "  return 3;\n"
      "}\n"
      "}  // namespace a\n");
  const auto fns = parse_functions(ts);
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(fns[0].name, "get");
  EXPECT_EQ(fns[1].name, "B_helper");
  ASSERT_EQ(fns[1].body.size(), 2u);
  EXPECT_EQ(fns[1].body[0].kind, StmtKind::kIf);
  EXPECT_EQ(fns[1].body[1].kind, StmtKind::kReturn);
}

TEST(Parse, QualifiedNameAndMultiLineStatementSpan) {
  const TokenStream ts = tokenize(
      "void Keystore::evict() {\n"
      "  run(a,\n"
      "      b,\n"
      "      c);\n"
      "}\n");
  const auto fns = parse_functions(ts);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "Keystore::evict");
  ASSERT_EQ(fns[0].body.size(), 1u);
  EXPECT_EQ(fns[0].body[0].first_line, 2);
  EXPECT_EQ(fns[0].body[0].last_line, 4);
}

// ---------------------------------------------------------------------------
// CFG.

TEST(Cfg, EarlyReturnEdgesToExit) {
  const TokenStream ts = tokenize(
      "int f(bool c) {\n"
      "  if (c) { return 1; }\n"
      "  return 0;\n"
      "}\n");
  const auto fns = parse_functions(ts);
  ASSERT_EQ(fns.size(), 1u);
  const Cfg g = build_cfg(fns[0]);
  int returns = 0;
  for (const CfgNode& n : g.nodes) {
    if (n.is_return) {
      ++returns;
      ASSERT_EQ(n.succs.size(), 1u);
      EXPECT_EQ(n.succs[0], g.exit);
    }
  }
  EXPECT_EQ(returns, 2);
}

TEST(Cfg, LoopHasBackEdge) {
  const TokenStream ts = tokenize(
      "void f(int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    step(i);\n"
      "  }\n"
      "  done();\n"
      "}\n");
  const auto fns = parse_functions(ts);
  const Cfg g = build_cfg(fns[0]);
  // The loop header must have >= 2 preds: entry-side and the back edge.
  bool found_join = false;
  for (const CfgNode& n : g.nodes) {
    if (n.stmt != nullptr && n.stmt->kind == StmtKind::kFor) {
      found_join = n.preds.size() >= 2;
    }
  }
  EXPECT_TRUE(found_join);
}

// ---------------------------------------------------------------------------
// Annotation binding.

TEST(Annotations, BindsToStatementNotWindow) {
  const TokenStream ts = tokenize(
      "void f() {\n"
      "  // keylint: allow(raw-memset) — only the next statement\n"
      "  a = 0;\n"
      "  memset(b, 0, 4);\n"
      "}\n");
  const auto fns = parse_functions(ts);
  const Annotations ann(ts);
  ASSERT_EQ(fns[0].body.size(), 2u);
  EXPECT_TRUE(ann.statement_allows(fns[0].body[0], "raw-memset"));
  EXPECT_FALSE(ann.statement_allows(fns[0].body[1], "raw-memset"));
}

TEST(Annotations, CoversMultiLineStatement) {
  const TokenStream ts = tokenize(
      "void f() {\n"
      "  // keylint: allow(raw-free) — whole statement below\n"
      "  int rc =\n"
      "      x(a) +\n"
      "      y(b) +\n"
      "      release(c);\n"
      "}\n");
  const auto fns = parse_functions(ts);
  const Annotations ann(ts);
  ASSERT_EQ(fns[0].body.size(), 1u);
  EXPECT_TRUE(ann.statement_allows(fns[0].body[0], "raw-free"));
  EXPECT_FALSE(ann.statement_allows(fns[0].body[0], "raw-memset"));
}

TEST(Annotations, TrailingCommentOnStatementLine) {
  const TokenStream ts = tokenize(
      "void f() {\n"
      "  release(c);  // keylint: allow(raw-free) — reason\n"
      "}\n");
  const auto fns = parse_functions(ts);
  const Annotations ann(ts);
  EXPECT_TRUE(ann.statement_allows(fns[0].body[0], "raw-free"));
}

// ---------------------------------------------------------------------------
// Fixture battery.

class FixtureBattery : public ::testing::Test {
 protected:
  static std::vector<fs::path> list(const char* sub) {
    std::vector<fs::path> out;
    for (const auto& e : fs::directory_iterator(fixture_dir() / sub)) {
      if (e.path().extension() == ".cpp") out.push_back(e.path());
    }
    std::sort(out.begin(), out.end());
    EXPECT_FALSE(out.empty());
    return out;
  }
};

TEST_F(FixtureBattery, KnownBadYieldExactlyTheirExpectedFindings) {
  for (const fs::path& p : list("known_bad")) {
    const std::string src = slurp(p);
    const auto expected = expected_findings(src);
    ASSERT_FALSE(expected.empty()) << p << " has no `// expect:` marker";
    const FileCheckResult res = analyze_source(p.filename().string(), src);
    EXPECT_EQ(actual_findings(res), expected) << "fixture " << p;
  }
}

TEST_F(FixtureBattery, KnownGoodAreClean) {
  for (const fs::path& p : list("known_good")) {
    const FileCheckResult res = analyze_source(p.filename().string(), slurp(p));
    EXPECT_TRUE(res.findings.empty())
        << "fixture " << p << " first finding: "
        << (res.findings.empty() ? "" : res.findings[0].check + " line " +
                                            std::to_string(res.findings[0].line));
  }
}

TEST_F(FixtureBattery, Kl104FixturesPopulateComplianceSites) {
  const fs::path bad = fixture_dir() / "known_bad" / "kl104_unlocked.cpp";
  const fs::path good = fixture_dir() / "known_good" / "kl104_locked.cpp";
  const FileCheckResult rb = analyze_source("kl104_unlocked.cpp", slurp(bad));
  ASSERT_EQ(rb.sites.size(), 1u);
  EXPECT_EQ(rb.sites[0].status, "violation");
  EXPECT_FALSE(rb.sites[0].locked);
  const FileCheckResult rg = analyze_source("kl104_locked.cpp", slurp(good));
  ASSERT_EQ(rg.sites.size(), 1u);
  EXPECT_EQ(rg.sites[0].status, "compliant");
  EXPECT_TRUE(rg.sites[0].locked);
}

// ---------------------------------------------------------------------------
// The differential case: keylint v1 passes the early-return fixture (its
// KL003 only asks for a scrub SOMEWHERE in the body); keylint2's KL101
// catches the leaking path. Requires python3; skipped when unavailable.

TEST(Differential, EarlyReturnLeakIsInvisibleToKeylintV1) {
  const fs::path fixture = fixture_dir() / "known_bad" / "kl101_early_return.cpp";

  const FileCheckResult res =
      analyze_source("kl101_early_return.cpp", slurp(fixture));
  ASSERT_EQ(res.findings.size(), 1u);
  EXPECT_EQ(res.findings[0].check, "KL101");

  const std::string cmd =
      "python3 " KEYLINT_PY " " + fixture.string() + " > /dev/null 2>&1";
  if (std::system("python3 -c pass > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 unavailable";
  }
  // Exit 0 == keylint v1 reports nothing on the leaking fixture.
  EXPECT_EQ(std::system(cmd.c_str()), 0)
      << "keylint v1 unexpectedly catches the early-return leak";
}

// ---------------------------------------------------------------------------
// Waivers and output formats.

TEST(Waivers, SuffixMatchAndReason) {
  std::vector<Finding> fs = {
      {"KL101", "src/a/b.cpp", 10, "m", false, {}},
      {"KL102", "src/a/b.cpp", 11, "m", false, {}},
  };
  apply_waivers(fs, {{"KL101", "a/b.cpp", "known issue #42"}});
  EXPECT_TRUE(fs[0].waived);
  EXPECT_EQ(fs[0].waive_reason, "known issue #42");
  EXPECT_FALSE(fs[1].waived);
}

TEST(Report, TextMatchesKeylintV1Shape) {
  const std::vector<Finding> fs = {
      {"KL102", "src/x.cpp", 7, "raw memset", false, {}}};
  const std::string text = render_text(fs);
  EXPECT_NE(text.find("src/x.cpp:7: KL102 raw memset"), std::string::npos);
  EXPECT_NE(text.find("1 finding"), std::string::npos);
}

TEST(Report, SarifIsWellFormedJson) {
  const std::vector<Finding> fs = {
      {"KL101", "src/x.cpp", 3, "leak \"quoted\"", false, {}},
      {"KL104", "src/y.cpp", 9, "unlocked", true, "measured baseline"},
  };
  const std::string sarif = render_sarif(fs);
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("KL101"), std::string::npos);
  // Rough structural check: braces and brackets balance.
  int brace = 0, bracket = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < sarif.size(); ++i) {
    const char c = sarif[i];
    if (in_str) {
      if (c == '\\') ++i;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    else if (c == '{') ++brace;
    else if (c == '}') --brace;
    else if (c == '[') ++bracket;
    else if (c == ']') --bracket;
  }
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
}

TEST(Report, ComplianceSummaryCounts) {
  const std::vector<ComplianceSite> sites = {
      {"a.cpp", 1, "mmap_anon", "key vault", true, "compliant", "ok"},
      {"b.cpp", 2, "heap_alloc", "key vault", false, "violation", "swappable"},
      {"c.cpp", 3, "mmap_anon", "rsa_aligned", false, "allowed", "annotated"},
  };
  const std::string doc = render_compliance(sites);
  EXPECT_NE(doc.find("locked_memory_compliance"), std::string::npos);
  EXPECT_NE(doc.find("\"violations\":1"), std::string::npos)
      << doc;
}

TEST(Catalogue, HasAllFourChecks) {
  const auto& cat = check_catalogue();
  ASSERT_EQ(cat.size(), 4u);
  EXPECT_STREQ(cat[0].id, "KL101");
  EXPECT_STREQ(cat[3].id, "KL104");
}
