// Concurrency battery for MetricsRegistry and Tracer — the binaries
// tests/run_sanitized.sh puts under ThreadSanitizer. Totals are exact:
// lock-cheap must not mean lossy.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "util/json.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace keyguard::obs {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kOpsPerThread = 4000;

void run_threads(const std::function<void(std::size_t)>& body) {
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) workers.emplace_back(body, t);
  for (auto& w : workers) w.join();
}

TEST(MetricsConcurrency, CounterTotalsAreExact) {
  MetricsRegistry reg;
  auto& c = reg.counter("conc.counter");
  run_threads([&](std::size_t) {
    for (std::size_t i = 0; i < kOpsPerThread; ++i) c.add(1);
  });
  EXPECT_EQ(c.value(), kThreads * kOpsPerThread);
}

TEST(MetricsConcurrency, RacingRegistrationYieldsOneInstrument) {
  MetricsRegistry reg;
  std::vector<Counter*> seen(kThreads);
  run_threads([&](std::size_t t) {
    // Every thread registers the same names concurrently; each add must
    // land on the same underlying instrument.
    for (std::size_t i = 0; i < 64; ++i) {
      reg.counter("race." + std::to_string(i)).add(1);
    }
    seen[t] = &reg.counter("race.0");
  });
  for (const auto* p : seen) EXPECT_EQ(p, seen[0]);
  EXPECT_EQ(reg.instrument_count(), 64u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(reg.counter("race." + std::to_string(i)).value(), kThreads);
  }
}

TEST(MetricsConcurrency, GaugeAddIsAtomic) {
  MetricsRegistry reg;
  auto& g = reg.gauge("conc.gauge");
  run_threads([&](std::size_t) {
    for (std::size_t i = 0; i < kOpsPerThread; ++i) g.add(1.0);
  });
  EXPECT_DOUBLE_EQ(g.value(),
                   static_cast<double>(kThreads * kOpsPerThread));
}

TEST(MetricsConcurrency, HistogramCountSumMinMaxExact) {
  MetricsRegistry reg;
  auto& h = reg.histogram("conc.hist", {10.0, 100.0, 1000.0});
  run_threads([&](std::size_t t) {
    for (std::size_t i = 0; i < kOpsPerThread; ++i) {
      h.record(static_cast<double>(t + 1));  // values 1..kThreads
    }
  });
  EXPECT_EQ(h.count(), kThreads * kOpsPerThread);
  double expected_sum = 0;
  for (std::size_t t = 1; t <= kThreads; ++t) {
    expected_sum += static_cast<double>(t * kOpsPerThread);
  }
  EXPECT_DOUBLE_EQ(h.sum(), expected_sum);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(kThreads));
  std::uint64_t bucket_total = 0;
  for (const auto b : h.bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(MetricsConcurrency, HistogramBucketPlacementIsExactPerBucket) {
  // Every thread hammers a DIFFERENT bucket (values 0.5, 1.5, ... target
  // bucket t under the lower-inclusive edge rule), so a lost or misplaced
  // increment shows up as a wrong per-bucket count, not just a wrong
  // total. Bounds 1..kThreads-1 give kThreads buckets, one per thread.
  std::vector<double> bounds;
  for (std::size_t b = 1; b < kThreads; ++b) {
    bounds.push_back(static_cast<double>(b));
  }
  MetricsRegistry reg;
  auto& h = reg.histogram("conc.buckets", bounds);
  run_threads([&](std::size_t t) {
    const double v = static_cast<double>(t) + 0.5;
    for (std::size_t i = 0; i < kOpsPerThread; ++i) h.record(v);
  });
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), kThreads);
  std::uint64_t total = 0;
  for (const auto c : buckets) {
    EXPECT_EQ(c, kOpsPerThread);
    total += c;
  }
  EXPECT_EQ(total, h.count());
  EXPECT_EQ(h.count(), kThreads * kOpsPerThread);
}

TEST(MetricsConcurrency, SnapshotRacesWithWriters) {
  MetricsRegistry reg;
  auto& c = reg.counter("snap.counter");
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load()) {
      util::JsonWriter w;
      w.begin_object();
      reg.write_snapshot(w);
      w.end_object();
      ASSERT_TRUE(w.complete());
    }
  });
  run_threads([&](std::size_t t) {
    for (std::size_t i = 0; i < kOpsPerThread; ++i) {
      c.add(1);
      reg.gauge("snap.g" + std::to_string(t)).set(static_cast<double>(i));
      reg.histogram("snap.h").record(static_cast<double>(i));
    }
  });
  stop.store(true);
  snapshotter.join();
  EXPECT_EQ(c.value(), kThreads * kOpsPerThread);
}

TEST(TracerConcurrency, EverySpanLandsExactlyOnce) {
  Tracer tracer;
  tracer.set_enabled(true);
  run_threads([&](std::size_t t) {
    for (std::size_t i = 0; i < kOpsPerThread / 4; ++i) {
      Tracer::Span span(tracer, "conc.span");
      if (span.live()) {
        span.add(TraceAttr::n("thread", static_cast<double>(t)));
      }
    }
  });
  EXPECT_EQ(tracer.event_count(), kThreads * (kOpsPerThread / 4));
  EXPECT_EQ(tracer.dropped(), 0u);
  // Thread ids: small, dense, stable per thread.
  const auto events = tracer.snapshot();
  for (const auto& e : events) {
    EXPECT_GE(e.tid, 1u);
    EXPECT_LE(e.tid, kThreads + 8);  // main + workers, small handles
  }
}

TEST(TracerConcurrency, CapacityDropsAreAccountedExactly) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_capacity(1000);
  run_threads([&](std::size_t) {
    for (std::size_t i = 0; i < kOpsPerThread / 4; ++i) tracer.instant("e");
  });
  const auto total = kThreads * (kOpsPerThread / 4);
  EXPECT_EQ(tracer.event_count(), 1000u);
  EXPECT_EQ(tracer.dropped(), total - 1000u);
}

TEST(TracerConcurrency, EnableToggleRacesAreSafe) {
  Tracer tracer;
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    bool on = false;
    while (!stop.load()) {
      tracer.set_enabled(on = !on);
    }
  });
  run_threads([&](std::size_t) {
    for (std::size_t i = 0; i < kOpsPerThread / 8; ++i) {
      Tracer::Span span(tracer, "toggle.span");
      tracer.instant("toggle.i");
    }
  });
  stop.store(true);
  toggler.join();
  tracer.set_enabled(true);
  tracer.instant("final");
  EXPECT_GE(tracer.event_count(), 1u);  // no crash, no TSan report
}

}  // namespace
}  // namespace keyguard::obs
