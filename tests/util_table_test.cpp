#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace keyguard::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  // Header rule line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, TsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_tsv(), "a\tb\n1\t2\n");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(0.5, 3), "0.500");
}

TEST(Bar, ScalesToWidth) {
  EXPECT_EQ(bar(10, 10, 10), "##########");
  EXPECT_EQ(bar(5, 10, 10), "#####");
  EXPECT_EQ(bar(0, 10, 10), "");
  EXPECT_EQ(bar(5, 0, 10), "");  // degenerate max
}

TEST(RunningStats, MeanAndStddev) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

}  // namespace
}  // namespace keyguard::util
