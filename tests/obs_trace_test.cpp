// Tracer: span lifecycle, event shapes, JSONL/chrome export, gating.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include "obs/clock.hpp"
#include "util/json.hpp"

namespace keyguard::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { manual_clock_install(1000); }
  void TearDown() override { host_clock_install(); }
};

TEST_F(TraceTest, SpanRecordsDuration) {
  Tracer t;
  t.set_enabled(true);
  {
    Tracer::Span span(t, "work");
    EXPECT_TRUE(span.live());
    manual_clock_advance(500);
  }
  ASSERT_EQ(t.event_count(), 1u);
  const auto events = t.snapshot();
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[0].ts_ns, 1000u);
  EXPECT_EQ(events[0].dur_ns, 500u);
  EXPECT_GE(events[0].tid, 1u);
}

TEST_F(TraceTest, DisabledTracerEmitsNothingAndSpanIsInert) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  {
    Tracer::Span span(t, "ignored");
    EXPECT_FALSE(span.live());
    span.add(TraceAttr::s("k", "v"));  // must be a no-op, not a crash
  }
  t.instant("also.ignored");
  t.counter("nope", 1.0);
  EXPECT_EQ(t.event_count(), 0u);
}

TEST_F(TraceTest, SpanAttrsReachTheEvent) {
  Tracer t;
  t.set_enabled(true);
  {
    auto span = t.span("attr.span", {TraceAttr::s("level", "none")});
    span.add(TraceAttr::n("bytes", 42.0));
    span.add(TraceAttr::b("hit", true));
  }
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].args.size(), 3u);
  EXPECT_EQ(events[0].args[0].key, "level");
  EXPECT_EQ(events[0].args[1].key, "bytes");
  EXPECT_EQ(events[0].args[2].key, "hit");
}

TEST_F(TraceTest, JsonlOneEventPerLine) {
  Tracer t;
  t.set_enabled(true);
  t.instant("mark", {TraceAttr::s("note", "a\"b")});
  t.counter("exposure.copies", 7.0);
  const auto text = t.jsonl();
  // Two lines, each a complete JSON object.
  const auto first_nl = text.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  const auto line1 = text.substr(0, first_nl);
  EXPECT_NE(line1.find(R"("name":"mark")"), std::string::npos) << line1;
  EXPECT_NE(line1.find(R"("ph":"i")"), std::string::npos) << line1;
  EXPECT_NE(line1.find(R"("note":"a\"b")"), std::string::npos) << line1;
  EXPECT_NE(text.find(R"("ph":"C")"), std::string::npos);
  EXPECT_NE(text.find(R"("value":7)"), std::string::npos);
}

TEST_F(TraceTest, ChromeExportUsesMicroseconds) {
  Tracer t;
  t.set_enabled(true);
  {
    Tracer::Span span(t, "slow");
    manual_clock_advance(2'000'000);  // 2 ms
  }
  util::JsonWriter w;
  t.write_chrome_trace(w);
  EXPECT_TRUE(w.complete());
  const auto s = w.str();
  EXPECT_NE(s.find(R"("traceEvents":[)"), std::string::npos) << s;
  EXPECT_NE(s.find(R"("dur":2000)"), std::string::npos) << s;  // us, not ns
  EXPECT_NE(s.find(R"("pid":1)"), std::string::npos) << s;
}

TEST_F(TraceTest, CapacityBoundsStorageAndCountsDrops) {
  Tracer t;
  t.set_enabled(true);
  t.set_capacity(3);
  for (int i = 0; i < 5; ++i) t.instant("e");
  EXPECT_EQ(t.event_count(), 3u);
  EXPECT_EQ(t.dropped(), 2u);
  t.clear();
  EXPECT_EQ(t.event_count(), 0u);
  t.instant("after.clear");
  EXPECT_EQ(t.event_count(), 1u);
}

TEST_F(TraceTest, GlobalStartsDisabled) {
  EXPECT_FALSE(Tracer::global().enabled());
}

TEST(ObsClock, ManualClockIsDeterministic) {
  manual_clock_install(0);
  EXPECT_TRUE(manual_clock_active());
  EXPECT_EQ(now_ns(), 0u);
  manual_clock_advance(kNsPerSec);
  EXPECT_EQ(now_ns(), kNsPerSec);
  manual_clock_set(42);
  EXPECT_EQ(now_ns(), 42u);
  host_clock_install();
  EXPECT_FALSE(manual_clock_active());
  const auto a = now_ns();
  const auto b = now_ns();
  EXPECT_LE(a, b);  // host clock is monotonic
}

}  // namespace
}  // namespace keyguard::obs
