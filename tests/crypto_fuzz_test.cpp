// Adversarial-input robustness: the decoders and unpadding routines face
// attacker-controlled bytes (captured memory, wire data); they must reject
// garbage gracefully — never crash, never accept.
#include <gtest/gtest.h>

#include "bignum/prime.hpp"
#include "crypto/pem.hpp"
#include "util/bytes.hpp"
#include "util/encoding.hpp"

namespace keyguard::crypto {
namespace {

class CryptoFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  util::Rng rng_{GetParam() * 2654435761ULL + 1};
};

TEST_P(CryptoFuzz, DerDecodeRandomBytesNeverCrashes) {
  for (int i = 0; i < 200; ++i) {
    std::vector<std::byte> junk(rng_.next_below(400));
    rng_.fill_bytes(junk);
    const auto key = der_decode_private_key(junk);
    if (key) {
      // Astronomically unlikely; if it parses it must NOT validate.
      EXPECT_FALSE(key->validate());
    }
  }
}

TEST_P(CryptoFuzz, DerDecodeBitFlippedRealKeyRejectsOrFailsValidation) {
  util::Rng key_rng(42);
  const auto key = generate_rsa_key(key_rng, 256);
  const auto der = der_encode_private_key(key);
  for (int i = 0; i < 100; ++i) {
    auto mutated = der;
    const std::size_t pos = rng_.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::byte>(1u << rng_.next_below(8));
    const auto parsed = der_decode_private_key(mutated);
    if (parsed) {
      // A flipped length/tag usually kills the parse; a flipped value byte
      // parses but must fail consistency validation.
      EXPECT_FALSE(parsed->validate()) << "bit flip at " << pos << " accepted";
    }
  }
}

TEST_P(CryptoFuzz, PemDecodeMutatedTextNeverCrashes) {
  util::Rng key_rng(43);
  const auto key = generate_rsa_key(key_rng, 256);
  std::string pem = pem_encode_private_key(key);
  for (int i = 0; i < 100; ++i) {
    std::string mutated = pem;
    const std::size_t pos = rng_.next_below(mutated.size());
    mutated[pos] = static_cast<char>(rng_.next_below(256));
    (void)pem_decode_private_key(mutated);  // must not crash
  }
  SUCCEED();
}

TEST_P(CryptoFuzz, UnpadRejectsTamperedCiphertexts) {
  util::Rng key_rng(44);
  static const RsaPrivateKey key = generate_rsa_key(key_rng, 256);
  const auto msg = util::to_bytes("tamper-me");
  const auto c = pad_encrypt(rng_, key.public_key(), msg);
  ASSERT_TRUE(c.has_value());
  int accepted_changed = 0;
  for (int i = 0; i < 30; ++i) {
    // Additive tampering in the ciphertext group.
    const bn::Bignum delta = bn::random_below(rng_, key.n);
    const bn::Bignum tampered = (*c + delta) % key.n;
    const auto out = unpad_decrypt(key, tampered);
    if (out && *out != msg && delta != bn::Bignum{}) ++accepted_changed;
    // Padding forgery odds are ~2^-16 per try; a couple of freak
    // acceptances across seeds would still be suspicious.
    EXPECT_LE(accepted_changed, 1);
  }
}

TEST_P(CryptoFuzz, Base64RoundTripUnderMutationNeverCrashes) {
  for (int i = 0; i < 200; ++i) {
    std::string junk(rng_.next_below(120), ' ');
    for (auto& ch : junk) ch = static_cast<char>(rng_.next_below(256));
    (void)util::base64_decode(junk);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CryptoFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace keyguard::crypto
