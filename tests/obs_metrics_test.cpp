// MetricsRegistry: instrument semantics, snapshot shape, enable gating.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/json.hpp"

namespace keyguard::obs {
namespace {

TEST(Counter, AddsAndResets) {
  MetricsRegistry reg;
  auto& c = reg.counter("test.hits");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry reg;
  auto& g = reg.gauge("test.level");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Registry, InstrumentReferencesAreStable) {
  MetricsRegistry reg;
  auto& a = reg.counter("same.name");
  auto& b = reg.counter("same.name");
  EXPECT_EQ(&a, &b);  // one instrument per name, references never move
  reg.counter("other.name").add(1);
  EXPECT_EQ(&reg.counter("same.name"), &a);
  EXPECT_EQ(reg.instrument_count(), 2u);
}

TEST(Registry, DisabledIsInertButInstrumentsStillWork) {
  MetricsRegistry reg(/*enabled=*/false);
  EXPECT_FALSE(reg.enabled());
  // The contract: call sites gate on enabled(); the registry itself still
  // hands out working instruments (tests and snapshots rely on that).
  reg.counter("c").add(3);
  EXPECT_EQ(reg.counter("c").value(), 3u);
  reg.set_enabled(true);
  EXPECT_TRUE(reg.enabled());
}

TEST(Registry, GlobalStartsDisabled) {
  // Production default: the hot paths pay one relaxed load and nothing
  // else until a tool/bench opts in.
  EXPECT_FALSE(MetricsRegistry::global().enabled());
}

TEST(Histogram, CountSumMinMaxMean) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  for (const double v : {0.5, 2.0, 3.0, 50.0, 500.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  EXPECT_DOUBLE_EQ(h.mean(), 111.1);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 1u);      // < 1
  EXPECT_EQ(buckets[1], 2u);      // [1, 10)
  EXPECT_EQ(buckets[2], 1u);      // [10, 100)
  EXPECT_EQ(buckets[3], 1u);      // >= 100
}

TEST(Histogram, BucketEdgesAreLowerInclusive) {
  // A sample exactly on a bound belongs to the bucket ABOVE it: bucket i
  // covers [bounds[i-1], bounds[i]). Pinned so refactors cannot silently
  // flip the edge rule and shift every boundary sample one bucket down.
  MetricsRegistry reg;
  auto& h = reg.histogram("edges", {1.0, 10.0, 100.0});
  for (const double v : {1.0, 10.0, 100.0}) h.record(v);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 0u);  // nothing strictly below 1.0
  EXPECT_EQ(buckets[1], 1u);  // 1.0
  EXPECT_EQ(buckets[2], 1u);  // 10.0
  EXPECT_EQ(buckets[3], 1u);  // 100.0 — the top bound opens the overflow
}

TEST(Histogram, OverflowBucketCatchesEverythingAboveTheLadder) {
  MetricsRegistry reg;
  auto& h = reg.histogram("over", {1.0, 2.0});
  h.record(2.5);
  h.record(1e12);
  h.record(std::numeric_limits<double>::max());
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[2], 3u);
  EXPECT_EQ(h.count(), 3u);
  // Overflow samples still feed the scalar aggregates.
  EXPECT_DOUBLE_EQ(h.max(), std::numeric_limits<double>::max());
  EXPECT_DOUBLE_EQ(h.min(), 2.5);
}

TEST(Histogram, BucketCountsSumToCountAndResetClears) {
  MetricsRegistry reg;
  auto& h = reg.histogram("sum", {1.0, 10.0, 100.0});
  for (int i = 0; i < 250; ++i) h.record(static_cast<double>(i));
  const auto buckets = h.bucket_counts();
  std::uint64_t total = 0;
  for (const auto c : buckets) total += c;
  EXPECT_EQ(total, h.count());
  EXPECT_EQ(total, 250u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  for (const auto c : h.bucket_counts()) EXPECT_EQ(c, 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(Histogram, QuantilesInterpolateWithinBucket) {
  MetricsRegistry reg;
  auto& h = reg.histogram("q", {10.0, 20.0, 30.0});
  // 100 samples uniform in (0, 10]: p50 lands mid-bucket.
  for (int i = 1; i <= 100; ++i) h.record(i / 10.0);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.2);
  EXPECT_NEAR(h.quantile(0.99), 9.9, 0.2);
  EXPECT_EQ(h.quantile(0.0), h.quantile(0.0));  // no NaN
}

TEST(Histogram, EmptyQuantileIsZero) {
  MetricsRegistry reg;
  auto& h = reg.histogram("empty");
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, DefaultLatencyLadderIsAscending) {
  const auto b = Histogram::default_latency_buckets_ms();
  ASSERT_GE(b.size(), 4u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

TEST(Snapshot, JsonShape) {
  MetricsRegistry reg;
  reg.counter("scan.hits").add(7);
  reg.gauge("pool.occupancy").set(3);
  reg.histogram("lat_ms", {1.0}).record(0.5);
  util::JsonWriter w;
  w.begin_object();
  reg.write_snapshot(w);
  w.end_object();
  const auto s = w.str();
  EXPECT_TRUE(w.complete());
  EXPECT_NE(s.find(R"("counters":{"scan.hits":7})"), std::string::npos) << s;
  EXPECT_NE(s.find(R"("pool.occupancy":3)"), std::string::npos) << s;
  EXPECT_NE(s.find(R"("lat_ms":{"count":1)"), std::string::npos) << s;
  EXPECT_NE(s.find(R"("le":"inf")"), std::string::npos) << s;  // overflow bucket
  EXPECT_NE(s.find(R"("p95":)"), std::string::npos) << s;
}

TEST(Snapshot, ResetClearsEverything) {
  MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(5);
  reg.histogram("h").record(5);
  reg.reset();
  EXPECT_EQ(reg.counter("c").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
  EXPECT_EQ(reg.histogram("h").count(), 0u);
  EXPECT_EQ(reg.instrument_count(), 3u);  // instruments survive, values don't
}

}  // namespace
}  // namespace keyguard::obs
