#include "bignum/prime.hpp"

#include <gtest/gtest.h>

namespace keyguard::bn {
namespace {

TEST(Prime, KnownSmallPrimes) {
  util::Rng rng(1);
  for (const Limb p : {2ULL, 3ULL, 5ULL, 7ULL, 97ULL, 251ULL, 257ULL, 65537ULL}) {
    EXPECT_TRUE(is_probable_prime(Bignum(p), rng)) << p;
  }
}

TEST(Prime, KnownComposites) {
  util::Rng rng(2);
  for (const Limb c : {1ULL, 4ULL, 9ULL, 15ULL, 91ULL, 561ULL /* Carmichael */,
                       1105ULL, 6601ULL, 65536ULL}) {
    EXPECT_FALSE(is_probable_prime(Bignum(c), rng)) << c;
  }
}

TEST(Prime, ZeroAndOneAreNotPrime) {
  util::Rng rng(3);
  EXPECT_FALSE(is_probable_prime(Bignum{}, rng));
  EXPECT_FALSE(is_probable_prime(Bignum(1), rng));
}

TEST(Prime, LargeKnownPrime) {
  util::Rng rng(4);
  // 2^89 - 1 is a Mersenne prime.
  const Bignum m89 = (Bignum(1) << 89) - Bignum(1);
  EXPECT_TRUE(is_probable_prime(m89, rng));
  // 2^67 - 1 is famously composite (193707721 * 761838257287).
  const Bignum m67 = (Bignum(1) << 67) - Bignum(1);
  EXPECT_FALSE(is_probable_prime(m67, rng));
}

TEST(Prime, ProductOfTwoPrimesIsComposite) {
  util::Rng rng(5);
  const Bignum p = random_prime(rng, 64);
  const Bignum q = random_prime(rng, 64);
  EXPECT_FALSE(is_probable_prime(p * q, rng));
}

TEST(Prime, RandomPrimeHasExactBitLength) {
  util::Rng rng(6);
  for (const std::size_t bits : {64u, 128u, 257u}) {
    const Bignum p = random_prime(rng, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
}

TEST(Prime, RandomPrimeTopTwoBitsSet) {
  // Required so products of two such primes have exactly 2*bits bits.
  util::Rng rng(7);
  const std::size_t bits = 96;
  const Bignum p = random_prime(rng, bits);
  EXPECT_TRUE(p.bit(bits - 1));
  EXPECT_TRUE(p.bit(bits - 2));
}

TEST(Prime, CoprimalityConstraintHonored) {
  util::Rng rng(8);
  const Bignum e(65537);
  const Bignum p = random_prime(rng, 80, e);
  EXPECT_TRUE(Bignum::gcd(p - Bignum(1), e).is_one());
}

TEST(Prime, DeterministicForSeed) {
  util::Rng a(99), b(99);
  EXPECT_EQ(random_prime(a, 80), random_prime(b, 80));
}

TEST(RandomBits, ExactWidthTopBitSet) {
  util::Rng rng(9);
  for (const std::size_t bits : {1u, 7u, 8u, 9u, 63u, 64u, 65u, 200u}) {
    const Bignum v = random_bits(rng, bits);
    EXPECT_EQ(v.bit_length(), bits) << bits;
  }
}

TEST(RandomBelow, AlwaysBelowBound) {
  util::Rng rng(10);
  const Bignum bound = *Bignum::from_hex("123456789abcdef");
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(random_below(rng, bound), bound);
  }
}

TEST(RandomBelow, CoversLowAndHighRegions) {
  util::Rng rng(11);
  const Bignum bound(1000);
  bool low = false, high = false;
  for (int i = 0; i < 500; ++i) {
    const Bignum v = random_below(rng, bound);
    if (v < Bignum(100)) low = true;
    if (v > Bignum(900)) high = true;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

}  // namespace
}  // namespace keyguard::bn
