#include "bignum/bignum.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace keyguard::bn {
namespace {

TEST(Bignum, ZeroProperties) {
  const Bignum z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_one());
  EXPECT_TRUE(z.is_even());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.limb_count(), 0u);
  EXPECT_EQ(z.to_decimal(), "0");
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_TRUE(z.to_bytes_be().empty());
}

TEST(Bignum, SmallConstruction) {
  const Bignum v(42);
  EXPECT_FALSE(v.is_zero());
  EXPECT_TRUE(v.is_even());
  EXPECT_EQ(v.bit_length(), 6u);
  EXPECT_EQ(v.to_decimal(), "42");
  EXPECT_EQ(v.to_hex(), "2a");
}

TEST(Bignum, FromDecimal) {
  const auto v = Bignum::from_decimal("340282366920938463463374607431768211456");  // 2^128
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->bit_length(), 129u);
  EXPECT_EQ(v->to_decimal(), "340282366920938463463374607431768211456");
  EXPECT_EQ(v->to_hex(), "100000000000000000000000000000000");
}

TEST(Bignum, FromDecimalRejectsGarbage) {
  EXPECT_FALSE(Bignum::from_decimal("").has_value());
  EXPECT_FALSE(Bignum::from_decimal("12a").has_value());
  EXPECT_FALSE(Bignum::from_decimal("-5").has_value());
}

TEST(Bignum, FromHexRoundTrip) {
  const auto v = Bignum::from_hex("deadbeefcafebabe0123456789abcdef");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->to_hex(), "deadbeefcafebabe0123456789abcdef");
}

TEST(Bignum, FromHexRejectsGarbage) {
  EXPECT_FALSE(Bignum::from_hex("").has_value());
  EXPECT_FALSE(Bignum::from_hex("0x12").has_value());
  EXPECT_FALSE(Bignum::from_hex("g").has_value());
}

TEST(Bignum, Comparisons) {
  const Bignum a(5), b(7);
  const Bignum big = *Bignum::from_hex("ffffffffffffffffff");
  EXPECT_LT(a, b);
  EXPECT_GT(big, b);
  EXPECT_EQ(a, Bignum(5));
  EXPECT_NE(a, b);
  EXPECT_LE(a, a);
  EXPECT_GE(big, big);
}

TEST(Bignum, AdditionWithCarryChains) {
  const Bignum max64 = *Bignum::from_hex("ffffffffffffffff");
  const Bignum one(1);
  EXPECT_EQ((max64 + one).to_hex(), "10000000000000000");
  // Multi-limb carry propagation.
  const Bignum allf = *Bignum::from_hex("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ((allf + one).to_hex(), "100000000000000000000000000000000");
}

TEST(Bignum, SubtractionWithBorrowChains) {
  const Bignum big = *Bignum::from_hex("100000000000000000000000000000000");
  const Bignum one(1);
  EXPECT_EQ((big - one).to_hex(), "ffffffffffffffffffffffffffffffff");
  EXPECT_EQ((big - big).to_decimal(), "0");
}

TEST(Bignum, MultiplicationKnownValues) {
  const Bignum a = *Bignum::from_decimal("123456789012345678901234567890");
  const Bignum b = *Bignum::from_decimal("987654321098765432109876543210");
  EXPECT_EQ((a * b).to_decimal(),
            "121932631137021795226185032733622923332237463801111263526900");
  EXPECT_EQ((a * Bignum{}).to_decimal(), "0");
  EXPECT_EQ((a * Bignum(1)), a);
}

TEST(Bignum, Shifts) {
  const Bignum v(1);
  EXPECT_EQ((v << 0), v);
  EXPECT_EQ((v << 64).to_hex(), "10000000000000000");
  EXPECT_EQ((v << 127).to_hex(), "80000000000000000000000000000000");
  EXPECT_EQ(((v << 127) >> 127), v);
  EXPECT_EQ((v >> 1).to_decimal(), "0");
  const Bignum pattern = *Bignum::from_hex("123456789abcdef0123456789abcdef");
  EXPECT_EQ(((pattern << 37) >> 37), pattern);
}

TEST(Bignum, ShiftRightBeyondWidthIsZero) {
  const Bignum v = *Bignum::from_hex("ffffffff");
  EXPECT_TRUE((v >> 200).is_zero());
}

TEST(Bignum, BitAccess) {
  const Bignum v = *Bignum::from_hex("8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(64));
  EXPECT_FALSE(v.bit(10000));
}

TEST(Bignum, ByteRoundTripBigEndian) {
  const Bignum v = *Bignum::from_hex("0102030405060708090a0b0c0d0e0f");
  const auto bytes = v.to_bytes_be();
  EXPECT_EQ(bytes.size(), 15u);
  EXPECT_EQ(Bignum::from_bytes_be(bytes), v);
}

TEST(Bignum, ByteRoundTripLittleEndian) {
  const Bignum v = *Bignum::from_hex("112233445566778899aabb");
  EXPECT_EQ(Bignum::from_bytes_le(v.to_bytes_le()), v);
}

TEST(Bignum, FromBytesBeIgnoresLeadingZeros) {
  std::vector<std::byte> bytes{std::byte{0}, std::byte{0}, std::byte{5}};
  EXPECT_EQ(Bignum::from_bytes_be(bytes), Bignum(5));
}

TEST(Bignum, ToBytesBeMinLenPads) {
  const Bignum v(0x1234);
  const auto bytes = v.to_bytes_be(8);
  ASSERT_EQ(bytes.size(), 8u);
  EXPECT_EQ(std::to_integer<int>(bytes[0]), 0);
  EXPECT_EQ(std::to_integer<int>(bytes[6]), 0x12);
  EXPECT_EQ(std::to_integer<int>(bytes[7]), 0x34);
}

TEST(Bignum, MulLimbAndModLimb) {
  const Bignum v = *Bignum::from_decimal("123456789123456789123456789");
  EXPECT_EQ(v.mul_limb(1000).to_decimal(), "123456789123456789123456789000");
  EXPECT_EQ(v.mul_limb(0).to_decimal(), "0");
}

TEST(Bignum, ModLimbMatchesDecimal) {
  // 123456789123456789123456789 mod 97 computed independently: iterate digits.
  const std::string dec = "123456789123456789123456789";
  unsigned long long r = 0;
  for (char c : dec) r = (r * 10 + static_cast<unsigned>(c - '0')) % 97;
  const Bignum v = *Bignum::from_decimal(dec);
  EXPECT_EQ(v.mod_limb(97), r);
}

TEST(Bignum, Gcd) {
  EXPECT_EQ(Bignum::gcd(Bignum(12), Bignum(18)).to_decimal(), "6");
  EXPECT_EQ(Bignum::gcd(Bignum(17), Bignum(13)).to_decimal(), "1");
  EXPECT_EQ(Bignum::gcd(Bignum{}, Bignum(5)).to_decimal(), "5");
  EXPECT_EQ(Bignum::gcd(Bignum(5), Bignum{}).to_decimal(), "5");
}

TEST(Bignum, ModInverse) {
  const auto inv = Bignum::mod_inverse(Bignum(3), Bignum(11));
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(inv->to_decimal(), "4");  // 3*4 = 12 = 1 mod 11
  EXPECT_FALSE(Bignum::mod_inverse(Bignum(4), Bignum(8)).has_value());
  EXPECT_FALSE(Bignum::mod_inverse(Bignum(3), Bignum(1)).has_value());
}

TEST(Bignum, ModExpSmall) {
  EXPECT_EQ(Bignum::mod_exp(Bignum(2), Bignum(10), Bignum(1000)).to_decimal(), "24");
  EXPECT_EQ(Bignum::mod_exp(Bignum(5), Bignum{}, Bignum(7)).to_decimal(), "1");
  EXPECT_EQ(Bignum::mod_exp(Bignum(7), Bignum(13), Bignum(11)).to_decimal(),
            "2");  // 7^13 mod 11
}

TEST(Bignum, ModExpEvenModulus) {
  // Even modulus exercises the non-Montgomery path.
  EXPECT_EQ(Bignum::mod_exp(Bignum(3), Bignum(5), Bignum(100)).to_decimal(), "43");
}

TEST(Bignum, DecimalRoundTripLarge) {
  const std::string dec =
      "999999999999999999999999999999999999999999999999999999999999";
  const auto v = Bignum::from_decimal(dec);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->to_decimal(), dec);
}

TEST(Bignum, LimbsAreNormalized) {
  const Bignum v = *Bignum::from_hex("10000000000000000");  // 2^64
  EXPECT_EQ(v.limb_count(), 2u);
  const Bignum w = (v - v);
  EXPECT_EQ(w.limb_count(), 0u);
}

}  // namespace
}  // namespace keyguard::bn
