#include "sslsim/ssl_library.hpp"

#include <gtest/gtest.h>

#include "bignum/prime.hpp"
#include "crypto/pem.hpp"
#include "util/bytes.hpp"

namespace keyguard::sslsim {
namespace {

using bn::Bignum;

struct Fixture {
  // One shared 512-bit key for all sslsim tests (generation is the slow part).
  static const crypto::RsaPrivateKey& key() {
    static const crypto::RsaPrivateKey k = [] {
      util::Rng rng(7777);
      return crypto::generate_rsa_key(rng, 512);
    }();
    return k;
  }
  static std::string pem() { return crypto::pem_encode_private_key(key()); }
};

sim::KernelConfig small_config() {
  sim::KernelConfig cfg;
  cfg.mem_bytes = 8ull << 20;
  return cfg;
}

void install_key(sim::Kernel& k, const std::string& path = "/etc/ssh/host_key") {
  k.vfs().write_file(path, util::to_bytes(Fixture::pem()));
}

TEST(SslLibrary, LimbImageRoundTrip) {
  const Bignum v = *Bignum::from_hex("0102030405060708090a0b0c0d0e0f10");
  const auto image = SslLibrary::limb_image(v);
  EXPECT_EQ(image.size(), 16u);  // two limbs
  EXPECT_EQ(Bignum::from_bytes_le(image), v);
}

TEST(SslLibrary, LoadPrivateKeyMatchesHostKey) {
  sim::Kernel k(small_config());
  install_key(k);
  auto& p = k.spawn("sshd");
  SslLibrary ssl(k, {});
  auto key = ssl.load_private_key(p, "/etc/ssh/host_key");
  ASSERT_TRUE(key.has_value());
  const auto host = ssl.read_key(p, *key);
  EXPECT_EQ(host.n, Fixture::key().n);
  EXPECT_EQ(host.d, Fixture::key().d);
  EXPECT_EQ(host.p, Fixture::key().p);
  EXPECT_EQ(host.q, Fixture::key().q);
  EXPECT_TRUE(host.validate());
}

TEST(SslLibrary, LoadMissingFileFails) {
  sim::Kernel k(small_config());
  auto& p = k.spawn("sshd");
  SslLibrary ssl(k, {});
  EXPECT_FALSE(ssl.load_private_key(p, "/nope").has_value());
}

TEST(SslLibrary, LoadCorruptFileFails) {
  sim::Kernel k(small_config());
  k.vfs().write_file("/bad", util::to_bytes("not a pem"));
  auto& p = k.spawn("sshd");
  SslLibrary ssl(k, {});
  EXPECT_FALSE(ssl.load_private_key(p, "/bad").has_value());
}

TEST(SslLibrary, BaselineLoadLeavesKeyImagesInSimMemory) {
  sim::Kernel k(small_config());
  install_key(k);
  auto& p = k.spawn("sshd");
  SslLibrary ssl(k, {});
  auto key = ssl.load_private_key(p, "/etc/ssh/host_key");
  ASSERT_TRUE(key);
  // d, P and Q limb images are findable in physical memory.
  for (const auto& part : {Fixture::key().d, Fixture::key().p, Fixture::key().q}) {
    const auto image = SslLibrary::limb_image(part);
    EXPECT_FALSE(util::find_all(k.memory().all(), image).empty());
  }
  // The PEM text is in memory at least twice: page cache + the freed (but
  // uncleared) heap parse buffer.
  const auto pem_hits =
      util::find_all(k.memory().all(), util::to_bytes(Fixture::pem()));
  EXPECT_GE(pem_hits.size(), 2u);
}

TEST(SslLibrary, ClearTemporariesScrubsParseBuffers) {
  sim::Kernel k(small_config());
  install_key(k);
  auto& p = k.spawn("sshd");
  SslLibrary ssl(k, {.auto_align = false, .clear_temporaries = true});
  auto key = ssl.load_private_key(p, "/etc/ssh/host_key");
  ASSERT_TRUE(key);
  // Only the page-cache copy of the PEM remains.
  const auto pem_hits =
      util::find_all(k.memory().all(), util::to_bytes(Fixture::pem()));
  EXPECT_EQ(pem_hits.size(), 1u);
}

TEST(SslLibrary, PrivateOpMatchesHostCrt) {
  sim::Kernel k(small_config());
  install_key(k);
  auto& p = k.spawn("sshd");
  SslLibrary ssl(k, {});
  auto key = ssl.load_private_key(p, "/etc/ssh/host_key");
  ASSERT_TRUE(key);
  util::Rng rng(5);
  for (int i = 0; i < 3; ++i) {
    const Bignum c = bn::random_below(rng, Fixture::key().n);
    EXPECT_EQ(ssl.rsa_private_op(p, *key, c), Fixture::key().decrypt_crt(c));
  }
}

TEST(SslLibrary, CachePrivateBuildsPersistentMontCopies) {
  sim::Kernel k(small_config());
  install_key(k);
  auto& p = k.spawn("sshd");
  SslLibrary ssl(k, {});
  auto key = ssl.load_private_key(p, "/etc/ssh/host_key");
  ASSERT_TRUE(key);
  const auto p_image = SslLibrary::limb_image(Fixture::key().p);
  const auto before = util::find_all(k.memory().all(), p_image).size();
  ssl.rsa_private_op(p, *key, Bignum(12345));
  const auto after = util::find_all(k.memory().all(), p_image).size();
  EXPECT_EQ(after, before + 1);  // the cached BN_MONT_CTX copy of P
  ASSERT_TRUE(key->mont_p.has_value());
  // A second op reuses the cache: no further copies.
  ssl.rsa_private_op(p, *key, Bignum(99));
  EXPECT_EQ(util::find_all(k.memory().all(), p_image).size(), after);
}

TEST(SslLibrary, NoCacheLeavesResidueWithoutClearDiscipline) {
  sim::Kernel k(small_config());
  install_key(k);
  auto& p = k.spawn("sshd");
  SslLibrary ssl(k, {});
  auto key = ssl.load_private_key(p, "/etc/ssh/host_key");
  ASSERT_TRUE(key);
  key->cache_private = false;  // flag cleared but library NOT patched
  const auto p_image = SslLibrary::limb_image(Fixture::key().p);
  const auto before = util::find_all(k.memory().all(), p_image).size();
  ssl.rsa_private_op(p, *key, Bignum(4321));
  // The temporary Montgomery copy was freed UNCLEARED: residue remains.
  EXPECT_GT(util::find_all(k.memory().all(), p_image).size(), before);
  EXPECT_FALSE(key->mont_p.has_value());
}

TEST(SslLibrary, NoCacheWithClearDisciplineLeavesNoResidue) {
  sim::Kernel k(small_config());
  install_key(k);
  auto& p = k.spawn("sshd");
  SslLibrary ssl(k, {.auto_align = false, .clear_temporaries = true});
  auto key = ssl.load_private_key(p, "/etc/ssh/host_key");
  ASSERT_TRUE(key);
  key->cache_private = false;
  const auto p_image = SslLibrary::limb_image(Fixture::key().p);
  const auto before = util::find_all(k.memory().all(), p_image).size();
  ssl.rsa_private_op(p, *key, Bignum(4321));
  EXPECT_EQ(util::find_all(k.memory().all(), p_image).size(), before);
}

TEST(SslLibrary, MemoryAlignCollapsesToOnePage) {
  sim::Kernel k(small_config());
  install_key(k);
  auto& p = k.spawn("sshd");
  SslLibrary ssl(k, {});
  auto key = ssl.load_private_key(p, "/etc/ssh/host_key");
  ASSERT_TRUE(key);
  ssl.rsa_private_op(p, *key, Bignum(7));  // build caches first
  ASSERT_TRUE(ssl.rsa_memory_align(p, *key));
  EXPECT_TRUE(key->aligned);
  EXPECT_FALSE(key->cache_private);
  EXPECT_FALSE(key->mont_p.has_value());

  // Exactly one image of each CRT part remains, and they share one frame.
  const auto p_hits =
      util::find_all(k.memory().all(), SslLibrary::limb_image(Fixture::key().p));
  const auto q_hits =
      util::find_all(k.memory().all(), SslLibrary::limb_image(Fixture::key().q));
  const auto d_hits =
      util::find_all(k.memory().all(), SslLibrary::limb_image(Fixture::key().d));
  ASSERT_EQ(p_hits.size(), 1u);
  ASSERT_EQ(q_hits.size(), 1u);
  ASSERT_EQ(d_hits.size(), 1u);
  EXPECT_EQ(p_hits[0] / sim::kPageSize, q_hits[0] / sim::kPageSize);
  EXPECT_EQ(p_hits[0] / sim::kPageSize, d_hits[0] / sim::kPageSize);

  // The page is mlocked.
  const auto frame = static_cast<sim::FrameNumber>(p_hits[0] / sim::kPageSize);
  EXPECT_TRUE(k.frame_mlocked(frame));
}

TEST(SslLibrary, AlignIsIdempotent) {
  sim::Kernel k(small_config());
  install_key(k);
  auto& p = k.spawn("sshd");
  SslLibrary ssl(k, {});
  auto key = ssl.load_private_key(p, "/etc/ssh/host_key");
  ASSERT_TRUE(key);
  ASSERT_TRUE(ssl.rsa_memory_align(p, *key));
  const auto page = key->aligned_page;
  ASSERT_TRUE(ssl.rsa_memory_align(p, *key));
  EXPECT_EQ(key->aligned_page, page);
}

TEST(SslLibrary, AlignedKeyStillComputesCorrectly) {
  sim::Kernel k(small_config());
  install_key(k);
  auto& p = k.spawn("sshd");
  SslLibrary ssl(k, {.auto_align = true, .clear_temporaries = true});
  auto key = ssl.load_private_key(p, "/etc/ssh/host_key");
  ASSERT_TRUE(key);
  EXPECT_TRUE(key->aligned);
  const Bignum c(987654321);
  EXPECT_EQ(ssl.rsa_private_op(p, *key, c), Fixture::key().decrypt_crt(c));
}

TEST(SslLibrary, AlignedPageSharedAcrossForksAfterOps) {
  // The headline guarantee: forked children performing private ops never
  // duplicate the aligned page.
  sim::Kernel k(small_config());
  install_key(k);
  auto& master = k.spawn("master");
  SslLibrary ssl(k, {.auto_align = true, .clear_temporaries = true});
  auto key = ssl.load_private_key(master, "/etc/ssh/host_key");
  ASSERT_TRUE(key);
  for (int i = 0; i < 5; ++i) {
    auto& child = k.fork(master, "worker");
    SimRsaKey child_key = *key;  // the struct is copied; sim memory is shared
    ssl.rsa_private_op(child, child_key, Bignum(1000 + i));
    k.exit_process(child);
  }
  const auto p_hits =
      util::find_all(k.memory().all(), SslLibrary::limb_image(Fixture::key().p));
  EXPECT_EQ(p_hits.size(), 1u);
}

TEST(SslLibrary, ONocacheKeepsPemOutOfPageCache) {
  sim::KernelConfig cfg = small_config();
  cfg.o_nocache_supported = true;
  sim::Kernel k(cfg);
  install_key(k);
  auto& p = k.spawn("sshd");
  SslLibrary ssl(k,
                 {.auto_align = true, .clear_temporaries = true, .open_keys_nocache = true});
  auto key = ssl.load_private_key(p, "/etc/ssh/host_key");
  ASSERT_TRUE(key);
  EXPECT_FALSE(k.page_cache().cached("/etc/ssh/host_key"));
  // No PEM text anywhere in physical memory.
  EXPECT_TRUE(util::find_all(k.memory().all(), util::to_bytes(Fixture::pem())).empty());
}

TEST(SslLibrary, RsaFreeScrubsEverything) {
  sim::Kernel k(small_config());
  install_key(k);
  auto& p = k.spawn("sshd");
  SslLibrary ssl(k, {.auto_align = false, .clear_temporaries = true});
  auto key = ssl.load_private_key(p, "/etc/ssh/host_key");
  ASSERT_TRUE(key);
  ssl.rsa_private_op(p, *key, Bignum(5));
  ssl.rsa_free(p, *key);
  for (const auto& part : {Fixture::key().d, Fixture::key().p, Fixture::key().q}) {
    EXPECT_TRUE(util::find_all(k.memory().all(), SslLibrary::limb_image(part)).empty());
  }
}

TEST(SslLibrary, RsaFreeOnAlignedKeyScrubsThePage) {
  sim::Kernel k(small_config());
  install_key(k);
  auto& p = k.spawn("sshd");
  SslLibrary ssl(k, {.auto_align = true, .clear_temporaries = true});
  auto key = ssl.load_private_key(p, "/etc/ssh/host_key");
  ASSERT_TRUE(key);
  ssl.rsa_free(p, *key);
  EXPECT_TRUE(util::find_all(k.memory().all(),
                             SslLibrary::limb_image(Fixture::key().p)).empty());
}

}  // namespace
}  // namespace keyguard::sslsim
