#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>

namespace keyguard::util {
namespace {

Flags make_flags(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(const_cast<const char**>(args.data())));
}

TEST(Flags, EqualsSyntax) {
  const auto f = make_flags({"--name=value", "--n=42"});
  EXPECT_EQ(f.get("name"), "value");
  EXPECT_EQ(f.get_int("n", 0), 42);
}

TEST(Flags, SpaceSyntax) {
  const auto f = make_flags({"--name", "value", "--n", "7"});
  EXPECT_EQ(f.get("name"), "value");
  EXPECT_EQ(f.get_int("n", 0), 7);
}

TEST(Flags, BareFlagIsBooleanTrue) {
  const auto f = make_flags({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_FALSE(f.get_bool("quiet"));
  EXPECT_TRUE(f.has("verbose"));
  EXPECT_FALSE(f.has("quiet"));
}

TEST(Flags, DefaultsWhenAbsent) {
  const auto f = make_flags({});
  EXPECT_EQ(f.get("missing", "fallback"), "fallback");
  EXPECT_EQ(f.get_int("missing", 99), 99);
}

TEST(Flags, MalformedIntFallsBack) {
  const auto f = make_flags({"--n=abc"});
  EXPECT_EQ(f.get_int("n", 5), 5);
}

TEST(Flags, NegativeIntViaEquals) {
  const auto f = make_flags({"--n=-3"});
  EXPECT_EQ(f.get_int("n", 0), -3);
}

TEST(Flags, EnvFallbackForInt) {
  ::setenv("KEYGUARD_TEST_INT", "123", 1);
  const auto f = make_flags({});
  EXPECT_EQ(f.get_int("n", 0, "KEYGUARD_TEST_INT"), 123);
  // Explicit flag beats the environment.
  const auto g = make_flags({"--n=9"});
  EXPECT_EQ(g.get_int("n", 0, "KEYGUARD_TEST_INT"), 9);
  ::unsetenv("KEYGUARD_TEST_INT");
}

TEST(Flags, EnvTruthy) {
  ::setenv("KEYGUARD_TEST_BOOL", "1", 1);
  EXPECT_TRUE(env_truthy("KEYGUARD_TEST_BOOL"));
  ::setenv("KEYGUARD_TEST_BOOL", "true", 1);
  EXPECT_TRUE(env_truthy("KEYGUARD_TEST_BOOL"));
  ::setenv("KEYGUARD_TEST_BOOL", "0", 1);
  EXPECT_FALSE(env_truthy("KEYGUARD_TEST_BOOL"));
  ::unsetenv("KEYGUARD_TEST_BOOL");
  EXPECT_FALSE(env_truthy("KEYGUARD_TEST_BOOL"));
}

TEST(Flags, EnvInt) {
  ::setenv("KEYGUARD_TEST_INT2", "77", 1);
  EXPECT_EQ(env_int("KEYGUARD_TEST_INT2", 1), 77);
  ::setenv("KEYGUARD_TEST_INT2", "junk", 1);
  EXPECT_EQ(env_int("KEYGUARD_TEST_INT2", 1), 1);
  ::unsetenv("KEYGUARD_TEST_INT2");
  EXPECT_EQ(env_int("KEYGUARD_TEST_INT2", 42), 42);
}

TEST(Flags, GetBoolEnvFallback) {
  ::setenv("KEYGUARD_TEST_FULL", "yes", 1);
  const auto f = make_flags({});
  EXPECT_TRUE(f.get_bool("full", "KEYGUARD_TEST_FULL"));
  ::unsetenv("KEYGUARD_TEST_FULL");
  EXPECT_FALSE(f.get_bool("full", "KEYGUARD_TEST_FULL"));
}

TEST(Flags, NonFlagArgumentsIgnored) {
  const auto f = make_flags({"positional", "--x=1", "stray"});
  EXPECT_EQ(f.get_int("x", 0), 1);
}

TEST(Flags, NamesListsEveryFlagSorted) {
  const auto f = make_flags({"--zeta", "--alpha=1", "--mid", "7"});
  const auto n = f.names();
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0], "alpha");
  EXPECT_EQ(n[1], "mid");
  EXPECT_EQ(n[2], "zeta");
  EXPECT_TRUE(make_flags({}).names().empty());
}

TEST(Flags, FirstUnknownRejectsTypos) {
  constexpr std::array<std::string_view, 3> known = {"json", "level", "taint"};
  EXPECT_EQ(make_flags({"--json", "--level=none"}).first_unknown(known),
            std::nullopt);
  const auto typo = make_flags({"--json", "--lvel=none"}).first_unknown(known);
  ASSERT_TRUE(typo.has_value());
  EXPECT_EQ(*typo, "lvel");
  // Value-taking unknowns are caught too.
  const auto extra = make_flags({"--trace", "out.jsonl"}).first_unknown(known);
  ASSERT_TRUE(extra.has_value());
  EXPECT_EQ(*extra, "trace");
  EXPECT_EQ(make_flags({}).first_unknown(known), std::nullopt);
}

}  // namespace
}  // namespace keyguard::util
