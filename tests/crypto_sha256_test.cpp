#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace keyguard::crypto {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(Sha256::hash_str("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(Sha256::hash_str("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(Sha256::hash_str(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(util::as_bytes(chunk));
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : msg) h.update({reinterpret_cast<const std::byte*>(&c), 1});
  EXPECT_EQ(h.finish(), Sha256::hash_str(msg));
}

TEST(Sha256, ExactBlockBoundary) {
  // 55, 56, 57, 63, 64, 65 bytes straddle the padding edge cases.
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 a;
    a.update(util::as_bytes(msg));
    const auto d1 = a.finish();
    // Split at an arbitrary point.
    Sha256 b;
    b.update(util::as_bytes(std::string_view(msg).substr(0, len / 3)));
    b.update(util::as_bytes(std::string_view(msg).substr(len / 3)));
    EXPECT_EQ(d1, b.finish()) << len;
  }
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::hash_str("a"), Sha256::hash_str("b"));
}

}  // namespace
}  // namespace keyguard::crypto
