#include "attack/leaks.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "servers/ssh_server.hpp"
#include "sslsim/ssl_library.hpp"
#include "util/bytes.hpp"

namespace keyguard::attack {
namespace {

using core::ProtectionLevel;
using core::Scenario;
using core::ScenarioConfig;

ScenarioConfig cfg(ProtectionLevel level = ProtectionLevel::kNone) {
  ScenarioConfig c;
  c.level = level;
  c.mem_bytes = 16ull << 20;
  c.key_bits = 512;
  c.seed = 5150;
  return c;
}

TEST(Ext2Leak, DisclosesExactly4072BytesPerDirectory) {
  Scenario s(cfg());
  Ext2DirectoryLeak leak(s.kernel());
  ASSERT_TRUE(leak.create_directory());
  EXPECT_EQ(leak.capture().size(), Ext2DirectoryLeak::kLeakBytesPerDirectory);
  leak.create_directories(4);
  EXPECT_EQ(leak.capture().size(), 5 * Ext2DirectoryLeak::kLeakBytesPerDirectory);
  EXPECT_EQ(leak.directories_created(), 5u);
}

TEST(Ext2Leak, FreshBootDisclosesOnlyZeros) {
  Scenario s(cfg());
  Ext2DirectoryLeak leak(s.kernel());
  leak.create_directories(10);
  EXPECT_TRUE(util::all_zero(leak.capture()));
}

TEST(Ext2Leak, DisclosesResidueOfExitedProcess) {
  Scenario s(cfg());
  auto& p = s.kernel().spawn("victim");
  const auto secret = util::to_bytes("EXT2-LEAKED-SECRET");
  // Place the secret past the first 24 bytes of the page: the leak only
  // discloses the last 4072 bytes of each block ("up to 4072 bytes").
  s.kernel().heap_alloc(p, 64);
  const sim::VirtAddr a = s.kernel().heap_alloc(p, 64);
  s.kernel().mem_write(p, a, secret);
  s.kernel().exit_process(p);
  Ext2DirectoryLeak leak(s.kernel());
  // Enough directories to cover the whole free pool.
  leak.create_directories(s.kernel().allocator().free_count());
  EXPECT_FALSE(util::find_all(leak.capture(), secret).empty());
}

TEST(Ext2Leak, DefeatedByZeroOnFree) {
  Scenario s(cfg(ProtectionLevel::kKernel));
  auto& p = s.kernel().spawn("victim");
  const auto secret = util::to_bytes("EXT2-LEAKED-SECRET");
  const sim::VirtAddr a = s.kernel().heap_alloc(p, 64);
  s.kernel().mem_write(p, a, secret);
  s.kernel().exit_process(p);
  Ext2DirectoryLeak leak(s.kernel());
  leak.create_directories(200);
  EXPECT_TRUE(util::find_all(leak.capture(), secret).empty());
}

TEST(Ext2Leak, StopsAtMemoryExhaustion) {
  Scenario s(cfg());
  Ext2DirectoryLeak leak(s.kernel());
  const std::size_t free_pages = s.kernel().allocator().free_count();
  EXPECT_EQ(leak.create_directories(free_pages + 100), free_pages);
}

TEST(Ext2Leak, ReleaseReturnsFrames) {
  Scenario s(cfg());
  const std::size_t before = s.kernel().allocator().free_count();
  {
    Ext2DirectoryLeak leak(s.kernel());
    leak.create_directories(50);
    EXPECT_EQ(s.kernel().allocator().free_count(), before - 50);
  }  // destructor releases
  EXPECT_EQ(s.kernel().allocator().free_count(), before);
}

TEST(NttyLeak, RegionWithinBoundsAndRoughlyHalf) {
  Scenario s(cfg());
  NttyLeak leak(s.kernel());
  util::Rng rng(3);
  double total_frac = 0;
  const int runs = 50;
  for (int i = 0; i < runs; ++i) {
    const auto r = leak.choose_region(rng);
    EXPECT_LE(r.offset + r.length, s.kernel().memory().size_bytes());
    const double frac =
        static_cast<double>(r.length) / static_cast<double>(s.kernel().memory().size_bytes());
    EXPECT_GE(frac, leak.config().min_fraction);
    EXPECT_LE(frac, leak.config().max_fraction);
    total_frac += frac;
  }
  EXPECT_NEAR(total_frac / runs, 0.5, 0.05);
}

TEST(NttyLeak, DumpMatchesMemoryContent) {
  Scenario s(cfg());
  auto& p = s.kernel().spawn("victim");
  const auto secret = util::to_bytes("NTTY-DUMPED-SECRET");
  s.kernel().mem_write(p, s.kernel().heap_alloc(p, 64), secret);
  NttyLeak leak(s.kernel());
  util::Rng rng(4);
  // With ~50% disclosed per run, several runs almost surely cover the
  // secret at least once (deterministic given the seed).
  bool found = false;
  for (int i = 0; i < 10 && !found; ++i) {
    const auto dump = leak.dump(rng);
    found = !util::find_all(dump, secret).empty();
  }
  EXPECT_TRUE(found);
}

TEST(NttyLeak, CustomFractionRespected) {
  Scenario s(cfg());
  NttyLeakConfig narrow;
  narrow.mean_fraction = 0.2;
  narrow.stddev_fraction = 0.0;
  narrow.min_fraction = 0.2;
  narrow.max_fraction = 0.2;
  NttyLeak leak(s.kernel(), narrow);
  util::Rng rng(5);
  const auto r = leak.choose_region(rng);
  EXPECT_NEAR(static_cast<double>(r.length) /
                  static_cast<double>(s.kernel().memory().size_bytes()),
              0.2, 0.01);
}

TEST(TrialStats, AveragesAndSuccessRate) {
  TrialStats stats;
  stats.record(0);
  stats.record(4);
  stats.record(8);
  EXPECT_EQ(stats.trials(), 3u);
  EXPECT_DOUBLE_EQ(stats.avg_copies(), 4.0);
  EXPECT_NEAR(stats.success_rate(), 2.0 / 3.0, 1e-9);
}

TEST(TrialStats, EmptyIsZero) {
  TrialStats stats;
  EXPECT_EQ(stats.avg_copies(), 0.0);
  EXPECT_EQ(stats.success_rate(), 0.0);
}

TEST(EndToEnd, Ext2AttackRecoversSshKeyBaseline) {
  // The paper's §2 attack: connections, close them, mkdir storm, grep.
  Scenario s(cfg(ProtectionLevel::kNone));
  servers::SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 20; ++i) server.handle_connection(16 << 10);
  Ext2DirectoryLeak leak(s.kernel());
  leak.create_directories(1000);
  EXPECT_GT(s.scanner().count_copies(leak.capture()), 0u);
}

TEST(EndToEnd, Ext2AttackDefeatedByIntegratedDefense) {
  Scenario s(cfg(ProtectionLevel::kIntegrated));
  servers::SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 20; ++i) server.handle_connection(16 << 10);
  Ext2DirectoryLeak leak(s.kernel());
  leak.create_directories(1000);
  EXPECT_EQ(s.scanner().count_copies(leak.capture()), 0u);
}

TEST(EndToEnd, Ext2AttackDefeatedByKernelDefenseAlone) {
  Scenario s(cfg(ProtectionLevel::kKernel));
  servers::SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 20; ++i) server.handle_connection(16 << 10);
  Ext2DirectoryLeak leak(s.kernel());
  leak.create_directories(1000);
  EXPECT_EQ(s.scanner().count_copies(leak.capture()), 0u);
}

}  // namespace
}  // namespace keyguard::attack
