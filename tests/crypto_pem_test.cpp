#include "crypto/pem.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace keyguard::crypto {
namespace {

RsaPrivateKey test_key() {
  util::Rng rng(424242);
  return generate_rsa_key(rng, 512);
}

TEST(Pem, DerRoundTrip) {
  const auto key = test_key();
  const auto der = der_encode_private_key(key);
  const auto back = der_decode_private_key(der);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->n, key.n);
  EXPECT_EQ(back->e, key.e);
  EXPECT_EQ(back->d, key.d);
  EXPECT_EQ(back->p, key.p);
  EXPECT_EQ(back->q, key.q);
  EXPECT_EQ(back->dmp1, key.dmp1);
  EXPECT_EQ(back->dmq1, key.dmq1);
  EXPECT_EQ(back->iqmp, key.iqmp);
  EXPECT_TRUE(back->validate());
}

TEST(Pem, PemRoundTrip) {
  const auto key = test_key();
  const std::string pem = pem_encode_private_key(key);
  const auto back = pem_decode_private_key(pem);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->d, key.d);
  EXPECT_TRUE(back->validate());
}

TEST(Pem, HasArmorLines) {
  const std::string pem = pem_encode_private_key(test_key());
  EXPECT_EQ(pem.find(kPemHeader), 0u);
  EXPECT_NE(pem.find(kPemFooter), std::string::npos);
  EXPECT_EQ(pem.back(), '\n');
}

TEST(Pem, BodyWrappedAt64Columns) {
  const std::string pem = pem_encode_private_key(test_key());
  std::size_t start = pem.find('\n') + 1;
  while (start < pem.size()) {
    const std::size_t end = pem.find('\n', start);
    const std::string_view line(pem.data() + start, end - start);
    if (line == kPemFooter) break;
    EXPECT_LE(line.size(), 64u);
    start = end + 1;
  }
}

TEST(Pem, DecodeRejectsMissingHeader) {
  EXPECT_FALSE(pem_decode_private_key("no key here").has_value());
}

TEST(Pem, DecodeRejectsMissingFooter) {
  std::string pem = pem_encode_private_key(test_key());
  pem = pem.substr(0, pem.find(kPemFooter));
  EXPECT_FALSE(pem_decode_private_key(pem).has_value());
}

TEST(Pem, DecodeRejectsCorruptBase64) {
  std::string pem = pem_encode_private_key(test_key());
  // Inject an illegal character into the body.
  const auto pos = pem.find('\n') + 10;
  pem[pos] = '!';
  EXPECT_FALSE(pem_decode_private_key(pem).has_value());
}

TEST(Pem, DerRejectsTruncation) {
  const auto der = der_encode_private_key(test_key());
  for (const std::size_t cut : {0u, 1u, 4u, 5u}) {
    const std::span<const std::byte> partial(der.data(), der.size() - der.size() / 2 - cut);
    EXPECT_FALSE(der_decode_private_key(partial).has_value());
  }
}

TEST(Pem, DerRejectsTrailingJunk) {
  auto der = der_encode_private_key(test_key());
  der.push_back(std::byte{0x02});
  EXPECT_FALSE(der_decode_private_key(der).has_value());
}

TEST(Pem, DerRejectsWrongTag) {
  auto der = der_encode_private_key(test_key());
  der[0] = std::byte{0x03};
  EXPECT_FALSE(der_decode_private_key(der).has_value());
}

TEST(Pem, PemTextContainsSearchablePattern) {
  // The attacks grep captured memory for the PEM body; the text must be a
  // stable byte pattern: encode twice, get identical text.
  const auto key = test_key();
  EXPECT_EQ(pem_encode_private_key(key), pem_encode_private_key(key));
}

TEST(Pem, DecodeToleratesSurroundingText) {
  const std::string pem =
      "junk before\n" + pem_encode_private_key(test_key()) + "junk after\n";
  EXPECT_TRUE(pem_decode_private_key(pem).has_value());
}

}  // namespace
}  // namespace keyguard::crypto
