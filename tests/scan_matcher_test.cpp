// Matcher-equivalence battery: the single-pass MultiMatcher must be
// byte-for-byte identical to the legacy per-needle walk — same offsets,
// same (offset, pattern_index) order, same matched_bytes/full flags — in
// exact AND prefix mode, over adversarial needle sets (shared first
// bytes, shared 8-byte SWAR prefixes, needle-is-prefix-of-needle,
// overlapping self-similar needles, duplicates) and randomized windows.
// The legacy loop is the oracle; any divergence is a MultiMatcher bug.
#include "scan/multi_matcher.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "scan/scan_engine.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace keyguard::scan {
namespace {

using Needles = std::vector<std::vector<std::byte>>;

std::vector<std::span<const std::byte>> views(const Needles& n) {
  std::vector<std::span<const std::byte>> out;
  out.reserve(n.size());
  for (const auto& v : n) out.emplace_back(v);
  return out;
}

void expect_same_raw(const std::vector<RawMatch>& legacy,
                     const std::vector<RawMatch>& multi,
                     const std::string& label) {
  ASSERT_EQ(legacy.size(), multi.size()) << label;
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].offset, multi[i].offset) << label << ", match " << i;
    EXPECT_EQ(legacy[i].pattern_index, multi[i].pattern_index)
        << label << ", match " << i;
    EXPECT_EQ(legacy[i].matched_bytes, multi[i].matched_bytes)
        << label << ", match " << i;
    EXPECT_EQ(legacy[i].full, multi[i].full) << label << ", match " << i;
  }
}

/// Runs all three matchers over the same window and compares outputs.
/// kSimd runs whatever level simd_available() reports (the CI battery
/// re-runs this binary under KEYGUARD_SCAN_SIMD=avx2 and =none, so every
/// kernel and the scalar fallback all face the same oracle).
void check_window(std::span<const std::byte> buffer, std::size_t begin,
                  std::size_t end, std::size_t window_end, const Needles& n,
                  std::size_t min_prefix, const std::string& label) {
  const auto nv = views(n);
  std::vector<RawMatch> legacy;
  std::vector<RawMatch> multi;
  std::vector<RawMatch> simd;
  scan_range(buffer, begin, end, window_end, nv, min_prefix,
             MatcherKind::kLegacy, legacy);
  scan_range(buffer, begin, end, window_end, nv, min_prefix,
             MatcherKind::kMulti, multi);
  scan_range(buffer, begin, end, window_end, nv, min_prefix,
             MatcherKind::kSimd, simd);
  expect_same_raw(legacy, multi, label);
  expect_same_raw(legacy, simd, label + " (simd)");
}

void check_full_buffer(std::span<const std::byte> buffer, const Needles& n,
                       std::size_t min_prefix, const std::string& label) {
  check_window(buffer, 0, buffer.size(), buffer.size(), n, min_prefix, label);
}

TEST(MatcherResolve, AutoThresholdAndNames) {
  EXPECT_EQ(resolve_matcher(MatcherKind::kAuto, 0), MatcherKind::kLegacy);
  EXPECT_EQ(resolve_matcher(MatcherKind::kAuto, kMultiMatcherMinNeedles - 1),
            MatcherKind::kLegacy);
  // At/above the threshold kAuto picks the best multi-pattern path the
  // hardware (∧ KEYGUARD_SCAN_SIMD cap) offers.
  const MatcherKind best = simd_available() != SimdKind::kNone
                               ? MatcherKind::kSimd
                               : MatcherKind::kMulti;
  EXPECT_EQ(resolve_matcher(MatcherKind::kAuto, kMultiMatcherMinNeedles), best);
  EXPECT_EQ(resolve_matcher(MatcherKind::kLegacy, 1000), MatcherKind::kLegacy);
  EXPECT_EQ(resolve_matcher(MatcherKind::kMulti, 1), MatcherKind::kMulti);
  // Explicit kSimd passes through even on scalar-only hardware — the
  // matcher falls back internally and stats record simd_kind = none.
  EXPECT_EQ(resolve_matcher(MatcherKind::kSimd, 1), MatcherKind::kSimd);
  EXPECT_STREQ(matcher_name(MatcherKind::kAuto), "auto");
  EXPECT_STREQ(matcher_name(MatcherKind::kLegacy), "legacy");
  EXPECT_STREQ(matcher_name(MatcherKind::kMulti), "multi");
  EXPECT_STREQ(matcher_name(MatcherKind::kSimd), "simd");
  EXPECT_STREQ(simd_kind_name(SimdKind::kNone), "none");
  EXPECT_STREQ(simd_kind_name(SimdKind::kAvx2), "avx2");
  EXPECT_STREQ(simd_kind_name(SimdKind::kAvx512), "avx512");
}

TEST(MultiMatcherEquivalence, SharedFirstBytes) {
  // Every needle starts with 'K': one bucket holds them all, and the SWAR
  // filter is the only thing separating candidates.
  Needles n;
  for (const char* s : {"KEY-ALPHA", "KEY-BETA", "KEYRING", "K", "KA", "KEY"}) {
    n.push_back(util::to_bytes(s));
  }
  std::vector<std::byte> hay(8192, std::byte{'x'});
  util::Rng rng(101);
  for (int i = 0; i < 200; ++i) {
    const auto& pick = n[rng.next_below(n.size())];
    const std::size_t off = rng.next_below(hay.size() - pick.size());
    std::copy(pick.begin(), pick.end(), hay.begin() + off);
  }
  check_full_buffer(hay, n, 0, "shared first bytes");
}

TEST(MultiMatcherEquivalence, SharedEightBytePrefixes) {
  // Identical first 8 bytes: the SWAR filter passes every bucket entry and
  // only the memcmp tail separates them — the worst case for the filter.
  Needles n;
  for (const char* s :
       {"PREFIX00-tailA", "PREFIX00-tailB", "PREFIX00", "PREFIX00-tailA-longer",
        "PREFIX00-x"}) {
    n.push_back(util::to_bytes(s));
  }
  std::vector<std::byte> hay(4096, std::byte{0});
  util::Rng rng(202);
  rng.fill_bytes(hay);
  for (int i = 0; i < 60; ++i) {
    const auto& pick = n[rng.next_below(n.size())];
    const std::size_t off = rng.next_below(hay.size() - pick.size());
    std::copy(pick.begin(), pick.end(), hay.begin() + off);
  }
  check_full_buffer(hay, n, 0, "shared 8-byte prefixes");
}

TEST(MultiMatcherEquivalence, NeedleIsPrefixOfNeedle) {
  // "secret" ⊂ "secret-key" ⊂ "secret-key-material": every long-needle hit
  // must also report each shorter needle at the same offset, in needle
  // order (the tie-break the engine's contract documents).
  Needles n;
  n.push_back(util::to_bytes("secret-key-material"));
  n.push_back(util::to_bytes("secret"));
  n.push_back(util::to_bytes("secret-key"));
  std::vector<std::byte> hay(4096, std::byte{'.'});
  const auto longest = n[0];
  for (const std::size_t off : {10u, 500u, 1000u, 4000u}) {
    std::copy(longest.begin(), longest.end(), hay.begin() + off);
  }
  const auto shortest = n[1];
  std::copy(shortest.begin(), shortest.end(), hay.begin() + 2000);
  check_full_buffer(hay, n, 0, "needle prefix of needle");
}

TEST(MultiMatcherEquivalence, OverlappingSelfSimilarNeedles) {
  // Runs of a repeated byte: overlapping self-matches at every offset, the
  // densest hit pattern possible.
  Needles n;
  n.push_back(std::vector<std::byte>(8, std::byte{0xAA}));
  n.push_back(std::vector<std::byte>(12, std::byte{0xAA}));
  n.push_back(std::vector<std::byte>(4, std::byte{0xAA}));
  n.push_back(util::to_bytes("ababab"));
  n.push_back(util::to_bytes("abab"));
  std::vector<std::byte> hay(2048, std::byte{0xAA});
  for (std::size_t i = 1024; i + 2 <= 1536; i += 2) {
    hay[i] = std::byte{'a'};
    hay[i + 1] = std::byte{'b'};
  }
  check_full_buffer(hay, n, 0, "self-similar needles");
}

TEST(MultiMatcherEquivalence, DuplicateAndDegenerateNeedles) {
  // Duplicates must both report (distinct pattern indices); empty needles
  // are skipped by both paths.
  Needles n;
  n.push_back(util::to_bytes("dup"));
  n.push_back(util::to_bytes("dup"));
  n.push_back({});  // empty: skipped
  n.push_back(util::to_bytes("d"));
  std::vector<std::byte> hay = util::to_bytes("xxdupxxdxxdupdup");
  check_full_buffer(hay, n, 0, "duplicates");
}

TEST(MultiMatcherEquivalence, PrefixModeAcrossSwarBoundary) {
  // min_prefix below, at, and above the 8-byte SWAR width; needles shorter
  // than the minimum are skipped by both paths.
  Needles n;
  n.push_back(util::to_bytes("LONG-NEEDLE-ONE-abcdef"));
  n.push_back(util::to_bytes("LONG-NEEDLE-TWO-abcdef"));
  n.push_back(util::to_bytes("LONG-NEEDLE"));   // shares the long prefix
  n.push_back(util::to_bytes("short"));         // skipped when min_prefix > 5
  std::vector<std::byte> hay(4096, std::byte{'-'});
  util::Rng rng(303);
  for (int i = 0; i < 40; ++i) {
    const auto& pick = n[rng.next_below(n.size())];
    if (pick.empty()) continue;
    const std::size_t off = rng.next_below(hay.size() - pick.size());
    std::copy(pick.begin(), pick.end(), hay.begin() + off);
    // Mutate one tail byte half the time so partial (non-full) extensions
    // exist alongside full matches.
    if (rng.next_below(2) == 0 && pick.size() > 12) {
      hay[off + pick.size() - 3] = std::byte{'?'};
    }
  }
  for (const std::size_t min_prefix : {4u, 8u, 11u, 16u}) {
    check_full_buffer(hay, n, min_prefix,
                      "prefix mode, min=" + std::to_string(min_prefix));
  }
}

TEST(MultiMatcherEquivalence, RandomizedWindowsFuzz) {
  // Randomized buffers, adversarial needle families, and random
  // (begin, end, window_end) triples — the seam-window semantics both
  // matchers must share.
  util::Rng rng(8675309);
  for (int round = 0; round < 40; ++round) {
    const std::size_t size = 512 + rng.next_below(8192);
    std::vector<std::byte> hay(size);
    rng.fill_bytes(hay);
    // Low-entropy overlay so accidental partial matches are common.
    for (std::size_t i = 0; i < size; ++i) {
      if (rng.next_below(4) == 0) hay[i] = std::byte(rng.next_below(4));
    }
    Needles n;
    const std::size_t count = 1 + rng.next_below(24);
    for (std::size_t k = 0; k < count; ++k) {
      std::vector<std::byte> needle(1 + rng.next_below(40));
      switch (rng.next_below(4)) {
        case 0:  // random bytes
          rng.fill_bytes(needle);
          break;
        case 1:  // low-entropy (collides with the overlay)
          for (auto& b : needle) b = std::byte(rng.next_below(4));
          break;
        case 2:  // substring of the haystack: guaranteed hits
          if (needle.size() < size) {
            const std::size_t at = rng.next_below(size - needle.size());
            std::copy(hay.begin() + at, hay.begin() + at + needle.size(),
                      needle.begin());
          }
          break;
        default:  // prefix of an earlier needle
          if (!n.empty()) {
            const auto& prev = n[rng.next_below(n.size())];
            needle.assign(prev.begin(),
                          prev.begin() + 1 + rng.next_below(prev.size()));
          } else {
            rng.fill_bytes(needle);
          }
          break;
      }
      n.push_back(std::move(needle));
    }
    // Plant a few guaranteed full hits.
    for (int p = 0; p < 6; ++p) {
      const auto& pick = n[rng.next_below(n.size())];
      if (pick.empty() || pick.size() >= size) continue;
      const std::size_t off = rng.next_below(size - pick.size());
      std::copy(pick.begin(), pick.end(), hay.begin() + off);
    }
    const std::size_t begin = rng.next_below(size);
    const std::size_t end = begin + 1 + rng.next_below(size - begin);
    const std::size_t window_end = end + rng.next_below(size - end + 1);
    const std::size_t min_prefix = rng.next_below(3) == 0 ? 4 + rng.next_below(12) : 0;
    check_window(hay, begin, end, window_end, n, min_prefix,
                 "fuzz round " + std::to_string(round));
    check_full_buffer(hay, n, min_prefix,
                      "fuzz round " + std::to_string(round) + " (full)");
  }
}

TEST(MultiMatcherEquivalence, ShardedScanLegacyVsMultiAllShardCounts) {
  // End-to-end through sharded_scan: forced-legacy and forced-multi runs
  // must agree at every shard count, and both report the matcher used.
  util::Rng rng(424242);
  std::vector<std::byte> hay(3 * 4096 + 777);
  rng.fill_bytes(hay);
  Needles n;
  for (int k = 0; k < 16; ++k) {
    std::vector<std::byte> needle(8 + rng.next_below(24));
    rng.fill_bytes(needle);
    n.push_back(std::move(needle));
  }
  for (int p = 0; p < 24; ++p) {
    const auto& pick = n[rng.next_below(n.size())];
    const std::size_t off = rng.next_below(hay.size() - pick.size());
    std::copy(pick.begin(), pick.end(), hay.begin() + off);
  }
  const auto nv = views(n);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    ScanStats legacy_stats;
    ScanStats multi_stats;
    const auto legacy = sharded_scan(hay, nv, shards, 0, &legacy_stats,
                                     MatcherKind::kLegacy);
    const auto multi = sharded_scan(hay, nv, shards, 0, &multi_stats,
                                    MatcherKind::kMulti);
    expect_same_raw(legacy, multi, "sharded, " + std::to_string(shards));
    EXPECT_EQ(legacy_stats.matcher, MatcherKind::kLegacy);
    EXPECT_EQ(multi_stats.matcher, MatcherKind::kMulti);
    EXPECT_EQ(multi_stats.simd_kind, SimdKind::kNone);
    // Forced simd: same bytes, and the stats name both the matcher and
    // the vector level actually used (kNone == visible scalar fallback).
    ScanStats simd_stats;
    const auto simd = sharded_scan(hay, nv, shards, 0, &simd_stats,
                                   MatcherKind::kSimd);
    expect_same_raw(legacy, simd, "sharded simd, " + std::to_string(shards));
    EXPECT_EQ(simd_stats.matcher, MatcherKind::kSimd);
    EXPECT_EQ(simd_stats.simd_kind, simd_available());
    // 16 needles ≥ threshold: kAuto must resolve to the best multi path
    // and still match the oracle.
    ScanStats auto_stats;
    const auto aut = sharded_scan(hay, nv, shards, 0, &auto_stats,
                                  MatcherKind::kAuto);
    expect_same_raw(legacy, aut, "sharded auto, " + std::to_string(shards));
    EXPECT_EQ(auto_stats.matcher, simd_available() != SimdKind::kNone
                                      ? MatcherKind::kSimd
                                      : MatcherKind::kMulti);
  }
}

TEST(SimdEquivalence, DenseNeedleSetFallsBackToScalarVisibly) {
  // 512 random 32-byte needles saturate the 8-bucket shufti nibble tables
  // (most byte pairs survive the classifier), so MultiMatcher's build-time
  // density check must route forced-kSimd scans through the scalar walk:
  // simd_profitable() false, stats simd_kind == kNone even on vector
  // hardware, and the bytes still come out identical to kMulti. A sparse
  // structured set built the same way stays profitable — the cutoff
  // discriminates, it doesn't blanket-disable.
  util::Rng rng(717);
  std::vector<std::byte> hay(32 * 1024);
  rng.fill_bytes(hay);
  Needles dense;
  for (int k = 0; k < 512; ++k) {
    std::vector<std::byte> needle(32);
    rng.fill_bytes(needle);
    dense.push_back(std::move(needle));
  }
  const auto dv = views(dense);
  EXPECT_FALSE(MultiMatcher(dv, 0).simd_profitable());
  ScanStats multi_stats;
  ScanStats simd_stats;
  const auto multi = sharded_scan(hay, dv, 1, 0, &multi_stats,
                                  MatcherKind::kMulti);
  const auto simd = sharded_scan(hay, dv, 1, 0, &simd_stats,
                                 MatcherKind::kSimd);
  expect_same_raw(multi, simd, "dense fallback");
  EXPECT_EQ(simd_stats.matcher, MatcherKind::kSimd);
  EXPECT_EQ(simd_stats.simd_kind, SimdKind::kNone);  // visible downgrade

  Needles sparse;
  for (int k = 0; k < 64; ++k) {
    std::vector<std::byte> needle(32);
    rng.fill_bytes(needle);
    needle[0] = std::byte{'K'};  // one shared first byte: one tight bucket
    sparse.push_back(std::move(needle));
  }
  EXPECT_TRUE(MultiMatcher(views(sparse), 0).simd_profitable());
}

TEST(SimdEquivalence, NeedleCountSweepFuzz) {
  // The ISSUE's fuzz grid: needle counts spanning one bucket to heavy
  // bucket collision (512 needles over 8 shufti buckets), random and
  // low-entropy haystacks, exact and prefix mode. check_window runs the
  // three-way compare, so the SIMD path faces the legacy oracle directly.
  util::Rng rng(550);
  for (const std::size_t count :
       {std::size_t{1}, std::size_t{8}, std::size_t{64}, std::size_t{512}}) {
    std::vector<std::byte> hay(64 * 1024);
    rng.fill_bytes(hay);
    for (std::size_t i = 0; i < hay.size(); ++i) {
      if (rng.next_below(8) == 0) hay[i] = std::byte(rng.next_below(3));
    }
    Needles n;
    for (std::size_t k = 0; k < count; ++k) {
      std::vector<std::byte> needle(1 + rng.next_below(40));
      if (rng.next_below(2) == 0) {
        rng.fill_bytes(needle);
      } else {
        for (auto& b : needle) b = std::byte(rng.next_below(3));
      }
      n.push_back(std::move(needle));
    }
    for (std::size_t p = 0; p < 4 * count; ++p) {
      const auto& pick = n[rng.next_below(n.size())];
      if (pick.size() >= hay.size()) continue;
      const std::size_t off = rng.next_below(hay.size() - pick.size());
      std::copy(pick.begin(), pick.end(), hay.begin() + off);
    }
    const std::string label = "needle count " + std::to_string(count);
    check_full_buffer(hay, n, 0, label);
    check_full_buffer(hay, n, 12, label + " (prefix)");
  }
}

TEST(SimdEquivalence, VectorBoundaryStraddleAndUnalignedWindows) {
  // Matches planted so they straddle every 32- and 64-byte lane boundary
  // (the v0/v1 shifted-load seam), plus window starts at every offset in
  // [0, 130) — the vector loop must agree with the oracle no matter how
  // the window start misaligns the lanes.
  Needles n;
  n.push_back(util::to_bytes("XYZZY-needle"));
  n.push_back(util::to_bytes("XY"));
  n.push_back(util::to_bytes("Q"));
  std::vector<std::byte> hay(4096, std::byte{'.'});
  const auto& m0 = n[0];
  // One copy ENDING at, one STRADDLING, each multiple of 32 up to 512.
  for (std::size_t b = 32; b <= 512; b += 32) {
    if (b >= m0.size()) {
      std::copy(m0.begin(), m0.end(), hay.begin() + (b - m0.size()));
    }
    std::copy(m0.begin(), m0.end(), hay.begin() + b + 512 - m0.size() / 2);
  }
  hay[63] = std::byte{'Q'};
  hay[64] = std::byte{'X'};
  hay[65] = std::byte{'Y'};  // "XY" straddling a 64-byte boundary
  for (std::size_t begin = 0; begin < 130; ++begin) {
    check_window(hay, begin, hay.size(), hay.size(), n, 0,
                 "window begin " + std::to_string(begin));
  }
  // Window END misalignment: every end in the last two vectors' range.
  for (std::size_t end = hay.size() - 130; end <= hay.size(); ++end) {
    check_window(hay, 0, end, end, n, 0, "window end " + std::to_string(end));
  }
}

TEST(SimdEquivalence, WindowsShorterThanOneVector) {
  // Sub-vector windows never enter the vector loop — the scalar tail must
  // handle everything, including 0- and 1-byte windows.
  Needles n;
  n.push_back(util::to_bytes("ab"));
  n.push_back(util::to_bytes("a"));
  n.push_back(util::to_bytes("abcabc"));
  util::Rng rng(707);
  std::vector<std::byte> hay(256);
  for (auto& b : hay) {
    b = std::byte("abc?"[rng.next_below(4)]);
  }
  for (std::size_t len = 0; len <= 70; ++len) {
    for (const std::size_t begin : {std::size_t{0}, std::size_t{13},
                                    std::size_t{31}, std::size_t{64}}) {
      if (begin + len > hay.size()) continue;
      check_window(hay, begin, begin + len, begin + len, n, 0,
                   "short window [" + std::to_string(begin) + ", +" +
                       std::to_string(len) + ")");
      // Seam shape: window_end extends past end like a shard overlap.
      const std::size_t wend = std::min(hay.size(), begin + len + 8);
      check_window(hay, begin, begin + len, wend, n, 0,
                   "short window+overlap [" + std::to_string(begin) + ", +" +
                       std::to_string(len) + ")");
    }
  }
}

TEST(MultiMatcherEquivalence, NeedleAtVeryEndAndPartialSwarLoad) {
  // Hits in the last 8 bytes of the buffer exercise the partial SWAR load.
  Needles n;
  n.push_back(util::to_bytes("endmark"));
  n.push_back(util::to_bytes("end"));
  n.push_back(util::to_bytes("k"));
  std::vector<std::byte> hay(256, std::byte{'z'});
  const auto m0 = n[0];
  std::copy(m0.begin(), m0.end(), hay.end() - static_cast<std::ptrdiff_t>(m0.size()));
  hay[255] = std::byte{'k'};
  check_full_buffer(hay, n, 0, "buffer end");
  // Tiny buffers, smaller than 8 bytes.
  const auto tiny = util::to_bytes("endk");
  check_full_buffer(tiny, n, 0, "tiny buffer");
}

}  // namespace
}  // namespace keyguard::scan
