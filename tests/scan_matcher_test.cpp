// Matcher-equivalence battery: the single-pass MultiMatcher must be
// byte-for-byte identical to the legacy per-needle walk — same offsets,
// same (offset, pattern_index) order, same matched_bytes/full flags — in
// exact AND prefix mode, over adversarial needle sets (shared first
// bytes, shared 8-byte SWAR prefixes, needle-is-prefix-of-needle,
// overlapping self-similar needles, duplicates) and randomized windows.
// The legacy loop is the oracle; any divergence is a MultiMatcher bug.
#include "scan/multi_matcher.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "scan/scan_engine.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace keyguard::scan {
namespace {

using Needles = std::vector<std::vector<std::byte>>;

std::vector<std::span<const std::byte>> views(const Needles& n) {
  std::vector<std::span<const std::byte>> out;
  out.reserve(n.size());
  for (const auto& v : n) out.emplace_back(v);
  return out;
}

void expect_same_raw(const std::vector<RawMatch>& legacy,
                     const std::vector<RawMatch>& multi,
                     const std::string& label) {
  ASSERT_EQ(legacy.size(), multi.size()) << label;
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].offset, multi[i].offset) << label << ", match " << i;
    EXPECT_EQ(legacy[i].pattern_index, multi[i].pattern_index)
        << label << ", match " << i;
    EXPECT_EQ(legacy[i].matched_bytes, multi[i].matched_bytes)
        << label << ", match " << i;
    EXPECT_EQ(legacy[i].full, multi[i].full) << label << ", match " << i;
  }
}

/// Runs both matchers over the same window and compares outputs.
void check_window(std::span<const std::byte> buffer, std::size_t begin,
                  std::size_t end, std::size_t window_end, const Needles& n,
                  std::size_t min_prefix, const std::string& label) {
  const auto nv = views(n);
  std::vector<RawMatch> legacy;
  std::vector<RawMatch> multi;
  scan_range(buffer, begin, end, window_end, nv, min_prefix,
             MatcherKind::kLegacy, legacy);
  scan_range(buffer, begin, end, window_end, nv, min_prefix,
             MatcherKind::kMulti, multi);
  expect_same_raw(legacy, multi, label);
}

void check_full_buffer(std::span<const std::byte> buffer, const Needles& n,
                       std::size_t min_prefix, const std::string& label) {
  check_window(buffer, 0, buffer.size(), buffer.size(), n, min_prefix, label);
}

TEST(MatcherResolve, AutoThresholdAndNames) {
  EXPECT_EQ(resolve_matcher(MatcherKind::kAuto, 0), MatcherKind::kLegacy);
  EXPECT_EQ(resolve_matcher(MatcherKind::kAuto, kMultiMatcherMinNeedles - 1),
            MatcherKind::kLegacy);
  EXPECT_EQ(resolve_matcher(MatcherKind::kAuto, kMultiMatcherMinNeedles),
            MatcherKind::kMulti);
  EXPECT_EQ(resolve_matcher(MatcherKind::kLegacy, 1000), MatcherKind::kLegacy);
  EXPECT_EQ(resolve_matcher(MatcherKind::kMulti, 1), MatcherKind::kMulti);
  EXPECT_STREQ(matcher_name(MatcherKind::kAuto), "auto");
  EXPECT_STREQ(matcher_name(MatcherKind::kLegacy), "legacy");
  EXPECT_STREQ(matcher_name(MatcherKind::kMulti), "multi");
}

TEST(MultiMatcherEquivalence, SharedFirstBytes) {
  // Every needle starts with 'K': one bucket holds them all, and the SWAR
  // filter is the only thing separating candidates.
  Needles n;
  for (const char* s : {"KEY-ALPHA", "KEY-BETA", "KEYRING", "K", "KA", "KEY"}) {
    n.push_back(util::to_bytes(s));
  }
  std::vector<std::byte> hay(8192, std::byte{'x'});
  util::Rng rng(101);
  for (int i = 0; i < 200; ++i) {
    const auto& pick = n[rng.next_below(n.size())];
    const std::size_t off = rng.next_below(hay.size() - pick.size());
    std::copy(pick.begin(), pick.end(), hay.begin() + off);
  }
  check_full_buffer(hay, n, 0, "shared first bytes");
}

TEST(MultiMatcherEquivalence, SharedEightBytePrefixes) {
  // Identical first 8 bytes: the SWAR filter passes every bucket entry and
  // only the memcmp tail separates them — the worst case for the filter.
  Needles n;
  for (const char* s :
       {"PREFIX00-tailA", "PREFIX00-tailB", "PREFIX00", "PREFIX00-tailA-longer",
        "PREFIX00-x"}) {
    n.push_back(util::to_bytes(s));
  }
  std::vector<std::byte> hay(4096, std::byte{0});
  util::Rng rng(202);
  rng.fill_bytes(hay);
  for (int i = 0; i < 60; ++i) {
    const auto& pick = n[rng.next_below(n.size())];
    const std::size_t off = rng.next_below(hay.size() - pick.size());
    std::copy(pick.begin(), pick.end(), hay.begin() + off);
  }
  check_full_buffer(hay, n, 0, "shared 8-byte prefixes");
}

TEST(MultiMatcherEquivalence, NeedleIsPrefixOfNeedle) {
  // "secret" ⊂ "secret-key" ⊂ "secret-key-material": every long-needle hit
  // must also report each shorter needle at the same offset, in needle
  // order (the tie-break the engine's contract documents).
  Needles n;
  n.push_back(util::to_bytes("secret-key-material"));
  n.push_back(util::to_bytes("secret"));
  n.push_back(util::to_bytes("secret-key"));
  std::vector<std::byte> hay(4096, std::byte{'.'});
  const auto longest = n[0];
  for (const std::size_t off : {10u, 500u, 1000u, 4000u}) {
    std::copy(longest.begin(), longest.end(), hay.begin() + off);
  }
  const auto shortest = n[1];
  std::copy(shortest.begin(), shortest.end(), hay.begin() + 2000);
  check_full_buffer(hay, n, 0, "needle prefix of needle");
}

TEST(MultiMatcherEquivalence, OverlappingSelfSimilarNeedles) {
  // Runs of a repeated byte: overlapping self-matches at every offset, the
  // densest hit pattern possible.
  Needles n;
  n.push_back(std::vector<std::byte>(8, std::byte{0xAA}));
  n.push_back(std::vector<std::byte>(12, std::byte{0xAA}));
  n.push_back(std::vector<std::byte>(4, std::byte{0xAA}));
  n.push_back(util::to_bytes("ababab"));
  n.push_back(util::to_bytes("abab"));
  std::vector<std::byte> hay(2048, std::byte{0xAA});
  for (std::size_t i = 1024; i + 2 <= 1536; i += 2) {
    hay[i] = std::byte{'a'};
    hay[i + 1] = std::byte{'b'};
  }
  check_full_buffer(hay, n, 0, "self-similar needles");
}

TEST(MultiMatcherEquivalence, DuplicateAndDegenerateNeedles) {
  // Duplicates must both report (distinct pattern indices); empty needles
  // are skipped by both paths.
  Needles n;
  n.push_back(util::to_bytes("dup"));
  n.push_back(util::to_bytes("dup"));
  n.push_back({});  // empty: skipped
  n.push_back(util::to_bytes("d"));
  std::vector<std::byte> hay = util::to_bytes("xxdupxxdxxdupdup");
  check_full_buffer(hay, n, 0, "duplicates");
}

TEST(MultiMatcherEquivalence, PrefixModeAcrossSwarBoundary) {
  // min_prefix below, at, and above the 8-byte SWAR width; needles shorter
  // than the minimum are skipped by both paths.
  Needles n;
  n.push_back(util::to_bytes("LONG-NEEDLE-ONE-abcdef"));
  n.push_back(util::to_bytes("LONG-NEEDLE-TWO-abcdef"));
  n.push_back(util::to_bytes("LONG-NEEDLE"));   // shares the long prefix
  n.push_back(util::to_bytes("short"));         // skipped when min_prefix > 5
  std::vector<std::byte> hay(4096, std::byte{'-'});
  util::Rng rng(303);
  for (int i = 0; i < 40; ++i) {
    const auto& pick = n[rng.next_below(n.size())];
    if (pick.empty()) continue;
    const std::size_t off = rng.next_below(hay.size() - pick.size());
    std::copy(pick.begin(), pick.end(), hay.begin() + off);
    // Mutate one tail byte half the time so partial (non-full) extensions
    // exist alongside full matches.
    if (rng.next_below(2) == 0 && pick.size() > 12) {
      hay[off + pick.size() - 3] = std::byte{'?'};
    }
  }
  for (const std::size_t min_prefix : {4u, 8u, 11u, 16u}) {
    check_full_buffer(hay, n, min_prefix,
                      "prefix mode, min=" + std::to_string(min_prefix));
  }
}

TEST(MultiMatcherEquivalence, RandomizedWindowsFuzz) {
  // Randomized buffers, adversarial needle families, and random
  // (begin, end, window_end) triples — the seam-window semantics both
  // matchers must share.
  util::Rng rng(8675309);
  for (int round = 0; round < 40; ++round) {
    const std::size_t size = 512 + rng.next_below(8192);
    std::vector<std::byte> hay(size);
    rng.fill_bytes(hay);
    // Low-entropy overlay so accidental partial matches are common.
    for (std::size_t i = 0; i < size; ++i) {
      if (rng.next_below(4) == 0) hay[i] = std::byte(rng.next_below(4));
    }
    Needles n;
    const std::size_t count = 1 + rng.next_below(24);
    for (std::size_t k = 0; k < count; ++k) {
      std::vector<std::byte> needle(1 + rng.next_below(40));
      switch (rng.next_below(4)) {
        case 0:  // random bytes
          rng.fill_bytes(needle);
          break;
        case 1:  // low-entropy (collides with the overlay)
          for (auto& b : needle) b = std::byte(rng.next_below(4));
          break;
        case 2:  // substring of the haystack: guaranteed hits
          if (needle.size() < size) {
            const std::size_t at = rng.next_below(size - needle.size());
            std::copy(hay.begin() + at, hay.begin() + at + needle.size(),
                      needle.begin());
          }
          break;
        default:  // prefix of an earlier needle
          if (!n.empty()) {
            const auto& prev = n[rng.next_below(n.size())];
            needle.assign(prev.begin(),
                          prev.begin() + 1 + rng.next_below(prev.size()));
          } else {
            rng.fill_bytes(needle);
          }
          break;
      }
      n.push_back(std::move(needle));
    }
    // Plant a few guaranteed full hits.
    for (int p = 0; p < 6; ++p) {
      const auto& pick = n[rng.next_below(n.size())];
      if (pick.empty() || pick.size() >= size) continue;
      const std::size_t off = rng.next_below(size - pick.size());
      std::copy(pick.begin(), pick.end(), hay.begin() + off);
    }
    const std::size_t begin = rng.next_below(size);
    const std::size_t end = begin + 1 + rng.next_below(size - begin);
    const std::size_t window_end = end + rng.next_below(size - end + 1);
    const std::size_t min_prefix = rng.next_below(3) == 0 ? 4 + rng.next_below(12) : 0;
    check_window(hay, begin, end, window_end, n, min_prefix,
                 "fuzz round " + std::to_string(round));
    check_full_buffer(hay, n, min_prefix,
                      "fuzz round " + std::to_string(round) + " (full)");
  }
}

TEST(MultiMatcherEquivalence, ShardedScanLegacyVsMultiAllShardCounts) {
  // End-to-end through sharded_scan: forced-legacy and forced-multi runs
  // must agree at every shard count, and both report the matcher used.
  util::Rng rng(424242);
  std::vector<std::byte> hay(3 * 4096 + 777);
  rng.fill_bytes(hay);
  Needles n;
  for (int k = 0; k < 16; ++k) {
    std::vector<std::byte> needle(8 + rng.next_below(24));
    rng.fill_bytes(needle);
    n.push_back(std::move(needle));
  }
  for (int p = 0; p < 24; ++p) {
    const auto& pick = n[rng.next_below(n.size())];
    const std::size_t off = rng.next_below(hay.size() - pick.size());
    std::copy(pick.begin(), pick.end(), hay.begin() + off);
  }
  const auto nv = views(n);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    ScanStats legacy_stats;
    ScanStats multi_stats;
    const auto legacy = sharded_scan(hay, nv, shards, 0, &legacy_stats,
                                     MatcherKind::kLegacy);
    const auto multi = sharded_scan(hay, nv, shards, 0, &multi_stats,
                                    MatcherKind::kMulti);
    expect_same_raw(legacy, multi, "sharded, " + std::to_string(shards));
    EXPECT_EQ(legacy_stats.matcher, MatcherKind::kLegacy);
    EXPECT_EQ(multi_stats.matcher, MatcherKind::kMulti);
    // 16 needles ≥ threshold: kAuto must resolve to the multi matcher and
    // still match the oracle.
    ScanStats auto_stats;
    const auto aut = sharded_scan(hay, nv, shards, 0, &auto_stats,
                                  MatcherKind::kAuto);
    expect_same_raw(legacy, aut, "sharded auto, " + std::to_string(shards));
    EXPECT_EQ(auto_stats.matcher, MatcherKind::kMulti);
  }
}

TEST(MultiMatcherEquivalence, NeedleAtVeryEndAndPartialSwarLoad) {
  // Hits in the last 8 bytes of the buffer exercise the partial SWAR load.
  Needles n;
  n.push_back(util::to_bytes("endmark"));
  n.push_back(util::to_bytes("end"));
  n.push_back(util::to_bytes("k"));
  std::vector<std::byte> hay(256, std::byte{'z'});
  const auto m0 = n[0];
  std::copy(m0.begin(), m0.end(), hay.end() - static_cast<std::ptrdiff_t>(m0.size()));
  hay[255] = std::byte{'k'};
  check_full_buffer(hay, n, 0, "buffer end");
  // Tiny buffers, smaller than 8 bytes.
  const auto tiny = util::to_bytes("endk");
  check_full_buffer(tiny, n, 0, "tiny buffer");
}

}  // namespace
}  // namespace keyguard::scan
