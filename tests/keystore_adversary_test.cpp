// Adversarial battery for the encrypted-at-rest SNI frontend.
//
// The attacker gets everything the paper's threat model grants: full
// physical-memory scans (KeyScanner), the taint oracle (ShadowTaintMap +
// TaintAuditor), swap pressure against the frontend's address space, and
// fork churn (the classic COW hazard that smeared Apache keys across
// worker processes). The claim under test: at EVERY sampled instant the
// machine holds plaintext key material in at most W mlocked frames —
// everything else is ciphertext — and the live ExposureMonitor agrees
// with a ground-truth sweep copy for copy.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/taint_auditor.hpp"
#include "analysis/taint_map.hpp"
#include "obs/clock.hpp"
#include "obs/exposure_monitor.hpp"
#include "scan/key_scanner.hpp"
#include "servers/sni_frontend.hpp"
#include "sim/taint.hpp"
#include "util/rng.hpp"

namespace keyguard {
namespace {

constexpr std::size_t kPool = 6;
constexpr std::size_t kWorking = 2;
constexpr std::size_t kVhosts = 24;
constexpr std::size_t kDistinct = 12;

class EncryptedAdversaryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::KernelConfig kc;
    kc.mem_bytes = 12ull << 20;
    kc.zero_on_free = true;
    kc.o_nocache_supported = true;
    kc.swap_pages = 64;
    kernel_.emplace(kc);
    map_.emplace(*kernel_);
    util::Rng keygen(9001);
    for (std::size_t i = 0; i < kDistinct; ++i) {
      distinct_.push_back(crypto::generate_rsa_key(keygen, 512));
    }
    monitor_.emplace(kernel_->memory(), scan::KeyPatterns::from_keys(distinct_));
    fanout_.add(&*map_);
    fanout_.add(&*monitor_);
    kernel_->attach_taint(&fanout_);
    obs::manual_clock_install(0);

    servers::SniConfig cfg;
    cfg.backend = keystore::PoolBackend::kEncrypted;
    cfg.encrypted.pool_pages = kPool;
    cfg.encrypted.working_set = kWorking;
    cfg.hot_fraction = 0.0;  // uniform: maximum pool churn
    frontend_.emplace(*kernel_, cfg, util::Rng(77));
    std::vector<crypto::RsaPrivateKey> vhost_keys;
    for (std::size_t i = 0; i < kVhosts; ++i) {
      vhost_keys.push_back(distinct_[i % kDistinct]);
    }
    ASSERT_TRUE(frontend_->start(vhost_keys));
  }

  void TearDown() override {
    if (frontend_->running()) frontend_->stop();
    kernel_->attach_taint(nullptr);
    obs::host_clock_install();
  }

  /// The attacker's full instrument sweep; every invariant at one instant.
  void sample(const char* where) {
    SCOPED_TRACE(where);
    analysis::TaintAuditor auditor(*map_);
    const auto report = auditor.audit(*kernel_);
    // The coprocessor holds the page key: NO master-key page exists.
    EXPECT_EQ(report.master_key_frames, 0u);
    EXPECT_TRUE(report.bounded_plaintext_working_set(kWorking))
        << "plaintext frames " << report.secret_tainted_frames;

    scan::KeyScanner scanner(monitor_->patterns());
    const auto matches = scanner.scan_kernel(*kernel_);
    std::set<std::string> visible;
    for (const auto& m : matches) {
      // Every scanner hit must be an mlocked anonymous frame (the working
      // set) — never heap residue, page cache, or swap.
      EXPECT_EQ(m.state, sim::FrameState::kUserAnon) << m.part;
      visible.insert(m.part.substr(m.part.find('#') + 1));
    }
    EXPECT_LE(visible.size(), kWorking);
    EXPECT_TRUE(auditor.cross_check(scanner.patterns(), matches).all_hits_covered());

    // Live accounting vs ground truth, copy for copy.
    const auto truth = scanner.scan_capture(kernel_->memory().all());
    const auto live = monitor_->copies();
    ASSERT_EQ(live.size(), truth.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      EXPECT_EQ(live[i].offset, truth[i].offset);
      EXPECT_EQ(monitor_->patterns().patterns[live[i].pattern].name,
                truth[i].part);
    }
  }

  void drive(std::size_t requests) {
    for (std::size_t i = 0; i < requests; ++i) {
      ASSERT_TRUE(frontend_->handle_request());
      obs::manual_clock_advance(1'000'000);
    }
  }

  std::optional<sim::Kernel> kernel_;
  std::optional<analysis::ShadowTaintMap> map_;
  std::optional<obs::ExposureMonitor> monitor_;
  sim::TaintFanout fanout_;
  std::vector<crypto::RsaPrivateKey> distinct_;
  std::optional<servers::SniFrontend> frontend_;
};

TEST_F(EncryptedAdversaryTest, SteadyChurnNeverExceedsWorkingSet) {
  sample("after start");
  for (int round = 0; round < 6; ++round) {
    drive(16);
    sample("steady churn");
  }
  const auto& st = frontend_->encrypted_keystore().stats();
  EXPECT_GT(st.reencrypts, 0u);   // the working set really squeezed
  EXPECT_GT(st.evictions, 0u);    // 24 vhosts through 6 slots
  EXPECT_GT(st.blob_unseals, kPool);
  EXPECT_EQ(st.refusals, 0u);
}

TEST_F(EncryptedAdversaryTest, SwapPressureNeverPagesOutPlaintext) {
  sim::Process* proc = kernel_->find_process(frontend_->pid());
  ASSERT_NE(proc, nullptr);
  for (int round = 0; round < 5; ++round) {
    drive(12);
    // Page the frontend out as hard as the kernel allows. mlocked working
    // pages must be skipped; non-mlocked ciphertext pages MAY go to swap —
    // and that is fine, sealed bytes are sealed anywhere.
    kernel_->swap_out_pages(*proc, 8);
    kernel_->swap_out_global(4);
    sample("under swap pressure");
    drive(4);  // swapped ciphertext pages fault back in and still decrypt
    sample("after swap-in");
  }
}

TEST_F(EncryptedAdversaryTest, QuiescedForkSharesOnlyCiphertext) {
  sim::Process* proc = kernel_->find_process(frontend_->pid());
  ASSERT_NE(proc, nullptr);
  for (int round = 0; round < 4; ++round) {
    drive(12);
    // Scrub-to-ciphertext, THEN fork: the child inherits a pool with zero
    // plaintext frames, so a forked worker can never smear key bytes.
    frontend_->encrypted_keystore().reencrypt_all();
    sim::Process& child =
        kernel_->fork(*proc, "worker" + std::to_string(round));
    sample("child alive, pool quiesced");
    {
      analysis::TaintAuditor auditor(*map_);
      EXPECT_EQ(auditor.audit(*kernel_).secret.total(), 0u);
    }
    drive(8);  // parent resumes; COW breaks pages, child keeps ciphertext
    sample("child alive, parent resumed");
    kernel_->exit_process(child);
    sample("child exited");
  }
}

TEST_F(EncryptedAdversaryTest, LiveForkResidueClearedOnChildExit) {
  sim::Process* proc = kernel_->find_process(frontend_->pid());
  ASSERT_NE(proc, nullptr);
  for (int round = 0; round < 4; ++round) {
    drive(10);
    // Fork with the working set HOT: the child shares the plaintext
    // frames. The parent then churns, re-encrypting and rewriting slots —
    // COW hands the child private copies of whatever was live at fork.
    sim::Process& child = kernel_->fork(*proc, "hotchild" + std::to_string(round));
    drive(10);
    // zero_on_free is the backstop the paper's kernel patch provides: the
    // child's exit must scrub every inherited frame before reuse.
    kernel_->exit_process(child);
    sample("hot-forked child exited");
  }
}

TEST_F(EncryptedAdversaryTest, ShutdownLeavesNothing) {
  drive(32);
  frontend_->stop();
  analysis::TaintAuditor auditor(*map_);
  EXPECT_EQ(auditor.audit(*kernel_).secret.total(), 0u);
  EXPECT_TRUE(auditor.audit(*kernel_).bounded_plaintext_working_set(0));
  scan::KeyScanner scanner(monitor_->patterns());
  EXPECT_TRUE(scanner.scan_kernel(*kernel_).empty());
  EXPECT_TRUE(monitor_->copies().empty());
}

}  // namespace
}  // namespace keyguard
