#include "sim/heap.hpp"

#include <gtest/gtest.h>

#include "sim/physmem.hpp"
#include "sim/process.hpp"

namespace keyguard::sim {
namespace {

class HeapTest : public ::testing::Test {
 protected:
  HeapAllocator heap_{kHeapBase, 1 << 20};
  std::size_t grown_ = 0;
};

TEST_F(HeapTest, FirstAllocationAtBase) {
  const auto a = heap_.alloc(100, grown_);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, kHeapBase);
  EXPECT_EQ(grown_, kPageSize);  // first page mapped
  EXPECT_EQ(heap_.chunk_size(*a), 112u);  // rounded to 16
}

TEST_F(HeapTest, SequentialAllocationsAbut) {
  const auto a = heap_.alloc(16, grown_);
  const auto b = heap_.alloc(16, grown_);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*b, *a + 16);
}

TEST_F(HeapTest, GrowthReportedInPages) {
  std::size_t total_grown = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(heap_.alloc(1000, grown_));
    total_grown += grown_;
  }
  // 10 * 1008 bytes = 10080 -> 3 pages.
  EXPECT_EQ(total_grown, 3 * kPageSize);
}

TEST_F(HeapTest, FreeThenReuseFirstFit) {
  const auto a = heap_.alloc(64, grown_);
  const auto b = heap_.alloc(64, grown_);
  ASSERT_TRUE(a && b);
  heap_.free(*a);
  const auto c = heap_.alloc(48, grown_);
  ASSERT_TRUE(c);
  EXPECT_EQ(*c, *a);  // reused the hole
}

TEST_F(HeapTest, SplitLeavesRemainderFree) {
  const auto a = heap_.alloc(160, grown_);
  ASSERT_TRUE(a);
  heap_.free(*a);
  const auto b = heap_.alloc(32, grown_);
  ASSERT_TRUE(b);
  EXPECT_EQ(*b, *a);
  const auto c = heap_.alloc(96, grown_);
  ASSERT_TRUE(c);
  EXPECT_EQ(*c, *a + 32);  // carved from the same hole
}

TEST_F(HeapTest, CoalescesWithNext) {
  const auto a = heap_.alloc(32, grown_);
  const auto b = heap_.alloc(32, grown_);
  const auto guard = heap_.alloc(32, grown_);
  ASSERT_TRUE(a && b && guard);
  heap_.free(*b);
  heap_.free(*a);  // should merge with b's hole
  const auto big = heap_.alloc(64, grown_);
  ASSERT_TRUE(big);
  EXPECT_EQ(*big, *a);
}

TEST_F(HeapTest, CoalescesWithPrev) {
  const auto a = heap_.alloc(32, grown_);
  const auto b = heap_.alloc(32, grown_);
  const auto guard = heap_.alloc(32, grown_);
  ASSERT_TRUE(a && b && guard);
  heap_.free(*a);
  heap_.free(*b);  // merges into a's hole
  const auto big = heap_.alloc(64, grown_);
  ASSERT_TRUE(big);
  EXPECT_EQ(*big, *a);
}

TEST_F(HeapTest, CoalescesBothSides) {
  const auto a = heap_.alloc(32, grown_);
  const auto b = heap_.alloc(32, grown_);
  const auto c = heap_.alloc(32, grown_);
  const auto guard = heap_.alloc(32, grown_);
  ASSERT_TRUE(a && b && c && guard);
  heap_.free(*a);
  heap_.free(*c);
  heap_.free(*b);  // bridges both holes
  const auto big = heap_.alloc(96, grown_);
  ASSERT_TRUE(big);
  EXPECT_EQ(*big, *a);
}

TEST_F(HeapTest, ExhaustionReturnsNullopt) {
  HeapAllocator tiny(kHeapBase, 64);
  std::size_t g = 0;
  EXPECT_TRUE(tiny.alloc(48, g).has_value());
  EXPECT_FALSE(tiny.alloc(48, g).has_value());
}

TEST_F(HeapTest, LiveAccounting) {
  EXPECT_EQ(heap_.live_chunks(), 0u);
  const auto a = heap_.alloc(100, grown_);
  EXPECT_EQ(heap_.live_chunks(), 1u);
  EXPECT_EQ(heap_.live_bytes(), 112u);
  heap_.free(*a);
  EXPECT_EQ(heap_.live_chunks(), 0u);
  EXPECT_EQ(heap_.live_bytes(), 0u);
}

TEST_F(HeapTest, IsLiveChunk) {
  const auto a = heap_.alloc(10, grown_);
  EXPECT_TRUE(heap_.is_live_chunk(*a));
  heap_.free(*a);
  EXPECT_FALSE(heap_.is_live_chunk(*a));
  EXPECT_FALSE(heap_.is_live_chunk(kHeapBase + 999999));
}

TEST_F(HeapTest, ZeroSizeAllocationGetsMinimumChunk) {
  const auto a = heap_.alloc(0, grown_);
  ASSERT_TRUE(a);
  EXPECT_EQ(heap_.chunk_size(*a), 16u);
}

TEST_F(HeapTest, HighWaterMonotonic) {
  const auto before = heap_.high_water();
  heap_.alloc(100, grown_);
  const auto after = heap_.high_water();
  EXPECT_GT(after, before);
  // Freeing does not shrink the watermark (heap pages stay mapped).
  heap_.free(kHeapBase);
  EXPECT_EQ(heap_.high_water(), after);
}

}  // namespace
}  // namespace keyguard::sim
