// AlertEngine + FlightRecorder: rule parsing rejects malformed input,
// budget crossings are exact under the manual clock, the incremental
// watcher aggregates equal a fresh TaintAuditor audit field-for-field at
// arbitrary instants under churn, grace windows swallow transients,
// cooldowns dedup, anomaly rules fire on their single events, the ring
// accounts drops exactly, and the bundle never contains key bytes.
#include "obs/alert.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "analysis/taint_auditor.hpp"
#include "analysis/taint_map.hpp"
#include "obs/clock.hpp"
#include "obs/event_bus.hpp"
#include "obs/exposure_monitor.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/kernel.hpp"
#include "util/json_reader.hpp"
#include "util/rng.hpp"

namespace keyguard::obs {
namespace {

class CollectSink final : public AlertSink {
 public:
  void on_alert(const Alert& alert) override { alerts.push_back(alert); }
  std::vector<Alert> alerts;
};

AlertRule rule(RuleKind kind, std::string name) {
  AlertRule r;
  r.name = std::move(name);
  r.kind = kind;
  r.severity = Severity::kCritical;
  return r;
}

/// Kernel + shadow + engine wired the way workloads do it, with the
/// engine LAST in the fanout so the shadow is updated when hooks arrive.
struct Rig {
  explicit Rig(sim::KernelConfig cfg, ExposureMonitor* monitor = nullptr)
      : kernel(cfg), shadow(kernel), engine(kernel, shadow, monitor) {
    fanout.add(&shadow);
    if (monitor != nullptr) fanout.add(monitor);
    fanout.add(&engine);
    engine.add_sink(&sink);
    kernel.attach_taint(&fanout);
  }
  ~Rig() { kernel.attach_taint(nullptr); }

  sim::Kernel kernel;
  analysis::ShadowTaintMap shadow;
  AlertEngine engine;
  sim::TaintFanout fanout;
  CollectSink sink;
};

/// Empty string when the engine's aggregates equal a fresh audit;
/// otherwise "field: engine=X audit=Y" for every diverging field.
std::string aggregate_divergence(const AlertEngine& engine,
                                 const analysis::ShadowTaintMap& shadow,
                                 const sim::Kernel& kernel) {
  const auto audit = analysis::TaintAuditor(shadow).audit(kernel);
  const auto& agg = engine.aggregates();
  std::string out;
  const auto check = [&](const char* name, std::uint64_t e, std::uint64_t a) {
    if (e != a) {
      out += std::string(name) + ": engine=" + std::to_string(e) +
             " audit=" + std::to_string(a) + "; ";
    }
  };
  check("secret_frames", agg.secret_frames, audit.secret_tainted_frames);
  check("secret_mlocked_frames", agg.secret_mlocked_frames,
        audit.secret_mlocked_frames);
  check("master_key_frames", agg.master_key_frames, audit.master_key_frames);
  check("secret_unallocated_bytes", agg.secret_unallocated_bytes,
        audit.secret.unallocated);
  check("secret_page_cache_bytes", agg.secret_page_cache_bytes,
        audit.secret.page_cache);
  check("secret_kernel_bytes", agg.secret_kernel_bytes, audit.secret.kernel);
  check("secret_swap_bytes", agg.secret_swap_bytes, audit.secret.swap);
  return out;
}

class AlertTest : public ::testing::Test {
 protected:
  void SetUp() override { manual_clock_install(0); }
  void TearDown() override {
    EventBus::global().set_enabled(false);
    host_clock_install();
  }
};

// ---------------------------------------------------------------- parsing --

TEST(AlertRules, NamesRoundTrip) {
  for (std::size_t i = 0; i < kRuleKindCount; ++i) {
    const auto k = static_cast<RuleKind>(i);
    ASSERT_EQ(rule_kind_from_name(rule_kind_name(k)), k);
  }
  EXPECT_EQ(severity_from_name("critical"), Severity::kCritical);
  EXPECT_FALSE(severity_from_name("fatal").has_value());
  EXPECT_FALSE(rule_kind_from_name("no_such_rule").has_value());
}

TEST(AlertRules, ParsesFullRuleSet) {
  std::string err;
  const auto rules = rules_from_json(R"({"rules":[
    {"name":"budget","kind":"exposure_budget","severity":"critical",
     "budget_byte_seconds":1.5,"key":2},
    {"name":"wset","kind":"working_set_bound","bound":4,
     "grace_ns":50000000,"cooldown_ns":1000000000},
    {"name":"swap","kind":"secret_to_swap"},
    {"name":"burst","kind":"refusal_burst","bound":8,"window_ns":1000000000}
  ]})", &err);
  ASSERT_TRUE(rules.has_value()) << err;
  ASSERT_EQ(rules->size(), 4u);
  EXPECT_EQ((*rules)[0].kind, RuleKind::kExposureBudget);
  EXPECT_EQ((*rules)[0].severity, Severity::kCritical);
  EXPECT_DOUBLE_EQ((*rules)[0].budget_byte_seconds, 1.5);
  EXPECT_EQ((*rules)[0].key, 2);
  EXPECT_EQ((*rules)[1].bound, 4u);
  EXPECT_EQ((*rules)[1].grace_ns, 50'000'000u);
  EXPECT_EQ((*rules)[3].window_ns, 1'000'000'000u);
}

TEST(AlertRules, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(rules_from_json("{not json", &err));
  EXPECT_FALSE(rules_from_json("[]", &err));  // root must be an object
  EXPECT_FALSE(rules_from_json(R"({"norules":[]})", &err));
  // Missing name.
  EXPECT_FALSE(rules_from_json(R"({"rules":[{"kind":"secret_to_swap"}]})",
                               &err));
  EXPECT_NE(err.find("rules[0]"), std::string::npos) << err;
  // Unknown kind.
  EXPECT_FALSE(rules_from_json(
      R"({"rules":[{"name":"x","kind":"bogus_kind"}]})", &err));
  EXPECT_NE(err.find("bogus_kind"), std::string::npos) << err;
  // Unknown severity.
  EXPECT_FALSE(rules_from_json(
      R"({"rules":[{"name":"x","kind":"secret_to_swap","severity":"loud"}]})",
      &err));
  // Missing required parameters.
  EXPECT_FALSE(rules_from_json(
      R"({"rules":[{"name":"x","kind":"exposure_budget"}]})", &err));
  EXPECT_FALSE(rules_from_json(
      R"({"rules":[{"name":"x","kind":"refusal_burst","bound":3}]})", &err));
}

TEST(AlertRules, DefaultRulesCoverTheAnomalies) {
  const auto rules = default_rules();
  ASSERT_EQ(rules.size(), 4u);
  const auto has = [&](RuleKind k) {
    return std::any_of(rules.begin(), rules.end(),
                       [&](const AlertRule& r) { return r.kind == k; });
  };
  EXPECT_TRUE(has(RuleKind::kSecretToSwap));
  EXPECT_TRUE(has(RuleKind::kResidueOnFree));
  EXPECT_TRUE(has(RuleKind::kSecretFrameMerged));
  EXPECT_TRUE(has(RuleKind::kRefusalBurst));
}

TEST(AlertRules, AlertJsonIsOneParseableObject) {
  Alert a;
  a.rule = "budget";
  a.kind = RuleKind::kExposureBudget;
  a.ts_ns = 42;
  a.breach_ts_ns = 41;
  a.value = 1.5;
  const auto text = alert_to_json(a);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 0);
  std::string err;
  const auto doc = util::json_parse(text, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const auto* breach = doc->get("breach_ts_ns");
  ASSERT_NE(breach, nullptr);
  EXPECT_EQ(breach->as_number(), 41.0);
}

// ----------------------------------------------------------- exact budgets --

TEST_F(AlertTest, BudgetCrossingInterpolatesExactly) {
  sim::Kernel kernel({.mem_bytes = 4ull << 20});
  util::Rng rng(7);
  scan::KeyPatterns patterns;
  scan::KeyPatterns::Pattern pat;
  pat.name = "d";
  pat.bytes.resize(64);
  rng.fill_bytes(pat.bytes);
  pat.bytes[0] = std::byte{0xA5};
  patterns.patterns.push_back(pat);

  analysis::ShadowTaintMap shadow(kernel);
  ExposureMonitor monitor(kernel.memory(), patterns);
  AlertEngine engine(kernel, shadow, &monitor);
  CollectSink sink;
  engine.add_sink(&sink);
  sim::TaintFanout fanout;
  fanout.add(&shadow);
  fanout.add(&monitor);
  fanout.add(&engine);
  kernel.attach_taint(&fanout);

  AlertRule r = rule(RuleKind::kExposureBudget, "budget");
  r.budget_byte_seconds = 64.0 * 1.25;  // 64 live bytes for 1.25 s
  engine.add_rule(r);

  auto& p = kernel.spawn("victim");
  const auto addr = kernel.heap_alloc(p, 4096, "key");
  manual_clock_advance(1'000'000'000);  // taint lands at t=1s
  kernel.mem_write(p, addr, pat.bytes, sim::TaintTag::kKeyD);
  ASSERT_TRUE(sink.alerts.empty());

  // The engine only saw events up to t=1s; the crossing at t=2.25s is in
  // the future. Advance PAST it and poll: detection happens now, but the
  // breach timestamp must interpolate back to the exact crossing.
  manual_clock_advance(3'000'000'000);
  engine.poll();
  ASSERT_EQ(sink.alerts.size(), 1u);
  EXPECT_EQ(sink.alerts[0].breach_ts_ns, 2'250'000'000u);
  EXPECT_EQ(sink.alerts[0].ts_ns, 4'000'000'000u);
  EXPECT_EQ(sink.alerts[0].key, 0);

  // The integral is monotone: it never un-crosses, so never re-fires.
  manual_clock_advance(1'000'000'000);
  engine.poll();
  EXPECT_EQ(sink.alerts.size(), 1u);
  kernel.attach_taint(nullptr);
}

// ------------------------------------------------- aggregates == the audit --

TEST_F(AlertTest, AggregatesEqualAuditUnderChurn) {
  Rig rig({.mem_bytes = 8ull << 20, .swap_pages = 8});
  // Full wiring: byte movements arrive via the taint fanout, state and
  // mlock flips via the bus — the equivalence needs both streams, which
  // is exactly how workloads attach the engine.
  EventBus::global().subscribe(&rig.engine);
  EventBus::global().set_enabled(true);
  util::Rng rng(21);
  auto& victim = rig.kernel.spawn("victim");
  auto& other = rig.kernel.spawn("other");

  std::vector<std::byte> page(sim::kPageSize);
  // Both processes lay mappings out from the same kMmapBase, so a bare
  // address does not name a page — every op must go to the mapping's
  // owner or it would fault on an unmapped (or wrong) page.
  struct Mapping {
    sim::Process* proc;
    sim::VirtAddr addr;
  };
  std::vector<Mapping> maps;
  const sim::TaintTag tags[] = {sim::TaintTag::kKeyD, sim::TaintTag::kKeyP,
                                sim::TaintTag::kMasterKey,
                                sim::TaintTag::kSealed, sim::TaintTag::kClean};
  for (int round = 0; round < 40; ++round) {
    manual_clock_advance(1'000'000);
    const auto pick = rng.next_u64() % 6;
    switch (pick) {
      case 0: {  // secret (or clean, or sealed) write into a fresh mapping
        auto& p = (round % 2) != 0 ? victim : other;
        const bool locked = (rng.next_u64() % 2) != 0;
        const auto addr = rig.kernel.mmap_anon(p, sim::kPageSize, locked);
        if (addr == 0) break;
        rng.fill_bytes(page);
        rig.kernel.mem_write(p, addr, page, tags[rng.next_u64() % 5]);
        maps.push_back({&p, addr});
        break;
      }
      case 1: {  // partial overwrite with clean data
        if (maps.empty()) break;
        const auto& m = maps[rng.next_u64() % maps.size()];
        rig.kernel.mem_write(*m.proc, m.addr + 100,
                             std::span(page).subspan(0, 512));
        break;
      }
      case 2: {  // scrub
        if (maps.empty()) break;
        const auto& m = maps[rng.next_u64() % maps.size()];
        rig.kernel.mem_zero(*m.proc, m.addr, sim::kPageSize);
        break;
      }
      case 3: {  // unmap: frames go back to the free lists, taint intact
        if (maps.empty()) break;
        const auto i = rng.next_u64() % maps.size();
        rig.kernel.munmap(*maps[i].proc, maps[i].addr, sim::kPageSize);
        maps.erase(maps.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case 4:  // swap pressure on the victim
        rig.kernel.swap_out_pages(victim, 2);
        break;
      case 5: {  // COW fork/exit churn
        auto& child = rig.kernel.fork(victim, "child");
        rng.fill_bytes(page);
        for (const auto& m : maps) {
          if (m.proc == &victim) {  // the child inherited this mapping
            rig.kernel.mem_write(child, m.addr,
                                 std::span(page).subspan(0, 64));
            break;
          }
        }
        rig.kernel.exit_process(child);
        break;
      }
    }
    const auto div = aggregate_divergence(rig.engine, rig.shadow, rig.kernel);
    ASSERT_EQ(div, "") << "diverged at round " << round;
  }
  EventBus::global().unsubscribe(&rig.engine);
}

TEST_F(AlertTest, ResyncRebuildsAfterLateAttach) {
  // Taint the machine BEFORE the engine hears any hooks: the caches are
  // blind until resync() re-derives them from the shadow.
  sim::Kernel kernel({.mem_bytes = 4ull << 20});
  analysis::ShadowTaintMap shadow(kernel);
  sim::TaintFanout fanout;
  fanout.add(&shadow);
  kernel.attach_taint(&fanout);
  auto& p = kernel.spawn("early");
  const auto addr = kernel.mmap_anon(p, sim::kPageSize, /*mlocked=*/true);
  std::vector<std::byte> key(256, std::byte{0x5A});
  kernel.mem_write(p, addr, key, sim::TaintTag::kKeyD);

  AlertEngine engine(kernel, shadow);
  EXPECT_EQ(engine.aggregates().secret_frames, 0u);  // attached late, blind
  engine.resync();
  EXPECT_EQ(engine.aggregates().secret_frames, 1u);
  EXPECT_EQ(engine.aggregates().secret_mlocked_frames, 1u);
  EXPECT_EQ(aggregate_divergence(engine, shadow, kernel), "");
  kernel.attach_taint(nullptr);
}

// ------------------------------------------------------- invariant watchers --

TEST_F(AlertTest, GraceWindowSwallowsTransients) {
  Rig rig({.mem_bytes = 4ull << 20});
  AlertRule r = rule(RuleKind::kWorkingSetBound, "wset");
  r.bound = 0;  // ANY non-master secret frame is a violation
  r.grace_ns = 100'000'000;
  rig.engine.add_rule(r);

  auto& p = rig.kernel.spawn("crypto");
  const auto addr = rig.kernel.mmap_anon(p, sim::kPageSize, /*mlocked=*/true);
  std::vector<std::byte> tmp(128, std::byte{0x42});

  // Transient: a CRT temporary lives for 50 ms, inside the grace window.
  rig.kernel.mem_write(p, addr, tmp, sim::TaintTag::kCrt);
  manual_clock_advance(50'000'000);
  rig.kernel.mem_zero(p, addr, sim::kPageSize);  // healed
  manual_clock_advance(200'000'000);
  rig.engine.poll();
  EXPECT_TRUE(rig.sink.alerts.empty());

  // Sustained: the same violation held past the grace window fires, and
  // the breach timestamp is when the violation BEGAN, not when it fired.
  const auto t0 = now_ns();
  rig.kernel.mem_write(p, addr, tmp, sim::TaintTag::kCrt);
  manual_clock_advance(150'000'000);
  rig.engine.poll();
  ASSERT_EQ(rig.sink.alerts.size(), 1u);
  EXPECT_EQ(rig.sink.alerts[0].breach_ts_ns, t0);
  EXPECT_GE(rig.sink.alerts[0].ts_ns, t0 + r.grace_ns);
}

TEST_F(AlertTest, LockedPagesBoundArmsOnFirstSecret) {
  Rig rig({.mem_bytes = 4ull << 20});
  AlertRule r = rule(RuleKind::kLockedPagesBound, "locked");
  r.bound = 1;
  r.cooldown_ns = 60'000'000'000ull;  // sustained violation fires once
  rig.engine.add_rule(r);

  // bounded_locked_pages_only demands >= 1 secret frame, so an empty
  // machine violates it — but the rule is dormant until first taint.
  manual_clock_advance(500'000'000);
  rig.engine.poll();
  EXPECT_TRUE(rig.sink.alerts.empty());

  // An UNLOCKED secret frame arms the rule and violates it immediately.
  auto& p = rig.kernel.spawn("leaky");
  const auto addr = rig.kernel.mmap_anon(p, sim::kPageSize, /*mlocked=*/false);
  std::vector<std::byte> key(64, std::byte{0x77});
  rig.kernel.mem_write(p, addr, key, sim::TaintTag::kKeyD);
  rig.engine.poll();  // grace_ns = 0: fires at once
  ASSERT_EQ(rig.sink.alerts.size(), 1u);
  EXPECT_EQ(rig.sink.alerts[0].kind, RuleKind::kLockedPagesBound);
}

// ----------------------------------------------------------- anomaly rules --

TEST_F(AlertTest, SecretToSwapFiresOnTheSwapOut) {
  Rig rig({.mem_bytes = 4ull << 20, .swap_pages = 4});
  rig.engine.add_rule(rule(RuleKind::kSecretToSwap, "swap"));

  auto& p = rig.kernel.spawn("victim");
  const auto addr = rig.kernel.mmap_anon(p, sim::kPageSize, /*mlocked=*/false);
  std::vector<std::byte> key(64, std::byte{0x3C});
  rig.kernel.mem_write(p, addr, key, sim::TaintTag::kKeyQ);
  EXPECT_TRUE(rig.sink.alerts.empty());
  ASSERT_EQ(rig.kernel.swap_out_pages(p, 1), 1u);
  ASSERT_EQ(rig.sink.alerts.size(), 1u);
  EXPECT_EQ(rig.sink.alerts[0].kind, RuleKind::kSecretToSwap);
  EXPECT_EQ(rig.sink.alerts[0].b, 64u);  // secret bytes on the slot

  // An mlocked twin never swaps: no false alert possible from this path.
  const auto safe = rig.kernel.mmap_anon(p, sim::kPageSize, /*mlocked=*/true);
  rig.kernel.mem_write(p, safe, key, sim::TaintTag::kKeyQ);
  rig.kernel.swap_out_pages(p, 4);
  EXPECT_EQ(rig.sink.alerts.size(), 1u);
}

TEST_F(AlertTest, ResidueOnFreeNeedsTheEventBus) {
  Rig rig({.mem_bytes = 4ull << 20});
  rig.engine.add_rule(rule(RuleKind::kResidueOnFree, "residue"));
  EventBus::global().subscribe(&rig.engine);
  EventBus::global().set_enabled(true);

  auto& p = rig.kernel.spawn("sloppy");
  const auto addr = rig.kernel.mmap_anon(p, sim::kPageSize, /*mlocked=*/false);
  std::vector<std::byte> key(64, std::byte{0x99});
  rig.kernel.mem_write(p, addr, key, sim::TaintTag::kKeyP);
  rig.kernel.munmap(p, addr, sim::kPageSize);  // freed uncleared
  ASSERT_EQ(rig.sink.alerts.size(), 1u);
  EXPECT_EQ(rig.sink.alerts[0].kind, RuleKind::kResidueOnFree);
  EXPECT_EQ(rig.sink.alerts[0].b, 64u);
  EventBus::global().unsubscribe(&rig.engine);
}

TEST_F(AlertTest, ScrubbedFreeStaysQuiet) {
  Rig rig({.mem_bytes = 4ull << 20, .zero_on_free = true});
  rig.engine.add_rule(rule(RuleKind::kResidueOnFree, "residue"));
  EventBus::global().subscribe(&rig.engine);
  EventBus::global().set_enabled(true);

  auto& p = rig.kernel.spawn("careful");
  const auto addr = rig.kernel.mmap_anon(p, sim::kPageSize, /*mlocked=*/false);
  std::vector<std::byte> key(64, std::byte{0x99});
  rig.kernel.mem_write(p, addr, key, sim::TaintTag::kKeyP);
  rig.kernel.munmap(p, addr, sim::kPageSize);  // zero_on_free scrubs first
  EXPECT_TRUE(rig.sink.alerts.empty());
  EventBus::global().unsubscribe(&rig.engine);
}

TEST_F(AlertTest, RefusalBurstCountsInsideTheWindow) {
  Rig rig({.mem_bytes = 4ull << 20});
  AlertRule r = rule(RuleKind::kRefusalBurst, "burst");
  r.bound = 3;
  r.window_ns = 1'000'000'000;
  r.cooldown_ns = 10'000'000'000;
  rig.engine.add_rule(r);
  EventBus::global().subscribe(&rig.engine);
  EventBus::global().set_enabled(true);

  // Two refusals 0.9 s apart, then nothing: below the bound.
  EventBus::global().publish(ObsEventKind::kKeystoreRefusal, 1);
  manual_clock_advance(900'000'000);
  EventBus::global().publish(ObsEventKind::kDomainRefusal, 0);
  manual_clock_advance(2'000'000'000);
  rig.engine.poll();
  EXPECT_TRUE(rig.sink.alerts.empty());

  // Three refusals inside one second: burst.
  for (int i = 0; i < 3; ++i) {
    manual_clock_advance(100'000'000);
    EventBus::global().publish(ObsEventKind::kKeystoreRefusal, 2);
  }
  ASSERT_EQ(rig.sink.alerts.size(), 1u);
  EXPECT_EQ(rig.sink.alerts[0].a, 3u);
  EventBus::global().unsubscribe(&rig.engine);
}

TEST_F(AlertTest, CooldownDedupsRepeatedFires) {
  Rig rig({.mem_bytes = 4ull << 20});
  AlertRule r = rule(RuleKind::kResidueOnFree, "residue");
  r.cooldown_ns = 1'000'000'000;
  rig.engine.add_rule(r);
  EventBus::global().subscribe(&rig.engine);
  EventBus::global().set_enabled(true);

  auto& p = rig.kernel.spawn("sloppy");
  std::vector<std::byte> key(64, std::byte{0xEE});
  const auto leak = [&] {
    const auto addr =
        rig.kernel.mmap_anon(p, sim::kPageSize, /*mlocked=*/false);
    rig.kernel.mem_write(p, addr, key, sim::TaintTag::kKeyP);
    rig.kernel.munmap(p, addr, sim::kPageSize);
  };
  leak();
  manual_clock_advance(10'000'000);
  leak();  // inside the cooldown: suppressed
  EXPECT_EQ(rig.sink.alerts.size(), 1u);
  manual_clock_advance(1'500'000'000);
  leak();  // cooled down: fires again
  EXPECT_EQ(rig.sink.alerts.size(), 2u);
  EventBus::global().unsubscribe(&rig.engine);
}

TEST_F(AlertTest, MetricsSinkCountsBySeverityAndRule) {
  MetricsRegistry reg;
  MetricsAlertSink sink(reg);
  Alert a;
  a.rule = "residue";
  a.severity = Severity::kWarning;
  sink.on_alert(a);
  sink.on_alert(a);
  a.rule = "swap";
  a.severity = Severity::kCritical;
  sink.on_alert(a);
  EXPECT_EQ(reg.counter("obs.alerts.total").value(), 3);
  EXPECT_EQ(reg.counter("obs.alerts.warning").value(), 2);
  EXPECT_EQ(reg.counter("obs.alerts.critical").value(), 1);
  EXPECT_EQ(reg.counter("obs.alerts.rule.residue").value(), 2);
}

// --------------------------------------------------------- flight recorder --

TEST_F(AlertTest, RingAccountsDropsExactly) {
  FlightRecorder rec({.capacity = 8});
  EventBus::global().subscribe(&rec);
  EventBus::global().set_enabled(true);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EventBus::global().publish(ObsEventKind::kFrameAllocated, i);
  }
  EXPECT_EQ(rec.events_seen(), 20u);
  EXPECT_EQ(rec.events_overwritten(), 12u);  // exact, not "some"
  const auto ring = rec.ring();
  ASSERT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.front().a, 12u);  // oldest survivor
  EXPECT_EQ(ring.back().a, 19u);   // newest, in order
  EventBus::global().unsubscribe(&rec);
}

TEST_F(AlertTest, FreezesOnlyAtTriggerSeverity) {
  FlightRecorder rec({.capacity = 8, .trigger = Severity::kCritical});
  EventBus::global().subscribe(&rec);
  EventBus::global().set_enabled(true);

  Alert warn;
  warn.rule = "residue";
  warn.severity = Severity::kWarning;
  warn.ts_ns = 5;
  rec.on_alert(warn);
  EXPECT_FALSE(rec.frozen());  // below the trigger: keep recording
  EventBus::global().publish(ObsEventKind::kFrameAllocated, 1);

  Alert crit;
  crit.rule = "swap";
  crit.severity = Severity::kCritical;
  crit.ts_ns = 9;
  rec.on_alert(crit);
  ASSERT_TRUE(rec.frozen());
  ASSERT_TRUE(rec.trigger_alert().has_value());
  EXPECT_EQ(rec.trigger_alert()->rule, "swap");

  // Frozen means frozen: later events do not disturb the breach window.
  const auto before = rec.ring().size();
  EventBus::global().publish(ObsEventKind::kFrameAllocated, 2);
  EXPECT_EQ(rec.ring().size(), before);
  EXPECT_EQ(rec.alerts().size(), 2u);  // both alerts kept, oldest first

  rec.reset();
  EXPECT_FALSE(rec.frozen());
  EXPECT_EQ(rec.events_seen(), 0u);
  EventBus::global().unsubscribe(&rec);
}

TEST_F(AlertTest, BundleIsParseableAndRedacted) {
  sim::Kernel kernel({.mem_bytes = 4ull << 20});
  analysis::ShadowTaintMap shadow(kernel);
  sim::TaintFanout fanout;
  fanout.add(&shadow);
  kernel.attach_taint(&fanout);

  // A recognizable secret: if any byte sequence from it (raw or hex)
  // shows up in the bundle, redaction-by-construction is broken.
  std::vector<std::byte> key(48);
  util::Rng rng(5);
  rng.fill_bytes(key);
  auto& p = kernel.spawn("victim");
  const auto addr = kernel.mmap_anon(p, sim::kPageSize, /*mlocked=*/false);
  kernel.mem_write(p, addr, key, sim::TaintTag::kKeyD);
  kernel.munmap(p, addr, sim::kPageSize);  // residue for the census

  FlightRecorder rec({.capacity = 16}, &kernel, &shadow);
  Alert crit;
  crit.rule = "residue";
  crit.severity = Severity::kCritical;
  crit.ts_ns = now_ns();
  crit.breach_ts_ns = crit.ts_ns;
  rec.on_alert(crit);

  const auto bundle = rec.bundle_json();
  std::string err;
  const auto doc = util::json_parse(bundle, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  ASSERT_NE(doc->get("trigger"), nullptr);
  ASSERT_NE(doc->get("events"), nullptr);
  ASSERT_NE(doc->get("residue"), nullptr);
  const auto* schema = doc->get("schema_version");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_number(), 2.0);

  // Grind the bundle for the key, raw and hex, any 8-byte window.
  const std::string_view text = bundle;
  for (std::size_t i = 0; i + 8 <= key.size(); ++i) {
    const std::string_view raw(reinterpret_cast<const char*>(key.data()) + i,
                               8);
    EXPECT_EQ(text.find(raw), std::string_view::npos);
    std::string hex;
    for (std::size_t j = i; j < i + 8; ++j) {
      static const char* digits = "0123456789abcdef";
      hex += digits[std::to_integer<unsigned>(key[j]) >> 4];
      hex += digits[std::to_integer<unsigned>(key[j]) & 0xF];
    }
    EXPECT_EQ(text.find(hex), std::string_view::npos);
  }
  kernel.attach_taint(nullptr);
}

}  // namespace
}  // namespace keyguard::obs
