#include "servers/ssh_server.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "sslsim/ssl_library.hpp"
#include "util/bytes.hpp"

namespace keyguard::servers {
namespace {

using core::ProtectionLevel;
using core::Scenario;
using core::ScenarioConfig;

ScenarioConfig cfg(ProtectionLevel level = ProtectionLevel::kNone) {
  ScenarioConfig c;
  c.level = level;
  c.mem_bytes = 16ull << 20;
  c.key_bits = 512;  // fast for unit tests
  c.seed = 42;
  return c;
}

TEST(SshServer, StartLoadsKeyAndStopTearsDown) {
  Scenario s(cfg());
  SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  EXPECT_FALSE(server.running());
  ASSERT_TRUE(server.start());
  EXPECT_TRUE(server.running());
  EXPECT_NE(server.master_pid(), 0u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(SshServer, StartFailsWithoutKeyFile) {
  Scenario s(cfg());
  auto config = s.ssh_config();
  config.key_path = "/missing";
  SshServer server(s.kernel(), config, s.make_rng());
  EXPECT_FALSE(server.start());
}

TEST(SshServer, HandshakeSucceedsAndCountsConnections) {
  Scenario s(cfg());
  SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(server.handle_connection(8 << 10));
  }
  EXPECT_EQ(server.total_handshakes(), 5u);
  EXPECT_EQ(server.open_connections(), 0u);
}

TEST(SshServer, OpenConnectionKeepsChildAlive) {
  Scenario s(cfg());
  SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  const auto before = s.kernel().live_process_count();
  const auto id = server.open_connection();
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(s.kernel().live_process_count(), before + 1);
  server.close_connection(*id);
  EXPECT_EQ(s.kernel().live_process_count(), before);
}

TEST(SshServer, ReexecChildParsesOwnKeyCopies) {
  // Stock sshd: every connection re-reads the key, so copies of P grow
  // with concurrent connections.
  Scenario s(cfg(ProtectionLevel::kNone));
  SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  const auto p_img = sslsim::SslLibrary::limb_image(s.key().p);
  const auto base = util::find_all(s.kernel().memory().all(), p_img).size();
  const auto c1 = server.open_connection();
  const auto c2 = server.open_connection();
  ASSERT_TRUE(c1 && c2);
  const auto with_conns = util::find_all(s.kernel().memory().all(), p_img).size();
  EXPECT_GE(with_conns, base + 2);  // at least one fresh P image per child
}

TEST(SshServer, NoReexecChildrenShareMasterKey) {
  // sshd -r + aligned key: children never add physical key copies.
  Scenario s(cfg(ProtectionLevel::kApplication));
  SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  const auto p_img = sslsim::SslLibrary::limb_image(s.key().p);
  const auto base = util::find_all(s.kernel().memory().all(), p_img).size();
  EXPECT_EQ(base, 1u);  // exactly the aligned page
  std::vector<ConnectionId> ids;
  for (int i = 0; i < 6; ++i) {
    const auto id = server.open_connection();
    ASSERT_TRUE(id);
    ids.push_back(*id);
  }
  EXPECT_EQ(util::find_all(s.kernel().memory().all(), p_img).size(), 1u);
  for (const auto id : ids) server.close_connection(id);
  EXPECT_EQ(util::find_all(s.kernel().memory().all(), p_img).size(), 1u);
}

TEST(SshServer, TransferChurnsChildHeap) {
  Scenario s(cfg());
  SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  const auto id = server.open_connection();
  ASSERT_TRUE(id);
  const auto allocs_before = s.kernel().allocator().stats().allocs;
  server.transfer(*id, 256 << 10);
  EXPECT_GT(s.kernel().allocator().stats().allocs, allocs_before);
  server.close_connection(*id);
}

TEST(SshServer, ClosedConnectionsLeaveResidueOnStockKernel) {
  Scenario s(cfg(ProtectionLevel::kNone));
  SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 10; ++i) server.handle_connection();
  // Key material sits in unallocated memory now.
  const auto matches = s.scanner().scan_kernel(s.kernel());
  const auto census = scan::KeyScanner::census(matches);
  EXPECT_GT(census.unallocated, 0u);
}

TEST(SshServer, StopKillsOpenChildren) {
  Scenario s(cfg());
  SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  server.open_connection();
  server.open_connection();
  server.stop();
  EXPECT_EQ(s.kernel().live_process_count(), 0u);
}

TEST(SshServer, OperationsOnUnknownConnectionAreSafe) {
  Scenario s(cfg());
  SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  server.transfer(9999, 1024);
  server.close_connection(9999);
  SUCCEED();
}

TEST(SshServer, ConnectionFailsWhenServerDown) {
  Scenario s(cfg());
  SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  EXPECT_FALSE(server.open_connection().has_value());
  EXPECT_FALSE(server.handle_connection());
}

}  // namespace
}  // namespace keyguard::servers
