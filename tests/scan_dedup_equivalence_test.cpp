// Scanner semantics over dedup-merged frames.
//
// Contract: merging changes WHERE bytes live, never what the scanner
// reports about a process, and one physical hit on a merged frame is
// attributed to EVERY mapping (MemoryMatch::mappings) — a canonical-only
// report would under-count the blast radius. Incremental sweeps stay
// byte-identical to fresh scans across merge and COW-unmerge, because
// merge frees the duplicate frame (zero_on_free scrubs it → phys_clear
// marks the journal) and unmerge is an ordinary COW copy.
#include "scan/key_scanner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "scan/dirty_journal.hpp"
#include "sim/dedup.hpp"
#include "sim/kernel.hpp"
#include "util/bytes.hpp"

namespace keyguard::scan {
namespace {

// zero_on_free keeps the match population deterministic: without it the
// merge-freed duplicate frame would keep matching as unallocated residue
// (pinned separately by sim_dedup_test's residue cases).
sim::KernelConfig scrubbed_config() {
  sim::KernelConfig cfg;
  cfg.mem_bytes = 2ull << 20;
  cfg.zero_on_free = true;
  return cfg;
}

KeyPatterns needle_patterns() {
  KeyPatterns p;
  p.patterns.push_back(
      {"X", util::to_bytes("-NEEDLE-bytes-no-key-needed-")});
  return p;
}

/// One page holding the needle at `off`, identical across callers.
std::vector<std::byte> needle_page(std::size_t off = 64) {
  std::vector<std::byte> page(sim::kPageSize);
  for (std::size_t i = 0; i < page.size(); ++i) {
    page[i] = static_cast<std::byte>(0xA0 + i % 7);
  }
  const auto needle = needle_patterns().patterns[0].bytes;
  std::copy(needle.begin(), needle.end(), page.begin() + off);
  return page;
}

void expect_same_matches(const std::vector<MemoryMatch>& incr,
                         const std::vector<MemoryMatch>& full,
                         const std::string& label) {
  ASSERT_EQ(incr.size(), full.size()) << label;
  for (std::size_t i = 0; i < incr.size(); ++i) {
    EXPECT_EQ(incr[i].phys_offset, full[i].phys_offset) << label << ", " << i;
    EXPECT_EQ(incr[i].part, full[i].part) << label << ", " << i;
    EXPECT_EQ(incr[i].state, full[i].state) << label << ", " << i;
    EXPECT_EQ(incr[i].owners, full[i].owners) << label << ", " << i;
    ASSERT_EQ(incr[i].mappings.size(), full[i].mappings.size()) << label << ", " << i;
    for (std::size_t m = 0; m < incr[i].mappings.size(); ++m) {
      EXPECT_EQ(incr[i].mappings[m].pid, full[i].mappings[m].pid) << label;
      EXPECT_EQ(incr[i].mappings[m].vaddr, full[i].mappings[m].vaddr) << label;
    }
  }
}

TEST(ScanDedup, MergedFrameIsOneHitAttributedToEveryMapping) {
  sim::Kernel k(scrubbed_config());
  auto& a = k.spawn("a");
  auto& b = k.spawn("b");
  const auto va = k.mmap_anon(a, sim::kPageSize, false);
  const auto vb = k.mmap_anon(b, sim::kPageSize, false);
  k.mem_write(a, va, needle_page());
  k.mem_write(b, vb, needle_page());

  KeyScanner scanner(needle_patterns());
  auto before = scanner.scan_kernel(k);
  ASSERT_EQ(before.size(), 2u);  // two physical copies before merging
  for (const auto& m : before) {
    EXPECT_EQ(m.share_count(), 1u);
    ASSERT_EQ(m.owners.size(), 1u);
    ASSERT_EQ(m.mappings.size(), 1u);
    EXPECT_EQ(m.mappings[0].pid, m.owners[0]);
  }

  sim::DedupEngine dedup(k);
  ASSERT_EQ(dedup.scan(), 1u);

  auto after = scanner.scan_kernel(k);
  ASSERT_EQ(after.size(), 1u);  // one physical copy...
  const auto& m = after[0];
  EXPECT_EQ(m.share_count(), 2u);  // ...but TWO disclosures
  ASSERT_EQ(m.mappings.size(), 2u);
  std::vector<sim::Pid> pids = {m.mappings[0].pid, m.mappings[1].pid};
  std::sort(pids.begin(), pids.end());
  EXPECT_EQ(pids, (std::vector<sim::Pid>{a.pid(), b.pid()}));
  EXPECT_EQ(m.owners, pids);  // rmap pids agree with the mapping list
  // Both virtual addresses are reported, so a response team knows every
  // tenant whose address space exposes the hit.
  std::vector<sim::VirtAddr> vaddrs = {m.mappings[0].vaddr, m.mappings[1].vaddr};
  std::sort(vaddrs.begin(), vaddrs.end());
  std::vector<sim::VirtAddr> expect = {va, vb};
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(vaddrs, expect);
}

TEST(ScanDedup, ProcessViewIsInvariantUnderMerging) {
  sim::Kernel k(scrubbed_config());
  auto& a = k.spawn("a");
  auto& b = k.spawn("b");
  const auto va = k.mmap_anon(a, sim::kPageSize, false);
  const auto vb = k.mmap_anon(b, sim::kPageSize, false);
  k.mem_write(a, va, needle_page());
  k.mem_write(b, vb, needle_page());

  KeyScanner scanner(needle_patterns());
  const auto a_before = scanner.scan_process(k, a);
  const auto b_before = scanner.scan_process(k, b);
  ASSERT_EQ(a_before.size(), 1u);
  ASSERT_EQ(b_before.size(), 1u);

  sim::DedupEngine dedup(k);
  ASSERT_EQ(dedup.scan(), 1u);

  // A core dump of either process is byte-identical pre/post merge: the
  // merge is invisible from inside an address space.
  const auto a_after = scanner.scan_process(k, a);
  const auto b_after = scanner.scan_process(k, b);
  ASSERT_EQ(a_after.size(), 1u);
  EXPECT_EQ(a_after[0].vaddr, a_before[0].vaddr);
  EXPECT_EQ(a_after[0].part, a_before[0].part);
  ASSERT_EQ(b_after.size(), 1u);
  EXPECT_EQ(b_after[0].vaddr, b_before[0].vaddr);
  EXPECT_EQ(b_after[0].part, b_before[0].part);
}

TEST(ScanDedup, IncrementalSweepTracksMergeAndUnmerge) {
  auto cfg = scrubbed_config();
  sim::Kernel k(cfg);
  DirtyFrameJournal journal(cfg.mem_bytes);
  k.attach_taint(&journal);

  auto& a = k.spawn("a");
  auto& b = k.spawn("b");
  const auto va = k.mmap_anon(a, sim::kPageSize, false);
  const auto vb = k.mmap_anon(b, sim::kPageSize, false);
  k.mem_write(a, va, needle_page());
  k.mem_write(b, vb, needle_page());

  KeyScanner scanner(needle_patterns());
  SweepCache cache;
  auto incr = scanner.scan_kernel_incremental(k, journal, cache);
  expect_same_matches(incr, scanner.scan_kernel(k), "prime");

  // Merge: the duplicate frame is freed and (zero_on_free) scrubbed —
  // the phys_clear marks the journal, so the vanished hit is noticed.
  sim::DedupEngine dedup(k);
  ASSERT_EQ(dedup.scan(), 1u);
  incr = scanner.scan_kernel_incremental(k, journal, cache);
  expect_same_matches(incr, scanner.scan_kernel(k), "after merge");
  ASSERT_EQ(incr.size(), 1u);
  EXPECT_EQ(incr[0].share_count(), 2u);

  // Unmerge: b's write COW-copies the page out; the copy dirties the
  // fresh frame and the write dirties the canonical one. The write
  // corrupts b's needle, so the sweep must drop one hit and keep a's.
  const std::byte x{0xFF};
  k.mem_write(b, vb + 64, std::span(&x, 1));
  ASSERT_EQ(dedup.stats().unmerges, 1u);
  incr = scanner.scan_kernel_incremental(k, journal, cache);
  expect_same_matches(incr, scanner.scan_kernel(k), "after unmerge");
  ASSERT_EQ(incr.size(), 1u);
  EXPECT_EQ(incr[0].share_count(), 1u);
  EXPECT_EQ(incr[0].owners, (std::vector<sim::Pid>{a.pid()}));

  // Re-merge after b repairs the byte: back to one shared hit.
  const auto needle = needle_patterns().patterns[0].bytes;
  k.mem_write(b, vb + 64, std::span(&needle[0], 1));
  ASSERT_EQ(dedup.scan(), 1u);
  incr = scanner.scan_kernel_incremental(k, journal, cache);
  expect_same_matches(incr, scanner.scan_kernel(k), "after re-merge");
  ASSERT_EQ(incr.size(), 1u);
  EXPECT_EQ(incr[0].share_count(), 2u);
  k.attach_taint(nullptr);
}

TEST(ScanDedup, CensusCountsMergedFramesOnce) {
  sim::Kernel k(scrubbed_config());
  auto& a = k.spawn("a");
  auto& b = k.spawn("b");
  auto& c = k.spawn("c");
  for (auto* p : {&a, &b, &c}) {
    const auto v = k.mmap_anon(*p, sim::kPageSize, false);
    k.mem_write(*p, v, needle_page());
  }
  KeyScanner scanner(needle_patterns());
  EXPECT_EQ(KeyScanner::census(scanner.scan_kernel(k)).allocated, 3u);
  sim::DedupEngine dedup(k);
  ASSERT_EQ(dedup.scan(), 2u);  // three copies fold into one frame
  const auto after = KeyScanner::census(scanner.scan_kernel(k));
  EXPECT_EQ(after.allocated, 1u);
  EXPECT_EQ(after.unallocated, 0u);  // zero_on_free scrubbed the losers
}

}  // namespace
}  // namespace keyguard::scan
