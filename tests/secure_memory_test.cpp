#include <gtest/gtest.h>

#include <cstring>

#include "core/key_vault.hpp"
#include "core/secure_allocator.hpp"
#include "core/secure_buffer.hpp"
#include "core/secure_zero.hpp"
#include "util/bytes.hpp"

namespace keyguard::secure {
namespace {

TEST(SecureZero, ZeroesEveryByte) {
  std::vector<std::byte> buf(4096, std::byte{0xAB});
  secure_zero(buf.data(), buf.size());
  EXPECT_TRUE(util::all_zero(buf));
}

TEST(SecureZero, ZeroLengthIsSafe) {
  secure_zero(nullptr, 0);
  SUCCEED();
}

TEST(SecureZero, SpanOverload) {
  std::vector<std::byte> buf(100, std::byte{1});
  secure_zero(std::span<std::byte>(buf).subspan(10, 20));
  EXPECT_EQ(buf[9], std::byte{1});
  EXPECT_EQ(buf[10], std::byte{0});
  EXPECT_EQ(buf[29], std::byte{0});
  EXPECT_EQ(buf[30], std::byte{1});
}

TEST(ConstantTimeEqual, Basics) {
  const auto a = util::to_bytes("same-bytes");
  const auto b = util::to_bytes("same-bytes");
  const auto c = util::to_bytes("diff-bytes");
  const auto d = util::to_bytes("short");
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
  EXPECT_TRUE(constant_time_equal({}, {}));
}

TEST(ConstantTimeEqual, LengthMismatchIsFalseRegardlessOfContents) {
  const std::vector<std::byte> a(32, std::byte{0x5A});
  std::vector<std::byte> shorter(a.begin(), a.end() - 1);
  std::vector<std::byte> longer = a;
  longer.push_back(std::byte{0x5A});
  EXPECT_FALSE(constant_time_equal(a, shorter));
  EXPECT_FALSE(constant_time_equal(shorter, a));
  EXPECT_FALSE(constant_time_equal(a, longer));
  EXPECT_FALSE(constant_time_equal(a, std::span<const std::byte>{}));
}

TEST(ConstantTimeEqual, EmptySpans) {
  EXPECT_TRUE(constant_time_equal({}, {}));
  const std::vector<std::byte> one(1, std::byte{0});
  EXPECT_FALSE(constant_time_equal({}, one));
  EXPECT_FALSE(constant_time_equal(one, {}));
}

TEST(ConstantTimeEqual, SingleBitDifferenceAtEveryBytePosition) {
  // The accumulator must not saturate, alias, or skip positions: flipping
  // any single bit of any single byte must flip the verdict.
  const std::size_t n = 64;
  std::vector<std::byte> a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<std::byte>(0xA5u ^ i);
  }
  for (std::size_t pos = 0; pos < n; ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::byte> b = a;
      b[pos] ^= static_cast<std::byte>(1u << bit);
      EXPECT_FALSE(constant_time_equal(a, b))
          << "undetected single-bit flip at byte " << pos << " bit " << bit;
    }
  }
  EXPECT_TRUE(constant_time_equal(a, a));
}

TEST(ConstantTimeEqual, AllZeroVersusAllOnes) {
  const std::vector<std::byte> zeros(16, std::byte{0x00});
  const std::vector<std::byte> ones(16, std::byte{0xFF});
  EXPECT_FALSE(constant_time_equal(zeros, ones));
  EXPECT_TRUE(constant_time_equal(zeros, zeros));
  EXPECT_TRUE(constant_time_equal(ones, ones));
}

TEST(SecureBuffer, AllocatesRequestedSizeZeroed) {
  SecureBuffer buf(1000);
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_FALSE(buf.empty());
  EXPECT_TRUE(util::all_zero(buf.data()));
}

TEST(SecureBuffer, PageAligned) {
  SecureBuffer buf(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data().data()) % 4096, 0u);
}

TEST(SecureBuffer, WritableAndReadable) {
  SecureBuffer buf(64);
  const auto msg = util::to_bytes("key material");
  std::memcpy(buf.data().data(), msg.data(), msg.size());
  EXPECT_EQ(std::memcmp(buf.data().data(), msg.data(), msg.size()), 0);
}

TEST(SecureBuffer, CanaryDetectsOverrun) {
  SecureBuffer buf(100);
  EXPECT_TRUE(buf.canary_intact());
  // Simulate a heap overrun past the usable range.
  buf.data().data()[100] = std::byte{0x00};
  EXPECT_FALSE(buf.canary_intact());
  // Restore so the destructor path is clean.
  buf.data().data()[100] = std::byte{0xC5};
  EXPECT_TRUE(buf.canary_intact());
}

TEST(SecureBuffer, ScrubZeroesContents) {
  SecureBuffer buf(64);
  std::memset(buf.data().data(), 0x5A, 64);
  buf.scrub();
  EXPECT_TRUE(util::all_zero(buf.data()));
}

TEST(SecureBuffer, MoveTransfersOwnership) {
  SecureBuffer a(64);
  std::memset(a.data().data(), 0x11, 64);
  const void* ptr = a.data().data();
  SecureBuffer b(std::move(a));
  EXPECT_EQ(b.data().data(), ptr);
  EXPECT_EQ(b.size(), 64u);
  EXPECT_TRUE(a.empty());

  SecureBuffer c(16);
  c = std::move(b);
  EXPECT_EQ(c.data().data(), ptr);
}

TEST(SecureBuffer, DestructorScrubs) {
  // Observe the backing memory after destruction via the raw pointer.
  // (Reading freed memory is UB in general; here the test allocates a new
  // buffer immediately and merely checks our scrub ran before release by
  // using scrub() + explicit check instead.)
  SecureBuffer buf(128);
  std::memset(buf.data().data(), 0x77, 128);
  buf.scrub();
  EXPECT_TRUE(util::all_zero(buf.data()));
}

TEST(SecureBuffer, ZeroSizeWorks) {
  SecureBuffer buf(0);
  EXPECT_TRUE(buf.empty());
  EXPECT_TRUE(buf.canary_intact());
}

TEST(SecureAllocator, VectorRoundTrip) {
  SecureBytes v;
  for (int i = 0; i < 1000; ++i) v.push_back(std::byte{0x42});
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v[999], std::byte{0x42});
}

TEST(SecureAllocator, StringRoundTrip) {
  SecureString s = "a moderately long secret passphrase exceeding SSO";
  EXPECT_GT(s.size(), 40u);  // long enough to defeat SSO
  s += " and more";
  EXPECT_NE(s.find("more"), SecureString::npos);
}

TEST(SecureAllocator, EqualityForRebinding) {
  SecureAllocator<std::byte> a;
  SecureAllocator<int> b;
  EXPECT_TRUE(a == b);
}

TEST(KeyVault, StoreAndView) {
  KeyVault vault;
  const auto material = util::to_bytes("rsa-private-key-material");
  const KeyId id = vault.store(material);
  EXPECT_TRUE(vault.contains(id));
  EXPECT_EQ(vault.size(), 1u);
  const auto view = vault.view(id);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(std::equal(view->begin(), view->end(), material.begin()));
}

TEST(KeyVault, StoreAndScrubWipesSource) {
  KeyVault vault;
  auto material = util::to_bytes("wipe-after-store");
  const KeyId id = vault.store_and_scrub(material);
  EXPECT_TRUE(util::all_zero(material));  // source gone
  const auto view = vault.view(id);
  ASSERT_TRUE(view);
  EXPECT_EQ((*view)[0], std::byte{'w'});  // vault copy intact
}

TEST(KeyVault, WithKeyScopedAccess) {
  KeyVault vault;
  const KeyId id = vault.store(util::to_bytes("scoped"));
  bool ran = false;
  EXPECT_TRUE(vault.with_key(id, [&](std::span<const std::byte> key) {
    ran = true;
    EXPECT_EQ(key.size(), 6u);
  }));
  EXPECT_TRUE(ran);
  EXPECT_FALSE(vault.with_key(9999, [](auto) {}));
}

TEST(KeyVault, EraseRemoves) {
  KeyVault vault;
  const KeyId id = vault.store(util::to_bytes("gone"));
  vault.erase(id);
  EXPECT_FALSE(vault.contains(id));
  EXPECT_FALSE(vault.view(id).has_value());
  EXPECT_EQ(vault.size(), 0u);
}

TEST(KeyVault, ClearRemovesAll) {
  KeyVault vault;
  vault.store(util::to_bytes("a"));
  vault.store(util::to_bytes("b"));
  vault.clear();
  EXPECT_EQ(vault.size(), 0u);
}

TEST(KeyVault, DistinctIdsForDistinctKeys) {
  KeyVault vault;
  const KeyId a = vault.store(util::to_bytes("one"));
  const KeyId b = vault.store(util::to_bytes("two"));
  EXPECT_NE(a, b);
  EXPECT_EQ(vault.view(a)->size(), 3u);
}

TEST(KeyVault, LockedQueryDoesNotCrash) {
  KeyVault vault;
  const KeyId id = vault.store(util::to_bytes("k"));
  // mlock may fail under RLIMIT_MEMLOCK in containers; either answer is valid.
  (void)vault.locked(id);
  EXPECT_FALSE(vault.locked(424242));
}

}  // namespace
}  // namespace keyguard::secure
