// Parameterised algebraic property sweeps over random operands of varying
// widths — the invariants any bignum implementation must satisfy.
#include "bignum/bignum.hpp"

#include <gtest/gtest.h>

#include "bignum/prime.hpp"
#include "util/rng.hpp"

namespace keyguard::bn {
namespace {

class BignumProperty : public ::testing::TestWithParam<std::size_t> {
 protected:
  util::Rng rng_{GetParam() * 7919 + 17};
  Bignum rand(std::size_t bits) { return random_bits(rng_, bits); }
};

TEST_P(BignumProperty, AdditionCommutes) {
  const Bignum a = rand(GetParam());
  const Bignum b = rand(GetParam() / 2 + 1);
  EXPECT_EQ(a + b, b + a);
}

TEST_P(BignumProperty, AdditionAssociates) {
  const Bignum a = rand(GetParam());
  const Bignum b = rand(GetParam());
  const Bignum c = rand(GetParam() / 3 + 1);
  EXPECT_EQ((a + b) + c, a + (b + c));
}

TEST_P(BignumProperty, AddThenSubtractIsIdentity) {
  const Bignum a = rand(GetParam());
  const Bignum b = rand(GetParam());
  EXPECT_EQ((a + b) - b, a);
}

TEST_P(BignumProperty, MultiplicationCommutes) {
  const Bignum a = rand(GetParam());
  const Bignum b = rand(GetParam() / 2 + 1);
  EXPECT_EQ(a * b, b * a);
}

TEST_P(BignumProperty, MultiplicationDistributes) {
  const Bignum a = rand(GetParam());
  const Bignum b = rand(GetParam());
  const Bignum c = rand(GetParam());
  EXPECT_EQ(a * (b + c), a * b + a * c);
}

TEST_P(BignumProperty, KaratsubaMatchesSchoolbookViaSquares) {
  // (a+b)^2 == a^2 + 2ab + b^2 crosses the Karatsuba threshold both ways.
  const Bignum a = rand(GetParam());
  const Bignum b = rand(GetParam());
  const Bignum lhs = (a + b) * (a + b);
  const Bignum rhs = a * a + a * b + a * b + b * b;
  EXPECT_EQ(lhs, rhs);
}

TEST_P(BignumProperty, ModularReductionBound) {
  const Bignum a = rand(GetParam());
  const Bignum m = rand(GetParam() / 2 + 2);
  if (m.is_zero()) return;
  EXPECT_LT(a % m, m);
}

TEST_P(BignumProperty, ModularMultiplicationHomomorphic) {
  const Bignum a = rand(GetParam());
  const Bignum b = rand(GetParam());
  const Bignum m = rand(GetParam() / 2 + 2);
  if (m.is_zero()) return;
  EXPECT_EQ((a * b) % m, (((a % m) * (b % m)) % m));
}

TEST_P(BignumProperty, ShiftLeftIsMulByPowerOfTwo) {
  const Bignum a = rand(GetParam());
  const std::size_t s = rng_.next_below(130);
  Bignum pow(1);
  EXPECT_EQ(a << s, a * (pow << s));
}

TEST_P(BignumProperty, ShiftRoundTrip) {
  const Bignum a = rand(GetParam());
  const std::size_t s = rng_.next_below(200);
  EXPECT_EQ((a << s) >> s, a);
}

TEST_P(BignumProperty, BitLengthConsistentWithShift) {
  const Bignum a = rand(GetParam());
  EXPECT_EQ((a << 5).bit_length(), a.bit_length() + 5);
}

TEST_P(BignumProperty, ByteSerializationRoundTrips) {
  const Bignum a = rand(GetParam());
  EXPECT_EQ(Bignum::from_bytes_be(a.to_bytes_be()), a);
  EXPECT_EQ(Bignum::from_bytes_le(a.to_bytes_le()), a);
}

TEST_P(BignumProperty, DecimalHexRoundTrips) {
  const Bignum a = rand(GetParam());
  EXPECT_EQ(Bignum::from_decimal(a.to_decimal()), a);
  EXPECT_EQ(Bignum::from_hex(a.to_hex()), a);
}

TEST_P(BignumProperty, GcdDividesBoth) {
  const Bignum a = rand(GetParam());
  const Bignum b = rand(GetParam() / 2 + 1);
  const Bignum g = Bignum::gcd(a, b);
  if (g.is_zero()) return;
  EXPECT_TRUE((a % g).is_zero());
  EXPECT_TRUE((b % g).is_zero());
}

TEST_P(BignumProperty, ModInverseIsInverse) {
  const Bignum m = rand(GetParam()).add_limb(3);
  Bignum a = rand(GetParam() / 2 + 2);
  // Ensure coprimality by retrying a few times.
  for (int i = 0; i < 8 && !Bignum::gcd(a, m).is_one(); ++i) {
    a = a.add_limb(1);
  }
  if (!Bignum::gcd(a, m).is_one()) return;
  const auto inv = Bignum::mod_inverse(a, m);
  ASSERT_TRUE(inv.has_value());
  EXPECT_TRUE(((a * *inv) % m).is_one());
  EXPECT_LT(*inv, m);
}

TEST_P(BignumProperty, ModExpMatchesNaive) {
  const Bignum base = rand(GetParam() / 2 + 1);
  const Bignum m = rand(64).add_limb(3);
  const std::uint64_t e = rng_.next_below(200);
  Bignum naive(1);
  for (std::uint64_t i = 0; i < e; ++i) naive = (naive * base) % m;
  EXPECT_EQ(Bignum::mod_exp(base, Bignum(e), m), naive);
}

TEST_P(BignumProperty, FermatLittleTheorem) {
  // a^(p-1) == 1 mod p for prime p not dividing a.
  const Bignum p = random_prime(rng_, 64);
  const Bignum a = rand(GetParam()).add_limb(1);
  if ((a % p).is_zero()) return;
  EXPECT_TRUE(Bignum::mod_exp(a, p - Bignum(1), p).is_one());
}

INSTANTIATE_TEST_SUITE_P(Widths, BignumProperty,
                         ::testing::Values(8, 33, 64, 100, 192, 256, 511, 777,
                                           1024, 1600, 2048));

}  // namespace
}  // namespace keyguard::bn
