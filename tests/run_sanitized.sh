#!/usr/bin/env bash
# Builds and runs the scan + sim test binaries under a sanitizer.
#
#   tests/run_sanitized.sh [thread|address|undefined]   (default: thread)
#
# ThreadSanitizer is the one that matters for the parallel sharded scanner
# (tests/scan_parallel_test, tests/scan_boundary_test exercise the
# ThreadPool fan-out), for the host keystore, whose mlocked plaintext
# pool is shared across signing threads (keystore_test's concurrent case
# and keystore_encrypted_test's shared-CoprocessorDomain case),
# and for the observability layer (obs_concurrency_test hammers the
# MetricsRegistry/Tracer from many threads and demands exact totals);
# address/undefined cover the same binaries for memory and UB bugs.
# CI-runnable: exits non-zero on any failure.
set -euo pipefail

SAN="${1:-thread}"
case "$SAN" in
  thread|address|undefined) ;;
  *) echo "usage: $0 [thread|address|undefined]" >&2; exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-${SAN}san"

# The binaries whose concurrency/memory behaviour the sanitizer polices.
TARGETS=(
  util_thread_pool_test
  scan_test
  scan_parallel_test
  scan_boundary_test
  scan_matcher_test
  scan_incremental_test
  scan_stream_test
  scan_dedup_equivalence_test
  scan_hunter_test
  sim_physmem_test
  sim_page_alloc_test
  sim_kernel_test
  sim_dedup_test
  attack_dedup_test
  analysis_taint_test
  analysis_equivalence_test
  util_json_test
  keystore_test
  keystore_sim_test
  keystore_equivalence_test
  keystore_encrypted_test
  keystore_batch_test
  keystore_salt_test
  keystore_adversary_test
  obs_metrics_test
  obs_trace_test
  obs_concurrency_test
  obs_exposure_test
  obs_alert_test
  lint_selftest
)

# KEYGUARD_THREAD_SAFETY turns on clang's -Wthread-safety over the
# annotated keystore mutexes (util/thread_safety.hpp); it is a no-op when
# the toolchain is GCC, so passing it unconditionally is safe.
cmake -B "$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DKEYGUARD_THREAD_SAFETY=ON \
  -DKEYGUARD_SANITIZE="$SAN" > /dev/null
cmake --build "$BUILD" -j "$(nproc)" --target "${TARGETS[@]}"

# Force real workers in the shared pool: on 1-core machines the default
# sizing is 0 workers (inline parallel_for), which would give the thread
# sanitizer nothing cross-thread to check.
export KEYGUARD_POOL_WORKERS=4

status=0
for t in "${TARGETS[@]}"; do
  echo "== [$SAN] $t"
  if ! "$BUILD/tests/$t" --gtest_brief=1; then
    status=1
  fi
done

# The SIMD-vs-scalar and streaming equivalence batteries re-run at every
# vector level the hardware allows (KEYGUARD_SCAN_SIMD caps, never
# raises), so the AVX kernels' unaligned loads and the CaptureStream
# mmap/pread seam handling are sanitizer-checked at each level — not just
# whichever one this machine happens to dispatch to.
for simd in avx2 none; do
  for t in scan_matcher_test scan_stream_test; do
    echo "== [$SAN] $t (KEYGUARD_SCAN_SIMD=$simd)"
    if ! KEYGUARD_SCAN_SIMD="$simd" "$BUILD/tests/$t" --gtest_brief=1; then
      status=1
    fi
  done
done

if [ "$status" -eq 0 ]; then
  echo "== [$SAN] all ${#TARGETS[@]} binaries clean"
else
  echo "== [$SAN] FAILURES detected" >&2
fi
exit "$status"
