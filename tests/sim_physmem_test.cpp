#include "sim/physmem.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace keyguard::sim {
namespace {

TEST(PhysicalMemory, SizeRoundsToPages) {
  PhysicalMemory m(kPageSize * 3 + 100);
  EXPECT_EQ(m.page_count(), 3u);
  EXPECT_EQ(m.size_bytes(), 3 * kPageSize);
}

TEST(PhysicalMemory, MinimumOnePage) {
  PhysicalMemory m(1);
  EXPECT_EQ(m.page_count(), 1u);
}

TEST(PhysicalMemory, StartsZeroed) {
  PhysicalMemory m(kPageSize * 4);
  EXPECT_TRUE(util::all_zero(m.all()));
}

TEST(PhysicalMemory, PageViewsAreDistinct) {
  PhysicalMemory m(kPageSize * 2);
  m.page(0)[0] = std::byte{0xAA};
  m.page(1)[0] = std::byte{0xBB};
  EXPECT_EQ(m.all()[0], std::byte{0xAA});
  EXPECT_EQ(m.all()[kPageSize], std::byte{0xBB});
}

TEST(PhysicalMemory, ClearPage) {
  PhysicalMemory m(kPageSize * 2);
  auto p = m.page(1);
  for (auto& b : p) b = std::byte{0xFF};
  m.clear_page(1);
  EXPECT_TRUE(util::all_zero(m.page(1)));
}

TEST(PhysicalMemory, RangeClamping) {
  PhysicalMemory m(kPageSize);
  EXPECT_EQ(m.range(0, 100).size(), 100u);
  EXPECT_EQ(m.range(kPageSize - 10, 100).size(), 10u);
  EXPECT_TRUE(m.range(kPageSize + 1, 10).empty());
}

TEST(PhysicalMemory, RangeAtOrPastEndIsEmpty) {
  PhysicalMemory m(kPageSize);
  EXPECT_TRUE(m.range(kPageSize, 1).empty());   // offset == size exactly
  EXPECT_TRUE(m.range(kPageSize, 0).empty());
  EXPECT_TRUE(m.range(SIZE_MAX, 10).empty());   // absurd offset
}

TEST(PhysicalMemory, RangeLenNearSizeMaxDoesNotOverflow) {
  // offset + len would wrap; the clamp must be computed as (size - offset)
  // and return the tail, never a wrapped empty/bogus span.
  PhysicalMemory m(kPageSize);
  EXPECT_EQ(m.range(0, SIZE_MAX).size(), kPageSize);
  EXPECT_EQ(m.range(kPageSize - 1, SIZE_MAX).size(), 1u);
  EXPECT_EQ(m.range(10, SIZE_MAX - 5).size(), kPageSize - 10);
  EXPECT_EQ(m.range(kPageSize - 1, SIZE_MAX).data(), m.all().data() + kPageSize - 1);
}

TEST(FrameStateName, AllNamed) {
  EXPECT_STREQ(frame_state_name(FrameState::kFree), "free");
  EXPECT_STREQ(frame_state_name(FrameState::kUserAnon), "user");
  EXPECT_STREQ(frame_state_name(FrameState::kPageCache), "pagecache");
  EXPECT_STREQ(frame_state_name(FrameState::kKernel), "kernel");
}

}  // namespace
}  // namespace keyguard::sim
