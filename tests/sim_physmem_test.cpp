#include "sim/physmem.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace keyguard::sim {
namespace {

TEST(PhysicalMemory, SizeRoundsToPages) {
  PhysicalMemory m(kPageSize * 3 + 100);
  EXPECT_EQ(m.page_count(), 3u);
  EXPECT_EQ(m.size_bytes(), 3 * kPageSize);
}

TEST(PhysicalMemory, MinimumOnePage) {
  PhysicalMemory m(1);
  EXPECT_EQ(m.page_count(), 1u);
}

TEST(PhysicalMemory, StartsZeroed) {
  PhysicalMemory m(kPageSize * 4);
  EXPECT_TRUE(util::all_zero(m.all()));
}

TEST(PhysicalMemory, PageViewsAreDistinct) {
  PhysicalMemory m(kPageSize * 2);
  m.page(0)[0] = std::byte{0xAA};
  m.page(1)[0] = std::byte{0xBB};
  EXPECT_EQ(m.all()[0], std::byte{0xAA});
  EXPECT_EQ(m.all()[kPageSize], std::byte{0xBB});
}

TEST(PhysicalMemory, ClearPage) {
  PhysicalMemory m(kPageSize * 2);
  auto p = m.page(1);
  for (auto& b : p) b = std::byte{0xFF};
  m.clear_page(1);
  EXPECT_TRUE(util::all_zero(m.page(1)));
}

TEST(PhysicalMemory, RangeClamping) {
  PhysicalMemory m(kPageSize);
  EXPECT_EQ(m.range(0, 100).size(), 100u);
  EXPECT_EQ(m.range(kPageSize - 10, 100).size(), 10u);
  EXPECT_TRUE(m.range(kPageSize + 1, 10).empty());
}

TEST(FrameStateName, AllNamed) {
  EXPECT_STREQ(frame_state_name(FrameState::kFree), "free");
  EXPECT_STREQ(frame_state_name(FrameState::kUserAnon), "user");
  EXPECT_STREQ(frame_state_name(FrameState::kPageCache), "pagecache");
  EXPECT_STREQ(frame_state_name(FrameState::kKernel), "kernel");
}

}  // namespace
}  // namespace keyguard::sim
