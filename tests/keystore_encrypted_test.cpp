// Encrypted-at-rest pool keystore: the fail-closed battery.
//
// The backend's claims, each falsified byte-by-byte here:
//   * plaintext never exceeds the W-page working set, all mlocked, and
//     there is NO master-key page (the CoprocessorDomain holds the page
//     key outside simulated RAM entirely);
//   * a sealed blob with ANY byte flipped — magic, nonce, ciphertext, or
//     tag — refuses to open: no partial plaintext, no pool admission, and
//     the taint map shows zero secret bytes afterward;
//   * a powered-off domain refuses unseals and ingest rather than falling
//     back to plaintext; re-encryption without a domain fails AMNESIAC
//     (scrub) rather than leaky.
//
// The host-side EncryptedHostKeystore gets the same battery on real
// memory, plus a concurrency check (shared domain, threads).
#include "keystore/encrypted_keystore.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "analysis/taint_auditor.hpp"
#include "analysis/taint_map.hpp"
#include "crypto/pem.hpp"
#include "keystore/encrypted_keystore_host.hpp"
#include "keystore/sealed_blob.hpp"
#include "sim/coprocessor.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace keyguard::keystore {
namespace {

using analysis::ShadowTaintMap;
using analysis::TaintAuditor;
using sim::TaintTag;

struct Rig {
  sim::Kernel kernel;
  ShadowTaintMap map;
  sim::Process* proc;

  explicit Rig(std::size_t mem = 8ull << 20)
      : kernel(sim::KernelConfig{.mem_bytes = mem, .o_nocache_supported = true}),
        map(kernel) {
    kernel.attach_taint(&map);
    proc = &kernel.spawn("enc_keystore_proc");
  }
};

std::vector<crypto::RsaPrivateKey> make_keys(std::size_t n, std::uint64_t seed = 11) {
  util::Rng rng(seed);
  std::vector<crypto::RsaPrivateKey> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(crypto::generate_rsa_key(rng, 512));
  return out;
}

std::vector<KeyId> ingest_all(Rig& rig, EncryptedPoolKeystore& ks,
                              const std::vector<crypto::RsaPrivateKey>& keys) {
  std::vector<KeyId> ids;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::string path = "/keys/k" + std::to_string(i) + ".pem";
    rig.kernel.vfs().write_file(path, util::to_bytes(crypto::pem_encode_private_key(keys[i])),
                                TaintTag::kPem);
    const auto id = ks.ingest_pem(path);
    EXPECT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  return ids;
}

/// One padded encrypt/decrypt round against key `idx`, verified end to end.
void roundtrip(EncryptedPoolKeystore& ks, const std::vector<KeyId>& ids,
               std::size_t idx, util::Rng& rng) {
  std::vector<std::byte> secret(24);
  rng.fill_bytes(secret);
  const auto& pub = ks.public_key(ids[idx]);
  const auto c = crypto::pad_encrypt(rng, pub, secret);
  ASSERT_TRUE(c.has_value());
  const auto m = ks.try_private_op(ids[idx], *c);
  ASSERT_TRUE(m.has_value());
  const auto block = m->to_bytes_be(pub.modulus_bytes());
  const std::vector<std::byte> tail(
      block.end() - static_cast<std::ptrdiff_t>(secret.size()), block.end());
  EXPECT_EQ(tail, secret);
}

std::byte read_blob_byte(Rig& rig, EncryptedPoolKeystore& ks, KeyId id,
                         std::size_t off) {
  std::byte b[1];
  rig.kernel.mem_read(*rig.proc, ks.blob_address(id) + off, b);
  return b[0];
}

void write_blob_byte(Rig& rig, EncryptedPoolKeystore& ks, KeyId id,
                     std::size_t off, std::byte v) {
  const std::byte b[1] = {v};
  rig.kernel.mem_write(*rig.proc, ks.blob_address(id) + off, b, TaintTag::kSealed);
}

TEST(EncryptedKeystore, RoundTripAndWorkingSetBound) {
  Rig rig;
  sim::CoprocessorDomain domain(0xd0);
  EncryptedPoolKeystore ks(rig.kernel, *rig.proc, domain,
                           {.pool_pages = 4, .working_set = 2});
  const auto keys = make_keys(5);
  const auto ids = ingest_all(rig, ks, keys);
  TaintAuditor auditor(rig.map);
  util::Rng rng(5);
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      roundtrip(ks, ids, i, rng);
      EXPECT_LE(ks.plaintext_count(), 2u);
      const auto report = auditor.audit(rig.kernel);
      EXPECT_TRUE(report.bounded_plaintext_working_set(2));
      // No master-key page: the page key is the domain's, off-RAM.
      EXPECT_EQ(report.master_key_frames, 0u);
      EXPECT_EQ(report.secret_mlocked_frames, report.secret_tainted_frames);
    }
  }
  EXPECT_GT(ks.stats().reencrypts, 0u);   // the squeeze actually happened
  EXPECT_GT(ks.stats().evictions, 0u);    // 5 keys through 4 slots
  EXPECT_EQ(ks.stats().refusals, 0u);
}

TEST(EncryptedKeystore, ReencryptAllLeavesMachineAmnesiacAndReversible) {
  Rig rig;
  sim::CoprocessorDomain domain(0xd1);
  EncryptedPoolKeystore ks(rig.kernel, *rig.proc, domain,
                           {.pool_pages = 3, .working_set = 2});
  const auto keys = make_keys(2);
  const auto ids = ingest_all(rig, ks, keys);
  util::Rng rng(6);
  roundtrip(ks, ids, 0, rng);
  roundtrip(ks, ids, 1, rng);
  EXPECT_EQ(ks.plaintext_count(), 2u);

  ks.reencrypt_all();
  EXPECT_EQ(ks.plaintext_count(), 0u);
  EXPECT_EQ(ks.pooled_count(), 2u);  // still resident — as ciphertext
  TaintAuditor auditor(rig.map);
  const auto report = auditor.audit(rig.kernel);
  EXPECT_EQ(report.secret.total(), 0u);
  // The no->=1-floor case: an EMPTY working set is the best state, and
  // the generalized predicate accepts it where the pool invariant's
  // master-key floor could not.
  EXPECT_TRUE(report.bounded_plaintext_working_set(0));
  // The ciphertext page is not zeroes — the key is still there, sealed.
  std::vector<std::byte> page(64);
  rig.kernel.mem_read(*rig.proc, ks.slot_page(0), page);
  bool all_zero = true;
  for (const auto b : page) all_zero &= b == std::byte{0};
  EXPECT_FALSE(all_zero);

  // Re-entry decrypts the page in place — no blob parse.
  const auto unseals_before = ks.stats().blob_unseals;
  roundtrip(ks, ids, 0, rng);
  EXPECT_GT(ks.stats().page_decrypts, 0u);
  EXPECT_EQ(ks.stats().blob_unseals, unseals_before);
}

TEST(EncryptedKeystore, FaultInjectionEveryByteFailsClosed) {
  Rig rig;
  sim::CoprocessorDomain domain(0xd2);
  EncryptedPoolKeystore ks(rig.kernel, *rig.proc, domain,
                           {.pool_pages = 2, .working_set = 1});
  const auto keys = make_keys(1);
  const auto ids = ingest_all(rig, ks, keys);
  util::Rng rng(7);
  roundtrip(ks, ids, 0, rng);  // prove the key works, then park it cold
  ks.evict(ids[0]);
  TaintAuditor auditor(rig.map);
  ASSERT_EQ(auditor.audit(rig.kernel).secret.total(), 0u);

  const bn::Bignum c(0x51u);
  const std::size_t blob_len = ks.blob_size(ids[0]);
  ASSERT_GE(blob_len, kSealedHeaderBytes + kAuthTagBytes);
  for (std::size_t off = 0; off < blob_len; ++off) {
    const std::byte orig = read_blob_byte(rig, ks, ids[0], off);
    write_blob_byte(rig, ks, ids[0], off, orig ^ std::byte{0x01});

    // Every single corrupted byte — magic, nonce, ciphertext, tag — must
    // refuse with the pool untouched.
    EXPECT_FALSE(ks.try_private_op(ids[0], c).has_value()) << "offset " << off;
    EXPECT_FALSE(ks.pooled(ids[0])) << "offset " << off;
    EXPECT_EQ(ks.plaintext_count(), 0u) << "offset " << off;
    // The audit walk is the expensive check; sample it plus the format
    // boundaries (magic, nonce, first/last ciphertext, tag).
    if (off % 13 == 0 || off < kSealedHeaderBytes + 1 ||
        off + kAuthTagBytes + 1 >= blob_len) {
      EXPECT_EQ(auditor.audit(rig.kernel).secret.total(), 0u) << "offset " << off;
    }

    write_blob_byte(rig, ks, ids[0], off, orig);
  }
  EXPECT_EQ(ks.stats().refusals, blob_len);

  // Untampered again: the key still opens and round-trips.
  roundtrip(ks, ids, 0, rng);
}

TEST(EncryptedKeystore, UnavailableDomainRefusesAndNeverFallsBack) {
  Rig rig;
  sim::CoprocessorDomain domain(0xd3);
  EncryptedPoolKeystore ks(rig.kernel, *rig.proc, domain,
                           {.pool_pages = 3, .working_set = 2});
  const auto keys = make_keys(3);
  auto ids = ingest_all(rig, ks, {keys[0], keys[1]});
  util::Rng rng(8);
  roundtrip(ks, ids, 0, rng);
  ASSERT_TRUE(ks.plaintext(ids[0]));

  domain.power_off();

  // Cold key: refuse. Nothing materializes, nothing plaintext appears.
  const bn::Bignum c(0x51u);
  EXPECT_FALSE(ks.try_private_op(ids[1], c).has_value());
  EXPECT_FALSE(ks.pooled(ids[1]));
  EXPECT_GT(ks.stats().refusals, 0u);

  // Already-plaintext key: the hit path needs no domain traffic, so it
  // still serves (the working copy exists; refusing it would protect
  // nothing).
  roundtrip(ks, ids, 0, rng);

  // Ingest with the domain off: refused — the store will not hold a key
  // it could never reopen, and will NOT store it plaintext instead.
  rig.kernel.vfs().write_file(
      "/keys/late.pem",
      util::to_bytes(crypto::pem_encode_private_key(keys[2])), TaintTag::kPem);
  EXPECT_FALSE(ks.ingest_pem("/keys/late.pem").has_value());

  // Re-encrypt without a domain: fail AMNESIAC. The slot is scrubbed
  // (the key survives as its blob), never left plaintext or leaked.
  ks.reencrypt_all();
  EXPECT_EQ(ks.plaintext_count(), 0u);
  TaintAuditor auditor(rig.map);
  EXPECT_EQ(auditor.audit(rig.kernel).secret.total(), 0u);
  // And the scrubbed key is now unreachable until the domain returns.
  EXPECT_FALSE(ks.try_private_op(ids[0], c).has_value());
}

TEST(EncryptedKeystore, SealedBlobAuthenticatedFormatRejects) {
  sim::CoprocessorDomain domain(0xd4);
  std::vector<std::byte> pt(100);
  util::Rng rng(9);
  rng.fill_bytes(pt);
  const auto blob = seal_authenticated(pt, domain, 42);
  ASSERT_TRUE(blob.has_value());
  ASSERT_EQ(blob->size(), kSealedHeaderBytes + pt.size() + kAuthTagBytes);
  EXPECT_EQ(authenticated_nonce(*blob), 42u);

  // Round trip, both with and without a prefetched keystream.
  const auto open1 = unseal_authenticated(*blob, domain);
  ASSERT_TRUE(open1.has_value());
  EXPECT_EQ(*open1, pt);
  std::vector<std::byte> ks(pt.size());
  ASSERT_TRUE(domain.keystream(42, ks));
  const auto open2 = unseal_authenticated(*blob, domain, ks);
  ASSERT_TRUE(open2.has_value());
  EXPECT_EQ(*open2, pt);

  // Truncations reject (header-only, missing tag, empty).
  EXPECT_FALSE(unseal_authenticated({}, domain).has_value());
  EXPECT_FALSE(unseal_authenticated(std::span(*blob).first(kSealedHeaderBytes),
                                    domain)
                   .has_value());
  EXPECT_FALSE(
      unseal_authenticated(std::span(*blob).first(blob->size() - 1), domain)
          .has_value());

  // The legacy KSB1 magic is not an authenticated blob.
  auto wrong = *blob;
  wrong[3] = std::byte{'1'};
  EXPECT_FALSE(unseal_authenticated(wrong, domain).has_value());

  // A powered-off domain cannot seal or open anything.
  domain.power_off();
  EXPECT_FALSE(seal_authenticated(pt, domain, 43).has_value());
  EXPECT_FALSE(unseal_authenticated(*blob, domain).has_value());
}

// ---- host-side battery ----------------------------------------------------

TEST(EncryptedHostKeystore, RoundTripAndFaultInjectionEveryByte) {
  sim::CoprocessorDomain domain(0xe0);
  EncryptedHostKeystore ks(domain, {.working_set = 2});
  util::Rng rng(21);
  auto key = crypto::generate_rsa_key(rng, 512);
  const auto pub = key.public_key();
  const auto id = ks.add_key(key);
  ASSERT_TRUE(id.has_value());

  const bn::Bignum m(0x5157u);
  const auto expect = ks.sign(*id, m);
  ASSERT_TRUE(expect.has_value());

  const std::size_t blob_len = ks.blob_size(*id);
  ASSERT_GE(blob_len, kSealedHeaderBytes + kAuthTagBytes);
  for (std::size_t off = 0; off < blob_len; ++off) {
    ks.evict_all();  // force the cold (authenticate-then-unseal) path
    ASSERT_TRUE(ks.flip_blob_byte(*id, off));
    EXPECT_FALSE(ks.sign(*id, m).has_value()) << "offset " << off;
    EXPECT_FALSE(ks.pooled(*id)) << "offset " << off;
    ASSERT_TRUE(ks.flip_blob_byte(*id, off));  // restore
  }
  EXPECT_EQ(ks.stats().refusals, blob_len);
  const auto again = ks.sign(*id, m);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *expect);
  EXPECT_FALSE(ks.flip_blob_byte(*id, blob_len));  // out of range
}

TEST(EncryptedHostKeystore, DomainOffRefusesColdButServesPooled) {
  sim::CoprocessorDomain domain(0xe1);
  EncryptedHostKeystore ks(domain, {.working_set = 2});
  util::Rng rng(22);
  auto k0 = crypto::generate_rsa_key(rng, 512);
  auto k1 = crypto::generate_rsa_key(rng, 512);
  const auto id0 = ks.add_key(k0);
  const auto id1 = ks.add_key(k1);
  ASSERT_TRUE(id0 && id1);
  const bn::Bignum m(77);
  ASSERT_TRUE(ks.sign(*id0, m).has_value());  // pool id0
  ks.evict_all();
  ASSERT_TRUE(ks.sign(*id0, m).has_value());  // re-pool id0 only

  domain.power_off();
  EXPECT_FALSE(ks.sign(*id1, m).has_value());  // cold: refuse
  EXPECT_TRUE(ks.sign(*id0, m).has_value());   // pooled: no domain traffic
  EXPECT_FALSE(ks.add_key(k1).has_value());    // no plaintext-fallback ingest
  EXPECT_GT(ks.stats().refusals, 0u);
}

TEST(EncryptedHostKeystore, ConcurrentSigningSharedDomain) {
  sim::CoprocessorDomain domain(0xe2);
  EncryptedHostKeystore ks(domain, {.working_set = 2});
  util::Rng keygen(23);
  std::vector<keystore::KeyId> ids;
  std::vector<crypto::RsaPublicKey> pubs;
  for (int i = 0; i < 6; ++i) {
    auto key = crypto::generate_rsa_key(keygen, 512);
    pubs.push_back(key.public_key());
    const auto id = ks.add_key_scrubbing(key);
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }

  // 4 threads hammer 6 keys through a 2-entry working set: pins, waits,
  // evictions, and serialized misses all exercise the shared domain's
  // internal lock (the TSan target).
  std::vector<std::thread> workers;
  std::vector<int> failures(4, 0);
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      util::Rng rng(1000 + t);
      for (int i = 0; i < 32; ++i) {
        const std::size_t idx = rng.next_below(ids.size());
        std::vector<std::byte> secret(16);
        rng.fill_bytes(secret);
        const auto c = crypto::pad_encrypt(rng, pubs[idx], secret);
        if (!c) {
          ++failures[t];
          continue;
        }
        const auto m = ks.decrypt(ids[idx], *c);
        if (!m) {
          ++failures[t];
          continue;
        }
        const auto block = m->to_bytes_be(pubs[idx].modulus_bytes());
        const std::vector<std::byte> tail(
            block.end() - static_cast<std::ptrdiff_t>(secret.size()),
            block.end());
        if (tail != secret) ++failures[t];
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
  EXPECT_EQ(ks.stats().refusals, 0u);
  EXPECT_EQ(ks.pooled_count(), 2u);
  EXPECT_GT(domain.round_trips(), 0u);
}

}  // namespace
}  // namespace keyguard::keystore
