// Scanner/taint equivalence: the needle scanner and the shadow-taint
// auditor look at the same machine through different instruments, and
// their views must reconcile.
//
//  * Soundness: every full needle match IS key material, so its byte
//    range must be fully taint-covered. An uncovered hit would mean the
//    shadow lost a flow — an instrumentation bug, not a finding.
//  * Strict dominance (unprotected): the taint view sees strictly more
//    surviving bytes than the needle union — partial overwrites, dmp1/
//    dmq1/iqmp, DER, Montgomery R^2 are residue the paper's full-pattern
//    methodology undercounts.
//  * Protected end-state: the integrated defense must end with ALL
//    surviving key material on exactly one mlocked page — zero tainted
//    bytes in unallocated memory, page cache, kernel buffers, or swap.
#include <gtest/gtest.h>

#include "analysis/taint_auditor.hpp"
#include "analysis/taint_map.hpp"
#include "core/scenario.hpp"
#include "servers/apache_server.hpp"
#include "servers/ssh_server.hpp"

namespace keyguard::analysis {
namespace {

core::ScenarioConfig cfg(core::ProtectionLevel level) {
  core::ScenarioConfig c;
  c.level = level;
  c.mem_bytes = 16ull << 20;
  c.key_bits = 512;
  c.seed = 99;
  return c;
}

void run_ssh(core::Scenario& s, int connections) {
  servers::SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < connections; ++i) server.handle_connection(8 << 10);
}

void run_apache(core::Scenario& s, int requests) {
  servers::ApacheServer server(s.kernel(), s.apache_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  server.set_concurrency(8);
  for (int i = 0; i < requests; ++i) server.handle_request();
}

struct Views {
  std::unique_ptr<ShadowTaintMap> map;
  AuditReport report;
  CrossCheck cross;
};

template <typename Workload>
Views run_with_shadow(core::Scenario& s, Workload&& workload) {
  Views v;
  v.map = std::make_unique<ShadowTaintMap>(s.kernel());
  s.kernel().attach_taint(v.map.get());
  workload(s);
  const auto matches = s.scanner().scan_kernel(s.kernel());
  TaintAuditor auditor(*v.map);
  v.report = auditor.audit(s.kernel());
  v.cross = auditor.cross_check(s.scanner().patterns(), matches);
  s.kernel().attach_taint(nullptr);
  return v;
}

TEST(Equivalence, UnprotectedSshScannerHitsAreTaintCovered) {
  core::Scenario s(cfg(core::ProtectionLevel::kNone));
  const auto v = run_with_shadow(s, [](core::Scenario& sc) { run_ssh(sc, 12); });

  ASSERT_GT(v.cross.scanner_hits, 0u);
  EXPECT_TRUE(v.cross.all_hits_covered())
      << v.cross.uncovered.size() << " scanner hits with untainted bytes — "
      << "the shadow map lost a key flow";

  // The auditor sees strictly more residue than the needle scanner: the
  // full-pattern methodology is a lower bound on surviving key bytes.
  EXPECT_GT(v.map->stats().phys_tainted, v.cross.needle_visible_bytes);
  EXPECT_GT(v.cross.taint_only_bytes, 0u);

  // The workload left residue beyond live allocations (paper Fig 5).
  EXPECT_GT(v.report.bytes_unallocated, 0u);
  EXPECT_FALSE(v.report.single_locked_page_only());
}

TEST(Equivalence, UnprotectedApacheScannerHitsAreTaintCovered) {
  core::Scenario s(cfg(core::ProtectionLevel::kNone));
  const auto v = run_with_shadow(s, [](core::Scenario& sc) { run_apache(sc, 30); });

  ASSERT_GT(v.cross.scanner_hits, 0u);
  EXPECT_TRUE(v.cross.all_hits_covered());
  EXPECT_GT(v.map->stats().phys_tainted, v.cross.needle_visible_bytes);
  EXPECT_GT(v.cross.taint_only_bytes, 0u);
}

TEST(Equivalence, IntegratedSshEndsWithOneLockedTaintedPage) {
  core::Scenario s(cfg(core::ProtectionLevel::kIntegrated));
  const auto v = run_with_shadow(s, [](core::Scenario& sc) { run_ssh(sc, 12); });

  EXPECT_TRUE(v.report.single_locked_page_only())
      << TaintAuditor::format(v.report);
  EXPECT_EQ(v.report.bytes_unallocated, 0u);
  EXPECT_EQ(v.report.bytes_page_cache, 0u);
  EXPECT_EQ(v.report.bytes_kernel, 0u);
  EXPECT_EQ(v.report.bytes_swap, 0u);
  EXPECT_EQ(v.report.tainted_frames, 1u);
  EXPECT_EQ(v.report.mlocked_tainted_frames, 1u);
  // The scanner agrees: its hits all land on that page too.
  EXPECT_TRUE(v.cross.all_hits_covered());
  ASSERT_GT(v.cross.scanner_hits, 0u);
}

TEST(Equivalence, IntegratedApacheEndsWithOneLockedTaintedPage) {
  core::Scenario s(cfg(core::ProtectionLevel::kIntegrated));
  const auto v = run_with_shadow(s, [](core::Scenario& sc) { run_apache(sc, 30); });

  EXPECT_TRUE(v.report.single_locked_page_only())
      << TaintAuditor::format(v.report);
  EXPECT_TRUE(v.cross.all_hits_covered());
}

TEST(Equivalence, KernelLevelStillLeavesAllocatedDuplicates) {
  core::Scenario s(cfg(core::ProtectionLevel::kKernel));
  const auto v = run_with_shadow(s, [](core::Scenario& sc) { run_ssh(sc, 12); });

  // zero_on_free wipes unallocated residue, but live duplication (mont
  // caches, parse buffers still allocated) is untouched (paper Fig 14).
  EXPECT_EQ(v.report.bytes_unallocated, 0u);
  EXPECT_GT(v.report.bytes_allocated, 0u);
  EXPECT_FALSE(v.report.single_locked_page_only());
  EXPECT_TRUE(v.cross.all_hits_covered());
}

}  // namespace
}  // namespace keyguard::analysis
