#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace keyguard::sim {
namespace {

KernelConfig small_config() {
  KernelConfig cfg;
  cfg.mem_bytes = 4ull << 20;  // 4 MB is plenty for unit tests
  return cfg;
}

TEST(Kernel, SpawnGivesDistinctPids) {
  Kernel k(small_config());
  auto& a = k.spawn("a");
  auto& b = k.spawn("b");
  EXPECT_NE(a.pid(), b.pid());
  EXPECT_TRUE(a.alive());
  EXPECT_EQ(k.live_process_count(), 2u);
}

TEST(Kernel, MmapWriteReadRoundTrip) {
  Kernel k(small_config());
  auto& p = k.spawn("p");
  const VirtAddr a = k.mmap_anon(p, 3 * kPageSize, false);
  ASSERT_NE(a, 0u);
  const auto msg = util::to_bytes("hello across pages");
  k.mem_write(p, a + kPageSize - 5, msg);  // straddles a page boundary
  std::vector<std::byte> back(msg.size());
  k.mem_read(p, a + kPageSize - 5, back);
  EXPECT_EQ(back, msg);
}

TEST(Kernel, MmapPagesAreZeroed) {
  Kernel k(small_config());
  auto& p = k.spawn("p");
  const VirtAddr a = k.mmap_anon(p, kPageSize, false);
  std::vector<std::byte> buf(kPageSize);
  k.mem_read(p, a, buf);
  EXPECT_TRUE(util::all_zero(buf));
}

TEST(Kernel, HeapAllocWriteRead) {
  Kernel k(small_config());
  auto& p = k.spawn("p");
  const VirtAddr a = k.heap_alloc(p, 100);
  ASSERT_NE(a, 0u);
  const auto msg = util::to_bytes("secret");
  k.mem_write(p, a, msg);
  std::vector<std::byte> back(msg.size());
  k.mem_read(p, a, back);
  EXPECT_EQ(back, msg);
}

TEST(Kernel, ForkSharesPhysicalFrames) {
  Kernel k(small_config());
  auto& parent = k.spawn("parent");
  const VirtAddr a = k.mmap_anon(parent, kPageSize, false);
  k.mem_write(parent, a, util::to_bytes("shared"));
  auto& child = k.fork(parent, "child");
  const auto pf = k.translate(parent, a);
  const auto cf = k.translate(child, a);
  ASSERT_TRUE(pf && cf);
  EXPECT_EQ(*pf, *cf);  // same frame until someone writes
  EXPECT_EQ(k.allocator().refcount(*pf), 2u);
}

TEST(Kernel, CowBreaksOnChildWrite) {
  Kernel k(small_config());
  auto& parent = k.spawn("parent");
  const VirtAddr a = k.mmap_anon(parent, kPageSize, false);
  k.mem_write(parent, a, util::to_bytes("original"));
  auto& child = k.fork(parent, "child");

  k.mem_write(child, a, util::to_bytes("CHANGED!"));
  const auto pf = k.translate(parent, a);
  const auto cf = k.translate(child, a);
  ASSERT_TRUE(pf && cf);
  EXPECT_NE(*pf, *cf);  // child got a private copy
  // Parent still sees the original.
  std::vector<std::byte> buf(8);
  k.mem_read(parent, a, buf);
  EXPECT_EQ(buf, util::to_bytes("original"));
  k.mem_read(child, a, buf);
  EXPECT_EQ(buf, util::to_bytes("CHANGED!"));
  EXPECT_EQ(k.allocator().refcount(*pf), 1u);
  EXPECT_EQ(k.allocator().refcount(*cf), 1u);
}

TEST(Kernel, CowCopyDuplicatesWholePageContent) {
  // The key-multiplication mechanism: writing ONE byte of a shared page
  // duplicates EVERY byte of it — including key material.
  Kernel k(small_config());
  auto& parent = k.spawn("parent");
  const VirtAddr a = k.mmap_anon(parent, kPageSize, false);
  const auto secret = util::to_bytes("PRIVATE-KEY-BYTES");
  k.mem_write(parent, a + 100, secret);
  auto& child = k.fork(parent, "child");
  const std::byte one{0xFF};
  k.mem_write(child, a, {&one, 1});  // touch an unrelated byte
  // Both physical frames now carry the secret.
  const auto hits = util::find_all(k.memory().all(), secret);
  EXPECT_EQ(hits.size(), 2u);
}

TEST(Kernel, NoWriteMeansOneCopyAcrossManyForks) {
  // The defense's guarantee: read-only pages stay physically single.
  Kernel k(small_config());
  auto& parent = k.spawn("parent");
  const VirtAddr a = k.mmap_anon(parent, kPageSize, true);
  const auto secret = util::to_bytes("ALIGNED-KEY-PAGE");
  k.mem_write(parent, a, secret);
  for (int i = 0; i < 10; ++i) k.fork(parent, "child");
  EXPECT_EQ(util::find_all(k.memory().all(), secret).size(), 1u);
}

TEST(Kernel, LastWriterAfterForksOwnsFrame) {
  Kernel k(small_config());
  auto& parent = k.spawn("parent");
  const VirtAddr a = k.mmap_anon(parent, kPageSize, false);
  auto& c1 = k.fork(parent, "c1");
  auto& c2 = k.fork(parent, "c2");
  k.mem_write(c1, a, util::to_bytes("one"));
  k.mem_write(c2, a, util::to_bytes("two"));
  k.mem_write(parent, a, util::to_bytes("par"));
  // All three diverged; frames distinct, refcounts 1.
  const auto f0 = *k.translate(parent, a);
  const auto f1 = *k.translate(c1, a);
  const auto f2 = *k.translate(c2, a);
  EXPECT_NE(f0, f1);
  EXPECT_NE(f1, f2);
  EXPECT_NE(f0, f2);
  EXPECT_EQ(k.allocator().refcount(f0), 1u);
}

TEST(Kernel, ExitFreesPagesWithoutClearing) {
  Kernel k(small_config());
  auto& p = k.spawn("p");
  const VirtAddr a = k.heap_alloc(p, 64);
  const auto secret = util::to_bytes("residual-secret!");
  k.mem_write(p, a, secret);
  const auto frame = *k.translate(p, a);
  k.exit_process(p);
  EXPECT_FALSE(p.alive());
  EXPECT_TRUE(k.allocator().is_free(frame));
  // Data lives on in unallocated memory — the paper's core observation.
  EXPECT_FALSE(util::find_all(k.memory().all(), secret).empty());
}

TEST(Kernel, ExitWithZeroOnFreeScrubs) {
  KernelConfig cfg = small_config();
  cfg.zero_on_free = true;
  Kernel k(cfg);
  auto& p = k.spawn("p");
  const VirtAddr a = k.heap_alloc(p, 64);
  const auto secret = util::to_bytes("residual-secret!");
  k.mem_write(p, a, secret);
  k.exit_process(p);
  EXPECT_TRUE(util::find_all(k.memory().all(), secret).empty());
}

TEST(Kernel, ExecTearsDownAddressSpace) {
  Kernel k(small_config());
  auto& p = k.spawn("p");
  k.heap_alloc(p, 64);
  k.mmap_anon(p, kPageSize, false);
  EXPECT_GT(p.resident_pages(), 0u);
  k.exec(p);
  EXPECT_EQ(p.resident_pages(), 0u);
  EXPECT_TRUE(p.alive());
  // Heap is reset: next allocation starts at the base again.
  EXPECT_EQ(k.heap_alloc(p, 16), kHeapBase);
}

TEST(Kernel, ExitSharedFramesSurviveUntilLastOwner) {
  Kernel k(small_config());
  auto& parent = k.spawn("parent");
  const VirtAddr a = k.mmap_anon(parent, kPageSize, false);
  k.mem_write(parent, a, util::to_bytes("keep me"));
  auto& child = k.fork(parent, "child");
  const auto frame = *k.translate(parent, a);
  k.exit_process(child);
  EXPECT_FALSE(k.allocator().is_free(frame));  // parent still maps it
  std::vector<std::byte> buf(7);
  k.mem_read(parent, a, buf);
  EXPECT_EQ(buf, util::to_bytes("keep me"));
  k.exit_process(parent);
  EXPECT_TRUE(k.allocator().is_free(frame));
}

TEST(Kernel, MunmapFreesHot) {
  Kernel k(small_config());
  auto& p = k.spawn("p");
  const VirtAddr a = k.mmap_anon(p, 2 * kPageSize, false);
  const auto f0 = *k.translate(p, a);
  k.munmap(p, a, 2 * kPageSize);
  EXPECT_TRUE(k.allocator().is_free(f0));
  EXPECT_FALSE(k.translate(p, a).has_value());
}

TEST(Kernel, MlockReflectedInPteAndQuery) {
  Kernel k(small_config());
  auto& p = k.spawn("p");
  const VirtAddr a = k.mmap_anon(p, kPageSize, true, "keypage");
  const auto f = *k.translate(p, a);
  EXPECT_TRUE(k.frame_mlocked(f));
  k.mlock_range(p, a, kPageSize, false);
  EXPECT_FALSE(k.frame_mlocked(f));
  k.mlock_range(p, a, kPageSize, true);
  EXPECT_TRUE(k.frame_mlocked(f));
}

TEST(Kernel, FrameOwnersReverseMapping) {
  Kernel k(small_config());
  auto& parent = k.spawn("parent");
  const VirtAddr a = k.mmap_anon(parent, kPageSize, false);
  auto& child = k.fork(parent, "child");
  const auto f = *k.translate(parent, a);
  const auto owners = k.frame_owners(f);
  EXPECT_EQ(owners.size(), 2u);
  EXPECT_NE(std::find(owners.begin(), owners.end(), parent.pid()), owners.end());
  EXPECT_NE(std::find(owners.begin(), owners.end(), child.pid()), owners.end());
  k.exit_process(child);
  EXPECT_EQ(k.frame_owners(f).size(), 1u);
}

TEST(Kernel, ReadFilePopulatesPageCache) {
  Kernel k(small_config());
  auto& p = k.spawn("p");
  k.vfs().write_file("/etc/key.pem", util::to_bytes("PEM CONTENT HERE"));
  const auto data = k.read_file(p, "/etc/key.pem");
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(*data, util::to_bytes("PEM CONTENT HERE"));
  EXPECT_TRUE(k.page_cache().cached("/etc/key.pem"));
  // The file content is now findable in physical memory.
  EXPECT_FALSE(util::find_all(k.memory().all(), util::to_bytes("PEM CONTENT HERE")).empty());
}

TEST(Kernel, ReadFileMissingReturnsNullopt) {
  Kernel k(small_config());
  auto& p = k.spawn("p");
  EXPECT_FALSE(k.read_file(p, "/nope").has_value());
}

TEST(Kernel, ONocacheIgnoredWithoutKernelSupport) {
  Kernel k(small_config());  // o_nocache_supported = false
  auto& p = k.spawn("p");
  k.vfs().write_file("/key", util::to_bytes("SENSITIVE"));
  k.read_file(p, "/key", kOpenNoCache);
  EXPECT_TRUE(k.page_cache().cached("/key"));  // old kernel: flag is a no-op
}

TEST(Kernel, ONocacheEvictsAndClearsWithSupport) {
  KernelConfig cfg = small_config();
  cfg.o_nocache_supported = true;
  Kernel k(cfg);
  auto& p = k.spawn("p");
  k.vfs().write_file("/key", util::to_bytes("SENSITIVE"));
  const auto data = k.read_file(p, "/key", kOpenNoCache);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(*data, util::to_bytes("SENSITIVE"));
  EXPECT_FALSE(k.page_cache().cached("/key"));
  // Cleared, not just evicted: no trace in physical memory.
  EXPECT_TRUE(util::find_all(k.memory().all(), util::to_bytes("SENSITIVE")).empty());
}

TEST(Kernel, HeapClearFreeScrubsBytes) {
  Kernel k(small_config());
  auto& p = k.spawn("p");
  const VirtAddr a = k.heap_alloc(p, 64);
  const auto secret = util::to_bytes("BN_clear_free me");
  k.mem_write(p, a, secret);
  k.heap_clear_free(p, a);
  EXPECT_TRUE(util::find_all(k.memory().all(), secret).empty());
}

TEST(Kernel, HeapFreeLeavesBytes) {
  Kernel k(small_config());
  auto& p = k.spawn("p");
  const VirtAddr a = k.heap_alloc(p, 64);
  const auto secret = util::to_bytes("plain free leaves");
  k.mem_write(p, a, secret);
  k.heap_free(p, a);
  EXPECT_FALSE(util::find_all(k.memory().all(), secret).empty());
}

TEST(Kernel, MemZeroBreaksCow) {
  Kernel k(small_config());
  auto& parent = k.spawn("parent");
  const VirtAddr a = k.mmap_anon(parent, kPageSize, false);
  k.mem_write(parent, a, util::to_bytes("Z"));
  auto& child = k.fork(parent, "child");
  k.mem_zero(child, a, 1);
  std::vector<std::byte> buf(1);
  k.mem_read(parent, a, buf);
  EXPECT_EQ(buf[0], std::byte{'Z'});  // parent unaffected
  k.mem_read(child, a, buf);
  EXPECT_EQ(buf[0], std::byte{0});
}

TEST(Kernel, ForkInheritsHeapLayout) {
  Kernel k(small_config());
  auto& parent = k.spawn("parent");
  const VirtAddr a = k.heap_alloc(parent, 40);
  k.mem_write(parent, a, util::to_bytes("inherited"));
  auto& child = k.fork(parent, "child");
  std::vector<std::byte> buf(9);
  k.mem_read(child, a, buf);
  EXPECT_EQ(buf, util::to_bytes("inherited"));
  EXPECT_EQ(k.heap_chunk_size(child, a), k.heap_chunk_size(parent, a));
}

TEST(Kernel, TranslateUnmappedIsNullopt) {
  Kernel k(small_config());
  auto& p = k.spawn("p");
  EXPECT_FALSE(k.translate(p, 0xdead0000).has_value());
}

}  // namespace
}  // namespace keyguard::sim
