#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace keyguard::util {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ZeroWorkerPoolRunsSerially) {
  // hardware_concurrency == 1 machines get a workerless pool; everything
  // must still run (inline, on the caller).
  ThreadPool pool(0);
  std::atomic<int> sum{0};
  pool.parallel_for(64, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
  pool.submit([&] { sum.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 64 * 63 / 2 + 1);
}

TEST(ThreadPool, MoreIterationsThanThreadsSelfBalance) {
  ThreadPool pool(2);
  constexpr std::size_t kN = 37;  // not a multiple of participants
  std::atomic<std::size_t> done{0};
  pool.parallel_for(kN, [&](std::size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), kN);
}

TEST(ThreadPool, SubmitAndWaitIdleDrains) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ReusableAcrossManyParallelFors) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> n{0};
    pool.parallel_for(16, [&](std::size_t) { n.fetch_add(1); });
    ASSERT_EQ(n.load(), 16u) << "round " << round;
  }
}

TEST(ThreadPool, SharedPoolSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

TEST(ThreadPool, ParallelForBlocksCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1003;  // not a multiple of any block size below
  for (const std::size_t block : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{5000}}) {
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for_blocks(kN, block, [&](std::size_t begin, std::size_t end) {
      ASSERT_LE(end, kN);
      ASSERT_LT(begin, end);
      ASSERT_LE(end - begin, block);
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "block " << block << ", index " << i;
    }
  }
}

TEST(ThreadPool, ParallelForBlocksZeroWorkersRunsInline) {
  ThreadPool pool(0);
  std::size_t sum = 0;  // no atomics needed: everything runs on this thread
  pool.parallel_for_blocks(100, 9, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 100u * 99u / 2u);
  pool.parallel_for_blocks(0, 4, [&](std::size_t, std::size_t) { sum = 0; });
  EXPECT_EQ(sum, 100u * 99u / 2u);  // n == 0: body never runs
}

TEST(ThreadPool, ParallelForBlocksZeroBlockTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<std::size_t> n{0};
  pool.parallel_for_blocks(25, 0, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(end, begin + 1);
    n.fetch_add(end - begin);
  });
  EXPECT_EQ(n.load(), 25u);
}

}  // namespace
}  // namespace keyguard::util
