// Incremental-sweep equivalence battery.
//
// Contract under test: scan_kernel_incremental (journal-driven delta
// rescans spliced into the previous sweep's cache) returns results
// byte-for-byte identical — offsets, parts, frame states, owners,
// provenance — to a fresh full scan_kernel of the same kernel state, no
// matter what mutated in between. The storm rounds throw fork/COW,
// eviction/swap-in, scrubbing, exits, heap churn, and page-cache reads at
// it; DirtyFrameJournal unit tests pin the hook → bitmap semantics.
#include "scan/dirty_journal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "crypto/pem.hpp"
#include "scan/key_scanner.hpp"
#include "sslsim/ssl_library.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace keyguard::scan {
namespace {

using sslsim::SslLibrary;

const crypto::RsaPrivateKey& test_key() {
  static const crypto::RsaPrivateKey k = [] {
    util::Rng rng(31337);
    return crypto::generate_rsa_key(rng, 512);
  }();
  return k;
}

void expect_same_matches(const std::vector<MemoryMatch>& incr,
                         const std::vector<MemoryMatch>& full,
                         const std::string& label) {
  ASSERT_EQ(incr.size(), full.size()) << label;
  for (std::size_t i = 0; i < incr.size(); ++i) {
    EXPECT_EQ(incr[i].phys_offset, full[i].phys_offset) << label << ", " << i;
    EXPECT_EQ(incr[i].part, full[i].part) << label << ", " << i;
    EXPECT_EQ(incr[i].frame, full[i].frame) << label << ", " << i;
    EXPECT_EQ(incr[i].state, full[i].state) << label << ", " << i;
    EXPECT_EQ(incr[i].owners, full[i].owners) << label << ", " << i;
    EXPECT_EQ(incr[i].provenance, full[i].provenance) << label << ", " << i;
  }
}

TEST(DirtyFrameJournal, MarksStoreCopyClearByFrame) {
  DirtyFrameJournal j(16 * sim::kPageSize);
  EXPECT_EQ(j.frame_count(), 16u);
  EXPECT_EQ(j.dirty_count(), 0u);
  j.on_phys_store(100, 10, sim::TaintTag::kClean);  // frame 0
  j.on_phys_copy(5 * sim::kPageSize - 1, 0, 2);     // straddles frames 4,5
  j.on_phys_clear(9 * sim::kPageSize, sim::kPageSize);  // frame 9 exactly
  EXPECT_EQ(j.snapshot(), (std::vector<std::size_t>{0, 4, 5, 9}));
  EXPECT_EQ(j.store_events(), 3u);
  const auto drained = j.drain();
  EXPECT_EQ(drained, (std::vector<std::size_t>{0, 4, 5, 9}));
  EXPECT_EQ(j.dirty_count(), 0u);
  EXPECT_TRUE(j.snapshot().empty());
}

TEST(DirtyFrameJournal, SwapSlotEventsDoNotMarkButSwapInDoes) {
  DirtyFrameJournal j(8 * sim::kPageSize);
  j.on_swap_store(3, 2 * sim::kPageSize);  // page copied OUT: RAM unchanged
  j.on_swap_clear(3);
  EXPECT_EQ(j.dirty_count(), 0u);
  EXPECT_EQ(j.swap_slot_events(), 2u);
  j.on_swap_load(6 * sim::kPageSize, 3);  // page landed IN: frame 6 dirty
  EXPECT_EQ(j.snapshot(), (std::vector<std::size_t>{6}));
}

TEST(DirtyFrameJournal, ZeroLengthAndOutOfRangeAreSafe) {
  DirtyFrameJournal j(4 * sim::kPageSize);
  j.on_phys_store(0, 0, sim::TaintTag::kClean);  // zero-length: no mark
  EXPECT_EQ(j.dirty_count(), 0u);
  j.on_phys_store(100 * sim::kPageSize, 64, sim::TaintTag::kClean);  // clamped
  EXPECT_EQ(j.dirty_count(), 0u);
  j.mark_all();
  EXPECT_EQ(j.dirty_count(), 4u);
  j.clear();
  EXPECT_EQ(j.dirty_count(), 0u);
}

TEST(ScanIncremental, PrimingSweepEqualsFullScan) {
  sim::KernelConfig cfg;
  cfg.mem_bytes = 8ull << 20;
  sim::Kernel k(cfg);
  DirtyFrameJournal journal(cfg.mem_bytes);
  k.attach_taint(&journal);
  auto& p = k.spawn("victim");
  const sim::VirtAddr a = k.heap_alloc(p, 4096);
  k.mem_write(p, a, SslLibrary::limb_image(test_key().p));

  KeyScanner scanner(test_key());
  SweepCache cache;
  ScanStats stats;
  const auto incr = scanner.scan_kernel_incremental(k, journal, cache, &stats);
  const auto full = scanner.scan_kernel(k);
  expect_same_matches(incr, full, "prime");
  EXPECT_FALSE(stats.incremental);  // the prime is a full sweep
  EXPECT_TRUE(cache.primed);
  EXPECT_EQ(journal.dirty_count(), 0u);  // backlog consumed by the prime
}

TEST(ScanIncremental, NoDirtFramesRescansNothingButRefreshesMetadata) {
  sim::KernelConfig cfg;
  cfg.mem_bytes = 8ull << 20;
  sim::Kernel k(cfg);
  DirtyFrameJournal journal(cfg.mem_bytes);
  k.attach_taint(&journal);
  auto& parent = k.spawn("parent");
  const sim::VirtAddr a = k.mmap_anon(parent, sim::kPageSize, false);
  k.mem_write(parent, a, SslLibrary::limb_image(test_key().q));

  KeyScanner scanner(test_key());
  SweepCache cache;
  scanner.scan_kernel_incremental(k, journal, cache);

  // fork() shares the frame COW — NO byte changes, but owners change.
  // The delta sweep must rescan zero bytes yet still report both pids.
  auto& child = k.fork(parent, "child");
  (void)child;
  ScanStats stats;
  const auto incr = scanner.scan_kernel_incremental(k, journal, cache, &stats);
  const auto full = scanner.scan_kernel(k);
  expect_same_matches(incr, full, "fork, no dirty bytes");
  EXPECT_TRUE(stats.incremental);
  EXPECT_EQ(stats.dirty_frames, 0u);
  EXPECT_EQ(stats.bytes_scanned, 0u);
  ASSERT_EQ(incr.size(), 1u);
  EXPECT_EQ(incr[0].owners.size(), 2u);
}

TEST(ScanIncremental, SeamStraddlingWriteRevalidatesNeighbours) {
  // A needle planted ACROSS a physical frame boundary, then half-destroyed
  // by a write that dirties only ONE of the two frames: the seam-extension
  // window must still remove the stale cached match. Planted directly in
  // physical memory (virtual adjacency does not give physical adjacency),
  // with the journal hooks fired by hand at the exact offsets.
  sim::KernelConfig cfg;
  cfg.mem_bytes = 4ull << 20;
  sim::Kernel k(cfg);
  DirtyFrameJournal journal(cfg.mem_bytes);
  const auto needle = SslLibrary::limb_image(test_key().p);
  ASSERT_EQ(needle.size(), 32u);
  // First byte 16 bytes before the frame 7/8 boundary: the tail crosses.
  const std::size_t at = 8 * sim::kPageSize - 16;
  auto plant = [&] {
    auto left = k.memory().page(7);
    auto right = k.memory().page(8);
    std::copy(needle.begin(), needle.begin() + 16,
              left.begin() + (sim::kPageSize - 16));
    std::copy(needle.begin() + 16, needle.end(), right.begin());
    journal.on_phys_store(at, needle.size(), sim::TaintTag::kKeyP);
  };
  plant();

  KeyScanner scanner(test_key());
  SweepCache cache;
  scanner.scan_kernel_incremental(k, journal, cache);
  ASSERT_EQ(cache.raw.size(), 1u);
  EXPECT_EQ(cache.raw[0].offset, at);

  // Destroy one TAIL byte — only frame 8 reports dirty. The cached match
  // starts in frame 7, inside the left-extension window of frame 8's run.
  k.memory().page(8)[3] = std::byte{0x5A};
  journal.on_phys_store(8 * sim::kPageSize + 3, 1, sim::TaintTag::kClean);
  ScanStats stats;
  const auto incr = scanner.scan_kernel_incremental(k, journal, cache, &stats);
  const auto full = scanner.scan_kernel(k);
  expect_same_matches(incr, full, "tail byte destroyed");
  EXPECT_TRUE(incr.empty());
  EXPECT_EQ(stats.dirty_frames, 1u);

  // Re-plant, prime, then destroy a HEAD byte — only frame 7 reports.
  plant();
  scanner.scan_kernel_incremental(k, journal, cache);
  ASSERT_EQ(cache.raw.size(), 1u);
  k.memory().page(7)[sim::kPageSize - 15] = std::byte{0x5A};
  journal.on_phys_store(at + 1, 1, sim::TaintTag::kClean);
  const auto incr2 = scanner.scan_kernel_incremental(k, journal, cache);
  expect_same_matches(incr2, scanner.scan_kernel(k), "head byte destroyed");
  EXPECT_TRUE(incr2.empty());
}

TEST(ScanIncremental, LastFrameSeamWindowClampsAtEndOfMemory) {
  // The end-of-RAM boundary case. The longest needle in the pattern set
  // is the full PEM text, so the seam reach (max_len - 1) is hundreds of
  // bytes; plant that needle so it ENDS at the very last byte of physical
  // memory, plus a limb needle straddling the final frame boundary. Dirt
  // in the LAST frame makes the affected interval's right window
  // hi + reach overshoot the buffer — it must clamp to exactly
  // buffer.size() and still kill/re-derive matches touching the last
  // byte; dirt in the SECOND-TO-LAST frame must revalidate the straddler
  // while the end-of-RAM match survives as a spliced survivor.
  sim::KernelConfig cfg;
  cfg.mem_bytes = 4ull << 20;
  sim::Kernel k(cfg);
  DirtyFrameJournal journal(cfg.mem_bytes);
  const std::size_t mem = cfg.mem_bytes;
  const std::size_t last = mem / sim::kPageSize - 1;

  const auto pem = util::to_bytes(crypto::pem_encode_private_key(test_key()));
  ASSERT_GT(pem.size(), 64u);  // the max-length pattern by a wide margin
  ASSERT_LT(pem.size(), sim::kPageSize);
  const auto limb = SslLibrary::limb_image(test_key().q);

  // Physical plant across frame boundaries, journal hook fired by hand.
  auto poke = [&](std::size_t at, std::span<const std::byte> bytes) {
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      const std::size_t off = at + i;
      k.memory().page(off / sim::kPageSize)[off % sim::kPageSize] = bytes[i];
    }
    journal.on_phys_store(at, bytes.size(), sim::TaintTag::kClean);
  };

  const std::size_t pem_at = mem - pem.size();  // ends at the last byte
  const std::size_t limb_at = last * sim::kPageSize - 16;  // straddles
  ASSERT_LT(limb_at, pem_at);
  poke(pem_at, pem);
  poke(limb_at, limb);

  KeyScanner scanner(test_key());
  SweepCache cache;
  scanner.scan_kernel_incremental(k, journal, cache);
  ASSERT_EQ(cache.raw.size(), 2u);
  EXPECT_EQ(cache.raw[0].offset, limb_at);
  EXPECT_EQ(cache.raw[1].offset, pem_at);

  // Kill the very last byte of RAM: only the final frame reports dirty,
  // the rescan window is [d0 - reach, mem) with window_end clamped AT mem.
  const std::byte save = k.memory().page(last)[sim::kPageSize - 1];
  poke(mem - 1, std::vector<std::byte>{std::byte{0x5A}});
  ScanStats stats;
  const auto incr = scanner.scan_kernel_incremental(k, journal, cache, &stats);
  expect_same_matches(incr, scanner.scan_kernel(k), "last byte destroyed");
  EXPECT_EQ(stats.dirty_frames, 1u);
  ASSERT_EQ(incr.size(), 1u);  // the straddler was re-derived, the PEM died
  EXPECT_EQ(incr[0].phys_offset, limb_at);

  // Restore it: the rescan must re-find a match ending EXACTLY at
  // buffer.size() — the off-by-one this test exists to pin.
  poke(mem - 1, std::vector<std::byte>{save});
  const auto incr2 = scanner.scan_kernel_incremental(k, journal, cache);
  expect_same_matches(incr2, scanner.scan_kernel(k), "last byte restored");
  ASSERT_EQ(incr2.size(), 2u);
  EXPECT_EQ(incr2[1].phys_offset, pem_at);

  // Head-byte kill in the SECOND-TO-LAST frame: the interval ends at the
  // last frame's start, the right seam window reaches into it, and the
  // end-of-RAM PEM match — outside the interval — survives the splice.
  poke(limb_at, std::vector<std::byte>{std::byte{0x5A}});
  const auto incr3 = scanner.scan_kernel_incremental(k, journal, cache);
  expect_same_matches(incr3, scanner.scan_kernel(k), "straddler head killed");
  ASSERT_EQ(incr3.size(), 1u);
  EXPECT_EQ(incr3[0].phys_offset, pem_at);

  // And back: the straddling limb re-derives from second-to-last-frame
  // dirt alone.
  poke(limb_at, std::span(limb).first(1));
  const auto incr4 = scanner.scan_kernel_incremental(k, journal, cache);
  expect_same_matches(incr4, scanner.scan_kernel(k), "straddler restored");
  EXPECT_EQ(incr4.size(), 2u);
}

// The storm: every mutation class the sim offers, fired in randomized
// rounds, with incremental-vs-fresh-full equivalence checked after every
// round. This is the test that makes "the delta sweep is exact" an
// enforced property rather than an argument in a design doc.
TEST(ScanIncremental, ForkEvictScrubStormStaysIdentical) {
  sim::KernelConfig cfg;
  cfg.mem_bytes = 16ull << 20;
  cfg.swap_pages = 512;
  cfg.page_cache_limit_pages = 64;
  sim::Kernel k(cfg);
  DirtyFrameJournal journal(cfg.mem_bytes);
  k.attach_taint(&journal);

  const auto& key = test_key();
  const std::string pem = crypto::pem_encode_private_key(key);
  k.vfs().write_file("/etc/key.pem", util::to_bytes(pem));

  KeyScanner scanner(key);
  SweepCache cache;
  util::Rng rng(777);

  std::vector<sim::Pid> live;
  auto spawn_worker = [&] {
    auto& p = k.spawn("worker" + std::to_string(live.size()));
    live.push_back(p.pid());
    const sim::VirtAddr h = k.heap_alloc(p, 8192, "keybuf");
    if (h != 0) {
      const auto& img = rng.next_below(2) == 0
                            ? SslLibrary::limb_image(key.p)
                            : SslLibrary::limb_image(key.d);
      k.mem_write(p, h + rng.next_below(4096), img,
                  sim::TaintTag::kKeyP);
    }
    return &p;
  };
  spawn_worker();
  scanner.scan_kernel_incremental(k, journal, cache);  // prime

  for (int round = 0; round < 30; ++round) {
    // 1-3 mutations per round, drawn from the full menu.
    const int muts = 1 + static_cast<int>(rng.next_below(3));
    for (int m = 0; m < muts; ++m) {
      sim::Process* p = nullptr;
      if (!live.empty()) p = k.find_process(live[rng.next_below(live.size())]);
      switch (rng.next_below(8)) {
        case 0:  // plant another key image
          spawn_worker();
          break;
        case 1:  // fork: COW sharing, owner churn without byte churn
          if (p != nullptr) {
            auto& c = k.fork(*p, "child");
            live.push_back(c.pid());
          }
          break;
        case 2:  // exit: residue in freed frames
          if (p != nullptr && live.size() > 1) {
            k.exit_process(*p);
            live.erase(std::find(live.begin(), live.end(), p->pid()));
          }
          break;
        case 3:  // eviction: frames vacated UNCLEARED, duplicates on swap
          if (p != nullptr) k.swap_out_pages(*p, 2 + rng.next_below(4));
          break;
        case 4:  // swap-in via read after eviction
          if (p != nullptr) {
            std::byte b;
            const auto& pt = p->page_table();
            if (!pt.empty()) k.mem_read(*p, pt.begin()->first, {&b, 1});
          }
          break;
        case 5:  // scrub: explicit zeroing destroys matches
          if (p != nullptr) {
            const auto& pt = p->page_table();
            if (!pt.empty()) {
              // Stay inside the first mapped page: offset + length < 4096.
              k.mem_zero(*p, pt.begin()->first + rng.next_below(2048), 1500);
            }
          }
          break;
        case 6:  // page-cache churn: PEM copies appear/evict
          if (p != nullptr) k.read_file(*p, "/etc/key.pem");
          break;
        default:  // plain data churn overwrites residue
          if (p != nullptr) {
            const auto& pt = p->page_table();
            if (!pt.empty()) {
              // Stay inside the first mapped page: offset + length < 4096.
              std::vector<std::byte> noise(256 + rng.next_below(1024));
              rng.fill_bytes(noise);
              k.mem_write(*p, pt.begin()->first + rng.next_below(1024), noise);
            }
          }
          break;
      }
    }
    ScanStats stats;
    const auto incr = scanner.scan_kernel_incremental(k, journal, cache, &stats);
    const auto full = scanner.scan_kernel(k);
    expect_same_matches(incr, full, "storm round " + std::to_string(round));
    EXPECT_TRUE(stats.incremental) << round;
    EXPECT_EQ(journal.dirty_count(), 0u) << round;  // drained by the sweep
  }
}

TEST(ScanIncremental, CacheInvalidationForcesReprime) {
  sim::KernelConfig cfg;
  cfg.mem_bytes = 4ull << 20;
  sim::Kernel k(cfg);
  DirtyFrameJournal journal(cfg.mem_bytes);
  k.attach_taint(&journal);
  auto& p = k.spawn("victim");
  const sim::VirtAddr a = k.heap_alloc(p, 4096);
  k.mem_write(p, a, SslLibrary::limb_image(test_key().q));

  KeyScanner scanner(test_key());
  SweepCache cache;
  scanner.scan_kernel_incremental(k, journal, cache);
  ASSERT_TRUE(cache.primed);
  cache.invalidate();
  EXPECT_FALSE(cache.primed);
  ScanStats stats;
  const auto incr = scanner.scan_kernel_incremental(k, journal, cache, &stats);
  EXPECT_FALSE(stats.incremental);  // re-prime, not a delta
  expect_same_matches(incr, scanner.scan_kernel(k), "after invalidate");
}

}  // namespace
}  // namespace keyguard::scan
