#include "sim/page_alloc.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/bytes.hpp"

namespace keyguard::sim {
namespace {

class PageAllocTest : public ::testing::Test {
 protected:
  PageAllocTest() : mem_(kPageSize * 64), alloc_(mem_, {}, util::Rng(7)) {}
  PhysicalMemory mem_;
  PageAllocator alloc_;
};

TEST_F(PageAllocTest, FreshAllocatorHasAllFramesFree) {
  EXPECT_EQ(alloc_.free_count(), 64u);
  for (FrameNumber f = 0; f < 64; ++f) EXPECT_TRUE(alloc_.is_free(f));
}

TEST_F(PageAllocTest, AllocMarksStateAndRefcount) {
  const auto f = alloc_.alloc(FrameState::kUserAnon);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(alloc_.state(*f), FrameState::kUserAnon);
  EXPECT_EQ(alloc_.refcount(*f), 1u);
  EXPECT_EQ(alloc_.free_count(), 63u);
}

TEST_F(PageAllocTest, ExhaustionReturnsNullopt) {
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(alloc_.alloc(FrameState::kKernel).has_value());
  }
  EXPECT_FALSE(alloc_.alloc(FrameState::kKernel).has_value());
}

TEST_F(PageAllocTest, UserAllocIsZeroed) {
  // Dirty a frame via a kernel alloc, free it hot, re-alloc as user.
  const auto f = alloc_.alloc(FrameState::kKernel);
  ASSERT_TRUE(f);
  mem_.page(*f)[123] = std::byte{0x5A};
  alloc_.free(*f, FreeKind::kHot);
  const auto g = alloc_.alloc(FrameState::kUserAnon);
  ASSERT_TRUE(g);
  EXPECT_EQ(*g, *f);  // hot LIFO hands the same frame back
  EXPECT_TRUE(util::all_zero(mem_.page(*g)));
}

TEST_F(PageAllocTest, KernelAllocIsNotZeroed) {
  // The disclosure channel: kernel allocations see stale bytes.
  const auto f = alloc_.alloc(FrameState::kUserAnon);
  ASSERT_TRUE(f);
  mem_.page(*f)[99] = std::byte{0x77};
  alloc_.free(*f, FreeKind::kHot);
  const auto g = alloc_.alloc(FrameState::kKernel);
  ASSERT_TRUE(g);
  EXPECT_EQ(*g, *f);
  EXPECT_EQ(mem_.page(*g)[99], std::byte{0x77});
}

TEST_F(PageAllocTest, ZeroOnFreePolicyClearsAtFree) {
  alloc_.set_policy(PageAllocPolicy{.zero_on_free = true});
  const auto f = alloc_.alloc(FrameState::kKernel);
  ASSERT_TRUE(f);
  mem_.page(*f)[99] = std::byte{0x77};
  alloc_.free(*f, FreeKind::kBulk);
  EXPECT_TRUE(util::all_zero(mem_.page(*f)));
  EXPECT_EQ(alloc_.stats().pages_zeroed_on_free, 1u);
}

TEST_F(PageAllocTest, HotFreesAreLifoReused) {
  const auto a = alloc_.alloc(FrameState::kKernel);
  const auto b = alloc_.alloc(FrameState::kKernel);
  ASSERT_TRUE(a && b);
  alloc_.free(*a, FreeKind::kHot);
  alloc_.free(*b, FreeKind::kHot);
  EXPECT_EQ(alloc_.alloc(FrameState::kKernel), b);  // most recent first
  EXPECT_EQ(alloc_.alloc(FrameState::kKernel), a);
}

TEST_F(PageAllocTest, BulkFreesEscapeImmediateReuse) {
  // Allocate everything, bulk-free half, hot-free one: the hot one comes
  // back first; the bulk ones mix into the random pool.
  std::vector<FrameNumber> frames;
  for (int i = 0; i < 64; ++i) frames.push_back(*alloc_.alloc(FrameState::kKernel));
  for (int i = 0; i < 32; ++i) alloc_.free(frames[i], FreeKind::kBulk);
  alloc_.free(frames[40], FreeKind::kHot);
  EXPECT_EQ(alloc_.alloc(FrameState::kKernel), frames[40]);
}

TEST_F(PageAllocTest, RefcountSharingAndLastUnrefFrees) {
  const auto f = alloc_.alloc(FrameState::kUserAnon);
  ASSERT_TRUE(f);
  alloc_.ref(*f);
  alloc_.ref(*f);
  EXPECT_EQ(alloc_.refcount(*f), 3u);
  EXPECT_EQ(alloc_.unref(*f), 2u);
  EXPECT_EQ(alloc_.unref(*f), 1u);
  EXPECT_FALSE(alloc_.is_free(*f));
  EXPECT_EQ(alloc_.unref(*f), 0u);
  EXPECT_TRUE(alloc_.is_free(*f));
}

TEST_F(PageAllocTest, StatsCount) {
  const auto f = alloc_.alloc(FrameState::kUserAnon);
  alloc_.free(*f);
  EXPECT_EQ(alloc_.stats().allocs, 1u);
  EXPECT_EQ(alloc_.stats().frees, 1u);
  EXPECT_EQ(alloc_.stats().pages_zeroed_on_user_alloc, 1u);
}

TEST_F(PageAllocTest, AllFramesDistinctUntilExhaustion) {
  std::set<FrameNumber> seen;
  for (int i = 0; i < 64; ++i) {
    const auto f = alloc_.alloc(FrameState::kUserAnon);
    ASSERT_TRUE(f);
    EXPECT_TRUE(seen.insert(*f).second) << "frame handed out twice";
  }
}

TEST_F(PageAllocTest, DeterministicForSeed) {
  PhysicalMemory m2(kPageSize * 64);
  PageAllocator a2(m2, {}, util::Rng(7));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(alloc_.alloc(FrameState::kKernel), a2.alloc(FrameState::kKernel));
  }
}

TEST_F(PageAllocTest, ContentSurvivesBulkFreeWithoutPolicy) {
  // The central un-hygienic behaviour: data outlives deallocation.
  const auto f = alloc_.alloc(FrameState::kUserAnon);
  ASSERT_TRUE(f);
  mem_.page(*f)[0] = std::byte{0xEE};
  alloc_.free(*f, FreeKind::kBulk);
  EXPECT_TRUE(alloc_.is_free(*f));
  EXPECT_EQ(mem_.page(*f)[0], std::byte{0xEE});
}

}  // namespace
}  // namespace keyguard::sim
