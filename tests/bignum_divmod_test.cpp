// Division is the easiest bignum routine to get subtly wrong (Knuth D's
// qhat correction paths fire rarely), so it gets a dedicated suite with
// adversarial divisors plus randomized reconstruction checks.
#include "bignum/bignum.hpp"

#include <gtest/gtest.h>

#include "bignum/prime.hpp"
#include "util/rng.hpp"

namespace keyguard::bn {
namespace {

void check_divmod(const Bignum& a, const Bignum& b) {
  const auto [q, r] = Bignum::divmod(a, b);
  EXPECT_LT(r, b) << "a=" << a.to_hex() << " b=" << b.to_hex();
  EXPECT_EQ(q * b + r, a) << "a=" << a.to_hex() << " b=" << b.to_hex();
}

TEST(DivMod, SmallKnownValues) {
  const auto [q, r] = Bignum::divmod(Bignum(17), Bignum(5));
  EXPECT_EQ(q.to_decimal(), "3");
  EXPECT_EQ(r.to_decimal(), "2");
}

TEST(DivMod, DividendSmallerThanDivisor) {
  const auto [q, r] = Bignum::divmod(Bignum(3), Bignum(10));
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r, Bignum(3));
}

TEST(DivMod, ExactDivision) {
  const Bignum a = *Bignum::from_decimal("1000000000000000000000000");
  const Bignum b = *Bignum::from_decimal("1000000000000");
  const auto [q, r] = Bignum::divmod(a, b);
  EXPECT_EQ(q.to_decimal(), "1000000000000");
  EXPECT_TRUE(r.is_zero());
}

TEST(DivMod, SingleLimbDivisorFastPath) {
  const Bignum a = *Bignum::from_decimal("123456789012345678901234567890123456789");
  check_divmod(a, Bignum(7));
  check_divmod(a, Bignum(1));
  check_divmod(a, *Bignum::from_hex("ffffffffffffffff"));
}

TEST(DivMod, DivisorTopLimbHighBitSet) {
  // Already normalized (shift == 0) path.
  const Bignum b = *Bignum::from_hex("8000000000000000000000000000000b");
  const Bignum a = b * b + *Bignum::from_hex("1234");
  check_divmod(a, b);
}

TEST(DivMod, DivisorNeedsMaxNormalizationShift) {
  // Top limb == 1: shift == 63 path.
  const Bignum b = *Bignum::from_hex("10000000000000000000000000000001");
  const Bignum a = b.mul_limb(0xfedcba9876543210ULL) + Bignum(99);
  check_divmod(a, b);
}

TEST(DivMod, QhatCorrectionTrigger) {
  // Classic Knuth D stress: dividend limbs all ones, divisor crafted so the
  // initial qhat over-estimates.
  const Bignum a = *Bignum::from_hex(
      "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  const Bignum b = *Bignum::from_hex("ffffffffffffffff0000000000000001");
  check_divmod(a, b);
}

TEST(DivMod, RandomizedReconstruction) {
  util::Rng rng(1234);
  for (int i = 0; i < 300; ++i) {
    const std::size_t abits = 1 + rng.next_below(768);
    const std::size_t bbits = 1 + rng.next_below(512);
    const Bignum a = random_bits(rng, abits);
    const Bignum b = random_bits(rng, bbits);
    if (b.is_zero()) continue;
    check_divmod(a, b);
  }
}

TEST(DivMod, RandomizedNearMultiples) {
  // a = q*b + r with tiny r stresses the correction branches.
  util::Rng rng(4321);
  for (int i = 0; i < 100; ++i) {
    const Bignum b = random_bits(rng, 128 + rng.next_below(256));
    const Bignum q = random_bits(rng, 64 + rng.next_below(128));
    for (const std::uint64_t delta : {0ULL, 1ULL, 2ULL}) {
      const Bignum a = q * b + Bignum(delta);
      const auto [qq, rr] = Bignum::divmod(a, b);
      EXPECT_EQ(qq, q);
      EXPECT_EQ(rr, Bignum(delta));
    }
  }
}

TEST(DivMod, ModuloMatchesDivmod) {
  util::Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    const Bignum a = random_bits(rng, 300);
    const Bignum b = random_bits(rng, 150);
    EXPECT_EQ(a % b, Bignum::divmod(a, b).remainder);
    EXPECT_EQ(a / b, Bignum::divmod(a, b).quotient);
  }
}

TEST(DivMod, DividendEqualsDivisor) {
  const Bignum v = *Bignum::from_hex("123456789abcdef0123456789abcdef");
  const auto [q, r] = Bignum::divmod(v, v);
  EXPECT_TRUE(q.is_one());
  EXPECT_TRUE(r.is_zero());
}

}  // namespace
}  // namespace keyguard::bn
