#include "sim/vfs.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace keyguard::sim {
namespace {

class PageCacheTest : public ::testing::Test {
 protected:
  PageCacheTest() : mem_(kPageSize * 32), alloc_(mem_, {}, util::Rng(3)), cache_(mem_, alloc_) {}
  PhysicalMemory mem_;
  PageAllocator alloc_;
  PageCache cache_;
};

TEST(Vfs, WriteAndReadBack) {
  Vfs vfs;
  vfs.write_file("/a", util::to_bytes("contents"));
  ASSERT_TRUE(vfs.exists("/a"));
  EXPECT_EQ(*vfs.file("/a"), util::to_bytes("contents"));
  EXPECT_FALSE(vfs.exists("/b"));
  EXPECT_EQ(vfs.file("/b"), nullptr);
}

TEST(Vfs, OverwriteReplaces) {
  Vfs vfs;
  vfs.write_file("/a", util::to_bytes("one"));
  vfs.write_file("/a", util::to_bytes("two"));
  EXPECT_EQ(*vfs.file("/a"), util::to_bytes("two"));
  EXPECT_EQ(vfs.list().size(), 1u);
}

TEST_F(PageCacheTest, PopulateAndReadBack) {
  const auto content = util::to_bytes("cached file data");
  ASSERT_TRUE(cache_.populate("/f", content));
  EXPECT_TRUE(cache_.cached("/f"));
  EXPECT_EQ(cache_.read_cached("/f"), content);
  EXPECT_EQ(cache_.frames("/f").size(), 1u);
}

TEST_F(PageCacheTest, MultiPageFile) {
  std::vector<std::byte> content(kPageSize * 2 + 500);
  util::Rng rng(9);
  rng.fill_bytes(content);
  ASSERT_TRUE(cache_.populate("/big", content));
  EXPECT_EQ(cache_.frames("/big").size(), 3u);
  EXPECT_EQ(cache_.read_cached("/big"), content);
}

TEST_F(PageCacheTest, PopulateIsIdempotent) {
  const auto content = util::to_bytes("x");
  cache_.populate("/f", content);
  const auto frames1 = cache_.frames("/f");
  cache_.populate("/f", content);
  EXPECT_EQ(cache_.frames("/f"), frames1);
}

TEST_F(PageCacheTest, ContentVisibleInPhysicalMemory) {
  const auto content = util::to_bytes("FINDABLE-IN-RAM");
  cache_.populate("/f", content);
  EXPECT_FALSE(util::find_all(mem_.all(), content).empty());
}

TEST_F(PageCacheTest, EvictWithoutClearLeavesResidue) {
  const auto content = util::to_bytes("EVICTED-RESIDUE");
  cache_.populate("/f", content);
  cache_.evict("/f", /*clear_pages=*/false);
  EXPECT_FALSE(cache_.cached("/f"));
  EXPECT_FALSE(util::find_all(mem_.all(), content).empty());
}

TEST_F(PageCacheTest, EvictWithClearScrubs) {
  const auto content = util::to_bytes("SCRUBBED-ENTRY!");
  cache_.populate("/f", content);
  cache_.evict("/f", /*clear_pages=*/true);
  EXPECT_FALSE(cache_.cached("/f"));
  EXPECT_TRUE(util::find_all(mem_.all(), content).empty());
}

TEST_F(PageCacheTest, EvictMissingIsNoop) {
  cache_.evict("/missing", true);
  SUCCEED();
}

TEST_F(PageCacheTest, DropAllEvictsEverything) {
  cache_.populate("/a", util::to_bytes("a"));
  cache_.populate("/b", util::to_bytes("b"));
  EXPECT_EQ(cache_.cached_files(), 2u);
  cache_.drop_all();
  EXPECT_EQ(cache_.cached_files(), 0u);
}

TEST_F(PageCacheTest, PopulateFailsWhenMemoryExhausted) {
  std::vector<std::byte> huge(kPageSize * 64);  // more than the 32 frames
  EXPECT_FALSE(cache_.populate("/huge", huge));
  EXPECT_FALSE(cache_.cached("/huge"));
  // All partially-allocated frames were released.
  EXPECT_EQ(alloc_.free_count(), 32u);
}

TEST_F(PageCacheTest, FramesAreMarkedPageCache) {
  cache_.populate("/f", util::to_bytes("y"));
  for (const FrameNumber f : cache_.frames("/f")) {
    EXPECT_EQ(alloc_.state(f), FrameState::kPageCache);
  }
}

}  // namespace
}  // namespace keyguard::sim
