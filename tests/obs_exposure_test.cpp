// ExposureMonitor: event-driven copy accounting must equal a ground-truth
// scan at every instant, and the byte·second integral must be exact under
// the manual clock. The eviction-storm case also reconciles the monitor
// against the ShadowTaintMap auditor — two independent observers fed by
// the same hooks, three-way agreement with the scanner.
#include "obs/exposure_monitor.hpp"

#include <gtest/gtest.h>

#include "analysis/taint_auditor.hpp"
#include "analysis/taint_map.hpp"
#include "core/protection.hpp"
#include "obs/clock.hpp"
#include "servers/sni_frontend.hpp"
#include "sim/kernel.hpp"
#include "util/rng.hpp"

namespace keyguard::obs {
namespace {

scan::KeyPatterns make_patterns(util::Rng& rng, std::size_t n_keys = 1,
                                std::size_t len = 48) {
  scan::KeyPatterns p;
  for (std::size_t k = 0; k < n_keys; ++k) {
    scan::KeyPatterns::Pattern pat;
    pat.name = n_keys == 1 ? "d" : ("d#" + std::to_string(k));
    pat.bytes.resize(len);
    rng.fill_bytes(pat.bytes);
    pat.bytes[0] = std::byte{0xA5};  // never a zero-filled false positive
    p.patterns.push_back(std::move(pat));
  }
  return p;
}

bool monitor_equals_sweep(const ExposureMonitor& monitor,
                          const sim::Kernel& kernel) {
  scan::KeyScanner scanner(monitor.patterns());
  const auto truth = scanner.scan_capture(kernel.memory().all());
  const auto live = monitor.copies();
  if (live.size() != truth.size()) return false;
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (live[i].offset != truth[i].offset ||
        monitor.patterns().patterns[live[i].pattern].name != truth[i].part) {
      return false;
    }
  }
  return true;
}

class ExposureTest : public ::testing::Test {
 protected:
  void SetUp() override { manual_clock_install(0); }
  void TearDown() override { host_clock_install(); }
};

TEST_F(ExposureTest, PlantOverwriteRecreate) {
  sim::Kernel kernel({.mem_bytes = 4ull << 20});
  util::Rng rng(9);
  const auto patterns = make_patterns(rng);
  const auto needle = patterns.patterns[0].bytes;
  ExposureMonitor monitor(kernel.memory(), patterns);
  kernel.attach_taint(&monitor);

  auto& p = kernel.spawn("victim");
  const auto addr = kernel.heap_alloc(p, 4096, "buf");
  ASSERT_NE(addr, 0u);
  EXPECT_EQ(monitor.total_copies(), 0u);

  kernel.mem_write(p, addr, needle);
  EXPECT_EQ(monitor.total_copies(), 1u);
  EXPECT_EQ(monitor.copy_count(0), 1u);
  EXPECT_EQ(monitor.live_bytes(0), needle.size());
  EXPECT_TRUE(monitor_equals_sweep(monitor, kernel));

  // One corrupted byte in the middle kills the copy...
  const std::byte flip[] = {std::byte{0x00}};
  kernel.mem_write(p, addr + 10, flip);
  EXPECT_EQ(monitor.total_copies(), 0u);
  EXPECT_TRUE(monitor_equals_sweep(monitor, kernel));

  // ...and restoring it resurrects the copy (dirty-window rescan).
  const std::byte orig[] = {needle[10]};
  kernel.mem_write(p, addr + 10, orig);
  EXPECT_EQ(monitor.total_copies(), 1u);
  EXPECT_TRUE(monitor_equals_sweep(monitor, kernel));

  kernel.heap_clear_free(p, addr);
  EXPECT_EQ(monitor.total_copies(), 0u);
  EXPECT_TRUE(monitor_equals_sweep(monitor, kernel));
  const auto exp = monitor.exposure(0);
  EXPECT_EQ(exp.copies_created, 2u);
  EXPECT_EQ(exp.copies_destroyed, 2u);
  kernel.attach_taint(nullptr);
}

TEST_F(ExposureTest, AdjacentCopiesAreDistinct) {
  sim::Kernel kernel({.mem_bytes = 4ull << 20});
  util::Rng rng(10);
  const auto patterns = make_patterns(rng, 1, 32);
  const auto& needle = patterns.patterns[0].bytes;
  ExposureMonitor monitor(kernel.memory(), patterns);
  kernel.attach_taint(&monitor);

  auto& p = kernel.spawn("victim");
  const auto addr = kernel.heap_alloc(p, 4096, "buf");
  // Back-to-back copies: the seam-window logic must see both.
  std::vector<std::byte> two;
  two.insert(two.end(), needle.begin(), needle.end());
  two.insert(two.end(), needle.begin(), needle.end());
  kernel.mem_write(p, addr, two);
  EXPECT_EQ(monitor.total_copies(), 2u);
  EXPECT_TRUE(monitor_equals_sweep(monitor, kernel));
  kernel.attach_taint(nullptr);
}

TEST_F(ExposureTest, IntegralIsExactUnderManualClock) {
  sim::Kernel kernel({.mem_bytes = 4ull << 20});
  util::Rng rng(11);
  const std::size_t len = 64;
  const auto patterns = make_patterns(rng, 1, len);
  ExposureMonitor monitor(kernel.memory(), patterns);
  kernel.attach_taint(&monitor);

  auto& p = kernel.spawn("victim");
  const auto addr = kernel.heap_alloc(p, 4096, "buf");
  kernel.mem_write(p, addr, patterns.patterns[0].bytes);

  manual_clock_advance(5 * kNsPerSec);
  // One L-byte copy alive for 5 s == exactly 5 L byte·seconds.
  EXPECT_DOUBLE_EQ(monitor.exposure_window(0), 5.0 * static_cast<double>(len));

  // Destroy it; the integral stops accruing.
  kernel.heap_clear_free(p, addr);
  manual_clock_advance(100 * kNsPerSec);
  EXPECT_DOUBLE_EQ(monitor.exposure_window(0), 5.0 * static_cast<double>(len));
  EXPECT_EQ(monitor.exposure(0).peak_copies, 1u);
  kernel.attach_taint(nullptr);
}

TEST_F(ExposureTest, ResyncPicksUpPreAttachCopies) {
  sim::Kernel kernel({.mem_bytes = 4ull << 20});
  util::Rng rng(12);
  const auto patterns = make_patterns(rng);
  auto& p = kernel.spawn("early");
  const auto addr = kernel.heap_alloc(p, 4096, "buf");
  kernel.mem_write(p, addr, patterns.patterns[0].bytes);  // before attach

  ExposureMonitor monitor(kernel.memory(), patterns);
  kernel.attach_taint(&monitor);
  EXPECT_EQ(monitor.total_copies(), 0u);  // missed the write
  monitor.resync();
  EXPECT_EQ(monitor.total_copies(), 1u);
  EXPECT_TRUE(monitor_equals_sweep(monitor, kernel));
  kernel.attach_taint(nullptr);
}

TEST_F(ExposureTest, MultiKeyPatternNamesMapToKeyIndices) {
  sim::Kernel kernel({.mem_bytes = 4ull << 20});
  util::Rng rng(13);
  const auto patterns = make_patterns(rng, 3);
  ExposureMonitor monitor(kernel.memory(), patterns);
  kernel.attach_taint(&monitor);
  EXPECT_EQ(monitor.key_count(), 3u);
  EXPECT_EQ(monitor.pattern_key(0), 0u);
  EXPECT_EQ(monitor.pattern_key(2), 2u);

  auto& p = kernel.spawn("victim");
  const auto addr = kernel.heap_alloc(p, 4096, "buf");
  kernel.mem_write(p, addr, patterns.patterns[1].bytes);
  EXPECT_EQ(monitor.copy_count(1), 1u);
  EXPECT_EQ(monitor.copy_count(0), 0u);
  EXPECT_EQ(monitor.copy_count(2), 0u);
  kernel.attach_taint(nullptr);
}

// The satellite equivalence test: an SNI keystore eviction storm with the
// ShadowTaintMap AND the ExposureMonitor both listening through a
// TaintFanout. At every sampled instant: monitor == scanner sweep
// copy-for-copy, and the auditor's cross-check fully covers the same
// scanner hits — three observers, one story.
TEST_F(ExposureTest, EvictionStormMonitorAuditorScannerAgree) {
  const std::size_t n_keys = 6;
  constexpr std::size_t kPool = 2;
  std::vector<crypto::RsaPrivateKey> keys;
  util::Rng keygen(4242);
  for (std::size_t i = 0; i < n_keys; ++i) {
    keys.push_back(crypto::generate_rsa_key(keygen, 512));
  }

  const auto profile =
      core::make_profile(core::ProtectionLevel::kIntegrated, 32ull << 20);
  sim::Kernel kernel(profile.kernel);
  analysis::ShadowTaintMap taint_map(kernel);
  ExposureMonitor monitor(kernel.memory(), scan::KeyPatterns::from_keys(keys));
  sim::TaintFanout fanout;
  fanout.add(&taint_map);
  fanout.add(&monitor);
  kernel.attach_taint(&fanout);

  servers::SniFrontend frontend(kernel, core::sni_config(profile, kPool),
                                util::Rng(31));
  ASSERT_TRUE(frontend.start(keys));

  analysis::TaintAuditor auditor(taint_map);
  scan::KeyScanner scanner(monitor.patterns());
  std::uint64_t evictions = 0;
  for (std::size_t r = 0; r < 18; ++r) {
    ASSERT_TRUE(frontend.handle_request(r % n_keys));
    manual_clock_advance(kNsPerSec);
    if (r % 3 != 2) continue;

    // Monitor vs sweep, copy for copy.
    EXPECT_TRUE(monitor_equals_sweep(monitor, kernel)) << "request " << r;
    // Auditor vs the same scanner hits: every needle image the scanner
    // sees must be secret-tainted in the shadow map.
    const auto matches = scanner.scan_kernel(kernel);
    const auto cross = auditor.cross_check(scanner.patterns(), matches);
    EXPECT_TRUE(cross.all_hits_covered()) << "request " << r;
    EXPECT_EQ(cross.scanner_hits, monitor.total_copies()) << "request " << r;
  }
  evictions = frontend.keystore().stats().evictions;
  EXPECT_GT(evictions, 0u);  // the storm actually stormed
  EXPECT_GT(monitor.event_count(), 0u);

  // Shutdown scrubs the pool; all three observers must converge on zero
  // live plaintext in RAM.
  frontend.stop();
  EXPECT_TRUE(monitor_equals_sweep(monitor, kernel));
  kernel.attach_taint(nullptr);
}

}  // namespace
}  // namespace keyguard::obs
