// Streaming-capture equivalence battery: CaptureStream's windowed walk
// must be bit-identical to the one-shot scan_capture / scan_capture_prefix
// of the same bytes loaded whole — including the adversarial placements
// the seam-overlap rule exists for: the max-length needle (the PEM text)
// ending exactly AT every window boundary, needles straddling boundaries,
// a truncated final window, and files smaller than one window. Both
// access modes (mmap and the KEYGUARD_CAPTURE_MMAP=0 pread fallback) face
// the same oracle.
#include "scan/capture_stream.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "crypto/pem.hpp"
#include "crypto/rsa.hpp"
#include "scan/key_scanner.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace keyguard::scan {
namespace {

const crypto::RsaPrivateKey& test_key() {
  static const crypto::RsaPrivateKey key = [] {
    util::Rng rng(9091);
    return crypto::generate_rsa_key(rng, 512);
  }();
  return key;
}

std::string write_temp(const std::vector<std::byte>& bytes,
                       const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  return path;
}

void expect_same_capture(const std::vector<CaptureMatch>& oneshot,
                         const std::vector<CaptureMatch>& streamed,
                         const std::string& label) {
  ASSERT_EQ(oneshot.size(), streamed.size()) << label;
  for (std::size_t i = 0; i < oneshot.size(); ++i) {
    EXPECT_EQ(oneshot[i].offset, streamed[i].offset) << label << ", hit " << i;
    EXPECT_EQ(oneshot[i].part, streamed[i].part) << label << ", hit " << i;
  }
}

void expect_same_partial(const std::vector<PartialMatch>& oneshot,
                         const std::vector<PartialMatch>& streamed,
                         const std::string& label) {
  ASSERT_EQ(oneshot.size(), streamed.size()) << label;
  for (std::size_t i = 0; i < oneshot.size(); ++i) {
    EXPECT_EQ(oneshot[i].offset, streamed[i].offset) << label << ", hit " << i;
    EXPECT_EQ(oneshot[i].part, streamed[i].part) << label << ", hit " << i;
    EXPECT_EQ(oneshot[i].matched_bytes, streamed[i].matched_bytes)
        << label << ", hit " << i;
    EXPECT_EQ(oneshot[i].full, streamed[i].full) << label << ", hit " << i;
  }
}

/// Streams `path` at `window` bytes in BOTH access modes and requires each
/// to equal the one-shot result; also checks the aggregate stats shape.
void check_stream_equivalence(const KeyScanner& scanner,
                              const std::vector<std::byte>& capture,
                              const std::string& path, std::size_t window,
                              const std::string& label) {
  const auto oneshot = scanner.scan_capture(capture);
  const auto oneshot_prefix = scanner.scan_capture_prefix(capture, 20);
  for (const bool use_mmap : {true, false}) {
    ::setenv("KEYGUARD_CAPTURE_MMAP", use_mmap ? "1" : "0", 1);
    const std::string mode_label =
        label + (use_mmap ? " [mmap]" : " [read]");
    {
      CaptureStream stream(path, window);
      ASSERT_TRUE(stream.ok()) << mode_label << ": " << stream.error();
      EXPECT_EQ(stream.mapped(), use_mmap && !capture.empty()) << mode_label;
      EXPECT_EQ(stream.size(), capture.size()) << mode_label;
      ScanStats stats;
      const auto streamed = scanner.scan_capture_stream(stream, &stats);
      ASSERT_TRUE(stream.ok()) << mode_label << ": " << stream.error();
      expect_same_capture(oneshot, streamed, mode_label);
      EXPECT_EQ(stats.bytes_scanned, capture.size()) << mode_label;
      EXPECT_EQ(stats.bytes_streamed, capture.size()) << mode_label;
      EXPECT_EQ(stats.match_count, streamed.size()) << mode_label;
      const std::size_t expect_windows =
          capture.empty() ? 0 : (capture.size() + window - 1) / window;
      EXPECT_EQ(stats.shard_count, expect_windows) << mode_label;
      EXPECT_EQ(stats.shards.size(), expect_windows) << mode_label;
    }
    {
      // Prefix mode rides the same windows; a fresh stream keeps the
      // walks independent.
      CaptureStream stream(path, window);
      ASSERT_TRUE(stream.ok()) << mode_label << ": " << stream.error();
      const auto streamed = scanner.scan_capture_prefix_stream(stream, 20);
      ASSERT_TRUE(stream.ok()) << mode_label << ": " << stream.error();
      expect_same_partial(oneshot_prefix, streamed, mode_label + " prefix");
    }
  }
  ::unsetenv("KEYGUARD_CAPTURE_MMAP");
}

TEST(CaptureStreamSeams, MaxNeedleEndsAtEveryWindowBoundary) {
  // The last-frame-of-RAM pattern from scan_incremental_test, applied to
  // every window seam: the PEM text is the longest needle by far, so a
  // copy whose last byte is the final byte of a window payload is the
  // deepest possible reach into the overlap view — any off-by-one in the
  // seam rule loses or duplicates it.
  const KeyScanner scanner(test_key());
  const auto pem = util::to_bytes(crypto::pem_encode_private_key(test_key()));
  constexpr std::size_t kWindow = 16 * 1024;
  ASSERT_GT(pem.size(), 64u);
  ASSERT_LT(pem.size(), kWindow);

  std::vector<std::byte> capture(6 * kWindow, std::byte{'_'});
  util::Rng rng(11);
  rng.fill_bytes(capture);
  for (std::size_t b = 1; b <= 5; ++b) {
    const std::size_t boundary = b * kWindow;
    // Ends exactly at the boundary (last byte = boundary - 1)...
    std::copy(pem.begin(), pem.end(), capture.begin() + (boundary - pem.size()));
  }
  const auto path = write_temp(capture, "stream_boundary.bin");
  check_stream_equivalence(scanner, capture, path, kWindow, "boundary-end");
  std::remove(path.c_str());
}

TEST(CaptureStreamSeams, NeedlesStraddlingBoundariesAndTruncatedTail) {
  // Copies STRADDLING each seam (first byte in window k, tail in k+1) and
  // a file size that is not a multiple of the window, so the final window
  // is short — its view must clamp to end-of-file exactly like the
  // one-shot scan's buffer end.
  const KeyScanner scanner(test_key());
  const auto pem = util::to_bytes(crypto::pem_encode_private_key(test_key()));
  constexpr std::size_t kWindow = 16 * 1024;

  std::vector<std::byte> capture(4 * kWindow + 777, std::byte{0});
  util::Rng rng(22);
  rng.fill_bytes(capture);
  for (std::size_t b = 1; b <= 4; ++b) {
    const std::size_t boundary = b * kWindow;
    if (b % 2 == 1) {
      // First byte one before the seam: almost the whole needle is overlap.
      std::copy(pem.begin(), pem.end(), capture.begin() + (boundary - 1));
    } else {
      // Centered on the seam.
      std::copy(pem.begin(), pem.end(),
                capture.begin() + (boundary - pem.size() / 2));
    }
  }
  // A copy ending at the very last byte of the truncated tail.
  std::copy(pem.begin(), pem.end(), capture.end() - static_cast<std::ptrdiff_t>(pem.size()));
  // A TRUNCATED copy at end-of-file: prefix mode must report the partial
  // hit with the same matched_bytes as the one-shot scan.
  const std::size_t frag = 40;
  std::copy(pem.begin(), pem.begin() + frag,
            capture.end() - static_cast<std::ptrdiff_t>(frag));
  const auto path = write_temp(capture, "stream_straddle.bin");
  check_stream_equivalence(scanner, capture, path, kWindow, "straddle");
  std::remove(path.c_str());
}

TEST(CaptureStreamSeams, SmallAndEmptyFiles) {
  const KeyScanner scanner(test_key());
  const auto pem = util::to_bytes(crypto::pem_encode_private_key(test_key()));

  // File smaller than one window: a single clamped window.
  std::vector<std::byte> small(pem.size() + 100, std::byte{'s'});
  std::copy(pem.begin(), pem.end(), small.begin() + 50);
  const auto small_path = write_temp(small, "stream_small.bin");
  check_stream_equivalence(scanner, small, small_path, 1 << 20, "small file");
  std::remove(small_path.c_str());

  // Empty file: no windows, no matches, clean stats.
  const std::vector<std::byte> empty;
  const auto empty_path = write_temp(empty, "stream_empty.bin");
  check_stream_equivalence(scanner, empty, empty_path, 1 << 20, "empty file");
  std::remove(empty_path.c_str());

  // Missing file: constructor reports, never crashes.
  CaptureStream missing(::testing::TempDir() + "does_not_exist.bin", 1 << 20);
  EXPECT_FALSE(missing.ok());
  EXPECT_FALSE(missing.error().empty());
}

TEST(CaptureStreamSeams, WindowSizeSweepIsInvariant) {
  // The same capture must yield the same matches at EVERY window size —
  // including a window smaller than the longest needle, where the overlap
  // view is larger than the payload.
  const KeyScanner scanner(test_key());
  const auto pem = util::to_bytes(crypto::pem_encode_private_key(test_key()));
  std::vector<std::byte> capture(48 * 1024);
  util::Rng rng(33);
  rng.fill_bytes(capture);
  for (const std::size_t at : {std::size_t{100}, std::size_t{8190},
                               std::size_t{16383}, std::size_t{40000}}) {
    std::copy(pem.begin(), pem.end(), capture.begin() + at);
  }
  const auto path = write_temp(capture, "stream_sweep.bin");
  for (const std::size_t window :
       {std::size_t{256}, std::size_t{4096}, std::size_t{8192},
        std::size_t{1} << 20}) {
    check_stream_equivalence(scanner, capture, path, window,
                             "window " + std::to_string(window));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace keyguard::scan
