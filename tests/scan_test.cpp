#include "scan/key_scanner.hpp"

#include <gtest/gtest.h>

#include "crypto/pem.hpp"
#include "sslsim/ssl_library.hpp"
#include "util/bytes.hpp"

namespace keyguard::scan {
namespace {

using sslsim::SslLibrary;

const crypto::RsaPrivateKey& test_key() {
  static const crypto::RsaPrivateKey k = [] {
    util::Rng rng(31337);
    return crypto::generate_rsa_key(rng, 512);
  }();
  return k;
}

sim::KernelConfig small_config() {
  sim::KernelConfig cfg;
  cfg.mem_bytes = 8ull << 20;
  return cfg;
}

TEST(KeyPatterns, BuildsFourNeedles) {
  const auto pats = KeyPatterns::from_key(test_key());
  ASSERT_EQ(pats.patterns.size(), 4u);
  EXPECT_EQ(pats.patterns[0].name, "d");
  EXPECT_EQ(pats.patterns[1].name, "P");
  EXPECT_EQ(pats.patterns[2].name, "Q");
  EXPECT_EQ(pats.patterns[3].name, "PEM");
  EXPECT_EQ(pats.patterns[0].bytes.size(), test_key().d.limb_count() * 8);
  EXPECT_EQ(pats.patterns[1].bytes.size(), 32u);  // 256-bit prime
}

TEST(KeyScanner, EmptyMemoryYieldsNoMatches) {
  sim::Kernel k(small_config());
  KeyScanner scanner(test_key());
  EXPECT_TRUE(scanner.scan_kernel(k).empty());
}

TEST(KeyScanner, FindsPlantedKeyInProcessMemory) {
  sim::Kernel k(small_config());
  auto& p = k.spawn("victim");
  const sim::VirtAddr addr = k.heap_alloc(p, 64);
  k.mem_write(p, addr, SslLibrary::limb_image(test_key().p));
  KeyScanner scanner(test_key());
  const auto matches = scanner.scan_kernel(k);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].part, "P");
  EXPECT_EQ(matches[0].state, sim::FrameState::kUserAnon);
  ASSERT_EQ(matches[0].owners.size(), 1u);
  EXPECT_EQ(matches[0].owners[0], p.pid());
  EXPECT_TRUE(matches[0].allocated());
}

TEST(KeyScanner, ClassifiesUnallocatedResidue) {
  sim::Kernel k(small_config());
  auto& p = k.spawn("victim");
  const sim::VirtAddr addr = k.heap_alloc(p, 64);
  k.mem_write(p, addr, SslLibrary::limb_image(test_key().q));
  k.exit_process(p);
  KeyScanner scanner(test_key());
  const auto matches = scanner.scan_kernel(k);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].part, "Q");
  EXPECT_EQ(matches[0].state, sim::FrameState::kFree);
  EXPECT_TRUE(matches[0].owners.empty());
  EXPECT_FALSE(matches[0].allocated());
}

TEST(KeyScanner, FindsPemInPageCache) {
  sim::Kernel k(small_config());
  const std::string pem = crypto::pem_encode_private_key(test_key());
  k.vfs().write_file("/key.pem", util::to_bytes(pem));
  auto& p = k.spawn("reader");
  k.read_file(p, "/key.pem");
  KeyScanner scanner(test_key());
  const auto matches = scanner.scan_kernel(k);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].part, "PEM");
  EXPECT_EQ(matches[0].state, sim::FrameState::kPageCache);
}

TEST(KeyScanner, ReportsAllCowDuplicates) {
  sim::Kernel k(small_config());
  auto& parent = k.spawn("parent");
  const sim::VirtAddr a = k.mmap_anon(parent, sim::kPageSize, false);
  k.mem_write(parent, a, SslLibrary::limb_image(test_key().p));
  auto& child = k.fork(parent, "child");
  const std::byte one{1};
  k.mem_write(child, a + 3000, {&one, 1});  // break COW far from the key bytes
  KeyScanner scanner(test_key());
  const auto matches = scanner.scan_kernel(k);
  EXPECT_EQ(matches.size(), 2u);
}

// The documented order contract (which the parallel merge must uphold):
// ascending phys_offset, pattern list order (d, P, Q, PEM) breaking ties.
TEST(KeyScanner, MatchesSortedByPhysicalAddress) {
  sim::Kernel k(small_config());
  auto& p = k.spawn("victim");
  for (int i = 0; i < 4; ++i) {
    const sim::VirtAddr addr = k.heap_alloc(p, sim::kPageSize);
    k.mem_write(p, addr, SslLibrary::limb_image(test_key().p));
  }
  KeyScanner scanner(test_key());
  const auto matches = scanner.scan_kernel(k);
  ASSERT_EQ(matches.size(), 4u);
  for (std::size_t i = 1; i < matches.size(); ++i) {
    EXPECT_LT(matches[i - 1].phys_offset, matches[i].phys_offset);
  }
}

TEST(KeyScanner, CensusSplitsAllocatedAndFree) {
  sim::Kernel k(small_config());
  auto& stays = k.spawn("stays");
  auto& dies = k.spawn("dies");
  k.mem_write(stays, k.heap_alloc(stays, 64), SslLibrary::limb_image(test_key().p));
  k.mem_write(dies, k.heap_alloc(dies, 64), SslLibrary::limb_image(test_key().p));
  k.exit_process(dies);
  KeyScanner scanner(test_key());
  const auto census = KeyScanner::census(scanner.scan_kernel(k));
  EXPECT_EQ(census.allocated, 1u);
  EXPECT_EQ(census.unallocated, 1u);
  EXPECT_EQ(census.total(), 2u);
}

TEST(KeyScanner, ScanCaptureCountsCopies) {
  std::vector<std::byte> capture(100000, std::byte{0});
  const auto p_img = SslLibrary::limb_image(test_key().p);
  const auto d_img = SslLibrary::limb_image(test_key().d);
  std::copy(p_img.begin(), p_img.end(), capture.begin() + 100);
  std::copy(p_img.begin(), p_img.end(), capture.begin() + 50000);
  std::copy(d_img.begin(), d_img.end(), capture.begin() + 70000);
  KeyScanner scanner(test_key());
  const auto matches = scanner.scan_capture(capture);
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(scanner.count_copies(capture), 3u);
  EXPECT_EQ(matches[0].offset, 100u);
  EXPECT_EQ(matches[0].part, "P");
  EXPECT_EQ(matches[2].part, "d");
}

TEST(KeyScanner, CaptureWithNoKeysIsEmpty) {
  util::Rng rng(2);
  std::vector<std::byte> capture(1 << 16);
  rng.fill_bytes(capture);
  KeyScanner scanner(test_key());
  EXPECT_EQ(scanner.count_copies(capture), 0u);
}

TEST(KeyScanner, EndToEndServerLoadScan) {
  // Integration: load a key through the simulated SSL stack, then scan.
  sim::Kernel k(small_config());
  const std::string pem = crypto::pem_encode_private_key(test_key());
  k.vfs().write_file("/hostkey", util::to_bytes(pem));
  auto& sshd = k.spawn("sshd");
  SslLibrary ssl(k, {});
  auto key = ssl.load_private_key(sshd, "/hostkey");
  ASSERT_TRUE(key);
  KeyScanner scanner(test_key());
  const auto matches = scanner.scan_kernel(k);
  // At minimum: d, P, Q images in the heap + PEM in page cache + PEM in
  // the freed parse buffer.
  const auto census = KeyScanner::census(matches);
  EXPECT_GE(census.allocated, 5u);
  EXPECT_EQ(census.unallocated, 0u);
  // Every allocated user match is attributed to sshd.
  for (const auto& m : matches) {
    if (m.state == sim::FrameState::kUserAnon) {
      ASSERT_EQ(m.owners.size(), 1u);
      EXPECT_EQ(m.owners[0], sshd.pid());
    }
  }
  // And the report is in the documented phys_offset order — tests must
  // never rely on any other ordering.
  for (std::size_t i = 1; i < matches.size(); ++i) {
    EXPECT_LE(matches[i - 1].phys_offset, matches[i].phys_offset);
  }
}

}  // namespace
}  // namespace keyguard::scan
