#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace keyguard::util {
namespace {

TEST(FindAll, FindsAllOccurrences) {
  const auto hay = to_bytes("abcabcabc");
  const auto needle = to_bytes("abc");
  EXPECT_EQ(find_all(hay, needle), (std::vector<std::size_t>{0, 3, 6}));
}

TEST(FindAll, FindsOverlapping) {
  const auto hay = to_bytes("aaaa");
  const auto needle = to_bytes("aa");
  EXPECT_EQ(find_all(hay, needle), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(FindAll, EmptyNeedleFindsNothing) {
  const auto hay = to_bytes("abc");
  EXPECT_TRUE(find_all(hay, {}).empty());
}

TEST(FindAll, NeedleLongerThanHaystack) {
  const auto hay = to_bytes("ab");
  const auto needle = to_bytes("abc");
  EXPECT_TRUE(find_all(hay, needle).empty());
}

TEST(FindFirst, FromOffset) {
  const auto hay = to_bytes("xxabxxab");
  const auto needle = to_bytes("ab");
  EXPECT_EQ(find_first(hay, needle), 2u);
  EXPECT_EQ(find_first(hay, needle, 3), 6u);
  EXPECT_EQ(find_first(hay, needle, 7), npos);
}

TEST(FindFirst, MatchAtVeryEnd) {
  const auto hay = to_bytes("xxxab");
  const auto needle = to_bytes("ab");
  EXPECT_EQ(find_first(hay, needle), 3u);
}

TEST(FindFirst, BinaryDataWithEmbeddedZeros) {
  std::vector<std::byte> hay(100, std::byte{0});
  const std::vector<std::byte> needle{std::byte{0}, std::byte{1}, std::byte{0}};
  hay[50] = std::byte{1};
  EXPECT_EQ(find_first(hay, needle), 49u);
}

TEST(FindAll, RandomPlantedNeedles) {
  Rng rng(55);
  std::vector<std::byte> hay(4096);
  rng.fill_bytes(hay);
  std::vector<std::byte> needle(24);
  rng.fill_bytes(needle);
  // Plant at three known spots (non-overlapping).
  for (const std::size_t pos : {100u, 2000u, 4000u}) {
    std::copy(needle.begin(), needle.end(), hay.begin() + pos);
  }
  const auto hits = find_all(hay, needle);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0], 100u);
  EXPECT_EQ(hits[1], 2000u);
  EXPECT_EQ(hits[2], 4000u);
}

TEST(FindAllInto, MatchesFindAllAndReusesCapacity) {
  std::vector<std::byte> hay(8192, std::byte{0});
  const auto needle = to_bytes("needle!");
  for (const std::size_t off : {0u, 100u, 101u, 4000u, 8185u}) {
    std::copy(needle.begin(), needle.end(), hay.begin() + off);
  }
  std::vector<std::size_t> hits;
  find_all_into(hay, needle, hits);
  EXPECT_EQ(hits, find_all(hay, needle));
  const std::size_t cap = hits.capacity();
  // Re-running over the same window reuses the vector: cleared, refilled,
  // no reallocation.
  find_all_into(hay, needle, hits);
  EXPECT_EQ(hits, find_all(hay, needle));
  EXPECT_EQ(hits.capacity(), cap);
}

TEST(FindAllInto, ClearsStaleContentsAndHandlesNoMatch) {
  std::vector<std::size_t> hits = {7, 8, 9};
  const std::vector<std::byte> hay(64, std::byte{0x55});
  find_all_into(hay, to_bytes("missing"), hits);
  EXPECT_TRUE(hits.empty());
  find_all_into(hay, {}, hits);  // empty needle: no hits, no crash
  EXPECT_TRUE(hits.empty());
  find_all_into({}, to_bytes("x"), hits);  // needle longer than haystack
  EXPECT_TRUE(hits.empty());
}

TEST(FindAllInto, DenseOverlappingHitsStillComplete) {
  const std::vector<std::byte> hay(512, std::byte{0xAA});
  const std::vector<std::byte> needle(8, std::byte{0xAA});
  std::vector<std::size_t> hits;
  find_all_into(hay, needle, hits);
  ASSERT_EQ(hits.size(), 512u - 8u + 1u);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], i);
}

TEST(AllZero, Basics) {
  std::vector<std::byte> z(16, std::byte{0});
  EXPECT_TRUE(all_zero(z));
  z[7] = std::byte{1};
  EXPECT_FALSE(all_zero(z));
  EXPECT_TRUE(all_zero({}));
}

TEST(Fnv1a, DistinctInputsDistinctHashes) {
  EXPECT_NE(fnv1a(to_bytes("a")), fnv1a(to_bytes("b")));
  EXPECT_EQ(fnv1a(to_bytes("hello")), fnv1a(to_bytes("hello")));
}

TEST(AsBytes, ViewsWithoutCopy) {
  const std::string s = "xyz";
  const auto view = as_bytes(s);
  EXPECT_EQ(view.size(), 3u);
  EXPECT_EQ(static_cast<const void*>(view.data()), static_cast<const void*>(s.data()));
}

}  // namespace
}  // namespace keyguard::util
