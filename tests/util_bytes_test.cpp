#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace keyguard::util {
namespace {

TEST(FindAll, FindsAllOccurrences) {
  const auto hay = to_bytes("abcabcabc");
  const auto needle = to_bytes("abc");
  EXPECT_EQ(find_all(hay, needle), (std::vector<std::size_t>{0, 3, 6}));
}

TEST(FindAll, FindsOverlapping) {
  const auto hay = to_bytes("aaaa");
  const auto needle = to_bytes("aa");
  EXPECT_EQ(find_all(hay, needle), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(FindAll, EmptyNeedleFindsNothing) {
  const auto hay = to_bytes("abc");
  EXPECT_TRUE(find_all(hay, {}).empty());
}

TEST(FindAll, NeedleLongerThanHaystack) {
  const auto hay = to_bytes("ab");
  const auto needle = to_bytes("abc");
  EXPECT_TRUE(find_all(hay, needle).empty());
}

TEST(FindFirst, FromOffset) {
  const auto hay = to_bytes("xxabxxab");
  const auto needle = to_bytes("ab");
  EXPECT_EQ(find_first(hay, needle), 2u);
  EXPECT_EQ(find_first(hay, needle, 3), 6u);
  EXPECT_EQ(find_first(hay, needle, 7), npos);
}

TEST(FindFirst, MatchAtVeryEnd) {
  const auto hay = to_bytes("xxxab");
  const auto needle = to_bytes("ab");
  EXPECT_EQ(find_first(hay, needle), 3u);
}

TEST(FindFirst, BinaryDataWithEmbeddedZeros) {
  std::vector<std::byte> hay(100, std::byte{0});
  const std::vector<std::byte> needle{std::byte{0}, std::byte{1}, std::byte{0}};
  hay[50] = std::byte{1};
  EXPECT_EQ(find_first(hay, needle), 49u);
}

TEST(FindAll, RandomPlantedNeedles) {
  Rng rng(55);
  std::vector<std::byte> hay(4096);
  rng.fill_bytes(hay);
  std::vector<std::byte> needle(24);
  rng.fill_bytes(needle);
  // Plant at three known spots (non-overlapping).
  for (const std::size_t pos : {100u, 2000u, 4000u}) {
    std::copy(needle.begin(), needle.end(), hay.begin() + pos);
  }
  const auto hits = find_all(hay, needle);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0], 100u);
  EXPECT_EQ(hits[1], 2000u);
  EXPECT_EQ(hits[2], 4000u);
}

TEST(AllZero, Basics) {
  std::vector<std::byte> z(16, std::byte{0});
  EXPECT_TRUE(all_zero(z));
  z[7] = std::byte{1};
  EXPECT_FALSE(all_zero(z));
  EXPECT_TRUE(all_zero({}));
}

TEST(Fnv1a, DistinctInputsDistinctHashes) {
  EXPECT_NE(fnv1a(to_bytes("a")), fnv1a(to_bytes("b")));
  EXPECT_EQ(fnv1a(to_bytes("hello")), fnv1a(to_bytes("hello")));
}

TEST(AsBytes, ViewsWithoutCopy) {
  const std::string s = "xyz";
  const auto view = as_bytes(s);
  EXPECT_EQ(view.size(), 3u);
  EXPECT_EQ(static_cast<const void*>(view.data()), static_cast<const void*>(s.data()));
}

}  // namespace
}  // namespace keyguard::util
