// Must-lock label on a swappable page: "key vault" pages may be written to
// the swap device and imaged after power-off (the paper's disclosure
// channel). KL104 records the site as a violation in the compliance report.
#include "sim/kernel.hpp"

namespace fixture {

void reserve_vault(sim::Kernel& k, sim::Process& p) {
  const auto page = k.mmap_anon(p, 4096, /*mlocked=*/false, "key vault");  // expect: KL104
  stage_keys(k, p, page);
  k.mem_zero(p, page, 4096);
  k.munmap(p, page);
}

}  // namespace fixture
