// THE differential fixture: the scrub on the happy path satisfies keylint
// v1's KL003 ("a scrub exists somewhere in the body"), so the legacy tool
// reports nothing here. keylint2's path-sensitive KL101 sees the early
// return that leaves the PEM copy live in a freed-reachable heap chunk.
#include "sim/kernel.hpp"

namespace fixture {

int load_key(sim::Kernel& k, sim::Process& p, bool strict) {
  const auto pem_buf = k.heap_alloc(p, 2048, "PEM read buffer");  // expect: KL101
  read_key_file(k, p, pem_buf);
  if (!checksum_ok(k, p, pem_buf)) {
    return -1;  // early return: pem_buf is still live and unscrubbed
  }
  decode(k, p, pem_buf, strict);
  k.heap_clear_free(p, pem_buf);
  return 0;
}

}  // namespace fixture
