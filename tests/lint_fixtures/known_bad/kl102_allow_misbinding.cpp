// The allow annotation binds to the statement directly below it — NOT to
// anything within a 3-line window. keylint v1's window bug suppressed the
// memset here; keylint2 (and the fixed keylint.py) still report it.
#include "sim/kernel.hpp"

namespace fixture {

void reset_ctx(sim::Kernel& k, sim::Process& p, Ctx& ctx) {
  // keylint: allow(raw-memset) — covers only the next statement
  ctx.scratch_words = 0;
  memset(ctx.iv, 0, 16);  // expect: KL102
  touch(k, p, ctx);
}

}  // namespace fixture
