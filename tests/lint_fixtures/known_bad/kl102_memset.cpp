// Raw memset outside the whitelist: dead-store elimination may drop it
// (tests/scrub_survival_test.cpp demonstrates exactly that at -O3).
#include "sim/kernel.hpp"

namespace fixture {

void wipe_wrong(sim::Kernel& k, sim::Process& p, unsigned char* shadow) {
  const auto buf = k.heap_alloc(p, 64, "session secret");
  derive_mac(k, p, buf);
  memset(shadow, 0, 64);  // expect: KL102
  k.heap_clear_free(p, buf);
}

}  // namespace fixture
