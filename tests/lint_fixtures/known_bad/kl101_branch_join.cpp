// Scrub in one branch only: the implicit else-path joins back and reaches
// the return with the CRT intermediate still live.
#include "sim/kernel.hpp"

namespace fixture {

int crt_step(sim::Kernel& k, sim::Process& p, bool fast_path) {
  const auto s1 = k.heap_alloc(p, 128, "CRT intermediate");  // expect: KL101
  exponentiate(k, p, s1);
  if (fast_path) {
    k.heap_clear_free(p, s1);
  }
  return 0;  // fast_path == false leaks s1
}

}  // namespace fixture
