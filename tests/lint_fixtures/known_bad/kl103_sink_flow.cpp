// Secret-to-sink flow: the session secret's address flows through a local
// alias into a printf-family sink. keylint v1 has no notion of this.
#include "sim/kernel.hpp"

namespace fixture {

void debug_dump(sim::Kernel& k, sim::Process& p) {
  const auto secret = k.heap_alloc(p, 32, "session secret");
  const auto view = secret;
  printf("session buffer at %zx\n", view);  // expect: KL103
  k.heap_clear_free(p, secret);
}

}  // namespace fixture
