// The scrub lives inside the loop's success branch; when the loop
// exhausts without finding a match, the function falls off the end with
// the secret still live. keylint v1's body-wide scrub check passes.
#include "sim/kernel.hpp"

namespace fixture {

int find_slot(sim::Kernel& k, sim::Process& p, int n) {
  const auto scratch = k.heap_alloc(p, 64, "session secret");  // expect: KL101
  for (int i = 0; i < n; ++i) {
    if (slot_matches(k, p, scratch, i)) {
      k.heap_clear_free(p, scratch);
      return i;
    }
  }
  return -1;  // loop exhausted: scratch leaks
}

}  // namespace fixture
