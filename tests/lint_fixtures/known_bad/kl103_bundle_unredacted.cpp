// An unredacted forensic path: the bundle writer is handed a value
// derived from the secret allocation itself. The alert/forensic surface
// (on_alert, write_bundle) is a serialization sink — secret-derived
// values must never reach it; bundles carry offsets and counts only.
#include "obs/flight_recorder.hpp"
#include "sim/kernel.hpp"

namespace fixture {

void dump_breach(sim::Kernel& k, sim::Process& p, obs::FlightRecorder& rec) {
  const auto secret = k.heap_alloc(p, 32, "session secret");
  const auto leaked = secret;
  rec.write_bundle(leaked);  // expect: KL103
  k.heap_clear_free(p, secret);
}

}  // namespace fixture
