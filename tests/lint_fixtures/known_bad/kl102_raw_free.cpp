// Raw heap_free in a secret-handling function: even a pre-zeroed chunk must
// go through the clear-free funnel (the zeroing and the free are separately
// optimizable; the funnel is the contract).
#include "sim/kernel.hpp"

namespace fixture {

void drop_session(sim::Kernel& k, sim::Process& p) {
  const auto secret = k.heap_alloc(p, 48, "session secret");
  derive_mac(k, p, secret);
  k.mem_zero(p, secret, 48);
  k.heap_free(p, secret);  // expect: KL102
}

}  // namespace fixture
