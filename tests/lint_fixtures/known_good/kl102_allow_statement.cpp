// The allow annotation binds to the whole statement below it, even when the
// raw call sits several lines into the statement — outside keylint v1's
// 3-line window, which reported a false positive here before the fix.
#include "sim/kernel.hpp"

namespace fixture {

int teardown(sim::Kernel& k, sim::Process& p, Ctx& c) {
  note(k, p, "retiring DER decode buffer");
  // keylint: allow(raw-free) — harness verifies the chunk is zero before
  // the free; the span below keeps the call outside any line window
  const int rc =
      finalize_checksums(k, p, c) +
      drain_queues(k, p, c) +
      k.heap_free(p, c.scratch);
  return rc;
}

}  // namespace fixture
