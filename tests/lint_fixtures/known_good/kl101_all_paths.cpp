// Every exit path — early return, branch join, fall-through — scrubs the
// secret before leaving. KL101 must stay quiet.
#include "sim/kernel.hpp"

namespace fixture {

int load_key(sim::Kernel& k, sim::Process& p, bool strict) {
  const auto pem_buf = k.heap_alloc(p, 2048, "PEM read buffer");
  read_key_file(k, p, pem_buf);
  if (!checksum_ok(k, p, pem_buf)) {
    k.heap_clear_free(p, pem_buf);
    return -1;
  }
  if (strict) {
    decode_strict(k, p, pem_buf);
    k.heap_clear_free(p, pem_buf);
    return 1;
  }
  decode(k, p, pem_buf);
  k.heap_clear_free(p, pem_buf);
  return 0;
}

}  // namespace fixture
