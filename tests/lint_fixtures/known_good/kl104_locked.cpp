// Must-lock label on an mlocked page: recorded in the compliance report as
// a compliant site, no finding.
#include "sim/kernel.hpp"

namespace fixture {

void reserve_vault(sim::Kernel& k, sim::Process& p) {
  const auto page = k.mmap_anon(p, 4096, /*mlocked=*/true, "key vault");
  stage_keys(k, p, page);
  k.mem_zero(p, page, 4096);
  k.munmap(p, page);
}

}  // namespace fixture
