// Ownership transfer: the bignum is written into a struct that is returned
// to the caller, so this function is not responsible for scrubbing it.
#include "sim/kernel.hpp"

namespace fixture {

SimBignum make_private_exponent(sim::Kernel& k, sim::Process& p,
                                const Bytes& src) {
  SimBignum bn;
  bn.data = k.write_bignum_heap(p, src, "RSA bignum d");
  bn.len = src.size();
  return bn;
}

}  // namespace fixture
