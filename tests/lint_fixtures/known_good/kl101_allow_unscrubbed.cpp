// Deliberately-unscrubbed allocation, annotated: this is how the repo
// models the unpatched library's leak for the experiments.
#include "sim/kernel.hpp"

namespace fixture {

void unpatched_leak(sim::Kernel& k, sim::Process& p) {
  // keylint: allow(unscrubbed) — models the unpatched library's leak
  const auto buf = k.heap_alloc(p, 96, "session secret");
  derive_mac(k, p, buf);
}

}  // namespace fixture
