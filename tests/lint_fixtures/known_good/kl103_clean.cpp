// Logging near secrets is fine as long as no secret-derived value reaches
// the sink: sizes, durations and status codes are not tainted.
#include "sim/kernel.hpp"

namespace fixture {

void report(sim::Kernel& k, sim::Process& p, Stats& st) {
  const auto secret = k.heap_alloc(p, 32, "session secret");
  const auto elapsed = derive_mac(k, p, secret);
  printf("mac derivation took %lu us over %d bytes\n", elapsed, st.bytes);
  k.heap_clear_free(p, secret);
}

}  // namespace fixture
