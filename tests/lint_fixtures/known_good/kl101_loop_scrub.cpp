// Per-iteration allocate/use/scrub: the loop back edge carries a clean
// state, and the loop-exhausted exit is clean too.
#include "sim/kernel.hpp"

namespace fixture {

void batch(sim::Kernel& k, sim::Process& p, int n) {
  for (int i = 0; i < n; ++i) {
    const auto tmp = k.heap_alloc(p, 32, "CRT intermediate");
    combine(k, p, tmp, i);
    k.heap_clear_free(p, tmp);
  }
}

}  // namespace fixture
