// The redaction-by-construction bundle writer: the recorder only ever
// sees a file PATH and alert metadata built from counts and offsets —
// no value derived from the secret allocation reaches the forensic
// surface, so the alert/forensic sinks stay quiet.
#include "obs/flight_recorder.hpp"
#include "sim/kernel.hpp"

namespace fixture {

void dump_breach(sim::Kernel& k, sim::Process& p, obs::FlightRecorder& rec,
                 const char* out_path) {
  const auto secret = k.heap_alloc(p, 32, "session secret");
  obs::Alert a;
  a.rule = "residue-on-free";
  a.value = 32.0;  // a byte COUNT, not the bytes
  rec.on_alert(a);
  rec.write_bundle(out_path);
  k.heap_clear_free(p, secret);
}

}  // namespace fixture
