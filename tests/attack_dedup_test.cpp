// Dedup timing side channel, end to end at unit scale: the spray →
// merge → timed-probe oracle against a real SimKeystore pool page, the
// no-merge defense killing it, and the taint consequences of the probe
// itself (bench_dedup_attack runs the same story at workload scale).
#include "attack/dedup_probe.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/taint_auditor.hpp"
#include "analysis/taint_map.hpp"
#include "crypto/pem.hpp"
#include "keystore/sim_keystore.hpp"
#include "sim/dedup.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace keyguard::attack {
namespace {

using analysis::ShadowTaintMap;
using analysis::TaintAuditor;

constexpr std::size_t kPool = 2;

std::vector<crypto::RsaPrivateKey> make_keys(std::size_t n) {
  util::Rng rng(2026);
  std::vector<crypto::RsaPrivateKey> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(crypto::generate_rsa_key(rng, 512));
  return out;
}

/// Victim half of every test: a keystore tenant with `keys` ingested and
/// the FIRST key materialized into a pool slot.
struct VictimRig {
  sim::Kernel kernel;
  ShadowTaintMap map;
  sim::Process* proc;
  keystore::SimKeystore ks;
  std::vector<keystore::KeyId> ids;

  explicit VictimRig(const std::vector<crypto::RsaPrivateKey>& keys)
      : kernel(sim::KernelConfig{.mem_bytes = 16ull << 20,
                                 .o_nocache_supported = true}),
        map(kernel),
        proc((kernel.attach_taint(&map), &kernel.spawn("victim"))),
        ks(kernel, *proc, keystore::SimKeystoreConfig{.pool_pages = kPool}) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const std::string path = "/keys/k" + std::to_string(i) + ".pem";
      kernel.vfs().write_file(
          path, util::to_bytes(crypto::pem_encode_private_key(keys[i])),
          sim::TaintTag::kPem);
      ids.push_back(ks.ingest_pem(path).value());
    }
    // Materialize key 0: its pool-slot page is now the guessable target.
    const bn::Bignum c(42);
    (void)ks.private_op(ids[0], c);
  }

  ~VictimRig() { ks.shutdown(); }

  /// Secret predicate over the live shadow: any secret-tainted byte in
  /// the frame (same classifier the bench and scanmemory --dedup use).
  std::function<bool(sim::FrameNumber)> secret_pred() {
    return [this](sim::FrameNumber f) {
      const std::size_t base = static_cast<std::size_t>(f) * sim::kPageSize;
      for (std::size_t i = 0; i < sim::kPageSize; ++i) {
        if (sim::taint_tag_secret(map.phys_tag(base + i))) return true;
      }
      return false;
    };
  }
};

TEST(DedupProbe, PoolPageImageMatchesTheMaterializedSlot) {
  const auto keys = make_keys(1);
  VictimRig rig(keys);
  ASSERT_TRUE(rig.ks.pooled(rig.ids[0]));
  const auto image = pool_page_image(keys[0]);
  ASSERT_EQ(image.size(), sim::kPageSize);
  std::vector<std::byte> slot(sim::kPageSize);
  rig.kernel.mem_read(*rig.proc, rig.ks.slot_page(0), slot);
  // The layout really is public knowledge: the attacker-side
  // reconstruction is byte-identical to the victim's live pool page.
  EXPECT_EQ(slot, image);
}

TEST(DedupProbe, TimingDistinguishesResidentFromAbsentKeys) {
  const auto keys = make_keys(2);  // key 0 resident, key 1 never pooled
  VictimRig rig({keys[0]});
  sim::DedupEngine dedup(rig.kernel);  // defense OFF
  DedupTimingProbe probe(rig.kernel);

  std::vector<std::vector<std::byte>> guesses;
  guesses.push_back(pool_page_image(keys[0]));
  guesses.push_back(pool_page_image(keys[1]));
  probe.spray(guesses);
  ASSERT_GT(dedup.scan(), 0u);

  const auto results = probe.probe();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].merged);
  EXPECT_GE(results[0].write_ns, DedupTimingProbe::kMergedThresholdNs);
  EXPECT_FALSE(results[1].merged);
  EXPECT_EQ(results[1].write_ns, sim::kWriteCostMinorNs);

  const auto score = DedupTimingProbe::score(results, {true, false});
  EXPECT_EQ(score.tp, 1u);
  EXPECT_EQ(score.tn, 1u);
  EXPECT_EQ(score.fp, 0u);
  EXPECT_EQ(score.fn, 0u);
  EXPECT_EQ(score.precision(), 1.0);
  EXPECT_EQ(score.recall(), 1.0);
}

TEST(DedupProbe, OracleIsRepeatableAcrossRounds) {
  const auto keys = make_keys(1);
  VictimRig rig(keys);
  sim::DedupEngine dedup(rig.kernel);
  DedupTimingProbe probe(rig.kernel);
  std::vector<std::vector<std::byte>> guesses;
  guesses.push_back(pool_page_image(keys[0]));
  probe.spray(guesses);
  // The probe write preserves content, so scan → slow-probe repeats.
  for (int round = 0; round < 3; ++round) {
    ASSERT_GT(dedup.scan(), 0u) << "round " << round;
    EXPECT_TRUE(probe.probe()[0].merged) << "round " << round;
  }
  EXPECT_EQ(dedup.stats().unmerges, 3u);
}

TEST(DedupProbe, NoMergeDefenseCollapsesDetectionToChance) {
  const auto keys = make_keys(1);
  VictimRig rig(keys);
  sim::DedupConfig cfg;
  cfg.no_merge_secret = true;
  sim::DedupEngine dedup(rig.kernel, cfg);
  dedup.set_secret_predicate(rig.secret_pred());
  DedupTimingProbe probe(rig.kernel);
  std::vector<std::vector<std::byte>> guesses;
  guesses.push_back(pool_page_image(keys[0]));
  probe.spray(guesses);

  dedup.scan();
  EXPECT_GE(dedup.stats().vetoed_secret, 1u);
  const auto results = probe.probe();
  EXPECT_FALSE(results[0].merged);  // nothing merged: every write is fast
  EXPECT_EQ(results[0].write_ns, sim::kWriteCostMinorNs);
  // The pool invariant survives the whole attack.
  TaintAuditor auditor(rig.map);
  EXPECT_TRUE(auditor.audit(rig.kernel).bounded_locked_pages_only(kPool));
}

TEST(DedupProbe, UndefendedMergeLeaksKeyBytesIntoTheAttacker) {
  const auto keys = make_keys(1);
  VictimRig rig(keys);
  TaintAuditor auditor(rig.map);
  ASSERT_TRUE(rig.kernel.taint() != nullptr);
  ASSERT_TRUE(auditor.audit(rig.kernel).bounded_locked_pages_only(kPool));

  sim::DedupEngine dedup(rig.kernel);
  dedup.set_secret_predicate(rig.secret_pred());  // canonical prefers secret
  DedupTimingProbe probe(rig.kernel);
  std::vector<std::vector<std::byte>> guesses;
  guesses.push_back(pool_page_image(keys[0]));
  probe.spray(guesses);
  ASSERT_GT(dedup.scan(), 0u);
  // Merged but unwritten: the attacker maps the victim's frame read-only;
  // no NEW plaintext page exists yet.
  ASSERT_TRUE(auditor.audit(rig.kernel).bounded_locked_pages_only(kPool));

  // The probe's COW break copies the key-tainted page into a fresh frame
  // the ATTACKER owns — the merge didn't just leak presence, it handed
  // the attacker a plaintext copy outside the mlocked pool.
  EXPECT_TRUE(probe.probe()[0].merged);
  EXPECT_FALSE(auditor.audit(rig.kernel).bounded_locked_pages_only(kPool));
}

TEST(DedupProbe, ScoreHandlesEmptyAndOneSidedRounds) {
  const DetectionScore empty{};
  EXPECT_EQ(empty.precision(), 0.0);
  EXPECT_EQ(empty.recall(), 0.0);
  EXPECT_EQ(empty.fp_rate(), 0.0);

  // All-absent candidates, no detections: tn only.
  std::vector<DedupProbeResult> cold(3);
  for (std::size_t i = 0; i < cold.size(); ++i) cold[i].candidate = i;
  const auto s = DedupTimingProbe::score(cold, {false, false, false});
  EXPECT_EQ(s.tn, 3u);
  EXPECT_EQ(s.precision(), 0.0);  // zero denominator, not NaN
  EXPECT_EQ(s.fp_rate(), 0.0);

  DetectionScore acc{};
  acc.accumulate(s);
  acc.accumulate(DetectionScore{.tp = 2, .fp = 1, .fn = 1, .tn = 0});
  EXPECT_EQ(acc.tp, 2u);
  EXPECT_EQ(acc.fp, 1u);
  EXPECT_EQ(acc.fn, 1u);
  EXPECT_EQ(acc.tn, 3u);
  EXPECT_DOUBLE_EQ(acc.fp_rate(), 0.25);
}

}  // namespace
}  // namespace keyguard::attack
