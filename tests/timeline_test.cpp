#include "servers/timeline.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"

namespace keyguard::servers {
namespace {

using core::ProtectionLevel;
using core::Scenario;
using core::ScenarioConfig;

ScenarioConfig cfg(ProtectionLevel level) {
  ScenarioConfig c;
  c.level = level;
  c.mem_bytes = 24ull << 20;
  c.key_bits = 512;
  c.seed = 1234;
  return c;
}

// A short schedule keeps unit tests fast; the paper-scale one runs in bench.
TimelineSchedule short_schedule() {
  TimelineSchedule sch;
  sch.start_server = 1;
  sch.start_traffic = 2;
  sch.more_traffic = 4;
  sch.less_traffic = 6;
  sch.stop_traffic = 8;
  sch.stop_server = 10;
  sch.end = 12;
  sch.base_concurrency = 3;
  sch.high_concurrency = 6;
  return sch;
}

TEST(Timeline, SshBaselineReproducesPaperPhenomenology) {
  Scenario s(cfg(ProtectionLevel::kNone));
  s.precache_key_file(Scenario::kSshKeyPath);
  SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  SshAdapter adapter(server, /*transfers_per_slot=*/2, /*transfer_bytes=*/16 << 10);
  TimelineDriver driver(s.kernel(), adapter, s.scanner(), short_schedule());
  const auto samples = driver.run();
  ASSERT_EQ(samples.size(), 13u);

  // (1) The PEM is in memory at t=0, before the server starts.
  EXPECT_EQ(samples[0].census.total(), 1u);
  EXPECT_EQ(samples[0].matches[0].part, "PEM");

  // (2) Server start materialises d, P, Q.
  EXPECT_GE(samples[1].census.allocated, 4u);

  // (3) Traffic floods memory with copies (more than the idle server).
  const auto peak = samples[5].census.total();
  EXPECT_GT(peak, samples[1].census.total());

  // (4) Copies appear in unallocated memory during/after traffic.
  EXPECT_GT(samples[8].census.unallocated, 0u);

  // (5) After server stop, allocated copies collapse to the page cache
  // PEM; residue persists in unallocated memory.
  const auto& final_sample = samples.back();
  EXPECT_GT(final_sample.census.unallocated, 0u);
  std::size_t final_allocated_nonpem = 0;
  for (const auto& m : final_sample.matches) {
    if (m.allocated() && m.part != "PEM") ++final_allocated_nonpem;
  }
  EXPECT_EQ(final_allocated_nonpem, 0u);
}

TEST(Timeline, SshIntegratedShowsSingleStableCopy) {
  Scenario s(cfg(ProtectionLevel::kIntegrated));
  SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  SshAdapter adapter(server, 2, 16 << 10);
  TimelineDriver driver(s.kernel(), adapter, s.scanner(), short_schedule());
  const auto samples = driver.run();

  for (const auto& sample : samples) {
    EXPECT_EQ(sample.census.unallocated, 0u) << "tick " << sample.tick;
    // While running: exactly d, P, Q on the aligned page. Before/after: 0.
    EXPECT_LE(sample.census.allocated, 3u) << "tick " << sample.tick;
  }
  // During traffic the aligned page is present.
  EXPECT_EQ(samples[5].census.allocated, 3u);
  // After stop, nothing remains anywhere.
  EXPECT_EQ(samples.back().census.total(), 0u);
}

TEST(Timeline, ApacheBaselineWorkerReapingPushesCopiesToFreeMemory) {
  Scenario s(cfg(ProtectionLevel::kNone));
  s.precache_key_file(Scenario::kApacheKeyPath);
  auto config = s.apache_config();
  config.start_servers = 2;  // let the prefork pool grow and reap
  ApacheServer server(s.kernel(), config, s.make_rng());
  ApacheAdapter adapter(server, /*requests_per_slot=*/2);
  TimelineDriver driver(s.kernel(), adapter, s.scanner(), short_schedule());
  const auto samples = driver.run();

  // Load drop at less_traffic reaps workers; stop_traffic reaps more. The
  // paper: "the number of copies in unallocated memory increases".
  EXPECT_GT(samples[9].census.unallocated, samples[5].census.unallocated);
  // After the server stops, many copies reside in unallocated memory.
  EXPECT_GT(samples.back().census.unallocated, 0u);
}

TEST(Timeline, ApacheKernelLevelNeverShowsUnallocated) {
  Scenario s(cfg(ProtectionLevel::kKernel));
  ApacheServer server(s.kernel(), s.apache_config(), s.make_rng());
  ApacheAdapter adapter(server, 2);
  TimelineDriver driver(s.kernel(), adapter, s.scanner(), short_schedule());
  const auto samples = driver.run();
  std::size_t peak_allocated = 0;
  for (const auto& sample : samples) {
    EXPECT_EQ(sample.census.unallocated, 0u) << "tick " << sample.tick;
    peak_allocated = std::max(peak_allocated, sample.census.allocated);
  }
  // Kernel level does not curb allocated-memory duplication (Fig 26).
  EXPECT_GT(peak_allocated, 4u);
}

TEST(Timeline, SampleTicksAreSequential) {
  Scenario s(cfg(ProtectionLevel::kIntegrated));
  SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  SshAdapter adapter(server, 1, 4 << 10);
  TimelineDriver driver(s.kernel(), adapter, s.scanner(), short_schedule());
  const auto samples = driver.run();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].tick, static_cast<int>(i));
  }
}

}  // namespace
}  // namespace keyguard::servers
