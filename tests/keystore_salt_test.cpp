// Blob-nonce salting: the anti-dedup defense for sealed ciphertext.
//
// Two tenants with the same master seed ingesting the same key file
// produce byte-identical sealed blobs (KeyIds are sequential per store,
// so the nonces collide too) — page-granular dedup then merges them and
// the timing probe learns which keys a co-tenant holds WITHOUT breaking
// the seal. salted_nonce() makes each tenant's ciphertext unique while
// decrypting identically; salt 0 keeps the legacy layout bit-for-bit.
#include "keystore/sealed_blob.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "crypto/pem.hpp"
#include "keystore/encrypted_keystore.hpp"
#include "keystore/sim_keystore.hpp"
#include "sim/coprocessor.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace keyguard::keystore {
namespace {

crypto::RsaPrivateKey test_key() {
  util::Rng rng(4242);
  return crypto::generate_rsa_key(rng, 512);
}

constexpr const char* kPemPath = "/keys/shared.pem";

void write_key(sim::Kernel& k, const crypto::RsaPrivateKey& key) {
  k.vfs().write_file(kPemPath,
                     util::to_bytes(crypto::pem_encode_private_key(key)),
                     sim::TaintTag::kPem);
}

std::vector<std::byte> blob_bytes(sim::Kernel& k, sim::Process& p,
                                  sim::VirtAddr addr, std::size_t len) {
  std::vector<std::byte> out(len);
  k.mem_read(p, addr, out);
  return out;
}

TEST(SaltedNonce, SaltZeroIsTheIdentity) {
  for (std::uint64_t nonce : {0ull, 1ull, 7ull, 0x123456789abcull}) {
    EXPECT_EQ(salted_nonce(nonce, 0), nonce);
  }
}

TEST(SaltedNonce, StaysOutOfThePageNonceSpace) {
  // Bit 63 marks the encrypted backend's page nonces; a salted blob
  // nonce must never collide into that half, whatever the salt.
  for (std::uint64_t salt : {1ull, 0xffffffffffffffffull, 0x8000000000000000ull}) {
    for (std::uint64_t nonce = 0; nonce < 64; ++nonce) {
      EXPECT_EQ(salted_nonce(nonce, salt) >> 63, 0u) << salt << "/" << nonce;
    }
  }
}

TEST(SaltedNonce, DistinctNoncesAndSaltsStayDistinct) {
  // Same salt: the per-key nonces a store hands out must not collide.
  std::set<std::uint64_t> seen;
  for (std::uint64_t nonce = 1; nonce <= 256; ++nonce) {
    EXPECT_TRUE(seen.insert(salted_nonce(nonce, 0xfeedULL)).second) << nonce;
  }
  // Same nonce: different tenants (salts) get different streams.
  std::set<std::uint64_t> across;
  for (std::uint64_t salt = 1; salt <= 256; ++salt) {
    EXPECT_TRUE(across.insert(salted_nonce(7, salt)).second) << salt;
  }
}

TEST(BlobSalt, UnsaltedTenantsCollideAndSaltedOnesDoNot) {
  const auto key = test_key();
  sim::Kernel kernel(sim::KernelConfig{.mem_bytes = 16ull << 20,
                                       .o_nocache_supported = true});
  write_key(kernel, key);

  // Four tenants, one machine, same default master seed: the cross-VM
  // setting the dedup attack needs. Salts: two legacy, two defended.
  const std::uint64_t salts[] = {0, 0, 0x111, 0x222};
  std::vector<sim::Process*> procs;
  std::vector<std::unique_ptr<SimKeystore>> stores;
  std::vector<KeyId> ids;
  for (std::size_t i = 0; i < 4; ++i) {
    procs.push_back(&kernel.spawn("tenant" + std::to_string(i)));
    SimKeystoreConfig cfg;
    cfg.pool_pages = 2;
    cfg.blob_salt = salts[i];
    stores.push_back(std::make_unique<SimKeystore>(kernel, *procs[i], cfg));
    ids.push_back(stores[i]->ingest_pem(kPemPath).value());
  }

  std::vector<std::vector<std::byte>> blobs;
  for (std::size_t i = 0; i < 4; ++i) {
    blobs.push_back(blob_bytes(kernel, *procs[i], stores[i]->blob_address(ids[i]),
                               stores[i]->blob_size(ids[i])));
  }
  EXPECT_EQ(blobs[0], blobs[1]);  // legacy twins: byte-identical at rest
  EXPECT_NE(blobs[2], blobs[0]);  // salted vs legacy
  EXPECT_NE(blobs[3], blobs[0]);
  EXPECT_NE(blobs[2], blobs[3]);  // and salted tenants differ pairwise

  // Salting changes the ciphertext ONLY: every tenant still serves the
  // same key correctly.
  const bn::Bignum m(987654321);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto c = stores[i]->public_key(ids[i]).encrypt_raw(m);
    EXPECT_EQ(stores[i]->private_op(ids[i], c), m) << "tenant " << i;
  }
  for (auto& s : stores) s->shutdown();
}

TEST(BlobSalt, EncryptedBackendSaltsKsb2AndBatchStillPrefetches) {
  const auto key = test_key();
  sim::Kernel kernel(sim::KernelConfig{.mem_bytes = 16ull << 20,
                                       .o_nocache_supported = true});
  write_key(kernel, key);
  sim::CoprocessorDomain domain(0xd0);  // ONE domain shared by both tenants

  auto& pa = kernel.spawn("enc a");
  auto& pb = kernel.spawn("enc b");
  EncryptedKeystoreConfig ca;
  EncryptedKeystoreConfig cb;
  cb.blob_salt = 0x5a17;
  EncryptedPoolKeystore a(kernel, pa, domain, ca);
  EncryptedPoolKeystore b(kernel, pb, domain, cb);
  const auto ida = a.ingest_pem(kPemPath).value();
  const auto idb = b.ingest_pem(kPemPath).value();

  // Same domain, same key, same sequential id — only the salt separates
  // the KSB2 blobs.
  EXPECT_NE(a.blob_nonce(ida), b.blob_nonce(idb));
  EXPECT_EQ(a.blob_nonce(ida), ida);  // salt 0: legacy identity
  const auto blob_a = blob_bytes(kernel, pa, a.blob_address(ida), a.blob_size(ida));
  const auto blob_b = blob_bytes(kernel, pb, b.blob_address(idb), b.blob_size(idb));
  EXPECT_NE(blob_a, blob_b);

  // Batch path under salt: the prefetch cache is keyed by SALTED nonce;
  // a cold batched unseal must hit its own prefetch, not fall back to a
  // second domain round trip (regression for the cache-key path).
  const bn::Bignum m(13579);
  const auto c = b.public_key(idb).encrypt_raw(m);
  const KeyId ids[] = {idb};
  const bn::Bignum cs[] = {c};
  const auto before = b.stats().prefetch_hits;
  const auto out = b.private_op_batch(ids, cs);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_TRUE(out[0].has_value());
  EXPECT_EQ(*out[0], m);
  EXPECT_GT(b.stats().prefetch_hits, before);

  // And the plain path still round-trips on both tenants.
  const auto ra = a.try_private_op(ida, a.public_key(ida).encrypt_raw(m));
  ASSERT_TRUE(ra.has_value());
  EXPECT_EQ(*ra, m);
  a.shutdown();
  b.shutdown();
}

}  // namespace
}  // namespace keyguard::keystore
