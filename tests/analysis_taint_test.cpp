// Shadow-taint propagation tests: every way key bytes move through the
// simulated machine must drag their shadow along, and every way they are
// destroyed must clear it. Each test drives the real kernel APIs (no
// direct shadow pokes except where marked) and checks the per-byte map.
#include "analysis/taint_map.hpp"

#include <gtest/gtest.h>

#include "analysis/taint_auditor.hpp"
#include "sim/kernel.hpp"
#include "util/bytes.hpp"

namespace keyguard::analysis {
namespace {

using sim::Kernel;
using sim::KernelConfig;
using sim::kPageSize;
using sim::TaintTag;
using sim::VirtAddr;

KernelConfig small_config() {
  KernelConfig cfg;
  cfg.mem_bytes = 4ull << 20;
  return cfg;
}

/// Physical byte address of one virtual byte (must be resident).
std::size_t phys_of(const Kernel& k, const sim::Process& p, VirtAddr a) {
  const auto frame = k.translate(p, a);
  EXPECT_TRUE(frame.has_value());
  return static_cast<std::size_t>(*frame) * kPageSize + a % kPageSize;
}

/// All `len` bytes starting at virtual `a` carry `tag`.
bool virt_tagged(const Kernel& k, const sim::Process& p, const ShadowTaintMap& map,
                 VirtAddr a, std::size_t len, TaintTag tag) {
  for (std::size_t i = 0; i < len; ++i) {
    if (map.phys_tag(phys_of(k, p, a + i)) != tag) return false;
  }
  return true;
}

TEST(ShadowTaintMap, StoreTagsAndCleanOverwriteClears) {
  Kernel k(small_config());
  ShadowTaintMap map(k);
  k.attach_taint(&map);
  auto& p = k.spawn("p");
  const VirtAddr a = k.mmap_anon(p, kPageSize, false);

  const auto secret = util::to_bytes("not-quite-a-prime");
  k.mem_write(p, a, secret, TaintTag::kKeyP);
  EXPECT_TRUE(virt_tagged(k, p, map, a, secret.size(), TaintTag::kKeyP));
  EXPECT_EQ(map.stats().phys_tainted, secret.size());
  EXPECT_EQ(map.stats().phys_by_tag[static_cast<std::size_t>(TaintTag::kKeyP)],
            secret.size());

  // Ordinary data over the front half: that taint dies, the rest survives.
  const auto churn = util::to_bytes("not-quite");
  k.mem_write(p, a, churn);
  EXPECT_TRUE(virt_tagged(k, p, map, a, churn.size(), TaintTag::kClean));
  EXPECT_TRUE(virt_tagged(k, p, map, a + churn.size(), secret.size() - churn.size(),
                          TaintTag::kKeyP));
  EXPECT_EQ(map.stats().phys_tainted, secret.size() - churn.size());
  k.attach_taint(nullptr);
}

TEST(ShadowTaintMap, ClearFreeScrubsButPlainFreeDoesNot) {
  Kernel k(small_config());
  ShadowTaintMap map(k);
  k.attach_taint(&map);
  auto& p = k.spawn("p");

  const auto secret = util::to_bytes("0123456789abcdef0123456789abcdef");
  const VirtAddr kept = k.heap_alloc(p, secret.size(), "RSA bignum q");
  const VirtAddr dropped = k.heap_alloc(p, secret.size(), "RSA bignum p");
  k.mem_write(p, kept, secret, TaintTag::kKeyQ);
  k.mem_write(p, dropped, secret, TaintTag::kKeyP);

  // free() leaves the bytes AND the shadow behind (the unpatched library).
  const std::size_t dropped_phys = phys_of(k, p, dropped);
  k.heap_free(p, dropped);
  EXPECT_EQ(map.phys_tag(dropped_phys), TaintTag::kKeyP);

  // BN_clear_free zeroes through mem_zero — shadow dies with the bytes.
  const std::size_t kept_phys = phys_of(k, p, kept);
  k.heap_clear_free(p, kept);
  EXPECT_EQ(map.phys_tag(kept_phys), TaintTag::kClean);
  EXPECT_EQ(map.stats().phys_by_tag[static_cast<std::size_t>(TaintTag::kKeyQ)], 0u);
  k.attach_taint(nullptr);
}

TEST(ShadowTaintMap, ReallocMoveDuplicatesTaint) {
  Kernel k(small_config());
  ShadowTaintMap map(k);
  k.attach_taint(&map);
  auto& p = k.spawn("p");

  const auto secret = util::to_bytes("bn_expand2 copies me");
  const VirtAddr a = k.heap_alloc(p, secret.size(), "RSA bignum d");
  // A blocker right after forces realloc to move instead of growing.
  const VirtAddr blocker = k.heap_alloc(p, 64, "blocker");
  ASSERT_NE(blocker, 0u);
  k.mem_write(p, a, secret, TaintTag::kKeyD);

  const std::size_t old_phys = phys_of(k, p, a);
  const VirtAddr moved = k.heap_realloc(p, a, 4 * secret.size());
  ASSERT_NE(moved, 0u);
  ASSERT_NE(moved, a);

  // The move re-links the shadow onto the new chunk...
  EXPECT_TRUE(virt_tagged(k, p, map, moved, secret.size(), TaintTag::kKeyD));
  // ...and the abandoned original keeps its taint (freed, uncleared).
  EXPECT_EQ(map.phys_tag(old_phys), TaintTag::kKeyD);
  EXPECT_EQ(map.stats().phys_by_tag[static_cast<std::size_t>(TaintTag::kKeyD)],
            2 * secret.size());
  EXPECT_GT(map.stats().copies, 0u);
  k.attach_taint(nullptr);
}

TEST(ShadowTaintMap, CowBreakMintsSecondTaintedFrame) {
  Kernel k(small_config());
  ShadowTaintMap map(k);
  k.attach_taint(&map);
  auto& parent = k.spawn("master");
  const VirtAddr a = k.mmap_anon(parent, kPageSize, false);

  const auto secret = util::to_bytes("shared-until-written");
  k.mem_write(parent, a, secret, TaintTag::kKeyP);
  auto& child = k.fork(parent, "worker");

  // Child writes elsewhere in the page: the COW break copies the WHOLE
  // page — taint duplicates — then the written bytes go clean.
  const auto note = util::to_bytes("scratch");
  k.mem_write(child, a + 512, note);

  const auto pf = k.translate(parent, a);
  const auto cf = k.translate(child, a);
  ASSERT_TRUE(pf && cf);
  ASSERT_NE(*pf, *cf);
  EXPECT_TRUE(virt_tagged(k, parent, map, a, secret.size(), TaintTag::kKeyP));
  EXPECT_TRUE(virt_tagged(k, child, map, a, secret.size(), TaintTag::kKeyP));
  EXPECT_TRUE(virt_tagged(k, child, map, a + 512, note.size(), TaintTag::kClean));
  EXPECT_EQ(map.stats().phys_by_tag[static_cast<std::size_t>(TaintTag::kKeyP)],
            2 * secret.size());
  k.attach_taint(nullptr);
}

TEST(ShadowTaintMap, SwapRoundTripDuplicatesOnStockKernel) {
  KernelConfig cfg = small_config();
  cfg.swap_pages = 8;
  Kernel k(cfg);
  ShadowTaintMap map(k);
  k.attach_taint(&map);
  auto& p = k.spawn("p");
  const VirtAddr a = k.mmap_anon(p, kPageSize, false);

  const auto secret = util::to_bytes("paged-out-paged-in");
  k.mem_write(p, a, secret, TaintTag::kKeyQ);
  const std::size_t resident_phys = phys_of(k, p, a);

  ASSERT_EQ(k.swap_out_pages(p, 1), 1u);
  // Swap-out duplicated the taint: the vacated frame keeps it (hot-freed
  // uncleared) and the slot now carries it too.
  EXPECT_EQ(map.phys_tag(resident_phys), TaintTag::kKeyQ);
  EXPECT_EQ(map.stats().swap_tainted, secret.size());
  EXPECT_EQ(map.stats().swap_stores, 1u);

  // Touch faults it back in; the freed slot is NOT scrubbed on a stock
  // kernel, so the disk copy of the taint survives the round trip.
  std::vector<std::byte> back(secret.size());
  k.mem_read(p, a, back);
  EXPECT_EQ(back, secret);
  EXPECT_EQ(map.stats().swap_loads, 1u);
  EXPECT_EQ(map.stats().swap_tainted, secret.size());
  EXPECT_TRUE(virt_tagged(k, p, map, a, secret.size(), TaintTag::kKeyQ));

  // The auditor reports the dead slot as disk-resident residue.
  TaintAuditor auditor(map);
  const auto report = auditor.audit(k);
  EXPECT_EQ(report.bytes_swap, secret.size());
  bool saw_dead_slot = false;
  for (const auto& r : report.regions) {
    if (r.in_swap) {
      EXPECT_FALSE(r.slot_live);
      saw_dead_slot = true;
    }
  }
  EXPECT_TRUE(saw_dead_slot);
  k.attach_taint(nullptr);
}

TEST(ShadowTaintMap, ZeroOnFreeScrubsVacatedFrameAndSlot) {
  KernelConfig cfg = small_config();
  cfg.swap_pages = 8;
  cfg.zero_on_free = true;
  Kernel k(cfg);
  ShadowTaintMap map(k);
  k.attach_taint(&map);
  auto& p = k.spawn("p");
  const VirtAddr a = k.mmap_anon(p, kPageSize, false);

  const auto secret = util::to_bytes("defended");
  k.mem_write(p, a, secret, TaintTag::kKeyP);
  ASSERT_EQ(k.swap_out_pages(p, 1), 1u);
  // Vacated frame cleared at free time: only the slot copy remains.
  EXPECT_EQ(map.stats().phys_tainted, 0u);
  EXPECT_EQ(map.stats().swap_tainted, secret.size());

  std::vector<std::byte> back(secret.size());
  k.mem_read(p, a, back);
  // Swap-in under zero_on_free scrubs the released slot (the satellite
  // fix): no disk residue, only the resident page is tainted again.
  EXPECT_EQ(map.stats().swap_tainted, 0u);
  EXPECT_EQ(map.stats().phys_tainted, secret.size());
  ASSERT_NE(k.swap(), nullptr);
  EXPECT_TRUE(util::all_zero(k.swap()->slot(0)));
  k.attach_taint(nullptr);
}

TEST(ShadowTaintMap, PageCacheEvictionLeaksTaintIntoFreeFrames) {
  KernelConfig cfg = small_config();
  cfg.page_cache_limit_pages = 1;
  Kernel k(cfg);
  ShadowTaintMap map(k);
  k.attach_taint(&map);
  auto& p = k.spawn("p");

  const auto pem = util::to_bytes(std::string(100, 'K'));
  const auto filler = util::to_bytes(std::string(100, 'x'));
  k.vfs().write_file("/etc/key.pem", pem, TaintTag::kPem);
  k.vfs().write_file("/var/log/big", filler);

  ASSERT_TRUE(k.read_file(p, "/etc/key.pem").has_value());
  EXPECT_EQ(map.stats().phys_tainted, pem.size());

  // Reading the second file busts the one-page budget; the key file's
  // frame is evicted UNCLEARED — tainted bytes now sit in a free frame.
  ASSERT_TRUE(k.read_file(p, "/var/log/big").has_value());
  EXPECT_EQ(map.stats().phys_tainted, pem.size());

  TaintAuditor auditor(map);
  const auto report = auditor.audit(k);
  EXPECT_EQ(report.bytes_unallocated, pem.size());
  EXPECT_EQ(report.bytes_page_cache, 0u);
  k.attach_taint(nullptr);
}

TEST(TaintAuditor, ProvenanceNamesTheHeapChunk) {
  Kernel k(small_config());
  ShadowTaintMap map(k);
  k.attach_taint(&map);
  auto& p = k.spawn("sshd");
  const auto secret = util::to_bytes("whoami");
  const VirtAddr a = k.heap_alloc(p, secret.size(), "RSA bignum p");
  k.mem_write(p, a, secret, TaintTag::kKeyP);

  TaintAuditor auditor(map);
  const auto report = auditor.audit(k);
  ASSERT_EQ(report.regions.size(), 1u);
  const auto& r = report.regions.front();
  EXPECT_EQ(r.tag, TaintTag::kKeyP);
  EXPECT_EQ(r.state, sim::FrameState::kUserAnon);
  EXPECT_EQ(r.owners, std::vector<sim::Pid>{p.pid()});
  EXPECT_NE(r.provenance.find("RSA bignum p"), std::string::npos);
  EXPECT_FALSE(r.mlocked);
  k.attach_taint(nullptr);
}

TEST(TaintAuditor, SingleLockedPageInvariant) {
  Kernel k(small_config());
  ShadowTaintMap map(k);
  k.attach_taint(&map);
  auto& p = k.spawn("sshd");
  const VirtAddr vault = k.mmap_anon(p, kPageSize, /*mlocked=*/true, "rsa_aligned");
  const auto parts = util::to_bytes(std::string(192, 'd'));
  k.mem_write(p, vault, parts, TaintTag::kVault);

  TaintAuditor auditor(map);
  auto report = auditor.audit(k);
  EXPECT_TRUE(report.single_locked_page_only());
  EXPECT_EQ(report.bytes_mlocked, parts.size());

  // One stray tainted heap byte breaks the invariant.
  const VirtAddr stray = k.heap_alloc(p, 16, "leak");
  k.mem_write(p, stray, util::to_bytes("x"), TaintTag::kCrt);
  report = auditor.audit(k);
  EXPECT_FALSE(report.single_locked_page_only());
  k.attach_taint(nullptr);
}

TEST(TaintAuditor, FormatMentionsInvariantAndTags) {
  Kernel k(small_config());
  ShadowTaintMap map(k);
  k.attach_taint(&map);
  auto& p = k.spawn("p");
  const VirtAddr a = k.mmap_anon(p, kPageSize, true, "rsa_aligned");
  k.mem_write(p, a, util::to_bytes("secret"), TaintTag::kVault);

  const auto text = TaintAuditor::format(TaintAuditor(map).audit(k));
  EXPECT_NE(text.find("single-locked-page invariant: HOLDS"), std::string::npos);
  EXPECT_NE(text.find("vault=6"), std::string::npos);
  k.attach_taint(nullptr);
}

TEST(ShadowTaintMap, DetachedTrackerSeesNothing) {
  Kernel k(small_config());
  ShadowTaintMap map(k);
  // Never attached: kernel runs clean, the map stays empty.
  auto& p = k.spawn("p");
  const VirtAddr a = k.mmap_anon(p, kPageSize, false);
  k.mem_write(p, a, util::to_bytes("secret"), TaintTag::kKeyD);
  EXPECT_EQ(map.stats().phys_tainted, 0u);
  EXPECT_EQ(map.stats().stores, 0u);
}

}  // namespace
}  // namespace keyguard::analysis
