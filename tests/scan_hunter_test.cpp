// Tests for the scanner extensions: prefix (partial) matching, per-process
// scanning, and public-key-only factor hunting.
#include "scan/key_hunter.hpp"

#include <gtest/gtest.h>

#include "attack/leaks.hpp"
#include "core/scenario.hpp"
#include "scan/key_scanner.hpp"
#include "servers/ssh_server.hpp"
#include "sslsim/ssl_library.hpp"
#include "util/bytes.hpp"

namespace keyguard::scan {
namespace {

using sslsim::SslLibrary;

const crypto::RsaPrivateKey& test_key() {
  static const crypto::RsaPrivateKey k = [] {
    util::Rng rng(808);
    return crypto::generate_rsa_key(rng, 512);
  }();
  return k;
}

// -- prefix matching ---------------------------------------------------------

TEST(PrefixScan, FindsFullMatchAsFull) {
  std::vector<std::byte> capture(4096, std::byte{0});
  const auto img = SslLibrary::limb_image(test_key().p);
  std::copy(img.begin(), img.end(), capture.begin() + 128);
  KeyScanner scanner(test_key());
  const auto matches = scanner.scan_capture_prefix(capture);
  ASSERT_GE(matches.size(), 1u);
  bool found_full = false;
  for (const auto& m : matches) {
    if (m.offset == 128 && m.part == "P") {
      EXPECT_TRUE(m.full);
      EXPECT_EQ(m.matched_bytes, img.size());
      found_full = true;
    }
  }
  EXPECT_TRUE(found_full);
}

TEST(PrefixScan, FindsTruncatedFragment) {
  // A key image cut at a page boundary: only the first 24 bytes survive.
  std::vector<std::byte> capture(4096, std::byte{0});
  const auto img = SslLibrary::limb_image(test_key().p);
  std::copy(img.begin(), img.begin() + 24, capture.begin() + 500);
  capture[524] = std::byte{0xFF};  // diverge right after
  KeyScanner scanner(test_key());
  const auto matches = scanner.scan_capture_prefix(capture, 20);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].offset, 500u);
  EXPECT_FALSE(matches[0].full);
  EXPECT_EQ(matches[0].matched_bytes, 24u);
}

TEST(PrefixScan, BelowThresholdIgnored) {
  std::vector<std::byte> capture(4096, std::byte{0});
  const auto img = SslLibrary::limb_image(test_key().p);
  std::copy(img.begin(), img.begin() + 12, capture.begin() + 100);  // < 20 bytes
  KeyScanner scanner(test_key());
  EXPECT_TRUE(scanner.scan_capture_prefix(capture, 20).empty());
}

TEST(PrefixScan, FragmentAtCaptureEnd) {
  const auto img = SslLibrary::limb_image(test_key().q);
  std::vector<std::byte> capture(100, std::byte{0});
  std::copy(img.begin(), img.begin() + 30, capture.begin() + 70);
  KeyScanner scanner(test_key());
  const auto matches = scanner.scan_capture_prefix(capture, 20);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].matched_bytes, 30u);
  EXPECT_FALSE(matches[0].full);
}

// -- process-space scanning ----------------------------------------------------

TEST(ProcessScan, FindsKeyInOneProcessOnly) {
  sim::KernelConfig cfg;
  cfg.mem_bytes = 4ull << 20;
  sim::Kernel k(cfg);
  auto& victim = k.spawn("victim");
  auto& bystander = k.spawn("bystander");
  const auto img = SslLibrary::limb_image(test_key().p);
  const auto addr = k.heap_alloc(victim, 64);
  k.mem_write(victim, addr, img);
  k.heap_alloc(bystander, 64);

  KeyScanner scanner(test_key());
  const auto victim_matches = scanner.scan_process(k, victim);
  ASSERT_EQ(victim_matches.size(), 1u);
  EXPECT_EQ(victim_matches[0].vaddr, addr);
  EXPECT_EQ(victim_matches[0].part, "P");
  EXPECT_TRUE(scanner.scan_process(k, bystander).empty());
}

TEST(ProcessScan, FindsPatternSpanningScatteredFrames) {
  // Virtually adjacent, physically scattered pages: the physical scan sees
  // fragments, the process (core-dump) scan sees the whole image.
  sim::KernelConfig cfg;
  cfg.mem_bytes = 4ull << 20;
  sim::Kernel k(cfg);
  auto& p = k.spawn("p");
  const auto region = k.mmap_anon(p, 2 * sim::kPageSize, false);
  const auto img = SslLibrary::limb_image(test_key().p);
  // Write straddling the page boundary.
  k.mem_write(p, region + sim::kPageSize - 13, img);
  KeyScanner scanner(test_key());
  const auto matches = scanner.scan_process(k, p);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].vaddr, region + sim::kPageSize - 13);
}

// -- public-key-only hunting -----------------------------------------------------

TEST(KeyHunter, FindsPlantedFactorAndReconstructs) {
  util::Rng rng(9);
  std::vector<std::byte> dump(1 << 16);
  rng.fill_bytes(dump);
  const auto img = SslLibrary::limb_image(test_key().p);
  std::copy(img.begin(), img.end(), dump.begin() + 4096);  // 8-aligned

  KeyHunter hunter(test_key().public_key());
  const auto hits = hunter.hunt(dump);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].offset, 4096u);
  EXPECT_EQ(hits[0].factor, test_key().p);

  const auto rebuilt = hunter.reconstruct(hits[0].factor);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_TRUE(rebuilt->validate());
  EXPECT_EQ(rebuilt->d, test_key().d);
}

TEST(KeyHunter, FindsQToo) {
  std::vector<std::byte> dump(1 << 12, std::byte{0});
  const auto img = SslLibrary::limb_image(test_key().q);
  std::copy(img.begin(), img.end(), dump.begin() + 512);
  KeyHunter hunter(test_key().public_key());
  const auto hits = hunter.hunt(dump);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].factor, test_key().q);
  const auto rebuilt = hunter.reconstruct(hits[0].factor);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(rebuilt->p, test_key().p);  // conventional ordering restored
}

TEST(KeyHunter, NoFalsePositivesOnRandomData) {
  util::Rng rng(10);
  std::vector<std::byte> dump(1 << 18);
  rng.fill_bytes(dump);
  KeyHunter hunter(test_key().public_key());
  EXPECT_TRUE(hunter.hunt(dump).empty());
  EXPECT_FALSE(hunter.compromises(dump));
}

TEST(KeyHunter, UnalignedCopyNeedsStrideOne) {
  std::vector<std::byte> dump(1 << 12, std::byte{0});
  const auto img = SslLibrary::limb_image(test_key().p);
  std::copy(img.begin(), img.end(), dump.begin() + 101);  // unaligned
  KeyHunter hunter(test_key().public_key());
  EXPECT_TRUE(hunter.hunt(dump, 8).empty());
  const auto hits = hunter.hunt(dump, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].offset, 101u);
}

TEST(KeyHunter, ReconstructRejectsNonFactor) {
  KeyHunter hunter(test_key().public_key());
  EXPECT_FALSE(hunter.reconstruct(bn::Bignum(12345)).has_value());
  EXPECT_FALSE(hunter.reconstruct(bn::Bignum{}).has_value());
}

TEST(KeyHunter, EndToEndCompromiseFromNttyDump) {
  // The complete realistic attack: an adversary who knows only the PUBLIC
  // key runs the n_tty exploit against a loaded OpenSSH server and walks
  // away with the full private key.
  core::ScenarioConfig cfg;
  cfg.mem_bytes = 16ull << 20;
  cfg.key_bits = 512;
  cfg.seed = 1717;
  core::Scenario s(cfg);
  servers::SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 15; ++i) server.handle_connection(8 << 10);

  attack::NttyLeak leak(s.kernel());
  auto rng = s.make_rng();
  KeyHunter hunter(s.key().public_key());
  std::optional<crypto::RsaPrivateKey> stolen;
  for (int attempt = 0; attempt < 5 && !stolen; ++attempt) {
    const auto dump = leak.dump(rng);
    // The dump starts at an arbitrary byte offset, so limb alignment is
    // lost; the attacker walks all residues (stride 1).
    const auto hits = hunter.hunt(dump, /*stride=*/1);
    if (!hits.empty()) stolen = hunter.reconstruct(hits[0].factor);
  }
  ASSERT_TRUE(stolen.has_value());
  EXPECT_TRUE(stolen->validate());
  // Prove it: decrypt something encrypted to the server.
  const bn::Bignum m(987654321);
  EXPECT_EQ(stolen->decrypt_crt(s.key().public_key().encrypt_raw(m)), m);
}

TEST(KeyHunter, IntegratedDefenseSurvivesUnluckyDumps) {
  // With the integrated defense the only copy is one page; a dump that
  // misses that page yields nothing an attacker can use.
  core::ScenarioConfig cfg;
  cfg.level = core::ProtectionLevel::kIntegrated;
  cfg.mem_bytes = 16ull << 20;
  cfg.key_bits = 512;
  cfg.seed = 1718;
  core::Scenario s(cfg);
  servers::SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 15; ++i) server.handle_connection(8 << 10);

  // Find the aligned page, then dump a window that excludes it.
  const auto matches = s.scanner().scan_kernel(s.kernel());
  ASSERT_FALSE(matches.empty());
  const std::size_t key_page = matches[0].phys_offset / sim::kPageSize;
  const std::size_t half = s.kernel().memory().size_bytes() / 2;
  const std::size_t offset = (key_page * sim::kPageSize) < half ? half : 0;
  const auto window = s.kernel().memory().range(offset, half);
  KeyHunter hunter(s.key().public_key());
  EXPECT_TRUE(hunter.hunt(window).empty());
}

}  // namespace
}  // namespace keyguard::scan
