// The reproduction's contract tests: for every protection level, the copy
// census after a realistic workload must match what the paper's §5.3/§6.3
// figures show.
#include "core/protection.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "servers/apache_server.hpp"
#include "servers/ssh_server.hpp"

namespace keyguard::core {
namespace {

ScenarioConfig cfg(ProtectionLevel level) {
  ScenarioConfig c;
  c.level = level;
  c.mem_bytes = 16ull << 20;
  c.key_bits = 512;
  c.seed = 99;
  return c;
}

scan::Census run_ssh_workload(Scenario& s, int connections) {
  servers::SshServer server(s.kernel(), s.ssh_config(), s.make_rng());
  EXPECT_TRUE(server.start());
  for (int i = 0; i < connections; ++i) server.handle_connection(8 << 10);
  return scan::KeyScanner::census(s.scanner().scan_kernel(s.kernel()));
}

scan::Census run_apache_workload(Scenario& s, int requests) {
  servers::ApacheServer server(s.kernel(), s.apache_config(), s.make_rng());
  EXPECT_TRUE(server.start());
  server.set_concurrency(8);
  for (int i = 0; i < requests; ++i) server.handle_request();
  return scan::KeyScanner::census(s.scanner().scan_kernel(s.kernel()));
}

TEST(ProtectionNames, AllDistinct) {
  EXPECT_EQ(protection_name(ProtectionLevel::kNone), "none");
  EXPECT_EQ(protection_name(ProtectionLevel::kApplication), "application");
  EXPECT_EQ(protection_name(ProtectionLevel::kLibrary), "library");
  EXPECT_EQ(protection_name(ProtectionLevel::kKernel), "kernel");
  EXPECT_EQ(protection_name(ProtectionLevel::kIntegrated), "integrated");
}

TEST(ProtectionProfiles, FlagsMatchPaperTaxonomy) {
  const auto none = make_profile(ProtectionLevel::kNone, 1 << 20);
  EXPECT_FALSE(none.kernel.zero_on_free);
  EXPECT_FALSE(none.ssl.auto_align);
  EXPECT_FALSE(none.align_at_load);

  const auto app = make_profile(ProtectionLevel::kApplication, 1 << 20);
  EXPECT_TRUE(app.align_at_load);
  EXPECT_TRUE(app.ssh_no_reexec);
  EXPECT_FALSE(app.ssl.auto_align);
  EXPECT_FALSE(app.kernel.zero_on_free);

  const auto lib = make_profile(ProtectionLevel::kLibrary, 1 << 20);
  EXPECT_TRUE(lib.ssl.auto_align);
  EXPECT_FALSE(lib.align_at_load);
  EXPECT_FALSE(lib.kernel.zero_on_free);

  const auto kern = make_profile(ProtectionLevel::kKernel, 1 << 20);
  EXPECT_TRUE(kern.kernel.zero_on_free);
  EXPECT_FALSE(kern.ssl.auto_align);
  EXPECT_FALSE(kern.ssh_no_reexec);

  const auto integrated = make_profile(ProtectionLevel::kIntegrated, 1 << 20);
  EXPECT_TRUE(integrated.kernel.zero_on_free);
  EXPECT_TRUE(integrated.kernel.o_nocache_supported);
  EXPECT_TRUE(integrated.ssl.auto_align);
  EXPECT_TRUE(integrated.ssl.open_keys_nocache);
}

// -- SSH censuses (Figures 5, 9-16) -----------------------------------------

TEST(SshCensus, BaselineFloodsBothPools) {
  Scenario s(cfg(ProtectionLevel::kNone));
  const auto census = run_ssh_workload(s, 12);
  EXPECT_GT(census.allocated, 3u);
  EXPECT_GT(census.unallocated, 0u);
}

TEST(SshCensus, ApplicationLevelNoUnallocatedSmallConstant) {
  Scenario s(cfg(ProtectionLevel::kApplication));
  const auto census = run_ssh_workload(s, 12);
  EXPECT_EQ(census.unallocated, 0u);
  // d, P, Q on the aligned page + the PEM page-cache entry.
  EXPECT_LE(census.allocated, 4u);
  EXPECT_GE(census.allocated, 3u);
}

TEST(SshCensus, LibraryLevelMatchesApplicationLevel) {
  Scenario s(cfg(ProtectionLevel::kLibrary));
  const auto census = run_ssh_workload(s, 12);
  EXPECT_EQ(census.unallocated, 0u);
  EXPECT_LE(census.allocated, 4u);
}

TEST(SshCensus, KernelLevelEliminatesUnallocatedOnly) {
  Scenario s(cfg(ProtectionLevel::kKernel));
  const auto census = run_ssh_workload(s, 12);
  EXPECT_EQ(census.unallocated, 0u);
  // Duplication in allocated memory is NOT addressed (paper Fig 14).
  EXPECT_GT(census.allocated, 4u);
}

TEST(SshCensus, IntegratedLeavesExactlyTheAlignedPage) {
  Scenario s(cfg(ProtectionLevel::kIntegrated));
  const auto census = run_ssh_workload(s, 12);
  EXPECT_EQ(census.unallocated, 0u);
  EXPECT_EQ(census.allocated, 3u);  // d, P, Q on one page; no PEM anywhere
}

// -- Apache censuses (Figures 6, 21-28) --------------------------------------

TEST(ApacheCensus, BaselineFloodsWithWorkerCount) {
  Scenario s(cfg(ProtectionLevel::kNone));
  const auto census = run_apache_workload(s, 30);
  EXPECT_GT(census.allocated, 8u);  // master parse + per-worker mont caches
}

TEST(ApacheCensus, ApplicationLevelSmallConstant) {
  Scenario s(cfg(ProtectionLevel::kApplication));
  const auto census = run_apache_workload(s, 30);
  EXPECT_EQ(census.unallocated, 0u);
  EXPECT_LE(census.allocated, 4u);
}

TEST(ApacheCensus, KernelLevelEliminatesUnallocatedOnly) {
  Scenario s(cfg(ProtectionLevel::kKernel));
  const auto census = run_apache_workload(s, 30);
  EXPECT_EQ(census.unallocated, 0u);
  EXPECT_GT(census.allocated, 4u);
}

TEST(ApacheCensus, IntegratedLeavesExactlyTheAlignedPage) {
  Scenario s(cfg(ProtectionLevel::kIntegrated));
  const auto census = run_apache_workload(s, 30);
  EXPECT_EQ(census.unallocated, 0u);
  EXPECT_EQ(census.allocated, 3u);
}

// -- scenario plumbing --------------------------------------------------------

TEST(Scenario, InstallsKeyFilesAndValidates) {
  Scenario s(cfg(ProtectionLevel::kNone));
  EXPECT_TRUE(s.kernel().vfs().exists(Scenario::kSshKeyPath));
  EXPECT_TRUE(s.kernel().vfs().exists(Scenario::kApacheKeyPath));
  EXPECT_TRUE(s.key().validate());
  EXPECT_EQ(s.key().n.bit_length(), 512u);
}

TEST(Scenario, PrecacheShowsPemBeforeServerStart) {
  Scenario s(cfg(ProtectionLevel::kNone));
  s.precache_key_file(Scenario::kSshKeyPath);
  const auto census = scan::KeyScanner::census(s.scanner().scan_kernel(s.kernel()));
  EXPECT_EQ(census.allocated, 1u);  // the cached PEM, paper's t=0
  EXPECT_EQ(census.unallocated, 0u);
}

TEST(Scenario, DeterministicAcrossConstructions) {
  Scenario a(cfg(ProtectionLevel::kNone));
  Scenario b(cfg(ProtectionLevel::kNone));
  EXPECT_EQ(a.key().n, b.key().n);
  EXPECT_EQ(a.pem(), b.pem());
}

}  // namespace
}  // namespace keyguard::core
