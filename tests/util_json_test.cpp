// JsonWriter: structure, comma placement, escaping, number formatting.
#include "util/json.hpp"

#include <gtest/gtest.h>

namespace keyguard::util {
namespace {

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object()
      .field("name", "scan")
      .field("count", std::uint64_t{3})
      .field("ok", true)
      .end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(), R"({"name":"scan","count":3,"ok":true})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter w;
  w.begin_object().key("rows").begin_array();
  for (int i = 0; i < 3; ++i) w.value(i);
  w.end_array().key("meta").begin_object().field("n", 3).end_object().end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(), R"({"rows":[0,1,2],"meta":{"n":3}})");
}

TEST(JsonWriter, ArrayOfObjects) {
  JsonWriter w;
  w.begin_array();
  w.begin_object().field("a", 1).end_object();
  w.begin_object().field("a", 2).end_object();
  w.end_array();
  EXPECT_EQ(w.str(), R"([{"a":1},{"a":2}])");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_object().field("s", "a\"b\\c\nd\te\x01").end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
}

TEST(JsonWriter, NumbersRoundTripAndNonFiniteBecomesNull) {
  JsonWriter w;
  w.begin_array()
      .value(0.5)
      .value(-3.0)
      .value(std::int64_t{-7})
      .value(1.0 / 0.0)
      .end_array();
  EXPECT_EQ(w.str(), "[0.5,-3,-7,null]");
}

TEST(JsonWriter, IncompleteUntilClosed) {
  JsonWriter w;
  w.begin_object();
  EXPECT_FALSE(w.complete());
  w.end_object();
  EXPECT_TRUE(w.complete());
}

TEST(JsonWriter, EscapesHighBytes) {
  // Bytes >= 0x80 escape as \u00XX (byte-transparent Latin-1 view), so
  // raw needle fragments in trace attrs stay printable 7-bit ASCII. The
  // old behaviour passed a SIGNED char to %04x — 0xFF printed as
  // ￿ffff, corrupt JSON.
  JsonWriter w;
  w.begin_object().field("s", "\x7f\x80\xa5\xff").end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"\\u007f\\u0080\\u00a5\\u00ff\"}");
}

TEST(JsonWriter, EveryControlByteEscapes) {
  for (int c = 1; c < 0x20; ++c) {
    JsonWriter w;
    w.begin_object().field("s", std::string(1, static_cast<char>(c))).end_object();
    const auto out = w.str();
    // No raw control byte may survive into the output.
    for (const char ch : out) {
      EXPECT_GE(static_cast<unsigned char>(ch), 0x20u) << "byte " << c;
    }
  }
}

// Minimal decoder for exactly the escapes JsonWriter emits — enough to
// prove the encoding is lossless for arbitrary byte strings.
std::string decode_json_string(std::string_view s) {
  std::string out;
  for (std::size_t i = 0; i < s.size();) {
    if (s[i] != '\\') {
      out.push_back(s[i++]);
      continue;
    }
    const char e = s[i + 1];
    if (e == 'u') {
      out.push_back(static_cast<char>(
          std::stoi(std::string(s.substr(i + 2, 4)), nullptr, 16)));
      i += 6;
    } else {
      switch (e) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        default: ADD_FAILURE() << "unexpected escape " << e;
      }
      i += 2;
    }
  }
  return out;
}

TEST(JsonWriter, FuzzRoundTripArbitraryBytes) {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    const std::size_t len = next() % 64;
    for (std::size_t i = 0; i < len; ++i) {
      char c = static_cast<char>(next() & 0xff);
      if (c == '\0') c = '\x01';  // value() takes a C-string-safe view
      input.push_back(c);
    }
    JsonWriter w;
    w.begin_object().field("s", input).end_object();
    const auto out = w.str();
    // Output must be pure printable ASCII...
    for (const char ch : out) {
      const auto b = static_cast<unsigned char>(ch);
      ASSERT_TRUE(b >= 0x20 && b < 0x7f) << "trial " << trial;
    }
    // ...and decode back to the exact input bytes.
    const auto body = out.substr(6, out.size() - 8);  // {"s":"..."}
    ASSERT_EQ(decode_json_string(body), input) << "trial " << trial;
  }
}

}  // namespace
}  // namespace keyguard::util
