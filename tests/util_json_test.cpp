// JsonWriter: structure, comma placement, escaping, number formatting.
#include "util/json.hpp"

#include <gtest/gtest.h>

namespace keyguard::util {
namespace {

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object()
      .field("name", "scan")
      .field("count", std::uint64_t{3})
      .field("ok", true)
      .end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(), R"({"name":"scan","count":3,"ok":true})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter w;
  w.begin_object().key("rows").begin_array();
  for (int i = 0; i < 3; ++i) w.value(i);
  w.end_array().key("meta").begin_object().field("n", 3).end_object().end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(), R"({"rows":[0,1,2],"meta":{"n":3}})");
}

TEST(JsonWriter, ArrayOfObjects) {
  JsonWriter w;
  w.begin_array();
  w.begin_object().field("a", 1).end_object();
  w.begin_object().field("a", 2).end_object();
  w.end_array();
  EXPECT_EQ(w.str(), R"([{"a":1},{"a":2}])");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_object().field("s", "a\"b\\c\nd\te\x01").end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
}

TEST(JsonWriter, NumbersRoundTripAndNonFiniteBecomesNull) {
  JsonWriter w;
  w.begin_array()
      .value(0.5)
      .value(-3.0)
      .value(std::int64_t{-7})
      .value(1.0 / 0.0)
      .end_array();
  EXPECT_EQ(w.str(), "[0.5,-3,-7,null]");
}

TEST(JsonWriter, IncompleteUntilClosed) {
  JsonWriter w;
  w.begin_object();
  EXPECT_FALSE(w.complete());
  w.end_object();
  EXPECT_TRUE(w.complete());
}

}  // namespace
}  // namespace keyguard::util
