#include "servers/apache_server.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "sslsim/ssl_library.hpp"
#include "util/bytes.hpp"

namespace keyguard::servers {
namespace {

using core::ProtectionLevel;
using core::Scenario;
using core::ScenarioConfig;

ScenarioConfig cfg(ProtectionLevel level = ProtectionLevel::kNone) {
  ScenarioConfig c;
  c.level = level;
  c.mem_bytes = 16ull << 20;
  c.key_bits = 512;
  c.seed = 77;
  return c;
}

TEST(ApacheServer, StartPreforksWorkers) {
  Scenario s(cfg());
  auto config = s.apache_config();
  config.start_servers = 4;
  ApacheServer server(s.kernel(), config, s.make_rng());
  ASSERT_TRUE(server.start());
  EXPECT_EQ(server.worker_count(), 4u);
  EXPECT_EQ(s.kernel().live_process_count(), 5u);  // master + 4
  server.stop();
  EXPECT_EQ(s.kernel().live_process_count(), 0u);
}

TEST(ApacheServer, StartFailsWithoutKey) {
  Scenario s(cfg());
  auto config = s.apache_config();
  config.key_path = "/missing";
  ApacheServer server(s.kernel(), config, s.make_rng());
  EXPECT_FALSE(server.start());
}

TEST(ApacheServer, RequestsRoundRobinAndSucceed) {
  Scenario s(cfg());
  auto config = s.apache_config();
  config.start_servers = 3;
  ApacheServer server(s.kernel(), config, s.make_rng());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 9; ++i) EXPECT_TRUE(server.handle_request());
  EXPECT_EQ(server.total_handshakes(), 9u);
}

TEST(ApacheServer, WorkersBuildPrivateMontgomeryCaches) {
  // Baseline: first request per worker writes a P copy into ITS heap
  // (COW break), so copies grow with the number of active workers.
  Scenario s(cfg(ProtectionLevel::kNone));
  auto config = s.apache_config();
  config.start_servers = 4;
  ApacheServer server(s.kernel(), config, s.make_rng());
  ASSERT_TRUE(server.start());
  const auto p_img = sslsim::SslLibrary::limb_image(s.key().p);
  const auto before = util::find_all(s.kernel().memory().all(), p_img).size();
  for (int i = 0; i < 4; ++i) server.handle_request();  // one per worker
  const auto after = util::find_all(s.kernel().memory().all(), p_img).size();
  // Each worker contributes at least the cached BN_MONT_CTX copy of P; the
  // cache write also COW-duplicates the heap page holding the parsed key,
  // so two copies per worker is the realistic outcome.
  EXPECT_GE(after, before + 4);
  // Further requests reuse the caches.
  for (int i = 0; i < 4; ++i) server.handle_request();
  EXPECT_EQ(util::find_all(s.kernel().memory().all(), p_img).size(), after);
}

TEST(ApacheServer, AlignedKeyStaysSingleAcrossWorkers) {
  Scenario s(cfg(ProtectionLevel::kIntegrated));
  auto config = s.apache_config();
  config.start_servers = 6;
  ApacheServer server(s.kernel(), config, s.make_rng());
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 12; ++i) EXPECT_TRUE(server.handle_request());
  const auto p_img = sslsim::SslLibrary::limb_image(s.key().p);
  EXPECT_EQ(util::find_all(s.kernel().memory().all(), p_img).size(), 1u);
}

TEST(ApacheServer, SetConcurrencyGrowsAndReapsPool) {
  Scenario s(cfg());
  auto config = s.apache_config();
  config.start_servers = 4;
  config.spare_workers = 2;
  config.max_workers = 32;
  ApacheServer server(s.kernel(), config, s.make_rng());
  ASSERT_TRUE(server.start());
  server.set_concurrency(16);
  EXPECT_EQ(server.worker_count(), 18u);
  server.set_concurrency(8);
  EXPECT_EQ(server.worker_count(), 10u);
  server.set_concurrency(0);
  EXPECT_EQ(server.worker_count(), 4u);  // floor at StartServers
}

TEST(ApacheServer, ReapedWorkersDumpCachesIntoFreeMemory) {
  // The paper's observation (3) in §3.2: dropping load INCREASES the
  // number of key copies in unallocated memory.
  Scenario s(cfg(ProtectionLevel::kNone));
  auto config = s.apache_config();
  config.start_servers = 2;
  config.spare_workers = 0;
  ApacheServer server(s.kernel(), config, s.make_rng());
  ASSERT_TRUE(server.start());
  server.set_concurrency(12);
  for (int i = 0; i < 24; ++i) server.handle_request();  // warm every worker
  const auto census_before =
      scan::KeyScanner::census(s.scanner().scan_kernel(s.kernel()));
  server.set_concurrency(2);  // reap ~10 workers
  const auto census_after =
      scan::KeyScanner::census(s.scanner().scan_kernel(s.kernel()));
  EXPECT_GT(census_after.unallocated, census_before.unallocated);
}

TEST(ApacheServer, MaxWorkersRespected) {
  Scenario s(cfg());
  auto config = s.apache_config();
  config.start_servers = 2;
  config.max_workers = 5;
  ApacheServer server(s.kernel(), config, s.make_rng());
  ASSERT_TRUE(server.start());
  server.set_concurrency(50);
  EXPECT_EQ(server.worker_count(), 5u);
}

TEST(ApacheServer, RequestFailsWhenDown) {
  Scenario s(cfg());
  ApacheServer server(s.kernel(), s.apache_config(), s.make_rng());
  EXPECT_FALSE(server.handle_request());
}

}  // namespace
}  // namespace keyguard::servers
