// Equivalence battery for the parallel sharded scanner: for every shard
// count, the scan must produce results byte-for-byte identical (same
// matches, same order, same census) to the serial walk — across pattern
// sets, capture sizes (including non-multiples of the shard size), and
// randomized contents.
#include "scan/key_scanner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sslsim/ssl_library.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace keyguard::scan {
namespace {

using sslsim::SslLibrary;

const crypto::RsaPrivateKey& test_key() {
  static const crypto::RsaPrivateKey k = [] {
    util::Rng rng(31337);
    return crypto::generate_rsa_key(rng, 512);
  }();
  return k;
}

const std::size_t kShardCounts[] = {1, 2, 4, 8};

void plant(std::vector<std::byte>& capture, std::size_t offset,
           std::span<const std::byte> bytes) {
  ASSERT_LE(offset + bytes.size(), capture.size());
  std::copy(bytes.begin(), bytes.end(), capture.begin() + offset);
}

void expect_same_captures(const std::vector<CaptureMatch>& a,
                          const std::vector<CaptureMatch>& b,
                          std::size_t shards) {
  ASSERT_EQ(a.size(), b.size()) << shards << " shards";
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset) << shards << " shards, match " << i;
    EXPECT_EQ(a[i].part, b[i].part) << shards << " shards, match " << i;
  }
}

void expect_same_partials(const std::vector<PartialMatch>& a,
                          const std::vector<PartialMatch>& b,
                          std::size_t shards) {
  ASSERT_EQ(a.size(), b.size()) << shards << " shards";
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset) << shards << " shards, match " << i;
    EXPECT_EQ(a[i].part, b[i].part) << shards << " shards, match " << i;
    EXPECT_EQ(a[i].matched_bytes, b[i].matched_bytes)
        << shards << " shards, match " << i;
    EXPECT_EQ(a[i].full, b[i].full) << shards << " shards, match " << i;
  }
}

void expect_same_memory_matches(const std::vector<MemoryMatch>& a,
                                const std::vector<MemoryMatch>& b,
                                std::size_t shards) {
  ASSERT_EQ(a.size(), b.size()) << shards << " shards";
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].phys_offset, b[i].phys_offset) << shards << " shards, " << i;
    EXPECT_EQ(a[i].part, b[i].part) << shards << " shards, " << i;
    EXPECT_EQ(a[i].frame, b[i].frame) << shards << " shards, " << i;
    EXPECT_EQ(a[i].state, b[i].state) << shards << " shards, " << i;
    EXPECT_EQ(a[i].owners, b[i].owners) << shards << " shards, " << i;
    EXPECT_EQ(a[i].provenance, b[i].provenance) << shards << " shards, " << i;
  }
}

// Captures of awkward sizes, randomized needle placement: every shard
// count returns the serial result.
TEST(ScanParallelEquivalence, RandomizedCapturesAllShardCounts) {
  const std::size_t sizes[] = {
      sim::kPageSize * 3 + 123,  // non-multiple of the page size
      1u << 16,                  // exact power of two
      257 * 1024 + 1,            // prime-ish, > 8 shards worth
      4097,                      // barely two pages
  };
  KeyScanner scanner(test_key());
  util::Rng rng(777);
  for (const std::size_t size : sizes) {
    std::vector<std::byte> capture(size, std::byte{0});
    // Plant 6 needles at random offsets (collisions/overlaps are fine —
    // both paths must agree on whatever pattern soup results).
    const auto& pats = scanner.patterns().patterns;
    for (int i = 0; i < 6; ++i) {
      const auto& p = pats[rng.next_below(pats.size())];
      if (p.bytes.size() > size) continue;
      plant(capture, rng.next_below(size - p.bytes.size() + 1), p.bytes);
    }
    scanner.set_shards(1);
    const auto serial = scanner.scan_capture(capture);
    EXPECT_FALSE(serial.empty()) << "size " << size;
    for (const std::size_t shards : kShardCounts) {
      scanner.set_shards(shards);
      expect_same_captures(serial, scanner.scan_capture(capture), shards);
    }
  }
}

TEST(ScanParallelEquivalence, PrefixScanAllShardCounts) {
  KeyScanner scanner(test_key());
  util::Rng rng(888);
  std::vector<std::byte> capture(100 * 1024 + 37, std::byte{0});
  const auto& pats = scanner.patterns().patterns;
  // Full needles, plus truncated prefixes that only the partial path sees.
  for (int i = 0; i < 4; ++i) {
    const auto& p = pats[rng.next_below(pats.size())];
    plant(capture, rng.next_below(capture.size() - p.bytes.size() + 1), p.bytes);
    const std::size_t cut = 20 + rng.next_below(p.bytes.size() - 20);
    const auto prefix = std::span<const std::byte>(p.bytes).first(cut);
    plant(capture, rng.next_below(capture.size() - cut + 1), prefix);
  }
  scanner.set_shards(1);
  const auto serial = scanner.scan_capture_prefix(capture);
  EXPECT_FALSE(serial.empty());
  EXPECT_TRUE(std::any_of(serial.begin(), serial.end(),
                          [](const PartialMatch& m) { return !m.full; }));
  for (const std::size_t shards : kShardCounts) {
    scanner.set_shards(shards);
    expect_same_partials(serial, scanner.scan_capture_prefix(capture), shards);
  }
}

// Full kernel scans: metadata (frame, state, owners, provenance) must be
// identical too, not just offsets — and so must the census.
TEST(ScanParallelEquivalence, KernelScanAllShardCounts) {
  sim::KernelConfig cfg;
  cfg.mem_bytes = 8ull << 20;
  sim::Kernel k(cfg);
  auto& alive = k.spawn("alive");
  auto& doomed = k.spawn("doomed");
  for (int i = 0; i < 3; ++i) {
    k.mem_write(alive, k.heap_alloc(alive, 128),
                SslLibrary::limb_image(test_key().p));
    k.mem_write(doomed, k.heap_alloc(doomed, 128),
                SslLibrary::limb_image(test_key().q));
  }
  k.exit_process(doomed);

  KeyScanner scanner(test_key());
  scanner.set_shards(1);
  const auto serial = scanner.scan_kernel(k);
  ASSERT_EQ(serial.size(), 6u);
  const auto serial_census = KeyScanner::census(serial);
  for (const std::size_t shards : kShardCounts) {
    scanner.set_shards(shards);
    const auto parallel = scanner.scan_kernel(k);
    expect_same_memory_matches(serial, parallel, shards);
    const auto census = KeyScanner::census(parallel);
    EXPECT_EQ(census.allocated, serial_census.allocated) << shards;
    EXPECT_EQ(census.unallocated, serial_census.unallocated) << shards;
  }
}

// Self-overlapping needles across seams: a run of repeated bytes yields
// overlapping matches; attribution at shard boundaries must not double- or
// under-count them.
TEST(ScanParallelEquivalence, OverlappingMatchesAcrossSeams) {
  KeyPatterns pats;
  pats.patterns.push_back({"AA", std::vector<std::byte>(8, std::byte{0xAA})});
  KeyScanner scanner(pats);
  std::vector<std::byte> capture(sim::kPageSize * 4, std::byte{0});
  // A 64-byte run of 0xAA straddling the 2-shard seam (page 2 boundary).
  const std::size_t seam = sim::kPageSize * 2;
  std::fill(capture.begin() + seam - 32, capture.begin() + seam + 32,
            std::byte{0xAA});
  scanner.set_shards(1);
  const auto serial = scanner.scan_capture(capture);
  EXPECT_EQ(serial.size(), 64u - 8u + 1u);
  for (const std::size_t shards : kShardCounts) {
    scanner.set_shards(shards);
    expect_same_captures(serial, scanner.scan_capture(capture), shards);
  }
}

TEST(ScanParallelEquivalence, MoreShardsThanPagesClamps) {
  KeyScanner scanner(test_key());
  std::vector<std::byte> capture(sim::kPageSize * 2, std::byte{0});
  plant(capture, 100, SslLibrary::limb_image(test_key().p));
  scanner.set_shards(64);  // only 2 pages to split
  ScanStats stats;
  const auto matches = scanner.scan_capture(capture, &stats);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_LE(stats.shard_count, 2u);
  EXPECT_GE(stats.shard_count, 1u);
}

TEST(ScanStatsReporting, CaptureStatsAddUp) {
  KeyScanner scanner(test_key());
  scanner.set_shards(4);
  std::vector<std::byte> capture(sim::kPageSize * 7 + 999, std::byte{0});
  plant(capture, 5, SslLibrary::limb_image(test_key().p));
  plant(capture, sim::kPageSize * 5, SslLibrary::limb_image(test_key().d));
  ScanStats stats;
  const auto matches = scanner.scan_capture(capture, &stats);
  EXPECT_EQ(stats.bytes_scanned, capture.size());
  EXPECT_EQ(stats.match_count, matches.size());
  EXPECT_EQ(stats.pattern_count, 4u);
  ASSERT_EQ(stats.shards.size(), stats.shard_count);
  std::size_t payload = 0, shard_matches = 0;
  for (const auto& s : stats.shards) {
    payload += s.bytes;
    shard_matches += s.matches;
    EXPECT_EQ(s.bytes % sim::kPageSize == 0 || s.index == stats.shard_count - 1,
              true)
        << "inner shards are whole frames";
    EXPECT_GE(s.millis, 0.0);
  }
  EXPECT_EQ(payload, capture.size());  // shards tile the buffer exactly
  EXPECT_EQ(shard_matches, matches.size());
  EXPECT_GE(stats.wall_millis, 0.0);
  EXPECT_GE(stats.mb_per_sec(), 0.0);
  EXPECT_FALSE(stats.summary().empty());
}

TEST(ScanStatsReporting, KernelAndPrefixScansReportStats) {
  sim::KernelConfig cfg;
  cfg.mem_bytes = 4ull << 20;
  sim::Kernel k(cfg);
  KeyScanner scanner(test_key());
  scanner.set_shards(2);
  ScanStats stats;
  (void)scanner.scan_kernel(k, &stats);
  EXPECT_EQ(stats.bytes_scanned, k.memory().size_bytes());
  EXPECT_EQ(stats.shard_count, 2u);
  EXPECT_EQ(stats.match_count, 0u);

  std::vector<std::byte> capture(sim::kPageSize, std::byte{0});
  ScanStats pstats;
  (void)scanner.scan_capture_prefix(capture, 20, &pstats);
  EXPECT_EQ(pstats.bytes_scanned, capture.size());
  EXPECT_EQ(pstats.shard_count, 1u);  // one page => one shard
}

// The documented order contract: ascending phys_offset with the pattern
// list order (d, P, Q, PEM) breaking ties, for every shard count.
TEST(ScanParallelEquivalence, MergePreservesPhysOffsetOrder) {
  KeyScanner scanner(test_key());
  util::Rng rng(999);
  std::vector<std::byte> capture(64 * 1024, std::byte{0});
  const auto& pats = scanner.patterns().patterns;
  for (int i = 0; i < 10; ++i) {
    const auto& p = pats[rng.next_below(pats.size())];
    if (p.bytes.size() > capture.size()) continue;
    plant(capture, rng.next_below(capture.size() - p.bytes.size() + 1), p.bytes);
  }
  for (const std::size_t shards : kShardCounts) {
    scanner.set_shards(shards);
    const auto matches = scanner.scan_capture(capture);
    for (std::size_t i = 1; i < matches.size(); ++i) {
      EXPECT_LE(matches[i - 1].offset, matches[i].offset)
          << shards << " shards";
    }
  }
}

}  // namespace
}  // namespace keyguard::scan
