// Host-side keystore: sealed-blob format, pool bound + LRU discipline,
// hit-path-does-no-decryption, and thread safety of the shared pool.
#include "keystore/keystore.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "crypto/pem.hpp"
#include "keystore/sealed_blob.hpp"
#include "util/rng.hpp"

namespace keyguard::keystore {
namespace {

std::vector<crypto::RsaPrivateKey> make_keys(std::size_t n, std::uint64_t seed = 42,
                                             std::size_t bits = 512) {
  util::Rng rng(seed);
  std::vector<crypto::RsaPrivateKey> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(crypto::generate_rsa_key(rng, bits));
  return out;
}

std::vector<std::byte> test_master(std::uint64_t seed = 1) {
  std::vector<std::byte> m(kMasterKeyBytes);
  util::Rng rng(seed);
  rng.fill_bytes(m);
  return m;
}

/// signature^e mod n == m: the only check that proves the pool entry holds
/// the RIGHT key, not just some key.
void expect_valid_signature(const crypto::RsaPublicKey& pub, const bn::Bignum& m,
                            const bn::Bignum& sig) {
  EXPECT_EQ(pub.encrypt_raw(sig), m);
}

TEST(SealedBlob, RoundTrips) {
  const auto master = test_master();
  const std::vector<std::byte> plain = {std::byte{1}, std::byte{2}, std::byte{0},
                                        std::byte{255}, std::byte{42}};
  const auto blob = seal(plain, master, 7);
  ASSERT_EQ(blob.size(), plain.size() + kSealedHeaderBytes);
  const auto back = unseal(blob, master);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, plain);
}

TEST(SealedBlob, CiphertextDiffersFromPlaintextAndByNonce) {
  const auto master = test_master();
  std::vector<std::byte> plain(64, std::byte{0xAA});
  const auto b1 = seal(plain, master, 1);
  const auto b2 = seal(plain, master, 2);
  EXPECT_NE(std::vector<std::byte>(b1.begin() + kSealedHeaderBytes, b1.end()), plain);
  EXPECT_NE(b1, b2) << "nonce must diversify the keystream";
}

TEST(SealedBlob, RejectsBadMagicAndShortInput) {
  const auto master = test_master();
  auto blob = seal(test_master(9), master, 3);
  blob[0] = std::byte{'X'};
  EXPECT_FALSE(unseal(blob, master).has_value());
  EXPECT_FALSE(unseal(std::vector<std::byte>(4), master).has_value());
}

TEST(SealedBlob, WrongMasterYieldsGarbageNotPlaintext) {
  const auto master = test_master(1);
  const auto other = test_master(2);
  std::vector<std::byte> plain(128, std::byte{0x5C});
  const auto blob = seal(plain, master, 11);
  const auto back = unseal(blob, other);
  ASSERT_TRUE(back.has_value());  // format is fine; contents are not
  EXPECT_NE(*back, plain);
}

TEST(SealedBlob, KeystreamXorIsAnInvolution) {
  const auto master = test_master();
  std::vector<std::byte> data(100);
  util::Rng(5).fill_bytes(data);
  auto copy = data;
  keystream_xor(copy, master, 21);
  EXPECT_NE(copy, data);
  keystream_xor(copy, master, 21);
  EXPECT_EQ(copy, data);
}

TEST(Keystore, SignsWithTheRightKeyPerId) {
  auto keys = make_keys(5);
  Keystore ks({.pool_keys = 2});
  std::vector<KeyId> ids;
  for (const auto& k : keys) ids.push_back(ks.add_key(k));
  EXPECT_EQ(ks.size(), 5u);
  const bn::Bignum m(123456789);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    expect_valid_signature(keys[i].public_key(), m, ks.sign(ids[i], m));
  }
}

TEST(Keystore, PoolNeverExceedsBound) {
  auto keys = make_keys(6);
  Keystore ks({.pool_keys = 2});
  std::vector<KeyId> ids;
  for (const auto& k : keys) ids.push_back(ks.add_key(k));
  const bn::Bignum m(77);
  for (int round = 0; round < 3; ++round) {
    for (const auto id : ids) {
      ks.sign(id, m);
      EXPECT_LE(ks.pooled_count(), 2u);
    }
  }
  EXPECT_GT(ks.stats().evictions, 0u);
}

TEST(Keystore, LruKeepsTheHotKeyPooled) {
  auto keys = make_keys(3);
  Keystore ks({.pool_keys = 2});
  const KeyId hot = ks.add_key(keys[0]);
  const KeyId a = ks.add_key(keys[1]);
  const KeyId b = ks.add_key(keys[2]);
  const bn::Bignum m(99);
  ks.sign(hot, m);
  ks.sign(a, m);   // pool = {hot, a}
  ks.sign(hot, m); // refreshes hot
  ks.sign(b, m);   // evicts a (LRU), not hot
  EXPECT_TRUE(ks.pooled(hot));
  EXPECT_TRUE(ks.pooled(b));
  EXPECT_FALSE(ks.pooled(a));
}

TEST(Keystore, PoolHitDoesNoDecryption) {
  auto keys = make_keys(1);
  Keystore ks({.pool_keys = 2});
  const KeyId id = ks.add_key(keys[0]);
  const bn::Bignum m(1234);
  ks.sign(id, m);
  const auto unseals_after_first = ks.stats().unseals;
  EXPECT_EQ(unseals_after_first, 1u);
  for (int i = 0; i < 10; ++i) ks.sign(id, m);
  EXPECT_EQ(ks.stats().unseals, unseals_after_first)
      << "pool hits must serve straight from the working copy";
  EXPECT_EQ(ks.stats().pool_hits, 10u);
}

TEST(Keystore, AddKeyScrubbingDestroysTheCallerCopy) {
  auto keys = make_keys(1);
  auto& key = keys[0];
  const auto pub = key.public_key();
  Keystore ks({.pool_keys = 1});
  const KeyId id = ks.add_key_scrubbing(key);
  EXPECT_TRUE(key.d.is_zero());
  EXPECT_TRUE(key.p.is_zero());
  EXPECT_TRUE(key.q.is_zero());
  const bn::Bignum m(55);
  expect_valid_signature(pub, m, ks.sign(id, m));
}

TEST(Keystore, AddPemRoundTrips) {
  auto keys = make_keys(1, 77);
  Keystore ks({.pool_keys = 1});
  const auto id = ks.add_pem(crypto::pem_encode_private_key(keys[0]));
  ASSERT_TRUE(id.has_value());
  EXPECT_FALSE(ks.add_pem("not a pem").has_value());
  const bn::Bignum m(31337);
  expect_valid_signature(keys[0].public_key(), m, ks.sign(*id, m));
}

TEST(Keystore, MasterKeyIsLockedAndEvictAllEmptiesThePool) {
  auto keys = make_keys(2);
  Keystore ks({.pool_keys = 2});
  const KeyId a = ks.add_key(keys[0]);
  const KeyId b = ks.add_key(keys[1]);
  EXPECT_TRUE(ks.master_locked());
  const bn::Bignum m(2);
  ks.sign(a, m);
  ks.sign(b, m);
  EXPECT_EQ(ks.pooled_count(), 2u);
  ks.evict_all();
  EXPECT_EQ(ks.pooled_count(), 0u);
  expect_valid_signature(keys[0].public_key(), m, ks.sign(a, m));  // re-materializes
}

// The pool is shared mutable state guarded by one mutex + pins; this is
// the test TSan watches. More threads than pool slots forces the
// eviction/wait paths under contention.
TEST(Keystore, ConcurrentSigningIsRaceFreeAndCorrect) {
  auto keys = make_keys(6, 1234);
  Keystore ks({.pool_keys = 3});
  std::vector<KeyId> ids;
  for (const auto& k : keys) ids.push_back(ks.add_key(k));

  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      util::Rng rng(9000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto idx = static_cast<std::size_t>(rng.next_below(ids.size()));
        const bn::Bignum m(rng.next_below(1u << 30) + 2);
        const auto sig = ks.sign(ids[idx], m);
        if (keys[idx].public_key().encrypt_raw(sig) != m) ++failures;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ks.stats().ops, static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(ks.pooled_count(), 3u);
}

}  // namespace
}  // namespace keyguard::keystore
