// Randomized invariant tests for the simulator's trickiest machinery:
// copy-on-write fork trees, the heap allocator against a reference model,
// whole-simulation determinism, and graceful behaviour at memory
// exhaustion. Parameterised over seeds so each case runs as several
// independent trials.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/kernel.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace keyguard::sim {
namespace {

class SimFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// -- COW fork trees -----------------------------------------------------------

TEST_P(SimFuzz, CowForkTreeContentIsolation) {
  // Random forks, writes and exits; every process's view must match a
  // host-side shadow copy at every step, and refcounts must stay sane.
  KernelConfig cfg;
  cfg.mem_bytes = 8ull << 20;
  Kernel k(cfg, GetParam());
  util::Rng rng(GetParam() * 31 + 7);

  struct Shadow {
    Process* proc;
    std::vector<std::byte> expect;  // expected content of the region
  };
  std::vector<Shadow> shadows;

  auto& root = k.spawn("root");
  const std::size_t region_bytes = 4 * kPageSize;
  const VirtAddr region = k.mmap_anon(root, region_bytes, false);
  ASSERT_NE(region, 0u);
  shadows.push_back({&root, std::vector<std::byte>(region_bytes, std::byte{0})});

  for (int step = 0; step < 120; ++step) {
    const auto action = rng.next_below(10);
    if (action < 3 && shadows.size() < 12) {
      // fork a random live process
      const auto idx = rng.next_below(shadows.size());
      auto& child = k.fork(*shadows[idx].proc, "child");
      shadows.push_back({&child, shadows[idx].expect});
    } else if (action < 8) {
      // random write in a random process
      const auto idx = rng.next_below(shadows.size());
      const std::size_t off = rng.next_below(region_bytes - 64);
      std::vector<std::byte> data(1 + rng.next_below(64));
      rng.fill_bytes(data);
      k.mem_write(*shadows[idx].proc, region + off, data);
      std::copy(data.begin(), data.end(), shadows[idx].expect.begin() + static_cast<std::ptrdiff_t>(off));
    } else if (shadows.size() > 1) {
      // exit a random non-root process
      const auto idx = 1 + rng.next_below(shadows.size() - 1);
      k.exit_process(*shadows[idx].proc);
      shadows.erase(shadows.begin() + static_cast<std::ptrdiff_t>(idx));
    }

    // Verify every live process sees exactly its own data.
    for (const auto& s : shadows) {
      std::vector<std::byte> got(region_bytes);
      k.mem_read(*s.proc, region, got);
      ASSERT_EQ(got, s.expect) << "step " << step;
    }
  }

  // Frame refcount audit: every mapped frame's refcount equals the number
  // of page-table entries referencing it, across all live processes.
  std::map<FrameNumber, std::uint32_t> counted;
  for (const auto& proc : k.processes()) {
    if (!proc->alive()) continue;
    for (const auto& [addr, pte] : proc->page_table()) {
      if (!pte.swapped) ++counted[pte.frame];
    }
  }
  for (const auto& [frame, n] : counted) {
    EXPECT_EQ(k.allocator().refcount(frame), n) << "frame " << frame;
    EXPECT_FALSE(k.allocator().is_free(frame));
  }
}

// -- heap allocator vs reference model ----------------------------------------

TEST_P(SimFuzz, HeapAllocatorAgainstReferenceModel) {
  KernelConfig cfg;
  cfg.mem_bytes = 8ull << 20;
  Kernel k(cfg, GetParam());
  util::Rng rng(GetParam() * 131 + 3);
  auto& p = k.spawn("p");

  // Reference: live chunks as [addr, addr+size) intervals.
  std::map<VirtAddr, std::size_t> live;
  for (int step = 0; step < 800; ++step) {
    if (live.empty() || rng.next_bool(0.6)) {
      const std::size_t size = 1 + rng.next_below(2000);
      const VirtAddr a = k.heap_alloc(p, size);
      if (a == 0) continue;  // heap exhausted: acceptable
      const std::size_t got = k.heap_chunk_size(p, a);
      ASSERT_GE(got, size);
      // No overlap with any live chunk.
      const auto next = live.lower_bound(a);
      if (next != live.end()) ASSERT_LE(a + got, next->first);
      if (next != live.begin()) {
        const auto prev = std::prev(next);
        ASSERT_LE(prev->first + prev->second, a);
      }
      live[a] = got;
      // Writing the whole chunk must not disturb neighbours (checked
      // implicitly by the overlap assertions plus content checks below).
      std::vector<std::byte> fill(got);
      rng.fill_bytes(fill);
      k.mem_write(p, a, fill);
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.next_below(live.size())));
      if (rng.next_bool()) {
        k.heap_free(p, it->first);
      } else {
        k.heap_clear_free(p, it->first);
      }
      live.erase(it);
    }
  }
  EXPECT_EQ(p.heap().live_chunks(), live.size());
}

// -- determinism ---------------------------------------------------------------

TEST_P(SimFuzz, IdenticalSeedsGiveIdenticalMemories) {
  auto run = [&](std::uint64_t seed) {
    KernelConfig cfg;
    cfg.mem_bytes = 4ull << 20;
    Kernel k(cfg, seed);
    util::Rng rng(seed + 1);
    auto& a = k.spawn("a");
    std::vector<Process*> procs{&a};
    k.mmap_anon(a, 2 * kPageSize, false);
    for (int i = 0; i < 200; ++i) {
      const auto action = rng.next_below(5);
      auto* proc = procs[rng.next_below(procs.size())];
      if (!proc->alive()) continue;
      switch (action) {
        case 0: {
          if (procs.size() < 8) procs.push_back(&k.fork(*proc, "f"));
          break;
        }
        case 1: {
          const VirtAddr addr = k.heap_alloc(*proc, 64 + rng.next_below(512));
          if (addr != 0) {
            std::vector<std::byte> data(32);
            rng.fill_bytes(data);
            k.mem_write(*proc, addr, data);
          }
          break;
        }
        case 2: {
          if (procs.size() > 1 && proc != procs.front()) k.exit_process(*proc);
          break;
        }
        default: {
          const VirtAddr addr = k.heap_alloc(*proc, 128);
          if (addr != 0) k.heap_free(*proc, addr);
          break;
        }
      }
    }
    return util::fnv1a(k.memory().all());
  };
  const auto seed = GetParam();
  EXPECT_EQ(run(seed), run(seed));
  // And a different seed gives (almost surely) a different memory image.
  EXPECT_NE(run(seed), run(seed + 12345));
}

// -- exhaustion / failure injection ---------------------------------------------

TEST_P(SimFuzz, GracefulAtPhysicalExhaustion) {
  KernelConfig cfg;
  cfg.mem_bytes = 32 * kPageSize;  // tiny machine
  Kernel k(cfg, GetParam());
  auto& p = k.spawn("p");
  // Grab everything.
  std::size_t mapped = 0;
  for (;;) {
    const VirtAddr a = k.mmap_anon(p, kPageSize, false);
    if (a == 0) break;
    ++mapped;
  }
  EXPECT_GT(mapped, 0u);
  EXPECT_EQ(k.allocator().free_count(), 0u);
  // Further allocation attempts fail cleanly.
  EXPECT_EQ(k.mmap_anon(p, kPageSize, false), 0u);
  // Page-cache fills fail cleanly too.
  std::vector<std::byte> content(kPageSize);
  EXPECT_FALSE(k.page_cache().populate("/f", content));
  // Exit releases everything.
  k.exit_process(p);
  EXPECT_EQ(k.allocator().free_count(), 32u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFuzz, ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace keyguard::sim
