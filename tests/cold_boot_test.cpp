#include "scan/cold_boot_reconstruct.hpp"

#include <gtest/gtest.h>

#include "attack/cold_boot.hpp"
#include "sslsim/ssl_library.hpp"
#include "util/bytes.hpp"

namespace keyguard::scan {
namespace {

using sslsim::SslLibrary;

const crypto::RsaPrivateKey& test_key() {
  static const crypto::RsaPrivateKey k = [] {
    util::Rng rng(515);
    return crypto::generate_rsa_key(rng, 512);
  }();
  return k;
}

TEST(DecayImage, RateZeroIsIdentity) {
  util::Rng rng(1);
  const auto img = SslLibrary::limb_image(test_key().p);
  EXPECT_EQ(attack::decay_image(img, 0.0, rng), img);
}

TEST(DecayImage, RateOneIsAllZero) {
  util::Rng rng(2);
  const auto img = SslLibrary::limb_image(test_key().p);
  EXPECT_TRUE(util::all_zero(attack::decay_image(img, 1.0, rng)));
}

TEST(DecayImage, DecayIsUnidirectional) {
  // No 0-bit ever becomes 1.
  util::Rng rng(3);
  const auto img = SslLibrary::limb_image(test_key().p);
  const auto decayed = attack::decay_image(img, 0.5, rng);
  for (std::size_t i = 0; i < img.size(); ++i) {
    const auto o = std::to_integer<unsigned>(img[i]);
    const auto d = std::to_integer<unsigned>(decayed[i]);
    EXPECT_EQ(d & ~o, 0u) << "bit appeared at byte " << i;
  }
}

TEST(DecayImage, SurvivingFractionTracksRate) {
  util::Rng rng(4);
  std::vector<std::byte> img(4096);
  rng.fill_bytes(img);
  const auto decayed = attack::decay_image(img, 0.3, rng);
  EXPECT_NEAR(attack::surviving_fraction(img, decayed), 0.7, 0.03);
}

TEST(ColdBoot, PerfectImagesReconstructInstantly) {
  ColdBootReconstructor rec(test_key().public_key());
  const auto key = rec.reconstruct(SslLibrary::limb_image(test_key().p),
                                   SslLibrary::limb_image(test_key().q));
  ASSERT_TRUE(key.has_value());
  EXPECT_TRUE(key->validate());
  EXPECT_EQ(key->d, test_key().d);
  EXPECT_LE(rec.last_frontier(), 16u);  // handful of near-miss stragglers
}

TEST(ColdBoot, SwappedImagesAlsoWork) {
  // The attacker cannot tell which fragment was P and which was Q.
  ColdBootReconstructor rec(test_key().public_key());
  const auto key = rec.reconstruct(SslLibrary::limb_image(test_key().q),
                                   SslLibrary::limb_image(test_key().p));
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->p, test_key().p);  // conventional ordering restored
}

class ColdBootDecay : public ::testing::TestWithParam<double> {};

TEST_P(ColdBootDecay, ReconstructsFromDecayedImages) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam() * 1000) + 9);
  const auto p_img =
      attack::decay_image(SslLibrary::limb_image(test_key().p), GetParam(), rng);
  const auto q_img =
      attack::decay_image(SslLibrary::limb_image(test_key().q), GetParam(), rng);
  ColdBootReconstructor rec(test_key().public_key());
  const auto key = rec.reconstruct(p_img, q_img);
  ASSERT_TRUE(key.has_value()) << "decay " << GetParam()
                               << " frontier " << rec.last_frontier();
  EXPECT_TRUE(key->validate());
  EXPECT_EQ(key->d, test_key().d);
}

// 1 -> 0 decay up to ~25% of the 1-bits reconstructs within the default
// beam; ~30% needs a 2^16 beam (see bench_cold_boot's threshold sweep) and
// beyond that the p,q-only variant loses the true path — Heninger &
// Shacham push further by also using degraded d, dp, dq images.
INSTANTIATE_TEST_SUITE_P(Rates, ColdBootDecay,
                         ::testing::Values(0.05, 0.15, 0.25));

TEST(ColdBoot, HeavyDecayFailsGracefully) {
  util::Rng rng(77);
  const auto p_img =
      attack::decay_image(SslLibrary::limb_image(test_key().p), 0.95, rng);
  const auto q_img =
      attack::decay_image(SslLibrary::limb_image(test_key().q), 0.95, rng);
  ColdBootConfig cfg;
  cfg.max_candidates = 1u << 12;  // small cap: force the explosion path
  ColdBootReconstructor rec(test_key().public_key(), cfg);
  EXPECT_FALSE(rec.reconstruct(p_img, q_img).has_value());
}

TEST(ColdBoot, GarbageImagesRejected) {
  util::Rng rng(88);
  std::vector<std::byte> junk_p(32), junk_q(32);
  rng.fill_bytes(junk_p);
  rng.fill_bytes(junk_q);
  ColdBootConfig cfg;
  cfg.max_candidates = 1u << 12;
  ColdBootReconstructor rec(test_key().public_key(), cfg);
  EXPECT_FALSE(rec.reconstruct(junk_p, junk_q).has_value());
}

TEST(ColdBoot, EmptyImagesMeanPureBranchAndBound) {
  // With no observations every lift is plausible: the beam saturates and
  // the true factorisation is lost in the crowd.
  ColdBootConfig cfg;
  cfg.max_candidates = 1u << 10;
  ColdBootReconstructor rec(test_key().public_key(), cfg);
  EXPECT_FALSE(rec.reconstruct({}, {}).has_value());
  EXPECT_EQ(rec.last_frontier(), 1u << 10);  // beam pinned at its cap
}

}  // namespace
}  // namespace keyguard::scan
