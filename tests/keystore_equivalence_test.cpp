// Multi-tenant equivalence battery (alongside analysis_equivalence_test):
// the scanner and the taint auditor watch an SNI frontend churn through
// many vhost keys, and their views must agree that the keystore keeps the
// plaintext working set inside the bound — at every sampled instant
// MID-churn, not just at rest.
#include <gtest/gtest.h>

#include <set>

#include "analysis/taint_auditor.hpp"
#include "analysis/taint_map.hpp"
#include "core/protection.hpp"
#include "servers/sni_frontend.hpp"

namespace keyguard::analysis {
namespace {

constexpr std::size_t kPool = 4;
constexpr std::size_t kDistinct = 6;
constexpr std::size_t kVhosts = 24;

std::vector<crypto::RsaPrivateKey> distinct_keys() {
  util::Rng rng(2024);
  std::vector<crypto::RsaPrivateKey> out;
  for (std::size_t i = 0; i < kDistinct; ++i) {
    out.push_back(crypto::generate_rsa_key(rng, 512));
  }
  return out;
}

/// kVhosts vhost keys cycled from the distinct set (same trick the bench
/// uses to make large populations affordable).
std::vector<crypto::RsaPrivateKey> vhost_keys(
    const std::vector<crypto::RsaPrivateKey>& distinct) {
  std::vector<crypto::RsaPrivateKey> out;
  for (std::size_t i = 0; i < kVhosts; ++i) out.push_back(distinct[i % distinct.size()]);
  return out;
}

struct Rig {
  core::ProtectionProfile profile;
  sim::Kernel kernel;
  ShadowTaintMap map;
  servers::SniFrontend frontend;

  explicit Rig(core::ProtectionLevel level)
      : profile(core::make_profile(level, 16ull << 20)),
        kernel(profile.kernel),
        map(kernel),
        frontend(kernel, core::sni_config(profile, kPool), util::Rng(31)) {
    kernel.attach_taint(&map);
  }
};

TEST(KeystoreEquivalence, IntegratedBoundHoldsAtEverySampledInstant) {
  const auto distinct = distinct_keys();
  Rig rig(core::ProtectionLevel::kIntegrated);
  ASSERT_TRUE(rig.frontend.start(vhost_keys(distinct)));
  ASSERT_EQ(rig.frontend.vhost_count(), kVhosts);

  TaintAuditor auditor(rig.map);
  scan::KeyScanner scanner(scan::KeyPatterns::from_keys(distinct));

  // Churn with audits interleaved MID-traffic: the bound is an invariant,
  // not an end state.
  for (int batch = 0; batch < 6; ++batch) {
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(rig.frontend.handle_request());

    const auto report = auditor.audit(rig.kernel);
    EXPECT_TRUE(report.bounded_locked_pages_only(kPool))
        << "batch " << batch << ":\n" << TaintAuditor::format(report);
    EXPECT_EQ(report.master_key_frames, 1u);
    EXPECT_LE(report.secret_tainted_frames, kPool + 1);
    EXPECT_EQ(report.secret.unallocated, 0u);
    EXPECT_EQ(report.secret.page_cache, 0u);

    // Scanner view: every surviving needle image sits on an mlocked pool
    // page; nothing in freed frames or the page cache. And at most kPool
    // DISTINCT keys are visible in plaintext at once.
    const auto matches = scanner.scan_kernel(rig.kernel);
    std::set<std::string> visible_keys;
    for (const auto& m : matches) {
      EXPECT_NE(m.state, sim::FrameState::kFree) << m.part << " in freed memory";
      EXPECT_NE(m.state, sim::FrameState::kPageCache) << m.part << " in page cache";
      const auto hash = m.part.find('#');
      ASSERT_NE(hash, std::string::npos);
      visible_keys.insert(m.part.substr(hash + 1));
    }
    EXPECT_LE(visible_keys.size(), kPool);

    // Reconciliation: every hit fully taint-covered.
    const auto cross = auditor.cross_check(scanner.patterns(), matches);
    EXPECT_TRUE(cross.all_hits_covered());
  }

  const auto stats = rig.frontend.keystore().stats();
  EXPECT_GT(stats.pool_hits, 0u);
  EXPECT_GT(stats.evictions, 0u) << "workload must actually churn the pool";

  // Graceful shutdown scrubs everything: zero plaintext bytes anywhere.
  rig.frontend.stop();
  const auto report = auditor.audit(rig.kernel);
  EXPECT_EQ(report.secret.total(), 0u) << TaintAuditor::format(report);
}

TEST(KeystoreEquivalence, UnprotectedBaselineViolatesEveryBound) {
  const auto distinct = distinct_keys();
  Rig rig(core::ProtectionLevel::kNone);
  ASSERT_TRUE(rig.frontend.start(vhost_keys(distinct)));
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(rig.frontend.handle_request());

  TaintAuditor auditor(rig.map);
  const auto report = auditor.audit(rig.kernel);
  // Plaintext blobs all over the heap: no N bounds the plaintext frames.
  EXPECT_FALSE(report.bounded_locked_pages_only(kPool));
  EXPECT_FALSE(report.bounded_locked_pages_only(1u << 20));
  EXPECT_GT(report.secret.total(), 0u);
  // Stock open path: every vhost's PEM text is sitting in the page cache.
  EXPECT_GT(report.secret.page_cache, 0u);

  // The scanner sees MORE distinct plaintext keys than any pool bound.
  scan::KeyScanner scanner(scan::KeyPatterns::from_keys(distinct));
  const auto matches = scanner.scan_kernel(rig.kernel);
  std::set<std::string> visible_keys;
  for (const auto& m : matches) {
    const auto hash = m.part.find('#');
    ASSERT_NE(hash, std::string::npos);
    visible_keys.insert(m.part.substr(hash + 1));
  }
  EXPECT_GT(visible_keys.size(), kPool);

  // Frontend death on a stock kernel: the torn-down address space joins
  // unallocated memory with every plaintext copy intact.
  rig.frontend.stop();
  const auto after = auditor.audit(rig.kernel);
  EXPECT_GT(after.secret.unallocated, 0u) << TaintAuditor::format(after);
}

TEST(KeystoreEquivalence, KernelLevelCleansDeadResidueButNotLiveBlobs) {
  const auto distinct = distinct_keys();
  Rig rig(core::ProtectionLevel::kKernel);
  ASSERT_TRUE(rig.frontend.start(vhost_keys(distinct)));
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(rig.frontend.handle_request());

  TaintAuditor auditor(rig.map);
  const auto report = auditor.audit(rig.kernel);
  // The kernel level leaves LIVE duplication untouched: plaintext blobs
  // (one per vhost) sit in swappable heap, so the bound fails.
  EXPECT_FALSE(report.bounded_locked_pages_only(kPool));
  EXPECT_GT(report.secret.allocated - report.secret.mlocked, 0u);

  // But when the frontend dies, zero-on-free clears every page on its way
  // out — the dead-residue half of the story the paper's §4 assigns to
  // the kernel patch. (Page-cache entries survive a process exit; only
  // frames actually freed are wiped, hence the unallocated check.)
  rig.frontend.stop();
  const auto after = auditor.audit(rig.kernel);
  EXPECT_EQ(after.secret.unallocated, 0u) << TaintAuditor::format(after);
}

}  // namespace
}  // namespace keyguard::analysis
