// Second kernel test wave: realloc semantics, multi-tenant (two servers,
// two keys, one machine) cross-contamination, and address description.
#include <gtest/gtest.h>

#include "attack/leaks.hpp"
#include "core/scenario.hpp"
#include "servers/apache_server.hpp"
#include "servers/ssh_server.hpp"
#include "sim/kernel.hpp"
#include "util/bytes.hpp"

namespace keyguard::sim {
namespace {

KernelConfig small_config() {
  KernelConfig cfg;
  cfg.mem_bytes = 8ull << 20;
  return cfg;
}

TEST(KernelRealloc, GrowMovesAndPreservesContent) {
  Kernel k(small_config());
  auto& p = k.spawn("p");
  const VirtAddr a = k.heap_alloc(p, 32);
  const auto msg = util::to_bytes("realloc-me");
  k.mem_write(p, a, msg);
  k.heap_alloc(p, 16);  // block in-place growth
  const VirtAddr b = k.heap_realloc(p, a, 512);
  ASSERT_NE(b, 0u);
  EXPECT_NE(b, a);
  std::vector<std::byte> back(msg.size());
  k.mem_read(p, b, back);
  EXPECT_EQ(back, msg);
}

TEST(KernelRealloc, AbandonedOriginalKeepsSecret) {
  // The bn_expand2 effect: growth leaves the old bytes behind.
  Kernel k(small_config());
  auto& p = k.spawn("p");
  const VirtAddr a = k.heap_alloc(p, 32);
  const auto secret = util::to_bytes("OLD-CHUNK-SECRET");
  k.mem_write(p, a, secret);
  k.heap_alloc(p, 16);
  const VirtAddr b = k.heap_realloc(p, a, 1024);
  ASSERT_NE(b, 0u);
  // Two copies now: the moved one and the abandoned original.
  EXPECT_EQ(util::find_all(k.memory().all(), secret).size(), 2u);
}

TEST(KernelRealloc, ShrinkStaysInPlace) {
  Kernel k(small_config());
  auto& p = k.spawn("p");
  const VirtAddr a = k.heap_alloc(p, 256);
  EXPECT_EQ(k.heap_realloc(p, a, 64), a);
}

TEST(KernelRealloc, GrowWithinChunkPaddingStaysInPlace) {
  Kernel k(small_config());
  auto& p = k.spawn("p");
  const VirtAddr a = k.heap_alloc(p, 100);  // rounds to 112
  EXPECT_EQ(k.heap_realloc(p, a, 112), a);
}

TEST(DescribeAddress, LabelsRegions) {
  Kernel k(small_config());
  auto& p = k.spawn("p");
  const VirtAddr h = k.heap_alloc(p, 64, "session key");
  const VirtAddr m = k.mmap_anon(p, kPageSize, true, "keypage");
  EXPECT_EQ(*k.describe_address(p, h), "session key (live)");
  k.heap_free(p, h);
  EXPECT_EQ(*k.describe_address(p, h), "session key (freed)");
  EXPECT_EQ(*k.describe_address(p, m), "keypage mapping [mlocked]");
  EXPECT_FALSE(k.describe_address(p, 0xdead0000).has_value());
}

TEST(MultiTenant, TwoServersTwoKeysNoCrossMatches) {
  // One machine hosting both sshd and apache with DIFFERENT keys: each
  // scanner finds only its own key, and an attack capture compromises
  // both independently.
  core::ScenarioConfig cfg_a;
  cfg_a.mem_bytes = 16ull << 20;
  cfg_a.key_bits = 512;
  cfg_a.seed = 1111;
  core::Scenario tenant_a(cfg_a);

  core::ScenarioConfig cfg_b = cfg_a;
  cfg_b.seed = 2222;
  core::Scenario tenant_b(cfg_b);
  ASSERT_NE(tenant_a.key().n, tenant_b.key().n);

  // Host both keys on tenant_a's kernel under different paths.
  auto& kernel = tenant_a.kernel();
  kernel.vfs().write_file("/etc/apache2/ssl/server.key",
                          util::to_bytes(tenant_b.pem()));

  util::Rng rng_a(5), rng_b(6);
  servers::SshServer ssh(kernel, core::ssh_config(tenant_a.profile()), rng_a);
  auto apache_cfg = core::apache_config(tenant_b.profile());
  servers::ApacheServer apache(kernel, apache_cfg, rng_b);
  ASSERT_TRUE(ssh.start());
  ASSERT_TRUE(apache.start());
  for (int i = 0; i < 5; ++i) {
    ssh.handle_connection(8 << 10);
    apache.handle_request();
  }

  const auto matches_a = tenant_a.scanner().scan_kernel(kernel);
  const auto matches_b = tenant_b.scanner().scan_kernel(kernel);
  EXPECT_GT(matches_a.size(), 0u);
  EXPECT_GT(matches_b.size(), 0u);

  // No owner overlap for USER matches: sshd processes never hold apache's
  // key and vice versa.
  const Pid ssh_pid = ssh.master_pid();
  const Pid apache_pid = apache.master_pid();
  for (const auto& m : matches_b) {
    for (const Pid pid : m.owners) EXPECT_NE(pid, ssh_pid);
  }
  for (const auto& m : matches_a) {
    for (const Pid pid : m.owners) EXPECT_NE(pid, apache_pid);
  }
}

TEST(MultiTenant, AttackCaptureCompromisesBothKeys) {
  core::ScenarioConfig cfg_a;
  cfg_a.mem_bytes = 16ull << 20;
  cfg_a.key_bits = 512;
  cfg_a.seed = 3333;
  core::Scenario tenant_a(cfg_a);
  core::ScenarioConfig cfg_b = cfg_a;
  cfg_b.seed = 4444;
  core::Scenario tenant_b(cfg_b);

  auto& kernel = tenant_a.kernel();
  kernel.vfs().write_file("/etc/apache2/ssl/server.key",
                          util::to_bytes(tenant_b.pem()));
  util::Rng rng_a(5), rng_b(6);
  servers::SshServer ssh(kernel, core::ssh_config(tenant_a.profile()), rng_a);
  servers::ApacheServer apache(kernel, core::apache_config(tenant_b.profile()), rng_b);
  ASSERT_TRUE(ssh.start());
  ASSERT_TRUE(apache.start());
  for (int i = 0; i < 10; ++i) {
    ssh.handle_connection(8 << 10);
    apache.handle_request();
  }
  ssh.stop();  // ssh residue joins free memory
  attack::Ext2DirectoryLeak leak(kernel);
  leak.create_directories(kernel.allocator().free_count());
  EXPECT_GT(tenant_a.scanner().count_copies(leak.capture()), 0u);
}

}  // namespace
}  // namespace keyguard::sim
