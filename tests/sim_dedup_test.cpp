// DedupEngine mechanics: merge, COW unmerge, timing, veto, and the
// interactions with fork, swap, and frame reuse (DESIGN.md §12).
#include "sim/dedup.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/kernel.hpp"
#include "util/bytes.hpp"

namespace keyguard::sim {
namespace {

KernelConfig small_config(bool zero_on_free = false) {
  KernelConfig cfg;
  cfg.mem_bytes = 2ull << 20;
  cfg.swap_pages = 16;
  cfg.zero_on_free = zero_on_free;
  return cfg;
}

std::vector<std::byte> patterned(std::uint8_t seed) {
  std::vector<std::byte> page(kPageSize);
  for (std::size_t i = 0; i < page.size(); ++i) {
    page[i] = static_cast<std::byte>(seed + i * 31);
  }
  return page;
}

FrameNumber frame_at(const Process& p, VirtAddr a) {
  return p.page_table().at(a).frame;
}

TEST(DedupEngine, MergesIdenticalPagesAcrossProcesses) {
  Kernel k(small_config());
  DedupEngine dedup(k);
  auto& a = k.spawn("a");
  auto& b = k.spawn("b");
  const auto content = patterned(7);
  const auto va = k.mmap_anon(a, kPageSize, false, "dup a");
  const auto vb = k.mmap_anon(b, kPageSize, false, "dup b");
  k.mem_write(a, va, content);
  k.mem_write(b, vb, content);
  const auto fa = frame_at(a, va);
  const auto fb = frame_at(b, vb);
  ASSERT_NE(fa, fb);

  EXPECT_EQ(dedup.scan(), 1u);
  const auto fa2 = frame_at(a, va);
  EXPECT_EQ(fa2, frame_at(b, vb));  // one shared frame
  EXPECT_EQ(k.allocator().refcount(fa2), 2u);
  EXPECT_TRUE(dedup.is_merged_frame(fa2));
  EXPECT_EQ(dedup.shared_frame_count(), 1u);
  EXPECT_EQ(dedup.saved_pages(), 1u);
  // The loser frame was freed; the winner still reads back exactly.
  EXPECT_EQ(k.allocator().refcount(fa2 == fa ? fb : fa), 0u);
  std::vector<std::byte> back(kPageSize);
  k.mem_read(b, vb, back);
  EXPECT_EQ(back, content);
  EXPECT_EQ(dedup.stats().pages_merged, 1u);
  EXPECT_EQ(dedup.stats().bytes_saved, kPageSize);
}

TEST(DedupEngine, DifferentContentNeverMerges) {
  Kernel k(small_config());
  DedupEngine dedup(k);
  auto& a = k.spawn("a");
  const auto v1 = k.mmap_anon(a, kPageSize, false);
  const auto v2 = k.mmap_anon(a, kPageSize, false);
  k.mem_write(a, v1, patterned(1));
  k.mem_write(a, v2, patterned(2));
  EXPECT_EQ(dedup.scan(), 0u);
  EXPECT_NE(frame_at(a, v1), frame_at(a, v2));
}

TEST(DedupEngine, ScanIsIdempotentUntilContentChanges) {
  Kernel k(small_config());
  DedupEngine dedup(k);
  auto& a = k.spawn("a");
  auto& b = k.spawn("b");
  const auto va = k.mmap_anon(a, kPageSize, false);
  const auto vb = k.mmap_anon(b, kPageSize, false);
  k.mem_write(a, va, patterned(9));
  k.mem_write(b, vb, patterned(9));
  EXPECT_EQ(dedup.scan(), 1u);
  EXPECT_EQ(dedup.scan(), 0u);  // already canonical: nothing to do
  EXPECT_EQ(dedup.scan(), 0u);
  EXPECT_EQ(dedup.stats().pages_merged, 1u);
}

TEST(DedupEngine, WriteUnmergesViaCowAndIsCounted) {
  Kernel k(small_config());
  DedupEngine dedup(k);
  auto& a = k.spawn("a");
  auto& b = k.spawn("b");
  const auto va = k.mmap_anon(a, kPageSize, false);
  const auto vb = k.mmap_anon(b, kPageSize, false);
  k.mem_write(a, va, patterned(3));
  k.mem_write(b, vb, patterned(3));
  ASSERT_EQ(dedup.scan(), 1u);
  const auto shared = frame_at(a, va);

  const std::byte x{0xEE};
  k.mem_write(b, vb, std::span(&x, 1));
  EXPECT_NE(frame_at(b, vb), frame_at(a, va));  // b got a private copy
  EXPECT_EQ(k.allocator().refcount(shared), 1u);
  EXPECT_EQ(dedup.stats().unmerges, 1u);
  EXPECT_FALSE(dedup.is_merged_frame(frame_at(a, va)));
  EXPECT_EQ(dedup.shared_frame_count(), 0u);
  // a's view is untouched, b's carries the write.
  std::vector<std::byte> back(kPageSize);
  k.mem_read(a, va, back);
  EXPECT_EQ(back, patterned(3));
  k.mem_read(b, vb, back);
  EXPECT_EQ(back[0], x);
}

TEST(DedupEngine, TimedWriteExposesTheCowGap) {
  Kernel k(small_config());
  DedupEngine dedup(k);
  auto& a = k.spawn("a");
  auto& b = k.spawn("b");
  const auto va = k.mmap_anon(a, kPageSize, false);
  const auto vb = k.mmap_anon(b, kPageSize, false);
  k.mem_write(a, va, patterned(5));
  k.mem_write(b, vb, patterned(5));
  ASSERT_EQ(dedup.scan(), 1u);

  const std::byte first{patterned(5)[0]};
  const auto merged = k.mem_write_timed(b, vb, std::span(&first, 1));
  EXPECT_EQ(merged.cow_breaks, 1u);
  EXPECT_EQ(merged.cost_ns, kWriteCostMinorNs + kWriteCostCowBreakNs);
  // Re-writing the same byte preserved the content, so the page can
  // re-merge — but right now it is private and the write is minor.
  const auto minor = k.mem_write_timed(b, vb, std::span(&first, 1));
  EXPECT_EQ(minor.cow_breaks, 0u);
  EXPECT_EQ(minor.cost_ns, kWriteCostMinorNs);
  EXPECT_EQ(dedup.scan(), 1u);  // and it does re-merge
}

TEST(DedupEngine, SecretVetoBlocksMergeInEitherRole) {
  Kernel k(small_config());
  DedupConfig cfg;
  cfg.no_merge_secret = true;
  DedupEngine dedup(k, cfg);
  auto& victim = k.spawn("victim");
  auto& attacker = k.spawn("attacker");
  const auto vv = k.mmap_anon(victim, kPageSize, false);
  const auto va = k.mmap_anon(attacker, kPageSize, false);
  k.mem_write(victim, vv, patterned(11), TaintTag::kPoolKey);
  k.mem_write(attacker, va, patterned(11));
  const auto secret_frame = frame_at(victim, vv);
  dedup.set_secret_predicate(
      [secret_frame](FrameNumber f) { return f == secret_frame; });

  EXPECT_EQ(dedup.scan(), 0u);
  EXPECT_NE(frame_at(victim, vv), frame_at(attacker, va));
  EXPECT_GE(dedup.stats().vetoed_secret, 1u);
  // Clean duplicates elsewhere still merge under the same policy.
  auto& c = k.spawn("c");
  const auto v1 = k.mmap_anon(c, kPageSize, false);
  const auto v2 = k.mmap_anon(attacker, kPageSize, false);
  k.mem_write(c, v1, patterned(13));
  k.mem_write(attacker, v2, patterned(13));
  EXPECT_EQ(dedup.scan(), 1u);
}

TEST(DedupEngine, CanonicalSelectionPrefersTheSecretFrame) {
  Kernel k(small_config());
  DedupEngine dedup(k);  // defense OFF: secrets merge (the attack setting)
  auto& victim = k.spawn("victim");
  auto& attacker = k.spawn("attacker");
  const auto va = k.mmap_anon(attacker, kPageSize, false);  // attacker FIRST
  const auto vv = k.mmap_anon(victim, kPageSize, false);
  k.mem_write(attacker, va, patterned(17));
  k.mem_write(victim, vv, patterned(17), TaintTag::kPoolKey);
  const auto secret_frame = frame_at(victim, vv);
  dedup.set_secret_predicate(
      [secret_frame](FrameNumber f) { return f == secret_frame; });

  ASSERT_EQ(dedup.scan(), 1u);
  // The tainted frame survives even though the attacker's page was seen
  // first — the clean guess page is the one that dies, so the shadow
  // taint map stays exact without per-byte tag unions.
  EXPECT_EQ(frame_at(victim, vv), secret_frame);
  EXPECT_EQ(frame_at(attacker, va), secret_frame);
}

TEST(DedupEngine, ForkSharedPagesAreNotReMerged) {
  Kernel k(small_config());
  DedupEngine dedup(k);
  auto& parent = k.spawn("parent");
  const auto v = k.mmap_anon(parent, 2 * kPageSize, false);
  k.mem_write(parent, v, patterned(21));
  k.mem_write(parent, v + kPageSize, patterned(22));
  auto& child = k.fork(parent, "child");
  // Parent and child PTEs point at the same frames already; a dedup pass
  // must treat in-group same-frame candidates as already-canonical.
  EXPECT_EQ(dedup.scan(), 0u);
  EXPECT_EQ(dedup.stats().pages_merged, 0u);
  const std::byte x{0x5A};
  k.mem_write(child, v, std::span(&x, 1));  // plain fork-COW break
  EXPECT_NE(frame_at(child, v), frame_at(parent, v));
  // That break was fork's, not ours: no unmerge counted.
  EXPECT_EQ(dedup.stats().unmerges, 0u);
}

TEST(DedupEngine, ForkCowStormOverMergedPages) {
  Kernel k(small_config());
  DedupEngine dedup(k);
  auto& a = k.spawn("a");
  auto& b = k.spawn("b");
  constexpr std::size_t kPages = 4;
  const auto va = k.mmap_anon(a, kPages * kPageSize, false);
  const auto vb = k.mmap_anon(b, kPages * kPageSize, false);
  for (std::size_t i = 0; i < kPages; ++i) {
    k.mem_write(a, va + i * kPageSize, patterned(static_cast<std::uint8_t>(40 + i)));
    k.mem_write(b, vb + i * kPageSize, patterned(static_cast<std::uint8_t>(40 + i)));
  }
  ASSERT_EQ(dedup.scan(), kPages);

  // Fork both sides: merged frames are now shared 4 ways.
  auto& ac = k.fork(a, "a child");
  auto& bc = k.fork(b, "b child");
  EXPECT_EQ(k.allocator().refcount(frame_at(a, va)), 4u);

  // Storm: every mapper writes every page; every view stays correct.
  // Tags repeat across the pairs (a/b and ac/bc write the same byte) so
  // the post-storm scan has something to re-merge.
  const std::byte tags[] = {std::byte{1}, std::byte{2}, std::byte{1}, std::byte{2}};
  Process* procs[] = {&a, &ac, &b, &bc};
  const VirtAddr bases[] = {va, va, vb, vb};
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::size_t i = 0; i < kPages; ++i) {
      k.mem_write(*procs[p], bases[p] + i * kPageSize, std::span(&tags[p], 1));
    }
  }
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::size_t i = 0; i < kPages; ++i) {
      std::vector<std::byte> back(kPageSize);
      k.mem_read(*procs[p], bases[p] + i * kPageSize, back);
      auto expect = patterned(static_cast<std::uint8_t>(40 + i));
      expect[0] = tags[p];
      EXPECT_EQ(back, expect) << "proc " << p << " page " << i;
    }
  }
  // All shared frames broke apart; nothing is merged any more.
  EXPECT_EQ(dedup.shared_frame_count(), 0u);
  EXPECT_EQ(dedup.saved_pages(), 0u);
  // And a fresh scan re-merges the same-tag pairs (a with b, ac with bc).
  EXPECT_EQ(dedup.scan(), 2 * kPages);
}

TEST(DedupEngine, MergedFramesAreSwapExempt) {
  Kernel k(small_config());
  DedupEngine dedup(k);
  auto& a = k.spawn("a");
  auto& b = k.spawn("b");
  const auto va = k.mmap_anon(a, kPageSize, false);
  const auto vb = k.mmap_anon(b, kPageSize, false);
  const auto vlone = k.mmap_anon(a, kPageSize, false);
  k.mem_write(a, va, patterned(31));
  k.mem_write(b, vb, patterned(31));
  k.mem_write(a, vlone, patterned(32));
  ASSERT_EQ(dedup.scan(), 1u);

  // Ask to swap everything of a: the shared frame must be skipped, the
  // lone page may go.
  (void)k.swap_out_pages(a, 8);
  EXPECT_FALSE(a.page_table().at(va).swapped);
  EXPECT_TRUE(a.page_table().at(vlone).swapped);
  // Swapped-out pages are not merge candidates either.
  EXPECT_EQ(dedup.scan(), 0u);
}

TEST(DedupEngine, ZeroPageMergingIsConfigurable) {
  Kernel k(small_config());
  auto& a = k.spawn("a");
  const auto v1 = k.mmap_anon(a, kPageSize, false);
  const auto v2 = k.mmap_anon(a, kPageSize, false);
  // Touch both pages so they are resident but all-zero.
  const std::byte z{0};
  k.mem_write(a, v1, std::span(&z, 1));
  k.mem_write(a, v2, std::span(&z, 1));
  {
    DedupConfig cfg;
    cfg.merge_zero_pages = false;
    DedupEngine dedup(k, cfg);
    EXPECT_EQ(dedup.scan(), 0u);
  }
  {
    DedupEngine dedup(k);
    EXPECT_EQ(dedup.scan(), 1u);
    EXPECT_EQ(frame_at(a, v1), frame_at(a, v2));
  }
}

TEST(DedupEngine, MergeOfMlockedPagesIsConfigurable) {
  Kernel k(small_config());
  auto& a = k.spawn("a");
  auto& b = k.spawn("b");
  const auto va = k.mmap_anon(a, kPageSize, /*mlocked=*/true);
  const auto vb = k.mmap_anon(b, kPageSize, false);
  k.mem_write(a, va, patterned(33));
  k.mem_write(b, vb, patterned(33));
  {
    DedupConfig cfg;
    cfg.merge_mlocked = false;  // KSM-style: pinned areas are off limits
    DedupEngine dedup(k, cfg);
    EXPECT_EQ(dedup.scan(), 0u);
  }
  {
    DedupEngine dedup(k);  // hypervisor-style: mlock does not stop merging
    EXPECT_EQ(dedup.scan(), 1u);
  }
}

TEST(DedupEngine, FrameReuseAfterFreeCannotFakeUnmerges) {
  Kernel k(small_config());
  DedupEngine dedup(k);
  auto& a = k.spawn("a");
  auto& b = k.spawn("b");
  const auto va = k.mmap_anon(a, kPageSize, false);
  const auto vb = k.mmap_anon(b, kPageSize, false);
  k.mem_write(a, va, patterned(41));
  k.mem_write(b, vb, patterned(41));
  ASSERT_EQ(dedup.scan(), 1u);
  const auto shared = frame_at(a, va);

  // Both mappers die: the merged frame goes back to the allocator. The
  // FrameFreeObserver must clear the merged mark with it.
  k.exit_process(a);
  k.exit_process(b);
  EXPECT_FALSE(dedup.is_merged_frame(shared));

  // A new process reuses frames and COW-breaks a plain fork share; none
  // of that may count as a dedup unmerge.
  const auto unmerges_before = dedup.stats().unmerges;
  auto& fresh = k.spawn("fresh");
  const auto v = k.mmap_anon(fresh, 4 * kPageSize, false);
  k.mem_write(fresh, v, patterned(42));
  auto& child = k.fork(fresh, "child");
  const std::byte x{0x77};
  k.mem_write(child, v, std::span(&x, 1));
  EXPECT_EQ(dedup.stats().unmerges, unmerges_before);
}

TEST(DedupEngine, MergingMintsUnallocatedResidueOnStockKernels) {
  Kernel k(small_config(/*zero_on_free=*/false));
  DedupEngine dedup(k);
  auto& a = k.spawn("a");
  auto& b = k.spawn("b");
  const auto va = k.mmap_anon(a, kPageSize, false);
  const auto vb = k.mmap_anon(b, kPageSize, false);
  const auto content = patterned(51);
  k.mem_write(a, va, content);
  k.mem_write(b, vb, content);
  const auto fa = frame_at(a, va);
  const auto fb = frame_at(b, vb);
  ASSERT_EQ(dedup.scan(), 1u);
  const auto loser = frame_at(a, va) == fa ? fb : fa;
  // The duplicate frame was freed WITHOUT moving its bytes: dedup itself
  // minted one more unallocated copy of the content — a channel the
  // paper's copy census never had to consider.
  EXPECT_EQ(k.allocator().refcount(loser), 0u);
  const auto residue = k.memory().page(loser);
  EXPECT_TRUE(std::equal(residue.begin(), residue.end(), content.begin()));
}

TEST(DedupEngine, ZeroOnFreeKernelsScrubTheMergeResidue) {
  Kernel k(small_config(/*zero_on_free=*/true));
  DedupEngine dedup(k);
  auto& a = k.spawn("a");
  auto& b = k.spawn("b");
  const auto va = k.mmap_anon(a, kPageSize, false);
  const auto vb = k.mmap_anon(b, kPageSize, false);
  const auto content = patterned(53);
  k.mem_write(a, va, content);
  k.mem_write(b, vb, content);
  const auto fa = frame_at(a, va);
  const auto fb = frame_at(b, vb);
  ASSERT_EQ(dedup.scan(), 1u);
  const auto loser = frame_at(a, va) == fa ? fb : fa;
  EXPECT_TRUE(util::all_zero(k.memory().page(loser)));
}

}  // namespace
}  // namespace keyguard::sim
