#include "sslsim/ssl_library.hpp"

#include <cassert>

#include "bignum/montgomery.hpp"
#include "crypto/pem.hpp"
#include "util/bytes.hpp"

namespace keyguard::sslsim {

using bn::Bignum;

std::vector<std::byte> SslLibrary::limb_image(const Bignum& v) {
  std::vector<std::byte> out;
  out.reserve(v.limb_count() * 8);
  for (const bn::Limb limb : v.limbs()) {
    for (int b = 0; b < 8; ++b) out.push_back(static_cast<std::byte>(limb >> (8 * b)));
  }
  return out;
}

SimBignum SslLibrary::write_bignum_heap(sim::Process& p, const Bignum& v,
                                        std::string label, sim::TaintTag taint) {
  const auto image = limb_image(v);
  const sim::VirtAddr addr =
      kernel_.heap_alloc(p, image.empty() ? 8 : image.size(), std::move(label));
  assert(addr != 0 && "simulated heap exhausted");
  if (!image.empty()) kernel_.mem_write(p, addr, image, taint);
  return SimBignum{addr, v.limb_count(), /*static_data=*/false};
}

void SslLibrary::free_bignum(sim::Process& p, SimBignum& b, bool clear) {
  if (!b.present()) return;
  if (b.static_data) {
    // Lives on the aligned page; freed with the page, never via the heap.
    b = SimBignum{};
    return;
  }
  if (clear) {
    kernel_.heap_clear_free(p, b.data);
  } else {
    kernel_.heap_free(p, b.data);
  }
  b = SimBignum{};
}

Bignum SslLibrary::read_bignum(sim::Process& p, const SimBignum& b) const {
  if (!b.present() || b.limbs == 0) return Bignum{};
  std::vector<std::byte> bytes(b.bytes());
  kernel_.mem_read(p, b.data, bytes);
  return Bignum::from_bytes_le(bytes);
}

// keylint: allow(unscrubbed) — the context is owned by the caller; every
// exit path releases it through free_mont_ctx (clear-freed when the
// library's clear_temporaries discipline is on).
SimMontCtx SslLibrary::make_mont_ctx(sim::Process& p, const Bignum& modulus) {
  // BN_MONT_CTX_set copies the modulus and computes R^2 mod N; both copies
  // land in the process heap. The modulus copy IS a copy of P or Q — tag
  // it (and the derived R^2) so cached contexts show up in taint audits.
  const bn::MontgomeryContext host_ctx(modulus);
  SimMontCtx ctx;
  ctx.n = write_bignum_heap(p, modulus, "BN_MONT_CTX modulus copy",
                            sim::TaintTag::kMont);
  ctx.rr = write_bignum_heap(p, host_ctx.rr(), "BN_MONT_CTX R^2",
                             sim::TaintTag::kMont);
  return ctx;
}

void SslLibrary::free_mont_ctx(sim::Process& p, SimMontCtx& ctx, bool clear) {
  free_bignum(p, ctx.n, clear);
  free_bignum(p, ctx.rr, clear);
}

std::optional<SimRsaKey> SslLibrary::load_private_key(sim::Process& p,
                                                      const std::string& path) {
  const int flags = cfg_.open_keys_nocache ? sim::kOpenNoCache : sim::kOpenReadOnly;
  const auto pem_bytes = kernel_.read_file(p, path, flags);
  if (!pem_bytes) return std::nullopt;

  // The PEM text is read into a heap buffer (BIO_read)...
  const sim::VirtAddr pem_buf =
      kernel_.heap_alloc(p, pem_bytes->size(), "PEM read buffer");
  assert(pem_buf != 0);
  kernel_.mem_write(p, pem_buf, *pem_bytes, sim::TaintTag::kPem);

  const std::string pem_text(reinterpret_cast<const char*>(pem_bytes->data()),
                             pem_bytes->size());
  const auto host_key = crypto::pem_decode_private_key(pem_text);
  if (!host_key) {
    // keylint: allow(raw-free) — unpatched OpenSSL error path under test
    kernel_.heap_free(p, pem_buf);
    return std::nullopt;
  }

  // ...the base64 body is decoded into a DER scratch buffer...
  const auto der = crypto::der_encode_private_key(*host_key);
  const sim::VirtAddr der_buf = kernel_.heap_alloc(p, der.size(), "DER decode buffer");
  assert(der_buf != 0);
  kernel_.mem_write(p, der_buf, der, sim::TaintTag::kDer);

  // ...and d2i_RSAPrivateKey materialises the eight BIGNUMs. Only the
  // private parts carry taint; n and e are public.
  SimRsaKey key;
  key.n = write_bignum_heap(p, host_key->n, "RSA bignum n");
  key.e = write_bignum_heap(p, host_key->e, "RSA bignum e");
  key.d = write_bignum_heap(p, host_key->d, "RSA bignum d", sim::TaintTag::kKeyD);
  key.p = write_bignum_heap(p, host_key->p, "RSA bignum p", sim::TaintTag::kKeyP);
  key.q = write_bignum_heap(p, host_key->q, "RSA bignum q", sim::TaintTag::kKeyQ);
  key.dmp1 =
      write_bignum_heap(p, host_key->dmp1, "RSA bignum dmp1", sim::TaintTag::kKeyDmp1);
  key.dmq1 =
      write_bignum_heap(p, host_key->dmq1, "RSA bignum dmq1", sim::TaintTag::kKeyDmq1);
  key.iqmp =
      write_bignum_heap(p, host_key->iqmp, "RSA bignum iqmp", sim::TaintTag::kKeyIqmp);

  // Scratch buffers are released. The unpatched library leaves their
  // contents — including a full PEM copy of the key — in freed heap chunks.
  if (cfg_.clear_temporaries) {
    kernel_.heap_clear_free(p, der_buf);
    kernel_.heap_clear_free(p, pem_buf);
  } else {
    // keylint: allow(raw-free) — the unpatched library's leak, measured
    // by the figures; the clear_temporaries branch above is the patch
    kernel_.heap_free(p, der_buf);
    kernel_.heap_free(p, pem_buf);  // keylint: allow(raw-free) — same leak
  }

  if (cfg_.auto_align) {
    rsa_memory_align(p, key);
  }
  return key;
}

bool SslLibrary::rsa_memory_align(sim::Process& p, SimRsaKey& key) {
  if (key.aligned) return true;
  if (!key.d.present()) return true;  // public-only key: nothing to do

  struct Part {
    SimBignum* bn;
    sim::TaintTag tag;
  };
  const Part parts[6] = {{&key.d, sim::TaintTag::kKeyD},
                         {&key.p, sim::TaintTag::kKeyP},
                         {&key.q, sim::TaintTag::kKeyQ},
                         {&key.dmp1, sim::TaintTag::kKeyDmp1},
                         {&key.dmq1, sim::TaintTag::kKeyDmq1},
                         {&key.iqmp, sim::TaintTag::kKeyIqmp}};
  std::size_t total = 0;
  for (const auto& part : parts) total += part.bn->bytes();

  // posix_memalign + mlock: one dedicated, swap-pinned region.
  const sim::VirtAddr page =
      kernel_.mmap_anon(p, total, /*mlocked=*/true, "rsa_aligned");
  if (page == 0) return false;

  sim::VirtAddr cursor = page;
  for (const auto& part : parts) {
    SimBignum* bn = part.bn;
    if (!bn->present()) continue;
    std::vector<std::byte> image(bn->bytes());
    kernel_.mem_read(p, bn->data, image);
    kernel_.mem_write(p, cursor, image, part.tag);
    // memset(0) + free the original heap chunk (the patch's explicit scrub).
    kernel_.heap_clear_free(p, bn->data);
    bn->data = cursor;
    bn->static_data = true;  // BN_FLG_STATIC_DATA
    cursor += bn->bytes();
  }

  // Drop and scrub any cached Montgomery contexts, then disable caching
  // (~RSA_FLAG_CACHE_PRIVATE).
  if (key.mont_p) {
    free_mont_ctx(p, *key.mont_p, /*clear=*/true);
    key.mont_p.reset();
  }
  if (key.mont_q) {
    free_mont_ctx(p, *key.mont_q, /*clear=*/true);
    key.mont_q.reset();
  }
  key.cache_private = false;
  key.aligned = true;
  key.aligned_page = page;
  key.aligned_bytes = total;
  return true;
}

Bignum SslLibrary::rsa_private_op(sim::Process& p, SimRsaKey& key, const Bignum& c) {
  const Bignum P = read_bignum(p, key.p);
  const Bignum Q = read_bignum(p, key.q);
  const Bignum dmp1 = read_bignum(p, key.dmp1);
  const Bignum dmq1 = read_bignum(p, key.dmq1);
  const Bignum iqmp = read_bignum(p, key.iqmp);

  // Montgomery contexts: cached in the RSA struct, or per-op temporaries.
  SimMontCtx* ctx_p = nullptr;
  SimMontCtx* ctx_q = nullptr;
  SimMontCtx tmp_p, tmp_q;
  bool temporary = false;
  if (key.cache_private) {
    if (!key.mont_p) key.mont_p = make_mont_ctx(p, P);
    if (!key.mont_q) key.mont_q = make_mont_ctx(p, Q);
    ctx_p = &*key.mont_p;
    ctx_q = &*key.mont_q;
  } else {
    tmp_p = make_mont_ctx(p, P);
    tmp_q = make_mont_ctx(p, Q);
    ctx_p = &tmp_p;
    ctx_q = &tmp_q;
    temporary = true;
  }
  (void)ctx_p;
  (void)ctx_q;

  // CRT (Garner). The arithmetic itself runs host-side; the simulated
  // memory carries the inputs (read above) and the intermediates (below).
  const Bignum m1 = Bignum::mod_exp(c % P, dmp1, P);
  const Bignum m2 = Bignum::mod_exp(c % Q, dmq1, Q);
  Bignum diff;
  if (m1 >= m2) {
    diff = m1 - m2;
  } else {
    diff = P - ((m2 - m1) % P);
    if (diff == P) diff = Bignum{};
  }
  const Bignum h = (iqmp * diff) % P;
  const Bignum m = m2 + h * Q;

  // The intermediates pass through heap scratch (BN_CTX pool) and are
  // freed like any temporary.
  SimBignum s1 = write_bignum_heap(p, m1, "CRT intermediate m1", sim::TaintTag::kCrt);
  SimBignum s2 = write_bignum_heap(p, m2, "CRT intermediate m2", sim::TaintTag::kCrt);
  free_bignum(p, s1, cfg_.clear_temporaries);
  free_bignum(p, s2, cfg_.clear_temporaries);

  if (temporary) {
    free_mont_ctx(p, tmp_p, cfg_.clear_temporaries);
    free_mont_ctx(p, tmp_q, cfg_.clear_temporaries);
  }
  return m;
}

void SslLibrary::rsa_free(sim::Process& p, SimRsaKey& key) {
  SimBignum* parts[8] = {&key.n, &key.e, &key.d, &key.p,
                         &key.q, &key.dmp1, &key.dmq1, &key.iqmp};
  // RSA_free clears private BIGNUMs (BN_clear_free).
  for (auto* part : parts) free_bignum(p, *part, /*clear=*/true);
  if (key.mont_p) {
    free_mont_ctx(p, *key.mont_p, true);
    key.mont_p.reset();
  }
  if (key.mont_q) {
    free_mont_ctx(p, *key.mont_q, true);
    key.mont_q.reset();
  }
  if (key.aligned && key.aligned_page != 0) {
    kernel_.mem_zero(p, key.aligned_page, key.aligned_bytes);
    kernel_.munmap(p, key.aligned_page, key.aligned_bytes);
    key.aligned = false;
    key.aligned_page = 0;
  }
}

crypto::RsaPrivateKey SslLibrary::read_key(sim::Process& p,
                                           const SimRsaKey& key) const {
  crypto::RsaPrivateKey out;
  out.n = read_bignum(p, key.n);
  out.e = read_bignum(p, key.e);
  out.d = read_bignum(p, key.d);
  out.p = read_bignum(p, key.p);
  out.q = read_bignum(p, key.q);
  out.dmp1 = read_bignum(p, key.dmp1);
  out.dmq1 = read_bignum(p, key.dmq1);
  out.iqmp = read_bignum(p, key.iqmp);
  return out;
}

}  // namespace keyguard::sslsim
