// Simulated OpenSSL: the key-handling behaviours of OpenSSL 0.9.7i that
// the paper measures and patches, re-created over the simulated kernel.
//
// Every byte of key material handled here lives in *simulated process
// memory* (heap chunks or mmap'd pages inside sim::PhysicalMemory), so the
// scanner and the disclosure attacks see exactly the copy population a
// real server would produce:
//
//  * load_private_key() == PEM_read + d2i_PrivateKey: the PEM text passes
//    through a heap buffer, the base64-decoded body through another, and
//    the parsed BIGNUMs (n, e, d, p, q, dmp1, dmq1, iqmp) are written into
//    heap chunks as little-endian limb arrays — the BN_ULONG images the
//    paper's scanmemory searches for. In the unpatched library the
//    temporary buffers are free()d WITHOUT clearing.
//  * rsa_private_op() == RSA_eay_mod_exp: CRT with Montgomery contexts.
//    With RSA_FLAG_CACHE_PRIVATE set (the default), the contexts for P and
//    Q are built once and cached in the RSA structure — each holding
//    ANOTHER heap copy of the prime. With the flag cleared (the defense),
//    per-operation contexts are built and freed (clear-freed under the
//    patched library).
//  * rsa_memory_align() is the paper's defense verbatim: copy all six
//    private parts onto one freshly mmap'd, mlock'd page; zero and free
//    the originals; mark them BN_FLG_STATIC_DATA; clear the cache flag.
//    Nothing ever writes to that page again, so copy-on-write keeps it
//    physically single across any number of forked children.
//
// SslConfig selects the paper's library-level patch set; the application
// level instead calls rsa_memory_align() explicitly after loading.
#pragma once

#include <optional>
#include <string>

#include "bignum/bignum.hpp"
#include "crypto/rsa.hpp"
#include "sim/kernel.hpp"

namespace keyguard::sslsim {

/// A BIGNUM whose limb array lives in simulated process memory.
struct SimBignum {
  sim::VirtAddr data = 0;   ///< little-endian limb image
  std::size_t limbs = 0;    ///< significant 64-bit limbs
  bool static_data = false; ///< BN_FLG_STATIC_DATA: not heap-owned

  std::size_t bytes() const noexcept { return limbs * 8; }
  bool present() const noexcept { return data != 0; }
};

/// BN_MONT_CTX: holds a copy of the modulus and R^2 mod N — the copy is
/// the point (it is how cached contexts leak P and Q).
struct SimMontCtx {
  SimBignum n;
  SimBignum rr;
};

/// The RSA structure (key parts + flags + caches).
struct SimRsaKey {
  SimBignum n, e, d, p, q, dmp1, dmq1, iqmp;
  /// RSA_FLAG_CACHE_PRIVATE: cache Montgomery contexts for P and Q.
  bool cache_private = true;
  std::optional<SimMontCtx> mont_p;
  std::optional<SimMontCtx> mont_q;
  /// Set by rsa_memory_align.
  bool aligned = false;
  sim::VirtAddr aligned_page = 0;
  std::size_t aligned_bytes = 0;
};

/// Which of the paper's library-level measures are compiled in.
struct SslConfig {
  /// d2i_PrivateKey calls RSA_memory_align automatically (library level).
  bool auto_align = false;
  /// Key-bearing temporaries are BN_clear_free'd instead of free'd.
  bool clear_temporaries = false;
  /// Key files are opened with O_NOCACHE (integrated level; needs kernel
  /// support to have any effect).
  bool open_keys_nocache = false;
};

class SslLibrary {
 public:
  SslLibrary(sim::Kernel& kernel, SslConfig cfg) : kernel_(kernel), cfg_(cfg) {}

  /// PEM load path (PEM_read_RSAPrivateKey + d2i). Returns nullopt when the
  /// file is missing or malformed. All parse temporaries flow through the
  /// process heap.
  std::optional<SimRsaKey> load_private_key(sim::Process& p, const std::string& path);

  /// The paper's RSA_memory_align(): one mlock'd page, originals zeroed and
  /// freed, caches disabled and scrubbed. Idempotent. Returns false on OOM.
  bool rsa_memory_align(sim::Process& p, SimRsaKey& key);

  /// CRT private operation (decrypt/sign). Montgomery contexts per the
  /// cache flag; CRT intermediates pass through the heap.
  bn::Bignum rsa_private_op(sim::Process& p, SimRsaKey& key, const bn::Bignum& c);

  /// RSA_free(): clears and releases all parts and caches.
  void rsa_free(sim::Process& p, SimRsaKey& key);

  /// Reconstructs the host-side key from simulated memory (tests, scanner
  /// pattern construction).
  crypto::RsaPrivateKey read_key(sim::Process& p, const SimRsaKey& key) const;

  /// Reads one simulated BIGNUM back.
  bn::Bignum read_bignum(sim::Process& p, const SimBignum& b) const;

  const SslConfig& config() const noexcept { return cfg_; }

  /// Little-endian limb image of a value — the exact byte pattern this
  /// library writes into simulated memory (and the scanner's needle).
  static std::vector<std::byte> limb_image(const bn::Bignum& v);

 private:
  SimBignum write_bignum_heap(sim::Process& p, const bn::Bignum& v,
                              std::string label = {},
                              sim::TaintTag taint = sim::TaintTag::kClean);
  void free_bignum(sim::Process& p, SimBignum& b, bool clear);
  SimMontCtx make_mont_ctx(sim::Process& p, const bn::Bignum& modulus);
  void free_mont_ctx(sim::Process& p, SimMontCtx& ctx, bool clear);

  sim::Kernel& kernel_;
  SslConfig cfg_;
};

}  // namespace keyguard::sslsim
