// Single-pass multi-pattern matcher.
//
// The legacy engine runs the LKM's memchr-then-memcmp loop once per
// needle, so a sweep over P patterns costs O(P × bytes) — ruinous for the
// multi-tenant workloads PR 3 made common (1000 vhosts = 4000 needles).
// This matcher walks the buffer ONCE: a 65536-bit two-byte-prefix bitmap
// rejects almost every position with one predictable branch (P needles
// occupy ~P of 65536 pairs, so the skip branch is taken >99% of the time
// and predicts near-perfectly — a one-byte starter table mispredicts
// ~P/256 of the time, which dominates the walk), a 256-entry first-byte
// dispatch table maps survivors to the bucket of needles starting with
// that byte (a binary search then narrows to the run sharing the actual
// SECOND byte, so huge buckets cost log, not linear, time per candidate),
// an 8-byte SWAR prefix filter ((load ^ prefix) & mask, built
// with memcpy so it is endian-neutral) rejects accidental pair hits in
// one compare, and only survivors of THAT pay a memcmp of the tail. Cost
// is ~one pass plus work proportional to real candidate hits,
// independent of needle count. Needles whose required match length is 1
// set every pair for their first byte, so the bitmap never produces a
// false negative.
//
// Equivalence contract: for the same (begin, end, window_end) window the
// output is offset-for-offset identical to the legacy per-needle walk —
// positions are visited ascending and each bucket keeps needle order, so
// matches emerge already (offset, pattern_index)-sorted, which is exactly
// the order scan_shard's final sort produces. Prefix mode (the LKM's
// partial-match path) replicates the same extend-while-agreeing loop with
// the same window bounds. tests/scan_matcher_test.cpp fuzzes both modes
// against the legacy oracle.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "scan/scan_engine.hpp"
#include "scan/simd_match.hpp"

namespace keyguard::scan {

class MultiMatcher {
 public:
  /// Compiles the dispatch table. `needles` views must outlive the
  /// matcher. min_prefix_bytes == 0 selects exact whole-needle matching;
  /// > 0 selects the LKM's partial path (needles shorter than the minimum
  /// are skipped, hits extend while bytes keep agreeing).
  MultiMatcher(std::span<const std::span<const std::byte>> needles,
               std::size_t min_prefix_bytes = 0);

  /// Needles that survived the empty/too-short filter.
  std::size_t active_needles() const noexcept { return entries_.size(); }

  /// Scans buffer bytes [begin, window_end) and appends every match whose
  /// FIRST byte lies in [begin, end), in (offset, pattern_index) order.
  /// Thread-safe: const over immutable tables, so sharded_scan shares one
  /// instance across all chunks.
  void scan(std::span<const std::byte> buffer, std::size_t begin,
            std::size_t end, std::size_t window_end,
            std::vector<RawMatch>& out) const;

  /// scan() with the vector candidate first stage: 32/64 positions per
  /// iteration are classified against the shufti tables, survivors
  /// re-check the exact pair bitmap and fall through to the same bucket
  /// walk, and the scalar loop finishes the sub-vector tail — so the
  /// output is bit-identical to scan() (the scalar multi path stays the
  /// oracle; tests/scan_matcher_test.cpp fuzzes the pair). Degrades to
  /// scan() when simd_available() is kNone OR when simd_profitable() is
  /// false (dense tables). Thread-safe like scan().
  void scan_simd(std::span<const std::byte> buffer, std::size_t begin,
                 std::size_t end, std::size_t window_end,
                 std::vector<RawMatch>& out) const;

  /// False when the compiled shufti tables are too dense to pay for the
  /// vector stage: the ctor evaluates the nibble classifier over all
  /// 65536 byte pairs and disables the skim if more than a quarter of
  /// them would survive (hundreds of needles with unstructured prefixes
  /// saturate the 8-bucket nibble tables; the candidate stream then
  /// approaches every position and the skim costs more than the scalar
  /// pair-bitmap walk it feeds). scan_simd() falls back to scan() then,
  /// and ScanStats::simd_kind reports kNone so the downgrade is visible.
  bool simd_profitable() const noexcept { return simd_profitable_; }

 private:
  /// Scalar hot loop over [pos, limit) plus the final-byte walk up to
  /// `limit_total` — shared by scan() (whole range) and scan_simd() (the
  /// sub-vector tail).
  void scan_scalar(const unsigned char* base, std::size_t buf_size,
                   std::size_t pos, std::size_t pair_limit, std::size_t limit,
                   std::size_t window_end, std::vector<RawMatch>& out) const;
  struct Entry {
    std::uint64_t prefix = 0;       ///< first cmp_len bytes (memcpy image)
    std::uint64_t mask = 0;         ///< 0xFF per prefix byte (memcpy image)
    const std::byte* bytes = nullptr;  ///< full needle
    std::uint32_t len = 0;          ///< full needle length
    std::uint32_t match_len = 0;    ///< len (exact) or min_prefix (prefix mode)
    std::uint32_t pattern_index = 0;
    /// Second needle byte, cached inline so the bucket binary search walks
    /// the contiguous entry array instead of chasing needle pointers.
    std::uint8_t second = 0;
  };

  /// Emits every needle matching at `pos` (bucket walk + SWAR + tail).
  void check_candidate(const unsigned char* base, std::size_t buf_size,
                       std::size_t pos, std::size_t window_end,
                       std::vector<RawMatch>& out) const;

  std::size_t min_prefix_ = 0;
  /// Grouped by first byte; within a bucket the length-1 needles (which
  /// match regardless of the second byte) come first in pattern order,
  /// then the rest sorted by (second byte, pattern order) so
  /// check_candidate can binary-search straight to the run matching the
  /// buffer's actual second byte — with hundreds of needles sharing a
  /// first byte (multi-tenant pattern sets) the walk touches ~the needles
  /// that can still match instead of the whole bucket. The two runs merge
  /// by pattern index at emit time, restoring the legacy loop's order.
  std::vector<Entry> entries_;
  std::array<std::uint32_t, 256> bucket_begin_{};  ///< index into entries_
  std::array<std::uint32_t, 256> short_end_{};     ///< end of len-1 run
  std::array<std::uint32_t, 256> bucket_end_{};
  /// Bit (b0 | b1<<8) set iff some needle requires first bytes b0,b1 (or
  /// requires only b0 and may be followed by anything). 8 KB, L1-resident.
  std::array<std::uint64_t, 1024> pair_bits_{};
  /// Nibble-classification tables for the vector first stage — a superset
  /// filter over pair_bits_, built alongside it (see simd_match.hpp).
  simd_detail::ShuftiTables shufti_{};
  bool simd_profitable_ = false;  ///< shufti density below the skim cutoff
};

}  // namespace keyguard::scan
