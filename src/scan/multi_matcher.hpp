// Single-pass multi-pattern matcher.
//
// The legacy engine runs the LKM's memchr-then-memcmp loop once per
// needle, so a sweep over P patterns costs O(P × bytes) — ruinous for the
// multi-tenant workloads PR 3 made common (1000 vhosts = 4000 needles).
// This matcher walks the buffer ONCE: a 65536-bit two-byte-prefix bitmap
// rejects almost every position with one predictable branch (P needles
// occupy ~P of 65536 pairs, so the skip branch is taken >99% of the time
// and predicts near-perfectly — a one-byte starter table mispredicts
// ~P/256 of the time, which dominates the walk), a 256-entry first-byte
// dispatch table maps survivors to the bucket of needles starting with
// that byte, an 8-byte SWAR prefix filter ((load ^ prefix) & mask, built
// with memcpy so it is endian-neutral) rejects accidental pair hits in
// one compare, and only survivors of THAT pay a memcmp of the tail. Cost
// is ~one pass plus work proportional to real candidate hits,
// independent of needle count. Needles whose required match length is 1
// set every pair for their first byte, so the bitmap never produces a
// false negative.
//
// Equivalence contract: for the same (begin, end, window_end) window the
// output is offset-for-offset identical to the legacy per-needle walk —
// positions are visited ascending and each bucket keeps needle order, so
// matches emerge already (offset, pattern_index)-sorted, which is exactly
// the order scan_shard's final sort produces. Prefix mode (the LKM's
// partial-match path) replicates the same extend-while-agreeing loop with
// the same window bounds. tests/scan_matcher_test.cpp fuzzes both modes
// against the legacy oracle.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "scan/scan_engine.hpp"

namespace keyguard::scan {

class MultiMatcher {
 public:
  /// Compiles the dispatch table. `needles` views must outlive the
  /// matcher. min_prefix_bytes == 0 selects exact whole-needle matching;
  /// > 0 selects the LKM's partial path (needles shorter than the minimum
  /// are skipped, hits extend while bytes keep agreeing).
  MultiMatcher(std::span<const std::span<const std::byte>> needles,
               std::size_t min_prefix_bytes = 0);

  /// Needles that survived the empty/too-short filter.
  std::size_t active_needles() const noexcept { return entries_.size(); }

  /// Scans buffer bytes [begin, window_end) and appends every match whose
  /// FIRST byte lies in [begin, end), in (offset, pattern_index) order.
  /// Thread-safe: const over immutable tables, so sharded_scan shares one
  /// instance across all chunks.
  void scan(std::span<const std::byte> buffer, std::size_t begin,
            std::size_t end, std::size_t window_end,
            std::vector<RawMatch>& out) const;

 private:
  struct Entry {
    std::uint64_t prefix = 0;       ///< first cmp_len bytes (memcpy image)
    std::uint64_t mask = 0;         ///< 0xFF per prefix byte (memcpy image)
    const std::byte* bytes = nullptr;  ///< full needle
    std::uint32_t len = 0;          ///< full needle length
    std::uint32_t match_len = 0;    ///< len (exact) or min_prefix (prefix mode)
    std::uint32_t pattern_index = 0;
  };

  /// Emits every needle matching at `pos` (bucket walk + SWAR + tail).
  void check_candidate(const unsigned char* base, std::size_t buf_size,
                       std::size_t pos, std::size_t window_end,
                       std::vector<RawMatch>& out) const;

  std::size_t min_prefix_ = 0;
  std::vector<Entry> entries_;  ///< grouped by first byte, needle-ordered
  std::array<std::uint32_t, 256> bucket_begin_{};  ///< index into entries_
  std::array<std::uint32_t, 256> bucket_end_{};
  /// Bit (b0 | b1<<8) set iff some needle requires first bytes b0,b1 (or
  /// requires only b0 and may be followed by anything). 8 KB, L1-resident.
  std::array<std::uint64_t, 1024> pair_bits_{};
};

}  // namespace keyguard::scan
