#include "scan/capture_stream.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/flags.hpp"

namespace keyguard::scan {

namespace {

std::size_t page_bytes() {
  static const std::size_t cached = [] {
    const long v = ::sysconf(_SC_PAGESIZE);
    return v > 0 ? static_cast<std::size_t>(v) : std::size_t{4096};
  }();
  return cached;
}

std::string errno_message(const char* what, const std::string& path) {
  std::string msg = what;
  msg += " ";
  msg += path;
  msg += ": ";
  msg += std::strerror(errno);
  return msg;
}

}  // namespace

CaptureStream::CaptureStream(const std::string& path, std::size_t window_bytes)
    : window_(window_bytes > 0 ? window_bytes : kDefaultWindowBytes) {
  fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (fd_ < 0) {
    error_ = errno_message("open", path);
    return;
  }
  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    error_ = errno_message("stat", path);
    return;
  }
  size_ = static_cast<std::size_t>(st.st_size);
  ok_ = true;
  // mmap unless the file is empty or the caller opted out; any mmap
  // failure (32-bit address space, weird filesystem) silently selects the
  // pread path — both produce identical windows.
  const bool want_mmap = util::env_int("KEYGUARD_CAPTURE_MMAP", 1) != 0;
  if (size_ > 0 && want_mmap) {
    void* m = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd_, 0);
    if (m != MAP_FAILED) {
      map_ = static_cast<const std::byte*>(m);
      ::madvise(m, size_, MADV_SEQUENTIAL);
    }
  }
}

CaptureStream::~CaptureStream() {
  if (map_ != nullptr) {
    ::munmap(const_cast<std::byte*>(map_), size_);  // NOLINT(cppcoreguidelines-pro-type-const-cast)
  }
  if (fd_ >= 0) ::close(fd_);
}

void CaptureStream::rewind(std::size_t reach) {
  reach_ = reach;
  offset_ = 0;
  prev_view_ = 0;
  prev_payload_ = 0;
  carry_ = 0;
  started_ = false;
  // Pages released by drop-behind refetch from the file on access (the
  // mapping is read-only MAP_PRIVATE), so restarting is just a rewind.
  dropped_ = 0;
}

void CaptureStream::drop_consumed(std::size_t keep_from) {
  if (map_ == nullptr) return;
  const std::size_t floor = keep_from - keep_from % page_bytes();
  if (floor <= dropped_) return;
  // Consumed pages go back to the kernel immediately instead of waiting
  // for reclaim — this is what bounds peak RSS to O(window) even when the
  // capture dwarfs physical memory.
  ::madvise(const_cast<std::byte*>(map_) + dropped_, floor - dropped_,  // NOLINT(cppcoreguidelines-pro-type-const-cast)
            MADV_DONTNEED);
  dropped_ = floor;
}

std::optional<CaptureWindow> CaptureStream::next() {
  if (!ok_) return std::nullopt;
  if (started_) {
    // Consume the previous window: its payload is done; the overlap tail
    // belongs to the window we are about to produce.
    carry_ = prev_view_ - prev_payload_;
    if (map_ == nullptr && carry_ > 0) {
      std::memmove(buffer_.data(), buffer_.data() + prev_payload_, carry_);
    }
    offset_ += prev_payload_;
    drop_consumed(offset_);
  }
  if (offset_ >= size_) return std::nullopt;
  started_ = true;
  const std::size_t payload = std::min(window_, size_ - offset_);
  const std::size_t view = std::min(size_ - offset_, payload + reach_);
  CaptureWindow w;
  w.payload = payload;
  w.offset = offset_;
  if (map_ != nullptr) {
    w.bytes = {map_ + offset_, view};
  } else {
    buffer_.resize(std::max(buffer_.size(), view));
    std::size_t have = carry_;  // bytes [offset_, offset_ + carry_) kept
    while (have < view) {
      const ssize_t n =
          ::pread(fd_, buffer_.data() + have, view - have,
                  static_cast<off_t>(offset_ + have));
      if (n < 0) {
        if (errno == EINTR) continue;
        error_ = errno_message("read", "capture");
        ok_ = false;
        return std::nullopt;
      }
      if (n == 0) {  // file shrank underneath us
        error_ = "read capture: unexpected end of file";
        ok_ = false;
        return std::nullopt;
      }
      have += static_cast<std::size_t>(n);
    }
    w.bytes = {buffer_.data(), view};
  }
  prev_view_ = view;
  prev_payload_ = payload;
  return w;
}

}  // namespace keyguard::scan
