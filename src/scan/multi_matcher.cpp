#include "scan/multi_matcher.hpp"

#include <algorithm>
#include <cstring>

namespace keyguard::scan {

namespace {

/// Loads up to 8 bytes starting at p as a comparison image. Built with
/// memcpy on both the needle (at compile time) and the buffer (at scan
/// time), so the comparison is byte-order-agnostic.
inline std::uint64_t load_image(const unsigned char* p, std::size_t n) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, n);
  return v;
}

}  // namespace

MultiMatcher::MultiMatcher(std::span<const std::span<const std::byte>> needles,
                           std::size_t min_prefix_bytes)
    : min_prefix_(min_prefix_bytes) {
  entries_.reserve(needles.size());
  for (std::size_t pi = 0; pi < needles.size(); ++pi) {
    const auto needle = needles[pi];
    if (needle.empty()) continue;
    if (min_prefix_ > 0 && needle.size() < min_prefix_) continue;
    Entry e;
    e.bytes = needle.data();
    e.len = static_cast<std::uint32_t>(needle.size());
    e.match_len = static_cast<std::uint32_t>(
        min_prefix_ > 0 ? min_prefix_ : needle.size());
    e.pattern_index = static_cast<std::uint32_t>(pi);
    const std::size_t cmp = std::min<std::size_t>(8, e.match_len);
    e.prefix = load_image(reinterpret_cast<const unsigned char*>(needle.data()), cmp);
    unsigned char ones[8] = {};
    // keylint: allow(raw-memset) — builds the 0xFF compare mask, no secret
    std::memset(ones, 0xFF, cmp);
    e.mask = load_image(ones, 8);
    entries_.push_back(e);
  }
  // Group by first byte; needle order inside each bucket keeps the
  // per-position emit order equal to the legacy loop's pattern order.
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     const auto ab = std::to_integer<unsigned>(a.bytes[0]);
                     const auto bb = std::to_integer<unsigned>(b.bytes[0]);
                     return ab != bb ? ab < bb
                                     : a.pattern_index < b.pattern_index;
                   });
  std::size_t i = 0;
  for (unsigned b = 0; b < 256; ++b) {
    bucket_begin_[b] = static_cast<std::uint32_t>(i);
    while (i < entries_.size() &&
           std::to_integer<unsigned>(entries_[i].bytes[0]) == b) {
      ++i;
    }
    bucket_end_[b] = static_cast<std::uint32_t>(i);
  }
  // Two-byte-prefix bitmap. A needle whose required length is >= 2 pins
  // its exact (b0, b1) pair; a required length of 1 admits any second
  // byte, so all 256 pairs for b0 are set — no false negatives either way.
  for (const Entry& e : entries_) {
    const unsigned b0 = std::to_integer<unsigned>(e.bytes[0]);
    if (e.match_len >= 2) {
      const unsigned idx = b0 | (std::to_integer<unsigned>(e.bytes[1]) << 8);
      pair_bits_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    } else {
      for (unsigned b1 = 0; b1 < 256; ++b1) {
        const unsigned idx = b0 | (b1 << 8);
        pair_bits_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
      }
    }
  }
}

void MultiMatcher::check_candidate(const unsigned char* base,
                                   std::size_t buf_size, std::size_t pos,
                                   std::size_t window_end,
                                   std::vector<RawMatch>& out) const {
  // Try the bucket's needles in pattern order so ties at the same offset
  // come out in the legacy loop's order.
  const unsigned char b = base[pos];
  std::uint32_t ei = bucket_begin_[b];
  const std::uint32_t ee = bucket_end_[b];
  if (ei == ee) return;  // pair hit from a different first byte's needle
  const std::uint64_t have8 = pos + 8 <= buf_size
                                  ? load_image(base + pos, 8)
                                  : load_image(base + pos, buf_size - pos);
  for (; ei < ee; ++ei) {
    const Entry& e = entries_[ei];
    // The whole compared span must fit inside the window — the same
    // rule find_all applies to the legacy walk, which is what makes a
    // shard's seam-overlap attribution bit-identical.
    if (pos + e.match_len > window_end) continue;
    if (((have8 ^ e.prefix) & e.mask) != 0) continue;
    const std::size_t cmp = std::min<std::size_t>(8, e.match_len);
    if (e.match_len > cmp &&
        std::memcmp(base + pos + cmp,
                    reinterpret_cast<const unsigned char*>(e.bytes) + cmp,
                    e.match_len - cmp) != 0) {
      continue;
    }
    if (min_prefix_ == 0) {
      out.push_back({pos, e.pattern_index, e.len, true});
    } else {
      // Extend while the needle keeps agreeing, bounded by the window
      // exactly like the legacy prefix path (only the true end of the
      // buffer can truncate extension — seam windows are sized so).
      std::size_t len = e.match_len;
      const auto* nb = reinterpret_cast<const unsigned char*>(e.bytes);
      while (len < e.len && pos + len < window_end &&
             base[pos + len] == nb[len]) {
        ++len;
      }
      out.push_back({pos, e.pattern_index, len, len == e.len});
    }
  }
}

void MultiMatcher::scan(std::span<const std::byte> buffer, std::size_t begin,
                        std::size_t end, std::size_t window_end,
                        std::vector<RawMatch>& out) const {
  if (entries_.empty() || begin >= end) return;
  const auto* base = reinterpret_cast<const unsigned char*>(buffer.data());
  const std::size_t limit = std::min(end, window_end);
  // Hot loop: one 16-bit pair lookup per position. The second byte may
  // lie past the window (but inside the buffer) — a false positive there
  // is rejected by check_candidate's window test, never a false negative.
  const std::size_t pair_limit =
      std::min(limit, buffer.size() > 0 ? buffer.size() - 1 : 0);
  std::size_t pos = begin;
  while (pos < pair_limit) {
    const unsigned idx =
        static_cast<unsigned>(base[pos]) |
        (static_cast<unsigned>(base[pos + 1]) << 8);
    if ((pair_bits_[idx >> 6] & (std::uint64_t{1} << (idx & 63))) != 0) {
      check_candidate(base, buffer.size(), pos, window_end, out);
    }
    ++pos;
  }
  // Final buffer byte (no second byte to pair with): only needles with a
  // required length of 1 can still match; the bucket walk sorts it out.
  for (; pos < limit; ++pos) {
    check_candidate(base, buffer.size(), pos, window_end, out);
  }
}

}  // namespace keyguard::scan
