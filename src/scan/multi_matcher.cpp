#include "scan/multi_matcher.hpp"

#include <algorithm>
#include <cstring>

namespace keyguard::scan {

namespace {

/// Loads up to 8 bytes starting at p as a comparison image. Built with
/// memcpy on both the needle (at compile time) and the buffer (at scan
/// time), so the comparison is byte-order-agnostic.
inline std::uint64_t load_image(const unsigned char* p, std::size_t n) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, n);
  return v;
}

}  // namespace

MultiMatcher::MultiMatcher(std::span<const std::span<const std::byte>> needles,
                           std::size_t min_prefix_bytes)
    : min_prefix_(min_prefix_bytes) {
  entries_.reserve(needles.size());
  for (std::size_t pi = 0; pi < needles.size(); ++pi) {
    const auto needle = needles[pi];
    if (needle.empty()) continue;
    if (min_prefix_ > 0 && needle.size() < min_prefix_) continue;
    Entry e;
    e.bytes = needle.data();
    e.len = static_cast<std::uint32_t>(needle.size());
    e.match_len = static_cast<std::uint32_t>(
        min_prefix_ > 0 ? min_prefix_ : needle.size());
    e.pattern_index = static_cast<std::uint32_t>(pi);
    const std::size_t cmp = std::min<std::size_t>(8, e.match_len);
    e.prefix = load_image(reinterpret_cast<const unsigned char*>(needle.data()), cmp);
    unsigned char ones[8] = {};
    // keylint: allow(raw-memset) — builds the 0xFF compare mask, no secret
    std::memset(ones, 0xFF, cmp);
    e.mask = load_image(ones, 8);
    if (e.match_len >= 2) {
      e.second = static_cast<std::uint8_t>(std::to_integer<unsigned>(needle[1]));
    }
    entries_.push_back(e);
  }
  // Group by first byte. Inside a bucket, needles that require only one
  // byte sort first (key 0 — they match under any second byte), then the
  // rest by (second byte + 1, pattern order): at scan time only ONE
  // second-byte run can match a given position, so check_candidate
  // binary-searches to it and merges the two runs by pattern index — the
  // per-position emit order stays equal to the legacy loop's.
  const auto sub_key = [](const Entry& e) -> unsigned {
    return e.match_len >= 2 ? static_cast<unsigned>(e.second) + 1 : 0;
  };
  std::stable_sort(entries_.begin(), entries_.end(),
                   [&](const Entry& a, const Entry& b) {
                     const auto ab = std::to_integer<unsigned>(a.bytes[0]);
                     const auto bb = std::to_integer<unsigned>(b.bytes[0]);
                     if (ab != bb) return ab < bb;
                     const unsigned ak = sub_key(a);
                     const unsigned bk = sub_key(b);
                     return ak != bk ? ak < bk
                                     : a.pattern_index < b.pattern_index;
                   });
  std::size_t i = 0;
  for (unsigned b = 0; b < 256; ++b) {
    bucket_begin_[b] = static_cast<std::uint32_t>(i);
    while (i < entries_.size() &&
           std::to_integer<unsigned>(entries_[i].bytes[0]) == b &&
           entries_[i].match_len < 2) {
      ++i;
    }
    short_end_[b] = static_cast<std::uint32_t>(i);
    while (i < entries_.size() &&
           std::to_integer<unsigned>(entries_[i].bytes[0]) == b) {
      ++i;
    }
    bucket_end_[b] = static_cast<std::uint32_t>(i);
  }
  // Two-byte-prefix bitmap. A needle whose required length is >= 2 pins
  // its exact (b0, b1) pair; a required length of 1 admits any second
  // byte, so all 256 pairs for b0 are set — no false negatives either way.
  // The shufti tables are the bitmap's vector-friendly shadow: each
  // distinct first byte takes a bucket (order of appearance, mod 8 past
  // eight — collisions only cost false positives), the first-byte nibbles
  // set the bucket bit in lo0/hi0, and the second byte either pins its
  // nibbles in lo1/hi1 or (required length 1) admits every second byte.
  std::array<int, 256> first_bucket;
  first_bucket.fill(-1);
  unsigned next_bucket = 0;
  for (const Entry& e : entries_) {
    const unsigned b0 = std::to_integer<unsigned>(e.bytes[0]);
    int bucket = first_bucket[b0];
    if (bucket < 0) {
      bucket = static_cast<int>(next_bucket++ & 7u);
      first_bucket[b0] = bucket;
    }
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << bucket);
    shufti_.lo0[b0 & 15] |= bit;
    shufti_.hi0[b0 >> 4] |= bit;
    if (e.match_len >= 2) {
      const unsigned b1 = std::to_integer<unsigned>(e.bytes[1]);
      const unsigned idx = b0 | (b1 << 8);
      pair_bits_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
      shufti_.lo1[b1 & 15] |= bit;
      shufti_.hi1[b1 >> 4] |= bit;
    } else {
      for (unsigned b1 = 0; b1 < 256; ++b1) {
        const unsigned idx = b0 | (b1 << 8);
        pair_bits_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
      }
      for (unsigned n = 0; n < 16; ++n) {
        shufti_.lo1[n] |= bit;
        shufti_.hi1[n] |= bit;
      }
    }
  }
  // Profitability: evaluate the nibble classifier over every byte pair —
  // exactly what the vector kernel computes per position — and count how
  // many survive. The skim only pays when it rejects most positions; past
  // ~25% survivors (needle sets with hundreds of unstructured prefixes
  // saturate the 8 buckets) the candidate handling costs more than the
  // scalar walk it replaces, so scan_simd() degrades to scan() instead of
  // regressing. Real key-pattern sets (DER tags, PEM armor, shared
  // headers) cluster on few first bytes and land far below the cutoff.
  std::size_t survivors = 0;
  for (unsigned b0 = 0; b0 < 256; ++b0) {
    const std::uint8_t m0 = static_cast<std::uint8_t>(shufti_.lo0[b0 & 15] &
                                                      shufti_.hi0[b0 >> 4]);
    if (m0 == 0) continue;
    for (unsigned b1 = 0; b1 < 256; ++b1) {
      if ((m0 & shufti_.lo1[b1 & 15] & shufti_.hi1[b1 >> 4]) != 0) {
        ++survivors;
      }
    }
  }
  simd_profitable_ = survivors <= (256u * 256u) / 4u;
}

void MultiMatcher::check_candidate(const unsigned char* base,
                                   std::size_t buf_size, std::size_t pos,
                                   std::size_t window_end,
                                   std::vector<RawMatch>& out) const {
  const unsigned char b = base[pos];
  const std::uint32_t sb = bucket_begin_[b];
  const std::uint32_t se = short_end_[b];
  const std::uint32_t be = bucket_end_[b];
  if (sb == be) return;  // pair hit from a different first byte's needle
  // Binary-search the (second byte)-sorted tail of the bucket down to the
  // run that can match the buffer's actual second byte; everything else
  // in the bucket is a guaranteed SWAR reject and never gets touched.
  std::uint32_t pb = se;
  std::uint32_t pe = se;
  if (pos + 1 < buf_size) {
    const unsigned b1 = base[pos + 1];
    std::uint32_t lo = se;
    std::uint32_t hi = be;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (static_cast<unsigned>(entries_[mid].second) < b1) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    pb = lo;
    hi = be;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (static_cast<unsigned>(entries_[mid].second) <= b1) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    pe = lo;
  }
  if (sb == se && pb == pe) return;
  const std::uint64_t have8 = pos + 8 <= buf_size
                                  ? load_image(base + pos, 8)
                                  : load_image(base + pos, buf_size - pos);
  // Merge the length-1 run and the second-byte run by pattern index so
  // ties at the same offset come out in the legacy loop's order.
  std::uint32_t si = sb;
  std::uint32_t pi = pb;
  while (si < se || pi < pe) {
    std::uint32_t ei;
    if (si < se && (pi >= pe || entries_[si].pattern_index <
                                    entries_[pi].pattern_index)) {
      ei = si++;
    } else {
      ei = pi++;
    }
    const Entry& e = entries_[ei];
    // The whole compared span must fit inside the window — the same
    // rule find_all applies to the legacy walk, which is what makes a
    // shard's seam-overlap attribution bit-identical.
    if (pos + e.match_len > window_end) continue;
    if (((have8 ^ e.prefix) & e.mask) != 0) continue;
    const std::size_t cmp = std::min<std::size_t>(8, e.match_len);
    if (e.match_len > cmp &&
        std::memcmp(base + pos + cmp,
                    reinterpret_cast<const unsigned char*>(e.bytes) + cmp,
                    e.match_len - cmp) != 0) {
      continue;
    }
    if (min_prefix_ == 0) {
      out.push_back({pos, e.pattern_index, e.len, true});
    } else {
      // Extend while the needle keeps agreeing, bounded by the window
      // exactly like the legacy prefix path (only the true end of the
      // buffer can truncate extension — seam windows are sized so).
      std::size_t len = e.match_len;
      const auto* nb = reinterpret_cast<const unsigned char*>(e.bytes);
      while (len < e.len && pos + len < window_end &&
             base[pos + len] == nb[len]) {
        ++len;
      }
      out.push_back({pos, e.pattern_index, len, len == e.len});
    }
  }
}

void MultiMatcher::scan_scalar(const unsigned char* base, std::size_t buf_size,
                               std::size_t pos, std::size_t pair_limit,
                               std::size_t limit, std::size_t window_end,
                               std::vector<RawMatch>& out) const {
  // Hot loop: one 16-bit pair lookup per position. The second byte may
  // lie past the window (but inside the buffer) — a false positive there
  // is rejected by check_candidate's window test, never a false negative.
  while (pos < pair_limit) {
    const unsigned idx =
        static_cast<unsigned>(base[pos]) |
        (static_cast<unsigned>(base[pos + 1]) << 8);
    if ((pair_bits_[idx >> 6] & (std::uint64_t{1} << (idx & 63))) != 0) {
      check_candidate(base, buf_size, pos, window_end, out);
    }
    ++pos;
  }
  // Final buffer byte (no second byte to pair with): only needles with a
  // required length of 1 can still match; the bucket walk sorts it out.
  for (; pos < limit; ++pos) {
    check_candidate(base, buf_size, pos, window_end, out);
  }
}

void MultiMatcher::scan(std::span<const std::byte> buffer, std::size_t begin,
                        std::size_t end, std::size_t window_end,
                        std::vector<RawMatch>& out) const {
  if (entries_.empty() || begin >= end) return;
  const auto* base = reinterpret_cast<const unsigned char*>(buffer.data());
  const std::size_t limit = std::min(end, window_end);
  const std::size_t pair_limit =
      std::min(limit, buffer.size() > 0 ? buffer.size() - 1 : 0);
  scan_scalar(base, buffer.size(), begin, pair_limit, limit, window_end, out);
}

void MultiMatcher::scan_simd(std::span<const std::byte> buffer,
                             std::size_t begin, std::size_t end,
                             std::size_t window_end,
                             std::vector<RawMatch>& out) const {
  const SimdKind kind = simd_available();
  if (kind == SimdKind::kNone || !simd_profitable_) {
    scan(buffer, begin, end, window_end, out);  // scalar, bit-identical
    return;
  }
  if (entries_.empty() || begin >= end) return;
  const auto* base = reinterpret_cast<const unsigned char*>(buffer.data());
  const std::size_t limit = std::min(end, window_end);
  const std::size_t pair_limit =
      std::min(limit, buffer.size() > 0 ? buffer.size() - 1 : 0);
  // Vector stage over whole 32/64-byte blocks of [begin, pair_limit).
  // Candidates are collected in 64 KiB stripes (the scratch vector stays
  // L2-resident even on match-dense inputs) and each survivor re-checks
  // the exact pair bitmap — the shufti mask is a superset — before the
  // ordinary bucket/SWAR/tail verify. Ascending stripe + ascending ctz
  // extraction keeps emit order identical to the scalar walk.
  static thread_local std::vector<std::size_t> candidates;
  constexpr std::size_t kStripe = 64 * 1024;
  std::size_t pos = begin;
  while (pos < pair_limit) {
    const std::size_t stripe_end = std::min(pair_limit, pos + kStripe);
    candidates.clear();
    const std::size_t resumed = simd_detail::collect_candidates(
        kind, base, pos, stripe_end, shufti_, candidates);
    for (const std::size_t p : candidates) {
      const unsigned idx =
          static_cast<unsigned>(base[p]) |
          (static_cast<unsigned>(base[p + 1]) << 8);
      if ((pair_bits_[idx >> 6] & (std::uint64_t{1} << (idx & 63))) != 0) {
        check_candidate(base, buffer.size(), p, window_end, out);
      }
    }
    if (resumed == pos) break;  // stripe shorter than one vector
    pos = resumed;
  }
  // Scalar tail: the sub-vector remainder of the pair loop plus the
  // final-byte walk — the same code the pure scalar path runs.
  scan_scalar(base, buffer.size(), pos, pair_limit, limit, window_end, out);
}

}  // namespace keyguard::scan
