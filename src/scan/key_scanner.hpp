// Reproduction of the paper's `scanmemory` loadable kernel module.
//
// scanmemory walked physical memory linearly looking for copies of the
// private key — the CRT parts d, P, Q as BN_ULONG (little-endian limb)
// arrays, plus the PEM-encoded key file text — and, for every hit, used
// the 2.6 reverse mapping to report which processes own the page and
// whether the frame is allocated at all. This class does the same over a
// sim::Kernel, and can also scan raw attack captures (the bytes the ext2
// or n_tty exploits disclosed).
//
// Like the LKM (first machine word compared, then the tail), the scan uses
// a first-byte filter (memchr) before the full compare. Unlike the LKM's
// single linear walk ("about 5 seconds for 256 MB"), the walk is sharded
// across a thread pool (scan/scan_engine.hpp): whole-frame shards with
// seam-overlap windows make the parallel result byte-for-byte identical
// to the serial one. Match order is the documented contract: ascending
// phys_offset, with the pattern list order (d, P, Q, PEM) breaking ties.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "crypto/rsa.hpp"
#include "scan/dirty_journal.hpp"
#include "scan/scan_engine.hpp"
#include "sim/kernel.hpp"

namespace keyguard::scan {

class CaptureStream;

/// The byte patterns whose disclosure compromises the key (paper §2:
/// "we call any appearance of any of them a copy of the private key").
struct KeyPatterns {
  struct Pattern {
    std::string name;              ///< "d", "P", "Q", "PEM"
    std::vector<std::byte> bytes;  ///< exact needle
  };
  std::vector<Pattern> patterns;

  /// Builds the four needles from a key: limb images of d, P, Q and the
  /// PEM text of the whole key.
  static KeyPatterns from_key(const crypto::RsaPrivateKey& key);

  /// Needles for a multi-tenant key population: the same four per key,
  /// named "d#i" / "P#i" / "Q#i" / "PEM#i" by key index. Pass DISTINCT
  /// keys — duplicates would report every hit once per duplicate.
  static KeyPatterns from_keys(std::span<const crypto::RsaPrivateKey> keys);
};

/// A hit in simulated physical memory.
struct MemoryMatch {
  std::size_t phys_offset = 0;   ///< byte address in physical memory
  std::string part;              ///< which pattern matched
  sim::FrameNumber frame = 0;    ///< frame containing the first byte
  sim::FrameState state{};       ///< allocated class at scan time
  std::vector<sim::Pid> owners;  ///< live processes mapping the frame
  /// EVERY (pid, vaddr) mapping of the frame. One physical hit on a
  /// dedup-merged frame is one disclosure per mapping — a scan that
  /// reported the canonical owner alone would under-count the blast
  /// radius by share_count()-1 tenants. Unshared frames have one entry
  /// per owning pid (owners and mappings then carry the same pids).
  std::vector<sim::Kernel::FrameMapping> mappings;
  /// What this copy IS — "RSA bignum p (live)", "BN_MONT_CTX modulus copy
  /// (freed)", "rsa_aligned mapping [mlocked]", "page cache", "unallocated
  /// residue" — the paper's §3 explanation of why copies flood memory.
  std::string provenance;

  bool allocated() const noexcept { return state != sim::FrameState::kFree; }
  /// Mappings sharing the frame (>1 ⟺ COW- or dedup-shared at scan time).
  std::size_t share_count() const noexcept { return mappings.size(); }
};

/// A hit inside an attack capture buffer.
struct CaptureMatch {
  std::size_t offset = 0;
  std::string part;
};

/// A prefix match (the LKM's partial-match path: first word equal, then as
/// many following words as compare equal, reported when >= MIN words).
/// Partial matches arise when a key image straddles two physically
/// non-adjacent pages — the scan sees only the first fragment.
struct PartialMatch {
  std::size_t offset = 0;
  std::string part;
  std::size_t matched_bytes = 0;
  bool full = false;
};

/// A hit inside one process's virtual address space (core-dump view).
struct ProcessMatch {
  sim::VirtAddr vaddr = 0;
  std::string part;
};

/// Allocated/unallocated split of a scan (the paper's light/dark bars).
struct Census {
  std::size_t allocated = 0;
  std::size_t unallocated = 0;
  std::size_t total() const noexcept { return allocated + unallocated; }
};

/// Carry-over state for incremental sweeps: the previous sweep's raw byte
/// hits. Owned by the caller (one cache per scanned kernel); an empty or
/// size-mismatched cache makes the next sweep a full prime.
struct SweepCache {
  std::vector<RawMatch> raw;    ///< previous sweep, (offset, pattern)-sorted
  std::size_t phys_bytes = 0;   ///< memory size the cache was built against
  bool primed = false;

  void invalidate() noexcept {
    raw.clear();
    phys_bytes = 0;
    primed = false;
  }
};

class KeyScanner {
 public:
  explicit KeyScanner(KeyPatterns patterns) : patterns_(std::move(patterns)) {}

  /// Builds the scanner for a key directly.
  explicit KeyScanner(const crypto::RsaPrivateKey& key)
      : KeyScanner(KeyPatterns::from_key(key)) {}

  /// Shard count for the parallel walk. 0 (the default) auto-sizes to the
  /// machine (KEYGUARD_SCAN_THREADS env overrides); 1 forces the serial
  /// walk. Results are byte-for-byte identical at every setting — only
  /// ScanStats timing differs.
  void set_shards(std::size_t shards) noexcept { shards_ = shards; }
  std::size_t shards() const noexcept { return shards_; }

  /// Inner-loop matcher. kAuto (the default) picks the best multi-pattern
  /// path at/above kMultiMatcherMinNeedles active needles (kSimd when the
  /// CPU has AVX2/AVX-512BW, kMulti otherwise) and the legacy walk below
  /// it; KEYGUARD_SCAN_MATCHER=legacy|multi|simd|auto overrides kAuto.
  /// Results are byte-identical at every setting.
  void set_matcher(MatcherKind m) noexcept { matcher_ = m; }
  MatcherKind matcher() const noexcept { return matcher_; }

  /// Full physical-memory scan with frame classification and reverse-map
  /// owner attribution (scanmemory's procfile_read). Matches are in
  /// ascending (phys_offset, pattern) order. `stats`, when non-null,
  /// receives shard/throughput metrics for the byte-scan portion.
  std::vector<MemoryMatch> scan_kernel(const sim::Kernel& kernel,
                                       ScanStats* stats = nullptr) const;

  /// Incremental sweep: byte-identical to scan_kernel but the byte scan
  /// covers only the frames `journal` recorded dirty since the last sweep
  /// (each extended by a max_needle_len-1 seam window on the left and
  /// rescanned with the same window on the right), splicing fresh hits
  /// into `cache`. An unprimed or size-mismatched cache triggers a full
  /// priming sweep. Frame metadata (state, owners, provenance) is
  /// re-resolved for EVERY match each call — it can change without a byte
  /// changing (fork, exit, free). For incremental sweeps `stats` reports
  /// the delta cost: bytes_scanned is rescanned window bytes, shards are
  /// the rescan windows, incremental/dirty_frames are set, match_count is
  /// the full current total. Equivalence with a fresh scan_kernel is
  /// enforced by tests/scan_incremental_test.cpp; DESIGN.md §8 has the
  /// exactness argument.
  std::vector<MemoryMatch> scan_kernel_incremental(const sim::Kernel& kernel,
                                                   DirtyFrameJournal& journal,
                                                   SweepCache& cache,
                                                   ScanStats* stats = nullptr) const;

  /// Scan of a disclosed byte buffer (what the attacker greps on the USB
  /// stick / dump file).
  std::vector<CaptureMatch> scan_capture(std::span<const std::byte> capture,
                                         ScanStats* stats = nullptr) const;

  /// Number of distinct key copies in a capture (== matches; the paper
  /// counts every appearance).
  std::size_t count_copies(std::span<const std::byte> capture) const {
    return scan_capture(capture).size();
  }

  /// Prefix matching like the LKM: report every location where at least
  /// `min_bytes` of a pattern's prefix appears (the appendix code used
  /// MIN = 5 32-bit words = 20 bytes). Full matches are flagged.
  std::vector<PartialMatch> scan_capture_prefix(std::span<const std::byte> capture,
                                                std::size_t min_bytes = 20,
                                                ScanStats* stats = nullptr) const;

  /// Streaming variants: walk a CaptureStream window by window (seam
  /// overlap = max_needle_len - 1, the shard-seam rule) and return
  /// matches bit-identical to scan_capture / scan_capture_prefix over the
  /// whole file loaded at once — with O(window) resident memory instead
  /// of O(file). `stats` aggregates across windows: bytes_scanned and
  /// bytes_streamed both report the file size and `shards` lists one
  /// entry per window. Check stream.ok() afterwards — a mid-walk read
  /// error ends the walk early with partial results.
  std::vector<CaptureMatch> scan_capture_stream(CaptureStream& stream,
                                                ScanStats* stats = nullptr) const;
  std::vector<PartialMatch> scan_capture_prefix_stream(
      CaptureStream& stream, std::size_t min_bytes = 20,
      ScanStats* stats = nullptr) const;

  /// Scans one process's resident virtual address space — what a core dump
  /// or /proc/<pid>/mem disclosure of that process would reveal.
  std::vector<ProcessMatch> scan_process(const sim::Kernel& kernel,
                                         const sim::Process& process) const;

  static Census census(const std::vector<MemoryMatch>& matches);

  const KeyPatterns& patterns() const noexcept { return patterns_; }

 private:
  /// Needle views over patterns_, in declaration order (the tie-break).
  std::vector<std::span<const std::byte>> needles() const;
  /// shards_ resolved against the machine/env for an actual scan.
  std::size_t effective_shards() const;
  /// matcher_ with the KEYGUARD_SCAN_MATCHER env applied to kAuto.
  MatcherKind effective_matcher() const;
  /// Layers frame state / owners / provenance onto raw engine hits.
  std::vector<MemoryMatch> resolve_raw(const sim::Kernel& kernel,
                                       std::span<const RawMatch> raw) const;
  /// Shared body of the two streaming scans: windowed walk, offsets
  /// rebased to file offsets, per-window stats aggregated.
  std::vector<RawMatch> stream_raw(CaptureStream& stream,
                                   std::size_t min_prefix_bytes,
                                   ScanStats* stats) const;

  KeyPatterns patterns_;
  std::size_t shards_ = 0;  // 0 = auto
  MatcherKind matcher_ = MatcherKind::kAuto;
};

}  // namespace keyguard::scan
