#include "scan/dirty_journal.hpp"

#include <algorithm>

namespace keyguard::scan {

DirtyFrameJournal::DirtyFrameJournal(std::size_t phys_bytes,
                                     std::size_t frame_bytes)
    : frame_bytes_(frame_bytes == 0 ? sim::kPageSize : frame_bytes) {
  dirty_.assign((phys_bytes + frame_bytes_ - 1) / frame_bytes_, 0);
}

void DirtyFrameJournal::mark_range(std::size_t off, std::size_t len) {
  if (len == 0 || dirty_.empty()) return;
  ++store_events_;
  const std::size_t first = off / frame_bytes_;
  const std::size_t last = (off + len - 1) / frame_bytes_;
  for (std::size_t f = first; f <= last && f < dirty_.size(); ++f) {
    if (dirty_[f] == 0) {
      dirty_[f] = 1;
      ++dirty_count_;
    }
  }
}

void DirtyFrameJournal::on_phys_store(std::size_t off, std::size_t len,
                                      sim::TaintTag /*tag*/) {
  // Tag is irrelevant here: a kClean store still CHANGES bytes (that is
  // precisely how churn erases residue), so the frame must be rescanned.
  mark_range(off, len);
}

void DirtyFrameJournal::on_phys_copy(std::size_t dst, std::size_t /*src*/,
                                     std::size_t len) {
  mark_range(dst, len);  // only the destination's bytes changed
}

void DirtyFrameJournal::on_phys_clear(std::size_t off, std::size_t len) {
  mark_range(off, len);
}

void DirtyFrameJournal::on_swap_store(std::uint32_t /*slot*/,
                                      std::size_t /*phys_src*/) {
  ++swap_slot_events_;  // page copied OUT: RAM bytes unchanged
}

void DirtyFrameJournal::on_swap_load(std::size_t phys_dst,
                                     std::uint32_t /*slot*/) {
  mark_range(phys_dst, frame_bytes_);  // a whole page landed in RAM
}

void DirtyFrameJournal::on_swap_clear(std::uint32_t /*slot*/) {
  ++swap_slot_events_;  // slot scrub: RAM bytes unchanged
}

std::vector<std::size_t> DirtyFrameJournal::drain() {
  auto out = snapshot();
  clear();
  return out;
}

std::vector<std::size_t> DirtyFrameJournal::snapshot() const {
  std::vector<std::size_t> out;
  out.reserve(dirty_count_);
  for (std::size_t f = 0; f < dirty_.size(); ++f) {
    if (dirty_[f] != 0) out.push_back(f);
  }
  return out;
}

void DirtyFrameJournal::mark_all() {
  std::fill(dirty_.begin(), dirty_.end(), std::uint8_t{1});
  dirty_count_ = dirty_.size();
}

void DirtyFrameJournal::clear() {
  std::fill(dirty_.begin(), dirty_.end(), std::uint8_t{0});
  dirty_count_ = 0;
}

}  // namespace keyguard::scan
