#include "scan/simd_match.hpp"

#include "util/flags.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define KEYGUARD_SIMD_X86 1
#include <immintrin.h>
#else
#define KEYGUARD_SIMD_X86 0
#endif

namespace keyguard::scan {

namespace {

SimdKind detect_hardware() noexcept {
#if KEYGUARD_SIMD_X86 && defined(__GNUC__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw")) {
    return SimdKind::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdKind::kAvx2;
#endif
  return SimdKind::kNone;
}

/// KEYGUARD_SCAN_SIMD caps (never raises) the detected level: "none"
/// forces the scalar fallback everywhere, "avx2" pins AVX-512 hardware to
/// the 32-byte path so both kernels are testable on one machine. Unset or
/// unrecognized values keep the hardware's best level.
SimdKind apply_env_cap(SimdKind hw) {
  const auto env = util::env_string("KEYGUARD_SCAN_SIMD");
  if (env == "none") return SimdKind::kNone;
  if (env == "avx2" && hw == SimdKind::kAvx512) return SimdKind::kAvx2;
  return hw;
}

}  // namespace

const char* simd_kind_name(SimdKind k) noexcept {
  switch (k) {
    case SimdKind::kNone:
      return "none";
    case SimdKind::kAvx2:
      return "avx2";
    case SimdKind::kAvx512:
      return "avx512";
  }
  return "none";
}

SimdKind simd_available() noexcept {
  static const SimdKind cached = apply_env_cap(detect_hardware());
  return cached;
}

namespace simd_detail {

#if KEYGUARD_SIMD_X86 && defined(__GNUC__)

namespace {

__attribute__((target("avx2"))) std::size_t collect_avx2(
    const unsigned char* base, std::size_t pos, std::size_t limit,
    const ShuftiTables& t, std::vector<std::size_t>& out) {
  const __m256i lo0 = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo0)));
  const __m256i hi0 = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi0)));
  const __m256i lo1 = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo1)));
  const __m256i hi1 = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi1)));
  const __m256i nib = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  while (pos + 32 <= limit) {
    // v0 covers positions [pos, pos+32); v1 is the same span shifted one
    // byte right — the second byte of every position. limit < buf_size, so
    // the byte at pos+32 (v1's last lane) is in bounds.
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + pos));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + pos + 1));
    const __m256i c0 = _mm256_and_si256(
        _mm256_shuffle_epi8(lo0, _mm256_and_si256(v0, nib)),
        _mm256_shuffle_epi8(
            hi0, _mm256_and_si256(_mm256_srli_epi16(v0, 4), nib)));
    const __m256i c1 = _mm256_and_si256(
        _mm256_shuffle_epi8(lo1, _mm256_and_si256(v1, nib)),
        _mm256_shuffle_epi8(
            hi1, _mm256_and_si256(_mm256_srli_epi16(v1, 4), nib)));
    const __m256i both = _mm256_and_si256(c0, c1);
    std::uint32_t m = ~static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(both, zero)));
    while (m != 0) {
      out.push_back(pos + static_cast<std::size_t>(__builtin_ctz(m)));
      m &= m - 1;
    }
    pos += 32;
  }
  return pos;
}

__attribute__((target("avx512f,avx512bw"))) std::size_t collect_avx512(
    const unsigned char* base, std::size_t pos, std::size_t limit,
    const ShuftiTables& t, std::vector<std::size_t>& out) {
  const __m512i lo0 = _mm512_broadcast_i32x4(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo0)));
  const __m512i hi0 = _mm512_broadcast_i32x4(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi0)));
  const __m512i lo1 = _mm512_broadcast_i32x4(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo1)));
  const __m512i hi1 = _mm512_broadcast_i32x4(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi1)));
  const __m512i nib = _mm512_set1_epi8(0x0f);
  while (pos + 64 <= limit) {
    const __m512i v0 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(base + pos));
    const __m512i v1 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(base + pos + 1));
    const __m512i c0 = _mm512_and_si512(
        _mm512_shuffle_epi8(lo0, _mm512_and_si512(v0, nib)),
        _mm512_shuffle_epi8(
            hi0, _mm512_and_si512(_mm512_srli_epi16(v0, 4), nib)));
    const __m512i c1 = _mm512_and_si512(
        _mm512_shuffle_epi8(lo1, _mm512_and_si512(v1, nib)),
        _mm512_shuffle_epi8(
            hi1, _mm512_and_si512(_mm512_srli_epi16(v1, 4), nib)));
    // test_epi8_mask sets a lane's bit iff (c0 & c1) is non-zero there —
    // the candidate mask in one instruction.
    std::uint64_t m = _mm512_test_epi8_mask(c0, c1);
    while (m != 0) {
      out.push_back(pos + static_cast<std::size_t>(__builtin_ctzll(m)));
      m &= m - 1;
    }
    pos += 64;
  }
  return pos;
}

}  // namespace

#endif  // KEYGUARD_SIMD_X86

std::size_t collect_candidates(SimdKind kind, const unsigned char* base,
                               std::size_t pos, std::size_t limit,
                               const ShuftiTables& tables,
                               std::vector<std::size_t>& out) {
#if KEYGUARD_SIMD_X86 && defined(__GNUC__)
  if (kind == SimdKind::kAvx512) {
    return collect_avx512(base, pos, limit, tables, out);
  }
  if (kind == SimdKind::kAvx2) {
    return collect_avx2(base, pos, limit, tables, out);
  }
#else
  (void)base;
  (void)limit;
  (void)tables;
  (void)out;
  (void)kind;
#endif
  return pos;  // kNone (or non-x86 build): nothing vectorized
}

}  // namespace simd_detail
}  // namespace keyguard::scan
