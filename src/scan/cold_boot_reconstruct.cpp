#include "scan/cold_boot_reconstruct.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

namespace keyguard::scan {
namespace {

using Word = std::uint64_t;

// Fixed-width little-endian word vectors (arithmetic implicitly modulo
// 2^(64 * size)) — leaner than Bignum for the per-candidate hot loop.
using Fixed = std::vector<Word>;

void add_shifted(Fixed& acc, const Fixed& v, std::size_t shift_bits) {
  const std::size_t word_shift = shift_bits / 64;
  const unsigned bit_shift = shift_bits % 64;
  Word carry = 0;
  for (std::size_t i = 0; i + word_shift < acc.size(); ++i) {
    Word piece = i < v.size() ? v[i] << bit_shift : 0;
    if (bit_shift != 0 && i > 0 && i - 1 < v.size()) {
      piece |= v[i - 1] >> (64 - bit_shift);
    }
    const std::size_t idx = i + word_shift;
    const Word s1 = acc[idx] + piece;
    const Word c1 = s1 < acc[idx] ? 1 : 0;
    const Word s2 = s1 + carry;
    const Word c2 = s2 < s1 ? 1 : 0;
    acc[idx] = s2;
    carry = c1 | c2;
  }
}

void add_bit(Fixed& acc, std::size_t bit) {
  const std::size_t word = bit / 64;
  if (word >= acc.size()) return;
  Word carry = Word{1} << (bit % 64);
  for (std::size_t i = word; i < acc.size() && carry != 0; ++i) {
    const Word s = acc[i] + carry;
    carry = s < acc[i] ? 1 : 0;
    acc[i] = s;
  }
}

bool get_bit(const Fixed& v, std::size_t bit) {
  const std::size_t word = bit / 64;
  if (word >= v.size()) return false;
  return ((v[word] >> (bit % 64)) & 1) != 0;
}

// bit i of (n - prod) where the subtraction is carried out over the low
// i/64 + 1 words (enough, because n ≡ prod mod 2^i by the invariant).
bool constraint_bit(const Fixed& n, const Fixed& prod, std::size_t i) {
  const std::size_t words = i / 64 + 1;
  Word borrow = 0;
  Word diff_word = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const Word nw = w < n.size() ? n[w] : 0;
    const Word pw = w < prod.size() ? prod[w] : 0;
    const Word d1 = nw - pw;
    const Word b1 = nw < pw ? 1 : 0;
    diff_word = d1 - borrow;
    const Word b2 = d1 < borrow ? 1 : 0;
    borrow = b1 | b2;
  }
  return ((diff_word >> (i % 64)) & 1) != 0;
}

Fixed from_bignum(const bn::Bignum& v, std::size_t words) {
  Fixed out(words, 0);
  const auto limbs = v.limbs();
  for (std::size_t i = 0; i < limbs.size() && i < words; ++i) out[i] = limbs[i];
  return out;
}

bn::Bignum to_bignum(const Fixed& v) {
  std::vector<std::byte> bytes;
  bytes.reserve(v.size() * 8);
  for (const Word w : v) {
    for (int b = 0; b < 8; ++b) bytes.push_back(static_cast<std::byte>(w >> (8 * b)));
  }
  return bn::Bignum::from_bytes_le(bytes);
}

// Observed (reliable) 1-bits from a decayed LE byte image.
Fixed observed_bits(std::span<const std::byte> image, std::size_t words) {
  Fixed out(words, 0);
  for (std::size_t i = 0; i < image.size() && i / 8 < words; ++i) {
    out[i / 8] |= std::to_integer<Word>(image[i]) << (8 * (i % 8));
  }
  return out;
}

struct Candidate {
  Fixed p, q, prod;
  // Statistical-pruning bookkeeping: bits this candidate set to 1, and how
  // many of those landed on observed-0 positions ("mismatches" = bits that
  // must have decayed if the candidate is the true value).
  std::uint32_t ones_p = 1, mism_p = 0;  // bit 0 is always set
  std::uint32_t ones_q = 1, mism_q = 0;
};

// Estimated decay rate from an image: exact-length random primes have
// 1-density ~1/2, so density d after unidirectional decay implies
// delta = 1 - 2d.
double estimate_decay(std::span<const std::byte> image, std::size_t expected_bits) {
  std::size_t ones = 0;
  for (const std::byte b : image) {
    ones += static_cast<std::size_t>(std::popcount(std::to_integer<unsigned>(b)));
  }
  if (expected_bits == 0) return 1.0;
  const double density = static_cast<double>(ones) / static_cast<double>(expected_bits);
  return std::clamp(1.0 - 2.0 * density, 0.01, 1.0);
}

// Mismatch budget after setting `ones` 1-bits under decay rate `delta`.
std::uint32_t mismatch_budget(std::uint32_t ones, double delta, double slack) {
  const double n = static_cast<double>(ones);
  const double mean = delta * n;
  const double sd = std::sqrt(std::max(delta * (1.0 - delta) * n, 1.0));
  return static_cast<std::uint32_t>(mean + slack * sd + 2.0);
}

}  // namespace

ColdBootReconstructor::ColdBootReconstructor(crypto::RsaPublicKey public_key,
                                             ColdBootConfig cfg)
    : pub_(std::move(public_key)), cfg_(cfg) {}

std::optional<crypto::RsaPrivateKey> ColdBootReconstructor::reconstruct(
    std::span<const std::byte> p_image, std::span<const std::byte> q_image) const {
  const std::size_t prime_bits = pub_.modulus_bits() / 2;
  const std::size_t prime_words = prime_bits / 64;
  const std::size_t prod_words = prime_words * 2;

  const Fixed n = from_bignum(pub_.n, prod_words);
  const Fixed p_known = observed_bits(p_image, prime_words);
  const Fixed q_known = observed_bits(q_image, prime_words);
  const double delta_p = estimate_decay(p_image, prime_bits);
  const double delta_q = estimate_decay(q_image, prime_bits);

  // Primes are odd; bit 0 is fixed.
  std::vector<Candidate> frontier;
  {
    Candidate root;
    root.p.assign(prime_words, 0);
    root.q.assign(prime_words, 0);
    root.prod.assign(prod_words, 0);
    root.p[0] = 1;
    root.q[0] = 1;
    root.prod[0] = 1;
    frontier.push_back(std::move(root));
  }

  std::vector<Candidate> next;
  for (std::size_t i = 1; i < prime_bits; ++i) {
    next.clear();
    const bool p_must = get_bit(p_known, i);
    const bool q_must = get_bit(q_known, i);
    for (const auto& cand : frontier) {
      const bool c = constraint_bit(n, cand.prod, i);
      // The two bit pairs satisfying p_i XOR q_i == c.
      const std::pair<bool, bool> options[2] = {{false, c}, {true, !c}};
      for (const auto [pi, qi] : options) {
        if (p_must && !pi) continue;  // a surviving 1-bit is trusted
        if (q_must && !qi) continue;
        Candidate child = cand;
        if (pi) {
          add_bit(child.p, i);
          add_shifted(child.prod, cand.q, i);
          ++child.ones_p;
          if (!p_must) ++child.mism_p;  // a 1 the image does not show
        }
        if (qi) {
          add_bit(child.q, i);
          add_shifted(child.prod, cand.p, i);
          ++child.ones_q;
          if (!q_must) ++child.mism_q;
        }
        if (pi && qi) add_bit(child.prod, 2 * i);
        // Soft statistical pruning: far too many "decayed" bits for the
        // estimated rate means this candidate cannot be the true value.
        if (child.mism_p > mismatch_budget(child.ones_p, delta_p, cfg_.slack_sigmas) ||
            child.mism_q > mismatch_budget(child.ones_q, delta_q, cfg_.slack_sigmas)) {
          continue;
        }
        next.push_back(std::move(child));
      }
    }
    // Beam trim: the true path accumulates mismatches at the decay rate,
    // wrong branches at ~1/2 per set bit, so ranking by the mismatch
    // z-score (normalised for how many bits each candidate set) keeps the
    // true candidate while bounding work (Heninger-Shacham's
    // width-limited search).
    if (next.size() > cfg_.max_candidates) {
      auto zscore = [](std::uint32_t mism, std::uint32_t ones, double delta) {
        const double n = static_cast<double>(ones);
        return (static_cast<double>(mism) - delta * n) /
               std::sqrt(std::max(delta * (1.0 - delta) * n, 1.0));
      };
      auto score = [&](const Candidate& c) {
        return zscore(c.mism_p, c.ones_p, delta_p) + zscore(c.mism_q, c.ones_q, delta_q);
      };
      std::nth_element(next.begin(),
                       next.begin() + static_cast<std::ptrdiff_t>(cfg_.max_candidates),
                       next.end(), [&](const Candidate& a, const Candidate& b) {
                         return score(a) < score(b);
                       });
      next.resize(cfg_.max_candidates);
    }
    frontier.swap(next);
    if (frontier.empty()) {
      last_frontier_ = 0;
      return std::nullopt;  // inconsistent images (not really P and Q)
    }
  }
  last_frontier_ = frontier.size();

  for (const auto& cand : frontier) {
    const bn::Bignum p = to_bignum(cand.p);
    const bn::Bignum q = to_bignum(cand.q);
    if (p.is_one() || q.is_one()) continue;
    if (p * q == pub_.n) {
      // Delegate CRT part derivation to the hunter-style reconstruction.
      const bn::Bignum one(1);
      crypto::RsaPrivateKey key;
      key.n = pub_.n;
      key.e = pub_.e;
      key.p = p;
      key.q = q;
      if (key.p < key.q) std::swap(key.p, key.q);
      const bn::Bignum p1 = key.p - one;
      const bn::Bignum q1 = key.q - one;
      const bn::Bignum g = bn::Bignum::gcd(p1, q1);
      const auto d = bn::Bignum::mod_inverse(key.e, (p1 / g) * q1);
      if (!d) continue;
      key.d = *d;
      key.dmp1 = key.d % p1;
      key.dmq1 = key.d % q1;
      const auto iqmp = bn::Bignum::mod_inverse(key.q, key.p);
      if (!iqmp) continue;
      key.iqmp = *iqmp;
      return key;
    }
  }
  return std::nullopt;
}

}  // namespace keyguard::scan
