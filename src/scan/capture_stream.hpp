// Streaming capture ingestion.
//
// PR 2's scan_capture takes the whole disclosure as one in-memory span —
// fine for the paper's 256 MB machine, ruinous for the multi-GB captures
// a modern cold-boot or hibernation-file grab produces (loading the file
// first means peak RSS == file size). CaptureStream walks the file in
// bounded windows instead: each window's payload is scanned with a
// seam-overlap view of `max_needle_len - 1` extra bytes into the NEXT
// window — the exact rule a shard seam follows — and a hit is attributed
// to the window containing its FIRST byte. Concatenating per-window
// results therefore reproduces the one-shot scan bit-for-bit (the prefix
// path's extend-while-agreeing loop also exactly fits: a match starting
// in the payload ends at most max_needle_len - 1 bytes past it, the last
// byte of the overlap view). tests/scan_stream_test.cpp enforces the
// equivalence with needles ending at every window boundary.
//
// Resident memory stays O(window): the file is mmap'd (PROT_READ,
// MAP_PRIVATE, MADV_SEQUENTIAL) and fully-consumed pages are released
// with MADV_DONTNEED as the walk advances; where mmap is unavailable (or
// KEYGUARD_CAPTURE_MMAP=0 forces it) a pread loop into one reused
// window+overlap buffer does the same job. bench_scan_throughput's
// streaming phase gates the RSS bound against a capture several times the
// simulated RAM size.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace keyguard::scan {

/// One window of the capture: `bytes` views the payload plus the seam
/// overlap into the next window; only matches whose first byte lies in
/// the first `payload` bytes belong to this window. `offset` is the file
/// offset of bytes[0] — add it to rebase window-local match offsets.
struct CaptureWindow {
  std::span<const std::byte> bytes;
  std::size_t payload = 0;
  std::size_t offset = 0;
};

class CaptureStream {
 public:
  /// 64 MiB — large enough that per-window scan startup is noise, small
  /// enough that peak RSS stays far below multi-GB capture sizes.
  static constexpr std::size_t kDefaultWindowBytes = 64u * 1024 * 1024;

  /// Opens `path` read-only and picks the access mode. Never throws:
  /// check ok() before use. window_bytes == 0 selects the default.
  explicit CaptureStream(const std::string& path,
                         std::size_t window_bytes = kDefaultWindowBytes);
  ~CaptureStream();
  CaptureStream(const CaptureStream&) = delete;
  CaptureStream& operator=(const CaptureStream&) = delete;

  bool ok() const noexcept { return ok_; }
  /// Human-readable reason when !ok() — open/stat/read failure + errno.
  const std::string& error() const noexcept { return error_; }

  std::size_t size() const noexcept { return size_; }
  std::size_t window_bytes() const noexcept { return window_; }
  /// True when the file is mmap'd; false on the pread fallback path.
  bool mapped() const noexcept { return map_ != nullptr; }

  /// Rewinds to the start of the file and fixes the seam overlap for the
  /// walk that follows (`reach` == max_needle_len - 1). Must be called
  /// before next(); calling it again restarts the walk.
  void rewind(std::size_t reach);

  /// Returns the next window, or nullopt at end-of-file (or on a read
  /// error — distinguish via ok()). The returned view is valid only
  /// until the NEXT next()/rewind() call: advancing releases the
  /// previous window's pages (mmap) or recycles the buffer (pread).
  std::optional<CaptureWindow> next();

 private:
  void drop_consumed(std::size_t keep_from);

  int fd_ = -1;
  std::size_t size_ = 0;
  std::size_t window_ = kDefaultWindowBytes;
  bool ok_ = false;
  std::string error_;

  const std::byte* map_ = nullptr;  ///< non-null in mmap mode
  std::size_t dropped_ = 0;         ///< mmap bytes already MADV_DONTNEED'd

  std::vector<std::byte> buffer_;  ///< pread mode: payload + overlap

  std::size_t reach_ = 0;
  std::size_t offset_ = 0;         ///< payload start of the current window
  std::size_t prev_view_ = 0;      ///< last view length
  std::size_t prev_payload_ = 0;   ///< last payload (advance amount)
  std::size_t carry_ = 0;          ///< pread mode: overlap bytes kept in buffer_
  bool started_ = false;
};

}  // namespace keyguard::scan
