// Key recovery with PUBLIC knowledge only.
//
// The paper's scanner knows the private key (it is a measurement tool). A
// real attacker does not — but does know the server's PUBLIC key (it is
// handed out in every handshake), and that is enough: any 512-bit window
// of a memory dump that divides N exactly IS the prime P (or Q), and from
// one prime the whole CRT private key reconstructs in milliseconds. This
// turns every "copies found" number in the evaluation into an actual key
// compromise, closing the loop on the paper's threat model ("disclosure of
// any of them immediately leads to the compromise of the private key").
//
// The hunt slides a window of |N|/2 bytes over the dump at BN_ULONG (8
// byte) alignment — the alignment malloc gives OpenSSL's limb arrays — and
// trial-divides N by each candidate that passes cheap filters (odd, exact
// bit length).
#pragma once

#include <vector>

#include "crypto/rsa.hpp"

namespace keyguard::scan {

class KeyHunter {
 public:
  explicit KeyHunter(crypto::RsaPublicKey public_key);

  struct Hit {
    std::size_t offset = 0;  ///< where in the dump the factor lay
    bn::Bignum factor;       ///< P or Q
  };

  /// Scans `dump` for prime factors of N. `stride` is the candidate
  /// alignment in bytes (8 matches BN_ULONG arrays; 1 finds unaligned
  /// copies at 8x the cost).
  std::vector<Hit> hunt(std::span<const std::byte> dump, std::size_t stride = 8) const;

  /// True when the dump compromises the key.
  bool compromises(std::span<const std::byte> dump, std::size_t stride = 8) const {
    return !hunt(dump, stride).empty();
  }

  /// Rebuilds the full CRT private key from one recovered factor.
  /// Returns nullopt if `factor` does not actually divide N.
  std::optional<crypto::RsaPrivateKey> reconstruct(const bn::Bignum& factor) const;

  const crypto::RsaPublicKey& public_key() const noexcept { return pub_; }

 private:
  crypto::RsaPublicKey pub_;
  std::size_t factor_bytes_;  // |N|/2 in bytes
};

}  // namespace keyguard::scan
