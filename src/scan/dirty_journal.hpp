// Dirty-frame journal for incremental sweeps.
//
// A full sweep costs O(memory) no matter how little changed since the
// last one. The journal turns the sim's existing taint hook stream into a
// per-frame dirty bitmap: every code path that mutates physical RAM bytes
// (mem_write, COW breaks, clear_page, page-cache fills, swap-ins) already
// reports through sim::TaintTracker, so attaching the journal to the
// kernel's TaintFanout records exactly the frames whose bytes could have
// changed. KeyScanner::scan_kernel_incremental then rescans only those
// frames (plus needle-length seam windows) and splices the result into
// the cached previous sweep — the same revalidate-window argument
// obs::ExposureMonitor::touch() uses, proved in DESIGN.md §8.
//
// Swap-slot events (on_swap_store / on_swap_clear) do NOT mark frames:
// copying a page out to swap or scrubbing a slot leaves RAM bytes
// untouched, and the scanner reads RAM. A swap-IN does mark the
// destination frame. The events are still counted so tests can assert
// the journal saw them.
//
// Thread-safety: none. The sim kernel fires hooks single-threaded and
// drain() must not race a sweep — the same discipline every other
// TaintTracker in the repo follows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/physmem.hpp"
#include "sim/taint.hpp"

namespace keyguard::scan {

class DirtyFrameJournal final : public sim::TaintTracker {
 public:
  /// Journals a physical memory of `phys_bytes` split into `frame_bytes`
  /// frames (the sim's page size by default). Starts with every frame
  /// CLEAN: attach the journal before the sweep that primes the cache, or
  /// call mark_all() to force the next sweep to be full.
  explicit DirtyFrameJournal(std::size_t phys_bytes,
                             std::size_t frame_bytes = sim::kPageSize);

  // --- sim::TaintTracker hooks (fired AFTER the bytes move) ---
  void on_phys_store(std::size_t off, std::size_t len, sim::TaintTag tag) override;
  void on_phys_copy(std::size_t dst, std::size_t src, std::size_t len) override;
  void on_phys_clear(std::size_t off, std::size_t len) override;
  void on_swap_store(std::uint32_t slot, std::size_t phys_src) override;
  void on_swap_load(std::size_t phys_dst, std::uint32_t slot) override;
  void on_swap_clear(std::uint32_t slot) override;

  std::size_t frame_bytes() const noexcept { return frame_bytes_; }
  std::size_t frame_count() const noexcept { return dirty_.size(); }
  std::size_t dirty_count() const noexcept { return dirty_count_; }

  /// Byte-mutating events observed since construction (diagnostics).
  std::size_t store_events() const noexcept { return store_events_; }
  /// Swap-slot-only events observed (counted, never marked — RAM unchanged).
  std::size_t swap_slot_events() const noexcept { return swap_slot_events_; }

  /// Sorted indices of frames dirtied since the last drain, then resets
  /// the journal to all-clean. Call at the start of an incremental sweep.
  std::vector<std::size_t> drain();

  /// Sorted dirty frame indices without resetting (tests, diagnostics).
  std::vector<std::size_t> snapshot() const;

  /// Marks every frame dirty — forces the next incremental sweep to cover
  /// everything (used when the journal attached after memory was live).
  void mark_all();

  /// Resets to all-clean without reporting.
  void clear();

 private:
  void mark_range(std::size_t off, std::size_t len);

  std::size_t frame_bytes_;
  std::vector<std::uint8_t> dirty_;  ///< one flag per frame
  std::size_t dirty_count_ = 0;
  std::size_t store_events_ = 0;
  std::size_t swap_slot_events_ = 0;
};

}  // namespace keyguard::scan
