#include "scan/scan_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/bytes.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace keyguard::scan {

namespace {

using Clock = std::chrono::steady_clock;

double millis_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Scans one shard's window and appends hits whose first byte lies inside
/// the payload [begin, end). Output is (offset, pattern_index)-sorted
/// because needles are iterated in order and find_all returns ascending
/// offsets; the final merge only has to concatenate shards.
void scan_shard(std::span<const std::byte> buffer, std::size_t begin,
                std::size_t end, std::size_t window_end,
                std::span<const std::span<const std::byte>> needles,
                std::size_t min_prefix_bytes, std::vector<RawMatch>& out) {
  const auto window = buffer.subspan(begin, window_end - begin);
  for (std::size_t pi = 0; pi < needles.size(); ++pi) {
    const auto needle = needles[pi];
    if (needle.empty()) continue;
    if (min_prefix_bytes == 0) {
      for (const std::size_t local : util::find_all(window, needle)) {
        const std::size_t offset = begin + local;
        if (offset >= end) break;  // first byte in the next shard's payload
        out.push_back({offset, pi, needle.size(), true});
      }
    } else {
      if (needle.size() < min_prefix_bytes) continue;
      const auto prefix = needle.first(min_prefix_bytes);
      for (const std::size_t local : util::find_all(window, prefix)) {
        const std::size_t offset = begin + local;
        if (offset >= end) break;
        // Extend while the needle keeps agreeing (the LKM compared the
        // first words, then as many following words as matched). The
        // overlap window is sized so extension is never cut short at a
        // seam — only the true end of the buffer can truncate it.
        std::size_t len = min_prefix_bytes;
        while (len < needle.size() && local + len < window.size() &&
               window[local + len] == needle[len]) {
          ++len;
        }
        out.push_back({offset, pi, len, len == needle.size()});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const RawMatch& a, const RawMatch& b) {
    return a.offset != b.offset ? a.offset < b.offset
                                : a.pattern_index < b.pattern_index;
  });
}

}  // namespace

double ScanStats::mb_per_sec() const {
  if (wall_millis <= 0.0) return 0.0;
  return (static_cast<double>(bytes_scanned) / (1024.0 * 1024.0)) /
         (wall_millis / 1000.0);
}

std::string ScanStats::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%.1f MB in %zu shard%s, %zu patterns, %.2f ms, %.1f MB/s",
                static_cast<double>(bytes_scanned) / (1024.0 * 1024.0),
                shard_count, shard_count == 1 ? "" : "s", pattern_count,
                wall_millis, mb_per_sec());
  return buf;
}

void ScanStats::write_json(util::JsonWriter& w) const {
  w.begin_object();
  w.field("bytes_scanned", static_cast<std::uint64_t>(bytes_scanned));
  w.field("match_count", static_cast<std::uint64_t>(match_count));
  w.field("shards", static_cast<std::uint64_t>(shard_count));
  w.field("patterns", static_cast<std::uint64_t>(pattern_count));
  w.field("overlap_bytes", static_cast<std::uint64_t>(overlap_bytes));
  w.field("wall_ms", wall_millis);
  w.field("mb_per_sec", mb_per_sec());
  w.key("shard_list");
  w.begin_array();
  for (const auto& s : shards) {
    w.begin_object();
    w.field("index", static_cast<std::uint64_t>(s.index));
    w.field("offset", static_cast<std::uint64_t>(s.offset));
    w.field("bytes", static_cast<std::uint64_t>(s.bytes));
    w.field("matches", static_cast<std::uint64_t>(s.matches));
    w.field("wall_ms", s.millis);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void ScanStats::publish(obs::MetricsRegistry& reg) const {
  reg.counter("scan.scans").add(1);
  reg.counter("scan.bytes").add(bytes_scanned);
  reg.counter("scan.matches").add(match_count);
  reg.gauge("scan.mb_per_sec").set(mb_per_sec());
  reg.gauge("scan.shards").set(static_cast<double>(shard_count));
  reg.histogram("scan.wall_ms").record(wall_millis);
}

ShardPlan plan_shards(std::size_t total_bytes, std::size_t max_needle_len,
                      std::size_t requested_shards, std::size_t frame_bytes) {
  ShardPlan plan;
  plan.overlap = max_needle_len > 0 ? max_needle_len - 1 : 0;
  if (total_bytes == 0 || requested_shards <= 1) {
    plan.shard_count = 1;
    plan.shard_bytes = total_bytes;
    return plan;
  }
  // Whole-frame shards: ceil-divide into `requested_shards`, then round the
  // shard size up to frame granularity so frames never straddle a seam.
  const std::size_t raw = (total_bytes + requested_shards - 1) / requested_shards;
  plan.shard_bytes = ((raw + frame_bytes - 1) / frame_bytes) * frame_bytes;
  if (plan.shard_bytes == 0) plan.shard_bytes = frame_bytes;
  // Rounding up can leave trailing shards empty; clamp the count so every
  // shard owns at least one payload byte.
  plan.shard_count = (total_bytes + plan.shard_bytes - 1) / plan.shard_bytes;
  return plan;
}

std::vector<RawMatch> sharded_scan(std::span<const std::byte> buffer,
                                   std::span<const std::span<const std::byte>> needles,
                                   std::size_t requested_shards,
                                   std::size_t min_prefix_bytes,
                                   ScanStats* stats) {
  // Observability gate: when both sinks are off this whole scan pays two
  // relaxed atomic loads — the ≤5% budget bench_exposure_observatory
  // enforces against bench_scan_throughput rides on this being cheap.
  auto& reg = obs::MetricsRegistry::global();
  auto& tracer = obs::Tracer::global();
  const bool metrics_on = reg.enabled();
  ScanStats local_stats;
  if (stats == nullptr && metrics_on) {
    stats = &local_stats;
  }

  const auto t0 = Clock::now();
  std::size_t max_len = 0;
  std::size_t active_needles = 0;
  for (const auto n : needles) {
    if (n.empty() || (min_prefix_bytes > 0 && n.size() < min_prefix_bytes)) continue;
    ++active_needles;
    max_len = std::max(max_len, n.size());
  }

  const ShardPlan plan = plan_shards(buffer.size(), max_len, requested_shards);
  std::vector<std::vector<RawMatch>> per_shard(plan.shard_count);
  std::vector<double> shard_millis(plan.shard_count, 0.0);

  util::ThreadPool::shared().parallel_for(
      plan.shard_count, [&](std::size_t i) {
        obs::Tracer::Span span(tracer, "scan.shard");  // inert when disabled
        const auto ts = Clock::now();
        const std::size_t begin = plan.shard_begin(i);
        const std::size_t end =
            std::min(buffer.size(), begin + (plan.shard_count == 1
                                                 ? buffer.size()
                                                 : plan.shard_bytes));
        const std::size_t window_end = std::min(buffer.size(), end + plan.overlap);
        scan_shard(buffer, begin, end, window_end, needles, min_prefix_bytes,
                   per_shard[i]);
        shard_millis[i] = millis_since(ts);
        if (span.live()) {
          span.add(obs::TraceAttr::n("shard", static_cast<double>(i)));
          span.add(obs::TraceAttr::n("bytes", static_cast<double>(end - begin)));
          span.add(obs::TraceAttr::n("matches",
                                     static_cast<double>(per_shard[i].size())));
        }
      });

  // Deterministic merge: shards are disjoint ascending offset ranges and
  // each shard's list is already (offset, pattern_index)-sorted, so plain
  // concatenation preserves the serial walk's order.
  std::vector<RawMatch> merged;
  std::size_t total = 0;
  for (const auto& s : per_shard) total += s.size();
  merged.reserve(total);
  for (auto& s : per_shard) {
    merged.insert(merged.end(), s.begin(), s.end());
  }

  if (stats != nullptr) {
    stats->bytes_scanned = buffer.size();
    stats->match_count = merged.size();
    stats->shard_count = plan.shard_count;
    stats->overlap_bytes = plan.overlap;
    stats->pattern_count = active_needles;
    stats->shards.clear();
    stats->shards.reserve(plan.shard_count);
    for (std::size_t i = 0; i < plan.shard_count; ++i) {
      const std::size_t begin = plan.shard_begin(i);
      const std::size_t end =
          std::min(buffer.size(),
                   begin + (plan.shard_count == 1 ? buffer.size() : plan.shard_bytes));
      stats->shards.push_back(
          {i, begin, end - begin, per_shard[i].size(), shard_millis[i]});
    }
    stats->wall_millis = millis_since(t0);
    if (metrics_on) {
      stats->publish(reg);
    }
  }
  return merged;
}

}  // namespace keyguard::scan
