#include "scan/scan_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scan/multi_matcher.hpp"
#include "util/bytes.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace keyguard::scan {

namespace {

using Clock = std::chrono::steady_clock;

double millis_since(Clock::time_point t0) {
  // Clamped: steady_clock is monotonic, but a zero-width interval must
  // never turn into a negative duration through double rounding.
  return std::max(
      0.0, std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
}

/// Legacy reference walk (the LKM's loop): scans one window per needle and
/// appends hits whose first byte lies inside the payload [begin, end).
/// The appended region is (offset, pattern_index)-sorted before returning,
/// so concatenating consecutive windows preserves the serial walk's order.
void legacy_scan(std::span<const std::byte> buffer, std::size_t begin,
                 std::size_t end, std::size_t window_end,
                 std::span<const std::span<const std::byte>> needles,
                 std::size_t min_prefix_bytes, std::vector<RawMatch>& out) {
  const std::size_t base = out.size();
  const auto window = buffer.subspan(begin, window_end - begin);
  std::vector<std::size_t> hits;  // reused across needles, one allocation
  for (std::size_t pi = 0; pi < needles.size(); ++pi) {
    const auto needle = needles[pi];
    if (needle.empty()) continue;
    if (min_prefix_bytes == 0) {
      util::find_all_into(window, needle, hits);
      for (const std::size_t local : hits) {
        const std::size_t offset = begin + local;
        if (offset >= end) break;  // first byte in the next window's payload
        out.push_back({offset, pi, needle.size(), true});
      }
    } else {
      if (needle.size() < min_prefix_bytes) continue;
      const auto prefix = needle.first(min_prefix_bytes);
      util::find_all_into(window, prefix, hits);
      for (const std::size_t local : hits) {
        const std::size_t offset = begin + local;
        if (offset >= end) break;
        // Extend while the needle keeps agreeing (the LKM compared the
        // first words, then as many following words as matched). The
        // overlap window is sized so extension is never cut short at a
        // seam — only the true end of the buffer can truncate it.
        std::size_t len = min_prefix_bytes;
        while (len < needle.size() && local + len < window.size() &&
               window[local + len] == needle[len]) {
          ++len;
        }
        out.push_back({offset, pi, len, len == needle.size()});
      }
    }
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end(),
            [](const RawMatch& a, const RawMatch& b) {
              return a.offset != b.offset ? a.offset < b.offset
                                          : a.pattern_index < b.pattern_index;
            });
}

/// Dispatches one window to the selected matcher. `mm` non-null means the
/// single-pass matcher (vector first stage when `use_simd`); null means
/// the legacy reference walk.
void scan_window(std::span<const std::byte> buffer, std::size_t begin,
                 std::size_t end, std::size_t window_end,
                 std::span<const std::span<const std::byte>> needles,
                 std::size_t min_prefix_bytes, const MultiMatcher* mm,
                 bool use_simd, std::vector<RawMatch>& out) {
  if (begin >= end) return;
  if (mm != nullptr) {
    if (use_simd) {
      mm->scan_simd(buffer, begin, end, window_end, out);
    } else {
      mm->scan(buffer, begin, end, window_end, out);
    }
  } else {
    legacy_scan(buffer, begin, end, window_end, needles, min_prefix_bytes, out);
  }
}

}  // namespace

const char* matcher_name(MatcherKind k) noexcept {
  switch (k) {
    case MatcherKind::kAuto:
      return "auto";
    case MatcherKind::kLegacy:
      return "legacy";
    case MatcherKind::kMulti:
      return "multi";
    case MatcherKind::kSimd:
      return "simd";
  }
  return "legacy";
}

MatcherKind resolve_matcher(MatcherKind requested,
                            std::size_t active_needles) noexcept {
  if (requested != MatcherKind::kAuto) return requested;
  if (active_needles < kMultiMatcherMinNeedles) return MatcherKind::kLegacy;
  return simd_available() != SimdKind::kNone ? MatcherKind::kSimd
                                             : MatcherKind::kMulti;
}

double ShardStats::mb_per_sec() const {
  if (millis <= 0.0) return 0.0;  // sub-tick shard: report 0, not inf
  return (static_cast<double>(bytes) / (1024.0 * 1024.0)) / (millis / 1000.0);
}

double ScanStats::mb_per_sec() const {
  if (wall_millis <= 0.0) return 0.0;
  return (static_cast<double>(bytes_scanned) / (1024.0 * 1024.0)) /
         (wall_millis / 1000.0);
}

std::string ScanStats::summary() const {
  char buf[224];
  char matcher_buf[32];
  if (matcher == MatcherKind::kSimd) {
    std::snprintf(matcher_buf, sizeof(matcher_buf), "simd/%s",
                  simd_kind_name(simd_kind));
  } else {
    std::snprintf(matcher_buf, sizeof(matcher_buf), "%s",
                  matcher_name(matcher));
  }
  std::snprintf(buf, sizeof(buf),
                "%.1f MB in %zu shard%s, %zu patterns, %.2f ms, %.1f MB/s "
                "[%s%s%s]",
                static_cast<double>(bytes_scanned) / (1024.0 * 1024.0),
                shard_count, shard_count == 1 ? "" : "s", pattern_count,
                wall_millis, mb_per_sec(), matcher_buf,
                incremental ? ", incremental" : "",
                bytes_streamed > 0 ? ", streamed" : "");
  return buf;
}

void ScanStats::write_json(util::JsonWriter& w) const {
  w.begin_object();
  w.field("bytes_scanned", static_cast<std::uint64_t>(bytes_scanned));
  w.field("match_count", static_cast<std::uint64_t>(match_count));
  w.field("shards", static_cast<std::uint64_t>(shard_count));
  w.field("patterns", static_cast<std::uint64_t>(pattern_count));
  w.field("overlap_bytes", static_cast<std::uint64_t>(overlap_bytes));
  w.field("wall_ms", wall_millis);
  w.field("mb_per_sec", mb_per_sec());
  w.field("matcher", matcher_name(matcher));
  w.field("simd_kind", simd_kind_name(simd_kind));
  w.field("bytes_streamed", static_cast<std::uint64_t>(bytes_streamed));
  w.field("incremental", incremental);
  w.field("dirty_frames", static_cast<std::uint64_t>(dirty_frames));
  w.key("shard_list");
  w.begin_array();
  for (const auto& s : shards) {
    w.begin_object();
    w.field("index", static_cast<std::uint64_t>(s.index));
    w.field("offset", static_cast<std::uint64_t>(s.offset));
    w.field("bytes", static_cast<std::uint64_t>(s.bytes));
    w.field("matches", static_cast<std::uint64_t>(s.matches));
    w.field("wall_ms", s.millis);
    w.field("mb_per_sec", s.mb_per_sec());
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void ScanStats::publish(obs::MetricsRegistry& reg) const {
  reg.counter("scan.scans").add(1);
  reg.counter("scan.bytes").add(bytes_scanned);
  reg.counter("scan.matches").add(match_count);
  reg.gauge("scan.mb_per_sec").set(mb_per_sec());
  reg.gauge("scan.shards").set(static_cast<double>(shard_count));
  reg.histogram("scan.wall_ms").record(wall_millis);
  reg.gauge("scan.simd_kind").set(static_cast<double>(simd_kind));
  if (bytes_streamed > 0) {
    reg.counter("scan.bytes_streamed").add(bytes_streamed);
  }
  if (incremental) {
    reg.counter("scan.incremental_scans").add(1);
    reg.gauge("scan.dirty_frames").set(static_cast<double>(dirty_frames));
  }
}

ShardPlan plan_shards(std::size_t total_bytes, std::size_t max_needle_len,
                      std::size_t requested_shards, std::size_t frame_bytes) {
  ShardPlan plan;
  plan.overlap = max_needle_len > 0 ? max_needle_len - 1 : 0;
  if (total_bytes == 0 || requested_shards <= 1) {
    plan.shard_count = 1;
    plan.shard_bytes = total_bytes;
    return plan;
  }
  // Whole-frame shards: ceil-divide into `requested_shards`, then round the
  // shard size up to frame granularity so frames never straddle a seam.
  const std::size_t raw = (total_bytes + requested_shards - 1) / requested_shards;
  plan.shard_bytes = ((raw + frame_bytes - 1) / frame_bytes) * frame_bytes;
  if (plan.shard_bytes == 0) plan.shard_bytes = frame_bytes;
  // Rounding up can leave trailing shards empty; clamp the count so every
  // shard owns at least one payload byte.
  plan.shard_count = (total_bytes + plan.shard_bytes - 1) / plan.shard_bytes;
  return plan;
}

void scan_range(std::span<const std::byte> buffer, std::size_t begin,
                std::size_t end, std::size_t window_end,
                std::span<const std::span<const std::byte>> needles,
                std::size_t min_prefix_bytes, MatcherKind matcher,
                std::vector<RawMatch>& out) {
  std::size_t active = 0;
  for (const auto n : needles) {
    if (n.empty() || (min_prefix_bytes > 0 && n.size() < min_prefix_bytes)) continue;
    ++active;
  }
  const MatcherKind resolved = resolve_matcher(matcher, active);
  if (resolved == MatcherKind::kMulti || resolved == MatcherKind::kSimd) {
    const MultiMatcher mm(needles, min_prefix_bytes);
    scan_window(buffer, begin, end, window_end, needles, min_prefix_bytes, &mm,
                resolved == MatcherKind::kSimd, out);
  } else {
    scan_window(buffer, begin, end, window_end, needles, min_prefix_bytes,
                nullptr, false, out);
  }
}

std::vector<RawMatch> sharded_scan(std::span<const std::byte> buffer,
                                   std::span<const std::span<const std::byte>> needles,
                                   std::size_t requested_shards,
                                   std::size_t min_prefix_bytes,
                                   ScanStats* stats, MatcherKind matcher) {
  return sharded_scan_window(buffer, buffer.size(), needles, requested_shards,
                             min_prefix_bytes, stats, matcher);
}

std::vector<RawMatch> sharded_scan_window(std::span<const std::byte> buffer,
                                          std::size_t payload_bytes,
                                          std::span<const std::span<const std::byte>> needles,
                                          std::size_t requested_shards,
                                          std::size_t min_prefix_bytes,
                                          ScanStats* stats, MatcherKind matcher) {
  const std::size_t payload = std::min(payload_bytes, buffer.size());
  // Observability gate: when both sinks are off this whole scan pays two
  // relaxed atomic loads — the ≤5% budget bench_exposure_observatory
  // enforces against bench_scan_throughput rides on this being cheap.
  auto& reg = obs::MetricsRegistry::global();
  auto& tracer = obs::Tracer::global();
  const bool metrics_on = reg.enabled();
  ScanStats local_stats;
  if (stats == nullptr && metrics_on) {
    stats = &local_stats;
  }

  const auto t0 = Clock::now();
  std::size_t max_len = 0;
  std::size_t active_needles = 0;
  for (const auto n : needles) {
    if (n.empty() || (min_prefix_bytes > 0 && n.size() < min_prefix_bytes)) continue;
    ++active_needles;
    max_len = std::max(max_len, n.size());
  }

  const MatcherKind resolved = resolve_matcher(matcher, active_needles);
  const bool use_simd = resolved == MatcherKind::kSimd;
  // One dispatch table shared by every chunk: MultiMatcher::scan is const
  // over immutable state, so concurrent chunks read it without locking.
  std::optional<MultiMatcher> multi;
  if (resolved == MatcherKind::kMulti || use_simd) {
    multi.emplace(needles, min_prefix_bytes);
  }
  const MultiMatcher* mm = multi ? &*multi : nullptr;

  const ShardPlan plan = plan_shards(payload, max_len, requested_shards);
  std::vector<std::vector<RawMatch>> per_shard(plan.shard_count);
  std::vector<double> shard_millis(plan.shard_count, 0.0);

  if (plan.shard_count == 1) {
    // Serial oracle: one thread, one window, no chunking — the reference
    // both the equivalence tests and the bench speedup columns compare to.
    // The window extends past the payload into the stream-overlap view
    // (when the caller supplied one) so boundary-straddling matches
    // complete, clamped at the true end of the buffer.
    obs::Tracer::Span span(tracer, "scan.shard");  // inert when disabled
    const auto ts = Clock::now();
    scan_window(buffer, 0, payload,
                std::min(buffer.size(), payload + plan.overlap), needles,
                min_prefix_bytes, mm, use_simd, per_shard[0]);
    shard_millis[0] = millis_since(ts);
    if (span.live()) {
      span.add(obs::TraceAttr::n("shard", 0.0));
      span.add(obs::TraceAttr::n("bytes", static_cast<double>(payload)));
      span.add(obs::TraceAttr::n("matches",
                                 static_cast<double>(per_shard[0].size())));
    }
  } else {
    // Work-stealing chunks: split every shard's payload into ~1 MiB runs of
    // whole frames and let pool workers claim them from a shared counter,
    // so one match-dense shard is spread across idle threads instead of
    // bounding wall time. Chunks inherit the shard seam rule — each scans
    // `overlap` bytes past its end and keeps only first-byte-inside hits —
    // so the reduction below is byte-identical to unchunked shards.
    constexpr std::size_t kChunkBytes = 1u << 20;
    struct Chunk {
      std::size_t shard;
      std::size_t begin;
      std::size_t end;
    };
    std::vector<Chunk> chunks;
    for (std::size_t i = 0; i < plan.shard_count; ++i) {
      const std::size_t begin = plan.shard_begin(i);
      const std::size_t end = std::min(payload, begin + plan.shard_bytes);
      for (std::size_t cb = begin; cb < end; cb += kChunkBytes) {
        chunks.push_back({i, cb, std::min(end, cb + kChunkBytes)});
      }
    }
    std::vector<std::vector<RawMatch>> per_chunk(chunks.size());
    std::vector<double> chunk_millis(chunks.size(), 0.0);
    util::ThreadPool::shared().parallel_for(chunks.size(), [&](std::size_t ci) {
      obs::Tracer::Span span(tracer, "scan.chunk");  // inert when disabled
      const auto ts = Clock::now();
      const Chunk& c = chunks[ci];
      const std::size_t window_end = std::min(buffer.size(), c.end + plan.overlap);
      scan_window(buffer, c.begin, c.end, window_end, needles,
                  min_prefix_bytes, mm, use_simd, per_chunk[ci]);
      chunk_millis[ci] = millis_since(ts);
      if (span.live()) {
        span.add(obs::TraceAttr::n("shard", static_cast<double>(c.shard)));
        span.add(obs::TraceAttr::n("bytes", static_cast<double>(c.end - c.begin)));
        span.add(obs::TraceAttr::n("matches",
                                   static_cast<double>(per_chunk[ci].size())));
      }
    });
    // Reduce chunks into shards after the join (single-threaded, no races).
    // Chunks were emitted shard-by-shard in ascending offset order and each
    // chunk's list is already sorted, so appending in index order rebuilds
    // exactly the per-shard lists the unchunked scan would produce.
    for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
      auto& dst = per_shard[chunks[ci].shard];
      dst.insert(dst.end(), per_chunk[ci].begin(), per_chunk[ci].end());
      shard_millis[chunks[ci].shard] += chunk_millis[ci];
    }
  }

  // Deterministic merge: shards are disjoint ascending offset ranges and
  // each shard's list is already (offset, pattern_index)-sorted, so plain
  // concatenation preserves the serial walk's order.
  std::vector<RawMatch> merged;
  std::size_t total = 0;
  for (const auto& s : per_shard) total += s.size();
  merged.reserve(total);
  for (auto& s : per_shard) {
    merged.insert(merged.end(), s.begin(), s.end());
  }

  if (stats != nullptr) {
    stats->bytes_scanned = payload;
    stats->match_count = merged.size();
    stats->shard_count = plan.shard_count;
    stats->overlap_bytes = plan.overlap;
    stats->pattern_count = active_needles;
    stats->matcher = resolved;
    // kNone here covers BOTH scalar hardware and the matcher's density
    // fallback (simd_profitable() false) — either way the bytes went
    // through the scalar walk and the stats must say so.
    stats->simd_kind = use_simd && mm != nullptr && mm->simd_profitable()
                           ? simd_available()
                           : SimdKind::kNone;
    stats->bytes_streamed = 0;
    stats->incremental = false;
    stats->dirty_frames = 0;
    stats->shards.clear();
    stats->shards.reserve(plan.shard_count);
    for (std::size_t i = 0; i < plan.shard_count; ++i) {
      const std::size_t begin = plan.shard_begin(i);
      const std::size_t end =
          std::min(payload,
                   begin + (plan.shard_count == 1 ? payload : plan.shard_bytes));
      stats->shards.push_back(
          {i, begin, end - begin, per_shard[i].size(), shard_millis[i]});
    }
    stats->wall_millis = millis_since(t0);
    if (metrics_on) {
      stats->publish(reg);
    }
  }
  return merged;
}

}  // namespace keyguard::scan
