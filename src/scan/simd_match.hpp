// Vector candidate finder for the MultiMatcher's first stage.
//
// The scalar multi path tests ONE position per iteration against the
// two-byte-prefix bitmap; that single L1 load per byte is the throughput
// ceiling the ROADMAP names. This stage tests 32 (AVX2) or 64 (AVX-512BW)
// positions per iteration with the classic two-nibble PSHUFB
// classification ("shufti"): each needle's first byte is assigned one of
// eight buckets, and four 16-entry tables — low/high nibble of the first
// byte, low/high nibble of the second byte — are built so that
//
//   classes0[p] = lo0[b[p] & 15] & hi0[b[p] >> 4]
//   classes1[p] = lo1[b[p+1] & 15] & hi1[b[p+1] >> 4]
//   candidate(p) ⟺ (classes0[p] & classes1[p]) != 0
//
// Every real match sets its bucket's bit in all four lookups, so the
// candidate mask is a SUPERSET of the true two-byte-prefix hits — never a
// false negative. False positives (nibble cross-products inside a bucket,
// bucket collisions past eight distinct first bytes) are cheap: each
// surviving position re-checks the exact 65536-bit pair bitmap and then
// walks the ordinary bucket/SWAR/tail verify, so the emitted matches are
// bit-identical to the scalar walk by construction.
//
// This header is an internal seam between multi_matcher.cpp and the
// target-attributed kernels in simd_match.cpp; the public surface
// (SimdKind, simd_kind_name, simd_available) lives in scan_engine.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "scan/scan_engine.hpp"

namespace keyguard::scan::simd_detail {

/// The four nibble-classification tables. 64 bytes, one cache line.
struct ShuftiTables {
  alignas(64) std::uint8_t lo0[16] = {};  ///< first-byte low nibble -> buckets
  std::uint8_t hi0[16] = {};              ///< first-byte high nibble -> buckets
  std::uint8_t lo1[16] = {};              ///< second-byte low nibble -> buckets
  std::uint8_t hi1[16] = {};              ///< second-byte high nibble -> buckets
};

/// Scans positions [pos, limit) in whole 32/64-byte blocks and appends every
/// candidate position (ascending) to `out`. Stops at the last position that
/// still leaves a full vector inside [pos, limit) — the caller finishes the
/// tail with the scalar loop. `limit` must satisfy limit < buf_size (the
/// classifier reads base[p + 1]), which the caller's pair_limit already
/// guarantees. Returns the position scalar processing should resume from.
/// `kind` must be a level simd_available() reported (kNone returns pos).
std::size_t collect_candidates(SimdKind kind, const unsigned char* base,
                               std::size_t pos, std::size_t limit,
                               const ShuftiTables& tables,
                               std::vector<std::size_t>& out);

}  // namespace keyguard::scan::simd_detail
