#include "scan/key_hunter.hpp"

#include <algorithm>

namespace keyguard::scan {

using bn::Bignum;

KeyHunter::KeyHunter(crypto::RsaPublicKey public_key)
    : pub_(std::move(public_key)), factor_bytes_(pub_.modulus_bits() / 2 / 8) {}

std::vector<KeyHunter::Hit> KeyHunter::hunt(std::span<const std::byte> dump,
                                            std::size_t stride) const {
  std::vector<Hit> hits;
  if (dump.size() < factor_bytes_ || stride == 0) return hits;
  const std::size_t prime_bits = pub_.modulus_bits() / 2;

  for (std::size_t off = 0; off + factor_bytes_ <= dump.size(); off += stride) {
    // Cheap filters first: a prime factor is odd (low byte LSB set, since
    // the image is little-endian) and has its top bit set (exact length).
    if ((std::to_integer<unsigned>(dump[off]) & 1u) == 0) continue;
    const auto top = std::to_integer<unsigned>(dump[off + factor_bytes_ - 1]);
    if ((top & 0x80u) == 0) continue;
    // RSA primes from standard keygen also have the second bit set (so
    // P*Q reaches full length); using it quarters the divisions and does
    // not lose standard-form keys.
    if ((top & 0x40u) == 0) continue;

    const Bignum candidate = Bignum::from_bytes_le(dump.subspan(off, factor_bytes_));
    if (candidate.bit_length() != prime_bits) continue;
    if (candidate.is_zero() || candidate == pub_.n) continue;
    if ((pub_.n % candidate).is_zero()) {
      hits.push_back({off, candidate});
    }
  }
  return hits;
}

std::optional<crypto::RsaPrivateKey> KeyHunter::reconstruct(const Bignum& factor) const {
  if (factor.is_zero() || !(pub_.n % factor).is_zero()) return std::nullopt;
  const Bignum one(1);
  crypto::RsaPrivateKey key;
  key.n = pub_.n;
  key.e = pub_.e;
  key.p = factor;
  key.q = pub_.n / factor;
  if (key.p < key.q) std::swap(key.p, key.q);  // conventional p > q
  const Bignum p1 = key.p - one;
  const Bignum q1 = key.q - one;
  const Bignum g = Bignum::gcd(p1, q1);
  const Bignum lcm = (p1 / g) * q1;
  const auto d = Bignum::mod_inverse(key.e, lcm);
  if (!d) return std::nullopt;
  key.d = *d;
  key.dmp1 = key.d % p1;
  key.dmq1 = key.d % q1;
  const auto iqmp = Bignum::mod_inverse(key.q, key.p);
  if (!iqmp) return std::nullopt;
  key.iqmp = *iqmp;
  return key;
}

}  // namespace keyguard::scan
