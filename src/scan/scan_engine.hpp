// Parallel sharded scan engine.
//
// The paper's scanmemory LKM walks physical memory linearly ("about 5
// seconds for 256 MB"). This engine keeps the LKM's memchr-then-compare
// inner loop but splits the buffer into per-thread shards of whole 4 KB
// frames, scans the shards concurrently over util::ThreadPool, and merges
// per-shard results into the exact byte order the serial walk produces.
//
// Correctness at shard seams: a needle that starts in shard i may continue
// into shard i+1, so every shard scans an overlap window of
// `max_needle_len - 1` extra bytes past its end, and a hit is attributed
// to the shard that contains its FIRST byte. Each offset is therefore
// found exactly once, and the merged result is byte-for-byte identical to
// a single-shard scan — the equivalence and boundary test batteries in
// tests/scan_parallel_test.cpp and tests/scan_boundary_test.cpp enforce
// this for every shard count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace keyguard::util {
class JsonWriter;
}
namespace keyguard::obs {
class MetricsRegistry;
}

namespace keyguard::scan {

/// Which inner-loop matcher a scan uses. Results are bit-identical at
/// every setting — the legacy loop is kept as the reference oracle, the
/// scalar multi path is the oracle for the vector stage, and the fuzz
/// battery in tests/scan_matcher_test.cpp enforces both equivalences.
enum class MatcherKind : std::uint8_t {
  kAuto = 0,  ///< legacy below kMultiMatcherMinNeedles, best multi at/above
  kLegacy,    ///< per-needle memchr-then-memcmp walk (the LKM's loop)
  kMulti,     ///< single-pass MultiMatcher (first-byte dispatch + SWAR)
  kSimd,      ///< MultiMatcher with the AVX2/AVX-512BW candidate first
              ///< stage; degrades to the scalar multi walk (bit-identically)
              ///< when the CPU lacks the instructions
};

/// "auto" / "legacy" / "multi" / "simd" — the names the JSON envelope and
/// the KEYGUARD_SCAN_MATCHER environment override use.
const char* matcher_name(MatcherKind k) noexcept;

/// Which vector ISA the kSimd first stage runs on. Detected once at
/// startup via CPUID; KEYGUARD_SCAN_SIMD=none|avx2 caps (never raises)
/// the level so the scalar fallback and the 32-byte kernel are testable
/// on AVX-512 hardware.
enum class SimdKind : std::uint8_t {
  kNone = 0,  ///< no usable vector ISA — kSimd degrades to the scalar walk
  kAvx2,      ///< 32 positions per iteration
  kAvx512,    ///< 64 positions per iteration (AVX-512F + AVX-512BW)
};

/// "none" / "avx2" / "avx512" — ScanStats::simd_kind's JSON spelling.
const char* simd_kind_name(SimdKind k) noexcept;

/// The vector level scans will actually use (CPUID ∧ KEYGUARD_SCAN_SIMD
/// cap), computed once and cached.
SimdKind simd_available() noexcept;

/// Needle count at which kAuto switches to the single-pass matcher. Below
/// it, P memchr passes are cheaper than the per-byte dispatch loop.
inline constexpr std::size_t kMultiMatcherMinNeedles = 8;

/// Resolves kAuto against the active (non-skipped) needle count: legacy
/// below the threshold, kSimd at/above it when simd_available() reports a
/// vector ISA, kMulti otherwise. Explicit requests pass through unchanged
/// (kSimd on a scalar-only machine still resolves to kSimd — the matcher
/// falls back internally and ScanStats::simd_kind records kNone, so a
/// silent downgrade stays visible).
MatcherKind resolve_matcher(MatcherKind requested,
                            std::size_t active_needles) noexcept;

/// Per-shard accounting for one scan. With the chunked scheduler a
/// shard's frames may be scanned by several threads; `millis` is the sum
/// of its chunks' wall times (CPU-time-like), so mb_per_sec() reports
/// per-shard scan cost rather than elapsed wall time.
struct ShardStats {
  std::size_t index = 0;    ///< shard number, 0-based
  std::size_t offset = 0;   ///< first payload byte
  std::size_t bytes = 0;    ///< payload bytes (overlap window excluded)
  std::size_t matches = 0;  ///< hits attributed to this shard
  double millis = 0.0;      ///< summed chunk wall time of this shard

  /// Guarded against zero/sub-tick timings: returns 0 instead of inf/nan
  /// when the clock was too coarse to time the shard.
  double mb_per_sec() const;
};

/// Aggregate scan metrics, reported by KeyScanner::scan_kernel /
/// scan_capture / scan_capture_prefix and printed by the benches.
struct ScanStats {
  std::size_t bytes_scanned = 0;  ///< payload bytes == buffer size
  std::size_t match_count = 0;
  std::size_t shard_count = 0;
  std::size_t overlap_bytes = 0;  ///< per-shard seam window
  std::size_t pattern_count = 0;  ///< needles actually searched
  double wall_millis = 0.0;       ///< end-to-end, including the merge
  MatcherKind matcher = MatcherKind::kLegacy;  ///< matcher actually used
  /// Vector ISA the scan ran on: kNone unless the resolved matcher was
  /// kSimd AND the CPU had the instructions. A kSimd scan reporting kNone
  /// is the graceful scalar fallback — CI's schema check reads this field
  /// so the downgrade is visible, not just slow.
  SimdKind simd_kind = SimdKind::kNone;
  /// Capture bytes walked by a streaming scan (CaptureStream): the file
  /// size, while bytes_scanned stays the payload actually matched. 0 for
  /// in-memory scans.
  std::size_t bytes_streamed = 0;
  /// Delta sweep (KeyScanner::scan_kernel_incremental): bytes_scanned is
  /// the rescanned window total, shards lists the rescan windows, and
  /// dirty_frames counts the frames the journal reported.
  bool incremental = false;
  std::size_t dirty_frames = 0;
  std::vector<ShardStats> shards;

  /// Guarded like ShardStats::mb_per_sec — 0 when wall time measured 0.
  double mb_per_sec() const;
  /// One-line human summary, e.g.
  /// "64.0 MB in 4 shards, 4 patterns, 31.2 ms, 2051.3 MB/s".
  std::string summary() const;

  /// Emits the stats as an object *value* (caller supplies the key).
  /// Field names are the schema aliases every consumer already reads —
  /// "bytes_scanned"/"shards"/"patterns"/"wall_ms"/"mb_per_sec" — plus
  /// "match_count"/"overlap_bytes" and a per-shard "shard_list" array.
  void write_json(util::JsonWriter& w) const;

  /// Publishes into a registry: scan.scans / scan.bytes / scan.matches
  /// counters, scan.mb_per_sec / scan.shards gauges, scan.wall_ms
  /// histogram. sharded_scan calls this automatically when the global
  /// registry is enabled.
  void publish(obs::MetricsRegistry& reg) const;
};

/// A raw engine hit: which needle matched where. The KeyScanner layers
/// pattern names, frame metadata, and provenance on top.
struct RawMatch {
  std::size_t offset = 0;
  std::size_t pattern_index = 0;
  std::size_t matched_bytes = 0;  ///< == needle size unless prefix mode
  bool full = true;
};

/// How a buffer is split: `shard_count` shards of `shard_bytes` payload
/// (whole frames, last shard takes the remainder) with `overlap` extra
/// bytes scanned past each seam.
struct ShardPlan {
  std::size_t shard_count = 1;
  std::size_t shard_bytes = 0;
  std::size_t overlap = 0;

  std::size_t shard_begin(std::size_t i) const { return i * shard_bytes; }
};

/// Computes the plan for `total_bytes` split `requested_shards` ways.
/// Shard payloads are rounded up to whole frames (frame_bytes granularity)
/// so frames never straddle a seam; the count is clamped so every shard
/// has at least one payload byte. requested_shards == 0 means one shard.
ShardPlan plan_shards(std::size_t total_bytes, std::size_t max_needle_len,
                      std::size_t requested_shards,
                      std::size_t frame_bytes = 4096);

/// Scans `buffer` for every needle across `requested_shards` concurrent
/// shards and returns all hits sorted by (offset, pattern_index) — the
/// serial walk's order, with the needle list order breaking offset ties.
///
/// min_prefix_bytes == 0: exact whole-needle matches (RawMatch::full true,
/// matched_bytes == needle size). min_prefix_bytes > 0: the LKM's partial
/// path — needles shorter than the minimum are skipped, each hit of the
/// first min_prefix_bytes is extended while bytes keep agreeing, and
/// `full` flags complete matches.
///
/// `stats`, when non-null, receives per-shard and aggregate metrics.
///
/// Scheduling: when more than one shard is requested, each shard's frames
/// are split into ~1 MiB chunks claimed dynamically from the thread
/// pool's shared counter, so one match-dense shard no longer bounds wall
/// time (the chunks of a slow shard are stolen by idle workers). A
/// single-shard request stays a true serial walk — the timing oracle the
/// benches compare against.
std::vector<RawMatch> sharded_scan(std::span<const std::byte> buffer,
                                   std::span<const std::span<const std::byte>> needles,
                                   std::size_t requested_shards,
                                   std::size_t min_prefix_bytes = 0,
                                   ScanStats* stats = nullptr,
                                   MatcherKind matcher = MatcherKind::kAuto);

/// sharded_scan over a window of a larger stream: only the first
/// `payload_bytes` of `buffer` are payload (shards are planned over them
/// and every reported first byte lies inside them); the bytes past the
/// payload are the seam-overlap view into the NEXT window, scanned so a
/// match that starts in this payload and continues across the boundary is
/// still found whole — the same rule a shard seam follows, which is what
/// makes concatenated window results bit-identical to a one-shot scan of
/// the stream (tests/scan_stream_test.cpp). Offsets are buffer-local; the
/// caller rebases them. payload_bytes is clamped to buffer.size(), and
/// sharded_scan is exactly this call with payload_bytes == buffer.size().
std::vector<RawMatch> sharded_scan_window(std::span<const std::byte> buffer,
                                          std::size_t payload_bytes,
                                          std::span<const std::span<const std::byte>> needles,
                                          std::size_t requested_shards,
                                          std::size_t min_prefix_bytes = 0,
                                          ScanStats* stats = nullptr,
                                          MatcherKind matcher = MatcherKind::kAuto);

/// Single-window scan primitive shared by sharded_scan's chunks and the
/// incremental delta path: scans buffer bytes [begin, window_end) and
/// appends matches whose FIRST byte lies in [begin, end), in
/// (offset, pattern_index) order. kAuto resolves against the active
/// needle count; kLegacy is the reference per-needle walk.
void scan_range(std::span<const std::byte> buffer, std::size_t begin,
                std::size_t end, std::size_t window_end,
                std::span<const std::span<const std::byte>> needles,
                std::size_t min_prefix_bytes, MatcherKind matcher,
                std::vector<RawMatch>& out);

}  // namespace keyguard::scan
