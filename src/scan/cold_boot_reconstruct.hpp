// RSA key reconstruction from degraded memory images
// (Heninger & Shacham, CRYPTO 2009, specialised to the p/q case with
// unidirectional decay).
//
// Given the public modulus N and decayed little-endian limb images of the
// primes P and Q — where decay is 1 -> 0, so every surviving 1-bit is
// trusted — the factorisation lifts bit by bit: if p, q are known modulo
// 2^i with p*q ≡ N (mod 2^i), the next bits must satisfy
//
//     p_i + q_i ≡ ((N - p*q) >> i)  (mod 2).
//
// Each candidate branches into exactly two children per bit, so hard
// pruning on trusted 1-bits alone cannot contain the tree (the all-ones
// child never conflicts). Containment comes from Heninger-Shacham style
// STATISTICAL pruning: on the true path, a candidate 1-bit lands on an
// observed 0 only when that bit decayed (probability = the decay rate,
// estimated from the images' 1-density), so candidates whose mismatch
// count exceeds the expected decay budget by several standard deviations
// are discarded. Survivors are verified by full multiplication.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "crypto/rsa.hpp"

namespace keyguard::scan {

struct ColdBootConfig {
  /// Beam width: the frontier is trimmed to the `max_candidates` lowest-
  /// mismatch candidates after every bit. Wider beams tolerate heavier
  /// decay at linear cost.
  std::size_t max_candidates = 1u << 13;
  /// Hard statistical cutoff in standard deviations: a candidate dies
  /// outright when its count of (candidate-1, observed-0) positions
  /// exceeds decay_estimate * ones_set + slack_sigmas * stddev + 2.
  double slack_sigmas = 5.0;
};

class ColdBootReconstructor {
 public:
  explicit ColdBootReconstructor(crypto::RsaPublicKey public_key,
                                 ColdBootConfig cfg = {});

  /// Attempts to rebuild the full CRT private key from decayed LE limb
  /// images of P and Q (each modulus_bits/2 long; shorter spans are
  /// treated as all-unknown tails). Returns nullopt when the frontier
  /// explodes or no candidate multiplies back to N.
  std::optional<crypto::RsaPrivateKey> reconstruct(
      std::span<const std::byte> p_image, std::span<const std::byte> q_image) const;

  /// Candidates alive when the search finished (diagnostics; set by the
  /// last reconstruct() call).
  std::size_t last_frontier() const noexcept { return last_frontier_; }

 private:
  crypto::RsaPublicKey pub_;
  ColdBootConfig cfg_;
  mutable std::size_t last_frontier_ = 0;
};

}  // namespace keyguard::scan
