#include "scan/key_scanner.hpp"

#include <algorithm>

#include "crypto/pem.hpp"
#include "sslsim/ssl_library.hpp"
#include "util/bytes.hpp"

namespace keyguard::scan {

namespace {

std::string describe_match(const sim::Kernel& kernel, const MemoryMatch& m) {
  switch (m.state) {
    case sim::FrameState::kFree:
      return "unallocated residue";
    case sim::FrameState::kPageCache:
      return "page cache";
    case sim::FrameState::kKernel:
      return "kernel buffer";
    case sim::FrameState::kUserAnon:
      break;
  }
  // Resolve through the first owning process's address space.
  for (const auto pid : m.owners) {
    const auto* proc = kernel.find_process(pid);
    if (proc == nullptr) continue;
    const auto vpage = kernel.virt_of_frame(*proc, m.frame);
    if (!vpage) continue;
    const auto desc =
        kernel.describe_address(*proc, *vpage + m.phys_offset % sim::kPageSize);
    if (desc) return *desc;
  }
  return "user memory";
}

}  // namespace

KeyPatterns KeyPatterns::from_key(const crypto::RsaPrivateKey& key) {
  KeyPatterns out;
  out.patterns.push_back({"d", sslsim::SslLibrary::limb_image(key.d)});
  out.patterns.push_back({"P", sslsim::SslLibrary::limb_image(key.p)});
  out.patterns.push_back({"Q", sslsim::SslLibrary::limb_image(key.q)});
  out.patterns.push_back({"PEM", util::to_bytes(crypto::pem_encode_private_key(key))});
  return out;
}

std::vector<MemoryMatch> KeyScanner::scan_kernel(const sim::Kernel& kernel) const {
  std::vector<MemoryMatch> matches;
  const auto memory = kernel.memory().all();
  for (const auto& pattern : patterns_.patterns) {
    if (pattern.bytes.empty()) continue;
    for (const std::size_t offset : util::find_all(memory, pattern.bytes)) {
      MemoryMatch m;
      m.phys_offset = offset;
      m.part = pattern.name;
      m.frame = static_cast<sim::FrameNumber>(offset / sim::kPageSize);
      m.state = kernel.allocator().state(m.frame);
      m.owners = kernel.frame_owners(m.frame);
      m.provenance = describe_match(kernel, m);
      matches.push_back(std::move(m));
    }
  }
  // Physical-address order, like the LKM's linear walk.
  std::sort(matches.begin(), matches.end(),
            [](const MemoryMatch& a, const MemoryMatch& b) {
              return a.phys_offset < b.phys_offset;
            });
  return matches;
}

std::vector<CaptureMatch> KeyScanner::scan_capture(
    std::span<const std::byte> capture) const {
  std::vector<CaptureMatch> matches;
  for (const auto& pattern : patterns_.patterns) {
    if (pattern.bytes.empty()) continue;
    for (const std::size_t offset : util::find_all(capture, pattern.bytes)) {
      matches.push_back({offset, pattern.name});
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const CaptureMatch& a, const CaptureMatch& b) {
              return a.offset < b.offset;
            });
  return matches;
}

std::vector<PartialMatch> KeyScanner::scan_capture_prefix(
    std::span<const std::byte> capture, std::size_t min_bytes) const {
  std::vector<PartialMatch> matches;
  for (const auto& pattern : patterns_.patterns) {
    if (pattern.bytes.size() < min_bytes) continue;
    const auto prefix = std::span<const std::byte>(pattern.bytes).first(min_bytes);
    for (const std::size_t offset : util::find_all(capture, prefix)) {
      // Extend the match as far as the pattern keeps agreeing.
      std::size_t len = min_bytes;
      while (len < pattern.bytes.size() && offset + len < capture.size() &&
             capture[offset + len] == pattern.bytes[len]) {
        ++len;
      }
      matches.push_back(
          {offset, pattern.name, len, len == pattern.bytes.size()});
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const PartialMatch& a, const PartialMatch& b) {
              return a.offset < b.offset;
            });
  return matches;
}

std::vector<ProcessMatch> KeyScanner::scan_process(const sim::Kernel& kernel,
                                                   const sim::Process& process) const {
  // Reassemble the resident image the way a core dump would: contiguous
  // virtual runs of resident pages, scanned run by run so patterns that
  // span adjacent virtual pages are found even when their frames are
  // physically scattered.
  std::vector<ProcessMatch> matches;
  const auto& pt = process.page_table();
  auto it = pt.begin();
  std::vector<std::byte> run;
  while (it != pt.end()) {
    run.clear();
    const sim::VirtAddr start = it->first;
    sim::VirtAddr expected = start;
    while (it != pt.end() && it->first == expected && !it->second.swapped) {
      const auto page = kernel.memory().page(it->second.frame);
      run.insert(run.end(), page.begin(), page.end());
      expected += sim::kPageSize;
      ++it;
    }
    if (it != pt.end() && it->first == expected) ++it;  // swapped page: skip
    for (const auto& pattern : patterns_.patterns) {
      for (const std::size_t off : util::find_all(run, pattern.bytes)) {
        matches.push_back({start + off, pattern.name});
      }
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const ProcessMatch& a, const ProcessMatch& b) {
              return a.vaddr < b.vaddr;
            });
  return matches;
}

Census KeyScanner::census(const std::vector<MemoryMatch>& matches) {
  Census c;
  for (const auto& m : matches) {
    if (m.allocated()) {
      ++c.allocated;
    } else {
      ++c.unallocated;
    }
  }
  return c;
}

}  // namespace keyguard::scan
