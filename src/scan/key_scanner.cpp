#include "scan/key_scanner.hpp"

#include <algorithm>
#include <chrono>
#include <iterator>

#include "crypto/pem.hpp"
#include "obs/metrics.hpp"
#include "scan/capture_stream.hpp"
#include "scan/multi_matcher.hpp"
#include "sslsim/ssl_library.hpp"
#include "util/bytes.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"

namespace keyguard::scan {

namespace {

std::string describe_match(const sim::Kernel& kernel, const MemoryMatch& m) {
  switch (m.state) {
    case sim::FrameState::kFree:
      return "unallocated residue";
    case sim::FrameState::kPageCache:
      return "page cache";
    case sim::FrameState::kKernel:
      return "kernel buffer";
    case sim::FrameState::kUserAnon:
      break;
  }
  // Resolve through the first owning process's address space.
  for (const auto pid : m.owners) {
    const auto* proc = kernel.find_process(pid);
    if (proc == nullptr) continue;
    const auto vpage = kernel.virt_of_frame(*proc, m.frame);
    if (!vpage) continue;
    const auto desc =
        kernel.describe_address(*proc, *vpage + m.phys_offset % sim::kPageSize);
    if (desc) return *desc;
  }
  return "user memory";
}

}  // namespace

KeyPatterns KeyPatterns::from_key(const crypto::RsaPrivateKey& key) {
  KeyPatterns out;
  out.patterns.push_back({"d", sslsim::SslLibrary::limb_image(key.d)});
  out.patterns.push_back({"P", sslsim::SslLibrary::limb_image(key.p)});
  out.patterns.push_back({"Q", sslsim::SslLibrary::limb_image(key.q)});
  out.patterns.push_back({"PEM", util::to_bytes(crypto::pem_encode_private_key(key))});
  return out;
}

KeyPatterns KeyPatterns::from_keys(std::span<const crypto::RsaPrivateKey> keys) {
  KeyPatterns out;
  out.patterns.reserve(keys.size() * 4);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto one = from_key(keys[i]);
    for (auto& p : one.patterns) {
      p.name += "#" + std::to_string(i);
      out.patterns.push_back(std::move(p));
    }
  }
  return out;
}

std::vector<std::span<const std::byte>> KeyScanner::needles() const {
  std::vector<std::span<const std::byte>> out;
  out.reserve(patterns_.patterns.size());
  for (const auto& p : patterns_.patterns) out.emplace_back(p.bytes);
  return out;
}

std::size_t KeyScanner::effective_shards() const {
  if (shards_ != 0) return shards_;
  const auto env = util::env_int("KEYGUARD_SCAN_THREADS", 0);
  if (env > 0) return static_cast<std::size_t>(env);
  return util::ThreadPool::shared().size() + 1;  // workers + calling thread
}

MatcherKind KeyScanner::effective_matcher() const {
  if (matcher_ != MatcherKind::kAuto) return matcher_;
  const auto env = util::env_string("KEYGUARD_SCAN_MATCHER");
  if (env == "legacy") return MatcherKind::kLegacy;
  if (env == "multi") return MatcherKind::kMulti;
  if (env == "simd") return MatcherKind::kSimd;
  return MatcherKind::kAuto;  // unset / "auto" / unrecognized
}

std::vector<MemoryMatch> KeyScanner::resolve_raw(
    const sim::Kernel& kernel, std::span<const RawMatch> raw) const {
  // Metadata is resolved on the calling thread from a single-pass
  // snapshot, so the allocator is never read concurrently — and it is
  // resolved EVERY sweep, because frame state and owners change without
  // any byte changing (fork shares a frame, exit orphans it, free
  // reclassifies it).
  const auto frame_states = kernel.allocator().states_snapshot();
  std::vector<MemoryMatch> matches;
  matches.reserve(raw.size());
  for (const auto& r : raw) {
    MemoryMatch m;
    m.phys_offset = r.offset;
    m.part = patterns_.patterns[r.pattern_index].name;
    m.frame = static_cast<sim::FrameNumber>(r.offset / sim::kPageSize);
    m.state = frame_states[m.frame];
    m.owners = kernel.frame_owners(m.frame);
    m.mappings = kernel.frame_mappings(m.frame);
    m.provenance = describe_match(kernel, m);
    matches.push_back(std::move(m));
  }
  // Already in (phys_offset, pattern) order — the engine's merge contract.
  return matches;
}

std::vector<MemoryMatch> KeyScanner::scan_kernel(const sim::Kernel& kernel,
                                                 ScanStats* stats) const {
  // Byte scan first — the O(memory) part, sharded across the pool over
  // an immutable byte span.
  const auto raw =
      sharded_scan(kernel.memory().all(), needles(), effective_shards(),
                   /*min_prefix_bytes=*/0, stats, effective_matcher());
  return resolve_raw(kernel, raw);
}

std::vector<MemoryMatch> KeyScanner::scan_kernel_incremental(
    const sim::Kernel& kernel, DirtyFrameJournal& journal, SweepCache& cache,
    ScanStats* stats) const {
  const auto buffer = kernel.memory().all();
  if (!cache.primed || cache.phys_bytes != buffer.size()) {
    // Prime: one full sweep populates the cache; everything the journal
    // accumulated so far is covered by it, so the backlog is discarded.
    cache.raw = sharded_scan(buffer, needles(), effective_shards(),
                             /*min_prefix_bytes=*/0, stats, effective_matcher());
    cache.phys_bytes = buffer.size();
    cache.primed = true;
    journal.drain();
    return resolve_raw(kernel, cache.raw);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto dirty = journal.drain();
  const auto needle_views = needles();
  std::size_t max_len = 0;
  std::size_t active_needles = 0;
  for (const auto n : needle_views) {
    if (n.empty()) continue;
    ++active_needles;
    max_len = std::max(max_len, n.size());
  }
  const std::size_t reach = max_len > 0 ? max_len - 1 : 0;
  const MatcherKind resolved =
      resolve_matcher(effective_matcher(), active_needles);
  const std::size_t frame_bytes = journal.frame_bytes();

  // Coalesce dirty frames into affected byte intervals. A dirty byte run
  // [d0, d1) can create/destroy matches whose FIRST byte lies in
  // [d0 - (max_len-1), d1) only — a match starting earlier ends before d0
  // and overlaps no changed byte (DESIGN.md §8). Left-extending by
  // `reach` and merging adjacent runs keeps the intervals disjoint and
  // ascending.
  struct Interval {
    std::size_t lo;
    std::size_t hi;  // exclusive
  };
  std::vector<Interval> affected;
  for (std::size_t i = 0; i < dirty.size();) {
    std::size_t j = i + 1;
    while (j < dirty.size() && dirty[j] == dirty[j - 1] + 1) ++j;
    const std::size_t d0 = dirty[i] * frame_bytes;
    const std::size_t d1 = std::min(buffer.size(), dirty[j - 1] * frame_bytes + frame_bytes);
    const std::size_t lo = d0 >= reach ? d0 - reach : 0;
    if (!affected.empty() && lo <= affected.back().hi) {
      affected.back().hi = std::max(affected.back().hi, d1);
    } else {
      affected.push_back({lo, d1});
    }
    i = j;
  }

  // Drop cached matches whose offset falls inside any affected interval —
  // they are exactly the ones the rescan below re-derives (or proves
  // gone). Both lists are sorted, so one forward walk suffices.
  std::vector<RawMatch> survivors;
  survivors.reserve(cache.raw.size());
  {
    std::size_t ai = 0;
    for (const auto& r : cache.raw) {
      while (ai < affected.size() && affected[ai].hi <= r.offset) ++ai;
      const bool inside =
          ai < affected.size() && r.offset >= affected[ai].lo;
      if (!inside) survivors.push_back(r);
    }
  }

  // Rescan each affected interval with the standard seam window on the
  // right: matches may START inside and continue past hi, so the window
  // extends `reach` bytes (bounded by the true end of memory) while only
  // first-byte-inside hits are kept — identical attribution to a shard
  // seam. Intervals are ascending and scan_range appends sorted runs, so
  // `fresh` comes out globally (offset, pattern)-sorted.
  std::vector<RawMatch> fresh;
  std::size_t rescanned_bytes = 0;
  if (stats != nullptr) stats->shards.clear();
  for (std::size_t wi = 0; wi < affected.size(); ++wi) {
    const auto [lo, hi] = affected[wi];
    const std::size_t window_end = std::min(buffer.size(), hi + reach);
    const auto tw = std::chrono::steady_clock::now();
    const std::size_t before = fresh.size();
    scan_range(buffer, lo, hi, window_end, needle_views,
               /*min_prefix_bytes=*/0, resolved, fresh);
    rescanned_bytes += hi - lo;
    if (stats != nullptr) {
      const double ms = std::max(
          0.0, std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - tw)
                   .count());
      stats->shards.push_back({wi, lo, hi - lo, fresh.size() - before, ms});
    }
  }

  // Splice: survivors (outside every interval) and fresh (inside one)
  // interleave by offset; a single merge restores the serial walk's
  // (offset, pattern_index) order.
  std::vector<RawMatch> next;
  next.reserve(survivors.size() + fresh.size());
  std::merge(survivors.begin(), survivors.end(), fresh.begin(), fresh.end(),
             std::back_inserter(next),
             [](const RawMatch& a, const RawMatch& b) {
               return a.offset != b.offset ? a.offset < b.offset
                                           : a.pattern_index < b.pattern_index;
             });
  cache.raw = std::move(next);

  if (stats != nullptr) {
    stats->bytes_scanned = rescanned_bytes;
    stats->match_count = cache.raw.size();
    stats->shard_count = affected.size();
    stats->overlap_bytes = reach;
    stats->pattern_count = active_needles;
    stats->matcher = resolved;
    // Probe the compiled tables so a density fallback inside the matcher
    // (MultiMatcher::simd_profitable) is reported, not papered over.
    stats->simd_kind =
        resolved == MatcherKind::kSimd && simd_available() != SimdKind::kNone &&
                MultiMatcher(needle_views, 0).simd_profitable()
            ? simd_available()
            : SimdKind::kNone;
    stats->incremental = true;
    stats->dirty_frames = dirty.size();
    stats->wall_millis = std::max(
        0.0, std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count());
    auto& reg = obs::MetricsRegistry::global();
    if (reg.enabled()) stats->publish(reg);
  }
  return resolve_raw(kernel, cache.raw);
}

std::vector<CaptureMatch> KeyScanner::scan_capture(
    std::span<const std::byte> capture, ScanStats* stats) const {
  const auto raw = sharded_scan(capture, needles(), effective_shards(),
                                /*min_prefix_bytes=*/0, stats, effective_matcher());
  std::vector<CaptureMatch> matches;
  matches.reserve(raw.size());
  for (const auto& r : raw) {
    matches.push_back({r.offset, patterns_.patterns[r.pattern_index].name});
  }
  return matches;
}

std::vector<PartialMatch> KeyScanner::scan_capture_prefix(
    std::span<const std::byte> capture, std::size_t min_bytes,
    ScanStats* stats) const {
  const auto raw = sharded_scan(capture, needles(), effective_shards(),
                                min_bytes, stats, effective_matcher());
  std::vector<PartialMatch> matches;
  matches.reserve(raw.size());
  for (const auto& r : raw) {
    matches.push_back({r.offset, patterns_.patterns[r.pattern_index].name,
                       r.matched_bytes, r.full});
  }
  return matches;
}

std::vector<RawMatch> KeyScanner::stream_raw(CaptureStream& stream,
                                             std::size_t min_prefix_bytes,
                                             ScanStats* stats) const {
  const auto t0 = std::chrono::steady_clock::now();
  const auto needle_views = needles();
  // Reach covers the longest needle that can actually match (prefix mode
  // skips needles shorter than the minimum, exactly as the matcher does).
  std::size_t max_len = 0;
  std::size_t active = 0;
  for (const auto n : needle_views) {
    if (n.empty()) continue;
    if (min_prefix_bytes > 0 && n.size() < min_prefix_bytes) continue;
    ++active;
    max_len = std::max(max_len, n.size());
  }
  const std::size_t reach = max_len > 0 ? max_len - 1 : 0;
  const MatcherKind resolved = resolve_matcher(effective_matcher(), active);
  stream.rewind(reach);
  std::vector<RawMatch> all;
  std::size_t windows = 0;
  std::size_t payload_total = 0;
  SimdKind used = SimdKind::kNone;
  while (auto w = stream.next()) {
    ScanStats ws;
    auto raw = sharded_scan_window(w->bytes, w->payload, needle_views,
                                   effective_shards(), min_prefix_bytes,
                                   stats != nullptr ? &ws : nullptr,
                                   effective_matcher());
    // Windows ascend and each window's hits are (offset, pattern)-sorted,
    // so rebasing to file offsets keeps the concatenation globally sorted
    // — the one-shot scan's order.
    for (auto& r : raw) r.offset += w->offset;
    if (stats != nullptr) {
      stats->shards.push_back(
          {windows, w->offset, w->payload, raw.size(), ws.wall_millis});
      used = ws.simd_kind;  // per-window stats carry the density fallback
    }
    all.insert(all.end(), raw.begin(), raw.end());
    payload_total += w->payload;
    ++windows;
  }
  if (stats != nullptr) {
    stats->bytes_scanned = payload_total;
    stats->match_count = all.size();
    stats->shard_count = windows;
    stats->overlap_bytes = reach;
    stats->pattern_count = active;
    stats->matcher = resolved;
    stats->simd_kind = used;
    stats->bytes_streamed = stream.size();
    stats->incremental = false;
    stats->dirty_frames = 0;
    stats->wall_millis = std::max(
        0.0, std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count());
    // Each window already published a scan into the registry; only the
    // streaming-specific byte count is added here (never double-counted).
    auto& reg = obs::MetricsRegistry::global();
    if (reg.enabled() && stream.size() > 0) {
      reg.counter("scan.bytes_streamed").add(stream.size());
    }
  }
  return all;
}

std::vector<CaptureMatch> KeyScanner::scan_capture_stream(
    CaptureStream& stream, ScanStats* stats) const {
  const auto raw = stream_raw(stream, /*min_prefix_bytes=*/0, stats);
  std::vector<CaptureMatch> matches;
  matches.reserve(raw.size());
  for (const auto& r : raw) {
    matches.push_back({r.offset, patterns_.patterns[r.pattern_index].name});
  }
  return matches;
}

std::vector<PartialMatch> KeyScanner::scan_capture_prefix_stream(
    CaptureStream& stream, std::size_t min_bytes, ScanStats* stats) const {
  const auto raw = stream_raw(stream, min_bytes, stats);
  std::vector<PartialMatch> matches;
  matches.reserve(raw.size());
  for (const auto& r : raw) {
    matches.push_back({r.offset, patterns_.patterns[r.pattern_index].name,
                       r.matched_bytes, r.full});
  }
  return matches;
}

std::vector<ProcessMatch> KeyScanner::scan_process(const sim::Kernel& kernel,
                                                   const sim::Process& process) const {
  // Reassemble the resident image the way a core dump would: contiguous
  // virtual runs of resident pages, scanned run by run so patterns that
  // span adjacent virtual pages are found even when their frames are
  // physically scattered. Runs are small (one process), so this path
  // stays serial.
  std::vector<ProcessMatch> matches;
  const auto& pt = process.page_table();
  auto it = pt.begin();
  std::vector<std::byte> run;
  while (it != pt.end()) {
    run.clear();
    const sim::VirtAddr start = it->first;
    sim::VirtAddr expected = start;
    while (it != pt.end() && it->first == expected && !it->second.swapped) {
      const auto page = kernel.memory().page(it->second.frame);
      run.insert(run.end(), page.begin(), page.end());
      expected += sim::kPageSize;
      ++it;
    }
    if (it != pt.end() && it->first == expected) ++it;  // swapped page: skip
    for (const auto& pattern : patterns_.patterns) {
      for (const std::size_t off : util::find_all(run, pattern.bytes)) {
        matches.push_back({start + off, pattern.name});
      }
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const ProcessMatch& a, const ProcessMatch& b) {
              return a.vaddr < b.vaddr;
            });
  return matches;
}

Census KeyScanner::census(const std::vector<MemoryMatch>& matches) {
  Census c;
  for (const auto& m : matches) {
    if (m.allocated()) {
      ++c.allocated;
    } else {
      ++c.unallocated;
    }
  }
  return c;
}

}  // namespace keyguard::scan
