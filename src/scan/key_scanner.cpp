#include "scan/key_scanner.hpp"

#include <algorithm>

#include "crypto/pem.hpp"
#include "sslsim/ssl_library.hpp"
#include "util/bytes.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"

namespace keyguard::scan {

namespace {

std::string describe_match(const sim::Kernel& kernel, const MemoryMatch& m) {
  switch (m.state) {
    case sim::FrameState::kFree:
      return "unallocated residue";
    case sim::FrameState::kPageCache:
      return "page cache";
    case sim::FrameState::kKernel:
      return "kernel buffer";
    case sim::FrameState::kUserAnon:
      break;
  }
  // Resolve through the first owning process's address space.
  for (const auto pid : m.owners) {
    const auto* proc = kernel.find_process(pid);
    if (proc == nullptr) continue;
    const auto vpage = kernel.virt_of_frame(*proc, m.frame);
    if (!vpage) continue;
    const auto desc =
        kernel.describe_address(*proc, *vpage + m.phys_offset % sim::kPageSize);
    if (desc) return *desc;
  }
  return "user memory";
}

}  // namespace

KeyPatterns KeyPatterns::from_key(const crypto::RsaPrivateKey& key) {
  KeyPatterns out;
  out.patterns.push_back({"d", sslsim::SslLibrary::limb_image(key.d)});
  out.patterns.push_back({"P", sslsim::SslLibrary::limb_image(key.p)});
  out.patterns.push_back({"Q", sslsim::SslLibrary::limb_image(key.q)});
  out.patterns.push_back({"PEM", util::to_bytes(crypto::pem_encode_private_key(key))});
  return out;
}

KeyPatterns KeyPatterns::from_keys(std::span<const crypto::RsaPrivateKey> keys) {
  KeyPatterns out;
  out.patterns.reserve(keys.size() * 4);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto one = from_key(keys[i]);
    for (auto& p : one.patterns) {
      p.name += "#" + std::to_string(i);
      out.patterns.push_back(std::move(p));
    }
  }
  return out;
}

std::vector<std::span<const std::byte>> KeyScanner::needles() const {
  std::vector<std::span<const std::byte>> out;
  out.reserve(patterns_.patterns.size());
  for (const auto& p : patterns_.patterns) out.emplace_back(p.bytes);
  return out;
}

std::size_t KeyScanner::effective_shards() const {
  if (shards_ != 0) return shards_;
  const auto env = util::env_int("KEYGUARD_SCAN_THREADS", 0);
  if (env > 0) return static_cast<std::size_t>(env);
  return util::ThreadPool::shared().size() + 1;  // workers + calling thread
}

std::vector<MemoryMatch> KeyScanner::scan_kernel(const sim::Kernel& kernel,
                                                 ScanStats* stats) const {
  // Byte scan first — the O(memory) part, sharded across the pool. The
  // worker threads touch only the immutable byte span; frame metadata is
  // resolved afterwards on this thread from a single-pass snapshot, so
  // the allocator is never read concurrently.
  const auto raw =
      sharded_scan(kernel.memory().all(), needles(), effective_shards(),
                   /*min_prefix_bytes=*/0, stats);
  const auto frame_states = kernel.allocator().states_snapshot();

  std::vector<MemoryMatch> matches;
  matches.reserve(raw.size());
  for (const auto& r : raw) {
    MemoryMatch m;
    m.phys_offset = r.offset;
    m.part = patterns_.patterns[r.pattern_index].name;
    m.frame = static_cast<sim::FrameNumber>(r.offset / sim::kPageSize);
    m.state = frame_states[m.frame];
    m.owners = kernel.frame_owners(m.frame);
    m.provenance = describe_match(kernel, m);
    matches.push_back(std::move(m));
  }
  // Already in (phys_offset, pattern) order — the engine's merge contract.
  return matches;
}

std::vector<CaptureMatch> KeyScanner::scan_capture(
    std::span<const std::byte> capture, ScanStats* stats) const {
  const auto raw = sharded_scan(capture, needles(), effective_shards(),
                                /*min_prefix_bytes=*/0, stats);
  std::vector<CaptureMatch> matches;
  matches.reserve(raw.size());
  for (const auto& r : raw) {
    matches.push_back({r.offset, patterns_.patterns[r.pattern_index].name});
  }
  return matches;
}

std::vector<PartialMatch> KeyScanner::scan_capture_prefix(
    std::span<const std::byte> capture, std::size_t min_bytes,
    ScanStats* stats) const {
  const auto raw =
      sharded_scan(capture, needles(), effective_shards(), min_bytes, stats);
  std::vector<PartialMatch> matches;
  matches.reserve(raw.size());
  for (const auto& r : raw) {
    matches.push_back({r.offset, patterns_.patterns[r.pattern_index].name,
                       r.matched_bytes, r.full});
  }
  return matches;
}

std::vector<ProcessMatch> KeyScanner::scan_process(const sim::Kernel& kernel,
                                                   const sim::Process& process) const {
  // Reassemble the resident image the way a core dump would: contiguous
  // virtual runs of resident pages, scanned run by run so patterns that
  // span adjacent virtual pages are found even when their frames are
  // physically scattered. Runs are small (one process), so this path
  // stays serial.
  std::vector<ProcessMatch> matches;
  const auto& pt = process.page_table();
  auto it = pt.begin();
  std::vector<std::byte> run;
  while (it != pt.end()) {
    run.clear();
    const sim::VirtAddr start = it->first;
    sim::VirtAddr expected = start;
    while (it != pt.end() && it->first == expected && !it->second.swapped) {
      const auto page = kernel.memory().page(it->second.frame);
      run.insert(run.end(), page.begin(), page.end());
      expected += sim::kPageSize;
      ++it;
    }
    if (it != pt.end() && it->first == expected) ++it;  // swapped page: skip
    for (const auto& pattern : patterns_.patterns) {
      for (const std::size_t off : util::find_all(run, pattern.bytes)) {
        matches.push_back({start + off, pattern.name});
      }
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const ProcessMatch& a, const ProcessMatch& b) {
              return a.vaddr < b.vaddr;
            });
  return matches;
}

Census KeyScanner::census(const std::vector<MemoryMatch>& matches) {
  Census c;
  for (const auto& m : matches) {
    if (m.allocated()) {
      ++c.allocated;
    } else {
      ++c.unallocated;
    }
  }
  return c;
}

}  // namespace keyguard::scan
