// Function extraction + statement parser for keylint2.
//
// Turns a token stream into per-function statement trees: enough structure
// for a CFG (branches, loops, early returns) without being a real C++
// parser. Namespaces/classes are transparent containers (member functions
// inside them are found), aggregate initializers and lambdas are swallowed
// into the statement that contains them, and anything unrecognized degrades
// to a plain statement — unknown syntax can hide a finding but never
// crashes the tool or corrupts brace tracking the way keylint v1's
// line-regex pass could.
#pragma once

#include <string>
#include <vector>

#include "lint/token.hpp"

namespace keyguard::lint {

enum class StmtKind {
  kSimple,    // expression/declaration statement; head = its tokens
  kReturn,    // head = return expression tokens
  kBreak,
  kContinue,
  kIf,        // head = condition; body = then; else_body when has_else
  kWhile,     // head = condition; body = loop body
  kDoWhile,   // head = trailing condition; body = loop body
  kFor,       // head = everything inside for(...); body = loop body
  kSwitch,    // head = condition; body = case sections flattened
  kBlock,     // bare { ... }
};

struct Stmt {
  StmtKind kind = StmtKind::kSimple;
  int first_line = 0;
  int last_line = 0;  // includes nested body lines
  std::vector<Token> head;
  std::vector<Stmt> body;
  std::vector<Stmt> else_body;
  bool has_else = false;
};

struct Function {
  std::string name;        // best-effort qualified name, e.g. "Keystore::sign"
  int signature_line = 0;  // first line of the signature statement
  int body_open_line = 0;  // line of the opening '{'
  int last_line = 0;       // line of the closing '}'
  std::vector<Token> signature;  // signature tokens (incl. ctor-init list)
  std::vector<Stmt> body;
};

/// All function-like bodies in the stream (free functions, methods defined
/// inside classes, constructors). Best-effort: misparses degrade to skipped
/// regions, never to exceptions.
std::vector<Function> parse_functions(const TokenStream& ts);

}  // namespace keyguard::lint
