#include "lint/cfg.hpp"

namespace keyguard::lint {
namespace {

class Builder {
 public:
  explicit Builder(const Function& fn) : fn_(fn) {}

  Cfg build() {
    cfg_.entry = add_node(nullptr);
    cfg_.exit = add_node(nullptr);
    Frontier in;
    in.push_back(cfg_.entry);
    Frontier out = seq(fn_.body, in, /*brk=*/nullptr, /*cont=*/-1);
    connect(out, cfg_.exit);
    return std::move(cfg_);
  }

 private:
  using Frontier = std::vector<int>;  // nodes whose successor comes next

  int add_node(const Stmt* s) {
    cfg_.nodes.push_back(CfgNode{s, s != nullptr && s->kind == StmtKind::kReturn,
                                 {}, {}});
    return static_cast<int>(cfg_.nodes.size()) - 1;
  }

  void edge(int from, int to) {
    cfg_.nodes[static_cast<std::size_t>(from)].succs.push_back(to);
    cfg_.nodes[static_cast<std::size_t>(to)].preds.push_back(from);
  }

  void connect(const Frontier& from, int to) {
    for (int f : from) edge(f, to);
  }

  Frontier seq(const std::vector<Stmt>& stmts, Frontier in, Frontier* brk,
               int cont) {
    for (const Stmt& s : stmts) {
      in = one(s, std::move(in), brk, cont);
    }
    return in;
  }

  Frontier one(const Stmt& s, Frontier in, Frontier* brk, int cont) {
    switch (s.kind) {
      case StmtKind::kSimple: {
        const int n = add_node(&s);
        connect(in, n);
        return {n};
      }
      case StmtKind::kReturn: {
        const int n = add_node(&s);
        connect(in, n);
        edge(n, cfg_.exit);
        return {};  // nothing falls through a return
      }
      case StmtKind::kBreak: {
        const int n = add_node(&s);
        connect(in, n);
        if (brk != nullptr) brk->push_back(n);
        return {};
      }
      case StmtKind::kContinue: {
        const int n = add_node(&s);
        connect(in, n);
        if (cont >= 0) edge(n, cont);
        return {};
      }
      case StmtKind::kBlock:
        return seq(s.body, std::move(in), brk, cont);
      case StmtKind::kIf: {
        const int c = add_node(&s);
        connect(in, c);
        Frontier then_out = seq(s.body, {c}, brk, cont);
        Frontier out;
        if (s.has_else) {
          Frontier else_out = seq(s.else_body, {c}, brk, cont);
          out = std::move(then_out);
          out.insert(out.end(), else_out.begin(), else_out.end());
        } else {
          out = std::move(then_out);
          out.push_back(c);  // condition false: skip the branch
        }
        return out;
      }
      case StmtKind::kWhile:
      case StmtKind::kFor: {
        const int c = add_node(&s);  // header: condition / for-parens
        connect(in, c);
        Frontier loop_brk;
        Frontier body_out = seq(s.body, {c}, &loop_brk, c);
        connect(body_out, c);  // back edge: the loop is a join point
        Frontier out{c};       // zero iterations / condition exhausted
        out.insert(out.end(), loop_brk.begin(), loop_brk.end());
        return out;
      }
      case StmtKind::kDoWhile: {
        const int c = add_node(&s);  // trailing condition
        Frontier loop_brk;
        Frontier body_in = std::move(in);
        body_in.push_back(c);  // back edge via the condition
        Frontier body_out = seq(s.body, body_in, &loop_brk, c);
        connect(body_out, c);
        Frontier out{c};
        out.insert(out.end(), loop_brk.begin(), loop_brk.end());
        return out;
      }
      case StmtKind::kSwitch: {
        const int c = add_node(&s);
        connect(in, c);
        Frontier sw_brk;
        Frontier body_out = seq(s.body, {c}, &sw_brk, cont);
        Frontier out = std::move(body_out);
        out.push_back(c);  // no matching case
        out.insert(out.end(), sw_brk.begin(), sw_brk.end());
        return out;
      }
    }
    return in;  // unreachable; keeps -Wswitch quiet for future kinds
  }

  const Function& fn_;
  Cfg cfg_;
};

}  // namespace

Cfg build_cfg(const Function& fn) { return Builder(fn).build(); }

}  // namespace keyguard::lint
