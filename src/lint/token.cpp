#include "lint/token.hpp"

#include <cctype>

namespace keyguard::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-char punctuators the parser or checks care about. Longest first so
// `->` wins over `-` and `<<=` over `<<`. Everything else lexes as a single
// char, which is good enough for statement/brace structure.
constexpr std::string_view kPuncts3[] = {"<<=", ">>=", "...", "->*"};
constexpr std::string_view kPuncts2[] = {"::", "->", "==", "!=", "<=", ">=",
                                         "&&", "||", "<<", ">>", "+=", "-=",
                                         "*=", "/=", "%=", "&=", "|=", "^=",
                                         "++", "--"};

}  // namespace

TokenStream tokenize(std::string_view src) {
  TokenStream out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool line_has_code = false;  // any token emitted on the current line yet

  auto push = [&](TokKind kind, std::string text, int at_line) {
    out.tokens.push_back(Token{kind, std::move(text), at_line});
    line_has_code = true;
  };
  auto newline = [&] {
    ++line;
    line_has_code = false;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }

    // Preprocessor directive: consume to end of line, honoring backslash
    // continuations. `#include "..."` must not produce a String token.
    if (c == '#' && !line_has_code) {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          newline();
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const int at = line;
      const bool own = !line_has_code;
      i += 2;
      std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      std::string text(src.substr(start, i - start));
      // Trim.
      const auto b = text.find_first_not_of(" \t");
      const auto e = text.find_last_not_of(" \t\r");
      text = b == std::string::npos ? std::string{}
                                    : text.substr(b, e - b + 1);
      out.comments.push_back(Comment{at, std::move(text), own});
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') newline();
        ++i;
      }
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }

    // String literals (including a minimal raw-string form).
    if (c == '"' || (c == 'R' && i + 1 < n && src[i + 1] == '"')) {
      const int at = line;
      if (c == 'R') {
        // R"delim( ... )delim"
        std::size_t p = i + 2;
        std::size_t dstart = p;
        while (p < n && src[p] != '(') ++p;
        const std::string delim(src.substr(dstart, p - dstart));
        const std::string closer = ")" + delim + "\"";
        std::size_t body = p + 1;
        const std::size_t end = src.find(closer, body);
        std::string text(src.substr(body, end == std::string_view::npos
                                               ? n - body
                                               : end - body));
        for (char ch : text) {
          if (ch == '\n') newline();
        }
        push(TokKind::kString, std::move(text), at);
        i = end == std::string_view::npos ? n : end + closer.size();
        continue;
      }
      ++i;
      std::size_t start = i;
      std::string text;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < n) {
          text.append(src.substr(start, i - start));
          text.push_back(src[i]);
          text.push_back(src[i + 1]);
          i += 2;
          start = i;
          continue;
        }
        if (src[i] == '\n') newline();  // unterminated; keep line count sane
        ++i;
      }
      text.append(src.substr(start, i - start));
      if (i < n) ++i;  // closing quote
      push(TokKind::kString, std::move(text), at);
      continue;
    }

    // Char literals (also catches digit separators' neighbors safely).
    if (c == '\'') {
      const int at = line;
      ++i;
      std::size_t start = i;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < n) {
          ++i;
        }
        ++i;
      }
      push(TokKind::kCharLit, std::string(src.substr(start, i - start)), at);
      if (i < n) ++i;
      continue;
    }

    if (ident_start(c)) {
      std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      push(TokKind::kIdentifier, std::string(src.substr(start, i - start)),
           line);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      // pp-number shape: digits, letters, dots, ' separators, and exponent
      // signs. Precision is irrelevant to the checks.
      while (i < n && (ident_char(src[i]) || src[i] == '.' ||
                       src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      push(TokKind::kNumber, std::string(src.substr(start, i - start)), line);
      continue;
    }

    // Punctuators, longest match first.
    bool matched = false;
    for (const auto p : kPuncts3) {
      if (src.substr(i, 3) == p) {
        push(TokKind::kPunct, std::string(p), line);
        i += 3;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const auto p : kPuncts2) {
      if (src.substr(i, 2) == p) {
        push(TokKind::kPunct, std::string(p), line);
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    push(TokKind::kPunct, std::string(1, c), line);
    ++i;
  }

  out.last_line = line;
  return out;
}

}  // namespace keyguard::lint
