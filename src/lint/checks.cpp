#include "lint/checks.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace keyguard::lint {
namespace {

// Files allowed to call memset directly (the scrub funnels themselves);
// mirrors keylint v1's MEMSET_WHITELIST.
constexpr std::string_view kMemsetWhitelist[] = {
    "src/core/secure_zero.cpp",
    "src/sim/physmem.cpp",
    "src/sim/swap.cpp",
};

constexpr std::string_view kAllocCallees[] = {"heap_alloc", "mmap_anon",
                                              "write_bignum_heap"};

// Callees that scrub their byte arguments. Anything whose name contains
// "scrub" also counts (from_key_scrubbing, add_key_scrubbing, ...).
constexpr std::string_view kScrubCallees[] = {
    "secure_zero", "heap_clear_free",     "mem_zero", "clear_page",
    "wipe",        "clear_free",          "scrub",    "scrub_private_parts",
};

// Plain-function sinks (KL103) — always suspicious with a tainted argument.
constexpr std::string_view kSinkFunctions[] = {
    "printf", "fprintf", "sprintf", "snprintf", "vsnprintf",
    "vprintf", "puts",   "fputs",   "fwrite",   "syslog",
};
// Method-style sinks: JsonWriter::field/value, Tracer span attrs, metric
// recorders, ad-hoc loggers, and the alert/forensic surface (AlertSink::
// on_alert, AlertEngine::fire, FlightRecorder::write_bundle) — anything
// that serializes its arguments for a human or a file. Only fire when the
// argument is tainted, so the generic names stay quiet on ordinary code.
constexpr std::string_view kSinkMethods[] = {
    "field", "value", "add",  "record",   "set",
    "log",   "log_line", "emit", "on_alert", "fire",
    "write_bundle",
};

constexpr std::string_view kEscapeCallees[] = {
    "push_back", "emplace_back", "emplace", "insert", "push",
};

template <std::size_t N>
bool name_in(std::string_view needle, const std::string_view (&arr)[N]) {
  for (std::size_t i = 0; i < N; ++i) {
    if (arr[i] == needle) return true;
  }
  return false;
}

// Exact match or path-suffix match at a '/' boundary, so the whitelist
// works whether the tool was handed `src` or an absolute path.
bool path_matches(std::string_view path, std::string_view entry) {
  if (path == entry) return true;
  if (path.size() > entry.size() &&
      path.compare(path.size() - entry.size(), entry.size(), entry) == 0 &&
      path[path.size() - entry.size() - 1] == '/') {
    return true;
  }
  return false;
}

bool is_keyword(std::string_view s) {
  static const std::set<std::string_view> kw = {
      "if",     "while",  "for",      "switch",   "return", "sizeof",
      "alignof", "catch", "new",      "delete",   "noexcept", "decltype",
      "static_assert"};
  return kw.count(s) != 0;
}

struct Call {
  std::string callee;    // last component, e.g. "heap_clear_free"
  std::string receiver;  // dotted chain before it ("kernel_", "TraceAttr")
  int line = 0;
  // Argument spans as [begin, end) index pairs into the token vector.
  std::vector<std::pair<std::size_t, std::size_t>> args;
};

// All call expressions in [b, e): identifier directly followed by '('.
std::vector<Call> find_calls(const std::vector<Token>& t, std::size_t b,
                             std::size_t e) {
  std::vector<Call> out;
  for (std::size_t i = b; i < e; ++i) {
    if (t[i].kind != TokKind::kIdentifier || is_keyword(t[i].text)) continue;
    if (i + 1 >= e || !t[i + 1].is("(")) continue;
    Call c;
    c.callee = t[i].text;
    c.line = t[i].line;
    // Receiver chain: a.b->c(...) or Ns::c(...).
    std::size_t j = i;
    std::vector<std::string> recv;
    while (j >= 2 && (t[j - 1].is(".") || t[j - 1].is("->") ||
                      t[j - 1].is("::")) &&
           t[j - 2].kind == TokKind::kIdentifier) {
      recv.insert(recv.begin(), t[j - 2].text);
      j -= 2;
    }
    for (std::size_t k = 0; k < recv.size(); ++k) {
      if (k > 0) c.receiver += ".";
      c.receiver += recv[k];
    }
    // Arguments: split [i+2, match) on top-level commas.
    int depth = 1;
    std::size_t arg_start = i + 2;
    for (std::size_t k = i + 2; k < e; ++k) {
      const Token& tk = t[k];
      if (tk.is("(") || tk.is("[") || tk.is("{")) ++depth;
      else if (tk.is(")") || tk.is("]") || tk.is("}")) {
        --depth;
        if (depth == 0) {
          if (k > arg_start) c.args.emplace_back(arg_start, k);
          break;
        }
      } else if (tk.is(",") && depth == 1) {
        c.args.emplace_back(arg_start, k);
        arg_start = k + 1;
      }
    }
    out.push_back(std::move(c));
  }
  return out;
}

// Dotted variable-ish names in [b, e): maximal ident(./->)ident chains that
// are not immediately called. `::`-qualified chains are included joined
// with "::" (they never collide with tracked locals).
std::vector<std::string> names_in(const std::vector<Token>& t, std::size_t b,
                                  std::size_t e) {
  std::vector<std::string> out;
  std::size_t i = b;
  while (i < e) {
    if (t[i].kind != TokKind::kIdentifier ||
        (i > b && (t[i - 1].is(".") || t[i - 1].is("->") || t[i - 1].is("::")))) {
      ++i;
      continue;
    }
    std::string name = t[i].text;
    std::size_t j = i;
    while (j + 2 < e && (t[j + 1].is(".") || t[j + 1].is("->") ||
                         t[j + 1].is("::")) &&
           t[j + 2].kind == TokKind::kIdentifier) {
      name += t[j + 1].is("::") ? "::" : ".";
      name += t[j + 2].text;
      j += 2;
    }
    const bool called = j + 1 < e && t[j + 1].is("(");
    if (!called && !is_keyword(name)) out.push_back(std::move(name));
    i = j + 1;
  }
  return out;
}

// Left-hand side of the first top-level '=' in [b, e), or "".
std::string lvalue_of(const std::vector<Token>& t, std::size_t b,
                      std::size_t e) {
  int depth = 0;
  std::size_t eq = e;
  for (std::size_t i = b; i < e; ++i) {
    const Token& tk = t[i];
    if (tk.is("(") || tk.is("[") || tk.is("{")) ++depth;
    else if (tk.is(")") || tk.is("]") || tk.is("}")) --depth;
    else if (depth == 0 && tk.kind == TokKind::kPunct && tk.text == "=") {
      eq = i;
      break;
    }
  }
  if (eq == e || eq == b) return {};
  std::size_t j = eq - 1;
  if (t[j].kind != TokKind::kIdentifier) return {};
  std::string name = t[j].text;
  while (j >= b + 2 && (t[j - 1].is(".") || t[j - 1].is("->")) &&
         t[j - 2].kind == TokKind::kIdentifier) {
    name = t[j - 2].text + "." + name;
    j -= 2;
  }
  return name;
}

// name matches tracked var v or one of its fields/base.
bool covers(const std::string& name, const std::string& v) {
  if (name == v) return true;
  if (v.size() > name.size() && v.compare(0, name.size(), name) == 0 &&
      v[name.size()] == '.') {
    return true;  // scrubbing/escaping the base covers the field
  }
  return false;
}

struct AllocEvent {
  std::string var;
  std::string label;
  int line = 0;
  std::string funnel;        // "heap_alloc" | "mmap_anon" | "write_bignum_heap"
  bool locked = false;       // mmap_anon literal lock flag
  bool locked_known = false;
};

struct SinkEvent {
  std::string callee;
  int line = 0;
  std::vector<std::string> args;
};

struct AssignEvent {
  std::string dst;
  std::vector<std::string> rhs;
};

struct StmtFacts {
  std::vector<AllocEvent> allocs;
  std::vector<std::string> scrubbed;
  std::vector<std::string> disposed;  // raw-freed / munmapped / transferred
  std::vector<std::pair<std::string, int>> raw_frees;  // KL102
  std::vector<int> raw_memsets;                        // KL102
  std::vector<SinkEvent> sinks;
  std::vector<AssignEvent> assigns;
  std::vector<std::string> returned;  // names in a return expression
};

bool flag_means_clear(const std::vector<Token>& t, std::size_t b,
                      std::size_t e) {
  bool saw_false = false;
  for (std::size_t i = b; i < e; ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    if (t[i].text == "true") return true;
    if (t[i].text == "false") saw_false = true;
    if (t[i].text.find("clear") != std::string::npos) return true;
  }
  // A runtime-variable flag gets the benefit of the doubt (keylint v1's
  // lenient SCRUB behaviour); a literal `false` does not.
  return !saw_false && b != e;
}

StmtFacts extract_facts(const std::vector<Token>& head, bool is_return) {
  StmtFacts f;
  const std::size_t n = head.size();
  const std::string assigned = lvalue_of(head, 0, n);

  for (const Call& c : find_calls(head, 0, n)) {
    if (name_in(c.callee, kAllocCallees)) {
      AllocEvent a;
      a.funnel = c.callee;
      a.line = c.line;
      for (const auto& [ab, ae] : c.args) {
        for (std::size_t k = ab; k < ae; ++k) {
          if (head[k].kind == TokKind::kString &&
              is_secret_label(head[k].text)) {
            a.label = head[k].text;
          }
        }
      }
      if (c.callee == "mmap_anon" && c.args.size() >= 3) {
        const auto& [fb, fe] = c.args[2];
        for (std::size_t k = fb; k < fe; ++k) {
          if (head[k].ident("true")) {
            a.locked = true;
            a.locked_known = true;
          } else if (head[k].ident("false")) {
            a.locked = false;
            a.locked_known = true;
          }
        }
      }
      if (!a.label.empty()) {
        a.var = assigned.empty()
                    ? "<anon:" + std::to_string(a.line) + ">"
                    : assigned;
        f.allocs.push_back(std::move(a));
      }
      continue;
    }
    const bool scrub_name =
        name_in(c.callee, kScrubCallees) ||
        c.callee.find("scrub") != std::string::npos;
    if (scrub_name) {
      if (!c.receiver.empty()) f.scrubbed.push_back(c.receiver);
      for (const auto& [ab, ae] : c.args) {
        for (auto& nm : names_in(head, ab, ae)) f.scrubbed.push_back(nm);
      }
      continue;
    }
    if (c.callee == "free_bignum" || c.callee == "free_mont_ctx") {
      std::string target;
      if (c.args.size() >= 2) {
        auto nm = names_in(head, c.args[1].first, c.args[1].second);
        if (!nm.empty()) target = nm.front();
      }
      const bool clear =
          c.args.size() >= 3 &&
          flag_means_clear(head, c.args[2].first, c.args[2].second);
      if (!target.empty()) {
        (clear ? f.scrubbed : f.disposed).push_back(target);
      }
      continue;
    }
    if (c.callee == "heap_free") {
      std::string target;
      if (c.args.size() >= 2) {
        auto nm = names_in(head, c.args[1].first, c.args[1].second);
        if (!nm.empty()) target = nm.front();
      } else if (c.args.size() == 1) {
        auto nm = names_in(head, c.args[0].first, c.args[0].second);
        if (!nm.empty()) target = nm.front();
      }
      f.raw_frees.emplace_back(target, c.line);
      if (!target.empty()) f.disposed.push_back(target);
      continue;
    }
    if (c.callee == "munmap") {
      if (c.args.size() >= 2) {
        auto nm = names_in(head, c.args[1].first, c.args[1].second);
        if (!nm.empty()) f.disposed.push_back(nm.front());
      }
      continue;
    }
    if (c.callee == "memset") {
      f.raw_memsets.push_back(c.line);
      // memset(p, 0, n) is still a zeroing attempt: count it as a scrub so
      // KL101 does not double-report what KL102 already flagged.
      if (c.args.size() >= 2) {
        bool zero = false;
        for (std::size_t k = c.args[1].first; k < c.args[1].second; ++k) {
          if (head[k].kind == TokKind::kNumber && head[k].text == "0") {
            zero = true;
          }
        }
        if (zero && !c.args.empty()) {
          auto nm = names_in(head, c.args[0].first, c.args[0].second);
          if (!nm.empty()) f.scrubbed.push_back(nm.front());
        }
      }
      continue;
    }
    if (name_in(c.callee, kEscapeCallees)) {
      for (const auto& [ab, ae] : c.args) {
        for (auto& nm : names_in(head, ab, ae)) f.disposed.push_back(nm);
      }
      continue;
    }
    const bool sink =
        name_in(c.callee, kSinkFunctions) ||
        name_in(c.callee, kSinkMethods) ||
        (c.receiver.size() >= 9 &&
         c.receiver.compare(c.receiver.size() - 9, 9, "TraceAttr") == 0);
    if (sink) {
      SinkEvent s;
      s.callee = c.receiver.empty() ? c.callee : c.receiver + "." + c.callee;
      s.line = c.line;
      for (const auto& [ab, ae] : c.args) {
        for (auto& nm : names_in(head, ab, ae)) s.args.push_back(nm);
      }
      f.sinks.push_back(std::move(s));
      continue;
    }
  }

  if (is_return) {
    f.returned = names_in(head, 0, n);
  } else if (!assigned.empty()) {
    AssignEvent a;
    a.dst = assigned;
    int depth = 0;
    std::size_t eq = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (head[i].is("(") || head[i].is("[") || head[i].is("{")) ++depth;
      else if (head[i].is(")") || head[i].is("]") || head[i].is("}")) --depth;
      else if (depth == 0 && head[i].kind == TokKind::kPunct &&
               head[i].text == "=") {
        eq = i;
        break;
      }
    }
    if (eq != n) {
      // Taint flows through alias-style assignments (`view = secret`,
      // `ptr = secret + off`), not through call results (`elapsed =
      // time_op(k, p, secret)`): only depth-0 names of the RHS count.
      std::vector<Token> top;
      int d = 0;
      for (std::size_t i = eq + 1; i < n; ++i) {
        if (head[i].is("(") || head[i].is("[") || head[i].is("{")) {
          ++d;
          continue;
        }
        if (head[i].is(")") || head[i].is("]") || head[i].is("}")) {
          --d;
          continue;
        }
        if (d == 0) top.push_back(head[i]);
      }
      a.rhs = names_in(top, 0, top.size());
      // `other.field = v;` with a bare name on the right transfers
      // ownership into the other object (keystore slots, key structs);
      // the secret stays tainted but is no longer this function's leak.
      if (a.dst.find('.') != std::string::npos && a.rhs.size() == 1) {
        bool bare = true;
        for (std::size_t i = eq + 1; i < n; ++i) {
          if (head[i].kind != TokKind::kIdentifier && !head[i].is(".") &&
              !head[i].is("->")) {
            bare = false;
          }
        }
        if (bare) f.disposed.push_back(a.rhs.front());
      }
    }
    f.assigns.push_back(std::move(a));
  }
  return f;
}

// `if (x == 0)` / `if (x == nullptr)` / `if (!x)`: the guarded body runs
// only when the allocation failed, so `x` is not live inside it.
std::string null_tested_name(const std::vector<Token>& head) {
  const auto names = names_in(head, 0, head.size());
  if (names.size() != 1) return {};
  for (std::size_t i = 0; i + 1 < head.size(); ++i) {
    if (head[i].is("==") &&
        (head[i + 1].is("0") || head[i + 1].ident("nullptr"))) {
      return names.front();
    }
  }
  if (!head.empty() && head.front().is("!")) return names.front();
  return {};
}

// ---------------------------------------------------------------------------
// KL101 + KL103 dataflow state.

struct AllocSite {
  int line;
  std::string label;
  bool operator<(const AllocSite& o) const {
    return line != o.line ? line < o.line : label < o.label;
  }
  bool operator==(const AllocSite& o) const {
    return line == o.line && label == o.label;
  }
};

struct FlowState {
  std::map<std::string, std::set<AllocSite>> live;  // unscrubbed secrets
  std::set<std::string> taint;                      // secret-derived values

  bool join(const FlowState& o) {  // returns true when changed
    bool changed = false;
    for (const auto& [k, v] : o.live) {
      auto& dst = live[k];
      for (const auto& s : v) changed |= dst.insert(s).second;
    }
    for (const auto& t : o.taint) changed |= taint.insert(t).second;
    return changed;
  }
};

void erase_covered(std::map<std::string, std::set<AllocSite>>& live,
                   const std::string& name) {
  for (auto it = live.begin(); it != live.end();) {
    it = covers(name, it->first) ? live.erase(it) : std::next(it);
  }
}

bool tainted(const std::set<std::string>& taint, const std::string& name) {
  for (const auto& t : taint) {
    if (covers(t, name) || covers(name, t)) return true;
  }
  return false;
}

class FunctionFlow {
 public:
  FunctionFlow(const std::string& file, const Function& fn,
               const AllowOracle& allows)
      : file_(file), fn_(fn), allows_(allows), cfg_(build_cfg(fn)) {
    facts_.resize(cfg_.nodes.size());
    std::map<const Stmt*, std::size_t> node_of;
    for (std::size_t i = 0; i < cfg_.nodes.size(); ++i) {
      const Stmt* s = cfg_.nodes[i].stmt;
      if (s != nullptr) {
        facts_[i] = extract_facts(s->head, s->kind == StmtKind::kReturn);
        node_of[s] = i;
      }
    }
    apply_null_guards(fn_.body, node_of);
  }

  // Failure-guard refinement: statements under `if (x == 0) ...` see x as
  // already gone (the allocation failed), so the guard's early return is
  // not reported as a leak of x.
  void apply_null_guards(const std::vector<Stmt>& stmts,
                         const std::map<const Stmt*, std::size_t>& node_of) {
    for (const Stmt& s : stmts) {
      if (s.kind == StmtKind::kIf) {
        const std::string nulled = null_tested_name(s.head);
        if (!nulled.empty()) mark_disposed(s.body, nulled, node_of);
      }
      apply_null_guards(s.body, node_of);
      apply_null_guards(s.else_body, node_of);
    }
  }

  void mark_disposed(const std::vector<Stmt>& stmts, const std::string& var,
                     const std::map<const Stmt*, std::size_t>& node_of) {
    for (const Stmt& s : stmts) {
      const auto it = node_of.find(&s);
      if (it != node_of.end()) facts_[it->second].disposed.push_back(var);
      mark_disposed(s.body, var, node_of);
      mark_disposed(s.else_body, var, node_of);
    }
  }

  void run(std::vector<Finding>& out) {
    const std::size_t n = cfg_.nodes.size();
    std::vector<FlowState> in(n), outs(n);
    std::vector<bool> dirty(n, true);
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (!dirty[i]) continue;
        dirty[i] = false;
        FlowState st;
        for (int p : cfg_.nodes[i].preds) {
          st.join(outs[static_cast<std::size_t>(p)]);
        }
        in[i] = st;
        transfer(i, st);
        if (!(st.live == outs[i].live && st.taint == outs[i].taint)) {
          outs[i] = std::move(st);
          for (int s : cfg_.nodes[i].succs) {
            dirty[static_cast<std::size_t>(s)] = true;
          }
          changed = true;
        }
      }
    }

    // Exit checks. Each return node and each fall-off-the-end predecessor
    // of the synthetic exit is an exit path of its own.
    for (std::size_t i = 0; i < n; ++i) {
      if (cfg_.nodes[i].is_return) {
        record_leaks(outs[i], cfg_.nodes[i].stmt->first_line);
      }
    }
    for (int p : cfg_.nodes[static_cast<std::size_t>(cfg_.exit)].preds) {
      const auto pi = static_cast<std::size_t>(p);
      if (!cfg_.nodes[pi].is_return) {
        record_leaks(outs[pi], fn_.last_line);
      }
    }

    for (const auto& [key, exits] : leaks_) {
      const auto& [var, site] = key;
      std::ostringstream msg;
      msg << "secret-labelled allocation `" << display_var(var) << "` (\""
          << site.label << "\") is not scrubbed on every exit path (leaks at "
          << (exits.size() == 1 ? "exit line " : "exit lines ");
      bool first = true;
      for (int e : exits) {
        if (!first) msg << ", ";
        msg << e;
        first = false;
      }
      msg << "); scrub or annotate allow(unscrubbed)";
      out.push_back(
          Finding{"KL101", file_, site.line, msg.str(), false, {}});
    }
    for (const auto& [line, var, callee] : sink_hits_) {
      std::ostringstream msg;
      msg << "secret-derived value `" << var << "` flows into sink `" << callee
          << "`; secrets must never reach logging/serialization sinks "
             "(annotate allow(sink-flow) only for deliberately-vulnerable "
             "paths)";
      out.push_back(Finding{"KL103", file_, line, msg.str(), false, {}});
    }
  }

 private:
  static std::string display_var(const std::string& v) {
    return v.rfind("<anon:", 0) == 0 ? "<temporary>" : v;
  }

  void transfer(std::size_t node, FlowState& st) {
    const StmtFacts& f = facts_[node];
    const Stmt* s = cfg_.nodes[node].stmt;
    for (const auto& nm : f.scrubbed) {
      erase_covered(st.live, nm);
    }
    for (const auto& nm : f.disposed) {
      erase_covered(st.live, nm);
    }
    for (const auto& nm : f.returned) {
      erase_covered(st.live, nm);  // ownership escapes to the caller
    }
    for (const AllocEvent& a : f.allocs) {
      if (s != nullptr && allows_.statement_allows(*s, "unscrubbed")) continue;
      if (allows_.function_allows(fn_, "unscrubbed")) continue;
      st.live[a.var] = {AllocSite{a.line, a.label}};
      st.taint.insert(a.var);
    }
    for (const AssignEvent& a : f.assigns) {
      for (const auto& r : a.rhs) {
        if (tainted(st.taint, r)) {
          st.taint.insert(a.dst);
          break;
        }
      }
    }
    for (const SinkEvent& snk : f.sinks) {
      for (const auto& arg : snk.args) {
        if (tainted(st.taint, arg)) {
          if (s != nullptr && allows_.statement_allows(*s, "sink-flow")) break;
          sink_hits_.insert({snk.line, arg, snk.callee});
          break;
        }
      }
    }
  }

  void record_leaks(const FlowState& st, int exit_line) {
    for (const auto& [var, sites] : st.live) {
      for (const AllocSite& site : sites) {
        leaks_[{var, site}].insert(exit_line);
      }
    }
  }

  const std::string& file_;
  const Function& fn_;
  const AllowOracle& allows_;
  Cfg cfg_;
  std::vector<StmtFacts> facts_;
  std::map<std::pair<std::string, AllocSite>, std::set<int>> leaks_;
  std::set<std::tuple<int, std::string, std::string>> sink_hits_;
};

// ---------------------------------------------------------------------------
// Statement-level walks (KL102, KL104 sites inside functions).

void walk_stmts(const std::vector<Stmt>& stmts,
                const std::function<void(const Stmt&)>& fn) {
  for (const Stmt& s : stmts) {
    fn(s);
    walk_stmts(s.body, fn);
    walk_stmts(s.else_body, fn);
  }
}

bool function_mentions_secret(const Function& fn) {
  for (const Token& t : fn.signature) {
    if (t.kind == TokKind::kString && is_secret_label(t.text)) return true;
  }
  bool found = false;
  walk_stmts(fn.body, [&](const Stmt& s) {
    for (const Token& t : s.head) {
      if (t.kind == TokKind::kString && is_secret_label(t.text)) found = true;
    }
  });
  return found;
}

}  // namespace

bool is_secret_label(std::string_view s) {
  static constexpr std::string_view kSubstrings[] = {
      "BN_MONT_CTX",       "PEM ",        "DER ",
      "CRT intermediate",  "session secret", "rsa_aligned",
      "key vault",         "keystore pool slot", "keystore master key",
      "sealed key blob",
  };
  for (const auto sub : kSubstrings) {
    if (s.find(sub) != std::string_view::npos) return true;
  }
  // "RSA bignum d|p|q|dmp1|dmq1|iqmp" — n and e are public.
  constexpr std::string_view kRsa = "RSA bignum ";
  const auto pos = s.find(kRsa);
  if (pos != std::string_view::npos && pos + kRsa.size() < s.size()) {
    const char c = s[pos + kRsa.size()];
    return c == 'd' || c == 'p' || c == 'q' || c == 'i';
  }
  return false;
}

bool is_must_lock_label(std::string_view s) {
  static constexpr std::string_view kMustLock[] = {
      "rsa_aligned",
      "key vault",
      "keystore pool slot",
      "keystore master key",
  };
  for (const auto sub : kMustLock) {
    if (s.find(sub) != std::string_view::npos) return true;
  }
  return false;
}

const std::vector<CheckInfo>& check_catalogue() {
  static const std::vector<CheckInfo> cat = {
      {"KL101",
       "secret-labelled allocation not scrubbed on every exit path",
       "Path-sensitive: every early return, branch join and loop exit must "
       "see the secret scrubbed or ownership transferred. Scrub, transfer, "
       "or annotate `// keylint: allow(unscrubbed) — why`."},
      {"KL102",
       "raw memset/heap_free bypasses the scrub funnels",
       "Zeroing must go through core::secure_zero or the sim clear funnels; "
       "secret chunks must be clear-freed. Annotate allow(raw-memset) / "
       "allow(raw-free) on the statement for deliberately-vulnerable paths."},
      {"KL103",
       "secret-derived value reaches a logging/serialization sink",
       "A value derived from a secret-labelled allocation flows through "
       "local assignments into printf/JsonWriter/Tracer/metric sinks or "
       "the alert/forensic surface (AlertSink::on_alert, AlertEngine::"
       "fire, FlightRecorder::write_bundle)."},
      {"KL104",
       "key-material page allocated outside an mlock-guaranteeing funnel",
       "Allocations carrying a must-lock label (rsa_aligned, key vault, "
       "keystore pool slot, keystore master key) and SecureBuffer/"
       "SecureRsaKey working copies are audited into the locked-memory "
       "compliance report; an unlocked site is a violation unless annotated "
       "allow(unlocked)."},
  };
  return cat;
}

FileCheckResult run_checks(const std::string& path, const TokenStream& ts,
                           const std::vector<Function>& fns,
                           const AllowOracle& allows) {
  FileCheckResult res;
  bool memset_ok = false;
  for (const auto entry : kMemsetWhitelist) {
    memset_ok = memset_ok || path_matches(path, entry);
  }

  for (const Function& fn : fns) {
    const bool secret_fn = function_mentions_secret(fn);

    // KL102 + KL104 sites: one linear walk, allow bound to the statement.
    walk_stmts(fn.body, [&](const Stmt& s) {
      const StmtFacts f = extract_facts(s.head, s.kind == StmtKind::kReturn);
      for (const auto& [target, line] : f.raw_frees) {
        if (!secret_fn) continue;
        if (allows.statement_allows(s, "raw-free")) continue;
        res.findings.push_back(Finding{
            "KL102", path, line,
            "raw heap_free" + (target.empty() ? std::string{}
                                              : " of `" + target + "`") +
                " in a secret-handling function leaves the bytes behind; use "
                "heap_clear_free or annotate allow(raw-free)",
            false,
            {}});
      }
      for (int line : f.raw_memsets) {
        if (memset_ok) continue;
        if (allows.statement_allows(s, "raw-memset")) continue;
        res.findings.push_back(Finding{
            "KL102", path, line,
            "raw memset outside the scrub whitelist is routinely elided by "
            "dead-store elimination; use core::secure_zero / "
            "PhysicalMemory::fill or annotate allow(raw-memset)",
            false,
            {}});
      }
      for (const AllocEvent& a : f.allocs) {
        if (a.funnel == "mmap_anon" && is_must_lock_label(a.label)) {
          const bool allowed = allows.statement_allows(s, "unlocked");
          ComplianceSite site;
          site.file = path;
          site.line = a.line;
          site.funnel = "mmap_anon";
          site.label = a.label;
          site.locked = a.locked_known && a.locked;
          if (!a.locked_known) {
            site.status = "compliant";
            site.detail = "lock flag is not a literal; not provable here";
          } else if (a.locked) {
            site.status = "compliant";
            site.detail = "mlocked at allocation";
          } else if (allowed) {
            site.status = "allowed";
            site.detail = "allow(unlocked) annotation on the statement";
          } else {
            site.status = "violation";
            site.detail = "page holds key material but is swappable";
          }
          res.sites.push_back(site);
          if (site.status == "violation") {
            res.findings.push_back(Finding{
                "KL104", path, a.line,
                "key-material page (\"" + a.label +
                    "\") allocated without mlock; lock it or annotate "
                    "allow(unlocked) with the reason it may swap",
                false,
                {}});
          }
        } else if (a.funnel == "heap_alloc" && is_must_lock_label(a.label)) {
          const bool allowed = allows.statement_allows(s, "unlocked");
          ComplianceSite site;
          site.file = path;
          site.line = a.line;
          site.funnel = "heap_alloc";
          site.label = a.label;
          site.locked = false;
          site.status = allowed ? "allowed" : "violation";
          site.detail = allowed
                            ? "allow(unlocked) annotation on the statement"
                            : "simulated heap is never mlocked";
          res.sites.push_back(site);
          if (site.status == "violation") {
            res.findings.push_back(Finding{
                "KL104", path, a.line,
                "key-material buffer (\"" + a.label +
                    "\") allocated on the swappable heap; use an mlocked "
                    "page funnel or annotate allow(unlocked)",
                false,
                {}});
          }
        }
      }
    });

    // KL101 + KL103 dataflow.
    FunctionFlow flow(path, fn, allows);
    flow.run(res.findings);
  }

  // KL104 funnel-type sites: uses of the mlock-guaranteeing wrappers are
  // recorded as compliant entries so the report enumerates where key
  // material legitimately lives. The defining files themselves are skipped.
  const bool defines_funnel =
      path.find("core/secure_buffer") != std::string::npos ||
      path.find("core/secure_rsa") != std::string::npos;
  if (!defines_funnel) {
    const auto& t = ts.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdentifier) continue;
      if (t[i].text != "SecureBuffer" && t[i].text != "SecureRsaKey") continue;
      if (i + 1 >= t.size()) continue;
      const Token& nx = t[i + 1];
      const bool decl_or_ctor = nx.kind == TokKind::kIdentifier ||
                                nx.is("(") || nx.is("{");
      const bool factory = nx.is("::") && i + 2 < t.size() &&
                           t[i + 2].kind == TokKind::kIdentifier &&
                           t[i + 2].text.find("from_key") == 0;
      if (!decl_or_ctor && !factory) continue;
      ComplianceSite site;
      site.file = path;
      site.line = t[i].line;
      site.funnel = t[i].text;
      site.locked = true;
      site.status = "compliant";
      site.detail = t[i].text == "SecureBuffer"
                        ? "page-aligned, mlocked, canaried, zero-on-destroy"
                        : "mlocked working copy, scrubbed on destruction";
      res.sites.push_back(site);
    }
  }

  std::stable_sort(res.findings.begin(), res.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line != b.line ? a.line < b.line
                                             : a.check < b.check;
                   });
  std::stable_sort(res.sites.begin(), res.sites.end(),
                   [](const ComplianceSite& a, const ComplianceSite& b) {
                     return a.line < b.line;
                   });
  return res;
}

}  // namespace keyguard::lint
