// Lexer for keylint2 (src/lint): C++ source -> token stream.
//
// keylint v1 (tools/keylint.py) matched regexes against raw lines, which is
// why it could not see control flow: a `{` inside a string literal broke its
// brace counting, a wrapped condition hid `return` from it, and an allow
// annotation had no statement to bind to. Everything downstream of this
// lexer (parse.hpp, cfg.hpp, checks.hpp) works on tokens instead.
//
// Scope: this is a *linter* lexer, not a compiler front end. It understands
// exactly what the checks need — identifiers, literals (string contents are
// preserved: SECRET_LABEL matching happens on them), multi-char operators
// that affect statement structure (`::`, `->`, `==`, ...), line numbers for
// findings, and `//` comments kept separately so `keylint: allow(...)`
// annotations can be bound to statements. Preprocessor directives and block
// comments are consumed and dropped.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace keyguard::lint {

enum class TokKind {
  kIdentifier,
  kNumber,
  kString,   // text = literal contents without quotes
  kCharLit,  // text = literal contents without quotes
  kPunct,    // text = operator/punctuator spelling
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based

  bool is(std::string_view s) const {
    return text == s;
  }
  bool ident(std::string_view s) const {
    return kind == TokKind::kIdentifier && text == s;
  }
};

struct Comment {
  int line = 0;
  std::string text;     // after the `//`, trimmed
  bool own_line = false;  // nothing but whitespace preceded it on its line
};

struct TokenStream {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  int last_line = 0;  // line count of the source
};

/// Tokenizes `source`. Never fails: unrecognized bytes become single-char
/// punct tokens (the parser skips what it does not understand).
TokenStream tokenize(std::string_view source);

}  // namespace keyguard::lint
