#include "lint/report.hpp"

#include <sstream>

#include "util/json.hpp"

namespace keyguard::lint {

std::string render_text(const std::vector<Finding>& findings) {
  std::ostringstream out;
  std::size_t active = 0;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": " << f.check << " " << f.message;
    if (f.waived) {
      out << "  [waived: " << f.waive_reason << "]";
    } else {
      ++active;
    }
    out << "\n";
  }
  if (findings.empty()) {
    out << "keylint2: clean\n";
  } else {
    out << "keylint2: " << active << " finding" << (active == 1 ? "" : "s");
    if (active != findings.size()) {
      out << " (" << (findings.size() - active) << " waived)";
    }
    out << "\n";
  }
  return out.str();
}

std::string render_sarif(const std::vector<Finding>& findings) {
  util::JsonWriter w;
  w.begin_object();
  w.field("$schema",
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
          "Schemata/sarif-schema-2.1.0.json");
  w.field("version", "2.1.0");
  w.key("runs").begin_array();
  w.begin_object();

  w.key("tool").begin_object();
  w.key("driver").begin_object();
  w.field("name", "keylint2");
  w.field("informationUri",
          "https://example.invalid/keyguard/docs/DESIGN.md#static-analysis");
  w.field("version", "2.0.0");
  w.key("rules").begin_array();
  for (const CheckInfo& c : check_catalogue()) {
    w.begin_object();
    w.field("id", c.id);
    w.key("shortDescription").begin_object().field("text", c.summary)
        .end_object();
    w.key("fullDescription").begin_object().field("text", c.help)
        .end_object();
    w.key("defaultConfiguration").begin_object().field("level", "error")
        .end_object();
    w.end_object();
  }
  w.end_array();  // rules
  w.end_object();  // driver
  w.end_object();  // tool

  w.key("results").begin_array();
  for (const Finding& f : findings) {
    w.begin_object();
    w.field("ruleId", f.check);
    w.field("level", f.waived ? "none" : "error");
    if (f.waived) w.field("kind", "informational");
    w.key("message").begin_object();
    std::string text = f.message;
    if (f.waived) text += " [waived: " + f.waive_reason + "]";
    w.field("text", text);
    w.end_object();
    w.key("locations").begin_array();
    w.begin_object();
    w.key("physicalLocation").begin_object();
    w.key("artifactLocation").begin_object();
    w.field("uri", f.file);
    w.field("uriBaseId", "SRCROOT");
    w.end_object();
    w.key("region").begin_object();
    w.field("startLine", f.line);
    w.end_object();
    w.end_object();  // physicalLocation
    w.end_object();
    w.end_array();  // locations
    w.end_object();  // result
  }
  w.end_array();  // results

  w.key("originalUriBaseIds").begin_object();
  w.key("SRCROOT").begin_object().field("uri", "file:///./").end_object();
  w.end_object();

  w.end_object();  // run
  w.end_array();   // runs
  w.end_object();
  return w.str();
}

std::string render_compliance(const std::vector<ComplianceSite>& sites) {
  std::size_t compliant = 0, violations = 0, allowed = 0;
  for (const ComplianceSite& s : sites) {
    if (s.status == "violation") ++violations;
    else if (s.status == "allowed") ++allowed;
    else ++compliant;
  }

  util::JsonWriter w;
  w.begin_object();
  w.field("report", "locked_memory_compliance");
  w.field("schema_version", 2);
  w.field("tool", "keylint2");
  w.key("audited_funnels").begin_array();
  w.value("mmap_anon");
  w.value("heap_alloc");
  w.value("SecureBuffer");
  w.value("SecureRsaKey");
  w.end_array();
  w.key("sites").begin_array();
  for (const ComplianceSite& s : sites) {
    w.begin_object();
    w.field("file", s.file);
    w.field("line", s.line);
    w.field("funnel", s.funnel);
    if (!s.label.empty()) w.field("label", s.label);
    w.field("locked", s.locked);
    w.field("status", s.status);
    w.field("detail", s.detail);
    w.end_object();
  }
  w.end_array();
  w.key("summary").begin_object();
  w.field("sites", static_cast<std::uint64_t>(sites.size()));
  w.field("compliant", static_cast<std::uint64_t>(compliant));
  w.field("violations", static_cast<std::uint64_t>(violations));
  w.field("allowed", static_cast<std::uint64_t>(allowed));
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace keyguard::lint
