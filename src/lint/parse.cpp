#include "lint/parse.hpp"

#include <algorithm>

namespace keyguard::lint {
namespace {

bool is_container_keyword(const Token& t) {
  return t.kind == TokKind::kIdentifier &&
         (t.text == "namespace" || t.text == "struct" || t.text == "class" ||
          t.text == "union" || t.text == "extern");
}

class Parser {
 public:
  explicit Parser(const std::vector<Token>& toks) : t_(toks) {}

  std::vector<Function> run() {
    std::size_t stmt_start = 0;
    while (!eof()) {
      const Token& tk = cur();
      if (tk.is(";") || tk.is("}")) {
        ++i_;
        stmt_start = i_;
        continue;
      }
      if (tk.is("{")) {
        handle_container_brace(stmt_start);
        stmt_start = i_;
        continue;
      }
      ++i_;
    }
    return std::move(fns_);
  }

 private:
  bool eof() const { return i_ >= t_.size(); }
  const Token& cur() const { return t_[i_]; }
  const Token* peek(std::size_t ahead = 0) const {
    return i_ + ahead < t_.size() ? &t_[i_ + ahead] : nullptr;
  }

  // Called with cur() == "{" at container (namespace/class/file) scope;
  // pending signature tokens are [stmt_start, i_). Decides between entering
  // a container scope, skipping an initializer, and parsing a function.
  void handle_container_brace(std::size_t stmt_start) {
    const std::size_t open = i_;
    if (open == stmt_start) {
      ++i_;  // anonymous scope: scan inside
      return;
    }
    const Token& first = t_[stmt_start];
    if (first.ident("namespace") || first.ident("struct") ||
        first.ident("class") || first.ident("union") ||
        first.ident("extern")) {
      ++i_;  // transparent container: member functions are found inside
      return;
    }
    if (first.ident("enum")) {
      skip_balanced_braces();
      return;
    }
    bool has_paren = false;
    bool has_toplevel_assign = false;
    int depth = 0;
    for (std::size_t j = stmt_start; j < open; ++j) {
      const Token& t = t_[j];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(" || t.text == "[") {
        if (t.text == "(" && depth == 0) has_paren = true;
        ++depth;
      } else if (t.text == ")" || t.text == "]") {
        --depth;
      } else if (t.text == "=" && depth == 0) {
        has_toplevel_assign = true;
      }
    }
    if (has_toplevel_assign || !has_paren ||
        std::any_of(t_.begin() + static_cast<std::ptrdiff_t>(stmt_start),
                    t_.begin() + static_cast<std::ptrdiff_t>(open),
                    [](const Token& t) { return is_container_keyword(t); })) {
      skip_balanced_braces();  // aggregate init / lambda / unknown construct
      return;
    }

    Function fn;
    fn.signature.assign(t_.begin() + static_cast<std::ptrdiff_t>(stmt_start),
                        t_.begin() + static_cast<std::ptrdiff_t>(open));
    fn.signature_line = fn.signature.front().line;
    fn.body_open_line = t_[open].line;
    fn.name = signature_name(stmt_start, open);
    ++i_;  // consume '{'
    fn.body = parse_block();
    fn.last_line = i_ > 0 ? t_[i_ - 1].line : fn.body_open_line;
    fns_.push_back(std::move(fn));
  }

  // Best-effort qualified name: identifier chain before the first
  // top-level '(' of the signature.
  std::string signature_name(std::size_t begin, std::size_t end) const {
    int depth = 0;
    std::size_t paren = end;
    for (std::size_t j = begin; j < end; ++j) {
      const Token& t = t_[j];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(") {
        if (depth == 0) {
          paren = j;
          break;
        }
        ++depth;
      } else if (t.text == "<" ) {
        ++depth;
      } else if (t.text == ">") {
        if (depth > 0) --depth;
      }
    }
    if (paren == end || paren == begin) return {};
    std::size_t j = paren - 1;
    if (t_[j].kind != TokKind::kIdentifier) return {};
    std::string name = t_[j].text;
    while (j >= 2 && t_[j - 1].is("::") &&
           t_[j - 2].kind == TokKind::kIdentifier) {
      name = t_[j - 2].text + "::" + name;
      j -= 2;
      if (j < 2) break;
    }
    return name;
  }

  void skip_balanced_braces() {
    // cur() == "{"
    int depth = 0;
    while (!eof()) {
      if (cur().is("{")) ++depth;
      if (cur().is("}")) {
        --depth;
        if (depth == 0) {
          ++i_;
          return;
        }
      }
      ++i_;
    }
  }

  // Consumes tokens between the '(' at cur() and its match; returns the
  // contents (exclusive of the outer parens).
  std::vector<Token> balanced_parens() {
    std::vector<Token> out;
    if (eof() || !cur().is("(")) return out;
    ++i_;  // outer '('
    int depth = 1;
    while (!eof()) {
      const Token& t = cur();
      if (t.is("(")) {
        ++depth;
      } else if (t.is(")")) {
        --depth;
        if (depth == 0) {
          ++i_;
          return out;
        }
      }
      out.push_back(t);
      ++i_;
    }
    return out;
  }

  static void span_lines(Stmt& s) {
    for (const Token& t : s.head) {
      if (s.first_line == 0) s.first_line = t.line;
      s.last_line = std::max(s.last_line, t.line);
    }
    for (const Stmt& c : s.body) {
      if (s.first_line == 0) s.first_line = c.first_line;
      s.last_line = std::max(s.last_line, c.last_line);
    }
    for (const Stmt& c : s.else_body) {
      s.last_line = std::max(s.last_line, c.last_line);
    }
  }

  // Statements until the matching '}' (which is consumed).
  std::vector<Stmt> parse_block() {
    std::vector<Stmt> out;
    while (!eof()) {
      if (cur().is("}")) {
        ++i_;
        return out;
      }
      if (cur().is(";")) {
        ++i_;
        continue;
      }
      out.push_back(parse_stmt());
    }
    return out;
  }

  Stmt parse_stmt() {
    Stmt s;
    if (eof()) return s;
    const Token& tk = cur();
    const int at = tk.line;
    s.first_line = s.last_line = at;

    if (tk.is("{")) {
      s.kind = StmtKind::kBlock;
      ++i_;
      s.body = parse_block();
      span_lines(s);
      return s;
    }
    if (tk.ident("if")) {
      s.kind = StmtKind::kIf;
      ++i_;
      skip_if_constexpr_decorations();
      s.head = balanced_parens();
      s.body.push_back(parse_stmt());
      if (!eof() && cur().ident("else")) {
        s.has_else = true;
        ++i_;
        s.else_body.push_back(parse_stmt());
      }
      span_lines(s);
      return s;
    }
    if (tk.ident("while")) {
      s.kind = StmtKind::kWhile;
      ++i_;
      s.head = balanced_parens();
      s.body.push_back(parse_stmt());
      span_lines(s);
      return s;
    }
    if (tk.ident("for")) {
      s.kind = StmtKind::kFor;
      ++i_;
      s.head = balanced_parens();
      s.body.push_back(parse_stmt());
      span_lines(s);
      return s;
    }
    if (tk.ident("do")) {
      s.kind = StmtKind::kDoWhile;
      ++i_;
      s.body.push_back(parse_stmt());
      if (!eof() && cur().ident("while")) {
        ++i_;
        s.head = balanced_parens();
      }
      if (!eof() && cur().is(";")) ++i_;
      span_lines(s);
      return s;
    }
    if (tk.ident("switch")) {
      s.kind = StmtKind::kSwitch;
      ++i_;
      s.head = balanced_parens();
      if (!eof() && cur().is("{")) {
        ++i_;
        s.body = parse_block();
      }
      span_lines(s);
      return s;
    }
    if (tk.ident("return")) {
      s.kind = StmtKind::kReturn;
      ++i_;
      consume_simple_into(s.head);
      span_lines(s);
      if (s.first_line == 0) s.first_line = s.last_line = at;
      return s;
    }
    if (tk.ident("break") || tk.ident("continue")) {
      s.kind = tk.ident("break") ? StmtKind::kBreak : StmtKind::kContinue;
      ++i_;
      if (!eof() && cur().is(";")) ++i_;
      return s;
    }
    if (tk.ident("case") || tk.ident("default")) {
      // Label marker inside a switch body: consume through ':' and yield an
      // empty statement; the section's statements follow in the block.
      ++i_;
      while (!eof() && !cur().is(":") && !cur().is("}")) ++i_;
      if (!eof() && cur().is(":")) ++i_;
      s.kind = StmtKind::kSimple;
      return s;
    }
    if (tk.ident("else")) {
      ++i_;  // orphan else (misparse guard): drop it
      s.kind = StmtKind::kSimple;
      return s;
    }

    s.kind = StmtKind::kSimple;
    consume_simple_into(s.head);
    span_lines(s);
    if (s.first_line == 0) s.first_line = s.last_line = at;
    return s;
  }

  // `if constexpr (...)`: skip the constexpr token so balanced_parens sees
  // the condition.
  void skip_if_constexpr_decorations() {
    if (!eof() && cur().ident("constexpr")) ++i_;
  }

  // Consumes a plain statement's tokens up to the terminating ';' (eaten,
  // not stored). Parens/brackets/braces inside the statement (calls,
  // lambdas, init-lists, local struct definitions) are swallowed whole.
  void consume_simple_into(std::vector<Token>& out) {
    int depth = 0;
    while (!eof()) {
      const Token& t = cur();
      if (depth == 0 && t.is(";")) {
        ++i_;
        return;
      }
      if (depth == 0 && t.is("}")) {
        return;  // missing semicolon / end of block: do not eat the brace
      }
      if (t.is("(") || t.is("[") || t.is("{")) ++depth;
      if (t.is(")") || t.is("]") || t.is("}")) --depth;
      out.push_back(t);
      ++i_;
    }
  }

  const std::vector<Token>& t_;
  std::size_t i_ = 0;
  std::vector<Function> fns_;
};

}  // namespace

std::vector<Function> parse_functions(const TokenStream& ts) {
  return Parser(ts.tokens).run();
}

}  // namespace keyguard::lint
