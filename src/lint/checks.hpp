// keylint2 check catalogue and per-file check driver.
//
//   KL101  secret-labelled allocation not scrubbed on EVERY exit path.
//          Path-sensitive successor of keylint v1's KL003 ("a scrub exists
//          somewhere in the body"): a forward dataflow pass over the CFG
//          tracks each secret allocation per path; early returns, branch
//          joins and loop exits are checked individually, so a scrub that
//          covers only the happy path no longer passes.
//   KL102  raw memset / raw heap_free funnel bypass (ports of KL001/KL002,
//          scope-aware: an allow annotation binds to the statement, not a
//          3-line window).
//   KL103  secret-to-sink flow: a value derived from a secret-labelled
//          allocation reaches a logging/JSON/trace/printf sink through
//          local assignments.
//   KL104  locked-memory audit: allocations of key-material pages (the
//          must-lock label set, SecureBuffer/SecureRsaKey funnels) must go
//          through an mlock-guaranteeing funnel; every audited site is
//          emitted into the machine-readable compliance report (the
//          KeepTower MEMORY_LOCKING_AUDIT idiom).
//
// Annotation grammar (bound to the statement, or to the function for
// `unscrubbed` — see analyzer.cpp):
//
//   // keylint: allow(raw-free|raw-memset|unscrubbed|sink-flow|unlocked[, ...]) — why
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/cfg.hpp"
#include "lint/parse.hpp"
#include "lint/token.hpp"

namespace keyguard::lint {

struct Finding {
  std::string check;  // "KL101".."KL104"
  std::string file;   // repo-relative path
  int line = 0;
  std::string message;
  bool waived = false;
  std::string waive_reason;
};

/// One audited allocation site in the locked-memory compliance report.
struct ComplianceSite {
  std::string file;
  int line = 0;
  std::string funnel;  // "mmap_anon" | "heap_alloc" | "SecureBuffer" | "SecureRsaKey"
  std::string label;   // allocation label when the funnel takes one
  bool locked = false;
  std::string status;  // "compliant" | "violation" | "allowed"
  std::string detail;
};

struct CheckInfo {
  const char* id;
  const char* summary;  // one line, shown by --list-checks and in SARIF rules
  const char* help;
};

const std::vector<CheckInfo>& check_catalogue();

/// Annotation oracle the checks consult (implemented over the comment
/// stream by analyzer.cpp).
class AllowOracle {
 public:
  virtual ~AllowOracle() = default;
  /// allow(kind) on any line of `s`, or on the own-line comment run
  /// immediately above its first line.
  virtual bool statement_allows(const Stmt& s, std::string_view kind) const = 0;
  /// allow(kind) above the signature; for "unscrubbed" also anywhere in the
  /// body (keylint v1 compatibility).
  virtual bool function_allows(const Function& fn,
                               std::string_view kind) const = 0;
};

/// True when a string literal labels an allocation as key material
/// (port of keylint v1's SECRET_LABEL).
bool is_secret_label(std::string_view s);

/// Subset of secret labels that MUST live on mlocked pages (KL104).
bool is_must_lock_label(std::string_view s);

struct FileCheckResult {
  std::vector<Finding> findings;
  std::vector<ComplianceSite> sites;
};

/// Runs every check over one parsed file. Findings come back ordered by
/// line; waiving is applied later by the analyzer.
FileCheckResult run_checks(const std::string& repo_rel_path,
                           const TokenStream& ts,
                           const std::vector<Function>& fns,
                           const AllowOracle& allows);

}  // namespace keyguard::lint
