// keylint2 driver: file IO, annotation binding, waivers.
//
// `Annotations` is the AllowOracle implementation — it binds
// `// keylint: allow(kind, ...)` comments to statements (any line of the
// statement, or the own-line comment run immediately above it) instead of
// keylint v1's 3-line lookback window, which silently attached an allow on
// one statement to an unrelated neighbour.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/checks.hpp"

namespace keyguard::lint {

/// Allow annotations of one file, bound by line.
class Annotations final : public AllowOracle {
 public:
  explicit Annotations(const TokenStream& ts);

  bool statement_allows(const Stmt& s, std::string_view kind) const override;
  bool function_allows(const Function& fn,
                       std::string_view kind) const override;

  /// allow(kind) on exactly this line (used by tests).
  bool line_allows(int line, std::string_view kind) const;

 private:
  struct Allow {
    int line = 0;
    bool own_line = false;
    std::vector<std::string> kinds;
  };
  bool run_above_allows(int first_line, std::string_view kind) const;
  const Allow* allow_on(int line) const;

  std::vector<Allow> allows_;      // sorted by line
  std::vector<bool> code_lines_;   // 1-based: line carries a code token
  std::vector<bool> comment_lines_;  // 1-based: line carries any comment
};

struct Waiver {
  std::string check;  // "KL101" or "*"
  std::string path;   // repo-relative path (suffix match at '/' boundary)
  std::string reason;
};

/// Parses a waiver file: one `CHECK path reason...` per line, `#` comments
/// and blank lines skipped. Missing file -> empty list (not an error).
std::vector<Waiver> load_waivers(const std::string& path);

/// Marks findings covered by a waiver (does not remove them — waived
/// findings still appear in the SARIF output, at level "none").
void apply_waivers(std::vector<Finding>& findings,
                   const std::vector<Waiver>& waivers);

struct AnalysisResult {
  std::vector<Finding> findings;
  std::vector<ComplianceSite> sites;
  std::size_t files_scanned = 0;
};

/// Lints one in-memory source (the fixture battery uses this directly).
FileCheckResult analyze_source(const std::string& repo_rel_path,
                               std::string_view source);

/// Lints files and directories (recursing into .cpp/.cc/.hpp/.h), in
/// sorted order for deterministic output.
AnalysisResult analyze_paths(const std::vector<std::string>& paths);

}  // namespace keyguard::lint
