// Intra-procedural control-flow graph for keylint2.
//
// One node per statement (compound statements contribute their head —
// condition/loop header — as a node; their bodies contribute their own
// nodes). Edges model the shapes the secret-lifetime checks care about:
// if/else branching, early returns (edge to the exit node), loops as join
// points (back edge to the header, exit edge past it), break/continue, and
// switch sections. The KL101 dataflow pass (checks.cpp) runs a forward
// fixpoint over this graph, so a scrub that covers only the happy path no
// longer satisfies the check the way it satisfied keylint v1's KL003.
#pragma once

#include <cstddef>
#include <vector>

#include "lint/parse.hpp"

namespace keyguard::lint {

struct CfgNode {
  const Stmt* stmt = nullptr;  // null for the synthetic entry/exit nodes
  bool is_return = false;      // node is a `return` statement
  std::vector<int> succs;
  std::vector<int> preds;
};

struct Cfg {
  std::vector<CfgNode> nodes;
  int entry = -1;
  int exit = -1;  // all returns and the fall-off end lead here
};

/// Builds the CFG of `fn`. Always produces a connected entry->exit graph;
/// unreachable statements after a return are kept as nodes without preds.
Cfg build_cfg(const Function& fn);

}  // namespace keyguard::lint
