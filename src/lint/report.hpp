// Output backends for keylint2: human-readable text (the keylint v1
// `path:line: KLxxx message` shape, so the differential oracle can diff the
// two tools), SARIF 2.1.0 for CI code-scanning upload, and the
// locked-memory compliance report (the KeepTower MEMORY_LOCKING_AUDIT
// idiom: one machine-readable JSON document per release enumerating every
// audited key-material allocation site and its mlock status).
#pragma once

#include <string>
#include <vector>

#include "lint/checks.hpp"

namespace keyguard::lint {

/// `path:line: KLxxx message` lines, waived findings annotated, followed by
/// a one-line summary. Matches keylint v1's shape for the oracle.
std::string render_text(const std::vector<Finding>& findings);

/// SARIF 2.1.0 document: one run, one rule per catalogue entry, one result
/// per finding (waived findings get kind "informational"/level "none").
std::string render_sarif(const std::vector<Finding>& findings);

/// Locked-memory compliance report over every audited allocation site.
std::string render_compliance(const std::vector<ComplianceSite>& sites);

}  // namespace keyguard::lint
