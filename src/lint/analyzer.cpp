#include "lint/analyzer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace keyguard::lint {
namespace {

namespace fs = std::filesystem;

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return std::string(s.substr(b, e - b));
}

// Parses "keylint: allow(kind1, kind2) — reason" out of a comment body.
// Returns the kinds, or empty when the comment is not an allow annotation.
std::vector<std::string> parse_allow(std::string_view comment) {
  const auto key = comment.find("keylint:");
  if (key == std::string_view::npos) return {};
  const auto allow = comment.find("allow(", key);
  if (allow == std::string_view::npos) return {};
  const auto open = allow + 6;
  const auto close = comment.find(')', open);
  if (close == std::string_view::npos) return {};
  std::vector<std::string> kinds;
  std::size_t start = open;
  for (std::size_t i = open; i <= close; ++i) {
    if (i == close || comment[i] == ',') {
      std::string kind = trim(comment.substr(start, i - start));
      if (!kind.empty()) kinds.push_back(std::move(kind));
      start = i + 1;
    }
  }
  return kinds;
}

bool has_kind(const std::vector<std::string>& kinds, std::string_view kind) {
  for (const auto& k : kinds) {
    if (k == kind) return true;
  }
  return false;
}

bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

std::string normalize(std::string p) {
  if (p.rfind("./", 0) == 0) p.erase(0, 2);
  return p;
}

bool path_suffix_match(std::string_view path, std::string_view entry) {
  if (path == entry) return true;
  return path.size() > entry.size() &&
         path.compare(path.size() - entry.size(), entry.size(), entry) == 0 &&
         path[path.size() - entry.size() - 1] == '/';
}

}  // namespace

Annotations::Annotations(const TokenStream& ts) {
  code_lines_.assign(static_cast<std::size_t>(ts.last_line) + 2, false);
  comment_lines_.assign(static_cast<std::size_t>(ts.last_line) + 2, false);
  for (const Token& t : ts.tokens) {
    if (t.line >= 1 && t.line <= ts.last_line) {
      code_lines_[static_cast<std::size_t>(t.line)] = true;
    }
  }
  for (const Comment& c : ts.comments) {
    if (c.line >= 1 && c.line <= ts.last_line) {
      comment_lines_[static_cast<std::size_t>(c.line)] = true;
    }
    auto kinds = parse_allow(c.text);
    if (!kinds.empty()) {
      allows_.push_back(Allow{c.line, c.own_line, std::move(kinds)});
    }
  }
  std::sort(allows_.begin(), allows_.end(),
            [](const Allow& a, const Allow& b) { return a.line < b.line; });
}

const Annotations::Allow* Annotations::allow_on(int line) const {
  for (const Allow& a : allows_) {
    if (a.line == line) return &a;
    if (a.line > line) break;
  }
  return nullptr;
}

bool Annotations::line_allows(int line, std::string_view kind) const {
  const Allow* a = allow_on(line);
  return a != nullptr && has_kind(a->kinds, kind);
}

// Walks upward from the line above `first_line` through the contiguous run
// of own-line comments and blank lines; stops at the first code line. This
// is what binds `// keylint: allow(...)` written above a statement to that
// statement and nothing else.
bool Annotations::run_above_allows(int first_line,
                                   std::string_view kind) const {
  for (int line = first_line - 1; line >= 1; --line) {
    const auto li = static_cast<std::size_t>(line);
    if (li < code_lines_.size() && code_lines_[li]) return false;
    const Allow* a = allow_on(line);
    if (a != nullptr && a->own_line && has_kind(a->kinds, kind)) return true;
    const bool blank_or_comment =
        li < comment_lines_.size() &&
        (comment_lines_[li] || !code_lines_[li]);
    if (!blank_or_comment) return false;
  }
  return false;
}

bool Annotations::statement_allows(const Stmt& s,
                                   std::string_view kind) const {
  for (int line = s.first_line; line <= s.last_line; ++line) {
    if (line_allows(line, kind)) return true;
  }
  return run_above_allows(s.first_line, kind);
}

bool Annotations::function_allows(const Function& fn,
                                  std::string_view kind) const {
  if (run_above_allows(fn.signature_line, kind)) return true;
  if (kind == "unscrubbed") {
    // keylint v1 compatibility: a body-wide allow(unscrubbed) covers the
    // whole function.
    for (const Allow& a : allows_) {
      if (a.line >= fn.signature_line && a.line <= fn.last_line &&
          has_kind(a.kinds, kind)) {
        return true;
      }
    }
  }
  return false;
}

std::vector<Waiver> load_waivers(const std::string& path) {
  std::vector<Waiver> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    const std::string s = trim(line);
    if (s.empty() || s[0] == '#') continue;
    std::istringstream fields(s);
    Waiver w;
    fields >> w.check >> w.path;
    std::getline(fields, w.reason);
    w.reason = trim(w.reason);
    if (w.reason.empty()) w.reason = "waived (no reason recorded)";
    if (!w.check.empty() && !w.path.empty()) out.push_back(std::move(w));
  }
  return out;
}

void apply_waivers(std::vector<Finding>& findings,
                   const std::vector<Waiver>& waivers) {
  for (Finding& f : findings) {
    for (const Waiver& w : waivers) {
      if ((w.check == "*" || w.check == f.check) &&
          path_suffix_match(f.file, w.path)) {
        f.waived = true;
        f.waive_reason = w.reason;
        break;
      }
    }
  }
}

FileCheckResult analyze_source(const std::string& repo_rel_path,
                               std::string_view source) {
  const TokenStream ts = tokenize(source);
  const std::vector<Function> fns = parse_functions(ts);
  const Annotations allows(ts);
  return run_checks(repo_rel_path, ts, fns, allows);
}

AnalysisResult analyze_paths(const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) && is_source_file(it->path())) {
          files.push_back(normalize(it->path().generic_string()));
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(normalize(p));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  AnalysisResult res;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    FileCheckResult fr = analyze_source(file, buf.str());
    res.findings.insert(res.findings.end(),
                        std::make_move_iterator(fr.findings.begin()),
                        std::make_move_iterator(fr.findings.end()));
    res.sites.insert(res.sites.end(),
                     std::make_move_iterator(fr.sites.begin()),
                     std::make_move_iterator(fr.sites.end()));
    ++res.files_scanned;
  }
  return res;
}

}  // namespace keyguard::lint
