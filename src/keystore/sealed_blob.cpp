#include "keystore/sealed_blob.hpp"

#include <cassert>
#include <cstring>

#include "crypto/sha256.hpp"

namespace keyguard::keystore {

namespace {

constexpr std::byte kMagic[4] = {std::byte{'K'}, std::byte{'S'}, std::byte{'B'},
                                 std::byte{'1'}};

void put_le64(std::byte* out, std::uint64_t v) {
  for (std::size_t i = 0; i < 8; ++i) {
    out[i] = static_cast<std::byte>(v >> (8 * i));
  }
}

std::uint64_t get_le64(const std::byte* in) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

}  // namespace

void keystream_xor(std::span<std::byte> data, std::span<const std::byte> master,
                   std::uint64_t nonce) {
  assert(master.size() == kMasterKeyBytes);
  std::byte trailer[16];
  put_le64(trailer, nonce);
  for (std::size_t off = 0, block = 0; off < data.size();
       off += crypto::Sha256::kDigestSize, ++block) {
    put_le64(trailer + 8, block);
    crypto::Sha256 h;
    h.update(master);
    h.update(trailer);
    auto ks = h.finish();
    const std::size_t n = std::min(crypto::Sha256::kDigestSize, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) data[off + i] ^= ks[i];
    wipe(ks);
  }
}

std::vector<std::byte> seal(std::span<const std::byte> plaintext,
                            std::span<const std::byte> master,
                            std::uint64_t nonce) {
  std::vector<std::byte> blob(kSealedHeaderBytes + plaintext.size());
  std::memcpy(blob.data(), kMagic, sizeof kMagic);
  put_le64(blob.data() + sizeof kMagic, nonce);
  std::memcpy(blob.data() + kSealedHeaderBytes, plaintext.data(), plaintext.size());
  keystream_xor(std::span(blob).subspan(kSealedHeaderBytes), master, nonce);
  return blob;
}

std::optional<std::vector<std::byte>> unseal(std::span<const std::byte> blob,
                                             std::span<const std::byte> master) {
  if (blob.size() < kSealedHeaderBytes) return std::nullopt;
  if (std::memcmp(blob.data(), kMagic, sizeof kMagic) != 0) return std::nullopt;
  const std::uint64_t nonce = get_le64(blob.data() + sizeof kMagic);
  std::vector<std::byte> plain(blob.begin() + kSealedHeaderBytes, blob.end());
  keystream_xor(plain, master, nonce);
  return plain;
}

void wipe(std::span<std::byte> data) noexcept {
  volatile std::byte* p = data.data();
  for (std::size_t i = 0; i < data.size(); ++i) p[i] = std::byte{0};
}

}  // namespace keyguard::keystore
