#include "keystore/sealed_blob.hpp"

#include <cassert>
#include <cstring>

#include "crypto/sha256.hpp"

namespace keyguard::keystore {

namespace {

constexpr std::byte kMagic[4] = {std::byte{'K'}, std::byte{'S'}, std::byte{'B'},
                                 std::byte{'1'}};
constexpr std::byte kAuthMagic[4] = {std::byte{'K'}, std::byte{'S'},
                                     std::byte{'B'}, std::byte{'2'}};

/// Constant-time tag comparison — a timing-dependent memcmp would be the
/// one cryptographic sin the sim should not model.
bool ct_equal(std::span<const std::byte> a, std::span<const std::byte> b) {
  if (a.size() != b.size()) return false;
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<unsigned>(a[i] ^ b[i]);
  }
  return diff == 0;
}

void put_le64(std::byte* out, std::uint64_t v) {
  for (std::size_t i = 0; i < 8; ++i) {
    out[i] = static_cast<std::byte>(v >> (8 * i));
  }
}

std::uint64_t get_le64(const std::byte* in) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::uint64_t salted_nonce(std::uint64_t nonce, std::uint64_t salt) {
  if (salt == 0) return nonce;  // legacy layout, golden baseline
  // splitmix64 finalizer over the salt; XOR keeps the map injective in
  // `nonce` for a fixed salt. Bit 63 stays clear so salted blob nonces
  // never land in the encrypted backend's page-nonce space.
  std::uint64_t z = salt + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return (nonce ^ z) & ~(1ULL << 63);
}

void keystream_xor(std::span<std::byte> data, std::span<const std::byte> master,
                   std::uint64_t nonce) {
  assert(master.size() == kMasterKeyBytes);
  std::byte trailer[16];
  put_le64(trailer, nonce);
  for (std::size_t off = 0, block = 0; off < data.size();
       off += crypto::Sha256::kDigestSize, ++block) {
    put_le64(trailer + 8, block);
    crypto::Sha256 h;
    h.update(master);
    h.update(trailer);
    auto ks = h.finish();
    const std::size_t n = std::min(crypto::Sha256::kDigestSize, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) data[off + i] ^= ks[i];
    wipe(ks);
  }
}

std::vector<std::byte> seal(std::span<const std::byte> plaintext,
                            std::span<const std::byte> master,
                            std::uint64_t nonce) {
  std::vector<std::byte> blob(kSealedHeaderBytes + plaintext.size());
  std::memcpy(blob.data(), kMagic, sizeof kMagic);
  put_le64(blob.data() + sizeof kMagic, nonce);
  std::memcpy(blob.data() + kSealedHeaderBytes, plaintext.data(), plaintext.size());
  keystream_xor(std::span(blob).subspan(kSealedHeaderBytes), master, nonce);
  return blob;
}

std::optional<std::vector<std::byte>> unseal(std::span<const std::byte> blob,
                                             std::span<const std::byte> master) {
  if (blob.size() < kSealedHeaderBytes) return std::nullopt;
  if (std::memcmp(blob.data(), kMagic, sizeof kMagic) != 0) return std::nullopt;
  const std::uint64_t nonce = get_le64(blob.data() + sizeof kMagic);
  std::vector<std::byte> plain(blob.begin() + kSealedHeaderBytes, blob.end());
  keystream_xor(plain, master, nonce);
  return plain;
}

std::optional<std::vector<std::byte>> seal_authenticated(
    std::span<const std::byte> plaintext, sim::CoprocessorDomain& domain,
    std::uint64_t nonce) {
  std::vector<std::byte> blob(kSealedHeaderBytes + plaintext.size() +
                              kAuthTagBytes);
  std::memcpy(blob.data(), kAuthMagic, sizeof kAuthMagic);
  put_le64(blob.data() + sizeof kAuthMagic, nonce);
  const auto body = std::span(blob).subspan(kSealedHeaderBytes, plaintext.size());
  std::vector<std::byte> ks(plaintext.size());
  if (!domain.keystream(nonce, ks)) return std::nullopt;
  for (std::size_t i = 0; i < plaintext.size(); ++i) {
    body[i] = plaintext[i] ^ ks[i];
  }
  wipe(ks);
  const auto tag = domain.mac(nonce, body);
  if (!tag) {
    wipe(blob);  // half-built ciphertext without a key to reopen it
    return std::nullopt;
  }
  std::memcpy(blob.data() + kSealedHeaderBytes + plaintext.size(), tag->data(),
              kAuthTagBytes);
  return blob;
}

std::optional<std::uint64_t> authenticated_nonce(std::span<const std::byte> blob) {
  if (blob.size() < kSealedHeaderBytes + kAuthTagBytes) return std::nullopt;
  if (std::memcmp(blob.data(), kAuthMagic, sizeof kAuthMagic) != 0) {
    return std::nullopt;
  }
  return get_le64(blob.data() + sizeof kAuthMagic);
}

std::optional<std::vector<std::byte>> unseal_authenticated(
    std::span<const std::byte> blob, sim::CoprocessorDomain& domain,
    std::span<const std::byte> keystream) {
  // Verify EVERYTHING before touching the keystream: fail-closed means no
  // partial plaintext exists on any rejection path.
  const auto nonce = authenticated_nonce(blob);
  if (!nonce) return std::nullopt;
  const auto ct = blob.subspan(kSealedHeaderBytes,
                               blob.size() - kSealedHeaderBytes - kAuthTagBytes);
  const auto tag = blob.subspan(blob.size() - kAuthTagBytes);
  const auto expect = domain.mac(*nonce, ct);
  if (!expect) return std::nullopt;  // domain off: refuse, never fall back
  if (!ct_equal(tag, *expect)) return std::nullopt;

  std::vector<std::byte> plain(ct.begin(), ct.end());
  if (keystream.size() >= ct.size()) {
    for (std::size_t i = 0; i < plain.size(); ++i) plain[i] ^= keystream[i];
  } else {
    std::vector<std::byte> ks(ct.size());
    if (!domain.keystream(*nonce, ks)) {
      wipe(plain);
      return std::nullopt;
    }
    for (std::size_t i = 0; i < plain.size(); ++i) plain[i] ^= ks[i];
    wipe(ks);
  }
  return plain;
}

void wipe(std::span<std::byte> data) noexcept {
  volatile std::byte* p = data.data();
  for (std::size_t i = 0; i < data.size(); ++i) p[i] = std::byte{0};
}

}  // namespace keyguard::keystore
