// Host-side multi-tenant keystore: the production shape of the defense.
//
// Same lifecycle as SimKeystore, built on real memory primitives: keys
// rest SEALED (sealed_blob.hpp) in ordinary heap, the master key lives in
// a 32-byte mlocked SecureBuffer, and plaintext exists only inside a pool
// of at most N SecureRsaKey working copies (each one mlocked, canaried,
// zero-on-destroy page). Eviction destroys the SecureRsaKey, which scrubs
// the page before it returns to the allocator.
//
// Thread-safe: sign/decrypt pin their pool entry under the mutex, then run
// the CRT math OUTSIDE the lock, so concurrent requests for pooled keys
// proceed in parallel. A miss materializes (unseal + parse) under the
// lock — misses serialize, which is the deliberate trade: the pool bound
// is a hard invariant, never relaxed for latency. When every entry is
// pinned by in-flight operations, further misses wait on a condition
// variable for a pin to drop rather than exceed N.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/secure_buffer.hpp"
#include "core/secure_rsa.hpp"
#include "crypto/rsa.hpp"
#include "keystore/sealed_blob.hpp"
#include "util/thread_safety.hpp"

namespace keyguard::keystore {

struct HostKeystoreConfig {
  std::size_t pool_keys = 8;  ///< N: max simultaneously-plaintext keys
  /// Master-key RNG seed — deterministic for tests and benches; real
  /// deployments would draw from the system entropy source instead.
  std::uint64_t master_seed = 0x6b657973746f7265ULL;
};

struct HostKeystoreStats {
  std::uint64_t ops = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t unseals = 0;  ///< blob decryptions (== misses)
};

class Keystore {
 public:
  explicit Keystore(HostKeystoreConfig cfg);

  Keystore(const Keystore&) = delete;
  Keystore& operator=(const Keystore&) = delete;

  /// Seals `key` into the store. The caller's copy is left untouched.
  KeyId add_key(const crypto::RsaPrivateKey& key);
  /// Same, then scrubs the caller's private parts (store holds the only
  /// at-rest copy afterwards).
  KeyId add_key_scrubbing(crypto::RsaPrivateKey& key);
  /// Parses PEM text and seals the result; nullopt on malformed input.
  /// The parse transients are wiped before returning.
  std::optional<KeyId> add_pem(std::string_view pem);

  const crypto::RsaPublicKey& public_key(KeyId id) const;

  /// m^d mod n for key `id`: pool hit runs with NO decryption; a miss
  /// unseals into a fresh SecureRsaKey, evicting the LRU unpinned entry
  /// when the pool is full.
  bn::Bignum sign(KeyId id, const bn::Bignum& m);
  bn::Bignum decrypt(KeyId id, const bn::Bignum& c) { return sign(id, c); }

  bool contains(KeyId id) const;
  bool pooled(KeyId id) const;
  std::size_t size() const;
  std::size_t pooled_count() const;
  std::size_t pool_keys() const noexcept { return cfg_.pool_keys; }
  /// True when the master key's buffer is pinned against swap.
  bool master_locked() const noexcept { return master_.locked(); }
  HostKeystoreStats stats() const;

  /// Empties the pool (scrubbing every working copy).
  void evict_all();

 private:
  struct Sealed {
    std::vector<std::byte> blob;
    crypto::RsaPublicKey pub;
  };
  struct PoolEntry {
    KeyId id;
    secure::SecureRsaKey key;
    unsigned pins;
    std::uint64_t last_used;
  };

  KeyId seal_der(std::vector<std::byte>& der, crypto::RsaPublicKey pub);
  /// Returns the entry for `id` with one pin taken; blocks while the pool
  /// is full of pinned entries. Requires `lk` (over mu_) held; may release
  /// it while waiting.
  PoolEntry& acquire(util::MutexLock& lk, KeyId id) REQUIRES(mu_);

  HostKeystoreConfig cfg_;
  mutable util::Mutex mu_;
  std::condition_variable pool_cv_;
  secure::SecureBuffer master_;
  std::map<KeyId, Sealed> sealed_ GUARDED_BY(mu_);
  // unique_ptr for address stability: sign() holds a PoolEntry* across the
  // unlocked CRT computation while other threads mutate the vector.
  std::vector<std::unique_ptr<PoolEntry>> pool_ GUARDED_BY(mu_);
  KeyId next_id_ GUARDED_BY(mu_) = 1;
  std::uint64_t clock_ GUARDED_BY(mu_) = 0;
  HostKeystoreStats stats_ GUARDED_BY(mu_);
};

}  // namespace keyguard::keystore
