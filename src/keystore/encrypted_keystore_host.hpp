// Host-side encrypted keystore: the coprocessor-domain pool on real memory.
//
// Mirrors Keystore's thread-safe pool discipline (pin under the mutex, CRT
// math outside it, misses serialize, condition-variable wait when every
// entry is pinned) with two changes that make it the production shape of
// EncryptedPoolKeystore:
//
//   * There is NO master SecureBuffer. Blobs are authenticated KSB2
//     ciphertext opened through a CoprocessorDomain — the page-encryption
//     key never exists in this process's addressable memory.
//   * Everything is fail-closed. add_key and sign return optionals: a
//     tampered blob (MAC mismatch) or a powered-off domain refuses the
//     operation; plaintext never materializes on a rejection path and
//     there is no plaintext fallback ingest.
//
// The working set is the pool bound: at most W SecureRsaKey working copies
// (mlocked, canaried, zero-on-destroy) exist at once.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "core/secure_rsa.hpp"
#include "crypto/rsa.hpp"
#include "keystore/sealed_blob.hpp"
#include "sim/coprocessor.hpp"
#include "util/thread_safety.hpp"

namespace keyguard::keystore {

struct EncryptedHostConfig {
  std::size_t working_set = 4;  ///< W: max simultaneously-plaintext keys
};

struct EncryptedHostStats {
  std::uint64_t ops = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t unseals = 0;
  std::uint64_t refusals = 0;  ///< fail-closed denials (tamper / domain off)
};

class EncryptedHostKeystore {
 public:
  /// `domain` must outlive the keystore; it may be shared across stores
  /// and threads (CoprocessorDomain serializes internally).
  EncryptedHostKeystore(sim::CoprocessorDomain& domain, EncryptedHostConfig cfg);

  EncryptedHostKeystore(const EncryptedHostKeystore&) = delete;
  EncryptedHostKeystore& operator=(const EncryptedHostKeystore&) = delete;

  /// Seals `key` under the domain. nullopt when the domain is off — the
  /// store refuses to hold a key it could never reopen (and will not hold
  /// it plaintext instead).
  std::optional<KeyId> add_key(const crypto::RsaPrivateKey& key);
  /// Same, then scrubs the caller's private parts on success.
  std::optional<KeyId> add_key_scrubbing(crypto::RsaPrivateKey& key);
  std::optional<KeyId> add_pem(std::string_view pem);

  const crypto::RsaPublicKey& public_key(KeyId id) const;

  /// m^d mod n, fail-closed: nullopt when the blob fails authentication
  /// or the domain is unavailable. A pool hit serves with no domain
  /// traffic at all.
  std::optional<bn::Bignum> sign(KeyId id, const bn::Bignum& m);
  std::optional<bn::Bignum> decrypt(KeyId id, const bn::Bignum& c) {
    return sign(id, c);
  }

  bool contains(KeyId id) const;
  bool pooled(KeyId id) const;
  std::size_t size() const;
  std::size_t pooled_count() const;
  std::size_t working_set() const noexcept { return cfg_.working_set; }
  EncryptedHostStats stats() const;

  /// Empties the pool (scrubbing every unpinned working copy).
  void evict_all();

  /// Fault-injection hook: XORs 0x01 into byte `offset` of `id`'s sealed
  /// blob, as a memory-tampering attacker would. Returns false when out of
  /// range. The next cold sign() must refuse.
  bool flip_blob_byte(KeyId id, std::size_t offset);
  std::size_t blob_size(KeyId id) const;

  sim::CoprocessorDomain& domain() noexcept { return domain_; }

 private:
  struct Sealed {
    std::vector<std::byte> blob;
    crypto::RsaPublicKey pub;
  };
  struct PoolEntry {
    KeyId id;
    secure::SecureRsaKey key;
    unsigned pins;
    std::uint64_t last_used;
  };

  /// Entry for `id` with one pin taken, or nullptr on a fail-closed
  /// refusal. Requires `lk` (over mu_) held; may release it while waiting
  /// for a pin to drop.
  PoolEntry* acquire(util::MutexLock& lk, KeyId id) REQUIRES(mu_);

  sim::CoprocessorDomain& domain_;
  EncryptedHostConfig cfg_;
  mutable util::Mutex mu_;
  std::condition_variable pool_cv_;
  std::map<KeyId, Sealed> sealed_ GUARDED_BY(mu_);
  // unique_ptr for address stability across the unlocked CRT computation.
  std::vector<std::unique_ptr<PoolEntry>> pool_ GUARDED_BY(mu_);
  KeyId next_id_ GUARDED_BY(mu_) = 1;
  std::uint64_t clock_ GUARDED_BY(mu_) = 0;
  EncryptedHostStats stats_ GUARDED_BY(mu_);
};

}  // namespace keyguard::keystore
