#include "keystore/sim_keystore.hpp"

#include <cassert>
#include <chrono>
#include <cstring>

#include "crypto/pem.hpp"
#include "keystore/sealed_blob.hpp"
#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/physmem.hpp"
#include "util/rng.hpp"

namespace keyguard::keystore {

namespace {

sslsim::SslConfig ssl_config_for(const SimKeystoreConfig& cfg) {
  sslsim::SslConfig out;
  out.auto_align = false;  // the pool, not per-key aligned pages, bounds residue
  out.clear_temporaries = cfg.clear_temporaries;
  out.open_keys_nocache = cfg.open_keys_nocache;
  return out;
}

}  // namespace

// keylint: allow(unscrubbed) — the pages allocated here outlive the ctor
// by design; evict_slot() and shutdown() scrub them at end of life
SimKeystore::SimKeystore(sim::Kernel& kernel, sim::Process& proc,
                         SimKeystoreConfig cfg)
    : kernel_(kernel), proc_(proc), cfg_(cfg), ssl_(kernel, ssl_config_for(cfg)) {
  // The master key: pinned on its own mlocked page like the paper's vault
  // page. It never leaves this page except as a transient host copy during
  // seal/unseal (wiped immediately after use).
  master_page_ = kernel_.mmap_anon(proc_, kMasterKeyBytes, /*mlocked=*/true,
                                   "keystore master key");
  assert(master_page_ != 0);
  std::vector<std::byte> master(kMasterKeyBytes);
  util::Rng rng(cfg_.master_seed);
  rng.fill_bytes(master);
  kernel_.mem_write(proc_, master_page_, master, sim::TaintTag::kMasterKey);
  wipe(master);

  // The pool: N mlocked pages, allocated up front so the locked-memory
  // budget is fixed at construction, not traffic-dependent.
  slots_.resize(cfg_.pool_pages);
  for (auto& s : slots_) {
    s.page = kernel_.mmap_anon(proc_, sim::kPageSize, /*mlocked=*/true,
                               "keystore pool slot");
    assert(s.page != 0);
  }
}

SimKeystore::~SimKeystore() { shutdown(); }

std::vector<std::byte> SimKeystore::read_master() const {
  std::vector<std::byte> master(kMasterKeyBytes);
  kernel_.mem_read(proc_, master_page_, master);
  return master;
}

std::optional<KeyId> SimKeystore::ingest_pem(const std::string& vfs_path) {
  assert(!shut_);
  const int flags =
      cfg_.open_keys_nocache ? sim::kOpenNoCache : sim::kOpenReadOnly;
  auto file = kernel_.read_file(proc_, vfs_path, flags);
  if (!file) return std::nullopt;

  // PEM_read: the text passes through a heap buffer like fgets would
  // produce — a plaintext transient the config decides the fate of.
  const sim::VirtAddr pem_buf =
      kernel_.heap_alloc(proc_, file->size(), "PEM read buffer (keystore ingest)");
  assert(pem_buf != 0);
  kernel_.mem_write(proc_, pem_buf, *file, sim::TaintTag::kPem);

  auto parsed = crypto::pem_decode_private_key(
      std::string_view(reinterpret_cast<const char*>(file->data()), file->size()));
  if (!parsed) {
    if (cfg_.clear_temporaries) {
      kernel_.heap_clear_free(proc_, pem_buf);
    } else {
      kernel_.heap_free(proc_, pem_buf);  // keylint: allow(raw-free)
    }
    return std::nullopt;
  }

  const KeyId id = next_id_++;
  Entry e;
  e.pub = parsed->public_key();

  auto der = crypto::der_encode_private_key(*parsed);
  if (cfg_.seal_at_rest) {
    auto master = read_master();
    auto blob = seal(der, master, salted_nonce(id, cfg_.blob_salt));
    wipe(master);
    e.blob_len = blob.size();
    e.blob = kernel_.heap_alloc(proc_, blob.size(), "sealed key blob");
    assert(e.blob != 0);
    kernel_.mem_write(proc_, e.blob, blob, sim::TaintTag::kSealed);
  } else {
    // Baseline: the at-rest copy is plaintext DER in ordinary heap — the
    // unbounded disclosure surface the sealed path exists to remove.
    e.blob_len = der.size();
    e.blob = kernel_.heap_alloc(proc_, der.size(), "DER key blob (plaintext)");
    assert(e.blob != 0);
    kernel_.mem_write(proc_, e.blob, der, sim::TaintTag::kDer);
  }
  wipe(der);
  parsed->scrub_private_parts();

  if (cfg_.clear_temporaries) {
    kernel_.heap_clear_free(proc_, pem_buf);
  } else {
    kernel_.heap_free(proc_, pem_buf);  // keylint: allow(raw-free)
  }

  keys_.emplace(id, std::move(e));
  ++stats_.ingested;
  return id;
}

const crypto::RsaPublicKey& SimKeystore::public_key(KeyId id) const {
  return keys_.at(id).pub;
}

std::size_t SimKeystore::ensure_pooled(KeyId id) {
  auto& reg = obs::MetricsRegistry::global();
  const bool metrics_on = reg.enabled();
  Entry& e = keys_.at(id);
  if (e.slot >= 0) {
    ++stats_.pool_hits;
    if (metrics_on) {
      reg.counter("sim_keystore.pool_hits").add(1);
    }
    slots_[static_cast<std::size_t>(e.slot)].last_used = ++clock_;
    return static_cast<std::size_t>(e.slot);
  }
  ++stats_.pool_misses;
  if (metrics_on) {
    reg.counter("sim_keystore.pool_misses").add(1);
  }
  obs::Tracer::Span unseal_span(obs::Tracer::global(), "sim_keystore.unseal");
  if (unseal_span.live()) {
    unseal_span.add(obs::TraceAttr::n("key", static_cast<double>(id)));
  }
  const auto unseal_t0 = std::chrono::steady_clock::now();

  // Pick a slot: first empty, else evict the least recently used.
  std::size_t victim = slots_.size();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].occupant) {
      victim = i;
      break;
    }
  }
  if (victim == slots_.size()) {
    victim = 0;
    for (std::size_t i = 1; i < slots_.size(); ++i) {
      if (slots_[i].last_used < slots_[victim].last_used) victim = i;
    }
    evict_slot(victim);
    ++stats_.evictions;
  }

  // Unseal: blob -> host DER scratch -> parsed parts -> pool page. The
  // host transients are wiped as soon as the limb images are written.
  std::vector<std::byte> blob(e.blob_len);
  kernel_.mem_read(proc_, e.blob, blob);
  std::optional<std::vector<std::byte>> der;
  if (cfg_.seal_at_rest) {
    auto master = read_master();
    der = unseal(blob, master);
    wipe(master);
  } else {
    der = std::move(blob);
  }
  assert(der.has_value());
  auto key = crypto::der_decode_private_key(*der);
  assert(key.has_value());
  wipe(*der);
  ++stats_.unseals;
  if (auto& bus = obs::EventBus::global(); bus.enabled()) {
    bus.publish(obs::ObsEventKind::kKeystoreUnseal, id, /*blob=*/1);
  }

  // Materialize: all six private parts as limb images on the one mlocked
  // page (rsa_memory_align's layout, so scanner needles match), viewed as
  // BN_FLG_STATIC_DATA bignums. The Montgomery cache stays off: cached
  // contexts would be per-key prime copies living OUTSIDE the pool bound.
  Slot& s = slots_[victim];
  s.view = sslsim::SimRsaKey{};
  s.view.cache_private = false;
  sim::VirtAddr cursor = s.page;
  const auto place = [&](sslsim::SimBignum& part, const bn::Bignum& v) {
    const auto image = sslsim::SslLibrary::limb_image(v);
    kernel_.mem_write(proc_, cursor, image, sim::TaintTag::kPoolKey);
    part = sslsim::SimBignum{cursor, image.size() / 8, /*static_data=*/true};
    cursor += image.size();
  };
  place(s.view.d, key->d);
  place(s.view.p, key->p);
  place(s.view.q, key->q);
  place(s.view.dmp1, key->dmp1);
  place(s.view.dmq1, key->dmq1);
  place(s.view.iqmp, key->iqmp);
  assert(cursor - s.page <= sim::kPageSize);
  s.used_bytes = cursor - s.page;
  s.occupant = id;
  s.last_used = ++clock_;
  e.slot = static_cast<int>(victim);
  key->scrub_private_parts();
  if (metrics_on) {
    const double unseal_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - unseal_t0)
            .count();
    reg.histogram("sim_keystore.unseal_ms").record(unseal_ms);
    reg.gauge("sim_keystore.pool_occupancy")
        .set(static_cast<double>(pooled_count()));
  }
  return victim;
}

bn::Bignum SimKeystore::private_op(KeyId id, const bn::Bignum& c) {
  assert(!shut_);
  const std::size_t slot = ensure_pooled(id);
  ++stats_.ops;
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.counter("sim_keystore.ops").add(1);
  }
  return ssl_.rsa_private_op(proc_, slots_[slot].view, c);
}

void SimKeystore::evict_slot(std::size_t s) {
  Slot& slot = slots_[s];
  if (!slot.occupant) return;
  obs::Tracer::Span span(obs::Tracer::global(), "sim_keystore.evict");
  if (span.live()) {
    span.add(obs::TraceAttr::n("key", static_cast<double>(*slot.occupant)));
    span.add(obs::TraceAttr::n("slot", static_cast<double>(s)));
    span.add(obs::TraceAttr::b("scrub", cfg_.scrub_on_evict));
  }
  keys_.at(*slot.occupant).slot = -1;
  if (auto& bus = obs::EventBus::global(); bus.enabled()) {
    bus.publish(obs::ObsEventKind::kKeystoreEvict, *slot.occupant);
  }
  if (cfg_.scrub_on_evict && slot.used_bytes > 0) {
    obs::Tracer::Span scrub(obs::Tracer::global(), "sim_keystore.scrub");
    if (scrub.live()) {
      scrub.add(obs::TraceAttr::n("bytes", static_cast<double>(slot.used_bytes)));
    }
    kernel_.mem_zero(proc_, slot.page, slot.used_bytes);
  }
  slot.occupant.reset();
  slot.view = sslsim::SimRsaKey{};
  slot.used_bytes = 0;
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.counter("sim_keystore.evictions").add(1);
    reg.gauge("sim_keystore.pool_occupancy")
        .set(static_cast<double>(pooled_count()));
  }
}

void SimKeystore::evict(KeyId id) {
  const auto it = keys_.find(id);
  if (it == keys_.end() || it->second.slot < 0) return;
  evict_slot(static_cast<std::size_t>(it->second.slot));
  ++stats_.evictions;
}

void SimKeystore::evict_all() {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].occupant) {
      evict_slot(i);
      ++stats_.evictions;
    }
  }
}

void SimKeystore::shutdown() {
  if (shut_) return;
  shut_ = true;
  evict_all();
  for (auto& s : slots_) {
    kernel_.munmap(proc_, s.page, sim::kPageSize);
    s.page = 0;
  }
  if (cfg_.scrub_on_evict) {
    kernel_.mem_zero(proc_, master_page_, kMasterKeyBytes);
  }
  kernel_.munmap(proc_, master_page_, kMasterKeyBytes);
  master_page_ = 0;
  for (auto& [id, e] : keys_) {
    if (e.blob == 0) continue;
    if (cfg_.seal_at_rest) {
      // Ciphertext at rest: nothing secret to scrub.
      kernel_.heap_free(proc_, e.blob);  // keylint: allow(raw-free)
    } else if (cfg_.clear_temporaries) {
      kernel_.heap_clear_free(proc_, e.blob);
    } else {
      kernel_.heap_free(proc_, e.blob);  // keylint: allow(raw-free)
    }
    e.blob = 0;
  }
}

bool SimKeystore::pooled(KeyId id) const {
  const auto it = keys_.find(id);
  return it != keys_.end() && it->second.slot >= 0;
}

std::size_t SimKeystore::pooled_count() const {
  std::size_t n = 0;
  for (const auto& s : slots_) n += s.occupant.has_value();
  return n;
}

}  // namespace keyguard::keystore
