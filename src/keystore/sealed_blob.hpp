// Sealed key blobs: the keystore's at-rest format.
//
// A multi-tenant front end cannot mlock one page per private key, so keys
// rest in ordinary (swappable, scannable) memory as CIPHERTEXT and only
// become plaintext inside the bounded pool. The sealing cipher is an
// AES-CTR-shaped stream built from the repo's SHA-256 — the point is the
// lifecycle (what is plaintext, where, for how long), not cipher strength:
//
//   blob      = "KSB1" || nonce_le64 || body
//   body      = plaintext XOR keystream(master, nonce)
//   block i   = SHA256(master || nonce_le64 || i_le64)       (32 bytes)
//
// XOR-stream means seal and unseal are the same transform; the nonce must
// be unique per blob under one master key (the keystore uses the KeyId).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace keyguard::keystore {

/// Store-assigned key handle; doubles as the blob's sealing nonce (unique
/// per key under one master key by construction).
using KeyId = std::uint64_t;

/// Master key width. 32 bytes = one SHA-256 block's worth of entropy and
/// comfortably within one mlocked page alongside nothing else.
inline constexpr std::size_t kMasterKeyBytes = 32;

/// "KSB1" magic + 8-byte little-endian nonce.
inline constexpr std::size_t kSealedHeaderBytes = 12;

/// In-place XOR with the (master, nonce) keystream. Applying it twice is
/// the identity, so this is both the seal and the unseal primitive.
void keystream_xor(std::span<std::byte> data, std::span<const std::byte> master,
                   std::uint64_t nonce);

/// plaintext -> header || ciphertext. `master` must be kMasterKeyBytes.
std::vector<std::byte> seal(std::span<const std::byte> plaintext,
                            std::span<const std::byte> master,
                            std::uint64_t nonce);

/// header || ciphertext -> plaintext. Rejects short blobs and bad magic
/// (nullopt). The caller owns wiping the returned plaintext.
std::optional<std::vector<std::byte>> unseal(std::span<const std::byte> blob,
                                             std::span<const std::byte> master);

/// Volatile-store zeroization for HOST-side transients (DER scratch, master
/// copies) that live outside both the simulated kernel and core's
/// SecureBuffer. Mirrors core/secure_zero; duplicated here so the sim-side
/// keystore library does not link keyguard_core (which links the servers).
void wipe(std::span<std::byte> data) noexcept;

}  // namespace keyguard::keystore
