// Sealed key blobs: the keystore's at-rest format.
//
// A multi-tenant front end cannot mlock one page per private key, so keys
// rest in ordinary (swappable, scannable) memory as CIPHERTEXT and only
// become plaintext inside the bounded pool. The sealing cipher is an
// AES-CTR-shaped stream built from the repo's SHA-256 — the point is the
// lifecycle (what is plaintext, where, for how long), not cipher strength:
//
//   blob      = "KSB1" || nonce_le64 || body
//   body      = plaintext XOR keystream(master, nonce)
//   block i   = SHA256(master || nonce_le64 || i_le64)       (32 bytes)
//
// XOR-stream means seal and unseal are the same transform; the nonce must
// be unique per blob under one master key (the keystore uses the KeyId).
// The encrypted-at-rest backend uses the AUTHENTICATED variant instead:
//
//   blob = "KSB2" || nonce_le64 || ciphertext || tag(32 bytes)
//
// with both the CTR keystream and the tag produced by a CoprocessorDomain
// (sim/coprocessor.hpp) whose key is outside scannable memory. Encrypt-
// then-MAC, and unseal_authenticated verifies the tag BEFORE decrypting a
// single byte, so a corrupted blob (any bit of header, nonce, ciphertext,
// or tag) or an unavailable domain yields nullopt with no partial
// plaintext ever materialized — the fail-closed requirement from
// "Security Through Amnesia".
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/coprocessor.hpp"

namespace keyguard::keystore {

/// Store-assigned key handle; doubles as the blob's sealing nonce (unique
/// per key under one master key by construction).
using KeyId = std::uint64_t;

/// Master key width. 32 bytes = one SHA-256 block's worth of entropy and
/// comfortably within one mlocked page alongside nothing else.
inline constexpr std::size_t kMasterKeyBytes = 32;

/// "KSB1" magic + 8-byte little-endian nonce.
inline constexpr std::size_t kSealedHeaderBytes = 12;

/// Mixes a per-keystore salt into a blob nonce (splitmix64 of the salt,
/// XORed in — injective in `nonce` for any fixed salt, so per-key nonce
/// uniqueness under one master is preserved). Salt 0 returns `nonce`
/// unchanged: the legacy layout, and the golden-determinism baseline.
///
/// Why it exists: unsalted, two keystores with the same master seed that
/// ingest the same key produce BYTE-IDENTICAL sealed blobs, so even
/// ciphertext pages content-collide across tenants and a dedup pass
/// merges them — presence of a key becomes detectable from the blob page
/// alone (attack/dedup_probe.hpp). A per-keystore salt makes every
/// tenant's ciphertext unique without changing what it decrypts to.
///
/// The result keeps bit 63 clear: the encrypted backend's page nonces
/// live in the top-bit-set half, and salting must never collide a blob
/// nonce into the page-nonce space.
std::uint64_t salted_nonce(std::uint64_t nonce, std::uint64_t salt);

/// In-place XOR with the (master, nonce) keystream. Applying it twice is
/// the identity, so this is both the seal and the unseal primitive.
void keystream_xor(std::span<std::byte> data, std::span<const std::byte> master,
                   std::uint64_t nonce);

/// plaintext -> header || ciphertext. `master` must be kMasterKeyBytes.
std::vector<std::byte> seal(std::span<const std::byte> plaintext,
                            std::span<const std::byte> master,
                            std::uint64_t nonce);

/// header || ciphertext -> plaintext. Rejects short blobs and bad magic
/// (nullopt). The caller owns wiping the returned plaintext.
std::optional<std::vector<std::byte>> unseal(std::span<const std::byte> blob,
                                             std::span<const std::byte> master);

/// Trailing MAC width of the authenticated ("KSB2") format.
inline constexpr std::size_t kAuthTagBytes = sim::CoprocessorDomain::kTagBytes;

/// plaintext -> "KSB2" || nonce || ciphertext || tag, keyed entirely inside
/// `domain`. nullopt when the domain is powered off (nothing is sealed
/// under a key that no longer exists).
std::optional<std::vector<std::byte>> seal_authenticated(
    std::span<const std::byte> plaintext, sim::CoprocessorDomain& domain,
    std::uint64_t nonce);

/// Authenticated unseal: magic, length, and tag are checked (constant-time
/// compare) BEFORE any keystream is applied; every failure — truncation,
/// bad magic, any flipped bit, powered-off domain — returns nullopt
/// without materializing a byte of plaintext. When `keystream` is
/// non-empty it must be (at least) the ciphertext-length prefix of the
/// domain's CTR stream for the blob's nonce; the decrypt then skips its
/// own domain round trip — the batched-unseal fast path. Tag verification
/// ALWAYS goes to the domain.
std::optional<std::vector<std::byte>> unseal_authenticated(
    std::span<const std::byte> blob, sim::CoprocessorDomain& domain,
    std::span<const std::byte> keystream = {});

/// Nonce stored in an authenticated blob header (nullopt when the blob is
/// too short or mis-tagged as KSB1/garbage). Format inspection only — no
/// authenticity implied.
std::optional<std::uint64_t> authenticated_nonce(std::span<const std::byte> blob);

/// Volatile-store zeroization for HOST-side transients (DER scratch, master
/// copies) that live outside both the simulated kernel and core's
/// SecureBuffer. Mirrors core/secure_zero; duplicated here so the sim-side
/// keystore library does not link keyguard_core (which links the servers).
void wipe(std::span<std::byte> data) noexcept;

}  // namespace keyguard::keystore
