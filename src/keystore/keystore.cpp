#include "keystore/keystore.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "crypto/pem.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace keyguard::keystore {

Keystore::Keystore(HostKeystoreConfig cfg)
    : cfg_(cfg), master_(kMasterKeyBytes) {
  assert(cfg_.pool_keys >= 1);
  util::Rng rng(cfg_.master_seed);
  rng.fill_bytes(master_.data());
}

KeyId Keystore::seal_der(std::vector<std::byte>& der, crypto::RsaPublicKey pub) {
  util::MutexLock lk(mu_);
  const KeyId id = next_id_++;
  Sealed s;
  s.blob = seal(der, master_.data(), id);
  s.pub = std::move(pub);
  wipe(der);
  sealed_.emplace(id, std::move(s));
  return id;
}

KeyId Keystore::add_key(const crypto::RsaPrivateKey& key) {
  auto der = crypto::der_encode_private_key(key);
  return seal_der(der, key.public_key());
}

KeyId Keystore::add_key_scrubbing(crypto::RsaPrivateKey& key) {
  auto der = crypto::der_encode_private_key(key);
  const KeyId id = seal_der(der, key.public_key());
  key.scrub_private_parts();
  return id;
}

std::optional<KeyId> Keystore::add_pem(std::string_view pem) {
  auto key = crypto::pem_decode_private_key(pem);
  if (!key) return std::nullopt;
  const KeyId id = add_key_scrubbing(*key);
  return id;
}

const crypto::RsaPublicKey& Keystore::public_key(KeyId id) const {
  util::MutexLock lk(mu_);
  return sealed_.at(id).pub;
}

Keystore::PoolEntry& Keystore::acquire(util::MutexLock& lk, KeyId id) {
  auto& reg = obs::MetricsRegistry::global();
  const bool metrics_on = reg.enabled();
  for (;;) {
    for (auto& e : pool_) {
      if (e->id == id) {
        ++stats_.pool_hits;
        if (metrics_on) {
          reg.counter("keystore.pool_hits").add(1);
        }
        ++e->pins;
        e->last_used = ++clock_;
        return *e;
      }
    }
    if (pool_.size() >= cfg_.pool_keys) {
      // Evict the least recently used UNPINNED entry; if every entry is
      // serving an in-flight operation, wait for a pin to drop — the pool
      // bound is never exceeded to hide latency.
      PoolEntry* victim = nullptr;
      for (auto& e : pool_) {
        if (e->pins == 0 && (victim == nullptr || e->last_used < victim->last_used)) {
          victim = e.get();
        }
      }
      if (victim == nullptr) {
        lk.wait(pool_cv_);
        continue;  // re-scan: the key may have been materialized meanwhile
      }
      const auto it = std::find_if(pool_.begin(), pool_.end(),
                                   [&](const auto& e) { return e.get() == victim; });
      pool_.erase(it);  // ~SecureRsaKey scrubs the working copy
      ++stats_.evictions;
      if (metrics_on) {
        reg.counter("keystore.evictions").add(1);
      }
    }

    // Materialize under the lock (misses serialize; see header).
    ++stats_.pool_misses;
    ++stats_.unseals;
    obs::Tracer::Span unseal_span(obs::Tracer::global(), "keystore.unseal");
    if (unseal_span.live()) {
      unseal_span.add(obs::TraceAttr::n("key", static_cast<double>(id)));
    }
    const auto unseal_t0 = std::chrono::steady_clock::now();
    const Sealed& s = sealed_.at(id);
    auto der = unseal(s.blob, master_.data());
    assert(der.has_value());
    auto key = crypto::der_decode_private_key(*der);
    wipe(*der);
    assert(key.has_value());
    auto entry = std::unique_ptr<PoolEntry>(
        new PoolEntry{id, secure::SecureRsaKey::from_key_scrubbing(*key),
                      /*pins=*/1, ++clock_});
    pool_.push_back(std::move(entry));
    if (metrics_on) {
      reg.counter("keystore.pool_misses").add(1);
      reg.counter("keystore.unseals").add(1);
      reg.histogram("keystore.unseal_ms")
          .record(std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - unseal_t0)
                      .count());
      reg.gauge("keystore.pool_occupancy")
          .set(static_cast<double>(pool_.size()));
    }
    return *pool_.back();
  }
}

bn::Bignum Keystore::sign(KeyId id, const bn::Bignum& m) {
  obs::Tracer::Span span(obs::Tracer::global(), "keystore.sign");
  if (span.live()) {
    span.add(obs::TraceAttr::n("key", static_cast<double>(id)));
  }
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.counter("keystore.ops").add(1);
  }
  PoolEntry* entry = nullptr;
  {
    util::MutexLock lk(mu_);
    ++stats_.ops;
    entry = &acquire(lk, id);
  }
  bn::Bignum result = entry->key.sign(m);  // CRT math outside the lock
  {
    util::MutexLock lk(mu_);
    --entry->pins;
  }
  pool_cv_.notify_all();
  return result;
}

bool Keystore::contains(KeyId id) const {
  util::MutexLock lk(mu_);
  return sealed_.count(id) != 0;
}

bool Keystore::pooled(KeyId id) const {
  util::MutexLock lk(mu_);
  return std::any_of(pool_.begin(), pool_.end(),
                     [&](const auto& e) { return e->id == id; });
}

std::size_t Keystore::size() const {
  util::MutexLock lk(mu_);
  return sealed_.size();
}

std::size_t Keystore::pooled_count() const {
  util::MutexLock lk(mu_);
  return pool_.size();
}

HostKeystoreStats Keystore::stats() const {
  util::MutexLock lk(mu_);
  return stats_;
}

void Keystore::evict_all() {
  util::MutexLock lk(mu_);
  // Manual loop rather than std::erase_if: the thread-safety analysis
  // cannot see through a lambda touching guarded members.
  for (auto it = pool_.begin(); it != pool_.end();) {
    if ((*it)->pins == 0) {
      it = pool_.erase(it);  // ~SecureRsaKey scrubs the working copy
      ++stats_.evictions;
    } else {
      ++it;
    }
  }
}

}  // namespace keyguard::keystore
