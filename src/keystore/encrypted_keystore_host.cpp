#include "keystore/encrypted_keystore_host.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "crypto/pem.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace keyguard::keystore {

EncryptedHostKeystore::EncryptedHostKeystore(sim::CoprocessorDomain& domain,
                                             EncryptedHostConfig cfg)
    : domain_(domain), cfg_(cfg) {
  assert(cfg_.working_set >= 1);
}

std::optional<KeyId> EncryptedHostKeystore::add_key(
    const crypto::RsaPrivateKey& key) {
  auto der = crypto::der_encode_private_key(key);
  util::MutexLock lk(mu_);
  const KeyId id = next_id_;
  auto blob = seal_authenticated(der, domain_, id);
  wipe(der);
  if (!blob) {
    ++stats_.refusals;
    return std::nullopt;
  }
  ++next_id_;
  Sealed s;
  s.blob = std::move(*blob);
  s.pub = key.public_key();
  sealed_.emplace(id, std::move(s));
  return id;
}

std::optional<KeyId> EncryptedHostKeystore::add_key_scrubbing(
    crypto::RsaPrivateKey& key) {
  const auto id = add_key(key);
  if (id) key.scrub_private_parts();
  return id;
}

std::optional<KeyId> EncryptedHostKeystore::add_pem(std::string_view pem) {
  auto key = crypto::pem_decode_private_key(pem);
  if (!key) return std::nullopt;
  const auto id = add_key_scrubbing(*key);
  key->scrub_private_parts();  // scrub even when the domain refused
  return id;
}

const crypto::RsaPublicKey& EncryptedHostKeystore::public_key(KeyId id) const {
  util::MutexLock lk(mu_);
  return sealed_.at(id).pub;
}

EncryptedHostKeystore::PoolEntry* EncryptedHostKeystore::acquire(
    util::MutexLock& lk, KeyId id) {
  auto& reg = obs::MetricsRegistry::global();
  const bool metrics_on = reg.enabled();
  for (;;) {
    for (auto& e : pool_) {
      if (e->id == id) {
        ++stats_.pool_hits;
        if (metrics_on) {
          reg.counter("enc_keystore_host.pool_hits").add(1);
        }
        ++e->pins;
        e->last_used = ++clock_;
        return e.get();
      }
    }
    if (pool_.size() >= cfg_.working_set) {
      PoolEntry* victim = nullptr;
      for (auto& e : pool_) {
        if (e->pins == 0 && (victim == nullptr || e->last_used < victim->last_used)) {
          victim = e.get();
        }
      }
      if (victim == nullptr) {
        lk.wait(pool_cv_);
        continue;  // re-scan: the key may have been materialized meanwhile
      }
      const auto it = std::find_if(pool_.begin(), pool_.end(),
                                   [&](const auto& e) { return e.get() == victim; });
      pool_.erase(it);  // ~SecureRsaKey scrubs the working copy
      ++stats_.evictions;
      if (metrics_on) {
        reg.counter("enc_keystore_host.evictions").add(1);
      }
    }

    // Materialize under the lock (misses serialize). Authentication comes
    // FIRST: a tampered blob or dead domain refuses before any plaintext
    // byte exists, and the pool is left exactly as it was.
    obs::Tracer::Span unseal_span(obs::Tracer::global(), "enc_keystore_host.unseal");
    if (unseal_span.live()) {
      unseal_span.add(obs::TraceAttr::n("key", static_cast<double>(id)));
    }
    const auto unseal_t0 = std::chrono::steady_clock::now();
    const Sealed& s = sealed_.at(id);
    auto der = unseal_authenticated(s.blob, domain_);
    if (!der) {
      ++stats_.refusals;
      if (metrics_on) {
        reg.counter("enc_keystore_host.refusals").add(1);
      }
      return nullptr;
    }
    ++stats_.pool_misses;
    ++stats_.unseals;
    auto key = crypto::der_decode_private_key(*der);
    wipe(*der);
    assert(key.has_value());  // MAC verified: the DER is authentic
    auto entry = std::unique_ptr<PoolEntry>(
        new PoolEntry{id, secure::SecureRsaKey::from_key_scrubbing(*key),
                      /*pins=*/1, ++clock_});
    pool_.push_back(std::move(entry));
    if (metrics_on) {
      reg.counter("enc_keystore_host.pool_misses").add(1);
      reg.counter("enc_keystore_host.unseals").add(1);
      reg.histogram("enc_keystore_host.unseal_ms")
          .record(std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - unseal_t0)
                      .count());
      reg.gauge("enc_keystore_host.working_set_occupancy")
          .set(static_cast<double>(pool_.size()));
    }
    return pool_.back().get();
  }
}

std::optional<bn::Bignum> EncryptedHostKeystore::sign(KeyId id,
                                                      const bn::Bignum& m) {
  obs::Tracer::Span span(obs::Tracer::global(), "enc_keystore_host.sign");
  if (span.live()) {
    span.add(obs::TraceAttr::n("key", static_cast<double>(id)));
  }
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.counter("enc_keystore_host.ops").add(1);
  }
  PoolEntry* entry = nullptr;
  {
    util::MutexLock lk(mu_);
    ++stats_.ops;
    entry = acquire(lk, id);
  }
  if (entry == nullptr) return std::nullopt;  // fail-closed, nothing pinned
  bn::Bignum result = entry->key.sign(m);  // CRT math outside the lock
  {
    util::MutexLock lk(mu_);
    --entry->pins;
  }
  pool_cv_.notify_all();
  return result;
}

bool EncryptedHostKeystore::contains(KeyId id) const {
  util::MutexLock lk(mu_);
  return sealed_.count(id) != 0;
}

bool EncryptedHostKeystore::pooled(KeyId id) const {
  util::MutexLock lk(mu_);
  return std::any_of(pool_.begin(), pool_.end(),
                     [&](const auto& e) { return e->id == id; });
}

std::size_t EncryptedHostKeystore::size() const {
  util::MutexLock lk(mu_);
  return sealed_.size();
}

std::size_t EncryptedHostKeystore::pooled_count() const {
  util::MutexLock lk(mu_);
  return pool_.size();
}

EncryptedHostStats EncryptedHostKeystore::stats() const {
  util::MutexLock lk(mu_);
  return stats_;
}

void EncryptedHostKeystore::evict_all() {
  util::MutexLock lk(mu_);
  // Manual loop rather than std::erase_if: the thread-safety analysis
  // cannot see through a lambda touching guarded members.
  for (auto it = pool_.begin(); it != pool_.end();) {
    if ((*it)->pins == 0) {
      it = pool_.erase(it);  // ~SecureRsaKey scrubs the working copy
      ++stats_.evictions;
    } else {
      ++it;
    }
  }
}

bool EncryptedHostKeystore::flip_blob_byte(KeyId id, std::size_t offset) {
  util::MutexLock lk(mu_);
  const auto it = sealed_.find(id);
  if (it == sealed_.end() || offset >= it->second.blob.size()) return false;
  it->second.blob[offset] ^= std::byte{0x01};
  return true;
}

std::size_t EncryptedHostKeystore::blob_size(KeyId id) const {
  util::MutexLock lk(mu_);
  const auto it = sealed_.find(id);
  return it == sealed_.end() ? 0 : it->second.blob.size();
}

}  // namespace keyguard::keystore
