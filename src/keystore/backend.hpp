// Keystore backend selection for the sim-side multi-tenant servers.
//
// The SNI frontend (and the tools/benches built on it) can route private
// operations through either pool discipline:
//
//   kMlocked    SimKeystore — N plaintext limb pages, all mlocked, LRU +
//               scrub; the PR-3 bound bounded_locked_pages_only(N).
//   kEncrypted  EncryptedPoolKeystore — N pool pages CIPHERTEXT in RAM,
//               at most W transiently decrypted (mlocked while plaintext);
//               the tighter bound bounded_plaintext_working_set(W).
//
// SimBackend is the small seam both implement. try_private_op is
// deliberately optional-returning: the encrypted backend is fail-closed
// (corrupt blob or powered-off domain refuses), and the frontend must
// surface that as a failed handshake, never as a plaintext fallback.
#pragma once

#include <optional>
#include <string>

#include "bignum/bignum.hpp"
#include "crypto/rsa.hpp"
#include "keystore/sealed_blob.hpp"

namespace keyguard::keystore {

enum class PoolBackend { kMlocked, kEncrypted };

inline const char* pool_backend_name(PoolBackend b) noexcept {
  return b == PoolBackend::kEncrypted ? "encrypted" : "mlocked";
}

class SimBackend {
 public:
  virtual ~SimBackend() = default;

  /// Loads + seals a PEM key file through the kernel; nullopt on missing
  /// or malformed input.
  virtual std::optional<KeyId> ingest_pem(const std::string& vfs_path) = 0;

  /// Public half (host-side copy; public material is not secret).
  virtual const crypto::RsaPublicKey& public_key(KeyId id) const = 0;

  /// m = c^d mod N, fail-closed: nullopt when the key cannot be
  /// materialized (encrypted backend with a corrupt blob or dead domain).
  virtual std::optional<bn::Bignum> try_private_op(KeyId id,
                                                   const bn::Bignum& c) = 0;

  /// Scrubs and releases everything; must run before the owning process
  /// exits. Idempotent.
  virtual void shutdown() = 0;

  /// The backend's plaintext-page bound: N for the mlocked pool, W for
  /// the encrypted pool's working set.
  virtual std::size_t plaintext_page_bound() const = 0;

  virtual const char* backend_name() const = 0;
};

}  // namespace keyguard::keystore
