#include "keystore/encrypted_keystore.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>

#include "crypto/pem.hpp"
#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/physmem.hpp"

namespace keyguard::keystore {

namespace {

sslsim::SslConfig ssl_config_for(const EncryptedKeystoreConfig& cfg) {
  sslsim::SslConfig out;
  out.auto_align = false;  // the working set, not per-key pages, bounds residue
  out.clear_temporaries = cfg.clear_temporaries;
  out.open_keys_nocache = cfg.open_keys_nocache;
  return out;
}

void bus_event(obs::ObsEventKind kind, std::uint64_t a, std::uint64_t b = 0) {
  if (auto& bus = obs::EventBus::global(); bus.enabled()) {
    bus.publish(kind, a, b);
  }
}

}  // namespace

// keylint: allow(unscrubbed) — the pages allocated here outlive the ctor
// by design; evict_slot() and shutdown() scrub them at end of life
EncryptedPoolKeystore::EncryptedPoolKeystore(sim::Kernel& kernel,
                                             sim::Process& proc,
                                             sim::CoprocessorDomain& domain,
                                             EncryptedKeystoreConfig cfg)
    : kernel_(kernel),
      proc_(proc),
      domain_(domain),
      cfg_(cfg),
      ssl_(kernel, ssl_config_for(cfg)) {
  assert(cfg_.working_set >= 1 && cfg_.working_set <= cfg_.pool_pages);
  // The pool: N pages allocated up front, NOT mlocked — at rest they hold
  // ciphertext (or zeroes), which may swap out or be imaged harmlessly.
  // mlock is acquired per page exactly for the plaintext interval.
  slots_.resize(cfg_.pool_pages);
  for (auto& s : slots_) {
    // keylint: allow(unlocked) — ciphertext at rest is deliberately
    // swappable; decrypt_into_slot mlocks per page for the plaintext window
    s.page = kernel_.mmap_anon(proc_, sim::kPageSize, /*mlocked=*/false,
                               "enc keystore pool slot");
    assert(s.page != 0);
  }
}

EncryptedPoolKeystore::~EncryptedPoolKeystore() { shutdown(); }

void EncryptedPoolKeystore::publish_occupancy() {
  auto& reg = obs::MetricsRegistry::global();
  if (!reg.enabled()) return;
  reg.gauge("enc_keystore.working_set_occupancy")
      .set(static_cast<double>(plaintext_count()));
  reg.gauge("enc_keystore.pool_occupancy")
      .set(static_cast<double>(pooled_count()));
}

std::optional<KeyId> EncryptedPoolKeystore::ingest_pem(const std::string& vfs_path) {
  assert(!shut_);
  const int flags =
      cfg_.open_keys_nocache ? sim::kOpenNoCache : sim::kOpenReadOnly;
  auto file = kernel_.read_file(proc_, vfs_path, flags);
  if (!file) return std::nullopt;

  const sim::VirtAddr pem_buf =
      kernel_.heap_alloc(proc_, file->size(), "PEM read buffer (keystore ingest)");
  assert(pem_buf != 0);
  kernel_.mem_write(proc_, pem_buf, *file, sim::TaintTag::kPem);

  const auto drop_pem = [&] {
    if (cfg_.clear_temporaries) {
      kernel_.heap_clear_free(proc_, pem_buf);
    } else {
      kernel_.heap_free(proc_, pem_buf);  // keylint: allow(raw-free)
    }
  };

  auto parsed = crypto::pem_decode_private_key(
      std::string_view(reinterpret_cast<const char*>(file->data()), file->size()));
  if (!parsed) {
    drop_pem();
    return std::nullopt;
  }

  const KeyId id = next_id_++;
  Entry e;
  e.pub = parsed->public_key();

  auto der = crypto::der_encode_private_key(*parsed);
  auto blob = seal_authenticated(der, domain_, blob_nonce(id));
  wipe(der);
  parsed->scrub_private_parts();
  drop_pem();
  if (!blob) {
    // Domain unavailable: refuse the ingest outright. Storing plaintext
    // "until the domain comes back" would be exactly the fallback this
    // backend exists to rule out.
    ++stats_.refusals;
    bus_event(obs::ObsEventKind::kKeystoreRefusal, id);
    return std::nullopt;
  }

  e.blob_len = blob->size();
  e.blob = kernel_.heap_alloc(proc_, blob->size(), "authenticated key blob");
  assert(e.blob != 0);
  kernel_.mem_write(proc_, e.blob, *blob, sim::TaintTag::kSealed);

  keys_.emplace(id, std::move(e));
  ++stats_.ingested;
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.counter("enc_keystore.ingested").add(1);
  }
  return id;
}

const crypto::RsaPublicKey& EncryptedPoolKeystore::public_key(KeyId id) const {
  return keys_.at(id).pub;
}

std::optional<std::vector<std::byte>> EncryptedPoolKeystore::fetch_keystream(
    std::uint64_t nonce, std::size_t len, KeystreamCache* cache) {
  if (cache) {
    const auto it = cache->find(nonce);
    if (it != cache->end() && it->second.size() >= len) {
      ++stats_.prefetch_hits;
      return std::vector<std::byte>(it->second.begin(), it->second.begin() + len);
    }
  }
  std::vector<std::byte> ks(len);
  if (!domain_.keystream(nonce, ks)) return std::nullopt;
  return ks;
}

void EncryptedPoolKeystore::reencrypt_slot(std::size_t si) {
  Slot& s = slots_[si];
  assert(s.occupant && s.is_plaintext);
  obs::Tracer::Span span(obs::Tracer::global(), "enc_keystore.reencrypt");
  if (span.live()) {
    span.add(obs::TraceAttr::n("key", static_cast<double>(*s.occupant)));
    span.add(obs::TraceAttr::n("slot", static_cast<double>(si)));
  }
  // Fresh epoch per re-encryption: the (key, epoch) pair is never reused
  // for two different page states, so CTR nonces never collide.
  ++s.epoch;
  std::vector<std::byte> ks(s.used_bytes);
  if (!domain_.keystream(page_nonce(*s.occupant, s.epoch), ks)) {
    // Domain gone mid-flight: we cannot produce ciphertext, so fail in the
    // amnesiac direction — scrub the slot. The key survives as its blob.
    evict_slot(si);
    ++stats_.evictions;
    return;
  }
  std::vector<std::byte> page(s.used_bytes);
  kernel_.mem_read(proc_, s.page, page);
  for (std::size_t i = 0; i < page.size(); ++i) page[i] ^= ks[i];
  wipe(ks);
  // The write retags the bytes kSealed — from this instant the frame holds
  // ciphertext, drops out of the secret-taint census, and may be unlocked.
  kernel_.mem_write(proc_, s.page, page, sim::TaintTag::kSealed);
  wipe(page);
  kernel_.mlock_range(proc_, s.page, sim::kPageSize, /*locked=*/false);
  s.is_plaintext = false;
  ++stats_.reencrypts;
  bus_event(obs::ObsEventKind::kKeystoreSeal, *s.occupant);
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.counter("enc_keystore.reencrypts").add(1);
  }
  publish_occupancy();
}

void EncryptedPoolKeystore::make_working_room() {
  while (plaintext_count() >= cfg_.working_set) {
    std::size_t lru = slots_.size();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].is_plaintext) continue;
      if (lru == slots_.size() || slots_[i].last_used < slots_[lru].last_used) {
        lru = i;
      }
    }
    assert(lru < slots_.size());
    reencrypt_slot(lru);
  }
}

std::optional<std::size_t> EncryptedPoolKeystore::ensure_plaintext(
    KeyId id, KeystreamCache* cache) {
  auto& reg = obs::MetricsRegistry::global();
  const bool metrics_on = reg.enabled();
  const auto key_it = keys_.find(id);
  if (key_it == keys_.end()) {
    ++stats_.refusals;
    bus_event(obs::ObsEventKind::kKeystoreRefusal, id);
    return std::nullopt;
  }
  Entry& e = key_it->second;

  // Working-set hit: the page is plaintext right now, no domain traffic.
  if (e.slot >= 0 && slots_[static_cast<std::size_t>(e.slot)].is_plaintext) {
    ++stats_.working_hits;
    if (metrics_on) reg.counter("enc_keystore.working_hits").add(1);
    slots_[static_cast<std::size_t>(e.slot)].last_used = ++clock_;
    return static_cast<std::size_t>(e.slot);
  }

  obs::Tracer::Span unseal_span(obs::Tracer::global(), "enc_keystore.unseal");
  if (unseal_span.live()) {
    unseal_span.add(obs::TraceAttr::n("key", static_cast<double>(id)));
    unseal_span.add(
        obs::TraceAttr::s("kind", e.slot >= 0 ? "page" : "blob"));
  }
  const auto unseal_t0 = std::chrono::steady_clock::now();
  const auto record_unseal = [&] {
    if (!metrics_on) return;
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - unseal_t0)
                          .count();
    reg.histogram("enc_keystore.unseal_ms").record(ms);
  };

  if (e.slot >= 0) {
    // Pooled ciphertext: decrypt the page in place. The keystream is
    // fetched BEFORE any pool mutation so a refusal leaves no trace.
    Slot& s = slots_[static_cast<std::size_t>(e.slot)];
    auto ks = fetch_keystream(page_nonce(id, s.epoch), s.used_bytes, cache);
    if (!ks) {
      ++stats_.refusals;
      if (metrics_on) reg.counter("enc_keystore.refusals").add(1);
      bus_event(obs::ObsEventKind::kKeystoreRefusal, id);
      return std::nullopt;
    }
    make_working_room();
    std::vector<std::byte> page(s.used_bytes);
    kernel_.mem_read(proc_, s.page, page);
    for (std::size_t i = 0; i < page.size(); ++i) page[i] ^= (*ks)[i];
    wipe(*ks);
    // mlock BEFORE the plaintext write lands: there is no instant where
    // the frame holds secret bytes without being pinned.
    kernel_.mlock_range(proc_, s.page, sim::kPageSize, /*locked=*/true);
    kernel_.mem_write(proc_, s.page, page, sim::TaintTag::kPoolKey);
    wipe(page);
    s.is_plaintext = true;
    s.last_used = ++clock_;
    ++stats_.page_decrypts;
    if (metrics_on) reg.counter("enc_keystore.page_decrypts").add(1);
    bus_event(obs::ObsEventKind::kKeystoreUnseal, id, /*blob=*/0);
    record_unseal();
    publish_occupancy();
    return static_cast<std::size_t>(e.slot);
  }

  // Cold miss: authenticate + decrypt the blob. This happens BEFORE any
  // pool mutation — a corrupt blob or dead domain refuses with the pool
  // untouched (no eviction, no admission, no partial plaintext).
  std::vector<std::byte> blob(e.blob_len);
  kernel_.mem_read(proc_, e.blob, blob);
  std::span<const std::byte> ks_span;
  if (cache && e.blob_len >= kSealedHeaderBytes + kAuthTagBytes) {
    const auto it = cache->find(blob_nonce(id));
    const std::size_t ct_len = e.blob_len - kSealedHeaderBytes - kAuthTagBytes;
    if (it != cache->end() && it->second.size() >= ct_len) {
      ++stats_.prefetch_hits;
      ks_span = std::span(it->second).first(ct_len);
    }
  }
  auto der = unseal_authenticated(blob, domain_, ks_span);
  if (!der) {
    ++stats_.refusals;
    if (metrics_on) reg.counter("enc_keystore.refusals").add(1);
    bus_event(obs::ObsEventKind::kKeystoreRefusal, id);
    return std::nullopt;
  }
  auto key = crypto::der_decode_private_key(*der);
  wipe(*der);
  if (!key) {  // cannot happen once the tag verified, but stay closed
    ++stats_.refusals;
    if (metrics_on) reg.counter("enc_keystore.refusals").add(1);
    bus_event(obs::ObsEventKind::kKeystoreRefusal, id);
    return std::nullopt;
  }

  // Pick a slot: first empty, else evict the overall-LRU occupant.
  std::size_t victim = slots_.size();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].occupant) {
      victim = i;
      break;
    }
  }
  if (victim == slots_.size()) {
    victim = 0;
    for (std::size_t i = 1; i < slots_.size(); ++i) {
      if (slots_[i].last_used < slots_[victim].last_used) victim = i;
    }
    evict_slot(victim);
    ++stats_.evictions;
  }
  make_working_room();

  Slot& s = slots_[victim];
  s.view = sslsim::SimRsaKey{};
  s.view.cache_private = false;
  kernel_.mlock_range(proc_, s.page, sim::kPageSize, /*locked=*/true);
  sim::VirtAddr cursor = s.page;
  const auto place = [&](sslsim::SimBignum& part, const bn::Bignum& v) {
    const auto image = sslsim::SslLibrary::limb_image(v);
    kernel_.mem_write(proc_, cursor, image, sim::TaintTag::kPoolKey);
    part = sslsim::SimBignum{cursor, image.size() / 8, /*static_data=*/true};
    cursor += image.size();
  };
  place(s.view.d, key->d);
  place(s.view.p, key->p);
  place(s.view.q, key->q);
  place(s.view.dmp1, key->dmp1);
  place(s.view.dmq1, key->dmq1);
  place(s.view.iqmp, key->iqmp);
  assert(cursor - s.page <= sim::kPageSize);
  s.used_bytes = cursor - s.page;
  s.occupant = id;
  s.is_plaintext = true;
  s.last_used = ++clock_;
  e.slot = static_cast<int>(victim);
  key->scrub_private_parts();
  ++stats_.blob_unseals;
  if (metrics_on) reg.counter("enc_keystore.blob_unseals").add(1);
  bus_event(obs::ObsEventKind::kKeystoreUnseal, id, /*blob=*/1);
  record_unseal();
  publish_occupancy();
  return victim;
}

std::optional<bn::Bignum> EncryptedPoolKeystore::op_internal(
    KeyId id, const bn::Bignum& c, KeystreamCache* cache) {
  assert(!shut_);
  const auto slot = ensure_plaintext(id, cache);
  if (!slot) return std::nullopt;
  ++stats_.ops;
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.counter("enc_keystore.ops").add(1);
  }
  return ssl_.rsa_private_op(proc_, slots_[*slot].view, c);
}

std::optional<bn::Bignum> EncryptedPoolKeystore::try_private_op(
    KeyId id, const bn::Bignum& c) {
  return op_internal(id, c, nullptr);
}

std::vector<std::optional<bn::Bignum>> EncryptedPoolKeystore::private_op_batch(
    std::span<const KeyId> ids, std::span<const bn::Bignum> cs) {
  assert(ids.size() == cs.size());
  ++stats_.batches;

  // Prefetch: one CTR round trip covers every keystream the queued misses
  // will need — page keystreams for pooled-but-encrypted keys (at their
  // CURRENT epoch) and blob keystreams for unpooled ones. An epoch that
  // moves mid-batch (working-set churn) simply misses the cache and falls
  // back to a single fetch: amortization never changes results.
  KeystreamCache cache;
  for (const KeyId id : ids) {
    const auto it = keys_.find(id);
    if (it == keys_.end()) continue;
    const Entry& e = it->second;
    std::uint64_t nonce;
    std::size_t len;
    if (e.slot >= 0) {
      const Slot& s = slots_[static_cast<std::size_t>(e.slot)];
      if (s.is_plaintext) continue;  // will hit, no keystream needed
      nonce = page_nonce(id, s.epoch);
      len = s.used_bytes;
    } else {
      if (e.blob_len < kSealedHeaderBytes + kAuthTagBytes) continue;
      nonce = blob_nonce(id);
      len = e.blob_len - kSealedHeaderBytes - kAuthTagBytes;
    }
    cache.try_emplace(nonce, len, std::byte{0});
  }
  if (!cache.empty()) {
    std::vector<sim::CoprocessorDomain::KeystreamRequest> reqs;
    reqs.reserve(cache.size());
    for (auto& [nonce, out] : cache) {
      reqs.push_back({nonce, 0, std::span(out)});
    }
    if (!domain_.keystream_batch(reqs)) {
      cache.clear();  // domain off: per-op paths will refuse on their own
    }
  }

  std::vector<std::optional<bn::Bignum>> out;
  out.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    out.push_back(op_internal(ids[i], cs[i], &cache));
  }
  for (auto& [nonce, ks] : cache) wipe(ks);
  return out;
}

void EncryptedPoolKeystore::reencrypt_all() {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].occupant && slots_[i].is_plaintext) {
      reencrypt_slot(i);
    }
  }
}

void EncryptedPoolKeystore::evict_slot(std::size_t si) {
  Slot& slot = slots_[si];
  if (!slot.occupant) return;
  obs::Tracer::Span span(obs::Tracer::global(), "enc_keystore.evict");
  if (span.live()) {
    span.add(obs::TraceAttr::n("key", static_cast<double>(*slot.occupant)));
    span.add(obs::TraceAttr::n("slot", static_cast<double>(si)));
    span.add(obs::TraceAttr::b("scrub", cfg_.scrub_on_evict));
  }
  keys_.at(*slot.occupant).slot = -1;
  bus_event(obs::ObsEventKind::kKeystoreEvict, *slot.occupant);
  if (cfg_.scrub_on_evict && slot.used_bytes > 0) {
    kernel_.mem_zero(proc_, slot.page, slot.used_bytes);
  }
  if (slot.is_plaintext) {
    kernel_.mlock_range(proc_, slot.page, sim::kPageSize, /*locked=*/false);
  }
  slot.occupant.reset();
  slot.view = sslsim::SimRsaKey{};
  slot.used_bytes = 0;
  slot.is_plaintext = false;
  // slot.epoch is NOT reset: it increments monotonically for the life of
  // the page so no (key, epoch) nonce pair can recur with new contents.
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.counter("enc_keystore.evictions").add(1);
  }
  publish_occupancy();
}

void EncryptedPoolKeystore::evict(KeyId id) {
  const auto it = keys_.find(id);
  if (it == keys_.end() || it->second.slot < 0) return;
  evict_slot(static_cast<std::size_t>(it->second.slot));
  ++stats_.evictions;
}

void EncryptedPoolKeystore::evict_all() {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].occupant) {
      evict_slot(i);
      ++stats_.evictions;
    }
  }
}

void EncryptedPoolKeystore::shutdown() {
  if (shut_) return;
  shut_ = true;
  evict_all();
  for (auto& s : slots_) {
    kernel_.munmap(proc_, s.page, sim::kPageSize);
    s.page = 0;
  }
  for (auto& [id, e] : keys_) {
    if (e.blob == 0) continue;
    // Authenticated ciphertext at rest: nothing secret to scrub.
    kernel_.heap_free(proc_, e.blob);  // keylint: allow(raw-free)
    e.blob = 0;
  }
}

bool EncryptedPoolKeystore::pooled(KeyId id) const {
  const auto it = keys_.find(id);
  return it != keys_.end() && it->second.slot >= 0;
}

bool EncryptedPoolKeystore::plaintext(KeyId id) const {
  const auto it = keys_.find(id);
  return it != keys_.end() && it->second.slot >= 0 &&
         slots_[static_cast<std::size_t>(it->second.slot)].is_plaintext;
}

std::size_t EncryptedPoolKeystore::pooled_count() const {
  std::size_t n = 0;
  for (const auto& s : slots_) n += s.occupant.has_value();
  return n;
}

std::size_t EncryptedPoolKeystore::plaintext_count() const {
  std::size_t n = 0;
  for (const auto& s : slots_) n += s.is_plaintext;
  return n;
}

}  // namespace keyguard::keystore
