// Encrypted-at-rest pool keystore: ciphertext in RAM, plaintext in a
// working set.
//
// SimKeystore bounds plaintext to N mlocked pool pages — but all N are
// scannable at every instant. This backend takes MemShield's next step:
// the N pool pages themselves are SHA-256-CTR ciphertext in simulated RAM
// except inside a working set of W << N pages that are transiently
// decrypted IN PLACE, and the page-encryption key lives in a
// CoprocessorDomain whose bytes are outside PhysicalMemory entirely.
// What a scanner, taint sweep, or cold-boot image can see at any instant:
//
//     plaintext key material ⊆ W working-set pages, all mlocked
//     (TaintAuditor::bounded_plaintext_working_set(W); there is no
//      master-key page — the domain holds the key off-RAM)
//
// Lifecycle of one key:
//   ingest     PEM -> DER -> authenticated KSB2 blob ("KSB2" || nonce ||
//              ciphertext || tag) in ordinary heap, tagged kSealed.
//   miss       blob unsealed via the domain (tag verified BEFORE any
//              decryption — fail-closed), limb images placed on a pool
//              page (mlocked, kPoolKey), page joins the working set.
//   squeeze    when the working set is full, the LRU plaintext page is
//              RE-ENCRYPTED in place (fresh epoch nonce), retagged
//              kSealed, and munlocked — it may swap, it may be imaged,
//              it is ciphertext.
//   re-entry   ciphertext page decrypted in place (one CTR request),
//              re-mlocked, back in the working set — no blob parse.
//   evict      slot scrubbed (bytes + taint) and recycled.
//
// Fail-closed: a corrupted blob or a powered-off domain makes
// try_private_op return nullopt; nothing plaintext materializes and the
// pool is not touched. A re-encrypt that cannot reach the domain falls
// back to scrubbing the slot — the amnesiac direction, never the leaky
// one.
//
// Batching: private_op_batch prefetches every CTR keystream the queued
// misses will need in ONE domain round trip (keystream_batch), so unseal
// cost amortizes under load. Batching is a pure optimization — results
// and final pool state are bit-identical to one-at-a-time ops (oracle-
// checked by tests/keystore_batch_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/rsa.hpp"
#include "keystore/backend.hpp"
#include "keystore/sealed_blob.hpp"
#include "sim/coprocessor.hpp"
#include "sim/kernel.hpp"
#include "sslsim/ssl_library.hpp"

namespace keyguard::keystore {

struct EncryptedKeystoreConfig {
  std::size_t pool_pages = 8;   ///< N: pool slots (ciphertext-capable)
  std::size_t working_set = 2;  ///< W: max simultaneously-plaintext slots
  bool scrub_on_evict = true;   ///< zero slots before reuse/teardown
  bool clear_temporaries = true;  ///< clear-free ingest + CRT scratch
  bool open_keys_nocache = true;  ///< O_NOCACHE on key files
  /// Per-keystore KSB2 blob-nonce salt (salted_nonce; 0 = legacy
  /// unsalted). Two tenants sharing one coprocessor domain otherwise
  /// seal identical keys to identical ciphertext — dedup-detectable.
  std::uint64_t blob_salt = 0;
};

struct EncryptedKeystoreStats {
  std::uint64_t ingested = 0;
  std::uint64_t ops = 0;            ///< private operations served
  std::uint64_t working_hits = 0;   ///< op found its page already plaintext
  std::uint64_t page_decrypts = 0;  ///< ciphertext page -> plaintext in place
  std::uint64_t reencrypts = 0;     ///< plaintext page -> ciphertext in place
  std::uint64_t blob_unseals = 0;   ///< KSB2 blob -> fresh pool slot
  std::uint64_t evictions = 0;      ///< pool slots recycled (scrubbed)
  std::uint64_t refusals = 0;       ///< fail-closed denials
  std::uint64_t batches = 0;        ///< private_op_batch calls
  std::uint64_t prefetch_hits = 0;  ///< keystreams served from a batch fetch
};

class EncryptedPoolKeystore final : public SimBackend {
 public:
  /// Maps the N pool pages (NOT mlocked — they hold ciphertext at rest;
  /// pages are mlocked only while plaintext) in `proc`. `domain` must
  /// outlive the keystore and may be shared.
  EncryptedPoolKeystore(sim::Kernel& kernel, sim::Process& proc,
                        sim::CoprocessorDomain& domain,
                        EncryptedKeystoreConfig cfg);
  ~EncryptedPoolKeystore() override;

  EncryptedPoolKeystore(const EncryptedPoolKeystore&) = delete;
  EncryptedPoolKeystore& operator=(const EncryptedPoolKeystore&) = delete;

  /// PEM file -> authenticated blob in heap. nullopt on missing/malformed
  /// input or a powered-off domain (nothing is stored that could not be
  /// reopened).
  std::optional<KeyId> ingest_pem(const std::string& vfs_path) override;

  const crypto::RsaPublicKey& public_key(KeyId id) const override;

  /// Fail-closed private op: nullopt when the blob fails authentication
  /// or the domain is unavailable. A key whose page is already plaintext
  /// serves without any domain traffic.
  std::optional<bn::Bignum> try_private_op(KeyId id, const bn::Bignum& c) override;

  /// Batched ops: all CTR keystreams the queued misses need are fetched
  /// in ONE domain round trip, then the ops run in order. Element i of
  /// the result corresponds to (ids[i], cs[i]); per-op failures are
  /// nullopt, exactly as try_private_op would return. ids and cs must be
  /// the same length.
  std::vector<std::optional<bn::Bignum>> private_op_batch(
      std::span<const KeyId> ids, std::span<const bn::Bignum> cs);

  /// Re-encrypts every plaintext page (empties the working set without
  /// evicting anyone). The quiesce step before fork: a COW child of a
  /// quiesced process shares only ciphertext. With the domain off, slots
  /// are scrubbed instead (amnesiac fallback).
  void reencrypt_all();

  /// Drops `id`'s slot entirely (scrub per config). No-op when unpooled.
  void evict(KeyId id);
  void evict_all();

  /// Scrubs + unmaps every pool page and frees the blobs. Idempotent.
  void shutdown() override;

  std::size_t plaintext_page_bound() const override { return cfg_.working_set; }
  const char* backend_name() const override {
    return pool_backend_name(PoolBackend::kEncrypted);
  }

  /// Key holds a pool slot (plaintext OR ciphertext).
  bool pooled(KeyId id) const;
  /// Key's page is currently plaintext (in the working set).
  bool plaintext(KeyId id) const;
  std::size_t pooled_count() const;
  std::size_t plaintext_count() const;
  std::size_t key_count() const noexcept { return keys_.size(); }
  std::size_t pool_pages() const noexcept { return cfg_.pool_pages; }
  std::size_t working_set() const noexcept { return cfg_.working_set; }

  /// Virtual address / written extent of pool slot `i` (tests inspect
  /// scrub + ciphertext state).
  sim::VirtAddr slot_page(std::size_t i) const { return slots_.at(i).page; }
  std::optional<KeyId> slot_occupant(std::size_t i) const {
    return slots_.at(i).occupant;
  }

  /// Heap address/length of `id`'s sealed blob — the fault-injection
  /// surface (tests flip bits through kernel memory like a disclosure-
  /// then-tamper attack would).
  sim::VirtAddr blob_address(KeyId id) const { return keys_.at(id).blob; }
  std::size_t blob_size(KeyId id) const { return keys_.at(id).blob_len; }

  /// Salted at-rest blob nonce (bit 63 clear — never collides with
  /// page_nonce space, salted or not). Public so salting tests can pin
  /// the legacy salt==0 identity.
  std::uint64_t blob_nonce(KeyId id) const {
    return salted_nonce(id, cfg_.blob_salt);
  }

  sim::CoprocessorDomain& domain() noexcept { return domain_; }
  const EncryptedKeystoreStats& stats() const noexcept { return stats_; }
  const EncryptedKeystoreConfig& config() const noexcept { return cfg_; }

 private:
  struct Entry {
    sim::VirtAddr blob = 0;  ///< heap chunk: authenticated KSB2 blob
    std::size_t blob_len = 0;
    crypto::RsaPublicKey pub;
    int slot = -1;  ///< pool slot index when materialized
  };
  struct Slot {
    sim::VirtAddr page = 0;  ///< one pool page (mlocked iff plaintext)
    std::optional<KeyId> occupant;
    sslsim::SimRsaKey view;      ///< static_data views into the page
    std::size_t used_bytes = 0;  ///< bytes written (crypt/scrub extent)
    std::uint64_t last_used = 0;
    bool is_plaintext = false;
    std::uint64_t epoch = 0;  ///< bumped per re-encrypt; part of the nonce
  };

  /// Prefetched CTR keystreams for a batch, keyed by nonce.
  using KeystreamCache = std::map<std::uint64_t, std::vector<std::byte>>;

  /// CTR nonce for `id`'s page at `epoch`. Top bit set keeps the page
  /// nonce space disjoint from blob nonces (which are the small KeyIds).
  static std::uint64_t page_nonce(KeyId id, std::uint64_t epoch) {
    return (1ull << 63) | (epoch << 24) | id;
  }

  std::optional<bn::Bignum> op_internal(KeyId id, const bn::Bignum& c,
                                        KeystreamCache* cache);
  /// Hit / in-place decrypt / blob unseal. nullopt = fail-closed refusal.
  std::optional<std::size_t> ensure_plaintext(KeyId id, KeystreamCache* cache);
  /// Keystream for (nonce, len): batch cache first, else one round trip.
  std::optional<std::vector<std::byte>> fetch_keystream(std::uint64_t nonce,
                                                        std::size_t len,
                                                        KeystreamCache* cache);
  /// Re-encrypts LRU plaintext slots until the working set has room.
  void make_working_room();
  /// Plaintext -> ciphertext in place (or scrub when the domain is gone).
  void reencrypt_slot(std::size_t s);
  /// Scrub + detach slot `s` (full eviction).
  void evict_slot(std::size_t s);
  void publish_occupancy();

  sim::Kernel& kernel_;
  sim::Process& proc_;
  sim::CoprocessorDomain& domain_;
  EncryptedKeystoreConfig cfg_;
  sslsim::SslLibrary ssl_;
  std::vector<Slot> slots_;
  std::map<KeyId, Entry> keys_;
  KeyId next_id_ = 1;
  std::uint64_t clock_ = 0;
  EncryptedKeystoreStats stats_;
  bool shut_ = false;
};

}  // namespace keyguard::keystore
