// Simulated multi-tenant keystore: many keys at rest, few in plaintext.
//
// The paper's integrated defense gives ONE server key one mlocked page.
// An SNI front end holds thousands, and "mlock everything" neither scales
// (locked memory is a hard rlimit) nor bounds the disclosure surface. The
// keystore keeps every ingested key SEALED (sealed_blob.hpp) in ordinary
// heap — ciphertext, tagged TaintTag::kSealed, harmless to disclose — and
// materializes plaintext on demand into a fixed pool of N mlocked pages
// with LRU eviction + scrub. The master key is pinned on its own mlocked
// page exactly like the paper's vault page. The measurable claim, at any
// instant under any traffic mix:
//
//     plaintext key material ⊆ N pool pages + 1 master page, all mlocked
//
// i.e. TaintAuditor::bounded_locked_pages_only(N) holds.
//
// Everything flows through sim::Kernel so the scanner and ShadowTaintMap
// see the same copy population a real server would produce: PEM read
// buffers on ingest, DER scratch, CRT/Montgomery temporaries on every
// private op (cache_private is off — cached contexts would be per-key
// plaintext outside the pool), and the scrub-on-evict writes themselves.
// Pool slots hold the six private parts as little-endian limb images (the
// rsa_memory_align layout), so the scanner's d/P/Q needles match pooled
// keys byte-for-byte.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/rsa.hpp"
#include "keystore/backend.hpp"
#include "keystore/sealed_blob.hpp"
#include "sim/kernel.hpp"
#include "sslsim/ssl_library.hpp"

namespace keyguard::keystore {

/// Defense knobs, mirroring the paper's protection levels (see
/// core::keystore_config_for): the zero-protection baseline keeps keys
/// PLAINTEXT at rest and never scrubs — the strawman the bench contrasts.
struct SimKeystoreConfig {
  std::size_t pool_pages = 8;   ///< N: max simultaneously-plaintext keys
  bool seal_at_rest = true;     ///< encrypt blobs under the master key
  bool scrub_on_evict = true;   ///< zero pool slots before reuse/teardown
  bool clear_temporaries = true;  ///< clear-free ingest + CRT scratch
  bool open_keys_nocache = true;  ///< O_NOCACHE on key files (integrated)
  std::uint64_t master_seed = 0x6b657973746f7265ULL;  ///< master-key RNG seed
  /// Per-keystore blob-nonce salt (salted_nonce). 0 = legacy unsalted
  /// layout. Nonzero (unique per tenant) makes sealed blobs
  /// content-UNIQUE across keystores even for identical keys under an
  /// identical master seed — the anti-dedup defense for ciphertext pages.
  std::uint64_t blob_salt = 0;
};

struct SimKeystoreStats {
  std::uint64_t ingested = 0;
  std::uint64_t ops = 0;         ///< private operations served
  std::uint64_t pool_hits = 0;   ///< op found its key already pooled
  std::uint64_t pool_misses = 0; ///< op had to materialize (unseal) first
  std::uint64_t evictions = 0;   ///< occupied slots recycled
  std::uint64_t unseals = 0;     ///< blob decryptions (== misses)
};

class SimKeystore final : public SimBackend {
 public:
  /// Maps the master page and the N pool pages (all mlocked) in `proc`.
  SimKeystore(sim::Kernel& kernel, sim::Process& proc, SimKeystoreConfig cfg);
  ~SimKeystore() override;

  SimKeystore(const SimKeystore&) = delete;
  SimKeystore& operator=(const SimKeystore&) = delete;

  /// Loads a PEM key file through the kernel (page cache, read buffers),
  /// seals it, and stores the blob in heap. The plaintext transients (PEM
  /// buffer, host DER scratch) are scrubbed per config. Returns nullopt on
  /// missing/malformed file.
  std::optional<KeyId> ingest_pem(const std::string& vfs_path) override;

  /// Public half (host-side copy; public material is not secret).
  const crypto::RsaPublicKey& public_key(KeyId id) const override;

  /// m = c^d mod N for key `id`: materializes the key into a pool slot if
  /// needed (LRU eviction + scrub when full), then runs the CRT private op
  /// through the simulated SSL library.
  bn::Bignum private_op(KeyId id, const bn::Bignum& c);

  /// SimBackend shape of private_op. The mlocked pool can always
  /// materialize (the master key is local), so this never refuses.
  std::optional<bn::Bignum> try_private_op(KeyId id, const bn::Bignum& c) override {
    return private_op(id, c);
  }

  std::size_t plaintext_page_bound() const override { return cfg_.pool_pages; }
  const char* backend_name() const override {
    return pool_backend_name(PoolBackend::kMlocked);
  }

  /// Drops `id` from the pool (scrub per config). No-op when not pooled.
  void evict(KeyId id);
  /// Empties the whole pool.
  void evict_all();

  /// Evicts the pool, scrubs + unmaps master and pool pages, and frees the
  /// at-rest blobs. Idempotent; called by the destructor. Must run before
  /// the owning process exits.
  void shutdown() override;

  bool pooled(KeyId id) const;
  std::size_t pooled_count() const;
  /// Heap address/length of `id`'s at-rest blob (dedup benches compare
  /// cross-tenant ciphertext bytes; with blob_salt == 0 and a shared
  /// master seed they collide, the channel the salt exists to close).
  sim::VirtAddr blob_address(KeyId id) const { return keys_.at(id).blob; }
  std::size_t blob_size(KeyId id) const { return keys_.at(id).blob_len; }
  std::size_t key_count() const noexcept { return keys_.size(); }
  std::size_t pool_pages() const noexcept { return cfg_.pool_pages; }
  sim::VirtAddr master_page() const noexcept { return master_page_; }
  /// Virtual address of pool slot `i`'s page (tests inspect scrub state).
  sim::VirtAddr slot_page(std::size_t i) const { return slots_.at(i).page; }
  /// Occupant of slot `i`, if any.
  std::optional<KeyId> slot_occupant(std::size_t i) const {
    return slots_.at(i).occupant;
  }
  const SimKeystoreStats& stats() const noexcept { return stats_; }
  const SimKeystoreConfig& config() const noexcept { return cfg_; }

 private:
  struct Entry {
    sim::VirtAddr blob = 0;  ///< heap chunk: sealed blob (or plaintext DER)
    std::size_t blob_len = 0;
    crypto::RsaPublicKey pub;
    int slot = -1;  ///< pool slot index when materialized
  };
  struct Slot {
    sim::VirtAddr page = 0;           ///< one mlocked page
    std::optional<KeyId> occupant;
    sslsim::SimRsaKey view;           ///< static_data views into the page
    std::size_t used_bytes = 0;       ///< bytes written (scrub extent)
    std::uint64_t last_used = 0;      ///< LRU clock
  };

  std::size_t ensure_pooled(KeyId id);
  void evict_slot(std::size_t s);
  std::vector<std::byte> read_master() const;

  sim::Kernel& kernel_;
  sim::Process& proc_;
  SimKeystoreConfig cfg_;
  sslsim::SslLibrary ssl_;
  sim::VirtAddr master_page_ = 0;
  std::vector<Slot> slots_;
  std::map<KeyId, Entry> keys_;
  KeyId next_id_ = 1;
  std::uint64_t clock_ = 0;
  SimKeystoreStats stats_;
  bool shut_ = false;
};

}  // namespace keyguard::keystore
