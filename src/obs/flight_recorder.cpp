#include "obs/flight_recorder.hpp"

#include <fstream>

#include "analysis/taint_auditor.hpp"
#include "obs/clock.hpp"
#include "obs/exposure_monitor.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sim/kernel.hpp"
#include "util/json.hpp"

namespace keyguard::obs {

FlightRecorder::FlightRecorder(Config cfg, const sim::Kernel* kernel,
                               const analysis::ShadowTaintMap* shadow,
                               ExposureMonitor* monitor)
    : cfg_(cfg), kernel_(kernel), shadow_(shadow), monitor_(monitor) {
  if (cfg_.capacity == 0) cfg_.capacity = 1;
  ring_.reserve(cfg_.capacity);
}

void FlightRecorder::on_obs_event(const ObsEvent& ev) {
  if (frozen_) return;
  ++seen_;
  if (ring_.size() < cfg_.capacity) {
    ring_.push_back(ev);
    return;
  }
  // Ring full: overwrite the oldest and say so — the bundle's "last K of
  // N events, D overwritten" is exact, never "some were probably lost".
  ring_[head_] = ev;
  head_ = (head_ + 1) % cfg_.capacity;
  ++overwritten_;
}

void FlightRecorder::on_alert(const Alert& alert) {
  if (alerts_.size() < cfg_.max_alerts) {
    alerts_.push_back(alert);
  } else {
    ++alerts_dropped_;
  }
  if (!frozen_ && alert.severity >= cfg_.trigger) {
    frozen_ = true;
    frozen_at_ns_ = now_ns();
    trigger_ = alert;
  }
}

std::vector<ObsEvent> FlightRecorder::ring() const {
  std::vector<ObsEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < cfg_.capacity) {
    out = ring_;  // never wrapped: insertion order is chronological
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % cfg_.capacity]);
    }
  }
  return out;
}

void FlightRecorder::reset() {
  ring_.clear();
  head_ = 0;
  seen_ = 0;
  overwritten_ = 0;
  alerts_.clear();
  alerts_dropped_ = 0;
  trigger_.reset();
  frozen_at_ns_ = 0;
  frozen_ = false;
}

namespace {

void write_alert(util::JsonWriter& w, const Alert& a) {
  w.begin_object()
      .field("rule", a.rule)
      .field("kind", rule_kind_name(a.kind))
      .field("severity", severity_name(a.severity))
      .field("ts_ns", a.ts_ns)
      .field("breach_ts_ns", a.breach_ts_ns)
      .field("key", a.key)
      .field("a", a.a)
      .field("b", a.b)
      .field("value", a.value)
      .field("threshold", a.threshold)
      .end_object();
}

void write_location_totals(util::JsonWriter& w,
                           const analysis::LocationTotals& t) {
  w.begin_object()
      .field("allocated", static_cast<std::uint64_t>(t.allocated))
      .field("mlocked", static_cast<std::uint64_t>(t.mlocked))
      .field("unallocated", static_cast<std::uint64_t>(t.unallocated))
      .field("page_cache", static_cast<std::uint64_t>(t.page_cache))
      .field("kernel", static_cast<std::uint64_t>(t.kernel))
      .field("swap", static_cast<std::uint64_t>(t.swap))
      .end_object();
}

}  // namespace

std::string FlightRecorder::bundle_json() {
  util::JsonWriter w;
  begin_report(w, "flight_recorder");
  w.field("bundle", "forensic");
  w.field("frozen", frozen_);
  w.field("frozen_at_ns", frozen_at_ns_);

  w.key("trigger");
  if (trigger_) {
    write_alert(w, *trigger_);
  } else {
    w.begin_object().end_object();
  }

  w.key("events").begin_object();
  w.field("capacity", static_cast<std::uint64_t>(cfg_.capacity));
  w.field("seen", seen_);
  w.field("overwritten", overwritten_);
  w.key("ring").begin_array();
  for (const ObsEvent& ev : ring()) {
    w.begin_object()
        .field("kind", obs_event_kind_name(ev.kind))
        .field("ts_ns", ev.ts_ns)
        .field("a", ev.a)
        .field("b", ev.b)
        .field("c", ev.c)
        .end_object();
  }
  w.end_array().end_object();

  w.key("alerts").begin_object();
  w.field("dropped", alerts_dropped_);
  w.key("items").begin_array();
  for (const Alert& a : alerts_) write_alert(w, a);
  w.end_array().end_object();

  if (monitor_ != nullptr) {
    w.key("exposure").begin_object();
    w.key("keys").begin_array();
    for (std::size_t k = 0; k < monitor_->key_count(); ++k) {
      const KeyExposure ex = monitor_->exposure(k);
      w.begin_object()
          .field("key", static_cast<std::uint64_t>(k))
          .field("live_copies", static_cast<std::uint64_t>(ex.live_copies))
          .field("live_bytes", static_cast<std::uint64_t>(ex.live_bytes))
          .field("byte_seconds", ex.byte_seconds)
          .field("peak_copies", static_cast<std::uint64_t>(ex.peak_copies))
          .field("copies_created", ex.copies_created)
          .field("copies_destroyed", ex.copies_destroyed)
          .end_object();
    }
    w.end_array();
    w.key("copies").begin_array();
    for (const ExposureCopy& c : monitor_->copies()) {
      w.begin_object()
          .field("offset", static_cast<std::uint64_t>(c.offset))
          .field("pattern", static_cast<std::uint64_t>(c.pattern))
          .end_object();
    }
    w.end_array().end_object();
  }

  if (kernel_ != nullptr && shadow_ != nullptr) {
    const analysis::TaintAuditor auditor(*shadow_);
    const analysis::AuditReport report = auditor.audit(*kernel_);
    w.key("residue").begin_object();
    w.field("regions_total", static_cast<std::uint64_t>(report.regions.size()));
    w.field("secret_tainted_frames",
            static_cast<std::uint64_t>(report.secret_tainted_frames));
    w.field("secret_mlocked_frames",
            static_cast<std::uint64_t>(report.secret_mlocked_frames));
    w.field("master_key_frames",
            static_cast<std::uint64_t>(report.master_key_frames));
    w.key("secret");
    write_location_totals(w, report.secret);
    w.key("sealed");
    write_location_totals(w, report.sealed);
    w.key("regions").begin_array();
    std::size_t emitted = 0;
    for (const analysis::TaintedRegion& r : report.regions) {
      if (emitted >= cfg_.max_residue_regions) break;
      ++emitted;
      // Locations, sizes and tag/state names only — never region bytes.
      w.begin_object()
          .field("in_swap", r.in_swap)
          .field("offset", static_cast<std::uint64_t>(r.offset))
          .field("length", static_cast<std::uint64_t>(r.length))
          .field("tag", sim::taint_tag_name(r.tag));
      if (r.in_swap) {
        w.field("slot", static_cast<std::uint64_t>(r.slot))
            .field("slot_live", r.slot_live);
      } else {
        w.field("frame", static_cast<std::uint64_t>(r.frame))
            .field("state", sim::frame_state_name(r.state))
            .field("mlocked", r.mlocked)
            .field("provenance", r.provenance)
            .field("age", r.age);
      }
      w.end_object();
    }
    w.end_array().end_object();
  }

  {
    const std::uint64_t center =
        trigger_ ? trigger_->breach_ts_ns
                 : (frozen_ ? frozen_at_ns_ : now_ns());
    const std::uint64_t lo =
        center > cfg_.trace_window_ns ? center - cfg_.trace_window_ns : 0;
    const std::uint64_t hi = center + cfg_.trace_window_ns;
    w.key("trace").begin_object();
    w.field("center_ns", center);
    w.field("window_ns", cfg_.trace_window_ns);
    w.key("events").begin_array();
    for (const TraceEvent& ev : Tracer::global().snapshot()) {
      if (ev.ts_ns < lo || ev.ts_ns > hi) continue;
      w.begin_object()
          .field("name", ev.name)
          .field("ph", std::string(1, ev.phase))
          .field("ts_ns", ev.ts_ns)
          .field("dur_ns", ev.dur_ns);
      w.key("args").begin_object();
      for (const TraceAttr& a : ev.args) {
        // Numeric and boolean attributes only: string attrs are span-
        // author free text, and the bundle's redaction guarantee is that
        // nothing in it CAN carry memory contents.
        if (a.kind == TraceAttr::Kind::kNumber) {
          w.field(a.key, a.num);
        } else if (a.kind == TraceAttr::Kind::kBool) {
          w.field(a.key, a.flag);
        }
      }
      w.end_object().end_object();
    }
    w.end_array().end_object();
  }

  write_metrics_field(w, MetricsRegistry::global());
  w.end_object();
  return w.str();
}

bool FlightRecorder::write_bundle(const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << bundle_json() << '\n';
  return out.good();
}

}  // namespace keyguard::obs
