#include "obs/clock.hpp"

#include <atomic>
#include <chrono>

namespace keyguard::obs {
namespace {

std::atomic<bool> g_manual{false};
std::atomic<std::uint64_t> g_manual_now{0};

std::uint64_t host_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::uint64_t now_ns() {
  if (g_manual.load(std::memory_order_relaxed)) {
    return g_manual_now.load(std::memory_order_relaxed);
  }
  return host_now_ns();
}

void manual_clock_install(std::uint64_t start_ns) {
  g_manual_now.store(start_ns, std::memory_order_relaxed);
  g_manual.store(true, std::memory_order_relaxed);
}

void manual_clock_advance(std::uint64_t delta_ns) {
  g_manual_now.fetch_add(delta_ns, std::memory_order_relaxed);
}

void manual_clock_set(std::uint64_t ns) {
  g_manual_now.store(ns, std::memory_order_relaxed);
}

void host_clock_install() { g_manual.store(false, std::memory_order_relaxed); }

bool manual_clock_active() { return g_manual.load(std::memory_order_relaxed); }

}  // namespace keyguard::obs
