// Forensic flight recorder: a capacity-bounded ring of recent obs
// events that freezes the moment an alert of trigger severity fires and
// emits a schema-v2 forensic bundle for after-the-fact replay.
//
// The recorder answers the question an alert alone cannot: "what was
// the machine doing in the run-up to the breach?" It subscribes to the
// EventBus (BEFORE the AlertEngine, so the breaching event itself lands
// in the ring before the alert freezes it) and keeps the last
// `capacity` events with EXACT drop accounting — the Tracer's idiom:
// when full, the oldest event is overwritten and a counter says
// precisely how many were lost, so "the window holds the last K of N"
// is a statement, not a guess.
//
// On the first alert at or above the trigger severity the ring freezes:
// recording stops, preserving the breach window verbatim, and
// bundle_json() assembles the forensic bundle — the trigger alert, the
// frozen ring, every earlier alert, a metrics snapshot, the live
// exposure-copy set with per-key integrals, a taint-residue census, and
// the trace slice around the breach instant.
//
// Redaction by construction, same property as the bus: the bundle
// carries offsets, frame numbers, lengths, counts, tag/state NAMES and
// timestamps — never a byte of simulated memory. Trace attributes are
// filtered to numbers and booleans for the same reason. KL103 treats
// the bundle writer as a sink and polices it; the design makes the leak
// impossible before the linter ever runs (the redaction test grinds the
// bundle for key-byte substrings to prove it).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/alert.hpp"
#include "obs/event_bus.hpp"

namespace keyguard::analysis {
class ShadowTaintMap;
}
namespace keyguard::sim {
class Kernel;
}

namespace keyguard::obs {

class ExposureMonitor;

class FlightRecorder final : public ObsEventSink, public AlertSink {
 public:
  struct Config {
    std::size_t capacity = 4096;  ///< ring size in events
    Severity trigger = Severity::kCritical;  ///< freeze at >= this severity
    std::uint64_t trace_window_ns = 5'000'000'000ull;  ///< slice half-width
    std::size_t max_residue_regions = 64;  ///< census detail cap
    std::size_t max_alerts = 256;          ///< pre-freeze alert history cap
  };

  /// All referents are borrowed and optional: a null kernel/shadow skips
  /// the residue census, a null monitor skips the exposure section. The
  /// recorder attaches nothing itself — subscribe it to the bus and add
  /// it as a sink on the engine.
  explicit FlightRecorder(Config cfg, const sim::Kernel* kernel = nullptr,
                          const analysis::ShadowTaintMap* shadow = nullptr,
                          ExposureMonitor* monitor = nullptr);

  // ObsEventSink: records into the ring; no-op once frozen.
  void on_obs_event(const ObsEvent& ev) override;
  // AlertSink: records the alert; freezes at >= trigger severity.
  void on_alert(const Alert& alert) override;

  bool frozen() const noexcept { return frozen_; }
  const std::optional<Alert>& trigger_alert() const noexcept {
    return trigger_;
  }
  /// Events offered to the ring while recording (dropped ones included).
  std::uint64_t events_seen() const noexcept { return seen_; }
  /// Exact count of events overwritten after the ring filled.
  std::uint64_t events_overwritten() const noexcept { return overwritten_; }
  /// Ring contents, oldest first.
  std::vector<ObsEvent> ring() const;
  /// Alerts recorded so far (trigger included), oldest first.
  const std::vector<Alert>& alerts() const noexcept { return alerts_; }

  /// Unfreeze and forget everything; recording resumes.
  void reset();

  /// The schema-v2 forensic bundle. Valid frozen or not (tools may dump
  /// on shutdown); accrues exposure integrals to now when a monitor is
  /// attached, hence non-const.
  std::string bundle_json();
  /// bundle_json() to a file; false on I/O failure.
  bool write_bundle(const std::string& path);

 private:
  Config cfg_;
  const sim::Kernel* kernel_;
  const analysis::ShadowTaintMap* shadow_;
  ExposureMonitor* monitor_;
  std::vector<ObsEvent> ring_;
  std::size_t head_ = 0;  ///< next write position once the ring is full
  std::uint64_t seen_ = 0;
  std::uint64_t overwritten_ = 0;
  std::vector<Alert> alerts_;
  std::uint64_t alerts_dropped_ = 0;
  std::optional<Alert> trigger_;
  std::uint64_t frozen_at_ns_ = 0;
  bool frozen_ = false;
};

}  // namespace keyguard::obs
