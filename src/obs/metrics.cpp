#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/json.hpp"

namespace keyguard::obs {
namespace {

// CAS loop for atomic<double> accumulation (fetch_add on atomic<double>
// is C++20 but not universally lowered well; the loop is portable).
void atomic_add(std::atomic<double>& a, double delta) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v,
                                             std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v,
                                             std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::add(double delta) noexcept { atomic_add(value_, delta); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    bounds_ = default_latency_buckets_ms();
  }
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::record(double v) noexcept {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::min() const noexcept {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::max() const noexcept {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) {
      continue;
    }
    if (static_cast<double>(cum + c) >= rank) {
      // Interpolate within bucket i: [lo, hi] where lo is the previous
      // bound (or the observed min for the first populated region) and
      // hi is this bucket's bound (or the observed max for overflow).
      const double lo = i == 0 ? std::min(min(), bounds_.front())
                               : bounds_[i - 1];
      const double hi = i == bounds_.size() ? std::max(max(), bounds_.back())
                                            : bounds_[i];
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(c);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum += c;
  }
  return max();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> Histogram::default_latency_buckets_ms() {
  return {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,  0.2,    0.5,
          1.0,   2.0,   5.0,   10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
          1000.0, 2000.0, 5000.0, 10000.0};
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg(/*enabled=*/false);
  return reg;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

std::size_t MetricsRegistry::instrument_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->reset();
  }
  for (auto& [name, g] : gauges_) {
    g->reset();
  }
  for (auto& [name, h] : histograms_) {
    h->reset();
  }
}

void MetricsRegistry::write_snapshot(util::JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) {
    w.field(name, static_cast<std::int64_t>(c->value()));
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) {
    w.field(name, g->value());
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.field("count", static_cast<std::int64_t>(h->count()));
    w.field("sum", h->sum());
    w.field("min", h->min());
    w.field("max", h->max());
    w.field("mean", h->mean());
    w.field("p50", h->quantile(0.50));
    w.field("p95", h->quantile(0.95));
    w.field("p99", h->quantile(0.99));
    w.key("buckets");
    w.begin_array();
    const auto counts = h->bucket_counts();
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      w.begin_object();
      if (i < bounds.size()) {
        w.field("le", bounds[i]);
      } else {
        w.field("le", "inf");
      }
      w.field("count", static_cast<std::int64_t>(counts[i]));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace keyguard::obs
