#include "obs/event_bus.hpp"

#include <algorithm>

#include "obs/clock.hpp"

namespace keyguard::obs {

const char* obs_event_kind_name(ObsEventKind k) noexcept {
  switch (k) {
    case ObsEventKind::kFrameAllocated:
      return "frame_allocated";
    case ObsEventKind::kFrameFreed:
      return "frame_freed";
    case ObsEventKind::kCowBreak:
      return "cow_break";
    case ObsEventKind::kMlockChanged:
      return "mlock_changed";
    case ObsEventKind::kPageMerged:
      return "page_merged";
    case ObsEventKind::kSwapOut:
      return "swap_out";
    case ObsEventKind::kSwapIn:
      return "swap_in";
    case ObsEventKind::kKeystoreUnseal:
      return "keystore_unseal";
    case ObsEventKind::kKeystoreSeal:
      return "keystore_seal";
    case ObsEventKind::kKeystoreEvict:
      return "keystore_evict";
    case ObsEventKind::kKeystoreRefusal:
      return "keystore_refusal";
    case ObsEventKind::kDomainRefusal:
      return "domain_refusal";
    case ObsEventKind::kServerRequest:
      return "server_request";
  }
  return "unknown";
}

EventBus& EventBus::global() {
  static EventBus bus;
  return bus;
}

void EventBus::publish(ObsEventKind kind, std::uint64_t a, std::uint64_t b,
                       std::uint64_t c) {
  if (!enabled()) return;
  ObsEvent ev;
  ev.kind = kind;
  ev.ts_ns = now_ns();
  ev.a = a;
  ev.b = b;
  ev.c = c;
  published_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto* s : sinks_) s->on_obs_event(ev);
}

void EventBus::subscribe(ObsEventSink* sink) {
  if (sink == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end()) {
    sinks_.push_back(sink);
  }
}

void EventBus::unsubscribe(ObsEventSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

std::size_t EventBus::subscriber_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sinks_.size();
}

}  // namespace keyguard::obs
