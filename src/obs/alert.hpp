// Real-time exposure SLO alert engine: the active half of the
// observability layer (the passive half — metrics, traces, the exposure
// monitor — measures; this file decides and fires).
//
// The engine is BOTH a sim::TaintTracker (add it to the Kernel's
// TaintFanout after the ShadowTaintMap and ExposureMonitor, so every
// byte movement reaches it with the shadow and integrals already
// updated) and an obs::ObsEventSink (subscribe it to the EventBus for
// the signals that move no bytes: frees, mlock flips, merges, swap
// crossings, keystore/domain refusals). Between the two streams every
// state change that can flip a rule's verdict coincides with an
// evaluation point — that is what makes detection event-accurate and
// budget-crossing timestamps exact (see DESIGN §13):
//
//   For an exposure budget B on key k, live plaintext bytes L_k(t) are
//   piecewise-constant and change ONLY at taint-hook events. The
//   monitor accrues ∫L_k dt lazily against the same obs clock, and the
//   engine samples it at every event, so between the engine's last
//   sample (t0, I0, L0) and the sample that first sees I >= B the
//   integral is exactly linear: I(t) = I0 + L0·(t - t0)/1e9. Solving
//   I(t*) = B gives the breach instant to the nanosecond — not "some
//   time during the last sweep period".
//
// Invariant rules turn the TaintAuditor's end-of-run predicates
// (bounded_locked_pages_only / bounded_plaintext_working_set) into
// continuously-enforced watchers. Rather than re-auditing the whole
// shadow per event, the engine derives a per-byte CLASS array (not
// secret / master-key-only / other secret) from the hook stream itself
// and keeps per-frame and per-swap-slot counts over it. Every hook
// updates exactly the bytes the event moved — O(bytes moved) per event,
// the same asymptotic cost the shadow map itself pays — and frame
// state/mlock flips arriving over the bus are O(1) count reapplications.
// A periodic sweep pays O(machine) per period instead; bench_alert_latency
// quantifies the gap. The equivalence aggregates == audit is asserted
// under churn in obs_alert_test.
//
// False-alert discipline: legitimate crypto transiently violates the
// invariants (CRT temporaries live in the heap for the duration of a
// private op). Each invariant rule therefore carries a grace window:
// a violation arms a pending timer and fires only if a later
// evaluation still sees it violated after grace_ns. Every restoration
// also coincides with an event, so transient violations that heal
// within the window never fire. Anomaly rules (secret byte on swap,
// residue on free, secret frame merged, refusal burst) are
// single-event facts and fire immediately, subject to per-rule
// cooldown dedup.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/taint_map.hpp"
#include "obs/event_bus.hpp"
#include "obs/exposure_monitor.hpp"
#include "sim/kernel.hpp"
#include "sim/taint.hpp"

namespace keyguard::obs {

class MetricsRegistry;

enum class Severity : std::uint8_t { kInfo, kWarning, kCritical };

const char* severity_name(Severity s) noexcept;
std::optional<Severity> severity_from_name(std::string_view name) noexcept;

enum class RuleKind : std::uint8_t {
  kExposureBudget,     ///< ∫bytes·dt for a key crosses budget_byte_seconds
  kLockedPagesBound,   ///< !bounded_locked_pages_only(bound) past grace
  kWorkingSetBound,    ///< !bounded_plaintext_working_set(bound) past grace
  kSecretToSwap,       ///< a swap slot gained secret-tagged bytes
  kResidueOnFree,      ///< a frame returned to the free lists still tainted
  kSecretFrameMerged,  ///< dedup merged a secret frame (share_count > 1)
  kRefusalBurst,       ///< >= bound keystore/domain refusals inside window_ns
};

inline constexpr std::size_t kRuleKindCount = 7;

const char* rule_kind_name(RuleKind k) noexcept;
std::optional<RuleKind> rule_kind_from_name(std::string_view name) noexcept;

/// One declarative rule. Which parameters apply depends on `kind`; the
/// rest are ignored (rules_from_json only accepts the applicable ones).
struct AlertRule {
  std::string name;  ///< unique label, used in alert output and metrics
  RuleKind kind = RuleKind::kSecretToSwap;
  Severity severity = Severity::kWarning;

  double budget_byte_seconds = 0.0;  ///< kExposureBudget threshold
  std::int64_t key = -1;             ///< kExposureBudget: -1 = every key
  std::uint64_t bound = 0;       ///< page bound / working-set bound / burst count
  std::uint64_t window_ns = 0;   ///< kRefusalBurst sliding window
  std::uint64_t grace_ns = 0;    ///< invariant rules: sustained-violation gate
  std::uint64_t cooldown_ns = 0; ///< min spacing between fires of this rule
};

/// One fired alert. Numeric payload only (plus rule metadata strings) —
/// the same redaction-by-construction property as the event bus: nothing
/// here can reproduce key bytes in a log line or a forensic bundle.
struct Alert {
  std::string rule;  ///< AlertRule::name
  RuleKind kind = RuleKind::kSecretToSwap;
  Severity severity = Severity::kWarning;
  std::uint64_t ts_ns = 0;         ///< evaluation instant that detected it
  std::uint64_t breach_ts_ns = 0;  ///< exact breach instant (budget rules
                                   ///< interpolate; otherwise == ts_ns)
  std::int64_t key = -1;           ///< key index where applicable
  std::uint64_t a = 0;  ///< rule-specific: frame / slot / refusal count
  std::uint64_t b = 0;  ///< rule-specific: bytes / share count / window_ns
  double value = 0.0;      ///< observed quantity (byte·s, frames, bytes)
  double threshold = 0.0;  ///< configured limit the observation crossed
};

/// One alert as a single-line JSON object (JSONL sink, forensic bundle).
std::string alert_to_json(const Alert& alert);

class AlertSink {
 public:
  virtual ~AlertSink() = default;
  virtual void on_alert(const Alert& alert) = 0;
};

/// Human-readable one-liner to stderr.
class StderrAlertSink final : public AlertSink {
 public:
  void on_alert(const Alert& alert) override;
};

/// One JSON object per line, appended to `path`.
class JsonlAlertSink final : public AlertSink {
 public:
  explicit JsonlAlertSink(const std::string& path);
  bool ok() const { return out_.good(); }
  void on_alert(const Alert& alert) override;

 private:
  std::ofstream out_;
};

/// obs.alerts.total / obs.alerts.<severity> / obs.alerts.rule.<name>.
class MetricsAlertSink final : public AlertSink {
 public:
  explicit MetricsAlertSink(MetricsRegistry& reg) : reg_(reg) {}
  void on_alert(const Alert& alert) override;

 private:
  MetricsRegistry& reg_;
};

/// The invariant watcher's incremental aggregates — the exact fields the
/// TaintAuditor's predicates consume, maintained per event instead of
/// recomputed per sweep. Public so the equivalence test can compare them
/// field-for-field against a fresh audit at arbitrary instants.
struct WatcherAggregates {
  std::uint64_t secret_frames = 0;          ///< RAM frames holding secret bytes
  std::uint64_t secret_mlocked_frames = 0;  ///< subset that is mlocked
  std::uint64_t master_key_frames = 0;      ///< only-secret-tag-is-master subset
  std::uint64_t secret_unallocated_bytes = 0;  ///< secret bytes in kFree frames
  std::uint64_t secret_page_cache_bytes = 0;
  std::uint64_t secret_kernel_bytes = 0;
  std::uint64_t secret_swap_bytes = 0;  ///< secret bytes on the swap device

  /// Mirrors AuditReport::bounded_plaintext_working_set exactly.
  bool bounded_plaintext_working_set(std::uint64_t w) const noexcept {
    return secret_frames - master_key_frames <= w &&
           secret_mlocked_frames == secret_frames &&
           secret_unallocated_bytes == 0 && secret_page_cache_bytes == 0 &&
           secret_kernel_bytes == 0 && secret_swap_bytes == 0;
  }
  /// Mirrors AuditReport::bounded_locked_pages_only exactly.
  bool bounded_locked_pages_only(std::uint64_t n) const noexcept {
    return secret_frames >= 1 && bounded_plaintext_working_set(n);
  }
};

class AlertEngine final : public sim::TaintTracker, public ObsEventSink {
 public:
  /// Borrows everything; all referents must outlive the engine. `monitor`
  /// may be null when no kExposureBudget rule is installed. The engine
  /// does not attach itself anywhere: add it to the workload's
  /// TaintFanout AFTER the shadow map (and monitor), and subscribe it to
  /// EventBus::global() after any FlightRecorder (so the breaching event
  /// is in the ring before the alert freezes it).
  AlertEngine(const sim::Kernel& kernel, const analysis::ShadowTaintMap& shadow,
              ExposureMonitor* monitor = nullptr);

  void add_rule(AlertRule rule);
  void add_sink(AlertSink* sink);  ///< borrowed, fan-out in add order
  const std::vector<AlertRule>& rules() const noexcept { return rules_; }

  /// Full rebuild of the per-frame/per-slot caches from the shadow map.
  /// Call once after attaching if the machine may already hold taint.
  void resync();

  // sim::TaintTracker — byte movements (fired after the shadow updated).
  void on_phys_store(std::size_t off, std::size_t len, sim::TaintTag tag) override;
  void on_phys_copy(std::size_t dst, std::size_t src, std::size_t len) override;
  void on_phys_clear(std::size_t off, std::size_t len) override;
  void on_swap_store(std::uint32_t slot, std::size_t phys_src) override;
  void on_swap_load(std::size_t phys_dst, std::uint32_t slot) override;
  void on_swap_clear(std::uint32_t slot) override;

  // obs::ObsEventSink — byte-free state changes and anomaly triggers.
  void on_obs_event(const ObsEvent& ev) override;

  /// Evaluate every rule at the current obs clock without an event — for
  /// quiet periods where only time advances (grace expiry, budget
  /// crossings while the live set is static).
  void poll();

  const WatcherAggregates& aggregates() const noexcept { return agg_; }
  std::uint64_t alerts_fired() const noexcept { return alerts_fired_; }
  std::uint64_t evaluations() const noexcept { return evaluations_; }
  /// Derived-state bytes the engine actually walked (class-array bytes
  /// counted, filled or copied) — its total inspection cost, directly
  /// comparable with sweeps × shadow size for the periodic-audit
  /// baseline (bench_alert_latency).
  std::uint64_t shadow_bytes_examined() const noexcept {
    return shadow_bytes_examined_;
  }

 private:
  struct FrameEntry {
    std::uint32_t secret_bytes = 0;     ///< bytes of class != 0 in the frame
    std::uint32_t nonmaster_bytes = 0;  ///< bytes of class 2 (non-master secret)
    bool mlocked = false;
    sim::FrameState state = sim::FrameState::kFree;
  };
  struct BudgetState {
    double last_bs = 0.0;          ///< integral at the previous sample
    std::uint64_t last_ts = 0;     ///< when it was sampled
    std::size_t last_live = 0;     ///< live bytes then (the linear rate)
    bool primed = false;           ///< at least one sample taken
    bool fired = false;            ///< integral is monotone: fire once
  };
  struct RuleState {
    std::uint64_t pending_since = 0;  ///< invariant violation arm time (0=idle)
    std::uint64_t last_fired = 0;
    bool fired_once = false;
    bool armed = false;  ///< kLockedPagesBound: seen secret_frames >= 1
    std::vector<BudgetState> budget;   ///< per key (kExposureBudget)
    std::deque<std::uint64_t> bursts;  ///< refusal timestamps (kRefusalBurst)
  };

  // The engine never re-reads the shadow map on the hot path. It derives
  // a per-byte CLASS (0 = not secret, 1 = master-key, 2 = other secret)
  // from the hook stream — the same stream the shadow map consumes — and
  // maintains per-frame/per-slot counts over it incrementally. Each hook
  // costs O(bytes the event moved); a store/clear/copy that provably
  // cannot change any count (class-0 data into frames whose cached
  // secret_bytes is already 0) costs one cached check per frame. That
  // fast path is sound because every aggregate field counts secret bytes
  // or secret-bearing frames: a frame holding none contributes nothing
  // whatever its state, and the cache is exact because the engine sees
  // every hook (resync() re-derives everything when attached late).

  /// Set [off, off+len) of physical memory to the constant class `cls`.
  void set_phys_class(std::size_t off, std::size_t len, std::uint8_t cls);
  /// [dst, dst+len) of physical memory takes the classes at `src` (a COW
  /// break / realloc move / swap-in). `src_may_secret` false promises the
  /// source classes are all 0, enabling the clean-into-clean skip.
  void copy_phys_class(std::size_t dst, const std::uint8_t* src,
                       std::size_t len, bool src_may_secret);
  /// Swap slot `slot` takes the classes of the physical page at phys_src.
  void store_slot_classes(std::uint32_t slot, std::size_t phys_src);
  void clear_slot_classes(std::uint32_t slot);
  /// O(1) re-application of a frame's cached counts after a state or
  /// mlock flip arriving over the event bus (no bytes moved).
  void refresh_frame_meta(sim::FrameNumber frame);
  /// True when the cached frame entries say [off, off+len) holds at
  /// least one secret byte (conservative, frame-granular).
  bool range_has_secret(std::size_t off, std::size_t len) const;
  void evaluate(std::uint64_t ts);
  void evaluate_budget(std::size_t ri, std::uint64_t ts);
  void evaluate_invariant(std::size_t ri, std::uint64_t ts);
  void note_refusal(std::uint64_t ts);
  bool cooled_down(const AlertRule& rule, const RuleState& st,
                   std::uint64_t ts) const;
  void fire(std::size_t ri, Alert alert);

  const sim::Kernel& kernel_;
  const analysis::ShadowTaintMap& shadow_;
  ExposureMonitor* monitor_;
  std::vector<AlertRule> rules_;
  std::vector<RuleState> states_;
  std::vector<AlertSink*> sinks_;
  std::vector<FrameEntry> frames_;
  std::vector<std::uint32_t> slot_secret_bytes_;
  std::vector<std::uint8_t> phys_class_;  ///< derived per-byte class, RAM
  std::vector<std::uint8_t> swap_class_;  ///< derived per-byte class, swap
  WatcherAggregates agg_;
  std::uint64_t alerts_fired_ = 0;
  std::uint64_t evaluations_ = 0;
  std::uint64_t shadow_bytes_examined_ = 0;
};

/// Parses {"rules":[{...},...]} (see README "Observability" for the
/// schema). Returns std::nullopt and sets `error` on malformed input,
/// unknown kinds/severities, or missing required parameters.
std::optional<std::vector<AlertRule>> rules_from_json(std::string_view text,
                                                      std::string* error);

/// The anomaly rules every defended scenario should want: secret-to-swap
/// (critical), residue-on-free (warning), secret-frame-merged (critical),
/// refusal-burst of 8 inside 1s (warning). Budget and invariant rules
/// carry scenario-specific thresholds, so they come from JSON only.
std::vector<AlertRule> default_rules();

}  // namespace keyguard::obs
