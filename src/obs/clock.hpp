// The observability clock: one monotonic nanosecond source for every
// span timestamp and exposure integral in src/obs.
//
// Two modes:
//   * host (default) — std::chrono::steady_clock, for real wall-clock
//     latency numbers in tools and benches.
//   * manual — a caller-advanced simulated clock, so experiments that
//     model time (one timeline slot == one second) produce bit-identical
//     byte·second exposure integrals on every run. The golden-determinism
//     discipline of the sim extends to the observability layer this way.
//
// The source is process-global and lock-free to read; switching modes is
// rare (test/bench setup) and not meant to race with hot-path readers.
#pragma once

#include <cstdint>

namespace keyguard::obs {

/// Current time in nanoseconds from the active source.
std::uint64_t now_ns();

/// Switches to the manual clock, starting at `start_ns`.
void manual_clock_install(std::uint64_t start_ns = 0);

/// Advances the manual clock (no-op warning-free even if not installed —
/// the value simply is not read until it is).
void manual_clock_advance(std::uint64_t delta_ns);

/// Absolute set, for replaying recorded timelines.
void manual_clock_set(std::uint64_t ns);

/// Back to the host steady clock.
void host_clock_install();

/// True while the manual clock is the active source.
bool manual_clock_active();

inline constexpr std::uint64_t kNsPerSec = 1'000'000'000ull;

}  // namespace keyguard::obs
