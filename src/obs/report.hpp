// The one JSON report schema shared by scanmemory_tool and every bench:
//
//   {
//     "schema_version": 2,
//     "tool": "<producer>",
//     "build": {version, compiler, sanitizer, build_type},
//     ... producer-specific fields (existing names kept as aliases) ...
//     "metrics": {counters, gauges, histograms}     // optional
//   }
//
// schema_version history:
//   1 — implicit: the ad-hoc pre-observability layouts (no version field).
//   2 — this envelope: versioned, build-stamped, with an optional
//       MetricsRegistry snapshot under "metrics".
#pragma once

#include <cstdint>
#include <string_view>

namespace keyguard::util {
class JsonWriter;
}

namespace keyguard::obs {

class MetricsRegistry;

inline constexpr std::int64_t kSchemaVersion = 2;

/// Opens the report object and writes schema_version/tool/build. The
/// caller continues with its own fields and must end_object() itself.
void begin_report(util::JsonWriter& w, std::string_view tool);

/// Writes the "metrics" field from a registry snapshot.
void write_metrics_field(util::JsonWriter& w, const MetricsRegistry& reg);

}  // namespace keyguard::obs
