#include "obs/report.hpp"

#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace keyguard::obs {

void begin_report(util::JsonWriter& w, std::string_view tool) {
  w.begin_object();
  w.field("schema_version", kSchemaVersion);
  w.field("tool", tool);
  w.key("build");
  build_info::write(w);
}

void write_metrics_field(util::JsonWriter& w, const MetricsRegistry& reg) {
  w.key("metrics");
  reg.write_snapshot(w);
}

}  // namespace keyguard::obs
