#include "obs/build_info.hpp"

#include "util/json.hpp"

namespace keyguard::obs {
namespace build_info {
namespace {

std::string stringify(long a, long b, long c) {
  return std::to_string(a) + "." + std::to_string(b) + "." + std::to_string(c);
}

}  // namespace

const char* version() {
#ifdef KEYGUARD_VERSION_STRING
  return KEYGUARD_VERSION_STRING;
#else
  return "0.0.0";
#endif
}

std::string compiler() {
#if defined(__clang__)
  return "clang " +
         stringify(__clang_major__, __clang_minor__, __clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + stringify(__GNUC__, __GNUC_MINOR__, __GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

const char* sanitizer() {
#ifdef KEYGUARD_SANITIZE_NAME
  if (KEYGUARD_SANITIZE_NAME[0] != '\0') {
    return KEYGUARD_SANITIZE_NAME;
  }
#endif
  return "none";
}

const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

std::string one_line() {
  return std::string("keyguard ") + version() + " | " + compiler() +
         " | sanitizer=" + sanitizer() + " | " + build_type();
}

void write(util::JsonWriter& w) {
  w.begin_object();
  w.field("version", version());
  w.field("compiler", compiler());
  w.field("sanitizer", sanitizer());
  w.field("build_type", build_type());
  w.end_object();
}

}  // namespace build_info
}  // namespace keyguard::obs
