// Live key-exposure accounting from taint hooks — the paper's Fig. 5/6
// "key copies over time" curves as a continuously maintained data
// structure instead of a sequence of full scans.
//
// How it stays exact (the bench's acceptance criterion is copy-for-copy
// agreement with a ground-truth scan_capture sweep at every instant):
// every byte that changes in simulated physical RAM flows through a
// TaintTracker hook — stores (including kClean churn), kernel-internal
// copies, clears, and swap-ins — and the kernel fires each hook AFTER
// the bytes have moved, so memory content is current at hook time. On
// each event the monitor re-validates recorded copies overlapping the
// dirtied range and re-scans a window widened by (max needle length - 1)
// on both sides for matches the mutation created. By induction the live
// set equals what a full sweep would find, at every instant, at a cost
// proportional to bytes-touched instead of bytes-of-RAM.
//
// Swap is the one boundary: SwapDevice encrypts slot contents after
// on_swap_store fires, so slot bytes cannot be needle-matched the way
// RAM can. The monitor therefore counts RAM copies exactly and tracks
// swap traffic as event counters — matching the scanner, which also
// walks RAM only (the paper's scanmemory never saw the disk either).
//
// Exposure integral: for key k with live plaintext bytes B_k(t),
//     exposure_byte_seconds(k) = ∫ B_k(t) dt      [byte·seconds]
// accrued lazily against the obs clock (manual sim clock in benches for
// bit-identical integrals; host clock in tools). A copy of needle length
// L contributes L byte·seconds per second it survives. This is the
// quantity the related memory-exposure literature argues attacks scale
// with: how much and how long, not just whether.
//
// Threading: the sim kernel is single-threaded and so is this monitor.
// Not thread-safe; drive it from the thread running the kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "scan/key_scanner.hpp"
#include "sim/physmem.hpp"
#include "sim/taint.hpp"

namespace keyguard::obs {

class MetricsRegistry;
class Tracer;

/// One live plaintext copy: pattern `pattern` (index into patterns())
/// matching at physical byte offset `offset`.
struct ExposureCopy {
  std::size_t offset = 0;
  std::size_t pattern = 0;
};

/// Per-key rollup. `key` is the index encoded in the pattern name suffix
/// ("d#3" -> key 3; unsuffixed single-key patterns are key 0).
struct KeyExposure {
  std::size_t live_copies = 0;
  std::size_t live_bytes = 0;
  double byte_seconds = 0.0;
  std::size_t peak_copies = 0;
  std::uint64_t copies_created = 0;
  std::uint64_t copies_destroyed = 0;
};

class ExposureMonitor final : public sim::TaintTracker {
 public:
  /// Borrows `mem` (must outlive the monitor). Attach via
  /// Kernel::attach_taint — through a sim::TaintFanout when a
  /// ShadowTaintMap is also listening — then call resync() once if the
  /// machine may already hold copies.
  ExposureMonitor(const sim::PhysicalMemory& mem, scan::KeyPatterns patterns);

  // TaintTracker hooks (fired by the kernel on every physical mutation).
  void on_phys_store(std::size_t off, std::size_t len,
                     sim::TaintTag tag) override;
  void on_phys_copy(std::size_t dst, std::size_t src,
                    std::size_t len) override;
  void on_phys_clear(std::size_t off, std::size_t len) override;
  void on_swap_store(std::uint32_t slot, std::size_t phys_src) override;
  void on_swap_load(std::size_t phys_dst, std::uint32_t slot) override;
  void on_swap_clear(std::uint32_t slot) override;

  /// Full-sweep rebuild of the live set (integrals are preserved).
  void resync();

  // ---- queries (all O(live set) or better, no memory walk) ----
  std::size_t key_count() const noexcept { return keys_.size(); }
  std::size_t total_copies() const noexcept { return live_.size(); }
  std::size_t copy_count(std::size_t key) const;
  std::size_t live_bytes(std::size_t key) const;
  /// Accrues the integral up to now and returns it. The paper's
  /// "exposure window" of a key, generalized to byte·seconds.
  double exposure_window(std::size_t key);
  /// Accrue-then-read full rollup.
  KeyExposure exposure(std::size_t key);
  /// Live copies sorted by (offset, pattern) — directly comparable with
  /// scan_capture output (same order contract).
  std::vector<ExposureCopy> copies() const;

  const scan::KeyPatterns& patterns() const noexcept { return patterns_; }
  /// Key index a pattern reports under.
  std::size_t pattern_key(std::size_t pattern) const {
    return pattern_key_[pattern];
  }
  /// Hook events observed (all types).
  std::uint64_t event_count() const noexcept { return events_; }
  std::uint64_t swap_out_events() const noexcept { return swap_outs_; }
  std::uint64_t swap_in_events() const noexcept { return swap_ins_; }

  /// Gauges/counters into a registry: exposure.live_copies,
  /// exposure.live_bytes, exposure.key<k>.copies / .byte_seconds, ...
  void publish(MetricsRegistry& reg);
  /// Counter-track samples ("exposure.copies", per-key tracks) so a
  /// trace alone reconstructs the Fig. 5/6 timeline (trace2timeline.py).
  void sample(Tracer& tracer);

 private:
  void touch(std::size_t off, std::size_t len);
  bool still_matches(std::size_t off, std::size_t pattern) const;
  void insert_copy(std::size_t off, std::size_t pattern);
  void erase_copy(std::map<std::pair<std::size_t, std::size_t>,
                           std::size_t>::iterator it);
  void accrue();

  const sim::PhysicalMemory& mem_;
  scan::KeyPatterns patterns_;
  std::vector<std::size_t> pattern_key_;  // pattern index -> key index
  std::size_t max_len_ = 0;
  /// (offset, pattern) -> needle length. Keyed exactly like the
  /// scanner's match order so copies() needs no re-sort.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> live_;
  std::vector<KeyExposure> keys_;
  std::uint64_t last_accrue_ns_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t swap_outs_ = 0;
  std::uint64_t swap_ins_ = 0;
  std::uint64_t swap_clears_ = 0;
};

}  // namespace keyguard::obs
