#include "obs/exposure_monitor.hpp"

#include <algorithm>
#include <cstring>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/bytes.hpp"

namespace keyguard::obs {
namespace {

/// Key index from a pattern name: "d#3" -> 3, "PEM#12" -> 12, "d" -> 0.
/// Mirrors KeyPatterns::from_keys naming.
std::size_t key_from_name(const std::string& name) {
  const auto hash = name.rfind('#');
  if (hash == std::string::npos || hash + 1 >= name.size()) {
    return 0;
  }
  std::size_t key = 0;
  for (std::size_t i = hash + 1; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') {
      return 0;
    }
    key = key * 10 + static_cast<std::size_t>(c - '0');
  }
  return key;
}

}  // namespace

ExposureMonitor::ExposureMonitor(const sim::PhysicalMemory& mem,
                                 scan::KeyPatterns patterns)
    : mem_(mem), patterns_(std::move(patterns)) {
  std::size_t max_key = 0;
  pattern_key_.reserve(patterns_.patterns.size());
  for (const auto& p : patterns_.patterns) {
    const std::size_t key = key_from_name(p.name);
    pattern_key_.push_back(key);
    max_key = std::max(max_key, key);
    max_len_ = std::max(max_len_, p.bytes.size());
  }
  keys_.resize(patterns_.patterns.empty() ? 0 : max_key + 1);
  last_accrue_ns_ = now_ns();
}

void ExposureMonitor::accrue() {
  const std::uint64_t now = now_ns();
  if (now <= last_accrue_ns_) {
    last_accrue_ns_ = now;
    return;
  }
  const double dt =
      static_cast<double>(now - last_accrue_ns_) / static_cast<double>(kNsPerSec);
  last_accrue_ns_ = now;
  for (auto& k : keys_) {
    if (k.live_bytes != 0) {
      k.byte_seconds += static_cast<double>(k.live_bytes) * dt;
    }
  }
}

bool ExposureMonitor::still_matches(std::size_t off,
                                    std::size_t pattern) const {
  const auto& needle = patterns_.patterns[pattern].bytes;
  const auto window = mem_.range(off, needle.size());
  return window.size() == needle.size() &&
         std::memcmp(window.data(), needle.data(), needle.size()) == 0;
}

void ExposureMonitor::insert_copy(std::size_t off, std::size_t pattern) {
  const auto [it, inserted] =
      live_.emplace(std::make_pair(off, pattern),
                    patterns_.patterns[pattern].bytes.size());
  if (!inserted) {
    return;
  }
  auto& k = keys_[pattern_key_[pattern]];
  k.live_copies += 1;
  k.live_bytes += it->second;
  k.copies_created += 1;
  k.peak_copies = std::max(k.peak_copies, k.live_copies);
}

void ExposureMonitor::erase_copy(
    std::map<std::pair<std::size_t, std::size_t>, std::size_t>::iterator it) {
  auto& k = keys_[pattern_key_[it->first.second]];
  k.live_copies -= 1;
  k.live_bytes -= it->second;
  k.copies_destroyed += 1;
  live_.erase(it);
}

void ExposureMonitor::touch(std::size_t off, std::size_t len) {
  if (patterns_.patterns.empty() || len == 0) {
    return;
  }
  // The integral must be split at the mutation: time before it runs at
  // the old byte counts, time after at the new ones.
  accrue();

  const std::size_t reach = max_len_ - 1;
  const std::size_t lo = off > reach ? off - reach : 0;
  const std::size_t end = off + len;  // first unmodified byte

  // 1) Re-validate recorded copies whose byte range intersects the
  //    dirtied range. A copy starting at o with length L intersects
  //    [off, end) iff o < end && o + L > off; every such o is >= lo.
  for (auto it = live_.lower_bound({lo, 0});
       it != live_.end() && it->first.first < end;) {
    const std::size_t o = it->first.first;
    const std::size_t L = it->second;
    if (o + L <= off || still_matches(o, it->first.second)) {
      ++it;
    } else {
      erase_copy(it++);
    }
  }

  // 2) Re-scan the widened window for matches the mutation created. Any
  //    new match must include at least one modified byte, so it starts
  //    in [lo, end); scanning [lo, end + reach) covers every candidate.
  const auto window = mem_.range(lo, end - lo + reach);
  for (std::size_t pi = 0; pi < patterns_.patterns.size(); ++pi) {
    const auto& needle = patterns_.patterns[pi].bytes;
    if (needle.empty() || needle.size() > window.size()) {
      continue;
    }
    for (const std::size_t local :
         util::find_all(window, std::span<const std::byte>(needle))) {
      if (lo + local >= end) {
        break;  // starts past the modified range: already recorded
      }
      insert_copy(lo + local, pi);
    }
  }
}

void ExposureMonitor::on_phys_store(std::size_t off, std::size_t len,
                                    sim::TaintTag /*tag*/) {
  ++events_;
  touch(off, len);
}

void ExposureMonitor::on_phys_copy(std::size_t dst, std::size_t /*src*/,
                                   std::size_t len) {
  ++events_;
  touch(dst, len);
}

void ExposureMonitor::on_phys_clear(std::size_t off, std::size_t len) {
  ++events_;
  touch(off, len);
}

void ExposureMonitor::on_swap_store(std::uint32_t /*slot*/,
                                    std::size_t /*phys_src*/) {
  // RAM is unchanged by a swap-out (the vacated frame keeps its bytes
  // until something overwrites it — any copy there stays live, exactly
  // as a scan would see); the slot itself is encrypted after this hook
  // fires, so swap is tracked as traffic, not content.
  ++events_;
  ++swap_outs_;
}

void ExposureMonitor::on_swap_load(std::size_t phys_dst,
                                   std::uint32_t /*slot*/) {
  ++events_;
  ++swap_ins_;
  touch(phys_dst, sim::kPageSize);
}

void ExposureMonitor::on_swap_clear(std::uint32_t /*slot*/) {
  ++events_;
  ++swap_clears_;
}

void ExposureMonitor::resync() {
  accrue();
  while (!live_.empty()) {
    erase_copy(live_.begin());
  }
  const auto all = mem_.all();
  for (std::size_t pi = 0; pi < patterns_.patterns.size(); ++pi) {
    const auto& needle = patterns_.patterns[pi].bytes;
    if (needle.empty()) {
      continue;
    }
    for (const std::size_t off :
         util::find_all(all, std::span<const std::byte>(needle))) {
      insert_copy(off, pi);
    }
  }
}

std::size_t ExposureMonitor::copy_count(std::size_t key) const {
  return key < keys_.size() ? keys_[key].live_copies : 0;
}

std::size_t ExposureMonitor::live_bytes(std::size_t key) const {
  return key < keys_.size() ? keys_[key].live_bytes : 0;
}

double ExposureMonitor::exposure_window(std::size_t key) {
  accrue();
  return key < keys_.size() ? keys_[key].byte_seconds : 0.0;
}

KeyExposure ExposureMonitor::exposure(std::size_t key) {
  accrue();
  return key < keys_.size() ? keys_[key] : KeyExposure{};
}

std::vector<ExposureCopy> ExposureMonitor::copies() const {
  std::vector<ExposureCopy> out;
  out.reserve(live_.size());
  for (const auto& [loc, len] : live_) {
    out.push_back(ExposureCopy{loc.first, loc.second});
  }
  return out;
}

void ExposureMonitor::publish(MetricsRegistry& reg) {
  accrue();
  std::size_t copies = 0;
  std::size_t bytes = 0;
  double integral = 0.0;
  for (std::size_t k = 0; k < keys_.size(); ++k) {
    const auto& e = keys_[k];
    copies += e.live_copies;
    bytes += e.live_bytes;
    integral += e.byte_seconds;
    const std::string prefix = "exposure.key" + std::to_string(k);
    reg.gauge(prefix + ".copies").set(static_cast<double>(e.live_copies));
    reg.gauge(prefix + ".byte_seconds").set(e.byte_seconds);
  }
  reg.gauge("exposure.live_copies").set(static_cast<double>(copies));
  reg.gauge("exposure.live_bytes").set(static_cast<double>(bytes));
  reg.gauge("exposure.byte_seconds").set(integral);
  reg.counter("exposure.events").add(0);  // register even when idle
}

void ExposureMonitor::sample(Tracer& tracer) {
  accrue();
  std::size_t copies = 0;
  for (std::size_t k = 0; k < keys_.size(); ++k) {
    copies += keys_[k].live_copies;
    if (keys_.size() > 1) {
      tracer.counter("exposure.key" + std::to_string(k) + ".copies",
                     static_cast<double>(keys_[k].live_copies));
    }
  }
  tracer.counter("exposure.copies", static_cast<double>(copies));
}

}  // namespace keyguard::obs
