#include "obs/trace.hpp"

#include "obs/clock.hpp"
#include "util/json.hpp"

namespace keyguard::obs {

TraceAttr TraceAttr::s(std::string_view k, std::string_view v) {
  TraceAttr a;
  a.key = std::string(k);
  a.str = std::string(v);
  a.kind = Kind::kString;
  return a;
}

TraceAttr TraceAttr::n(std::string_view k, double v) {
  TraceAttr a;
  a.key = std::string(k);
  a.num = v;
  a.kind = Kind::kNumber;
  return a;
}

TraceAttr TraceAttr::b(std::string_view k, bool v) {
  TraceAttr a;
  a.key = std::string(k);
  a.flag = v;
  a.kind = Kind::kBool;
  return a;
}

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

Tracer::Span::Span(Tracer& t, std::string_view name,
                   std::vector<TraceAttr> args) {
  if (!t.enabled()) {
    return;  // inert: no clock read, no string copy
  }
  tracer_ = &t;
  name_ = std::string(name);
  t0_ = now_ns();
  args_ = std::move(args);
}

Tracer::Span::~Span() {
  if (tracer_ == nullptr) {
    return;
  }
  TraceEvent ev;
  ev.name = std::move(name_);
  ev.phase = 'X';
  ev.ts_ns = t0_;
  ev.dur_ns = now_ns() - t0_;
  ev.args = std::move(args_);
  tracer_->emit(std::move(ev));
}

void Tracer::Span::add(TraceAttr a) {
  if (tracer_ != nullptr) {
    args_.push_back(std::move(a));
  }
}

void Tracer::instant(std::string_view name, std::vector<TraceAttr> args) {
  if (!enabled()) {
    return;
  }
  TraceEvent ev;
  ev.name = std::string(name);
  ev.phase = 'i';
  ev.ts_ns = now_ns();
  ev.args = std::move(args);
  emit(std::move(ev));
}

void Tracer::counter(std::string_view name, double value) {
  if (!enabled()) {
    return;
  }
  TraceEvent ev;
  ev.name = std::string(name);
  ev.phase = 'C';
  ev.ts_ns = now_ns();
  ev.args.push_back(TraceAttr::n("value", value));
  emit(std::move(ev));
}

void Tracer::emit(TraceEvent ev) {
  const auto tid = tid_for(std::this_thread::get_id());
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  ev.tid = tid;
  events_.push_back(std::move(ev));
}

std::uint32_t Tracer::tid_for(std::thread::id id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tids_.find(id);
  if (it != tids_.end()) {
    return it->second;
  }
  const auto tid = static_cast<std::uint32_t>(tids_.size() + 1);
  tids_.emplace(id, tid);
  return tid;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Tracer::set_capacity(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = cap;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

void Tracer::write_args(util::JsonWriter& w,
                        const std::vector<TraceAttr>& args) {
  w.begin_object();
  for (const auto& a : args) {
    switch (a.kind) {
      case TraceAttr::Kind::kString: w.field(a.key, a.str); break;
      case TraceAttr::Kind::kNumber: w.field(a.key, a.num); break;
      case TraceAttr::Kind::kBool: w.field(a.key, a.flag); break;
    }
  }
  w.end_object();
}

std::string Tracer::jsonl() const {
  const auto events = snapshot();
  std::string out;
  for (const auto& ev : events) {
    util::JsonWriter w;
    w.begin_object();
    w.field("name", ev.name);
    w.field("ph", std::string_view(&ev.phase, 1));
    w.field("ts_ns", ev.ts_ns);
    if (ev.phase == 'X') {
      w.field("dur_ns", ev.dur_ns);
    }
    w.field("tid", ev.tid);
    if (!ev.args.empty()) {
      w.key("args");
      write_args(w, ev.args);
    }
    w.end_object();
    out += w.str();
    out += '\n';
  }
  // Exact drop accounting travels with the file: a reader of a truncated
  // trace can tell "quiet" from "saturated" without the live Tracer.
  if (const auto n = dropped(); n > 0) {
    util::JsonWriter w;
    w.begin_object();
    w.field("name", "trace.dropped");
    w.field("ph", "M");
    w.field("ts_ns", events.empty() ? 0 : events.back().ts_ns);
    w.field("tid", 0);
    w.key("args");
    w.begin_object();
    w.field("value", static_cast<double>(n));
    w.end_object();
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

void Tracer::write_chrome_trace(util::JsonWriter& w) const {
  const auto events = snapshot();
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  for (const auto& ev : events) {
    w.begin_object();
    w.field("name", ev.name);
    w.field("ph", std::string_view(&ev.phase, 1));
    w.field("ts", static_cast<double>(ev.ts_ns) / 1e3);
    if (ev.phase == 'X') {
      w.field("dur", static_cast<double>(ev.dur_ns) / 1e3);
    }
    w.field("pid", 1);
    w.field("tid", ev.tid);
    w.key("args");
    write_args(w, ev.args);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace keyguard::obs
