// Lock-cheap metrics registry: counters, gauges and fixed-bucket latency
// histograms, snapshot-able to util::JsonWriter.
//
// Design rules:
//   * Registration (name -> instrument lookup) takes a mutex; do it once
//     at setup or on a cold path and keep the returned reference. The
//     reference stays valid for the registry's lifetime (instruments are
//     heap-allocated and never destroyed before the registry).
//   * The hot-path operations (Counter::add, Gauge::set, Histogram::record)
//     are single relaxed atomic ops per call — no locks, no allocation.
//   * Instrumented subsystems gate on `enabled()` (one relaxed atomic
//     load) so a disabled registry costs one branch per call site. That
//     is what keeps bench_scan_throughput overhead within the 5% budget.
//   * The process-global registry starts *disabled*; tools and benches
//     opt in. Locally constructed registries start enabled (tests).
//
// Naming scheme (see DESIGN §7): dot-separated "<subsystem>.<metric>"
// with unit suffixes (_ms, _bytes, _mb_per_sec) where applicable, e.g.
// "scan.bytes", "keystore.unseal_ms", "exposure.live_copies".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace keyguard::util {
class JsonWriter;
}

namespace keyguard::obs {

/// Monotone event count. Relaxed atomic increments; exact totals are
/// still guaranteed (atomicity, not ordering, is what exactness needs).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value (pool occupancy, MB/s).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept;
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with p50/p95/p99 estimation by linear
/// interpolation inside the owning bucket. Bucket upper bounds are set
/// at registration; an implicit +inf overflow bucket is always present.
/// record() is lock-free; bucket counts and the total count are exact
/// under concurrency (each is one atomic add).
class Histogram {
 public:
  /// `bounds` must be strictly ascending; empty selects the default
  /// latency ladder (sub-microsecond .. multi-second, in milliseconds).
  explicit Histogram(std::vector<double> bounds);

  void record(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double min() const noexcept;
  double max() const noexcept;
  double mean() const noexcept;
  /// q in [0,1]. Returns 0 when empty.
  double quantile(double q) const noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// bounds().size()+1 entries; last is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  void reset() noexcept;

  /// 1e-3 ms (1us) .. 1e4 ms (10s), roughly logarithmic.
  static std::vector<double> default_latency_buckets_ms();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Name-keyed home for instruments. See file comment for the contract.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-global registry. Starts disabled; flip with set_enabled.
  static MetricsRegistry& global();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Find-or-create. The same name always returns the same instrument.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is consulted only on first registration of `name`.
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {});

  std::size_t instrument_count() const;

  /// Zeroes every instrument, keeping registrations (and references) valid.
  void reset();

  /// Emits {"counters":{...},"gauges":{...},"histograms":{name:{count,
  /// sum,min,max,mean,p50,p95,p99,buckets:[{le,count},...]}}} as an
  /// object *value* — caller supplies the surrounding key/array slot.
  void write_snapshot(util::JsonWriter& w) const;

 private:
  std::atomic<bool> enabled_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace keyguard::obs
