#include "obs/alert.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/json_reader.hpp"

namespace keyguard::obs {

const char* severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kCritical: return "critical";
  }
  return "?";
}

std::optional<Severity> severity_from_name(std::string_view name) noexcept {
  if (name == "info") return Severity::kInfo;
  if (name == "warning") return Severity::kWarning;
  if (name == "critical") return Severity::kCritical;
  return std::nullopt;
}

const char* rule_kind_name(RuleKind k) noexcept {
  switch (k) {
    case RuleKind::kExposureBudget: return "exposure_budget";
    case RuleKind::kLockedPagesBound: return "locked_pages_bound";
    case RuleKind::kWorkingSetBound: return "working_set_bound";
    case RuleKind::kSecretToSwap: return "secret_to_swap";
    case RuleKind::kResidueOnFree: return "residue_on_free";
    case RuleKind::kSecretFrameMerged: return "secret_frame_merged";
    case RuleKind::kRefusalBurst: return "refusal_burst";
  }
  return "?";
}

std::optional<RuleKind> rule_kind_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kRuleKindCount; ++i) {
    const auto k = static_cast<RuleKind>(i);
    if (name == rule_kind_name(k)) return k;
  }
  return std::nullopt;
}

std::string alert_to_json(const Alert& alert) {
  util::JsonWriter w;
  w.begin_object()
      .field("rule", alert.rule)
      .field("kind", rule_kind_name(alert.kind))
      .field("severity", severity_name(alert.severity))
      .field("ts_ns", alert.ts_ns)
      .field("breach_ts_ns", alert.breach_ts_ns)
      .field("key", alert.key)
      .field("a", alert.a)
      .field("b", alert.b)
      .field("value", alert.value)
      .field("threshold", alert.threshold)
      .end_object();
  return w.str();
}

void StderrAlertSink::on_alert(const Alert& alert) {
  std::fprintf(stderr,
               "[keyguard-alert] %s %s rule=%s ts_ns=%" PRIu64
               " breach_ts_ns=%" PRIu64 " key=%" PRId64 " a=%" PRIu64
               " b=%" PRIu64 " value=%.6g threshold=%.6g\n",
               severity_name(alert.severity), rule_kind_name(alert.kind),
               alert.rule.c_str(), alert.ts_ns, alert.breach_ts_ns, alert.key,
               alert.a, alert.b, alert.value, alert.threshold);
}

JsonlAlertSink::JsonlAlertSink(const std::string& path)
    : out_(path, std::ios::app) {}

void JsonlAlertSink::on_alert(const Alert& alert) {
  if (!out_.good()) return;
  out_ << alert_to_json(alert) << '\n';
  out_.flush();
}

void MetricsAlertSink::on_alert(const Alert& alert) {
  reg_.counter("obs.alerts.total").add(1);
  reg_.counter(std::string("obs.alerts.") + severity_name(alert.severity))
      .add(1);
  reg_.counter(std::string("obs.alerts.rule.") + alert.rule).add(1);
}

AlertEngine::AlertEngine(const sim::Kernel& kernel,
                         const analysis::ShadowTaintMap& shadow,
                         ExposureMonitor* monitor)
    : kernel_(kernel), shadow_(shadow), monitor_(monitor) {
  frames_.resize(kernel_.memory().page_count());
  slot_secret_bytes_.resize(shadow_.swap_shadow().size() / sim::kPageSize, 0);
  phys_class_.resize(shadow_.phys_shadow().size(), 0);
  swap_class_.resize(shadow_.swap_shadow().size(), 0);
}

void AlertEngine::add_rule(AlertRule rule) {
  rules_.push_back(std::move(rule));
  states_.emplace_back();
}

void AlertEngine::add_sink(AlertSink* sink) {
  if (sink != nullptr) sinks_.push_back(sink);
}

namespace {

/// Per-byte class derived from a taint tag: 0 = not secret (kClean,
/// kSealed ciphertext), 1 = the master key, 2 = any other secret.
std::uint8_t classify(sim::TaintTag t) noexcept {
  if (!sim::taint_tag_secret(t)) return 0;
  return t == sim::TaintTag::kMasterKey ? 1 : 2;
}

/// A frame entry's share of the aggregate fields, with `sign` +1 to add
/// and -1 to remove — every mutation applies the old entry at -1 and the
/// new one at +1, which keeps every aggregate exact without ever walking
/// the full shadow.
void apply_frame(WatcherAggregates& agg, std::uint64_t secret_bytes,
                 bool nonmaster, bool mlocked, sim::FrameState state,
                 std::int64_t sign) {
  if (secret_bytes == 0) return;
  agg.secret_frames += sign;
  if (mlocked) agg.secret_mlocked_frames += sign;
  if (!nonmaster) agg.master_key_frames += sign;
  switch (state) {
    case sim::FrameState::kFree:
      agg.secret_unallocated_bytes += sign * static_cast<std::int64_t>(secret_bytes);
      break;
    case sim::FrameState::kPageCache:
      agg.secret_page_cache_bytes += sign * static_cast<std::int64_t>(secret_bytes);
      break;
    case sim::FrameState::kKernel:
      agg.secret_kernel_bytes += sign * static_cast<std::int64_t>(secret_bytes);
      break;
    case sim::FrameState::kUserAnon:
      break;  // allocated bytes are not an invariant input
  }
}

}  // namespace

void AlertEngine::resync() {
  agg_ = WatcherAggregates{};
  const auto phys = shadow_.phys_shadow();
  for (std::size_t i = 0; i < phys_class_.size(); ++i) {
    phys_class_[i] = classify(phys[i]);
  }
  for (sim::FrameNumber f = 0; f < frames_.size(); ++f) {
    FrameEntry e;
    e.state = kernel_.allocator().state(f);
    e.mlocked = kernel_.frame_mlocked(f);
    const std::size_t base = static_cast<std::size_t>(f) * sim::kPageSize;
    for (std::size_t i = base; i < base + sim::kPageSize; ++i) {
      e.secret_bytes += phys_class_[i] != 0;
      e.nonmaster_bytes += phys_class_[i] == 2;
    }
    frames_[f] = e;
    apply_frame(agg_, e.secret_bytes, e.nonmaster_bytes > 0, e.mlocked,
                e.state, +1);
  }
  const auto swap = shadow_.swap_shadow();
  for (std::size_t i = 0; i < swap_class_.size(); ++i) {
    swap_class_[i] = classify(swap[i]);
  }
  for (std::uint32_t s = 0; s < slot_secret_bytes_.size(); ++s) {
    const std::size_t base = static_cast<std::size_t>(s) * sim::kPageSize;
    std::uint32_t n = 0;
    for (std::size_t i = base; i < base + sim::kPageSize; ++i) {
      n += swap_class_[i] != 0;
    }
    slot_secret_bytes_[s] = n;
    agg_.secret_swap_bytes += n;
  }
  shadow_bytes_examined_ += phys_class_.size() + swap_class_.size();
}

void AlertEngine::set_phys_class(std::size_t off, std::size_t len,
                                 std::uint8_t cls) {
  if (off >= phys_class_.size()) return;
  len = std::min(len, phys_class_.size() - off);
  if (len == 0) return;
  const std::size_t end = off + len;
  for (std::size_t pos = off; pos < end;) {
    const auto f = static_cast<sim::FrameNumber>(pos / sim::kPageSize);
    const std::size_t stop =
        std::min(end, (static_cast<std::size_t>(f) + 1) * sim::kPageSize);
    FrameEntry& e = frames_[f];
    if (cls == 0 && e.secret_bytes == 0) {
      pos = stop;  // all classes in the frame are already 0: a literal no-op
      continue;
    }
    apply_frame(agg_, e.secret_bytes, e.nonmaster_bytes > 0, e.mlocked,
                e.state, -1);
    e.state = kernel_.allocator().state(f);
    e.mlocked = kernel_.frame_mlocked(f);
    std::uint32_t old_secret = 0;
    std::uint32_t old_nm = 0;
    for (std::size_t i = pos; i < stop; ++i) {
      old_secret += phys_class_[i] != 0;
      old_nm += phys_class_[i] == 2;
    }
    std::fill(phys_class_.begin() + pos, phys_class_.begin() + stop, cls);
    const auto n = static_cast<std::uint32_t>(stop - pos);
    e.secret_bytes += (cls != 0 ? n : 0) - old_secret;
    e.nonmaster_bytes += (cls == 2 ? n : 0) - old_nm;
    apply_frame(agg_, e.secret_bytes, e.nonmaster_bytes > 0, e.mlocked,
                e.state, +1);
    shadow_bytes_examined_ += stop - pos;
    pos = stop;
  }
}

void AlertEngine::copy_phys_class(std::size_t dst, const std::uint8_t* src,
                                  std::size_t len, bool src_may_secret) {
  if (dst >= phys_class_.size()) return;
  len = std::min(len, phys_class_.size() - dst);
  if (len == 0) return;
  const std::size_t end = dst + len;
  for (std::size_t pos = dst; pos < end;) {
    const auto f = static_cast<sim::FrameNumber>(pos / sim::kPageSize);
    const std::size_t stop =
        std::min(end, (static_cast<std::size_t>(f) + 1) * sim::kPageSize);
    FrameEntry& e = frames_[f];
    if (!src_may_secret && e.secret_bytes == 0) {
      pos = stop;  // class-0 data over class-0 bytes: counts cannot move
      continue;
    }
    apply_frame(agg_, e.secret_bytes, e.nonmaster_bytes > 0, e.mlocked,
                e.state, -1);
    e.state = kernel_.allocator().state(f);
    e.mlocked = kernel_.frame_mlocked(f);
    std::uint32_t old_secret = 0;
    std::uint32_t old_nm = 0;
    std::uint32_t new_secret = 0;
    std::uint32_t new_nm = 0;
    for (std::size_t i = pos; i < stop; ++i) {
      const std::uint8_t o = phys_class_[i];
      const std::uint8_t c = src[i - dst];
      old_secret += o != 0;
      old_nm += o == 2;
      new_secret += c != 0;
      new_nm += c == 2;
      phys_class_[i] = c;
    }
    e.secret_bytes += new_secret - old_secret;
    e.nonmaster_bytes += new_nm - old_nm;
    apply_frame(agg_, e.secret_bytes, e.nonmaster_bytes > 0, e.mlocked,
                e.state, +1);
    shadow_bytes_examined_ += stop - pos;
    pos = stop;
  }
}

void AlertEngine::store_slot_classes(std::uint32_t slot,
                                     std::size_t phys_src) {
  if (slot >= slot_secret_bytes_.size()) return;
  const bool src_secret = range_has_secret(phys_src, sim::kPageSize);
  if (!src_secret && slot_secret_bytes_[slot] == 0) return;
  const std::size_t base = static_cast<std::size_t>(slot) * sim::kPageSize;
  std::uint32_t n = 0;
  for (std::size_t i = 0; i < sim::kPageSize; ++i) {
    const std::size_t s = phys_src + i;
    const std::uint8_t c = s < phys_class_.size() ? phys_class_[s] : 0;
    swap_class_[base + i] = c;
    n += c != 0;
  }
  agg_.secret_swap_bytes += n;
  agg_.secret_swap_bytes -= slot_secret_bytes_[slot];
  slot_secret_bytes_[slot] = n;
  shadow_bytes_examined_ += sim::kPageSize;
}

void AlertEngine::clear_slot_classes(std::uint32_t slot) {
  if (slot >= slot_secret_bytes_.size()) return;
  if (slot_secret_bytes_[slot] == 0) return;  // already all class 0
  const std::size_t base = static_cast<std::size_t>(slot) * sim::kPageSize;
  std::fill(swap_class_.begin() + base,
            swap_class_.begin() + base + sim::kPageSize, 0);
  agg_.secret_swap_bytes -= slot_secret_bytes_[slot];
  slot_secret_bytes_[slot] = 0;
  shadow_bytes_examined_ += sim::kPageSize;
}

void AlertEngine::refresh_frame_meta(sim::FrameNumber frame) {
  if (frame >= frames_.size()) return;
  FrameEntry& e = frames_[frame];
  apply_frame(agg_, e.secret_bytes, e.nonmaster_bytes > 0, e.mlocked, e.state,
              -1);
  e.state = kernel_.allocator().state(frame);
  e.mlocked = kernel_.frame_mlocked(frame);
  apply_frame(agg_, e.secret_bytes, e.nonmaster_bytes > 0, e.mlocked, e.state,
              +1);
}

bool AlertEngine::range_has_secret(std::size_t off, std::size_t len) const {
  if (len == 0) return false;
  const auto first = static_cast<sim::FrameNumber>(off / sim::kPageSize);
  const auto last =
      static_cast<sim::FrameNumber>((off + len - 1) / sim::kPageSize);
  for (sim::FrameNumber f = first; f <= last; ++f) {
    if (f < frames_.size() && frames_[f].secret_bytes > 0) return true;
  }
  return false;
}

void AlertEngine::on_phys_store(std::size_t off, std::size_t len,
                                sim::TaintTag tag) {
  set_phys_class(off, len, classify(tag));
  evaluate(now_ns());
}

void AlertEngine::on_phys_copy(std::size_t dst, std::size_t src,
                               std::size_t len) {
  // The copy carries the source's classes. Kernel copies (COW break,
  // realloc move) never overlap, but snapshot if one ever does so the
  // in-place walk cannot read bytes it already wrote.
  const bool src_secret = range_has_secret(src, len);
  const std::size_t avail =
      src < phys_class_.size() ? phys_class_.size() - src : 0;
  if (len <= avail &&
      (dst >= src + len || src >= dst + len)) {  // disjoint, in range
    copy_phys_class(dst, phys_class_.data() + src, len, src_secret);
  } else {
    std::vector<std::uint8_t> tmp(len, 0);
    std::copy_n(phys_class_.begin() + std::min(src, phys_class_.size()),
                std::min(len, avail), tmp.begin());
    copy_phys_class(dst, tmp.data(), len, src_secret);
  }
  evaluate(now_ns());
}

void AlertEngine::on_phys_clear(std::size_t off, std::size_t len) {
  set_phys_class(off, len, 0);
  evaluate(now_ns());
}

void AlertEngine::on_swap_store(std::uint32_t slot, std::size_t phys_src) {
  // The slot now holds a copy of the source page; if neither side held
  // secret bytes the slot count stays 0 and the page walk is skipped.
  store_slot_classes(slot, phys_src);
  const std::uint64_t ts = now_ns();
  if (slot < slot_secret_bytes_.size() && slot_secret_bytes_[slot] > 0) {
    // Secret bytes just crossed the RAM/swap boundary: a single-event
    // fact, detected here (on the taint path, so it fires even when the
    // event bus is disabled) rather than on the later kSwapOut event.
    for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
      const AlertRule& r = rules_[ri];
      if (r.kind != RuleKind::kSecretToSwap) continue;
      if (!cooled_down(r, states_[ri], ts)) continue;
      Alert a;
      a.rule = r.name;
      a.kind = r.kind;
      a.severity = r.severity;
      a.ts_ns = ts;
      a.breach_ts_ns = ts;
      a.a = slot;
      a.b = slot_secret_bytes_[slot];
      a.value = static_cast<double>(slot_secret_bytes_[slot]);
      fire(ri, std::move(a));
    }
  }
  evaluate(ts);
}

void AlertEngine::on_swap_load(std::size_t phys_dst, std::uint32_t slot) {
  if (slot < slot_secret_bytes_.size()) {
    // The slot's classes stay put — like its bytes, which persist on the
    // device until the slot is scrubbed.
    copy_phys_class(phys_dst,
                    swap_class_.data() +
                        static_cast<std::size_t>(slot) * sim::kPageSize,
                    sim::kPageSize, slot_secret_bytes_[slot] > 0);
  }
  evaluate(now_ns());
}

void AlertEngine::on_swap_clear(std::uint32_t slot) {
  clear_slot_classes(slot);
  evaluate(now_ns());
}

void AlertEngine::on_obs_event(const ObsEvent& ev) {
  // State/mlock flips move no bytes: an O(1) reapplication of the
  // frame's cached counts under the new state keeps every aggregate
  // exact. This is the entire cost of the hot alloc/free path.
  switch (ev.kind) {
    case ObsEventKind::kFrameAllocated:
    case ObsEventKind::kMlockChanged:
      refresh_frame_meta(static_cast<sim::FrameNumber>(ev.a));
      break;
    case ObsEventKind::kFrameFreed: {
      const auto frame = static_cast<sim::FrameNumber>(ev.a);
      refresh_frame_meta(frame);
      if (frame < frames_.size() && frames_[frame].secret_bytes > 0) {
        // The frame went back to the free lists with live taint — the
        // scrub-free residue the paper's scans kept finding. kFrameFreed
        // is published after any zero-on-free clear, so a defended
        // kernel never reaches this branch.
        for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
          const AlertRule& r = rules_[ri];
          if (r.kind != RuleKind::kResidueOnFree) continue;
          if (!cooled_down(r, states_[ri], ev.ts_ns)) continue;
          Alert a;
          a.rule = r.name;
          a.kind = r.kind;
          a.severity = r.severity;
          a.ts_ns = ev.ts_ns;
          a.breach_ts_ns = ev.ts_ns;
          a.a = frame;
          a.b = frames_[frame].secret_bytes;
          a.value = static_cast<double>(frames_[frame].secret_bytes);
          fire(ri, std::move(a));
        }
      }
      break;
    }
    case ObsEventKind::kPageMerged: {
      const auto frame = static_cast<sim::FrameNumber>(ev.a);
      if (frame < frames_.size() && frames_[frame].secret_bytes > 0 &&
          ev.b > 1) {
        // A secret-tainted frame now backs a stranger's mapping: the
        // share-count side channel the dedup probe times (PR 8).
        for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
          const AlertRule& r = rules_[ri];
          if (r.kind != RuleKind::kSecretFrameMerged) continue;
          if (!cooled_down(r, states_[ri], ev.ts_ns)) continue;
          Alert a;
          a.rule = r.name;
          a.kind = r.kind;
          a.severity = r.severity;
          a.ts_ns = ev.ts_ns;
          a.breach_ts_ns = ev.ts_ns;
          a.a = frame;
          a.b = ev.b;
          a.value = static_cast<double>(ev.b);
          a.threshold = 1.0;
          fire(ri, std::move(a));
        }
      }
      break;
    }
    case ObsEventKind::kKeystoreRefusal:
    case ObsEventKind::kDomainRefusal:
      note_refusal(ev.ts_ns);
      break;
    default:
      break;  // swap/cow/keystore traffic: taint hooks already updated state
  }
  evaluate(ev.ts_ns);
}

void AlertEngine::poll() { evaluate(now_ns()); }

void AlertEngine::evaluate(std::uint64_t ts) {
  ++evaluations_;
  for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
    switch (rules_[ri].kind) {
      case RuleKind::kExposureBudget:
        evaluate_budget(ri, ts);
        break;
      case RuleKind::kLockedPagesBound:
      case RuleKind::kWorkingSetBound:
        evaluate_invariant(ri, ts);
        break;
      case RuleKind::kRefusalBurst: {
        RuleState& st = states_[ri];
        const AlertRule& r = rules_[ri];
        while (!st.bursts.empty() &&
               st.bursts.front() + r.window_ns < ts) {
          st.bursts.pop_front();
        }
        if (st.bursts.size() >= r.bound && r.bound > 0 &&
            cooled_down(r, st, ts)) {
          Alert a;
          a.rule = r.name;
          a.kind = r.kind;
          a.severity = r.severity;
          a.ts_ns = ts;
          a.breach_ts_ns = ts;
          a.a = st.bursts.size();
          a.b = r.window_ns;
          a.value = static_cast<double>(st.bursts.size());
          a.threshold = static_cast<double>(r.bound);
          fire(ri, std::move(a));
        }
        break;
      }
      default:
        break;  // anomaly rules fire at their triggering event
    }
  }
}

void AlertEngine::evaluate_budget(std::size_t ri, std::uint64_t ts) {
  if (monitor_ == nullptr) return;
  const AlertRule& r = rules_[ri];
  RuleState& st = states_[ri];
  if (st.budget.size() < monitor_->key_count()) {
    st.budget.resize(monitor_->key_count());
  }
  const std::size_t lo = r.key >= 0 ? static_cast<std::size_t>(r.key) : 0;
  const std::size_t hi =
      r.key >= 0 ? lo + 1 : monitor_->key_count();
  for (std::size_t k = lo; k < hi && k < st.budget.size(); ++k) {
    BudgetState& b = st.budget[k];
    const KeyExposure ex = monitor_->exposure(k);
    if (b.primed && !b.fired && ex.byte_seconds >= r.budget_byte_seconds) {
      // Between the previous sample (t0, I0) and this one the live-byte
      // count was the constant b.last_live (it only changes at taint
      // events, and every taint event is a sample point), so the
      // integral was exactly linear — invert it for the crossing
      // instant. See DESIGN §13 for why this is exact, not estimated.
      std::uint64_t breach = ts;
      if (b.last_bs < r.budget_byte_seconds && b.last_live > 0) {
        const double dt_s =
            (r.budget_byte_seconds - b.last_bs) / static_cast<double>(b.last_live);
        breach = b.last_ts + static_cast<std::uint64_t>(dt_s * 1e9 + 0.5);
      } else if (b.last_bs >= r.budget_byte_seconds) {
        breach = b.last_ts;
      }
      Alert a;
      a.rule = r.name;
      a.kind = r.kind;
      a.severity = r.severity;
      a.ts_ns = ts;
      a.breach_ts_ns = breach;
      a.key = static_cast<std::int64_t>(k);
      a.a = ex.live_copies;
      a.b = ex.live_bytes;
      a.value = ex.byte_seconds;
      a.threshold = r.budget_byte_seconds;
      b.fired = true;  // the integral is monotone: once over, always over
      fire(ri, std::move(a));
    }
    b.last_bs = ex.byte_seconds;
    b.last_ts = ts;
    b.last_live = ex.live_bytes;
    b.primed = true;
  }
}

void AlertEngine::evaluate_invariant(std::size_t ri, std::uint64_t ts) {
  const AlertRule& r = rules_[ri];
  RuleState& st = states_[ri];
  if (r.kind == RuleKind::kLockedPagesBound && !st.armed) {
    // bounded_locked_pages_only demands >= 1 secret frame, which is
    // false before the first key loads. Arm the rule at the first sight
    // of secret taint so startup is not a violation.
    if (agg_.secret_frames == 0) return;
    st.armed = true;
  }
  const bool ok = r.kind == RuleKind::kLockedPagesBound
                      ? agg_.bounded_locked_pages_only(r.bound)
                      : agg_.bounded_plaintext_working_set(r.bound);
  if (ok) {
    st.pending_since = 0;
    return;
  }
  if (st.pending_since == 0) st.pending_since = ts;
  if (ts - st.pending_since < r.grace_ns) return;
  if (!cooled_down(r, st, ts)) return;
  Alert a;
  a.rule = r.name;
  a.kind = r.kind;
  a.severity = r.severity;
  a.ts_ns = ts;
  a.breach_ts_ns = st.pending_since;  // when the violation began
  a.a = agg_.secret_frames;
  a.b = agg_.secret_unallocated_bytes + agg_.secret_page_cache_bytes +
        agg_.secret_kernel_bytes + agg_.secret_swap_bytes;
  a.value = static_cast<double>(agg_.secret_frames - agg_.master_key_frames);
  a.threshold = static_cast<double>(r.bound);
  fire(ri, std::move(a));
}

void AlertEngine::note_refusal(std::uint64_t ts) {
  for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
    if (rules_[ri].kind == RuleKind::kRefusalBurst) {
      states_[ri].bursts.push_back(ts);
    }
  }
}

bool AlertEngine::cooled_down(const AlertRule& rule, const RuleState& st,
                              std::uint64_t ts) const {
  if (!st.fired_once) return true;
  return ts - st.last_fired >= rule.cooldown_ns;
}

void AlertEngine::fire(std::size_t ri, Alert alert) {
  RuleState& st = states_[ri];
  st.last_fired = alert.ts_ns;
  st.fired_once = true;
  ++alerts_fired_;
  for (auto* s : sinks_) s->on_alert(alert);
}

namespace {

std::optional<AlertRule> rule_from_value(const util::JsonValue& v,
                                         std::size_t index,
                                         std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = "rules[" + std::to_string(index) + "]: " + msg;
    }
    return std::nullopt;
  };
  if (v.kind() != util::JsonValue::Kind::kObject) {
    return fail("not an object");
  }
  AlertRule r;
  const auto* name = v.get("name");
  if (name == nullptr || name->kind() != util::JsonValue::Kind::kString) {
    return fail("missing string field \"name\"");
  }
  r.name = name->as_string();
  const auto* kind = v.get("kind");
  if (kind == nullptr || kind->kind() != util::JsonValue::Kind::kString) {
    return fail("missing string field \"kind\"");
  }
  const auto parsed_kind = rule_kind_from_name(kind->as_string());
  if (!parsed_kind) return fail("unknown kind \"" + kind->as_string() + "\"");
  r.kind = *parsed_kind;
  if (const auto* sev = v.get("severity"); sev != nullptr) {
    if (sev->kind() != util::JsonValue::Kind::kString) {
      return fail("\"severity\" must be a string");
    }
    const auto parsed = severity_from_name(sev->as_string());
    if (!parsed) return fail("unknown severity \"" + sev->as_string() + "\"");
    r.severity = *parsed;
  }
  r.budget_byte_seconds = v.get_number("budget_byte_seconds", 0.0);
  r.key = static_cast<std::int64_t>(v.get_number("key", -1.0));
  r.bound = static_cast<std::uint64_t>(v.get_number("bound", 0.0));
  r.window_ns = static_cast<std::uint64_t>(v.get_number("window_ns", 0.0));
  r.grace_ns = static_cast<std::uint64_t>(v.get_number("grace_ns", 0.0));
  r.cooldown_ns = static_cast<std::uint64_t>(v.get_number("cooldown_ns", 0.0));
  switch (r.kind) {
    case RuleKind::kExposureBudget:
      if (r.budget_byte_seconds <= 0.0) {
        return fail("exposure_budget needs budget_byte_seconds > 0");
      }
      break;
    case RuleKind::kRefusalBurst:
      if (r.bound == 0) return fail("refusal_burst needs bound > 0");
      if (r.window_ns == 0) return fail("refusal_burst needs window_ns > 0");
      break;
    default:
      break;  // bounds of 0 are legal for the invariant rules
  }
  return r;
}

}  // namespace

std::optional<std::vector<AlertRule>> rules_from_json(std::string_view text,
                                                      std::string* error) {
  auto doc = util::json_parse(text, error);
  if (!doc) return std::nullopt;
  if (doc->kind() != util::JsonValue::Kind::kObject) {
    if (error != nullptr) *error = "root is not an object";
    return std::nullopt;
  }
  const auto* rules = doc->get("rules");
  if (rules == nullptr || rules->kind() != util::JsonValue::Kind::kArray) {
    if (error != nullptr) *error = "missing array field \"rules\"";
    return std::nullopt;
  }
  std::vector<AlertRule> out;
  out.reserve(rules->items().size());
  for (std::size_t i = 0; i < rules->items().size(); ++i) {
    auto r = rule_from_value(rules->items()[i], i, error);
    if (!r) return std::nullopt;
    out.push_back(std::move(*r));
  }
  return out;
}

std::vector<AlertRule> default_rules() {
  std::vector<AlertRule> out;
  {
    AlertRule r;
    r.name = "secret-to-swap";
    r.kind = RuleKind::kSecretToSwap;
    r.severity = Severity::kCritical;
    out.push_back(std::move(r));
  }
  {
    AlertRule r;
    r.name = "residue-on-free";
    r.kind = RuleKind::kResidueOnFree;
    r.severity = Severity::kWarning;
    out.push_back(std::move(r));
  }
  {
    AlertRule r;
    r.name = "secret-frame-merged";
    r.kind = RuleKind::kSecretFrameMerged;
    r.severity = Severity::kCritical;
    out.push_back(std::move(r));
  }
  {
    AlertRule r;
    r.name = "refusal-burst";
    r.kind = RuleKind::kRefusalBurst;
    r.severity = Severity::kWarning;
    r.bound = 8;
    r.window_ns = 1'000'000'000ull;
    r.cooldown_ns = 1'000'000'000ull;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace keyguard::obs
