// Build provenance stamped into every JSON report and printable as a
// one-line banner (`scanmemory_tool --version`). A Fig. 5/6 number that
// cannot be traced back to the compiler + sanitizer that produced it is
// not reproducible, so the stamp rides along everywhere.
#pragma once

#include <string>

namespace keyguard::util {
class JsonWriter;
}

namespace keyguard::obs {
namespace build_info {

/// Project version (CMake PROJECT_VERSION), e.g. "1.0.0".
const char* version();
/// Compiler id + version, e.g. "gcc 13.2.0" / "clang 17.0.6".
std::string compiler();
/// KEYGUARD_SANITIZE value at configure time, or "none".
const char* sanitizer();
/// "debug" or "release" (NDEBUG).
const char* build_type();
/// "keyguard <version> | <compiler> | sanitizer=<san> | <type>".
std::string one_line();

/// Emits the build object *value* {"version":...,"compiler":...,
/// "sanitizer":...,"build_type":...} — caller supplies the key.
void write(util::JsonWriter& w);

}  // namespace build_info
}  // namespace keyguard::obs
