// Structured tracing: spans (begin/end), instants and counter samples,
// stamped with the obs clock and a small per-thread id, exportable as
// JSONL (one event per line, consumed by tools/trace2timeline.py) and as
// a chrome://tracing / Perfetto "traceEvents" document.
//
// Hot-path contract mirrors MetricsRegistry: `enabled()` is one relaxed
// atomic load, and a Span constructed while the tracer is disabled does
// nothing at all (no clock read, no allocation). Event storage is an
// in-memory ring guarded by a mutex — tracing is for experiments and
// tools, not a production telemetry pipeline, so simplicity and exact
// TSan-clean counts win over lock-free cleverness here.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace keyguard::util {
class JsonWriter;
}

namespace keyguard::obs {

/// One key/value span attribute. Numbers are carried as double (enough
/// for byte counts < 2^53 — every count in this repo), strings verbatim
/// (JsonWriter escapes arbitrary bytes).
struct TraceAttr {
  enum class Kind : std::uint8_t { kString, kNumber, kBool };
  std::string key;
  std::string str;
  double num = 0.0;
  bool flag = false;
  Kind kind = Kind::kString;

  static TraceAttr s(std::string_view k, std::string_view v);
  static TraceAttr n(std::string_view k, double v);
  static TraceAttr b(std::string_view k, bool v);
};

/// Phases follow the chrome://tracing event format: 'X' complete span,
/// 'i' instant, 'C' counter sample.
struct TraceEvent {
  std::string name;
  char phase = 'i';
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  // complete spans only
  std::uint32_t tid = 0;
  std::vector<TraceAttr> args;
};

class Tracer {
 public:
  /// Tracers start disabled; callers opt in (tests, tools, benches).
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& global();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// RAII complete-span. Timestamps at construction, emits one 'X'
  /// event at destruction. If the tracer was disabled at construction
  /// the span is inert (attrs added later are dropped too).
  class Span {
   public:
    Span(Tracer& t, std::string_view name, std::vector<TraceAttr> args = {});
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span();

    void add(TraceAttr a);
    bool live() const noexcept { return tracer_ != nullptr; }

   private:
    Tracer* tracer_ = nullptr;  // null when inert
    std::string name_;
    std::uint64_t t0_ = 0;
    std::vector<TraceAttr> args_;
  };

  Span span(std::string_view name, std::vector<TraceAttr> args = {}) {
    return Span(*this, name, std::move(args));
  }

  void instant(std::string_view name, std::vector<TraceAttr> args = {});
  /// Counter sample: value attached as args {"value": v}. Rendered by
  /// chrome://tracing as a stacked counter track.
  void counter(std::string_view name, double value);
  /// Raw emission (used by Span; public for replay/import tools).
  void emit(TraceEvent ev);

  std::size_t event_count() const;
  /// Events accepted minus events dropped once `capacity` was hit.
  std::size_t dropped() const;
  /// Default capacity 1M events; exceeding it drops new events (and
  /// counts them) rather than growing without bound.
  void set_capacity(std::size_t cap);
  std::vector<TraceEvent> snapshot() const;
  void clear();

  /// One JSON object per line; ns-resolution fields (ts_ns, dur_ns).
  std::string jsonl() const;
  /// chrome://tracing document: {"traceEvents":[...]} with microsecond
  /// "ts"/"dur" fields as the format requires.
  void write_chrome_trace(util::JsonWriter& w) const;

 private:
  std::uint32_t tid_for(std::thread::id id);
  static void write_args(util::JsonWriter& w, const std::vector<TraceAttr>& a);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, std::uint32_t> tids_;
  std::size_t capacity_ = 1u << 20;
  std::size_t dropped_ = 0;
};

}  // namespace keyguard::obs
