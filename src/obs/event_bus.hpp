// Process-global observability event bus: the active layer's spine.
//
// The taint hooks (sim/taint.hpp) report BYTE movements, which is enough
// to keep a shadow map exact — but several state changes that decide
// whether an invariant holds move no bytes at all: a frame returning to
// the free lists, an mlock flip, a dedup merge raising a share count, a
// coprocessor refusing service. The kernel's single-slot observers
// (CowObserver, FrameFreeObserver) are already taken by the DedupEngine,
// so those remaining signals cross here: low layers publish typed,
// NUMERIC-ONLY events; high layers (obs::AlertEngine, obs::FlightRecorder
// in keyguard_obs_alert) subscribe.
//
// Numeric-only payloads are a redaction property, not a convenience: an
// event carries frame numbers, slot indices, byte counts and ids — never
// a pointer into simulated memory and never memory contents — so nothing
// that flows through the bus can reproduce key bytes in an alert message
// or a forensic bundle (KL103 polices the sinks; the bus makes the leak
// structurally impossible at the source).
//
// Hot-path contract mirrors MetricsRegistry/Tracer: the process-global
// bus starts DISABLED and every publish site gates on one relaxed atomic
// load, so the instrumented kernel costs one branch per site when nobody
// is listening (tier-1 workloads, golden pins). publish() itself takes a
// mutex — the host keystore signs from many threads — and fans out to
// subscribers in subscription order.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace keyguard::obs {

/// What happened. Payload slots a/b/c are per-kind (see comments).
enum class ObsEventKind : std::uint8_t {
  kFrameAllocated,   ///< a=frame, b=FrameState after allocation
  kFrameFreed,       ///< a=frame (published AFTER any zero-on-free clear)
  kCowBreak,         ///< a=shared frame, b=fresh private frame
  kMlockChanged,     ///< a=frame, b=1 locked / 0 unlocked
  kPageMerged,       ///< a=canonical frame, b=share count after the merge
  kSwapOut,          ///< a=slot, b=source frame
  kSwapIn,           ///< a=slot, b=destination frame
  kKeystoreUnseal,   ///< a=key id, b=1 blob unseal / 0 in-place decrypt
  kKeystoreSeal,     ///< a=key id (re-encrypt / working-set squeeze)
  kKeystoreEvict,    ///< a=key id
  kKeystoreRefusal,  ///< a=key id (fail-closed denial)
  kDomainRefusal,    ///< a=request kind (0 keystream, 1 batch, 2 mac)
  kServerRequest,    ///< a=server kind (0 ssh, 1 apache, 2 sni), b=ok
};

inline constexpr std::size_t kObsEventKindCount = 13;

const char* obs_event_kind_name(ObsEventKind k) noexcept;

struct ObsEvent {
  ObsEventKind kind = ObsEventKind::kFrameAllocated;
  std::uint64_t ts_ns = 0;  ///< obs clock at publish time
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

class ObsEventSink {
 public:
  virtual ~ObsEventSink() = default;
  virtual void on_obs_event(const ObsEvent& ev) = 0;
};

class EventBus {
 public:
  EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// The bus the sim publishes to. Starts disabled.
  static EventBus& global();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Stamps the obs clock and fans out. No-op while disabled (the
  /// publish sites also pre-check enabled() to skip argument setup).
  void publish(ObsEventKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
               std::uint64_t c = 0);

  /// Subscribers are borrowed, not owned. Subscribing mid-publish is the
  /// caller's race to avoid (setup-time only, like Kernel::attach_taint).
  void subscribe(ObsEventSink* sink);
  void unsubscribe(ObsEventSink* sink);
  std::size_t subscriber_count() const;

  /// Events published while enabled (dropped-on-disabled are not counted
  /// anywhere — a disabled bus is "not observing", not "observing lossily").
  std::uint64_t published() const noexcept {
    return published_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> published_{0};
  mutable std::mutex mu_;
  std::vector<ObsEventSink*> sinks_;
};

/// RAII publisher for kServerRequest: construct at handler entry, flip
/// `ok` on the success path, and the destructor publishes the outcome on
/// every exit route — early refusals included — so per-server request
/// rates stay exact without a publish at each return statement.
struct ServerRequestScope {
  std::uint64_t server_kind;
  bool ok = false;
  explicit ServerRequestScope(std::uint64_t kind) : server_kind(kind) {}
  ServerRequestScope(const ServerRequestScope&) = delete;
  ServerRequestScope& operator=(const ServerRequestScope&) = delete;
  ~ServerRequestScope() {
    auto& bus = EventBus::global();
    if (bus.enabled()) {
      bus.publish(ObsEventKind::kServerRequest, server_kind, ok ? 1 : 0);
    }
  }
};

inline constexpr std::uint64_t kServerKindSsh = 0;
inline constexpr std::uint64_t kServerKindApache = 1;
inline constexpr std::uint64_t kServerKindSni = 2;

}  // namespace keyguard::obs
