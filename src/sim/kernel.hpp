// The simulated operating system kernel.
//
// One Kernel instance is one machine: physical memory, page allocator,
// page cache, VFS, and a process table. Servers and attacks interact with
// it exclusively through this façade (the "syscall boundary"), so every
// byte of key material that the paper's measurements depend on actually
// flows through simulated physical memory:
//
//   * fork() shares anonymous pages copy-on-write — the mechanism the
//     paper's RSA_memory_align defense deliberately exploits to keep ONE
//     physical copy of the key across any number of server children.
//   * mem_write() breaks COW exactly like a write fault would, which is
//     how Apache workers end up with private copies of key-bearing pages.
//   * exec() and exit_process() tear an address space down WITHOUT
//     clearing pages (unless the kernel-level defense is on), feeding the
//     population of key copies in unallocated memory.
//   * read_file() pulls file pages into the page cache and honours the
//     paper's O_NOCACHE flag when KernelConfig::o_nocache_supported.
//
// KernelConfig's two booleans are the paper's two kernel patches.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/page_alloc.hpp"
#include "sim/physmem.hpp"
#include "sim/process.hpp"
#include "sim/swap.hpp"
#include "sim/vfs.hpp"
#include "util/rng.hpp"

namespace keyguard::sim {

struct KernelConfig {
  /// Physical memory size. The paper's testbed had 256 MB; tests use less.
  std::size_t mem_bytes = 64ull << 20;
  /// Kernel-level defense: clear every page when it is freed
  /// (free_hot_cold_page -> clear_highpage, plus the zap_pte_range patch).
  bool zero_on_free = false;
  /// Integrated defense: the kernel honours O_NOCACHE on open/read and
  /// evicts + clears the file's page-cache entry right after the read.
  bool o_nocache_supported = false;
  /// See PageAllocPolicy::bulk_reuse_fraction (workload calibration).
  double bulk_reuse_fraction = 0.80;
  /// Page-cache budget in pages (0 = unlimited). When a read pushes the
  /// cache past the budget, the oldest entries are evicted — UNCLEARED on
  /// a stock kernel, so file contents (key files included) flow into
  /// unallocated memory without any process dying.
  std::size_t page_cache_limit_pages = 0;
  /// Swap device size in pages (0 = no swap configured).
  std::size_t swap_pages = 0;
  /// Provos-style swap encryption: slots are XORed with a keystream from a
  /// per-boot secret, so the on-disk image is useless offline.
  bool encrypt_swap = false;
};

// -- write-fault cost model ---------------------------------------------
//
// Simulated nanoseconds per page for the three ways a write can resolve.
// The absolute values are calibration, not measurement; what matters for
// the dedup side channel is the ORDER: a COW break (page copy + frame
// alloc) is ~25x a minor in-place write, which is exactly the timing gap
// Schwarzl et al.'s remote dedup attack thresholds on. A major fault
// (swap-in) is slower still.
inline constexpr std::uint64_t kWriteCostMinorNs = 120;
inline constexpr std::uint64_t kWriteCostCowBreakNs = 3'200;
inline constexpr std::uint64_t kWriteCostSwapInNs = 9'000;

/// Observer for COW breaks (write faults on shared frames). The dedup
/// engine registers one to tell merge-induced unmerges apart from
/// fork-induced copies — the kernel itself cannot know which shared
/// frames the engine created.
class CowObserver {
 public:
  virtual ~CowObserver() = default;
  /// `shared` is the frame whose COW broke; `fresh` the private copy the
  /// writer received. Fired after the copy, before the unref.
  virtual void on_cow_break(FrameNumber shared, FrameNumber fresh) = 0;
};

class Kernel {
 public:
  explicit Kernel(KernelConfig cfg, std::uint64_t seed = 1);

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // -- process lifecycle ----------------------------------------------------

  /// Creates a fresh process with an empty address space.
  Process& spawn(std::string name);

  /// fork(): duplicates the parent's address space copy-on-write.
  Process& fork(Process& parent, std::string name);

  /// execve(): tears down the address space (pages freed uncleared unless
  /// zero_on_free) and gives the process a fresh empty one. Models
  /// OpenSSH's re-exec-per-connection.
  void exec(Process& p);

  /// exit(): releases everything the process holds. Freed pages keep their
  /// contents (kBulk free into the buddy pool) unless zero_on_free.
  void exit_process(Process& p);

  Process* find_process(Pid pid);
  const Process* find_process(Pid pid) const;
  const std::vector<std::unique_ptr<Process>>& processes() const { return procs_; }
  std::size_t live_process_count() const;

  // -- memory mapping ---------------------------------------------------------

  /// Anonymous mapping of `bytes` (page-rounded), zero-filled, optionally
  /// mlocked (excluded from swap — the defense's posix_memalign + mlock
  /// page lives in one of these). Returns 0 on out-of-memory.
  VirtAddr mmap_anon(Process& p, std::size_t bytes, bool mlocked,
                     std::string label = "anon");

  /// Unmaps [addr, addr+bytes); single-page hot frees.
  void munmap(Process& p, VirtAddr addr, std::size_t bytes);

  /// mlock()/munlock() over an existing mapping.
  void mlock_range(Process& p, VirtAddr addr, std::size_t bytes, bool locked);

  // -- memory access (the only way simulated code touches memory) -----------

  /// Write with COW break-on-write semantics (and swap-in on fault).
  /// `taint` labels the written bytes in the attached shadow map: key
  /// material passes its source tag, ordinary data (the default) clears
  /// whatever taint the overwritten bytes carried.
  void mem_write(Process& p, VirtAddr addr, std::span<const std::byte> data,
                 TaintTag taint = TaintTag::kClean);

  /// Read through the page table; faults swapped pages back in.
  void mem_read(Process& p, VirtAddr addr, std::span<std::byte> out);

  /// What one timed write cost under the fault model above. The attacker's
  /// stopwatch: cost_ns is all a real co-tenant could observe.
  struct WriteTiming {
    std::size_t pages_touched = 0;
    std::size_t cow_breaks = 0;  ///< write faults that copied a shared page
    std::size_t swap_ins = 0;    ///< major faults
    std::uint64_t cost_ns = 0;
  };

  /// mem_write with the simulated write-fault cost model: identical memory
  /// semantics, plus a timing receipt. A write that lands on a merged
  /// (or forked) shared page pays kWriteCostCowBreakNs per broken page —
  /// the dedup side channel's measurable signal.
  WriteTiming mem_write_timed(Process& p, VirtAddr addr,
                              std::span<const std::byte> data,
                              TaintTag taint = TaintTag::kClean);

  /// Zero a range (explicit scrubbing, e.g. BN_clear_free / memset before
  /// free). Breaks COW like any write.
  void mem_zero(Process& p, VirtAddr addr, std::size_t len);

  // -- heap ------------------------------------------------------------------

  /// malloc() in p's heap. Returns 0 on exhaustion. `label` names the
  /// allocation for provenance reports and survives free().
  VirtAddr heap_alloc(Process& p, std::size_t size, std::string label = {});
  /// free(): contents untouched.
  void heap_free(Process& p, VirtAddr addr);
  /// BN_clear_free(): zero the chunk, then free it.
  void heap_clear_free(Process& p, VirtAddr addr);
  std::size_t heap_chunk_size(const Process& p, VirtAddr addr) const;

  /// realloc(): grows in place when the chunk already has room, otherwise
  /// allocates, copies, and frees the old chunk — WITHOUT clearing it.
  /// The abandoned original is yet another way secrets multiply (OpenSSL's
  /// bn_expand2 does exactly this when a BIGNUM grows). Returns 0 on
  /// exhaustion (the old chunk stays valid).
  VirtAddr heap_realloc(Process& p, VirtAddr addr, std::size_t new_size);

  // -- files -----------------------------------------------------------------

  /// open()+read()+close() of a whole file. Populates the page cache (the
  /// paper's "PEM file loaded into memory") unless O_NOCACHE is requested
  /// and supported, in which case the cache entry is evicted and cleared
  /// right after the read. Returns nullopt when the file does not exist.
  std::optional<std::vector<std::byte>> read_file(Process& p, const std::string& path,
                                                  int flags = kOpenReadOnly);

  Vfs& vfs() noexcept { return vfs_; }
  PageCache& page_cache() noexcept { return cache_; }
  const PageCache& page_cache() const noexcept { return cache_; }

  // -- swap ------------------------------------------------------------------

  /// Evicts up to `n` of `p`'s resident, non-mlocked, unshared anonymous
  /// pages to the swap device (lowest virtual addresses first, so eviction
  /// is deterministic). The vacated RAM frames are hot-freed UNCLEARED on
  /// a stock kernel — swapping duplicates secrets rather than moving them.
  /// Returns how many pages were evicted. No-op without a swap device.
  std::size_t swap_out_pages(Process& p, std::size_t n);

  /// Memory pressure across all live processes (round-robin).
  std::size_t swap_out_global(std::size_t n);

  /// The swap device (null when swap_pages == 0) — attacks read raw().
  SwapDevice* swap() noexcept { return swap_ ? &*swap_ : nullptr; }
  const SwapDevice* swap() const noexcept { return swap_ ? &*swap_ : nullptr; }
  std::size_t swap_used() const noexcept { return swap_ ? swap_->used() : 0; }

  // -- inspection (scanmemory's view) ----------------------------------------

  PhysicalMemory& memory() noexcept { return mem_; }
  const PhysicalMemory& memory() const noexcept { return mem_; }

  // -- shadow taint (see sim/taint.hpp; implementation in src/analysis) -----

  /// Attaches (or detaches, with nullptr) a shadow-taint tracker. The
  /// tracker observes every physical byte movement from this point on:
  /// attach it BEFORE the workload runs so no key flow predates the
  /// shadow. Fans out to the physical memory and the swap device.
  void attach_taint(TaintTracker* tracker) noexcept;
  TaintTracker* taint() const noexcept { return taint_; }

  /// Copies shadow taint for a virtual byte range that was just copied
  /// host-side (heap_realloc's read+write move). Both ranges must be
  /// resident. No-op without a tracker.
  void propagate_taint(const Process& p, VirtAddr dst, VirtAddr src, std::size_t len);
  PageAllocator& allocator() noexcept { return alloc_; }
  const PageAllocator& allocator() const noexcept { return alloc_; }
  const KernelConfig& config() const noexcept { return cfg_; }

  /// Reverse mapping: pids of live processes that map `frame` (the paper's
  /// printOwningProcesses walks anon VMAs the same way).
  std::vector<Pid> frame_owners(FrameNumber frame) const;

  /// One (process, virtual page) pair mapping a frame. After dedup a
  /// frame can be mapped by several processes — or several pages of the
  /// SAME process — so attribution needs the full rmap, not just pids.
  struct FrameMapping {
    Pid pid = 0;
    VirtAddr vaddr = 0;
  };

  /// Every live mapping of `frame`, in (process-table, vaddr) order.
  std::vector<FrameMapping> frame_mappings(FrameNumber frame) const;

  // -- dedup (KSM) support ---------------------------------------------------

  /// Repoints `p`'s PTE at `vaddr` onto `canonical` (contents must already
  /// be byte-identical — sim::DedupEngine byte-verifies first), marking
  /// the mapping COW. Refs canonical; unrefs (possibly frees, WITHOUT
  /// moving bytes) the duplicate frame. False when the page is unmapped,
  /// swapped, or already maps canonical.
  bool merge_page(Process& p, VirtAddr vaddr, FrameNumber canonical);

  /// Marks an existing resident mapping COW without moving it — the
  /// canonical side of a merge must fault on its next write too.
  bool set_page_cow(Process& p, VirtAddr vaddr);

  /// At most one COW observer; nullptr detaches.
  void set_cow_observer(CowObserver* obs) noexcept { cow_obs_ = obs; }

  /// Cumulative COW breaks / swap-ins (the fault counters the timed write
  /// path snapshots; monotone for the life of the kernel).
  std::uint64_t cow_break_count() const noexcept { return cow_breaks_; }
  std::uint64_t swap_in_count() const noexcept { return swap_ins_; }

  /// True when any live process maps the frame with mlock.
  bool frame_mlocked(FrameNumber frame) const;

  /// Physical frame backing a virtual address (nullopt when unmapped).
  std::optional<FrameNumber> translate(const Process& p, VirtAddr addr) const;

  /// Reverse translation: the virtual page (in `p`) mapped to `frame`.
  std::optional<VirtAddr> virt_of_frame(const Process& p, FrameNumber frame) const;

  /// Human-readable description of what lives at (p, addr): a labelled VMA
  /// ("rsa_aligned mapping"), a heap chunk ("mont:p (freed)"), or "anon".
  /// Nullopt when the address is unmapped. Powers the provenance column in
  /// scan reports — the paper's §3 "why are the attacks so powerful".
  std::optional<std::string> describe_address(const Process& p, VirtAddr addr) const;

 private:
  void map_fresh_pages(Process& p, VirtAddr start, std::size_t bytes, bool mlocked);
  void ensure_heap_pages(Process& p, std::size_t grown_bytes);
  /// Breaks COW for the page containing `addr` if needed; returns frame.
  FrameNumber frame_for_write(Process& p, VirtAddr page_addr);
  /// Major fault: brings a swapped page back into a fresh frame.
  void swap_in(Process& p, VirtAddr page_addr, Pte& pte);
  /// XORs a slot with its per-boot keystream (encrypt == decrypt).
  void crypt_slot(std::uint32_t slot);
  void release_address_space(Process& p);

  KernelConfig cfg_;
  PhysicalMemory mem_;
  PageAllocator alloc_;
  Vfs vfs_;
  PageCache cache_;
  std::optional<SwapDevice> swap_;
  std::uint64_t swap_secret_ = 0;
  TaintTracker* taint_ = nullptr;
  CowObserver* cow_obs_ = nullptr;
  std::uint64_t cow_breaks_ = 0;
  std::uint64_t swap_ins_ = 0;
  std::vector<std::unique_ptr<Process>> procs_;
  Pid next_pid_ = 1;
};

}  // namespace keyguard::sim
