// Simulated swap device.
//
// The paper's defenses mlock() key pages because "memory that is swapped
// out is not immediately cleared and the private key may appear in
// unallocated memory" — and because swap lives on disk, where it survives
// reboots and is readable offline (Provos'00 proposed encrypting it;
// Gutmann'96 showed how hard disk remnants are to erase). This module
// models that channel: pages evicted under memory pressure are copied to
// swap slots, the vacated RAM frame keeps its content (hot-freed,
// uncleared on a stock kernel), and the swap slot keeps the page bytes
// until explicitly scrubbed — which stock kernels never do.
//
// Optional per-boot swap encryption (KernelConfig::encrypt_swap) XORs each
// slot with a keystream derived from a boot-time secret, Provos-style: the
// on-disk image becomes useless to an offline attacker.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/physmem.hpp"
#include "sim/taint.hpp"

namespace keyguard::sim {

class SwapDevice {
 public:
  /// A device of `pages` page-sized slots, zero-filled like a fresh mkswap.
  explicit SwapDevice(std::size_t pages);

  std::size_t capacity() const noexcept { return slots_used_.size(); }
  std::size_t used() const noexcept { return used_count_; }
  bool full() const noexcept { return used_count_ == capacity(); }

  /// Reserves a free slot; nullopt when the device is full.
  std::optional<std::uint32_t> alloc_slot();

  /// Releases a slot. Stock behaviour keeps the bytes (`scrub == false`);
  /// the zero-on-free kernel defense scrubs eagerly (and clears the
  /// slot's shadow taint through the attached tracker).
  void free_slot(std::uint32_t slot, bool scrub);

  /// Shadow-taint observer for slot scrubs (see sim/taint.hpp). Attached
  /// by Kernel::attach_taint alongside the PhysicalMemory tracker.
  void set_taint_tracker(TaintTracker* t) noexcept { taint_ = t; }

  /// True when the slot currently backs a swapped-out page. Freed slots
  /// keep their bytes (and shadow taint) until scrubbed — the auditor
  /// reports them as disk-resident residue.
  bool slot_in_use(std::uint32_t index) const { return slots_used_[index]; }

  /// Mutable view of one slot's bytes.
  std::span<std::byte> slot(std::uint32_t index);
  std::span<const std::byte> slot(std::uint32_t index) const;

  /// The whole device image — what an attacker with the disk (or a raw
  /// /dev/sda read) sees.
  std::span<const std::byte> raw() const noexcept { return bytes_; }

 private:
  std::vector<std::byte> bytes_;
  std::vector<bool> slots_used_;
  std::size_t used_count_ = 0;
  TaintTracker* taint_ = nullptr;
};

}  // namespace keyguard::sim
