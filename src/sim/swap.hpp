// Simulated swap device.
//
// The paper's defenses mlock() key pages because "memory that is swapped
// out is not immediately cleared and the private key may appear in
// unallocated memory" — and because swap lives on disk, where it survives
// reboots and is readable offline (Provos'00 proposed encrypting it;
// Gutmann'96 showed how hard disk remnants are to erase). This module
// models that channel: pages evicted under memory pressure are copied to
// swap slots, the vacated RAM frame keeps its content (hot-freed,
// uncleared on a stock kernel), and the swap slot keeps the page bytes
// until explicitly scrubbed — which stock kernels never do.
//
// Optional per-boot swap encryption (KernelConfig::encrypt_swap) XORs each
// slot with a keystream derived from a boot-time secret, Provos-style: the
// on-disk image becomes useless to an offline attacker.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/physmem.hpp"

namespace keyguard::sim {

class SwapDevice {
 public:
  /// A device of `pages` page-sized slots, zero-filled like a fresh mkswap.
  explicit SwapDevice(std::size_t pages);

  std::size_t capacity() const noexcept { return slots_used_.size(); }
  std::size_t used() const noexcept { return used_count_; }
  bool full() const noexcept { return used_count_ == capacity(); }

  /// Reserves a free slot; nullopt when the device is full.
  std::optional<std::uint32_t> alloc_slot();

  /// Releases a slot. Stock behaviour keeps the bytes (`scrub == false`);
  /// a paranoid kernel could scrub.
  void free_slot(std::uint32_t slot, bool scrub);

  /// Mutable view of one slot's bytes.
  std::span<std::byte> slot(std::uint32_t index);
  std::span<const std::byte> slot(std::uint32_t index) const;

  /// The whole device image — what an attacker with the disk (or a raw
  /// /dev/sda read) sees.
  std::span<const std::byte> raw() const noexcept { return bytes_; }

 private:
  std::vector<std::byte> bytes_;
  std::vector<bool> slots_used_;
  std::size_t used_count_ = 0;
};

}  // namespace keyguard::sim
