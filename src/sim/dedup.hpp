// KSM-like same-content page merging over simulated physical memory.
//
// Linux's Kernel Samepage Merging walks anonymous pages, groups them by
// content, and collapses byte-identical pages onto one shared read-only
// frame; the first write to a merged page takes a copy-on-write fault.
// Hypervisors run the same trick across tenants (ESXi TPS, KSM under
// KVM) — and that cross-tenant sharing is a side channel: a tenant who
// WRITES a guessed page and later observes a slow (COW) write-back has
// learned that some other tenant holds the same bytes, without ever
// reading a byte it doesn't own (Schwarzl et al., "Remote
// Memory-Deduplication Attacks"; see src/attack/dedup_probe.hpp).
//
// DedupEngine reproduces the mechanism over a sim::Kernel:
//
//   scan()   builds a content-hash candidate table over every resident
//            anonymous page of every live process (FNV-1a 64 per page),
//            byte-verifies hash groups (hash collisions never merge), and
//            merges duplicates onto the group's canonical frame: the
//            duplicate PTE is repointed (ref canonical, unref duplicate)
//            and every mapping of the canonical frame is marked COW.
//   unmerge  is the kernel's existing COW-break path — any write to a
//            merged page copies it back out. The engine registers as the
//            kernel's CowObserver to count merge-induced breaks
//            separately from fork-induced ones, and as the allocator's
//            FrameFreeObserver so its merged-frame marks can never go
//            stale across frame reuse.
//
// Two behaviors are deliberate, and load-bearing for the experiments:
//
//   * Merging FREES the duplicate frame without moving its bytes — on a
//     stock kernel (zero_on_free off) dedup itself mints residue in
//     unallocated memory, one more copy channel the paper never had to
//     consider.
//   * Canonical selection prefers a secret-tainted frame over a clean
//     one (see set_secret_predicate). Content is identical either way;
//     keeping the tainted frame as the survivor keeps the shadow taint
//     map exact without inventing per-byte tag unions: the attacker's
//     clean-tagged guess page is the one that dies.
//
// The defense (DedupConfig::no_merge_secret) consults the same predicate
// at merge time and refuses to merge ANY page carrying secret taint, in
// either role — the no-merge policy for kPoolKey/kMasterKey/... pages
// that kills the side channel while non-secret pages keep merging.
//
// Interactions with the rest of the kernel come for free from the COW
// machinery: fork() of a process with merged pages just refs them again;
// swap_out_pages() already skips shared (refcount > 1) frames, so merged
// frames never hit the swap device; exit unrefs and the last mapper
// frees. tests/sim_dedup_test.cpp pins each of these down.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/kernel.hpp"

namespace keyguard::sim {

struct DedupConfig {
  /// Merge pages of mlocked mappings too. Real KSM only touches areas
  /// madvise(MERGEABLE), but hypervisor-level dedup (the attack's actual
  /// setting) sees every guest page; mlock pins against SWAP, not against
  /// host-side merging — which is exactly the misconfiguration the
  /// dedup attack exploits against "mlock the key page" defenses.
  bool merge_mlocked = true;
  /// Merge all-zero pages (KSM's zero-page case). Off when zero-page
  /// churn would drown the statistics a test wants to read.
  bool merge_zero_pages = true;
  /// The defense: never merge a page the secret predicate flags, in
  /// either the canonical or the duplicate role.
  bool no_merge_secret = false;
};

struct DedupStats {
  std::uint64_t scans = 0;
  std::uint64_t pages_considered = 0;  ///< candidate PTEs across all scans
  std::uint64_t pages_merged = 0;      ///< PTE remaps (cumulative)
  std::uint64_t bytes_saved = 0;       ///< pages_merged * kPageSize
  std::uint64_t vetoed_secret = 0;     ///< merges refused by the defense
  std::uint64_t hash_collisions = 0;   ///< equal hash, unequal bytes
  std::uint64_t unmerges = 0;          ///< COW breaks on merged frames
};

class DedupEngine final : public CowObserver, public FrameFreeObserver {
 public:
  explicit DedupEngine(Kernel& kernel, DedupConfig cfg = {});
  ~DedupEngine() override;

  DedupEngine(const DedupEngine&) = delete;
  DedupEngine& operator=(const DedupEngine&) = delete;

  /// Classifier for the no-merge policy and canonical selection: returns
  /// true when the frame carries secret taint (analysis::ShadowTaintMap's
  /// per-byte tags are the intended source; sim cannot depend on analysis,
  /// so the query crosses as a callback). Unset = nothing is secret.
  void set_secret_predicate(std::function<bool(FrameNumber)> pred);

  /// One full merge pass. Returns pages merged by THIS pass. Emits a
  /// "dedup.scan" tracer span and refreshes the kernel.dedup.* metrics.
  std::size_t scan();

  /// Frames this engine merged that are still shared right now.
  std::size_t shared_frame_count() const;

  /// Pages of RAM currently saved by merging: for every live merged
  /// frame, mappings beyond the first are free wins.
  std::size_t saved_pages() const;

  /// True when the engine merged `frame` and it is still shared.
  bool is_merged_frame(FrameNumber frame) const;

  const DedupStats& stats() const noexcept { return stats_; }
  const DedupConfig& config() const noexcept { return cfg_; }

  // CowObserver: a write fault broke `shared` apart — if it was one of
  // ours, that's an unmerge (the attack's timing signal firing).
  void on_cow_break(FrameNumber shared, FrameNumber fresh) override;

  // FrameFreeObserver: the frame left allocation entirely; forget it.
  void on_frame_freed(FrameNumber frame) override;

 private:
  void publish_metrics();

  Kernel& kernel_;
  DedupConfig cfg_;
  std::function<bool(FrameNumber)> secret_;
  std::vector<std::uint8_t> merged_;  ///< per-frame: merged by this engine
  DedupStats stats_;
};

}  // namespace keyguard::sim
