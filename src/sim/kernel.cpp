#include "sim/kernel.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"

namespace keyguard::sim {
namespace {

VirtAddr page_floor(VirtAddr a) { return a & ~static_cast<VirtAddr>(kPageSize - 1); }
std::size_t page_round(std::size_t n) { return (n + kPageSize - 1) / kPageSize * kPageSize; }

/// One kernel-event tick into the global registry. Disabled registry =
/// one relaxed load; enabled = one relaxed add via a static-cached
/// instrument reference (counter() references are stable for the
/// registry's lifetime, so caching per call site is sound).
#define KEYGUARD_KERNEL_COUNT(name)                                   \
  do {                                                                \
    auto& kg_reg = ::keyguard::obs::MetricsRegistry::global();        \
    if (kg_reg.enabled()) {                                           \
      static ::keyguard::obs::Counter& kg_c = kg_reg.counter(name);   \
      kg_c.add(1);                                                    \
    }                                                                 \
  } while (false)

}  // namespace

Kernel::Kernel(KernelConfig cfg, std::uint64_t seed)
    : cfg_(cfg),
      mem_(cfg.mem_bytes),
      alloc_(mem_, PageAllocPolicy{cfg.zero_on_free, cfg.bulk_reuse_fraction},
             util::Rng(seed)),
      cache_(mem_, alloc_) {
  if (cfg.swap_pages > 0) {
    swap_.emplace(cfg.swap_pages);
    // Per-boot swap-encryption secret (Provos'00): forgotten at "reboot".
    swap_secret_ = util::Rng(seed ^ 0x5157'4150'5345'4352ULL).next_u64();
  }
}

Process& Kernel::spawn(std::string name) {
  procs_.push_back(std::make_unique<Process>(next_pid_++, std::move(name)));
  return *procs_.back();
}

Process& Kernel::fork(Process& parent, std::string name) {
  assert(parent.alive_);
  KEYGUARD_KERNEL_COUNT("kernel.forks");
  // Swapped pages fault back in before the fork duplicates the page
  // tables (real kernels share swap entries; one slot per PTE keeps this
  // model simple and changes nothing the experiments measure).
  for (auto& [addr, pte] : parent.pages_) {
    if (pte.swapped) swap_in(parent, addr, pte);
  }
  Process& child = spawn(std::move(name));
  // Share every anonymous page copy-on-write.
  child.pages_ = parent.pages_;
  for (auto& [addr, pte] : child.pages_) {
    alloc_.ref(pte.frame);
    pte.cow = true;
  }
  for (auto& [addr, pte] : parent.pages_) pte.cow = true;
  child.vmas_ = parent.vmas_;
  child.heap_ = parent.heap_;  // same chunk layout over the shared pages
  child.next_mmap_ = parent.next_mmap_;
  return child;
}

void Kernel::release_address_space(Process& p) {
  // zap_pte_range frees anonymous pages back to the buddy system without
  // clearing them (unless the kernel defense is active, in which case
  // PageAllocator zeroes at free). Swap slots are released WITHOUT being
  // scrubbed — a stock kernel never wipes swap, so the disk keeps the
  // bytes (Gutmann'96's point about disk remnants).
  // Detach the page table BEFORE releasing frames: the kFrameFreed
  // publish inside unref must see post-free state (frame_mlocked and
  // owner queries would otherwise observe the dying mappings).
  const auto pages = std::move(p.pages_);
  p.pages_.clear();
  for (const auto& [addr, pte] : pages) {
    if (pte.swapped) {
      // A stock kernel never wipes the slot; the zero-on-free defense
      // scrubs it eagerly, same as it clears the RAM frames below.
      swap_->free_slot(pte.swap_slot, /*scrub=*/cfg_.zero_on_free);
    } else {
      alloc_.unref(pte.frame, FreeKind::kBulk);
    }
  }
  p.vmas_.clear();
  p.heap_ = HeapAllocator(kHeapBase, kHeapCapacity);
  p.next_mmap_ = kMmapBase;
}

void Kernel::exec(Process& p) {
  assert(p.alive_);
  KEYGUARD_KERNEL_COUNT("kernel.execs");
  release_address_space(p);
}

void Kernel::exit_process(Process& p) {
  if (!p.alive_) return;
  exec(p);  // same teardown
  p.alive_ = false;
}

Process* Kernel::find_process(Pid pid) {
  for (auto& p : procs_) {
    if (p->pid() == pid) return p.get();
  }
  return nullptr;
}

const Process* Kernel::find_process(Pid pid) const {
  for (const auto& p : procs_) {
    if (p->pid() == pid) return p.get();
  }
  return nullptr;
}

std::size_t Kernel::live_process_count() const {
  std::size_t n = 0;
  for (const auto& p : procs_) n += p->alive() ? 1 : 0;
  return n;
}

void Kernel::map_fresh_pages(Process& p, VirtAddr start, std::size_t bytes, bool mlocked) {
  for (VirtAddr a = start; a < start + bytes; a += kPageSize) {
    const auto frame = alloc_.alloc(FrameState::kUserAnon);
    assert(frame && "simulated physical memory exhausted");
    if (!frame) return;
    p.pages_[a] = Pte{*frame, /*cow=*/false, mlocked};
  }
}

VirtAddr Kernel::mmap_anon(Process& p, std::size_t bytes, bool mlocked, std::string label) {
  assert(p.alive_);
  const std::size_t len = page_round(bytes == 0 ? 1 : bytes);
  if (alloc_.free_count() * kPageSize < len) return 0;
  const VirtAddr addr = p.next_mmap_;
  p.next_mmap_ += len + kPageSize;  // guard gap
  map_fresh_pages(p, addr, len, mlocked);
  p.vmas_.push_back(Vma{addr, len, mlocked, std::move(label)});
  return addr;
}

void Kernel::munmap(Process& p, VirtAddr addr, std::size_t bytes) {
  const std::size_t len = page_round(bytes);
  for (VirtAddr a = page_floor(addr); a < addr + len; a += kPageSize) {
    const auto it = p.pages_.find(a);
    if (it == p.pages_.end()) continue;
    // Erase the PTE first: unref publishes kFrameFreed, and observers
    // querying frame_mlocked() must see the mapping already gone.
    const Pte pte = it->second;
    p.pages_.erase(it);
    if (pte.swapped) {
      swap_->free_slot(pte.swap_slot, /*scrub=*/cfg_.zero_on_free);
    } else {
      alloc_.unref(pte.frame, FreeKind::kHot);
    }
  }
  std::erase_if(p.vmas_, [&](const Vma& v) { return v.start == page_floor(addr); });
}

void Kernel::mlock_range(Process& p, VirtAddr addr, std::size_t bytes, bool locked) {
  const std::size_t len = page_round(bytes);
  auto& bus = obs::EventBus::global();
  for (VirtAddr a = page_floor(addr); a < addr + len; a += kPageSize) {
    const auto it = p.pages_.find(a);
    if (it != p.pages_.end()) {
      it->second.mlocked = locked;
      // mlock is classification state, not bytes: no taint hook fires, so
      // invariant watchers need the bus to re-evaluate the frame.
      if (!it->second.swapped && bus.enabled()) {
        bus.publish(obs::ObsEventKind::kMlockChanged, it->second.frame,
                    locked ? 1 : 0);
      }
    }
  }
  for (auto& vma : p.vmas_) {
    if (vma.start >= page_floor(addr) && vma.start < addr + len) vma.mlocked = locked;
  }
}

void Kernel::crypt_slot(std::uint32_t slot) {
  // XOR keystream derived from the boot secret and the slot number;
  // applying it twice round-trips, so one routine encrypts and decrypts.
  auto bytes = swap_->slot(slot);
  util::Rng stream(swap_secret_ ^ (0x9e3779b97f4a7c15ULL * (slot + 1)));
  std::size_t i = 0;
  while (i + 8 <= bytes.size()) {
    const std::uint64_t w = stream.next_u64();
    for (int b = 0; b < 8; ++b) bytes[i + b] ^= static_cast<std::byte>(w >> (8 * b));
    i += 8;
  }
}

void Kernel::swap_in(Process& p, VirtAddr page_addr, Pte& pte) {
  assert(pte.swapped && swap_.has_value());
  KEYGUARD_KERNEL_COUNT("kernel.swap_in_pages");
  ++swap_ins_;
  (void)page_addr;
  const auto frame = alloc_.alloc(FrameState::kUserAnon);
  assert(frame && "no memory for swap-in");
  if (cfg_.encrypt_swap) crypt_slot(pte.swap_slot);
  const auto src = swap_->slot(pte.swap_slot);
  std::memcpy(mem_.page(*frame).data(), src.data(), kPageSize);
  if (taint_) {
    taint_->on_swap_load(static_cast<std::size_t>(*frame) * kPageSize, pte.swap_slot);
  }
  if (auto& bus = obs::EventBus::global(); bus.enabled()) {
    bus.publish(obs::ObsEventKind::kSwapIn, pte.swap_slot, *frame);
  }
  // On a stock kernel the slot is released but NOT scrubbed: the plaintext
  // (or ciphertext, under encryption) stays on disk until the slot is
  // reused. The zero-on-free defense scrubs it here too.
  if (cfg_.encrypt_swap) crypt_slot(pte.swap_slot);  // restore ciphertext
  swap_->free_slot(pte.swap_slot, /*scrub=*/cfg_.zero_on_free);
  pte.swapped = false;
  pte.swap_slot = 0;
  pte.frame = *frame;
}

std::size_t Kernel::swap_out_pages(Process& p, std::size_t n) {
  if (!swap_ || !p.alive_) return 0;
  std::size_t done = 0;
  for (auto& [addr, pte] : p.pages_) {
    if (done >= n || swap_->full()) break;
    // mlock()ed pages are pinned — the defense's whole point — and shared
    // (COW or dedup-merged) frames are skipped to keep eviction semantics
    // simple: merged frames never reach the swap device.
    if (pte.swapped || pte.mlocked) continue;
    if (alloc_.refcount(pte.frame) > 1) {
      KEYGUARD_KERNEL_COUNT("kernel.swap_skip_shared");
      continue;
    }
    const auto slot = swap_->alloc_slot();
    if (!slot) break;
    KEYGUARD_KERNEL_COUNT("kernel.swap_out_pages");
    std::memcpy(swap_->slot(*slot).data(), mem_.page(pte.frame).data(), kPageSize);
    if (taint_) {
      taint_->on_swap_store(*slot, static_cast<std::size_t>(pte.frame) * kPageSize);
    }
    if (auto& bus = obs::EventBus::global(); bus.enabled()) {
      bus.publish(obs::ObsEventKind::kSwapOut, *slot, pte.frame);
    }
    if (cfg_.encrypt_swap) crypt_slot(*slot);
    // The vacated frame keeps its content on a stock kernel: swapping
    // DUPLICATES the page (RAM residue + disk copy), it does not move it.
    // Re-point the PTE before unref so the kFrameFreed publish sees the
    // frame already unmapped (no stale mlocked/owner state).
    const FrameNumber old = pte.frame;
    pte.swapped = true;
    pte.swap_slot = *slot;
    pte.frame = 0;
    alloc_.unref(old, FreeKind::kHot);
    ++done;
  }
  return done;
}

std::size_t Kernel::swap_out_global(std::size_t n) {
  std::size_t done = 0;
  for (auto& proc : procs_) {
    if (done >= n) break;
    if (!proc->alive()) continue;
    done += swap_out_pages(*proc, n - done);
  }
  return done;
}

FrameNumber Kernel::frame_for_write(Process& p, VirtAddr page_addr) {
  auto it = p.pages_.find(page_addr);
  assert(it != p.pages_.end() && "write to unmapped page");
  Pte& pte = it->second;
  if (pte.swapped) swap_in(p, page_addr, pte);
  if (pte.cow) {
    if (alloc_.refcount(pte.frame) > 1) {
      // Write fault on a shared page: copy it. This duplication is exactly
      // how key bytes multiply across forked servers.
      KEYGUARD_KERNEL_COUNT("kernel.cow_breaks");
      ++cow_breaks_;
      const auto fresh = alloc_.alloc(FrameState::kUserAnon);
      assert(fresh && "simulated physical memory exhausted");
      const auto src = mem_.page(pte.frame);
      auto dst = mem_.page(*fresh);
      std::memcpy(dst.data(), src.data(), kPageSize);
      if (taint_) {
        // The shadow duplicates with the page — a COW break on a
        // key-bearing page mints a second tainted frame.
        taint_->on_phys_copy(static_cast<std::size_t>(*fresh) * kPageSize,
                             static_cast<std::size_t>(pte.frame) * kPageSize, kPageSize);
      }
      if (cow_obs_ != nullptr) cow_obs_->on_cow_break(pte.frame, *fresh);
      if (auto& bus = obs::EventBus::global(); bus.enabled()) {
        bus.publish(obs::ObsEventKind::kCowBreak, pte.frame, *fresh);
      }
      // Re-point the PTE before unref: the frame stays shared here (refcount
      // > 1 drops by one), but the same ordering rule applies everywhere a
      // mapping lets go of a frame.
      const FrameNumber old = pte.frame;
      pte.frame = *fresh;
      alloc_.unref(old, FreeKind::kHot);
    }
    pte.cow = false;
  }
  return pte.frame;
}

void Kernel::mem_write(Process& p, VirtAddr addr, std::span<const std::byte> data,
                       TaintTag taint) {
  assert(p.alive_);
  std::size_t done = 0;
  while (done < data.size()) {
    const VirtAddr cur = addr + done;
    const VirtAddr page_addr = page_floor(cur);
    const std::size_t off = cur - page_addr;
    const std::size_t n = std::min(kPageSize - off, data.size() - done);
    const FrameNumber frame = frame_for_write(p, page_addr);
    std::memcpy(mem_.page(frame).data() + off, data.data() + done, n);
    if (taint_) {
      taint_->on_phys_store(static_cast<std::size_t>(frame) * kPageSize + off, n, taint);
    }
    done += n;
  }
}

Kernel::WriteTiming Kernel::mem_write_timed(Process& p, VirtAddr addr,
                                            std::span<const std::byte> data,
                                            TaintTag taint) {
  const std::uint64_t cow0 = cow_breaks_;
  const std::uint64_t swap0 = swap_ins_;
  mem_write(p, addr, data, taint);
  WriteTiming t;
  const VirtAddr first = page_floor(addr);
  const VirtAddr last = page_floor(addr + (data.empty() ? 0 : data.size() - 1));
  t.pages_touched = static_cast<std::size_t>((last - first) / kPageSize + 1);
  t.cow_breaks = static_cast<std::size_t>(cow_breaks_ - cow0);
  t.swap_ins = static_cast<std::size_t>(swap_ins_ - swap0);
  t.cost_ns = t.pages_touched * kWriteCostMinorNs +
              t.cow_breaks * kWriteCostCowBreakNs +
              t.swap_ins * kWriteCostSwapInNs;
  auto& reg = obs::MetricsRegistry::global();
  if (reg.enabled()) {
    reg.counter("kernel.timed_writes").add(1);
    if (t.cow_breaks > 0) reg.counter("kernel.write_faults").add(t.cow_breaks);
    reg.histogram("kernel.timed_write_ns").record(static_cast<double>(t.cost_ns));
  }
  return t;
}

void Kernel::mem_read(Process& p, VirtAddr addr, std::span<std::byte> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const VirtAddr cur = addr + done;
    const VirtAddr page_addr = page_floor(cur);
    const std::size_t off = cur - page_addr;
    const std::size_t n = std::min(kPageSize - off, out.size() - done);
    const auto it = p.pages_.find(page_addr);
    assert(it != p.pages_.end() && "read from unmapped page");
    if (it->second.swapped) swap_in(p, page_addr, it->second);
    std::memcpy(out.data() + done, mem_.page(it->second.frame).data() + off, n);
    done += n;
  }
}

void Kernel::mem_zero(Process& p, VirtAddr addr, std::size_t len) {
  std::vector<std::byte> zeros(std::min<std::size_t>(len, kPageSize), std::byte{0});
  std::size_t done = 0;
  while (done < len) {
    const std::size_t n = std::min(zeros.size(), len - done);
    mem_write(p, addr + done, std::span<const std::byte>(zeros).first(n));
    done += n;
  }
}

void Kernel::ensure_heap_pages(Process& p, std::size_t grown_bytes) {
  if (grown_bytes == 0) return;
  const VirtAddr old_end =
      kHeapBase + page_round(p.heap_.high_water() - kHeapBase) - grown_bytes;
  map_fresh_pages(p, old_end, grown_bytes, /*mlocked=*/false);
}

VirtAddr Kernel::heap_alloc(Process& p, std::size_t size, std::string label) {
  assert(p.alive_);
  std::size_t grown = 0;
  const auto addr = p.heap_.alloc(size, grown, std::move(label));
  if (!addr) return 0;
  ensure_heap_pages(p, grown);
  return *addr;
}

void Kernel::heap_free(Process& p, VirtAddr addr) { p.heap_.free(addr); }

void Kernel::heap_clear_free(Process& p, VirtAddr addr) {
  const std::size_t size = p.heap_.chunk_size(addr);
  mem_zero(p, addr, size);
  p.heap_.free(addr);
}

std::size_t Kernel::heap_chunk_size(const Process& p, VirtAddr addr) const {
  return p.heap_.chunk_size(addr);
}

VirtAddr Kernel::heap_realloc(Process& p, VirtAddr addr, std::size_t new_size) {
  assert(p.alive_);
  const std::size_t old_size = p.heap_.chunk_size(addr);
  if (new_size <= old_size) return addr;  // shrink/fit in place
  const VirtAddr fresh = heap_alloc(p, new_size);
  if (fresh == 0) return 0;
  std::vector<std::byte> data(old_size);
  mem_read(p, addr, data);
  mem_write(p, fresh, data);
  // The copy went through host memory, so re-link the shadow: whatever
  // taint the old chunk carried now covers the new one too.
  propagate_taint(p, fresh, addr, old_size);
  // free() without clearing: the old bytes stay behind.
  p.heap_.free(addr);
  return fresh;
}

void Kernel::attach_taint(TaintTracker* tracker) noexcept {
  taint_ = tracker;
  mem_.set_taint_tracker(tracker);
  if (swap_) swap_->set_taint_tracker(tracker);
}

void Kernel::propagate_taint(const Process& p, VirtAddr dst, VirtAddr src,
                             std::size_t len) {
  if (!taint_) return;
  std::size_t done = 0;
  while (done < len) {
    const VirtAddr s = src + done;
    const VirtAddr d = dst + done;
    // Stay inside one page on BOTH sides per step.
    const std::size_t n = std::min({len - done, kPageSize - (s % kPageSize),
                                    kPageSize - (d % kPageSize)});
    const auto sf = translate(p, s);
    const auto df = translate(p, d);
    assert(sf && df && "propagate_taint over non-resident range");
    taint_->on_phys_copy(static_cast<std::size_t>(*df) * kPageSize + d % kPageSize,
                         static_cast<std::size_t>(*sf) * kPageSize + s % kPageSize, n);
    done += n;
  }
}

std::optional<std::vector<std::byte>> Kernel::read_file(Process& p, const std::string& path,
                                                        int flags) {
  assert(p.alive_);
  (void)p;
  const auto* content = vfs_.file(path);
  if (content == nullptr) return std::nullopt;
  // Read goes through the page cache, populating it as a side effect. The
  // cached frames inherit the file's taint tag (the PEM host key file is
  // the canonical tainted file).
  cache_.populate(path, *content, vfs_.taint_tag(path));
  std::vector<std::byte> out = cache_.read_cached(path);
  if ((flags & kOpenNoCache) != 0 && cfg_.o_nocache_supported) {
    // The paper's patch: remove_from_page_cache + clear_highpage + free.
    cache_.evict(path, /*clear_pages=*/true);
  }
  // Reclaim: shrink back under the budget, oldest first. The frames go
  // back uncleared (PageAllocator::free applies the zero-on-free policy
  // if the kernel defense is active).
  if (cfg_.page_cache_limit_pages > 0) {
    while (cache_.cached_pages() > cfg_.page_cache_limit_pages) {
      if (!cache_.evict_oldest(/*clear_pages=*/false)) break;
    }
  }
  return out;
}

std::vector<Pid> Kernel::frame_owners(FrameNumber frame) const {
  std::vector<Pid> owners;
  for (const auto& p : procs_) {
    if (!p->alive()) continue;
    for (const auto& [addr, pte] : p->page_table()) {
      if (!pte.swapped && pte.frame == frame) {
        owners.push_back(p->pid());
        break;
      }
    }
  }
  return owners;
}

bool Kernel::merge_page(Process& p, VirtAddr vaddr, FrameNumber canonical) {
  if (!p.alive_) return false;
  const auto it = p.pages_.find(vaddr);
  if (it == p.pages_.end()) return false;
  Pte& pte = it->second;
  if (pte.swapped || pte.frame == canonical) return false;
  assert(std::memcmp(mem_.page(pte.frame).data(), mem_.page(canonical).data(),
                     kPageSize) == 0 &&
         "merge_page over non-identical pages");
  KEYGUARD_KERNEL_COUNT("kernel.dedup.pages_merged");
  alloc_.ref(canonical);
  // The duplicate frame is released WITHOUT its bytes moving: on a stock
  // kernel (zero_on_free off) dedup itself seeds residue in unallocated
  // memory. Its shadow taint stays with the bytes, like any free. The PTE
  // is re-pointed before unref so the kFrameFreed publish sees the
  // duplicate already unmapped.
  const FrameNumber dup = pte.frame;
  pte.frame = canonical;
  pte.cow = true;
  alloc_.unref(dup, FreeKind::kHot);
  return true;
}

bool Kernel::set_page_cow(Process& p, VirtAddr vaddr) {
  const auto it = p.pages_.find(vaddr);
  if (it == p.pages_.end() || it->second.swapped) return false;
  it->second.cow = true;
  return true;
}

std::vector<Kernel::FrameMapping> Kernel::frame_mappings(FrameNumber frame) const {
  std::vector<FrameMapping> out;
  for (const auto& p : procs_) {
    if (!p->alive()) continue;
    for (const auto& [addr, pte] : p->page_table()) {
      if (!pte.swapped && pte.frame == frame) out.push_back({p->pid(), addr});
    }
  }
  return out;
}

bool Kernel::frame_mlocked(FrameNumber frame) const {
  for (const auto& p : procs_) {
    if (!p->alive()) continue;
    for (const auto& [addr, pte] : p->page_table()) {
      if (!pte.swapped && pte.frame == frame && pte.mlocked) return true;
    }
  }
  return false;
}

std::optional<FrameNumber> Kernel::translate(const Process& p, VirtAddr addr) const {
  const auto it = p.page_table().find(page_floor(addr));
  if (it == p.page_table().end() || it->second.swapped) return std::nullopt;
  return it->second.frame;
}

std::optional<VirtAddr> Kernel::virt_of_frame(const Process& p, FrameNumber frame) const {
  for (const auto& [addr, pte] : p.page_table()) {
    if (!pte.swapped && pte.frame == frame) return addr;
  }
  return std::nullopt;
}

std::optional<std::string> Kernel::describe_address(const Process& p,
                                                    VirtAddr addr) const {
  if (!p.page_table().contains(page_floor(addr))) return std::nullopt;
  // Heap chunks carry the finest-grained labels.
  if (addr >= kHeapBase && addr < kHeapBase + kHeapCapacity) {
    if (auto desc = p.heap().describe(addr)) return desc;
    return "heap (unused)";
  }
  // Otherwise a labelled mapping.
  for (const auto& vma : p.vmas()) {
    if (addr >= vma.start && addr < vma.start + vma.length) {
      std::string out = vma.label + " mapping";
      if (vma.mlocked) out += " [mlocked]";
      return out;
    }
  }
  return "anon";
}

}  // namespace keyguard::sim
