// Per-process heap allocator (the malloc of the simulated libc).
//
// A first-fit, address-ordered free-list allocator with coalescing over a
// brk-style heap region. Two behaviours matter for the reproduction:
//
//  * free() does NOT touch the chunk's bytes. Freed-but-unscrubbed key
//    material therefore stays visible inside *allocated* pages — the
//    paper's (less obvious) observation that allocated memory is full of
//    key copies too.
//  * freed chunks are reused first-fit, so residues are gradually
//    overwritten by later allocations, exactly the churn the paper's
//    timeline plots show.
//
// clear_free() is BN_clear_free: zero first (via the owning kernel, so the
// bytes in simulated physical memory are actually cleared), then free.
// The defenses enable it for every key-bearing temporary.
//
// Chunk metadata is kept out-of-band (host-side map) for simplicity;
// in-band headers would add noise bytes but change nothing the scanner or
// the attacks measure.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace keyguard::sim {

/// Virtual address inside a simulated process.
using VirtAddr = std::uint64_t;

class HeapAllocator {
 public:
  /// Manages [base, base + capacity). Pages are mapped on demand by the
  /// kernel as the high-water mark grows.
  HeapAllocator(VirtAddr base, std::size_t capacity);

  /// First-fit allocation (16-byte granularity). Returns nullopt when the
  /// heap region is exhausted. `grown` reports how many bytes past the old
  /// high-water mark the heap now extends (the kernel maps those pages).
  /// `label` names the allocation for provenance reporting ("mont:p", ...)
  /// and survives free() — freed chunks remember what they last held,
  /// which is exactly what the paper's §3 analysis needed to explain why
  /// allocated memory is full of key copies.
  std::optional<VirtAddr> alloc(std::size_t size, std::size_t& grown_bytes,
                                std::string label = {});

  /// Description of the chunk covering `addr`: "label (live)" or
  /// "label (freed)"; nullopt when no chunk covers the address.
  std::optional<std::string> describe(VirtAddr addr) const;

  /// Marks the chunk free and coalesces neighbours. Contents untouched.
  void free(VirtAddr addr);

  /// Size originally requested for the chunk at `addr` (rounded up).
  std::size_t chunk_size(VirtAddr addr) const;

  /// True if `addr` is the start of a live chunk.
  bool is_live_chunk(VirtAddr addr) const;

  VirtAddr base() const noexcept { return base_; }
  /// One past the highest byte ever handed out (page-map watermark).
  VirtAddr high_water() const noexcept { return high_water_; }

  std::size_t live_bytes() const noexcept { return live_bytes_; }
  std::size_t live_chunks() const noexcept { return live_chunks_; }

 private:
  struct Chunk {
    std::size_t size;
    bool free;
    std::string label;
  };

  VirtAddr base_;
  std::size_t capacity_;
  VirtAddr high_water_;
  std::size_t live_bytes_ = 0;
  std::size_t live_chunks_ = 0;
  // Address-ordered chunk map covering [base_, end of last chunk).
  std::map<VirtAddr, Chunk> chunks_;
};

}  // namespace keyguard::sim
