#include "sim/swap.hpp"

#include <cassert>
#include <cstring>

namespace keyguard::sim {

SwapDevice::SwapDevice(std::size_t pages)
    : bytes_(pages * kPageSize, std::byte{0}), slots_used_(pages, false) {}

std::optional<std::uint32_t> SwapDevice::alloc_slot() {
  for (std::uint32_t i = 0; i < slots_used_.size(); ++i) {
    if (!slots_used_[i]) {
      slots_used_[i] = true;
      ++used_count_;
      return i;
    }
  }
  return std::nullopt;
}

void SwapDevice::free_slot(std::uint32_t slot, bool scrub) {
  assert(slot < slots_used_.size() && slots_used_[slot]);
  slots_used_[slot] = false;
  --used_count_;
  if (scrub) {
    std::memset(bytes_.data() + static_cast<std::size_t>(slot) * kPageSize, 0, kPageSize);
    if (taint_) taint_->on_swap_clear(slot);
  }
}

std::span<std::byte> SwapDevice::slot(std::uint32_t index) {
  assert(index < slots_used_.size());
  return {bytes_.data() + static_cast<std::size_t>(index) * kPageSize, kPageSize};
}

std::span<const std::byte> SwapDevice::slot(std::uint32_t index) const {
  assert(index < slots_used_.size());
  return {bytes_.data() + static_cast<std::size_t>(index) * kPageSize, kPageSize};
}

}  // namespace keyguard::sim
