#include "sim/dedup.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace keyguard::sim {
namespace {

/// FNV-1a 64 over one page — the candidate-table hash. Collisions are
/// harmless (scan() byte-verifies before merging), only wasteful.
std::uint64_t page_hash(std::span<const std::byte> page) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::byte b : page) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool page_zero(std::span<const std::byte> page) {
  return std::all_of(page.begin(), page.end(),
                     [](std::byte b) { return b == std::byte{0}; });
}

/// Same shape as kernel.cpp's KEYGUARD_KERNEL_COUNT: disabled registry is
/// one relaxed load, enabled is one relaxed add via a cached reference.
#define KEYGUARD_DEDUP_COUNT(name, n)                                  \
  do {                                                                 \
    auto& kg_reg = ::keyguard::obs::MetricsRegistry::global();         \
    if (kg_reg.enabled()) {                                            \
      static ::keyguard::obs::Counter& kg_c = kg_reg.counter(name);    \
      kg_c.add(n);                                                     \
    }                                                                  \
  } while (false)

}  // namespace

DedupEngine::DedupEngine(Kernel& kernel, DedupConfig cfg)
    : kernel_(kernel), cfg_(cfg), merged_(kernel.allocator().page_count(), 0) {
  kernel_.set_cow_observer(this);
  kernel_.allocator().set_free_observer(this);
}

DedupEngine::~DedupEngine() {
  kernel_.set_cow_observer(nullptr);
  kernel_.allocator().set_free_observer(nullptr);
}

void DedupEngine::set_secret_predicate(std::function<bool(FrameNumber)> pred) {
  secret_ = std::move(pred);
}

std::size_t DedupEngine::scan() {
  ++stats_.scans;
  KEYGUARD_DEDUP_COUNT("kernel.dedup.scans", 1);
  obs::Tracer::Span span(obs::Tracer::global(), "dedup.scan");

  // Candidate table: every resident anonymous page of every live process,
  // in (process-table, vaddr) order so merge order — and therefore free-
  // list state afterwards — is deterministic.
  struct Cand {
    Process* proc;
    VirtAddr vaddr;
    FrameNumber frame;
    std::uint64_t hash;
  };
  std::vector<Cand> cands;
  for (const auto& up : kernel_.processes()) {
    if (!up->alive()) continue;
    for (const auto& [vaddr, pte] : up->page_table()) {
      if (pte.swapped) continue;
      if (kernel_.allocator().state(pte.frame) != FrameState::kUserAnon) continue;
      if (!cfg_.merge_mlocked && pte.mlocked) continue;
      const auto page = kernel_.memory().page(pte.frame);
      if (!cfg_.merge_zero_pages && page_zero(page)) continue;
      cands.push_back({up.get(), vaddr, pte.frame, page_hash(page)});
    }
  }
  stats_.pages_considered += cands.size();

  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  buckets.reserve(cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    buckets[cands[i].hash].push_back(i);
  }

  std::size_t merged_now = 0;
  std::size_t vetoed_now = 0;
  // Drive bucket processing off the candidate order, not the unordered
  // map's iteration order, so runs are bit-reproducible.
  for (std::size_t i = 0; i < cands.size(); ++i) {
    auto bucket_it = buckets.find(cands[i].hash);
    if (bucket_it == buckets.end()) continue;
    const std::vector<std::size_t> bucket = std::move(bucket_it->second);
    buckets.erase(bucket_it);
    if (bucket.size() < 2) continue;

    // Pass 1: split the hash bucket into byte-identical content groups.
    // The defense vetoes secret pages BEFORE grouping — a secret frame
    // must participate in no merge, in either role.
    std::vector<std::vector<std::size_t>> groups;
    for (const std::size_t ci : bucket) {
      const Cand& c = cands[ci];
      if (cfg_.no_merge_secret && secret_ && secret_(c.frame)) {
        ++stats_.vetoed_secret;
        ++vetoed_now;
        continue;
      }
      bool placed = false;
      for (auto& g : groups) {
        const FrameNumber rep = cands[g.front()].frame;
        if (rep == c.frame ||
            std::memcmp(kernel_.memory().page(rep).data(),
                        kernel_.memory().page(c.frame).data(), kPageSize) == 0) {
          g.push_back(ci);
          placed = true;
          break;
        }
      }
      if (!placed) {
        if (!groups.empty()) ++stats_.hash_collisions;
        groups.push_back({ci});
      }
    }

    // Pass 2: merge each group onto a canonical frame. Prefer a
    // secret-tainted member as the survivor (see header: this keeps the
    // shadow taint map exact — the clean-tagged duplicate is the one
    // freed); otherwise the first-seen member wins.
    for (const auto& g : groups) {
      if (g.size() < 2) continue;
      std::size_t canon = g.front();
      if (secret_ && !cfg_.no_merge_secret) {
        for (const std::size_t ci : g) {
          if (secret_(cands[ci].frame)) {
            canon = ci;
            break;
          }
        }
      }
      const FrameNumber canon_frame = cands[canon].frame;
      bool any = false;
      for (const std::size_t ci : g) {
        const Cand& c = cands[ci];
        if (c.frame == canon_frame) continue;
        if (kernel_.merge_page(*c.proc, c.vaddr, canon_frame)) {
          any = true;
          ++stats_.pages_merged;
          stats_.bytes_saved += kPageSize;
          ++merged_now;
          // A merge raises the canonical frame's share count without any
          // byte moving — the signal the secret-frame-merged alert rule
          // (and the PR-8 probe's victim) hinges on.
          if (auto& bus = obs::EventBus::global(); bus.enabled()) {
            bus.publish(obs::ObsEventKind::kPageMerged, canon_frame,
                        kernel_.allocator().refcount(canon_frame));
          }
        }
      }
      if (any) {
        // Every pre-existing mapping of the canonical frame now shares it
        // with strangers: all of them must fault on write.
        for (const std::size_t ci : g) {
          if (cands[ci].frame == canon_frame) {
            kernel_.set_page_cow(*cands[ci].proc, cands[ci].vaddr);
          }
        }
        merged_[canon_frame] = 1;
      }
    }
  }

  KEYGUARD_DEDUP_COUNT("kernel.dedup.pages_considered", cands.size());
  if (vetoed_now > 0) KEYGUARD_DEDUP_COUNT("kernel.dedup.vetoed_secret", vetoed_now);
  publish_metrics();
  if (span.live()) {
    span.add(obs::TraceAttr::n("candidates", static_cast<double>(cands.size())));
    span.add(obs::TraceAttr::n("merged", static_cast<double>(merged_now)));
    span.add(obs::TraceAttr::n("vetoed", static_cast<double>(vetoed_now)));
  }
  return merged_now;
}

std::size_t DedupEngine::shared_frame_count() const {
  std::size_t n = 0;
  for (FrameNumber f = 0; f < merged_.size(); ++f) {
    n += is_merged_frame(f) ? 1 : 0;
  }
  return n;
}

std::size_t DedupEngine::saved_pages() const {
  // Mappings beyond the first of each live merged frame would each need a
  // private frame without dedup. Fork-shared refs inflate this the same
  // way they would have shared the unmerged originals, so the figure is a
  // slight over-count under heavy post-merge forking — documented, and
  // the benches read it right after a scan where it is exact.
  std::size_t n = 0;
  for (FrameNumber f = 0; f < merged_.size(); ++f) {
    if (merged_[f] == 0) continue;
    const auto refs = kernel_.allocator().refcount(f);
    if (refs > 1) n += refs - 1;
  }
  return n;
}

bool DedupEngine::is_merged_frame(FrameNumber frame) const {
  return frame < merged_.size() && merged_[frame] != 0 &&
         kernel_.allocator().refcount(frame) > 1;
}

void DedupEngine::on_cow_break(FrameNumber shared, FrameNumber fresh) {
  (void)fresh;
  if (shared >= merged_.size() || merged_[shared] == 0) return;
  // A write fault split a merged page back out — the unmerge the attack's
  // stopwatch observes. Fired pre-unref, so refcount 2 means this break
  // leaves a sole mapper: the frame stops being "merged" then.
  ++stats_.unmerges;
  KEYGUARD_DEDUP_COUNT("kernel.dedup.unmerges", 1);
  if (kernel_.allocator().refcount(shared) <= 2) merged_[shared] = 0;
}

void DedupEngine::on_frame_freed(FrameNumber frame) {
  if (frame < merged_.size()) merged_[frame] = 0;
}

void DedupEngine::publish_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  if (!reg.enabled()) return;
  reg.gauge("kernel.dedup.shared_frames")
      .set(static_cast<double>(shared_frame_count()));
  reg.gauge("kernel.dedup.saved_pages").set(static_cast<double>(saved_pages()));
}

}  // namespace keyguard::sim
