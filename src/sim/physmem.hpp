// Simulated physical memory.
//
// The reproduction's stand-in for the paper's 256 MB testbed RAM: a flat
// byte array divided into 4 KB frames. All simulated processes, the page
// cache, and kernel buffers live in here, so a linear scan of this array is
// exactly what the paper's scanmemory LKM performed, and the two disclosure
// attacks read byte ranges straight out of it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/taint.hpp"

namespace keyguard::sim {

inline constexpr std::size_t kPageSize = 4096;

/// Physical frame number (frame * kPageSize = physical byte address).
using FrameNumber = std::uint32_t;

/// Who currently owns a frame. The scanner classifies matches with this:
/// Free frames are the paper's "unallocated memory", everything else is
/// "allocated memory" (user heap, page cache, or kernel buffers).
enum class FrameState : std::uint8_t {
  kFree,       // on the allocator's free lists
  kUserAnon,   // mapped into one or more process address spaces
  kPageCache,  // caches file contents (the PEM key file lives here)
  kKernel,     // kernel buffer (e.g. the ext2 directory blocks the leak uses)
};

/// Human-readable state name for reports.
const char* frame_state_name(FrameState s) noexcept;

class PhysicalMemory {
 public:
  /// Rounds `bytes` down to whole pages; at least one page.
  explicit PhysicalMemory(std::size_t bytes);

  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  std::size_t size_bytes() const noexcept { return bytes_.size(); }
  std::size_t page_count() const noexcept { return bytes_.size() / kPageSize; }

  /// Mutable view of one frame.
  std::span<std::byte> page(FrameNumber frame) noexcept;
  std::span<const std::byte> page(FrameNumber frame) const noexcept;

  /// The whole physical address space (what the scanner walks).
  std::span<const std::byte> all() const noexcept { return bytes_; }

  /// Byte range [offset, offset+len); clamped to the end of memory.
  std::span<const std::byte> range(std::size_t offset, std::size_t len) const noexcept;

  /// Zero-fills one frame (clear_highpage in the paper's patches) and
  /// clears its shadow taint when a tracker is attached.
  void clear_page(FrameNumber frame) noexcept;

  /// memset over part of a frame through the taint hook (kernel code that
  /// initialises buffers in place, e.g. ext2_make_empty's "."/".." header,
  /// goes through here so the overwritten shadow bytes are cleared too).
  void fill(FrameNumber frame, std::size_t offset, std::size_t len, std::byte value);

  /// Shadow-taint observer for every clear/fill on this memory. Null (the
  /// default) disables tracking; the Kernel fans the tracker out to the
  /// swap device as well via Kernel::attach_taint.
  void set_taint_tracker(TaintTracker* t) noexcept { taint_ = t; }
  TaintTracker* taint() const noexcept { return taint_; }

 private:
  std::vector<std::byte> bytes_;
  TaintTracker* taint_ = nullptr;
};

}  // namespace keyguard::sim
