#include "sim/physmem.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace keyguard::sim {

const char* frame_state_name(FrameState s) noexcept {
  switch (s) {
    case FrameState::kFree: return "free";
    case FrameState::kUserAnon: return "user";
    case FrameState::kPageCache: return "pagecache";
    case FrameState::kKernel: return "kernel";
  }
  return "?";
}

PhysicalMemory::PhysicalMemory(std::size_t bytes)
    : bytes_(std::max<std::size_t>(bytes / kPageSize, 1) * kPageSize, std::byte{0}) {}

std::span<std::byte> PhysicalMemory::page(FrameNumber frame) noexcept {
  assert(frame < page_count());
  return {bytes_.data() + static_cast<std::size_t>(frame) * kPageSize, kPageSize};
}

std::span<const std::byte> PhysicalMemory::page(FrameNumber frame) const noexcept {
  assert(frame < page_count());
  return {bytes_.data() + static_cast<std::size_t>(frame) * kPageSize, kPageSize};
}

std::span<const std::byte> PhysicalMemory::range(std::size_t offset,
                                                 std::size_t len) const noexcept {
  // Clamp via (size - offset), never (offset + len): the sum would wrap for
  // len near SIZE_MAX and return a bogus span instead of the tail.
  if (offset >= bytes_.size()) return {};
  return {bytes_.data() + offset, std::min(len, bytes_.size() - offset)};
}

void PhysicalMemory::clear_page(FrameNumber frame) noexcept {
  auto p = page(frame);
  std::memset(p.data(), 0, p.size());
  if (taint_) taint_->on_phys_clear(static_cast<std::size_t>(frame) * kPageSize, kPageSize);
}

void PhysicalMemory::fill(FrameNumber frame, std::size_t offset, std::size_t len,
                          std::byte value) {
  auto p = page(frame);
  assert(offset <= p.size() && len <= p.size() - offset);
  std::memset(p.data() + offset, static_cast<int>(value), len);
  if (taint_) {
    taint_->on_phys_store(static_cast<std::size_t>(frame) * kPageSize + offset, len,
                          TaintTag::kClean);
  }
}

}  // namespace keyguard::sim
