// In-memory filesystem and page cache.
//
// The Vfs stores file contents host-side (the "disk"). The PageCache is
// the interesting part: reading a file pulls its pages into simulated
// physical memory frames (FrameState::kPageCache) where they stay until
// evicted — which is why the paper finds the PEM-encoded key file in
// memory from the moment the filesystem touches it, and why the integrated
// defense adds O_NOCACHE to evict (and clear) those frames right after the
// key is read.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/page_alloc.hpp"
#include "sim/physmem.hpp"

namespace keyguard::sim {

/// Open flags (subset; values match the spirit, not the ABI).
inline constexpr int kOpenReadOnly = 0;
/// The paper's new flag: drop (and clear) the page-cache entry immediately
/// after the read completes.
inline constexpr int kOpenNoCache = 0x0200'0000;  // O_NOCACHE 02000000 (octal in the patch)

class Vfs {
 public:
  /// Stores a file. `taint` labels the contents as key material (e.g. the
  /// PEM host key is written with TaintTag::kPem): every page-cache frame
  /// the file is read into inherits the tag in the shadow map.
  void write_file(const std::string& path, std::vector<std::byte> content,
                  TaintTag taint = TaintTag::kClean);
  const std::vector<std::byte>* file(const std::string& path) const;
  bool exists(const std::string& path) const;
  /// Taint tag the file was written with (kClean for unknown paths).
  TaintTag taint_tag(const std::string& path) const;
  std::vector<std::string> list() const;

 private:
  std::map<std::string, std::vector<std::byte>> files_;
  std::map<std::string, TaintTag> taints_;
};

class PageCache {
 public:
  explicit PageCache(PhysicalMemory& mem, PageAllocator& alloc)
      : mem_(mem), alloc_(alloc) {}

  /// Ensures `content` is resident in page-cache frames for `path`.
  /// Idempotent. Returns false when physical memory is exhausted. `taint`
  /// tags the cached bytes in the shadow map (the tail of the last page
  /// keeps its PREVIOUS shadow, exactly like it keeps its previous bytes).
  bool populate(const std::string& path, std::span<const std::byte> content,
                TaintTag taint = TaintTag::kClean);

  /// Reads the cached bytes back out (tests; the kernel's read path).
  std::vector<std::byte> read_cached(const std::string& path) const;

  bool cached(const std::string& path) const { return entries_.contains(path); }

  /// Removes the entry. `clear_pages` zeroes the frames before freeing —
  /// the paper's O_NOCACHE patch does remove_from_page_cache +
  /// clear_highpage + free, so the defense passes true.
  void evict(const std::string& path, bool clear_pages);

  /// Evicts everything (memory pressure / unmount), without clearing.
  void drop_all();

  /// Evicts the least-recently-populated entry (reclaim under memory
  /// pressure). Stock kernels do NOT clear evicted pages — the freed
  /// frames keep the file contents, which is how cached secrets reach
  /// unallocated memory even without any process dying. Returns the
  /// evicted path, or nullopt when the cache is empty.
  std::optional<std::string> evict_oldest(bool clear_pages);

  /// Frames backing a path (empty when not cached).
  std::vector<FrameNumber> frames(const std::string& path) const;

  std::size_t cached_files() const noexcept { return entries_.size(); }
  std::size_t cached_pages() const noexcept { return cached_pages_; }

 private:
  PhysicalMemory& mem_;
  PageAllocator& alloc_;
  std::map<std::string, std::vector<FrameNumber>> entries_;
  std::map<std::string, std::size_t> sizes_;
  std::vector<std::string> order_;  // population order (LRU approximation)
  std::size_t cached_pages_ = 0;
};

}  // namespace keyguard::sim
