#include "sim/page_alloc.hpp"

#include <cassert>

#include "obs/event_bus.hpp"

namespace keyguard::sim {

PageAllocator::PageAllocator(PhysicalMemory& mem, PageAllocPolicy policy, util::Rng rng)
    : mem_(mem),
      policy_(policy),
      rng_(rng),
      states_(mem.page_count(), FrameState::kFree),
      refcounts_(mem.page_count(), 0) {
  // Fresh boot: every frame free, sitting in the buddy pool.
  pool_.reserve(mem.page_count());
  for (FrameNumber f = 0; f < mem.page_count(); ++f) pool_.push_back(f);
}

std::optional<FrameNumber> PageAllocator::alloc(FrameState state) {
  assert(state != FrameState::kFree);
  FrameNumber frame;
  if (!hot_.empty()) {
    frame = hot_.back();
    hot_.pop_back();
  } else if (!pool_.empty()) {
    const std::size_t idx = rng_.next_below(pool_.size());
    frame = pool_[idx];
    pool_[idx] = pool_.back();
    pool_.pop_back();
  } else {
    return std::nullopt;
  }
  assert(states_[frame] == FrameState::kFree);
  states_[frame] = state;
  refcounts_[frame] = 1;
  if (state == FrameState::kUserAnon) {
    // clear_user_highpage: userspace never sees stale data...
    mem_.clear_page(frame);
    ++stats_.pages_zeroed_on_user_alloc;
  }
  // ...but kernel and page-cache allocations do (the ext2 leak's channel).
  ++stats_.allocs;
  if (auto& bus = obs::EventBus::global(); bus.enabled()) {
    bus.publish(obs::ObsEventKind::kFrameAllocated, frame,
                static_cast<std::uint64_t>(state));
  }
  return frame;
}

void PageAllocator::free(FrameNumber frame, FreeKind kind) {
  assert(frame < states_.size());
  assert(states_[frame] != FrameState::kFree && "double free");
  if (free_obs_ != nullptr) free_obs_->on_frame_freed(frame);
  states_[frame] = FrameState::kFree;
  refcounts_[frame] = 0;
  if (policy_.zero_on_free) {
    mem_.clear_page(frame);
    ++stats_.pages_zeroed_on_free;
  }
  if (kind == FreeKind::kHot || rng_.next_double() < policy_.bulk_reuse_fraction) {
    hot_.push_back(frame);
  } else {
    pool_.push_back(frame);
  }
  ++stats_.frees;
  // Published AFTER the zero-on-free clear so a subscriber inspecting the
  // frame's shadow sees exactly what a disclosure would: residue on a
  // stock kernel, nothing under the paper's patch (the residue-on-free
  // alert rule depends on this ordering).
  if (auto& bus = obs::EventBus::global(); bus.enabled()) {
    bus.publish(obs::ObsEventKind::kFrameFreed, frame);
  }
}

void PageAllocator::ref(FrameNumber frame) {
  assert(states_[frame] != FrameState::kFree);
  ++refcounts_[frame];
}

std::uint32_t PageAllocator::unref(FrameNumber frame, FreeKind kind) {
  assert(refcounts_[frame] > 0);
  if (--refcounts_[frame] == 0) {
    free(frame, kind);
    return 0;
  }
  return refcounts_[frame];
}

std::uint32_t PageAllocator::refcount(FrameNumber frame) const {
  return refcounts_[frame];
}

FrameState PageAllocator::state(FrameNumber frame) const {
  assert(frame < states_.size());
  return states_[frame];
}

std::vector<FrameState> PageAllocator::states_snapshot() const {
  return states_;
}

}  // namespace keyguard::sim
