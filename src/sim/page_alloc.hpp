// Physical page allocator with the free-list dynamics that make memory
// disclosure attacks work — or fail.
//
// Two properties of real allocators are load-bearing for the paper:
//
//  1. *Pages are not cleared when freed.* Linux zeroes anonymous pages when
//     they are handed TO userspace (clear_user_highpage at fault time), not
//     when they come back. Kernel-internal allocations (ext2 buffer pages)
//     are never zeroed at all — which is exactly what the ext2 directory
//     leak disclosed. The paper's kernel-level defense moves the clearing
//     to free time (free_hot_cold_page -> clear_highpage); our
//     `zero_on_free` policy bit is that patch.
//
//  2. *Free-list order decides what a disclosure sees.* Recently freed
//     pages sit on hot (per-CPU) lists and are reused quickly; bulk frees
//     from process exit coalesce back into the buddy system where they can
//     linger for a long time. We model this with a hot LIFO stack plus a
//     "scatter pool" drawn from uniformly at random: exit-time bulk frees
//     go to the pool (they escape immediate reuse and accumulate — the
//     paper's growing population of key copies in unallocated memory),
//     everything else goes hot.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/physmem.hpp"
#include "util/rng.hpp"

namespace keyguard::sim {

struct PageAllocPolicy {
  /// The paper's kernel-level defense: clear_highpage on every free.
  bool zero_on_free = false;
  /// Fraction of bulk (exit-time) frees that land on the hot list and are
  /// promptly reused/overwritten; the remainder scatter into the buddy
  /// pool and linger. Real kernels reuse most exit pages quickly — this is
  /// the calibration knob for how fast key residue accumulates in
  /// unallocated memory (the paper's measurements imply roughly one
  /// surviving key-bearing page per connection).
  double bulk_reuse_fraction = 0.80;
};

/// How a page is being freed; selects the free-list placement.
enum class FreeKind : std::uint8_t {
  kHot,   // single-page free (munmap, cache eviction): reused promptly
  kBulk,  // process-exit teardown: scatters into the buddy pool
};

/// Observer for frame release. The dedup engine registers one so its
/// per-frame merge bookkeeping never goes stale when a frame it marked
/// returns to the free lists and is later reused for something unrelated.
class FrameFreeObserver {
 public:
  virtual ~FrameFreeObserver() = default;
  virtual void on_frame_freed(FrameNumber frame) = 0;
};

class PageAllocator {
 public:
  PageAllocator(PhysicalMemory& mem, PageAllocPolicy policy, util::Rng rng);

  PageAllocator(const PageAllocator&) = delete;
  PageAllocator& operator=(const PageAllocator&) = delete;

  /// Takes a frame off the free lists (hot first, then a uniformly random
  /// pool frame). `state` records the new owner class. Only kUserAnon
  /// allocations are zeroed on the way out (clear_user_highpage); kernel
  /// and page-cache allocations receive the previous content uncleared —
  /// the disclosure channel. Returns nullopt when memory is exhausted.
  std::optional<FrameNumber> alloc(FrameState state);

  /// Returns a frame to the free lists. With zero_on_free the page is
  /// cleared first (the paper's patch); otherwise its content survives.
  void free(FrameNumber frame, FreeKind kind = FreeKind::kHot);

  // -- COW reference counts ------------------------------------------------
  /// Fork shares frames; the last unmap frees them.
  void ref(FrameNumber frame);
  /// Decrements; frees the frame (kBulk) when the count reaches zero.
  /// Returns the remaining count.
  std::uint32_t unref(FrameNumber frame, FreeKind kind = FreeKind::kBulk);
  std::uint32_t refcount(FrameNumber frame) const;

  // -- inspection -----------------------------------------------------------
  FrameState state(FrameNumber frame) const;
  bool is_free(FrameNumber frame) const { return state(frame) == FrameState::kFree; }

  /// One-pass copy of every frame's state. The parallel scanner takes this
  /// snapshot once per scan and classifies matches against it, so worker
  /// threads never read the allocator itself — the snapshot is plain
  /// value data, safe to share across concurrent readers.
  std::vector<FrameState> states_snapshot() const;
  std::size_t free_count() const noexcept { return hot_.size() + pool_.size(); }
  std::size_t page_count() const noexcept { return states_.size(); }

  /// Cumulative counters for tests and ablation benches.
  struct Stats {
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t pages_zeroed_on_free = 0;
    std::uint64_t pages_zeroed_on_user_alloc = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

  void set_policy(PageAllocPolicy policy) noexcept { policy_ = policy; }
  const PageAllocPolicy& policy() const noexcept { return policy_; }

  /// At most one observer; nullptr detaches. Fired on every free, before
  /// the zero-on-free policy runs.
  void set_free_observer(FrameFreeObserver* obs) noexcept { free_obs_ = obs; }

 private:
  PhysicalMemory& mem_;
  PageAllocPolicy policy_;
  util::Rng rng_;
  std::vector<FrameState> states_;
  std::vector<std::uint32_t> refcounts_;
  std::vector<FrameNumber> hot_;   // LIFO stack
  std::vector<FrameNumber> pool_;  // uniform-random draws (swap-remove)
  Stats stats_;
  FrameFreeObserver* free_obs_ = nullptr;
};

}  // namespace keyguard::sim
