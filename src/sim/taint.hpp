// Shadow-taint hook interface for the simulated machine.
//
// The paper's scanmemory (and our KeyScanner) can only find key copies
// that still match a FULL needle — a residue that was half overwritten by
// a later allocation is invisible, so "the scan found nothing" never
// proves "no secret bytes survive". Taint tracking closes that gap the
// way MemShield and Security-Through-Amnesia argue their guarantees: tag
// every byte of key material at its source and follow it through every
// physical copy the kernel makes.
//
// This header deliberately lives in sim/ and defines only the *events*:
// the kernel, page allocator, page cache, and swap device report byte
// movements through a TaintTracker, and src/analysis/ supplies the
// per-byte shadow map that interprets them. With no tracker attached
// (the default) every hook site is a single null-pointer test, so the
// production scan path pays nothing — bench_scan_throughput enforces
// < 5% drift with the hooks compiled in.
//
// Event semantics (all offsets are byte addresses):
//   on_phys_store — fresh bytes written into physical memory. The tag
//     says what they are; kClean stores CLEAR taint, which is how churn
//     (scp buffers, response bodies) gradually erases residue exactly
//     like the paper's timeline plots show.
//   on_phys_copy  — a kernel-internal memcpy (COW break, realloc move):
//     the shadow bytes travel with the data.
//   on_phys_clear — a range was zeroed (clear_highpage, secure scrubs).
//   on_swap_store/on_swap_load — a page crossed the RAM/swap boundary in
//     either direction; the shadow crosses with it. Swapping DUPLICATES
//     taint just like it duplicates data (the vacated frame keeps its
//     shadow until something clears it).
//   on_swap_clear — a swap slot was scrubbed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace keyguard::sim {

/// Per-byte taint tag: which key-material source a byte came from.
/// kClean (0) means "not secret". One byte per tag keeps the shadow map
/// the same size as the memory it covers.
enum class TaintTag : std::uint8_t {
  kClean = 0,
  kPem,      ///< PEM text of the private key (file, page cache, read buffers)
  kDer,      ///< DER scratch produced while parsing the key
  kKeyD,     ///< BN_ULONG limb image of d
  kKeyP,     ///< limb image of P
  kKeyQ,     ///< limb image of Q
  kKeyDmp1,  ///< limb image of d mod (p-1)
  kKeyDmq1,  ///< limb image of d mod (q-1)
  kKeyIqmp,  ///< limb image of q^-1 mod p
  kMont,     ///< BN_MONT_CTX contents (modulus copy, R^2)
  kCrt,      ///< CRT intermediates (m1, m2)
  kVault,    ///< vault/custody page material (KeyVault-style storage)

  // Multi-tenant keystore (src/keystore). kSealed is CIPHERTEXT — key
  // material encrypted under the master key. It is tracked so audits can
  // account for at-rest blobs, but it is NOT plaintext residue: the
  // auditor's bounded_locked_pages_only predicate excludes it.
  kSealed,     ///< sealed key blob (master-key-encrypted DER, safe at rest)
  kPoolKey,    ///< plaintext key material materialized into a pool page
  kMasterKey,  ///< the keystore master key (pinned like the vault page)
};

inline constexpr std::size_t kTaintTagCount = 15;

const char* taint_tag_name(TaintTag t) noexcept;

/// True for tags that are plaintext-derived secrets. kClean and kSealed
/// are excluded: sealed blobs are ciphertext by construction, so their
/// disclosure does not compromise the key (the master key does — and it
/// carries its own, secret, tag).
constexpr bool taint_tag_secret(TaintTag t) noexcept {
  return t != TaintTag::kClean && t != TaintTag::kSealed;
}

class TaintTracker {
 public:
  virtual ~TaintTracker() = default;

  /// `len` fresh bytes stored at physical offset `off`; kClean clears.
  virtual void on_phys_store(std::size_t off, std::size_t len, TaintTag tag) = 0;
  /// Kernel-internal copy of `len` bytes from `src` to `dst` (phys).
  virtual void on_phys_copy(std::size_t dst, std::size_t src, std::size_t len) = 0;
  /// `len` bytes zeroed at physical offset `off`.
  virtual void on_phys_clear(std::size_t off, std::size_t len) = 0;
  /// One page copied from physical offset `phys_src` into swap slot `slot`.
  virtual void on_swap_store(std::uint32_t slot, std::size_t phys_src) = 0;
  /// One page copied from swap slot `slot` to physical offset `phys_dst`.
  virtual void on_swap_load(std::size_t phys_dst, std::uint32_t slot) = 0;
  /// Swap slot `slot` scrubbed to zero.
  virtual void on_swap_clear(std::uint32_t slot) = 0;
};

/// Multiplexes the single hook stream the kernel offers to several
/// trackers (Kernel::attach_taint takes one TaintTracker; attach a
/// fanout to run ShadowTaintMap and obs::ExposureMonitor side by side).
/// Events forward in add() order; sinks are borrowed, not owned, and the
/// set must not change while hooks may fire.
class TaintFanout final : public TaintTracker {
 public:
  void add(TaintTracker* t) {
    if (t != nullptr) {
      sinks_.push_back(t);
    }
  }
  void clear() noexcept { sinks_.clear(); }
  std::size_t size() const noexcept { return sinks_.size(); }

  void on_phys_store(std::size_t off, std::size_t len, TaintTag tag) override {
    for (auto* s : sinks_) s->on_phys_store(off, len, tag);
  }
  void on_phys_copy(std::size_t dst, std::size_t src, std::size_t len) override {
    for (auto* s : sinks_) s->on_phys_copy(dst, src, len);
  }
  void on_phys_clear(std::size_t off, std::size_t len) override {
    for (auto* s : sinks_) s->on_phys_clear(off, len);
  }
  void on_swap_store(std::uint32_t slot, std::size_t phys_src) override {
    for (auto* s : sinks_) s->on_swap_store(slot, phys_src);
  }
  void on_swap_load(std::size_t phys_dst, std::uint32_t slot) override {
    for (auto* s : sinks_) s->on_swap_load(phys_dst, slot);
  }
  void on_swap_clear(std::uint32_t slot) override {
    for (auto* s : sinks_) s->on_swap_clear(slot);
  }

 private:
  std::vector<TaintTracker*> sinks_;
};

}  // namespace keyguard::sim
