#include "sim/taint.hpp"

namespace keyguard::sim {

const char* taint_tag_name(TaintTag t) noexcept {
  switch (t) {
    case TaintTag::kClean: return "clean";
    case TaintTag::kPem: return "PEM";
    case TaintTag::kDer: return "DER";
    case TaintTag::kKeyD: return "d";
    case TaintTag::kKeyP: return "P";
    case TaintTag::kKeyQ: return "Q";
    case TaintTag::kKeyDmp1: return "dmp1";
    case TaintTag::kKeyDmq1: return "dmq1";
    case TaintTag::kKeyIqmp: return "iqmp";
    case TaintTag::kMont: return "mont";
    case TaintTag::kCrt: return "crt";
    case TaintTag::kVault: return "vault";
    case TaintTag::kSealed: return "sealed";
    case TaintTag::kPoolKey: return "pool";
    case TaintTag::kMasterKey: return "master";
  }
  return "?";
}

}  // namespace keyguard::sim
