#include "sim/heap.hpp"

#include <cassert>

#include "sim/physmem.hpp"

namespace keyguard::sim {
namespace {

constexpr std::size_t kAlign = 16;

std::size_t round_up(std::size_t v, std::size_t to) { return (v + to - 1) / to * to; }

}  // namespace

HeapAllocator::HeapAllocator(VirtAddr base, std::size_t capacity)
    : base_(base), capacity_(capacity), high_water_(base) {}

std::optional<VirtAddr> HeapAllocator::alloc(std::size_t size, std::size_t& grown_bytes,
                                             std::string label) {
  grown_bytes = 0;
  const std::size_t need = round_up(size == 0 ? 1 : size, kAlign);

  // First fit over the address-ordered free chunks.
  for (auto it = chunks_.begin(); it != chunks_.end(); ++it) {
    if (!it->second.free || it->second.size < need) continue;
    const VirtAddr addr = it->first;
    const std::size_t leftover = it->second.size - need;
    it->second.free = false;
    it->second.size = need;
    it->second.label = std::move(label);
    if (leftover >= kAlign) {
      chunks_.emplace(addr + need, Chunk{leftover, true, {}});
    } else {
      it->second.size += leftover;  // absorb the sliver
    }
    live_bytes_ += it->second.size;
    ++live_chunks_;
    return addr;
  }

  // Extend the heap at the top.
  const VirtAddr end = chunks_.empty() ? base_ : chunks_.rbegin()->first + chunks_.rbegin()->second.size;
  if (end + need > base_ + capacity_) return std::nullopt;
  chunks_.emplace(end, Chunk{need, false, std::move(label)});
  const VirtAddr new_top = end + need;
  if (new_top > high_water_) {
    // Report growth in whole pages so the kernel can map them.
    const VirtAddr old_pages_end = base_ + round_up(high_water_ - base_, kPageSize);
    const VirtAddr new_pages_end = base_ + round_up(new_top - base_, kPageSize);
    grown_bytes = new_pages_end - old_pages_end;
    high_water_ = new_top;
  }
  live_bytes_ += need;
  ++live_chunks_;
  return end;
}

void HeapAllocator::free(VirtAddr addr) {
  auto it = chunks_.find(addr);
  assert(it != chunks_.end() && !it->second.free && "invalid free");
  if (it == chunks_.end() || it->second.free) return;
  it->second.free = true;
  live_bytes_ -= it->second.size;
  --live_chunks_;
  // Coalesce with the next chunk.
  auto next = std::next(it);
  if (next != chunks_.end() && next->second.free &&
      it->first + it->second.size == next->first) {
    it->second.size += next->second.size;
    chunks_.erase(next);
  }
  // Coalesce with the previous chunk.
  if (it != chunks_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.free && prev->first + prev->second.size == it->first) {
      prev->second.size += it->second.size;
      chunks_.erase(it);
    }
  }
}

std::size_t HeapAllocator::chunk_size(VirtAddr addr) const {
  const auto it = chunks_.find(addr);
  assert(it != chunks_.end());
  return it == chunks_.end() ? 0 : it->second.size;
}

bool HeapAllocator::is_live_chunk(VirtAddr addr) const {
  const auto it = chunks_.find(addr);
  return it != chunks_.end() && !it->second.free;
}

std::optional<std::string> HeapAllocator::describe(VirtAddr addr) const {
  auto it = chunks_.upper_bound(addr);
  if (it == chunks_.begin()) return std::nullopt;
  --it;
  if (addr >= it->first + it->second.size) return std::nullopt;
  const std::string& label = it->second.label;
  std::string out = label.empty() ? std::string("heap") : label;
  out += it->second.free ? " (freed)" : " (live)";
  return out;
}

}  // namespace keyguard::sim
