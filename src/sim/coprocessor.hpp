// Coprocessor unseal domain: the page-encryption key that is not in RAM.
//
// MemShield (PAPERS.md) keeps keystore pages ciphertext in system memory
// and holds the page-encryption key inside a GPU whose register file the
// host cannot read. This class is that domain for the simulated machine:
// its secret lives in a HOST-side member array, never written through
// sim::Kernel::mem_write, and therefore outside sim::PhysicalMemory by
// construction — KeyScanner walks mem.all(), ShadowTaintMap shadows the
// same array, and cold-boot capture images it; none of them can see a
// byte that was never stored there. "Outside scannable memory" is a
// type-level property here, not a policy the workload has to maintain.
//
// The domain exposes exactly two primitives, both keyed on the internal
// secret and a caller nonce:
//
//   keystream  SHA-256-CTR blocks ('C' domain): block i of stream `nonce`
//              is SHA256(secret || 'C' || nonce_le64 || i_le64). Used to
//              seal/unseal pool pages and at-rest blobs (XOR stream, so
//              encrypt == decrypt).
//   mac        SHA256(secret || 'M' || nonce_le64 || len_le64 || data):
//              the authenticity tag for sealed blobs. A secret-prefix MAC
//              is fine here because callers never expose raw digests of
//              attacker-extendable messages; the lifecycle, not the
//              primitive, is what this repo measures.
//
// keystream_batch() serves many CTR requests in ONE call. Every public
// call counts as one bus round trip (round_trips()), so the keystore's
// batching claim — unseal cost amortizes under load — is measurable:
// k queued unseals cost 1 keystream round trip instead of k.
//
// power_off() models "Security Through Amnesia": the secret is wiped and
// every subsequent request refuses. Anything still ciphertext at that
// point is unrecoverable — which is the fail-closed direction.
//
// Thread-safe: the host keystore shares one domain across signing
// threads, so all state (secret, counters) is mutex-guarded.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>

namespace keyguard::sim {

class CoprocessorDomain {
 public:
  /// SHA-256 digest width: one CTR block, and the MAC tag size.
  static constexpr std::size_t kBlockBytes = 32;
  static constexpr std::size_t kTagBytes = 32;

  /// Derives the domain secret deterministically from `seed` (tests and
  /// benches need reproducible ciphertext; real hardware would have a
  /// fused key).
  explicit CoprocessorDomain(std::uint64_t seed);
  ~CoprocessorDomain();

  CoprocessorDomain(const CoprocessorDomain&) = delete;
  CoprocessorDomain& operator=(const CoprocessorDomain&) = delete;

  /// False after power_off(): every primitive refuses.
  bool available() const;

  /// Wipes the secret. Irreversible — blobs and encrypted pages sealed
  /// under this domain can never be opened again.
  void power_off();

  /// One queued CTR request: fill `out` with keystream blocks of stream
  /// `nonce`, starting at block `first_block`.
  struct KeystreamRequest {
    std::uint64_t nonce = 0;
    std::uint64_t first_block = 0;
    std::span<std::byte> out;
  };

  /// Single CTR request (one round trip). False when powered off.
  bool keystream(std::uint64_t nonce, std::span<std::byte> out,
                 std::uint64_t first_block = 0);

  /// Many CTR requests in ONE round trip — the amortization primitive.
  /// All-or-nothing: false (and no output) when powered off.
  bool keystream_batch(std::span<KeystreamRequest> requests);

  /// Authenticity tag over `data` (one round trip). nullopt when powered
  /// off.
  std::optional<std::array<std::byte, kTagBytes>> mac(
      std::uint64_t nonce, std::span<const std::byte> data);

  // -- amortization accounting ------------------------------------------------
  /// Bus crossings: every keystream / keystream_batch / mac call is one.
  std::uint64_t round_trips() const;
  /// Subset of round_trips that were CTR calls (batch counts once).
  std::uint64_t keystream_round_trips() const;
  /// Individual CTR requests served (a batch of k adds k).
  std::uint64_t keystream_requests() const;
  std::uint64_t keystream_bytes() const;
  std::uint64_t mac_round_trips() const;

 private:
  /// Fills `out` for one request. Caller holds mu_.
  void fill_locked(const KeystreamRequest& req);

  mutable std::mutex mu_;
  std::array<std::byte, 32> secret_{};
  bool powered_ = true;
  std::uint64_t round_trips_ = 0;
  std::uint64_t keystream_round_trips_ = 0;
  std::uint64_t keystream_requests_ = 0;
  std::uint64_t keystream_bytes_ = 0;
  std::uint64_t mac_round_trips_ = 0;
};

}  // namespace keyguard::sim
