#include "sim/vfs.hpp"

#include <algorithm>
#include <cstring>

namespace keyguard::sim {

void Vfs::write_file(const std::string& path, std::vector<std::byte> content,
                     TaintTag taint) {
  files_[path] = std::move(content);
  if (taint != TaintTag::kClean) {
    taints_[path] = taint;
  } else {
    taints_.erase(path);
  }
}

TaintTag Vfs::taint_tag(const std::string& path) const {
  const auto it = taints_.find(path);
  return it == taints_.end() ? TaintTag::kClean : it->second;
}

const std::vector<std::byte>* Vfs::file(const std::string& path) const {
  const auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

bool Vfs::exists(const std::string& path) const { return files_.contains(path); }

std::vector<std::string> Vfs::list() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, _] : files_) names.push_back(name);
  return names;
}

bool PageCache::populate(const std::string& path, std::span<const std::byte> content,
                         TaintTag taint) {
  if (entries_.contains(path)) return true;
  std::vector<FrameNumber> frames;
  const std::size_t pages = (content.size() + kPageSize - 1) / kPageSize;
  frames.reserve(pages);
  for (std::size_t i = 0; i < pages; ++i) {
    const auto frame = alloc_.alloc(FrameState::kPageCache);
    if (!frame) {
      for (const FrameNumber f : frames) alloc_.free(f);
      return false;
    }
    auto dst = mem_.page(*frame);
    const std::size_t off = i * kPageSize;
    const std::size_t n = std::min(kPageSize, content.size() - off);
    std::memcpy(dst.data(), content.data() + off, n);
    // The tail of the last page keeps whatever was there before — page
    // cache allocations are not zeroed (see PageAllocator::alloc) — and
    // the shadow map mirrors that: only the written bytes take the file's
    // tag, stale taint in the tail survives.
    if (auto* t = mem_.taint()) {
      t->on_phys_store(static_cast<std::size_t>(*frame) * kPageSize, n, taint);
    }
    frames.push_back(*frame);
  }
  cached_pages_ += frames.size();
  entries_[path] = std::move(frames);
  sizes_[path] = content.size();
  order_.push_back(path);
  return true;
}

std::vector<std::byte> PageCache::read_cached(const std::string& path) const {
  const auto it = entries_.find(path);
  if (it == entries_.end()) return {};
  const std::size_t size = sizes_.at(path);
  std::vector<std::byte> out;
  out.reserve(size);
  for (std::size_t i = 0; i < it->second.size(); ++i) {
    const auto src = mem_.page(it->second[i]);
    const std::size_t off = i * kPageSize;
    const std::size_t n = std::min(kPageSize, size - off);
    out.insert(out.end(), src.begin(), src.begin() + static_cast<std::ptrdiff_t>(n));
  }
  return out;
}

void PageCache::evict(const std::string& path, bool clear_pages) {
  const auto it = entries_.find(path);
  if (it == entries_.end()) return;
  for (const FrameNumber f : it->second) {
    if (clear_pages) mem_.clear_page(f);
    alloc_.free(f, FreeKind::kHot);
  }
  cached_pages_ -= it->second.size();
  entries_.erase(it);
  sizes_.erase(path);
  std::erase(order_, path);
}

std::optional<std::string> PageCache::evict_oldest(bool clear_pages) {
  if (order_.empty()) return std::nullopt;
  const std::string victim = order_.front();
  evict(victim, clear_pages);
  return victim;
}

void PageCache::drop_all() {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, _] : entries_) names.push_back(name);
  for (const auto& name : names) evict(name, /*clear_pages=*/false);
}

std::vector<FrameNumber> PageCache::frames(const std::string& path) const {
  const auto it = entries_.find(path);
  return it == entries_.end() ? std::vector<FrameNumber>{} : it->second;
}

}  // namespace keyguard::sim
