#include "sim/coprocessor.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"
#include "obs/event_bus.hpp"
#include "util/rng.hpp"

namespace keyguard::sim {

namespace {

void put_le64(std::byte* out, std::uint64_t v) {
  for (std::size_t i = 0; i < 8; ++i) {
    out[i] = static_cast<std::byte>(v >> (8 * i));
  }
}

void wipe_bytes(std::span<std::byte> data) noexcept {
  volatile std::byte* p = data.data();
  for (std::size_t i = 0; i < data.size(); ++i) p[i] = std::byte{0};
}

}  // namespace

CoprocessorDomain::CoprocessorDomain(std::uint64_t seed) {
  util::Rng rng(seed);
  rng.fill_bytes(secret_);
}

CoprocessorDomain::~CoprocessorDomain() { wipe_bytes(secret_); }

bool CoprocessorDomain::available() const {
  std::lock_guard lk(mu_);
  return powered_;
}

void CoprocessorDomain::power_off() {
  std::lock_guard lk(mu_);
  wipe_bytes(secret_);
  powered_ = false;
}

void CoprocessorDomain::fill_locked(const KeystreamRequest& req) {
  std::byte trailer[17];
  trailer[0] = std::byte{'C'};
  put_le64(trailer + 1, req.nonce);
  std::span<std::byte> out = req.out;
  for (std::uint64_t block = req.first_block; !out.empty(); ++block) {
    put_le64(trailer + 9, block);
    crypto::Sha256 h;
    h.update(secret_);
    h.update(trailer);
    auto ks = h.finish();
    const std::size_t n = std::min(kBlockBytes, out.size());
    std::copy_n(ks.begin(), n, out.begin());
    wipe_bytes(ks);
    out = out.subspan(n);
  }
  keystream_requests_ += 1;
  keystream_bytes_ += req.out.size();
}

bool CoprocessorDomain::keystream(std::uint64_t nonce, std::span<std::byte> out,
                                  std::uint64_t first_block) {
  KeystreamRequest req{nonce, first_block, out};
  return keystream_batch({&req, 1});
}

bool CoprocessorDomain::keystream_batch(std::span<KeystreamRequest> requests) {
  std::lock_guard lk(mu_);
  if (!powered_) {
    if (auto& bus = obs::EventBus::global(); bus.enabled()) {
      bus.publish(obs::ObsEventKind::kDomainRefusal, requests.size() == 1 ? 0 : 1);
    }
    return false;
  }
  ++round_trips_;
  ++keystream_round_trips_;
  for (const auto& req : requests) fill_locked(req);
  return true;
}

std::optional<std::array<std::byte, CoprocessorDomain::kTagBytes>>
CoprocessorDomain::mac(std::uint64_t nonce, std::span<const std::byte> data) {
  std::lock_guard lk(mu_);
  if (!powered_) {
    if (auto& bus = obs::EventBus::global(); bus.enabled()) {
      bus.publish(obs::ObsEventKind::kDomainRefusal, 2);
    }
    return std::nullopt;
  }
  ++round_trips_;
  ++mac_round_trips_;
  std::byte trailer[17];
  trailer[0] = std::byte{'M'};
  put_le64(trailer + 1, nonce);
  put_le64(trailer + 9, data.size());
  crypto::Sha256 h;
  h.update(secret_);
  h.update(trailer);
  h.update(data);
  return h.finish();
}

std::uint64_t CoprocessorDomain::round_trips() const {
  std::lock_guard lk(mu_);
  return round_trips_;
}

std::uint64_t CoprocessorDomain::keystream_round_trips() const {
  std::lock_guard lk(mu_);
  return keystream_round_trips_;
}

std::uint64_t CoprocessorDomain::keystream_requests() const {
  std::lock_guard lk(mu_);
  return keystream_requests_;
}

std::uint64_t CoprocessorDomain::keystream_bytes() const {
  std::lock_guard lk(mu_);
  return keystream_bytes_;
}

std::uint64_t CoprocessorDomain::mac_round_trips() const {
  std::lock_guard lk(mu_);
  return mac_round_trips_;
}

}  // namespace keyguard::sim
