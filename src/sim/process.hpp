// Simulated process: page table, VMAs, and heap state.
//
// Processes are created and mutated exclusively through the Kernel (fork,
// exec, exit, mmap, heap_*), mirroring the syscall boundary; this header
// only defines the bookkeeping the kernel maintains per process.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/heap.hpp"
#include "sim/physmem.hpp"

namespace keyguard::sim {

using Pid = std::uint32_t;

/// Virtual address space layout (identical for all processes).
inline constexpr VirtAddr kHeapBase = 0x1000'0000;
inline constexpr std::size_t kHeapCapacity = 64ull << 20;  // 64 MB brk span
inline constexpr VirtAddr kMmapBase = 0x4000'0000;

/// Page-table entry.
struct Pte {
  FrameNumber frame = 0;
  bool cow = false;      // shared after fork; write triggers a copy
  bool mlocked = false;  // excluded from swap (mlock)
  bool swapped = false;  // resident on the swap device, not in RAM
  std::uint32_t swap_slot = 0;  // valid when swapped
};

/// A mapped region, for bookkeeping and reporting (heap, anon mmaps).
struct Vma {
  VirtAddr start = 0;
  std::size_t length = 0;  // bytes, page-multiple
  bool mlocked = false;
  std::string label;       // "heap", "keypage", ...
};

class Process {
 public:
  Process(Pid pid, std::string name)
      : pid_(pid), name_(std::move(name)), heap_(kHeapBase, kHeapCapacity) {}

  Pid pid() const noexcept { return pid_; }
  const std::string& name() const noexcept { return name_; }
  bool alive() const noexcept { return alive_; }

  const std::map<VirtAddr, Pte>& page_table() const noexcept { return pages_; }
  const std::vector<Vma>& vmas() const noexcept { return vmas_; }
  const HeapAllocator& heap() const noexcept { return heap_; }

  /// Number of resident pages (for tests/reports).
  std::size_t resident_pages() const noexcept { return pages_.size(); }

 private:
  friend class Kernel;

  Pid pid_;
  std::string name_;
  bool alive_ = true;
  std::map<VirtAddr, Pte> pages_;  // keyed by page-aligned virtual address
  std::vector<Vma> vmas_;
  HeapAllocator heap_;
  VirtAddr next_mmap_ = kMmapBase;
};

}  // namespace keyguard::sim
