#include "core/scenario.hpp"

#include "util/bytes.hpp"

namespace keyguard::core {

Scenario::Scenario(ScenarioConfig cfg)
    : cfg_(cfg),
      profile_(make_profile(cfg.level, cfg.mem_bytes)),
      key_([&] {
        util::Rng key_rng(cfg.seed * 0x9e3779b97f4a7c15ULL + 0x5DEECE66DULL);
        return crypto::generate_rsa_key(key_rng, cfg.key_bits);
      }()),
      pem_(crypto::pem_encode_private_key(key_)),
      kernel_(std::make_unique<sim::Kernel>(profile_.kernel, cfg.seed)),
      scanner_(key_),
      seed_rng_(cfg.seed ^ 0xabcdef0123456789ULL) {
  // The host-key files are key material: any page-cache frame they are
  // read into inherits the PEM taint tag in an attached shadow map.
  kernel_->vfs().write_file(kSshKeyPath, util::to_bytes(pem_), sim::TaintTag::kPem);
  kernel_->vfs().write_file(kApacheKeyPath, util::to_bytes(pem_), sim::TaintTag::kPem);
}

void Scenario::precache_key_file(const std::string& path) {
  kernel_->page_cache().populate(path, util::as_bytes(pem_), sim::TaintTag::kPem);
}

}  // namespace keyguard::core
